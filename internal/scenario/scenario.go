// Package scenario is the declarative experiment layer: one JSON-round-
// trippable Scenario spec describes a complete simulated deployment —
// framework, consensus protocol, topology, cost model, workload, attack,
// offered load, and seed — and scenario.Run drives it through the shared,
// framework-agnostic Harness lifecycle. Purpose-built blockchain simulators
// get their reach from specs like this one: new frameworks plug in by
// implementing Harness, new experiments by writing data instead of Go glue.
//
// Zero values mean "use the documented default" (the paper's evaluation
// setting A); a Scenario{} with only Framework and Load set is a complete,
// valid experiment. Validate reports configuration errors instead of
// panicking, and every registry experiment in internal/bench is expressed
// as a list of Scenario values (see `bidl-bench -dump-scenarios`).
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"time"

	"github.com/bidl-framework/bidl/internal/cost"
)

// Framework names accepted by Scenario.Framework.
const (
	FrameworkBIDL        = "bidl"
	FrameworkHLF         = "hlf"
	FrameworkFastFabric  = "fastfabric"
	FrameworkStreamChain = "streamchain"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("150ms", "1.2s") and unmarshals from either such a string or a JSON
// number of nanoseconds.
type Duration time.Duration

// D converts to a time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// String renders the duration ("10ms").
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON renders the duration as a quoted string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(time.Duration(d).String())), nil
}

// UnmarshalJSON accepts "150ms"-style strings and nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		s, err := strconv.Unquote(string(b))
		if err != nil {
			return fmt.Errorf("scenario: bad duration %s: %w", b, err)
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	ns, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return fmt.Errorf("scenario: bad duration %s: %w", b, err)
	}
	*d = Duration(time.Duration(ns))
	return nil
}

// Generate implements testing/quick.Generator, restricting random durations
// to a range whose String() form re-parses exactly.
func (Duration) Generate(r *rand.Rand, _ int) reflect.Value {
	span := int64(1000 * time.Hour)
	return reflect.ValueOf(Duration(r.Int63n(2*span) - span))
}

// Scenario is one complete declarative experiment: which framework to
// simulate, on what cluster and network, under what workload and offered
// load, with which (optional) adversary. The zero value of every field
// selects the documented default, which mirrors the paper's evaluation
// setting A (see DESIGN.md §9 for the defaults table).
type Scenario struct {
	// Name labels the scenario in logs and dumps; it does not affect the
	// simulation.
	Name string `json:"name,omitempty"`
	// Framework selects the simulated system: "bidl" (default), or the
	// baselines "hlf", "fastfabric", "streamchain".
	Framework string `json:"framework,omitempty"`
	// Protocol overrides the framework's consensus protocol. BIDL accepts
	// bft-smart (default), hotstuff, zyzzyva, sbft; the baselines accept
	// bft-smart and raft (default per variant).
	Protocol string `json:"protocol,omitempty"`
	// Seed drives all simulation and workload randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// SimWorkers requests conservative parallel discrete-event execution
	// with this many worker goroutines (zero or one means the serial
	// engine). A parallel run is byte-identical to a serial run at the same
	// seed, so this is purely a wall-clock knob. Scenarios with an attack
	// armed always run serially: adversaries mutate cluster state mid-run.
	SimWorkers int `json:"sim_workers,omitempty"`
	// Shards splits the deployment into this many independently sequenced
	// BIDL channels over one shared simulation (scenario.ShardedHarness,
	// DESIGN.md §14). Each shard is a full copy of the Nodes spec; the
	// keyspace partitions by ledger.KeyShard and two-shard payments commit
	// through 2PC. Zero or one selects the single-channel engine — a
	// `shards: 1` run is byte-identical to one with the field absent.
	// BIDL only.
	Shards int `json:"shards,omitempty"`
	// CrossShardRatio is the probability a generated transfer deliberately
	// straddles two shards (the 2PC path). Requires Shards > 1.
	CrossShardRatio float64 `json:"cross_shard_ratio,omitempty"`

	// Nodes sizes the cluster.
	Nodes NodesSpec `json:"nodes,omitempty"`
	// Topology shapes the simulated datacenter network.
	Topology TopologySpec `json:"topology,omitempty"`
	// Tuning adjusts protocol timeouts, batching, and ablation switches.
	Tuning TuningSpec `json:"tuning,omitempty"`
	// Costs overrides the virtual CPU cost model; nil selects the paper's
	// calibrated model (cost.Default). Durations are JSON nanoseconds.
	Costs *cost.Model `json:"costs,omitempty"`
	// Workload parameterizes the SmallBank transaction mix.
	Workload WorkloadSpec `json:"workload,omitempty"`
	// Load is the offered load profile — the only group with no usable
	// zero value: Window must be positive.
	Load LoadSpec `json:"load"`
	// Attack optionally arms one of the paper's adversaries. It is the
	// legacy surface for what is now a one-entry Faults schedule; new
	// specs should prefer Faults.
	Attack AttackSpec `json:"attack,omitempty"`
	// Faults is the declarative fault-injection schedule (see
	// chaos.Kinds or `bidl-sim -list-faults` for the taxonomy). Runs
	// with faults always use the serial simulation engine.
	Faults []FaultSpec `json:"faults"`
	// Anatomy requests a latency-anatomy breakdown (internal/trace/anatomy)
	// in the run's Result. When the caller supplies no tracer of its own, a
	// private one is created for the run; fault windows from the schedule
	// are annotated in the report automatically.
	Anatomy bool `json:"anatomy,omitempty"`
}

// NodesSpec sizes the simulated cluster. Zero fields mean setting A:
// 50 organizations with 1 node each, 4 consensus nodes tolerating 1 fault,
// in a single datacenter.
type NodesSpec struct {
	// Orgs is the number of organizations (default 50).
	Orgs int `json:"orgs,omitempty"`
	// PerOrg is the number of normal nodes (BIDL) or peers (baselines) per
	// organization (default 1).
	PerOrg int `json:"per_org,omitempty"`
	// Consensus is the number of consensus nodes / orderers (default 4).
	Consensus int `json:"consensus,omitempty"`
	// Faults is the tolerated number of Byzantine consensus nodes. Zero
	// with Consensus >= 4 derives (Consensus-1)/3.
	Faults int `json:"faults,omitempty"`
	// Datacenters spreads nodes round-robin over this many DCs (default 1).
	Datacenters int `json:"datacenters,omitempty"`
}

// TopologySpec shapes the network. Zero fields mean the paper's cluster:
// 0.2 ms intra-DC RTT, 20 ms inter-DC RTT, 40 Gbps NICs, no shared
// inter-DC cap, no jitter, no loss. Negative bandwidths mean "unlimited".
type TopologySpec struct {
	// IntraLatency is the one-way delay within a datacenter (default 100µs).
	IntraLatency Duration `json:"intra_latency,omitempty"`
	// InterLatency is the one-way delay between datacenters (default 10ms).
	InterLatency Duration `json:"inter_latency,omitempty"`
	// NICGbps is per-endpoint egress capacity in Gbps (default 40;
	// negative = unlimited).
	NICGbps float64 `json:"nic_gbps,omitempty"`
	// InterDCGbps caps the shared pipe per ordered DC pair in Gbps
	// (default 0 = unlimited; the Fig 9 knob).
	InterDCGbps float64 `json:"inter_dc_gbps,omitempty"`
	// Jitter adds uniform [0, Jitter) delay per message (default 0).
	Jitter Duration `json:"jitter,omitempty"`
	// LossRate drops each delivery independently with this probability
	// (default 0).
	LossRate float64 `json:"loss_rate,omitempty"`
}

// TuningSpec adjusts batching, timeouts, and the design-ablation switches.
// Zero durations and counts mean the framework's defaults (BIDL: 500-txn
// blocks, 10ms block timeout, 150ms view timeout; StreamChain: block size 1).
type TuningSpec struct {
	BlockSize     int      `json:"block_size,omitempty"`
	BlockTimeout  Duration `json:"block_timeout,omitempty"`
	ViewTimeout   Duration `json:"view_timeout,omitempty"`
	ClientTimeout Duration `json:"client_timeout,omitempty"`

	// BIDL-only batching/shepherding knobs (ignored by the baselines).
	SeqFlushInterval    Duration `json:"seq_flush_interval,omitempty"`
	SeqBatchMax         int      `json:"seq_batch_max,omitempty"`
	ResultFlushInterval Duration `json:"result_flush_interval,omitempty"`
	ReexecThreshold     float64  `json:"reexec_threshold,omitempty"`
	SampleVerify        int      `json:"sample_verify,omitempty"`
	DenyRejoin          Duration `json:"deny_rejoin,omitempty"`

	// Ablation switches (BIDL-only, all default off).
	DisableDenylist    bool `json:"disable_denylist,omitempty"`
	DisableMulticast   bool `json:"disable_multicast,omitempty"`
	ConsensusOnPayload bool `json:"consensus_on_payload,omitempty"`
	DisableSpeculation bool `json:"disable_speculation,omitempty"`
}

// WorkloadSpec parameterizes the SmallBank mix. Zero fields mean the
// paper's standard workload: 100 clients, 10000 accounts, 1% hot set,
// no contention, no non-determinism, ~1KB transactions.
type WorkloadSpec struct {
	Clients     int     `json:"clients,omitempty"`
	Accounts    int     `json:"accounts,omitempty"`
	HotFraction float64 `json:"hot_fraction,omitempty"`
	// Contention is the probability a transfer touches a hot account.
	Contention float64 `json:"contention,omitempty"`
	// Nondet is the probability a transaction is non-deterministic.
	Nondet float64 `json:"nondet,omitempty"`
	// ZipfS, when > 1, draws non-hot-set accounts from a Zipf distribution
	// with skew exponent s (low account indices are popular). Zero keeps
	// the uniform draw; values in (0, 1] are invalid.
	ZipfS float64 `json:"zipf_s,omitempty"`
	// Settlement is the probability a transaction is a step of a
	// multi-step settlement flow (open → settle/cancel) instead of a
	// SmallBank transfer.
	Settlement float64 `json:"settlement,omitempty"`
	// InitialBalance seeds every account (default 1,000,000).
	InitialBalance int64 `json:"initial_balance,omitempty"`
	// Padding sizes transactions in bytes (default ~1KB).
	Padding uint32 `json:"padding,omitempty"`
	// Seed drives workload randomness; zero inherits the scenario seed.
	Seed int64 `json:"seed,omitempty"`
}

// Load shapes accepted by LoadSpec.Shape.
const (
	// ShapeConstant offers Rate txns/s uniformly (the default).
	ShapeConstant = "constant"
	// ShapeDiurnal modulates the rate sinusoidally around Rate:
	// rate(t) = Rate · (1 − Amplitude·cos(2πt/Period)), starting at the
	// trough. The mean over any whole period is exactly Rate.
	ShapeDiurnal = "diurnal"
	// ShapeBurst alternates BurstDuty·Period at BurstMultiplier×Rate with
	// an off-phase rate chosen so the mean over a period is exactly Rate.
	ShapeBurst = "burst"
)

// LoadSpec is the offered-load profile.
type LoadSpec struct {
	// Rate is the offered load in txns/s (the mean rate for shaped load).
	Rate float64 `json:"rate"`
	// Window is how long load is offered; the run then drains.
	Window Duration `json:"window"`
	// Warmup excludes the interval [0, Warmup) from measurements
	// (default Window/5).
	Warmup Duration `json:"warmup,omitempty"`
	// Drain extends the simulation past the load window so in-flight
	// transactions commit (default 500ms).
	Drain Duration `json:"drain,omitempty"`

	// Shape selects the load shape: "" or "constant", "diurnal", "burst".
	// Shapes are compiled to an analytic cumulative-arrivals function, so a
	// constant shape is byte-identical to the legacy fixed-rate schedule.
	Shape string `json:"load_shape,omitempty"`
	// ShapeAmplitude is the diurnal modulation depth in [0, 1]
	// (default 0.5).
	ShapeAmplitude float64 `json:"shape_amplitude,omitempty"`
	// ShapePeriod is the diurnal/burst period (default Window, i.e. one
	// full cycle per run).
	ShapePeriod Duration `json:"shape_period,omitempty"`
	// BurstMultiplier is the on-phase rate multiple (default 4). With duty
	// d and multiplier m, the off-phase runs at (1−m·d)/(1−d)×Rate, which
	// requires m·d < 1.
	BurstMultiplier float64 `json:"burst_multiplier,omitempty"`
	// BurstDuty is the fraction of each period spent bursting, in (0, 1)
	// (default 0.2).
	BurstDuty float64 `json:"burst_duty,omitempty"`

	// ClosedLoop switches from open-loop scheduling to closed-loop clients:
	// a controller tracks the cluster-wide outstanding-transaction count
	// and withholds load (with exponential back-off) while the window is
	// full. The offered rate still follows Rate and Shape — they become the
	// demand curve rather than the injection schedule. Closed-loop runs pin
	// the serial simulation engine (the controller reacts to mid-run
	// cluster state, which the partition discipline cannot order).
	ClosedLoop *ClosedLoopSpec `json:"closed_loop,omitempty"`
}

// ClosedLoopSpec parameterizes closed-loop client backpressure.
type ClosedLoopSpec struct {
	// MaxInFlight caps submitted-but-uncommitted transactions cluster-wide
	// (default 512).
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// Backoff is the initial pause after finding the window full
	// (default 1ms); each consecutive full poll doubles it.
	Backoff Duration `json:"backoff,omitempty"`
	// MaxBackoff caps the exponential back-off (default 16ms).
	MaxBackoff Duration `json:"max_backoff,omitempty"`
}

// withShapeDefaults resolves the zero-value shape knobs to their
// documented defaults so Validate and the compiler agree on one reading.
func (l LoadSpec) withShapeDefaults() LoadSpec {
	if l.Shape == "" {
		l.Shape = ShapeConstant
	}
	if l.ShapeAmplitude == 0 {
		l.ShapeAmplitude = 0.5
	}
	if l.ShapePeriod == 0 {
		l.ShapePeriod = l.Window
	}
	if l.BurstMultiplier == 0 {
		l.BurstMultiplier = 4
	}
	if l.BurstDuty == 0 {
		l.BurstDuty = 0.2
	}
	if l.ClosedLoop != nil {
		cl := *l.ClosedLoop
		if cl.MaxInFlight == 0 {
			cl.MaxInFlight = 512
		}
		if cl.Backoff == 0 {
			cl.Backoff = Duration(time.Millisecond)
		}
		if cl.MaxBackoff == 0 {
			cl.MaxBackoff = Duration(16 * time.Millisecond)
		}
		l.ClosedLoop = &cl
	}
	return l
}

// Attack kinds accepted by AttackSpec.Kind.
const (
	AttackNone = "none"
	// AttackLeader turns the current leader malicious (Table 4 S2): BIDL's
	// leader sequencer emits garbage; a baseline's leader orderer proposes
	// invalid transactions.
	AttackLeader = "leader"
	// AttackBroadcaster arms the §6.2 malicious broadcaster (BIDL only).
	AttackBroadcaster = "broadcaster"
	// AttackSmart is a broadcaster that attacks only views led by the
	// leader observed at startup (the Fig 7 smart adversary; BIDL only).
	AttackSmart = "smart"
)

// AttackSpec optionally arms an adversary. The zero value is "no attack".
// Broadcaster knobs left zero take attack.DefaultBroadcasterConfig.
type AttackSpec struct {
	// Kind is one of "", "none", "leader", "broadcaster", "smart".
	Kind string `json:"kind,omitempty"`
	// Start is the virtual time a broadcaster arms (leader attacks apply
	// at time zero regardless).
	Start Duration `json:"start,omitempty"`
	// Window is how many sequence numbers ahead of the observed frontier
	// each burst contests.
	Window int `json:"window,omitempty"`
	// Interval is the burst period.
	Interval Duration `json:"interval,omitempty"`
	// DetectLag models how long the adversary needs to notice a
	// leadership change.
	DetectLag Duration `json:"detect_lag,omitempty"`
	// MaliciousClients are the colluding client indices.
	MaliciousClients []int `json:"malicious_clients"`
}

// WithDefaults returns the scenario with its framework name normalized.
// All remaining defaulting happens at compile time (bidlConfig /
// fabricConfig / workloadConfig) so that specs stay minimal.
func (s Scenario) WithDefaults() Scenario {
	if s.Framework == "" {
		s.Framework = FrameworkBIDL
	}
	if s.Attack.Kind == AttackNone {
		s.Attack.Kind = ""
	}
	return s
}

// EffectiveSeed resolves the simulation seed (default 1).
func (s Scenario) EffectiveSeed() int64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return 1
}

// Parse decodes a user-authored scenario from JSON, rejecting unknown
// fields so typos surface as errors instead of silently selecting defaults.
func Parse(data []byte) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: parse: %w", err)
	}
	return s, nil
}

// Marshal renders the scenario as indented JSON.
func (s Scenario) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
