package scenario

import (
	"fmt"

	"github.com/bidl-framework/bidl/internal/chaos"
)

// FaultSpec is one declarative fault-injection entry — the JSON surface of
// chaos.Fault (see chaos.Kinds for the taxonomy, or `bidl-sim
// -list-faults`). Field meaning varies by kind; unused fields are ignored.
type FaultSpec struct {
	// Kind is one of crash, partition, dc_outage, drop_storm, churn,
	// seq_failover, leader, broadcaster, smart.
	Kind string `json:"kind"`
	// At is the virtual time the fault starts.
	At Duration `json:"at,omitempty"`
	// Duration bounds the fault window (crash: 0 = permanent; partition,
	// dc_outage, drop_storm, seq_failover require > 0).
	Duration Duration `json:"duration,omitempty"`

	// Org/Node target crash and partition faults; DC targets dc_outage.
	Org  int `json:"org,omitempty"`
	Node int `json:"node,omitempty"`
	DC   int `json:"dc,omitempty"`

	// Shard targets the fault at one channel of a sharded deployment
	// (scenario.Shards > 1); org/node/dc indices are then relative to that
	// shard's cluster. Must be 0 when the scenario is unsharded.
	Shard int `json:"shard,omitempty"`

	// Count cycles of one crash/restart every Period (churn).
	Count  int      `json:"count,omitempty"`
	Period Duration `json:"period,omitempty"`

	// Rate is the drop-storm per-message drop probability.
	Rate float64 `json:"rate,omitempty"`

	// Broadcaster knobs (kinds broadcaster/smart); zero values take
	// attack.DefaultBroadcasterConfig.
	Window           int      `json:"window,omitempty"`
	Interval         Duration `json:"interval,omitempty"`
	DetectLag        Duration `json:"detect_lag,omitempty"`
	MaliciousClients []int    `json:"malicious_clients"`
}

// fault compiles the spec entry to the engine form.
func (f FaultSpec) fault() chaos.Fault {
	return chaos.Fault{
		Kind:             f.Kind,
		At:               f.At.D(),
		Duration:         f.Duration.D(),
		Org:              f.Org,
		Node:             f.Node,
		DC:               f.DC,
		Count:            f.Count,
		Period:           f.Period.D(),
		Rate:             f.Rate,
		Window:           f.Window,
		Interval:         f.Interval.D(),
		DetectLag:        f.DetectLag.D(),
		MaliciousClients: f.MaliciousClients,
	}
}

// attackFault lowers the legacy attack spec onto the fault schedule: a
// leader attack is a permanent time-zero leader fault, the broadcaster
// kinds map field-for-field. The zero AttackSpec compiles to a zero Fault
// (Kind ""), which compiledFaults skips.
func (a AttackSpec) attackFault() chaos.Fault {
	switch a.Kind {
	case AttackLeader:
		return chaos.Fault{Kind: chaos.KindLeader}
	case AttackBroadcaster, AttackSmart:
		return chaos.Fault{
			Kind:             a.Kind,
			At:               a.Start.D(),
			Window:           a.Window,
			Interval:         a.Interval.D(),
			DetectLag:        a.DetectLag.D(),
			MaliciousClients: a.MaliciousClients,
		}
	}
	return chaos.Fault{}
}

// FaultSchedule returns the run's compiled fault schedule — the faults
// array plus the legacy attack spec lowered onto it — in engine form.
// Invariant harnesses use it to locate fault-window ends (chaos.ScheduleEnd).
func (s Scenario) FaultSchedule() []chaos.Fault { return s.compiledFaults() }

// compiledFaults is the run's full fault schedule: the faults array plus
// the legacy attack spec lowered onto it.
func (s Scenario) compiledFaults() []chaos.Fault {
	out := make([]chaos.Fault, 0, len(s.Faults)+1)
	for _, f := range s.Faults {
		out = append(out, f.fault())
	}
	if a := s.Attack.attackFault(); a.Kind != "" {
		out = append(out, a)
	}
	return out
}

// faultsForShard compiles the engine-form schedule targeting shard i: the
// spec entries whose shard field matches, plus — on shard 0 — the legacy
// attack spec.
func (s Scenario) faultsForShard(i int) []chaos.Fault {
	var out []chaos.Fault
	for _, f := range s.Faults {
		if f.Shard == i {
			out = append(out, f.fault())
		}
	}
	if i == 0 {
		if a := s.Attack.attackFault(); a.Kind != "" {
			out = append(out, a)
		}
	}
	return out
}

// validateFaults rejects schedules the chaos engine or the compiled
// cluster cannot honor: malformed schedules (unknown kinds, negative
// times, overlapping windows — chaos.ValidateSchedule), out-of-range
// targets, and sequencer-racing adversaries on frameworks without a
// sequencer multicast.
func (s Scenario) validateFaults(orgs, perOrg, dcs int, isBIDL bool) error {
	faults := s.compiledFaults()
	if len(faults) == 0 {
		return nil
	}
	if s.Shards > 1 {
		// Shards fault independently: the overlap discipline applies per
		// shard schedule, so e.g. two concurrent crashes of org 0 on
		// different shards are legal.
		for i := 0; i < s.Shards; i++ {
			if err := chaos.ValidateSchedule(s.faultsForShard(i)); err != nil {
				return fmt.Errorf("scenario: shard %d: %w", i, err)
			}
		}
	} else if err := chaos.ValidateSchedule(faults); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	maxShard := s.Shards
	if maxShard < 1 {
		maxShard = 1
	}
	for i, f := range s.Faults {
		if f.Shard < 0 || f.Shard >= maxShard {
			return fmt.Errorf("scenario: fault %d (%s): shard %d out of range (scenario has %d shard(s))",
				i, f.Kind, f.Shard, maxShard)
		}
	}
	for i, f := range faults {
		switch f.Kind {
		case chaos.KindCrash, chaos.KindPartition:
			if f.Org >= orgs {
				return fmt.Errorf("scenario: fault %d (%s): org %d out of range (cluster has %d orgs)", i, f.Kind, f.Org, orgs)
			}
			if f.Kind == chaos.KindCrash && f.Node >= perOrg {
				return fmt.Errorf("scenario: fault %d (crash): node %d out of range (orgs have %d nodes)", i, f.Node, perOrg)
			}
		case chaos.KindDCOutage:
			if f.DC >= dcs {
				return fmt.Errorf("scenario: fault %d (dc_outage): dc %d out of range (cluster has %d datacenters)", i, f.DC, dcs)
			}
		case chaos.KindBroadcaster, chaos.KindSmart:
			if !isBIDL {
				return fmt.Errorf("scenario: fault %d (%s): requires the bidl framework (the broadcaster races the sequencer multicast)", i, f.Kind)
			}
		}
	}
	return nil
}
