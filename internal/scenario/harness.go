package scenario

import (
	"fmt"
	"math"
	"time"

	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/metrics"
	"github.com/bidl-framework/bidl/internal/types"
	"github.com/bidl-framework/bidl/internal/workload"
)

// Harness is the framework-agnostic cluster surface the scenario driver
// runs against. Both core.Cluster (BIDL) and fabric.Cluster (the HLF /
// FastFabric / StreamChain baselines) implement it; a new framework plugs
// into every registry experiment and CLI by implementing this interface.
type Harness interface {
	// RegisterClients creates client endpoints for identities the workload
	// generator has registered with the membership scheme.
	RegisterClients(ids []crypto.Identity)
	// Prepopulate applies fn to every replica's committed world state.
	Prepopulate(fn func(*ledger.State))
	// SubmitAt schedules transactions for submission by their own clients
	// at virtual time at.
	SubmitAt(at time.Duration, txns ...*types.Transaction)
	// At schedules fn at virtual time t. Closed-loop load controllers use
	// it to observe mid-run cluster state and reschedule themselves; on the
	// simulated clusters it is only legal under the serial engine once the
	// run has started.
	At(t time.Duration, fn func())
	// InFlight reports the cluster-wide count of submitted transactions
	// whose clients have not yet observed a commit.
	InFlight() int
	// Run advances the simulation to absolute virtual time t.
	Run(t time.Duration)
	// LeaderIndex reports the current consensus leader (for attacks).
	LeaderIndex() int
	// CheckSafety audits end-of-run ledger and state consistency.
	CheckSafety() error
	// Metrics returns the run's metrics collector.
	Metrics() *metrics.Collector
	// IdentityScheme returns the membership crypto scheme.
	IdentityScheme() crypto.Scheme
	// VirtualEvents returns the number of discrete events executed.
	VirtualEvents() uint64
}

// lifecycle phases enforced by Driver.
type lifecyclePhase int

const (
	phaseNew lifecyclePhase = iota
	phaseClientsRegistered
	phasePrepopulated
	phaseRunning
)

func (p lifecyclePhase) String() string {
	switch p {
	case phaseNew:
		return "new"
	case phaseClientsRegistered:
		return "clients-registered"
	case phasePrepopulated:
		return "prepopulated"
	default:
		return "running"
	}
}

// Driver wraps a Harness and enforces the lifecycle contract that was
// previously implicit in both clusters: clients must be registered before
// state is prepopulated, and both must happen before any submission or
// simulation run. (Registering a client creates its endpoint — doing so
// after traffic is scheduled would change endpoint-ID assignment and break
// run-to-run determinism; prepopulating after submissions start would let
// transactions execute against unseeded accounts.) Violations return
// errors instead of silently corrupting the run.
type Driver struct {
	h     Harness
	phase lifecyclePhase
}

// NewDriver wraps h in a fresh lifecycle.
func NewDriver(h Harness) *Driver { return &Driver{h: h} }

// Harness exposes the wrapped harness (for observers; lifecycle-relevant
// calls should go through the driver).
func (d *Driver) Harness() Harness { return d.h }

// RegisterClients is the mandatory first step.
func (d *Driver) RegisterClients(ids []crypto.Identity) error {
	if d.phase != phaseNew {
		return fmt.Errorf("scenario: RegisterClients must be the first lifecycle step (driver is %s)", d.phase)
	}
	d.h.RegisterClients(ids)
	d.phase = phaseClientsRegistered
	return nil
}

// Prepopulate seeds world state; it must follow RegisterClients and
// precede any submission.
func (d *Driver) Prepopulate(fn func(*ledger.State)) error {
	if d.phase != phaseClientsRegistered {
		return fmt.Errorf("scenario: Prepopulate must follow RegisterClients and precede submissions (driver is %s)", d.phase)
	}
	d.h.Prepopulate(fn)
	d.phase = phasePrepopulated
	return nil
}

// SubmitAt schedules transactions; clients must be registered and state
// prepopulated first.
func (d *Driver) SubmitAt(at time.Duration, txns ...*types.Transaction) error {
	if d.phase < phasePrepopulated {
		return fmt.Errorf("scenario: SubmitAt before RegisterClients+Prepopulate (driver is %s)", d.phase)
	}
	d.h.SubmitAt(at, txns...)
	return nil
}

// ScheduleRate schedules rate txns/s over window, drawing batches from
// gen, and returns the total number of transactions scheduled.
func (d *Driver) ScheduleRate(gen *workload.Generator, rate float64, window time.Duration) (int, error) {
	if d.phase < phasePrepopulated {
		return 0, fmt.Errorf("scenario: ScheduleRate before RegisterClients+Prepopulate (driver is %s)", d.phase)
	}
	n := ScheduleTicks(rate, window, func(at time.Duration, n int) {
		d.h.SubmitAt(at, gen.Batch(n)...)
	})
	return n, nil
}

// ScheduleLoad arms the spec's full offered-load profile — shaped open-loop
// ticks, or the closed-loop controller when load.ClosedLoop is set — and
// returns a function reporting the total transactions submitted. For
// open-loop load the count is final immediately; for closed-loop it is only
// final after Run, because backpressure decides at run time how much of the
// demand curve is actually injected.
func (d *Driver) ScheduleLoad(gen *workload.Generator, load LoadSpec) (func() int, error) {
	if d.phase < phasePrepopulated {
		return nil, fmt.Errorf("scenario: ScheduleLoad before RegisterClients+Prepopulate (driver is %s)", d.phase)
	}
	load = load.withShapeDefaults()
	window := load.Window.D()
	cum := load.cumulative()
	if load.ClosedLoop == nil {
		n := ScheduleCumulative(cum, window, func(at time.Duration, n int) {
			d.h.SubmitAt(at, gen.Batch(n)...)
		})
		return func() int { return n }, nil
	}
	return d.scheduleClosedLoop(gen, load, cum)
}

// scheduleClosedLoop installs a self-rescheduling controller (the BDLS-style
// auto back-off under heavy payload): at each poll it owes cum(now) −
// submitted transactions by the demand curve, but injects at most the room
// left under MaxInFlight. A full window doubles the poll interval up to
// MaxBackoff; available room resets it. The controller reads InFlight
// mid-run, so closed-loop scenarios pin the serial simulation engine
// (Scenario.effectiveSimWorkers).
func (d *Driver) scheduleClosedLoop(gen *workload.Generator, load LoadSpec, cum func(time.Duration) float64) (func() int, error) {
	cl := *load.ClosedLoop
	window := load.Window.D()
	base := cl.Backoff.D()
	maxB := cl.MaxBackoff.D()
	if maxB < base {
		maxB = base
	}
	submitted := 0
	var step func(now, backoff time.Duration)
	step = func(now, backoff time.Duration) {
		if now >= window {
			return
		}
		owed := int(math.Round(cum(now))) - submitted
		room := cl.MaxInFlight - d.h.InFlight()
		n := owed
		if n > room {
			n = room
		}
		switch {
		case n > 0:
			d.h.SubmitAt(now, gen.Batch(n)...)
			submitted += n
			backoff = base
		case room <= 0:
			backoff *= 2
			if backoff > maxB {
				backoff = maxB
			}
		default: // caught up with the demand curve
			backoff = base
		}
		next := now + backoff
		d.h.At(next, func() { step(next, backoff) })
	}
	d.h.At(0, func() { step(0, base) })
	return func() int { return submitted }, nil
}

// Run advances the simulation; the lifecycle must be complete.
func (d *Driver) Run(t time.Duration) error {
	if d.phase < phasePrepopulated {
		return fmt.Errorf("scenario: Run before RegisterClients+Prepopulate (driver is %s)", d.phase)
	}
	d.phase = phaseRunning
	d.h.Run(t)
	return nil
}
