package scenario

import (
	"fmt"
	"time"

	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/metrics"
	"github.com/bidl-framework/bidl/internal/types"
	"github.com/bidl-framework/bidl/internal/workload"
)

// Harness is the framework-agnostic cluster surface the scenario driver
// runs against. Both core.Cluster (BIDL) and fabric.Cluster (the HLF /
// FastFabric / StreamChain baselines) implement it; a new framework plugs
// into every registry experiment and CLI by implementing this interface.
type Harness interface {
	// RegisterClients creates client endpoints for identities the workload
	// generator has registered with the membership scheme.
	RegisterClients(ids []crypto.Identity)
	// Prepopulate applies fn to every replica's committed world state.
	Prepopulate(fn func(*ledger.State))
	// SubmitAt schedules transactions for submission by their own clients
	// at virtual time at.
	SubmitAt(at time.Duration, txns ...*types.Transaction)
	// Run advances the simulation to absolute virtual time t.
	Run(t time.Duration)
	// LeaderIndex reports the current consensus leader (for attacks).
	LeaderIndex() int
	// CheckSafety audits end-of-run ledger and state consistency.
	CheckSafety() error
	// Metrics returns the run's metrics collector.
	Metrics() *metrics.Collector
	// IdentityScheme returns the membership crypto scheme.
	IdentityScheme() crypto.Scheme
	// VirtualEvents returns the number of discrete events executed.
	VirtualEvents() uint64
}

// lifecycle phases enforced by Driver.
type lifecyclePhase int

const (
	phaseNew lifecyclePhase = iota
	phaseClientsRegistered
	phasePrepopulated
	phaseRunning
)

func (p lifecyclePhase) String() string {
	switch p {
	case phaseNew:
		return "new"
	case phaseClientsRegistered:
		return "clients-registered"
	case phasePrepopulated:
		return "prepopulated"
	default:
		return "running"
	}
}

// Driver wraps a Harness and enforces the lifecycle contract that was
// previously implicit in both clusters: clients must be registered before
// state is prepopulated, and both must happen before any submission or
// simulation run. (Registering a client creates its endpoint — doing so
// after traffic is scheduled would change endpoint-ID assignment and break
// run-to-run determinism; prepopulating after submissions start would let
// transactions execute against unseeded accounts.) Violations return
// errors instead of silently corrupting the run.
type Driver struct {
	h     Harness
	phase lifecyclePhase
}

// NewDriver wraps h in a fresh lifecycle.
func NewDriver(h Harness) *Driver { return &Driver{h: h} }

// Harness exposes the wrapped harness (for observers; lifecycle-relevant
// calls should go through the driver).
func (d *Driver) Harness() Harness { return d.h }

// RegisterClients is the mandatory first step.
func (d *Driver) RegisterClients(ids []crypto.Identity) error {
	if d.phase != phaseNew {
		return fmt.Errorf("scenario: RegisterClients must be the first lifecycle step (driver is %s)", d.phase)
	}
	d.h.RegisterClients(ids)
	d.phase = phaseClientsRegistered
	return nil
}

// Prepopulate seeds world state; it must follow RegisterClients and
// precede any submission.
func (d *Driver) Prepopulate(fn func(*ledger.State)) error {
	if d.phase != phaseClientsRegistered {
		return fmt.Errorf("scenario: Prepopulate must follow RegisterClients and precede submissions (driver is %s)", d.phase)
	}
	d.h.Prepopulate(fn)
	d.phase = phasePrepopulated
	return nil
}

// SubmitAt schedules transactions; clients must be registered and state
// prepopulated first.
func (d *Driver) SubmitAt(at time.Duration, txns ...*types.Transaction) error {
	if d.phase < phasePrepopulated {
		return fmt.Errorf("scenario: SubmitAt before RegisterClients+Prepopulate (driver is %s)", d.phase)
	}
	d.h.SubmitAt(at, txns...)
	return nil
}

// ScheduleRate schedules rate txns/s over window, drawing batches from
// gen, and returns the total number of transactions scheduled.
func (d *Driver) ScheduleRate(gen *workload.Generator, rate float64, window time.Duration) (int, error) {
	if d.phase < phasePrepopulated {
		return 0, fmt.Errorf("scenario: ScheduleRate before RegisterClients+Prepopulate (driver is %s)", d.phase)
	}
	n := ScheduleTicks(rate, window, func(at time.Duration, n int) {
		d.h.SubmitAt(at, gen.Batch(n)...)
	})
	return n, nil
}

// Run advances the simulation; the lifecycle must be complete.
func (d *Driver) Run(t time.Duration) error {
	if d.phase < phasePrepopulated {
		return fmt.Errorf("scenario: Run before RegisterClients+Prepopulate (driver is %s)", d.phase)
	}
	d.phase = phaseRunning
	d.h.Run(t)
	return nil
}
