package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/chaos"
)

// TestParseRejectsUnknownFaultField pins strict parsing inside the faults
// array: a typo in a fault entry ("kins", "duraton") must be a parse error,
// not a silently ignored knob that turns the fault into a no-op.
func TestParseRejectsUnknownFaultField(t *testing.T) {
	_, err := Parse([]byte(`{
		"load": {"rate": 100, "window": "1s"},
		"faults": [{"kind": "crash", "att": "100ms"}]
	}`))
	if err == nil || !strings.Contains(err.Error(), "att") {
		t.Fatalf("want unknown-field error naming \"att\", got %v", err)
	}
}

// TestValidateFaults covers the fault-schedule rejection classes surfaced
// through Scenario.Validate: malformed schedules (delegated to
// chaos.ValidateSchedule), out-of-range targets against the compiled
// cluster, and framework restrictions.
func TestValidateFaults(t *testing.T) {
	ms := func(n int) Duration { return Duration(time.Duration(n) * time.Millisecond) }
	cases := []struct {
		name   string
		faults []FaultSpec
		mut    func(*Scenario)
		want   string // substring of the expected error; "" = valid
	}{
		{"crash-ok", []FaultSpec{{Kind: "crash", At: ms(100), Duration: ms(200), Org: 2}}, nil, ""},
		{"unknown-kind", []FaultSpec{{Kind: "meteor"}}, nil, `unknown kind "meteor"`},
		{"negative-time", []FaultSpec{{Kind: "crash", At: ms(-5)}}, nil, "times must be >= 0"},
		{
			"overlapping-windows",
			[]FaultSpec{
				{Kind: "drop_storm", At: ms(100), Duration: ms(200), Rate: 0.5},
				{Kind: "drop_storm", At: ms(200), Duration: ms(200), Rate: 0.5},
			},
			nil,
			"active windows overlap",
		},
		{"partition-zero-duration", []FaultSpec{{Kind: "partition", Org: 1}}, nil, "duration must be > 0"},
		{"storm-zero-rate", []FaultSpec{{Kind: "drop_storm", Duration: ms(100)}}, nil, "rate must be > 0"},
		{
			"crash-org-out-of-range",
			[]FaultSpec{{Kind: "crash", Duration: ms(100), Org: 99}},
			nil,
			"org 99 out of range",
		},
		{
			"crash-node-out-of-range",
			[]FaultSpec{{Kind: "crash", Duration: ms(100), Org: 0, Node: 7}},
			nil,
			"node 7 out of range",
		},
		{
			"dc-out-of-range",
			[]FaultSpec{{Kind: "dc_outage", Duration: ms(100), DC: 5}},
			nil,
			"dc 5 out of range",
		},
		{
			"broadcaster-on-fabric",
			[]FaultSpec{{Kind: "broadcaster"}},
			func(s *Scenario) { s.Framework = FrameworkHLF },
			"requires the bidl framework",
		},
		{
			// The legacy attack spec is lowered onto the same schedule, so
			// an attack plus a conflicting fault is caught by the same
			// overlap rule.
			"attack-and-fault-overlap",
			[]FaultSpec{{Kind: "broadcaster", At: ms(100)}},
			func(s *Scenario) { s.Attack = AttackSpec{Kind: AttackBroadcaster} },
			"active windows overlap",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := valid()
			s.Faults = tc.faults
			if tc.mut != nil {
				tc.mut(&s)
			}
			err := s.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestChaosExampleSpecsParse strict-parses and validates every shipped
// chaos scenario file, and cross-checks the catalog: each catalog entry's
// File exists and compiles to a non-empty fault schedule.
func TestChaosExampleSpecsParse(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenario-chaos-*.json"))
	if err != nil || len(files) < 3 {
		t.Fatalf("want >= 3 chaos example specs, got %d (err %v)", len(files), err)
	}
	seen := map[string]bool{}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Parse(data)
		if err != nil {
			t.Errorf("%s: parse: %v", f, err)
			continue
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: validate: %v", f, err)
		}
		if len(s.FaultSchedule()) == 0 {
			t.Errorf("%s: no faults in schedule", f)
		}
		seen[filepath.Base(f)] = true
	}
	for _, e := range chaos.Catalog() {
		if !seen[filepath.Base(e.File)] {
			t.Errorf("catalog entry %s references missing spec %s", e.ID, e.File)
		}
	}
}
