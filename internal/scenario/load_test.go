package scenario

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/workload"
)

func loadSpec(rate float64, window time.Duration) LoadSpec {
	return LoadSpec{Rate: rate, Window: Duration(window)}
}

// TestConstantShapeMatchesLegacySchedule: the compiled constant shape must
// reproduce ScheduleTicks tick-for-tick — the property that keeps every
// pre-existing experiment golden byte-identical.
func TestConstantShapeMatchesLegacySchedule(t *testing.T) {
	for _, rate := range []float64{0, 333, 1234.5, 44000} {
		window := 750 * time.Millisecond
		type call struct {
			at time.Duration
			n  int
		}
		var legacy, shaped []call
		nl := ScheduleTicks(rate, window, func(at time.Duration, n int) {
			legacy = append(legacy, call{at, n})
		})
		l := loadSpec(rate, window).withShapeDefaults()
		ns := ScheduleCumulative(l.cumulative(), window, func(at time.Duration, n int) {
			shaped = append(shaped, call{at, n})
		})
		if nl != ns || len(legacy) != len(shaped) {
			t.Fatalf("rate %g: legacy %d ticks/%d total, shaped %d/%d", rate, len(legacy), nl, len(shaped), ns)
		}
		for i := range legacy {
			if legacy[i] != shaped[i] {
				t.Fatalf("rate %g tick %d: legacy %+v, shaped %+v", rate, i, legacy[i], shaped[i])
			}
		}
	}
}

// TestShapesPreserveMeanRate: over whole periods every shape offers exactly
// Rate × elapsed transactions.
func TestShapesPreserveMeanRate(t *testing.T) {
	window := 1 * time.Second
	for _, shape := range []string{ShapeConstant, ShapeDiurnal, ShapeBurst} {
		l := loadSpec(10000, window)
		l.Shape = shape
		l.ShapePeriod = Duration(250 * time.Millisecond) // 4 whole periods
		l = l.withShapeDefaults()
		total := ScheduleCumulative(l.cumulative(), window, func(time.Duration, int) {})
		if want := 10000; total != want {
			t.Fatalf("shape %s scheduled %d over 1s at 10000/s, want %d", shape, total, want)
		}
	}
}

// TestDiurnalShapeModulates: the first half of a trough-started diurnal
// cycle must carry visibly less load than the second half.
func TestDiurnalShapeModulates(t *testing.T) {
	window := 1 * time.Second
	l := loadSpec(10000, window)
	l.Shape = ShapeDiurnal
	l.ShapeAmplitude = 0.8
	l = l.withShapeDefaults() // period = window: one cycle
	quarter := window / 4
	firstQuarter := 0
	ScheduleCumulative(l.cumulative(), window, func(at time.Duration, n int) {
		if at < quarter {
			firstQuarter += n
		}
	})
	// The cycle starts at the trough, so the first quarter carries
	// 1/4 − A/(2π) ≈ 12.3% of the load at amplitude 0.8.
	if f := float64(firstQuarter) / 10000; f > 0.16 || f < 0.09 {
		t.Fatalf("diurnal first-quarter share = %.3f, want ~0.12", f)
	}
}

// TestBurstShapeConcentratesLoad: a burst shape front-loads each period.
func TestBurstShapeConcentratesLoad(t *testing.T) {
	window := 1 * time.Second
	l := loadSpec(10000, window)
	l.Shape = ShapeBurst
	l.BurstMultiplier = 4
	l.BurstDuty = 0.2
	l = l.withShapeDefaults()
	inBurst := 0
	ScheduleCumulative(l.cumulative(), window, func(at time.Duration, n int) {
		if at < 200*time.Millisecond { // duty 0.2 of the single 1s period
			inBurst += n
		}
	})
	// Burst phase carries m·d = 80% of the period's load.
	if f := float64(inBurst) / 10000; math.Abs(f-0.8) > 0.02 {
		t.Fatalf("burst-phase share = %.3f, want ~0.80", f)
	}
}

// TestClosedLoopBackpressure drives the controller against a scripted
// harness: a saturated in-flight window must withhold load and back off;
// freed capacity must resume submission up to the demand curve.
func TestClosedLoopBackpressure(t *testing.T) {
	gen := workload.NewGenerator(workload.DefaultConfig(4), crypto.NewHMACScheme([]byte("cl")))
	f := &fakeHarness{}
	d := NewDriver(f)
	if err := d.RegisterClients([]crypto.Identity{gen.Client(0)}); err != nil {
		t.Fatal(err)
	}
	if err := d.Prepopulate(gen.Prepopulate); err != nil {
		t.Fatal(err)
	}
	l := loadSpec(1000, 50*time.Millisecond)
	l.ClosedLoop = &ClosedLoopSpec{MaxInFlight: 10}
	// Script: free, free, then saturated for 3 polls, then free again.
	f.inFlight = []int{0, 0, 10, 10, 10, 0}
	submitted, err := d.ScheduleLoad(gen, l)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if submitted() == 0 {
		t.Fatal("closed loop submitted nothing")
	}
	// Demand over 50ms at 1000/s is 50; the cap is 10 per poll, so the
	// total must stay well under open-loop demand while remaining > 0.
	for _, n := range f.submitted {
		if n > 10 {
			t.Fatalf("single submission %d exceeds max_in_flight 10", n)
		}
	}
	if got := submitted(); got >= 50 {
		t.Fatalf("backpressured total %d not below open-loop demand 50", got)
	}
	// Back-off growth: while saturated, consecutive poll gaps must grow.
	var gaps []time.Duration
	for i := 1; i < len(f.timers); i++ {
		gaps = append(gaps, f.timers[i].at-f.timers[i-1].at)
	}
	grew := false
	for i := 1; i < len(gaps); i++ {
		if gaps[i] > gaps[i-1] {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("no back-off growth in poll gaps %v", gaps)
	}
}

// TestClosedLoopEndToEnd runs a real (tiny) BIDL cluster closed-loop and
// checks the in-flight invariant indirectly: the run completes, commits
// transactions, and stays consistent.
func TestClosedLoopEndToEnd(t *testing.T) {
	s := Scenario{
		Nodes: NodesSpec{Orgs: 4},
		Load: LoadSpec{
			Rate:   2000,
			Window: Duration(300 * time.Millisecond),
			ClosedLoop: &ClosedLoopSpec{
				MaxInFlight: 64,
			},
		},
		Workload: WorkloadSpec{Clients: 16, Accounts: 400, ZipfS: 1.5, Settlement: 0.2},
		// Closed loop must pin the serial engine even when workers are set.
		SimWorkers: 4,
	}
	if got := s.effectiveSimWorkers(); got != 0 {
		t.Fatalf("closed-loop spec compiled to %d sim workers, want 0", got)
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted == 0 {
		t.Fatal("closed-loop run submitted nothing")
	}
	if res.Submitted > 600 {
		t.Fatalf("closed-loop submitted %d, demand cap is 600", res.Submitted)
	}
	if res.Throughput == 0 {
		t.Fatal("closed-loop run committed nothing")
	}
	if res.SafetyErr != nil {
		t.Fatalf("safety: %v", res.SafetyErr)
	}
}

// TestShapedLoadValidation covers the new Validate rules.
func TestShapedLoadValidation(t *testing.T) {
	base := Scenario{Load: loadSpec(100, 100*time.Millisecond)}
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"bad shape", func(s *Scenario) { s.Load.Shape = "sawtooth" }, "load_shape"},
		{"amplitude", func(s *Scenario) { s.Load.Shape = ShapeDiurnal; s.Load.ShapeAmplitude = 1.5 }, "shape_amplitude"},
		{"duty", func(s *Scenario) { s.Load.Shape = ShapeBurst; s.Load.BurstDuty = 1.2 }, "burst_duty"},
		{"overcommitted burst", func(s *Scenario) { s.Load.Shape = ShapeBurst; s.Load.BurstMultiplier = 6 }, "burst_multiplier*burst_duty"},
		{"zipf", func(s *Scenario) { s.Workload.ZipfS = 0.4 }, "zipf_s"},
		{"settlement range", func(s *Scenario) { s.Workload.Settlement = 1.4 }, "settlement"},
		{"settlement+nondet", func(s *Scenario) { s.Workload.Settlement = 0.6; s.Workload.Nondet = 0.6 }, "settlement + workload.nondet"},
		{"closed loop backoff", func(s *Scenario) {
			s.Load.ClosedLoop = &ClosedLoopSpec{MaxInFlight: 8, Backoff: Duration(10 * time.Millisecond), MaxBackoff: Duration(time.Millisecond)}
		}, "max_backoff"},
		{"closed loop window", func(s *Scenario) { s.Load.ClosedLoop = &ClosedLoopSpec{MaxInFlight: -1} }, "max_in_flight"},
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base spec invalid: %v", err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			tc.mut(&s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
	// Valid shaped/closed-loop specs must pass.
	ok := base
	ok.Load.Shape = ShapeBurst
	ok.Load.ClosedLoop = &ClosedLoopSpec{}
	ok.Workload.ZipfS = 1.5
	ok.Workload.Settlement = 0.3
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid shaped spec rejected: %v", err)
	}
}

// TestShapedRunsSafe runs each shape end-to-end on BIDL and checks
// commit progress and safety.
func TestShapedRunsSafe(t *testing.T) {
	for _, shape := range []string{ShapeDiurnal, ShapeBurst} {
		s := Scenario{
			Nodes:    NodesSpec{Orgs: 4},
			Load:     LoadSpec{Rate: 2000, Window: Duration(300 * time.Millisecond), Shape: shape},
			Workload: WorkloadSpec{Clients: 16, Accounts: 400},
		}
		res, err := Run(s)
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if res.Throughput == 0 || res.SafetyErr != nil {
			t.Fatalf("%s: throughput %.1f, safety %v", shape, res.Throughput, res.SafetyErr)
		}
	}
}
