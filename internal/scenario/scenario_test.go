package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/metrics"
	"github.com/bidl-framework/bidl/internal/types"
	"github.com/bidl-framework/bidl/internal/workload"
)

// TestScenarioJSONRoundTrip is the codec property test: any Scenario value
// must survive marshal → unmarshal exactly. Duration's custom Generate
// keeps random durations in a range whose human-readable String() form
// re-parses losslessly.
func TestScenarioJSONRoundTrip(t *testing.T) {
	f := func(s Scenario) bool {
		data, err := json.Marshal(s)
		if err != nil {
			t.Logf("marshal: %v", err)
			return false
		}
		var back Scenario
		if err := json.Unmarshal(data, &back); err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		if !reflect.DeepEqual(s, back) {
			t.Logf("round-trip mismatch:\n in: %+v\nout: %+v\njson: %s", s, back, data)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMarshalParseRoundTrip checks the user-facing entry points (indented
// Marshal, strict Parse) agree with each other.
func TestMarshalParseRoundTrip(t *testing.T) {
	s := Scenario{
		Name:      "example",
		Framework: FrameworkBIDL,
		Protocol:  "hotstuff",
		Seed:      42,
		Nodes:     NodesSpec{Orgs: 7, Consensus: 7, Faults: 2},
		Topology:  TopologySpec{InterDCGbps: 1.5, LossRate: 0.01},
		Workload:  WorkloadSpec{Contention: 0.2},
		Load: LoadSpec{Rate: 1000, Window: Duration(time.Second),
			Warmup: Duration(100 * time.Millisecond)},
		Attack: AttackSpec{Kind: AttackSmart, Start: Duration(200 * time.Millisecond)},
	}
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round-trip mismatch:\n in: %+v\nout: %+v", s, back)
	}
}

// TestParseRejectsUnknownFields guards the strict decoding contract: a typo
// in a user-authored spec must error, not silently select a default.
func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"framwork": "bidl", "load": {"rate": 10, "window": "1s"}}`))
	if err == nil || !strings.Contains(err.Error(), "framwork") {
		t.Fatalf("want unknown-field error naming the typo, got %v", err)
	}
}

// TestDurationForms checks both accepted JSON encodings.
func TestDurationForms(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"150ms"`), &d); err != nil || d.D() != 150*time.Millisecond {
		t.Fatalf("string form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`1500000`), &d); err != nil || d.D() != 1500*time.Microsecond {
		t.Fatalf("number form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"not-a-duration"`), &d); err == nil {
		t.Fatal("want error for malformed duration")
	}
	data, err := json.Marshal(Duration(10 * time.Millisecond))
	if err != nil || string(data) != `"10ms"` {
		t.Fatalf("marshal: %s %v", data, err)
	}
}

// valid returns a minimal valid scenario to mutate in rejection cases.
func valid() Scenario {
	return Scenario{Load: LoadSpec{Rate: 100, Window: Duration(time.Second)}}
}

// TestValidate covers each rejection class, including configuration errors
// surfaced from the compiled framework configs (core.Config.Validate /
// fabric.Config.Validate).
func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string // substring of the expected error; "" = valid
	}{
		{"minimal-default", func(s *Scenario) {}, ""},
		{"fabric-variant", func(s *Scenario) { s.Framework = FrameworkStreamChain }, ""},
		{"setting-b", func(s *Scenario) { s.Nodes = NodesSpec{Orgs: 7, Consensus: 7, Faults: 2} }, ""},
		{"unknown-framework", func(s *Scenario) { s.Framework = "ethereum" }, "unknown framework"},
		{"negative-nodes", func(s *Scenario) { s.Nodes.Orgs = -1 }, "node counts"},
		{"zero-window", func(s *Scenario) { s.Load.Window = 0 }, "load.window"},
		{"negative-rate", func(s *Scenario) { s.Load.Rate = -1 }, "load.rate"},
		{"negative-warmup", func(s *Scenario) { s.Load.Warmup = -1 }, "load.warmup"},
		{"contention-range", func(s *Scenario) { s.Workload.Contention = 1.5 }, "workload.contention"},
		{"nondet-range", func(s *Scenario) { s.Workload.Nondet = -0.1 }, "workload.nondet"},
		{"hot-fraction-range", func(s *Scenario) { s.Workload.HotFraction = 2 }, "hot_fraction"},
		{"unknown-attack", func(s *Scenario) { s.Attack.Kind = "dos" }, "unknown attack"},
		{"broadcaster-on-fabric", func(s *Scenario) {
			s.Framework = FrameworkHLF
			s.Attack.Kind = AttackBroadcaster
		}, "requires the bidl framework"},
		{"negative-attack-start", func(s *Scenario) {
			s.Attack.Kind = AttackBroadcaster
			s.Attack.Start = -1
		}, "attack parameters"},
		{"bad-malicious-client", func(s *Scenario) {
			s.Attack.Kind = AttackSmart
			s.Attack.MaliciousClients = []int{-3}
		}, "malicious client"},
		{"bad-bidl-protocol", func(s *Scenario) { s.Protocol = "tendermint" }, "unknown protocol"},
		{"bad-fabric-protocol", func(s *Scenario) {
			s.Framework = FrameworkFastFabric
			s.Protocol = "hotstuff"
		}, "unknown protocol"},
		{"infeasible-quorum", func(s *Scenario) { s.Nodes = NodesSpec{Consensus: 5, Faults: 2} }, "tolerate"},
		{"loss-rate-range", func(s *Scenario) { s.Topology.LossRate = 1 }, "LossRate"},
		{"sharded-valid", func(s *Scenario) { s.Shards = 4; s.CrossShardRatio = 0.2 }, ""},
		{"shards-one-valid", func(s *Scenario) { s.Shards = 1 }, ""},
		{"sharded-fault-valid", func(s *Scenario) {
			s.Shards = 2
			s.Faults = []FaultSpec{{Kind: "crash", Shard: 1}}
		}, ""},
		{"negative-shards", func(s *Scenario) { s.Shards = -1 }, "shards must be >= 0"},
		{"cross-ratio-needs-shards", func(s *Scenario) { s.CrossShardRatio = 0.2 }, "requires shards > 1"},
		{"cross-ratio-with-one-shard", func(s *Scenario) { s.Shards = 1; s.CrossShardRatio = 0.2 }, "requires shards > 1"},
		{"cross-ratio-range", func(s *Scenario) { s.Shards = 2; s.CrossShardRatio = 1.5 }, "cross_shard_ratio"},
		{"sharded-fabric", func(s *Scenario) { s.Framework = FrameworkHLF; s.Shards = 2 }, "requires the bidl framework"},
		{"fault-shard-out-of-range", func(s *Scenario) {
			s.Shards = 2
			s.Faults = []FaultSpec{{Kind: "crash", Shard: 2}}
		}, "shard 2 out of range"},
		{"fault-shard-on-unsharded", func(s *Scenario) {
			s.Faults = []FaultSpec{{Kind: "crash", Shard: 1}}
		}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := valid()
			tc.mut(&s)
			err := s.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// fakeHarness satisfies Harness without running a simulation, so the
// driver's lifecycle enforcement can be tested in isolation. At-scheduled
// events queue up and fire in order from Run, with inFlight scripted per
// step, so the closed-loop controller is testable without a cluster.
type fakeHarness struct {
	calls     []string
	submitted []int // batch sizes passed to SubmitAt
	inFlight  []int // scripted InFlight() results, consumed per call
	timers    []fakeTimer
	fired     int
}

type fakeTimer struct {
	at time.Duration
	fn func()
}

func (f *fakeHarness) RegisterClients([]crypto.Identity) { f.calls = append(f.calls, "register") }
func (f *fakeHarness) Prepopulate(func(*ledger.State))   { f.calls = append(f.calls, "prepop") }
func (f *fakeHarness) SubmitAt(_ time.Duration, txns ...*types.Transaction) {
	f.calls = append(f.calls, "submit")
	f.submitted = append(f.submitted, len(txns))
}
func (f *fakeHarness) At(t time.Duration, fn func()) {
	f.timers = append(f.timers, fakeTimer{at: t, fn: fn})
}
func (f *fakeHarness) InFlight() int {
	if len(f.inFlight) == 0 {
		return 0
	}
	n := f.inFlight[0]
	if len(f.inFlight) > 1 { // hold the last scripted value
		f.inFlight = f.inFlight[1:]
	}
	return n
}
func (f *fakeHarness) Run(time.Duration) {
	f.calls = append(f.calls, "run")
	for f.fired < len(f.timers) {
		t := f.timers[f.fired]
		f.fired++
		t.fn()
	}
}
func (f *fakeHarness) LeaderIndex() int              { return 0 }
func (f *fakeHarness) CheckSafety() error            { return nil }
func (f *fakeHarness) Metrics() *metrics.Collector   { return nil }
func (f *fakeHarness) IdentityScheme() crypto.Scheme { return nil }
func (f *fakeHarness) VirtualEvents() uint64         { return 0 }

// TestDriverEnforcesLifecycle is the regression test for the
// client-registration / prepopulation ordering bug class: the shared driver
// must reject any call sequence other than RegisterClients → Prepopulate →
// (SubmitAt | ScheduleRate)* → Run.
func TestDriverEnforcesLifecycle(t *testing.T) {
	gen := workload.NewGenerator(workload.DefaultConfig(4), crypto.NewHMACScheme([]byte("t")))

	t.Run("prepopulate-before-register", func(t *testing.T) {
		d := NewDriver(&fakeHarness{})
		if err := d.Prepopulate(func(*ledger.State) {}); err == nil {
			t.Fatal("Prepopulate before RegisterClients must error")
		}
	})
	t.Run("submit-before-prepopulate", func(t *testing.T) {
		d := NewDriver(&fakeHarness{})
		if err := d.SubmitAt(0); err == nil {
			t.Fatal("SubmitAt before Prepopulate must error")
		}
		if err := d.RegisterClients(nil); err != nil {
			t.Fatal(err)
		}
		if err := d.SubmitAt(0); err == nil {
			t.Fatal("SubmitAt after RegisterClients but before Prepopulate must error")
		}
		if _, err := d.ScheduleRate(gen, 100, time.Second); err == nil {
			t.Fatal("ScheduleRate before Prepopulate must error")
		}
	})
	t.Run("run-before-prepopulate", func(t *testing.T) {
		d := NewDriver(&fakeHarness{})
		if err := d.Run(time.Second); err == nil {
			t.Fatal("Run before Prepopulate must error")
		}
	})
	t.Run("double-register", func(t *testing.T) {
		d := NewDriver(&fakeHarness{})
		if err := d.RegisterClients(nil); err != nil {
			t.Fatal(err)
		}
		if err := d.RegisterClients(nil); err == nil {
			t.Fatal("second RegisterClients must error")
		}
	})
	t.Run("correct-order", func(t *testing.T) {
		h := &fakeHarness{}
		d := NewDriver(h)
		if err := d.RegisterClients(nil); err != nil {
			t.Fatal(err)
		}
		if err := d.Prepopulate(func(*ledger.State) {}); err != nil {
			t.Fatal(err)
		}
		if err := d.SubmitAt(0); err != nil {
			t.Fatal(err)
		}
		if n, err := d.ScheduleRate(gen, 1000, 10*time.Millisecond); err != nil || n <= 0 {
			t.Fatalf("ScheduleRate: n=%d err=%v", n, err)
		}
		if err := d.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		want := []string{"register", "prepop", "submit", "run"}
		got := h.calls[:0:0]
		for _, c := range h.calls {
			if len(got) == 0 || got[len(got)-1] != c {
				got = append(got, c)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("call order %v, want %v", got, want)
		}
	})
}

// TestRunEndToEnd exercises the whole declarative path on a small BIDL
// cluster: spec → compile → drive → result.
func TestRunEndToEnd(t *testing.T) {
	sp := Scenario{
		Name:     "smoke",
		Nodes:    NodesSpec{Orgs: 4},
		Workload: WorkloadSpec{Clients: 8, Accounts: 400},
		Load:     LoadSpec{Rate: 2000, Window: Duration(100 * time.Millisecond)},
	}
	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted <= 0 {
		t.Fatalf("submitted %d transactions", res.Submitted)
	}
	if res.SafetyErr != nil {
		t.Fatalf("safety: %v", res.SafetyErr)
	}
	if res.Events == 0 {
		t.Fatal("no virtual events recorded")
	}
	if res.Throughput <= 0 || res.AvgLatency <= 0 {
		t.Fatalf("empty metrics: %+v", res)
	}
}

// TestRunRejectsInvalidSpec checks Run surfaces Validate errors instead of
// constructing a cluster from a bad spec.
func TestRunRejectsInvalidSpec(t *testing.T) {
	if _, err := Run(Scenario{Framework: "ethereum"}); err == nil {
		t.Fatal("Run accepted an invalid spec")
	}
}
