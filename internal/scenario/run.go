package scenario

import (
	"fmt"
	"math"
	"time"

	"github.com/bidl-framework/bidl/internal/baseline/fabric"
	"github.com/bidl-framework/bidl/internal/chaos"
	"github.com/bidl-framework/bidl/internal/core"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/metrics"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/trace"
	"github.com/bidl-framework/bidl/internal/trace/anatomy"
	"github.com/bidl-framework/bidl/internal/workload"
)

// Result summarizes one scenario run.
type Result struct {
	// Submitted is the number of transactions scheduled onto the cluster.
	Submitted int
	// Throughput is effective committed txns/s inside the measurement
	// window [Warmup, Window).
	Throughput  float64
	AvgLatency  time.Duration
	P50, P99    time.Duration
	AbortRate   float64
	SpecSuccess float64
	// Events is the number of virtual events the run's simulator executed.
	Events uint64
	// Collector exposes the run's full metrics for custom tables.
	Collector *metrics.Collector
	// SafetyErr is the end-of-run consistency audit result (nil = safe).
	SafetyErr error
	// Anatomy is the latency-anatomy breakdown, present when the spec sets
	// Anatomy (or the caller supplied a tracer and set Anatomy): stage
	// waits, phase transitions, overlap ratio, and fault-window annotation.
	Anatomy *anatomy.Report
}

// RunConfig carries runtime-only knobs that are deliberately not part of
// the declarative spec.
type RunConfig struct {
	// Tracer, when non-nil, records per-transaction lifecycle spans and
	// telemetry for the run.
	Tracer *trace.Tracer
	// Observe, when non-nil, is called with the harness after the
	// simulation finishes (before the safety audit) — for tests and
	// embedders that need framework-specific state such as ledger digests.
	Observe func(Harness)
	// ForceSerialSim pins the serial simulation engine even when the spec
	// requests sim_workers — the byte-identity reference for the PDES
	// determinism tests. The cluster is still partitioned identically, so
	// the two engines execute the exact same event sequence.
	ForceSerialSim bool
}

// Run executes the scenario and returns its result. The only error source
// is Validate: a spec that validates runs to completion (safety-audit
// failures are reported in Result.SafetyErr, not as an error).
func Run(s Scenario) (Result, error) { return RunWith(s, RunConfig{}) }

// RunWith is Run with runtime knobs. It is the one shared driver behind
// every registry experiment, `bidl-sim`, and `bidl-sim -scenario`: look up
// the spec's compile target (see target.go), build that family's harness,
// register the workload's clients, prepopulate accounts, arm the fault
// schedule, schedule the offered load, run past the window to drain, then
// summarize and safety-check.
func RunWith(s Scenario, rc RunConfig) (Result, error) {
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return Result{}, err
	}

	// The anatomy breakdown needs lifecycle events: create a private tracer
	// when the spec requests anatomy and the caller brought none.
	tracer := rc.Tracer
	if s.Anatomy && tracer == nil {
		tracer = trace.New(trace.Options{})
		rc.Tracer = tracer
	}

	window := s.Load.Window.D()
	warmup := s.Load.Warmup.D()
	if warmup == 0 {
		warmup = window / 5
	}
	drain := s.Load.Drain.D()
	if drain == 0 {
		drain = 500 * time.Millisecond
	}

	target, ok := compileTargets[s.targetName()]
	if !ok {
		return Result{}, fmt.Errorf("scenario: no compile target registered for %q", s.targetName())
	}
	b := target(s, rc)
	h := b.harness

	w := s.workloadConfig(b.orgs)
	gen := workload.NewGenerator(w, h.IdentityScheme())
	ids := make([]crypto.Identity, w.NumClients)
	for i := range ids {
		ids[i] = gen.Client(i)
	}
	d := NewDriver(h)
	if err := d.RegisterClients(ids); err != nil {
		return Result{}, err
	}
	if err := d.Prepopulate(gen.Prepopulate); err != nil {
		return Result{}, err
	}
	// Faults arm after the membership is complete (the broadcaster
	// registers its own endpoint; doing so earlier would shift endpoint
	// IDs and change the run) but before any load is scheduled.
	b.armFaults(gen)
	submitted, err := d.ScheduleLoad(gen, s.Load)
	if err != nil {
		return Result{}, err
	}
	if err := d.Run(window + drain); err != nil {
		return Result{}, err
	}
	if rc.Observe != nil {
		rc.Observe(h)
	}

	col := h.Metrics()
	res := Result{
		Submitted:   submitted(),
		Throughput:  col.EffectiveThroughput(warmup, window),
		AvgLatency:  col.AvgLatency(warmup, window),
		P50:         col.PercentileLatency(0.5, warmup, window),
		P99:         col.PercentileLatency(0.99, warmup, window),
		AbortRate:   col.AbortRate(),
		SpecSuccess: col.SpecSuccessRate(),
		Events:      h.VirtualEvents(),
		Collector:   col,
		SafetyErr:   h.CheckSafety(),
	}
	if s.Anatomy && tracer != nil {
		res.Anatomy = anatomy.Compute(tracer.TxEvents(), tracer.PhaseEvents(),
			anatomy.Options{Windows: s.AnatomyWindows()})
	}
	return res, nil
}

// AnatomyWindows compiles the fault schedule into anatomy fault windows,
// labeled by kind and target. Exposed so the offline report path
// (cmd/bidl-report) can reproduce the in-process annotation from a spec.
func (s Scenario) AnatomyWindows() []anatomy.Window {
	faults := s.compiledFaults()
	out := make([]anatomy.Window, 0, len(faults))
	for _, f := range faults {
		label := f.Kind
		switch f.Kind {
		case chaos.KindCrash:
			label = fmt.Sprintf("%s org%d/node%d", f.Kind, f.Org, f.Node)
		case chaos.KindPartition, chaos.KindChurn:
			label = fmt.Sprintf("%s org%d", f.Kind, f.Org)
		case chaos.KindDCOutage:
			label = fmt.Sprintf("%s dc%d", f.Kind, f.DC)
		}
		out = append(out, anatomy.Window{Label: label, Start: f.At, End: f.End()})
	}
	return out
}

// ScheduleTicks drives fn once per millisecond with the txn count owed at
// that tick, returning the total scheduled. The count owed is derived from
// the rounded cumulative target rate*elapsed rather than a running float
// accumulator, so rounding error never compounds: for any rate, the total
// scheduled over window is exactly round(rate * window_seconds).
func ScheduleTicks(rate float64, window time.Duration, fn func(time.Duration, int)) int {
	return ScheduleCumulative(func(t time.Duration) float64 {
		return rate * t.Seconds()
	}, window, fn)
}

// ScheduleCumulative generalizes ScheduleTicks to an arbitrary
// cumulative-arrivals function: cum(t) is the expected number of
// transactions offered in [0, t), and each millisecond tick schedules the
// integer shortfall against round(cum). Load shapes compile to closed-form
// cum functions, so shaping adds no per-tick state and a constant shape is
// byte-identical to the legacy fixed-rate schedule.
func ScheduleCumulative(cum func(time.Duration) float64, window time.Duration, fn func(time.Duration, int)) int {
	tick := time.Millisecond
	total := 0
	for at := time.Duration(0); at < window; at += tick {
		target := int(math.Round(cum(at + tick)))
		if n := target - total; n > 0 {
			fn(at, n)
			total = target
		}
	}
	return total
}

// cumulative compiles the (defaults-resolved) load shape to its closed-form
// cumulative-arrivals function. All shapes preserve mean rate: over any
// whole period (and for constant, any interval) cum(t) advances by
// Rate·Δt.
func (l LoadSpec) cumulative() func(time.Duration) float64 {
	r := l.Rate
	switch l.Shape {
	case ShapeDiurnal:
		// rate(t) = R·(1 − A·cos(2πt/P)); starts at the trough so a run
		// shorter than one period still warms up on light load.
		// ∫₀ᵗ rate = R·t − R·A·P/(2π)·sin(2πt/P).
		a := l.ShapeAmplitude
		p := l.ShapePeriod.D().Seconds()
		return func(t time.Duration) float64 {
			ts := t.Seconds()
			return r*ts - r*a*p/(2*math.Pi)*math.Sin(2*math.Pi*ts/p)
		}
	case ShapeBurst:
		// The first BurstDuty fraction of each period runs at M×R, the rest
		// at (1−M·d)/(1−d)×R, so each whole period offers exactly R·P.
		m, dty := l.BurstMultiplier, l.BurstDuty
		off := (1 - m*dty) / (1 - dty)
		p := l.ShapePeriod.D().Seconds()
		return func(t time.Duration) float64 {
			ts := t.Seconds()
			k := math.Floor(ts / p)
			frac := ts - k*p
			burstT := math.Min(frac, dty*p)
			return k*r*p + r*(m*burstT+off*(frac-burstT))
		}
	default: // ShapeConstant
		return func(t time.Duration) float64 { return r * t.Seconds() }
	}
}

// --- spec → framework config compilation --------------------------------

// topology lowers TopologySpec onto simnet.DefaultTopology, overriding
// only explicitly set fields. Negative bandwidths mean unlimited.
func (t TopologySpec) topology() simnet.Topology {
	topo := simnet.DefaultTopology()
	if t.IntraLatency != 0 {
		topo.IntraLatency = t.IntraLatency.D()
	}
	if t.InterLatency != 0 {
		topo.InterLatency = t.InterLatency.D()
	}
	if t.NICGbps < 0 {
		topo.NICBandwidth = 0
	} else if t.NICGbps > 0 {
		topo.NICBandwidth = int64(t.NICGbps * float64(simnet.Gbps))
	}
	if t.InterDCGbps > 0 {
		topo.InterDCBandwidth = int64(t.InterDCGbps * float64(simnet.Gbps))
	}
	if t.Jitter != 0 {
		topo.Jitter = t.Jitter.D()
	}
	topo.LossRate = t.LossRate
	return topo
}

// bidlConfig compiles the spec for the BIDL framework: start from
// core.DefaultConfig (the paper's setting A) and override only fields the
// spec sets, so an empty spec reproduces the default deployment exactly.
func (s Scenario) bidlConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = s.EffectiveSeed()
	if s.Protocol != "" {
		cfg.Protocol = s.Protocol
	}
	if s.Nodes.Orgs > 0 {
		cfg.NumOrgs = s.Nodes.Orgs
	}
	if s.Nodes.PerOrg > 0 {
		cfg.NormalPerOrg = s.Nodes.PerOrg
	}
	if s.Nodes.Consensus > 0 {
		cfg.NumConsensus = s.Nodes.Consensus
		cfg.F = 0 // rederive below unless the spec pins it
	}
	if s.Nodes.Faults > 0 {
		cfg.F = s.Nodes.Faults
	} else if s.Nodes.Consensus >= 4 {
		cfg.F = (s.Nodes.Consensus - 1) / 3
	}
	if s.Nodes.Datacenters > 0 {
		cfg.NumDCs = s.Nodes.Datacenters
	}
	cfg.Topology = s.Topology.topology()

	tu := s.Tuning
	if tu.BlockSize > 0 {
		cfg.BlockSize = tu.BlockSize
	}
	if tu.BlockTimeout != 0 {
		cfg.BlockTimeout = tu.BlockTimeout.D()
	}
	if tu.ViewTimeout != 0 {
		cfg.ViewTimeout = tu.ViewTimeout.D()
	}
	if tu.ClientTimeout != 0 {
		cfg.ClientTimeout = tu.ClientTimeout.D()
	}
	if tu.SeqFlushInterval != 0 {
		cfg.SeqFlushInterval = tu.SeqFlushInterval.D()
	}
	if tu.SeqBatchMax > 0 {
		cfg.SeqBatchMax = tu.SeqBatchMax
	}
	if tu.ResultFlushInterval != 0 {
		cfg.ResultFlushInterval = tu.ResultFlushInterval.D()
	}
	if tu.ReexecThreshold > 0 {
		cfg.ReexecThreshold = tu.ReexecThreshold
	}
	if tu.SampleVerify > 0 {
		cfg.SampleVerify = tu.SampleVerify
	}
	if tu.DenyRejoin != 0 {
		cfg.DenyRejoin = tu.DenyRejoin.D()
	}
	cfg.DisableDenylist = tu.DisableDenylist
	cfg.DisableMulticast = tu.DisableMulticast
	cfg.ConsensusOnPayload = tu.ConsensusOnPayload
	cfg.DisableSpeculation = tu.DisableSpeculation

	if s.Costs != nil {
		cfg.Costs = *s.Costs
	}
	cfg.SimWorkers = s.effectiveSimWorkers()
	return cfg
}

// effectiveSimWorkers resolves the PDES concurrency for the compiled
// config. Faulted scenarios (including the legacy attack spec) are pinned
// to the serial engine: the injector mutates cluster state mid-run from
// outside the partition discipline, and its drop rules must see globally
// ordered sends. Closed-loop scenarios pin serial for the same reason —
// the load controller reads cluster-wide in-flight state and schedules
// global events mid-run.
func (s Scenario) effectiveSimWorkers() int {
	if s.Attack.Kind != "" || len(s.Faults) > 0 || s.Load.ClosedLoop != nil {
		return 0
	}
	return s.SimWorkers
}

// fabricVariant maps the framework name onto the baseline variant.
func fabricVariant(framework string) (fabric.Variant, bool) {
	switch framework {
	case FrameworkHLF:
		return fabric.HLF, true
	case FrameworkFastFabric:
		return fabric.FastFabric, true
	case FrameworkStreamChain:
		return fabric.StreamChain, true
	}
	return 0, false
}

// fabricConfig compiles the spec for a baseline framework, starting from
// the variant's DefaultConfig.
func (s Scenario) fabricConfig() fabric.Config {
	v, _ := fabricVariant(s.Framework)
	cfg := fabric.DefaultConfig(v)
	cfg.Seed = s.EffectiveSeed()
	if s.Protocol != "" {
		cfg.Protocol = s.Protocol
	}
	if s.Nodes.Orgs > 0 {
		cfg.NumOrgs = s.Nodes.Orgs
	}
	if s.Nodes.PerOrg > 0 {
		cfg.PeersPerOrg = s.Nodes.PerOrg
	}
	if s.Nodes.Consensus > 0 {
		cfg.NumOrderers = s.Nodes.Consensus
		cfg.F = 0
	}
	if s.Nodes.Faults > 0 {
		cfg.F = s.Nodes.Faults
	} else if s.Nodes.Consensus >= 4 {
		cfg.F = (s.Nodes.Consensus - 1) / 3
	}
	if s.Nodes.Datacenters > 0 {
		cfg.NumDCs = s.Nodes.Datacenters
	}
	cfg.Topology = s.Topology.topology()

	tu := s.Tuning
	if tu.BlockSize > 0 {
		cfg.BlockSize = tu.BlockSize
	}
	if tu.BlockTimeout != 0 {
		cfg.BlockTimeout = tu.BlockTimeout.D()
	}
	if tu.ViewTimeout != 0 {
		cfg.ViewTimeout = tu.ViewTimeout.D()
	}
	if s.Costs != nil {
		cfg.Costs = *s.Costs
	}
	cfg.SimWorkers = s.effectiveSimWorkers()
	return cfg
}

// workloadConfig compiles the workload spec. orgs is the compiled
// cluster's organization count — the generator always spans exactly the
// deployed organizations.
func (s Scenario) workloadConfig(orgs int) workload.Config {
	w := workload.DefaultConfig(orgs)
	ws := s.Workload
	if ws.Clients > 0 {
		w.NumClients = ws.Clients
	}
	if ws.Accounts > 0 {
		w.Accounts = ws.Accounts
	}
	if ws.HotFraction > 0 {
		w.HotFraction = ws.HotFraction
	}
	w.ContentionRatio = ws.Contention
	w.NondetRatio = ws.Nondet
	w.ZipfS = ws.ZipfS
	w.SettlementRatio = ws.Settlement
	if ws.InitialBalance != 0 {
		w.InitialBalance = ws.InitialBalance
	}
	if ws.Padding > 0 {
		w.Padding = ws.Padding
	}
	w.Seed = ws.Seed
	if w.Seed == 0 {
		w.Seed = s.EffectiveSeed()
	}
	// Shard-aware routing only arms for genuinely sharded runs, so the
	// single-channel generator stream stays byte-identical.
	if s.Shards > 1 {
		w.Shards = s.Shards
		w.CrossShardRatio = s.CrossShardRatio
	}
	return w
}

// Validate reports the first error in the spec or in the framework config
// it compiles to. A scenario that validates runs to completion.
func (s Scenario) Validate() error {
	s = s.WithDefaults()

	isBIDL := s.Framework == FrameworkBIDL
	if _, ok := fabricVariant(s.Framework); !ok && !isBIDL {
		return fmt.Errorf("scenario: unknown framework %q", s.Framework)
	}
	if n := s.Nodes; n.Orgs < 0 || n.PerOrg < 0 || n.Consensus < 0 || n.Faults < 0 || n.Datacenters < 0 {
		return fmt.Errorf("scenario: node counts must be >= 0 (%+v)", n)
	}
	if s.SimWorkers < 0 || s.SimWorkers > simnet.MaxPartitions {
		return fmt.Errorf("scenario: sim_workers must be in [0,%d] (got %d)", simnet.MaxPartitions, s.SimWorkers)
	}
	if s.Shards < 0 {
		return fmt.Errorf("scenario: shards must be >= 0 (got %d)", s.Shards)
	}
	if s.Shards > 1 && !isBIDL {
		return fmt.Errorf("scenario: shards > 1 requires the bidl framework (got %q)", s.Framework)
	}
	if s.CrossShardRatio < 0 || s.CrossShardRatio > 1 {
		return fmt.Errorf("scenario: cross_shard_ratio must be in [0,1] (got %g)", s.CrossShardRatio)
	}
	if s.CrossShardRatio > 0 && s.Shards <= 1 {
		return fmt.Errorf("scenario: cross_shard_ratio %g requires shards > 1 (got shards=%d)", s.CrossShardRatio, s.Shards)
	}

	if s.Load.Window <= 0 {
		return fmt.Errorf("scenario: load.window must be > 0 (got %s)", s.Load.Window)
	}
	if s.Load.Rate < 0 {
		return fmt.Errorf("scenario: load.rate must be >= 0 (got %g)", s.Load.Rate)
	}
	if s.Load.Warmup < 0 || s.Load.Drain < 0 {
		return fmt.Errorf("scenario: load.warmup and load.drain must be >= 0")
	}
	l := s.Load.withShapeDefaults()
	switch l.Shape {
	case ShapeConstant, ShapeDiurnal, ShapeBurst:
	default:
		return fmt.Errorf("scenario: unknown load_shape %q", s.Load.Shape)
	}
	if l.ShapeAmplitude < 0 || l.ShapeAmplitude > 1 {
		return fmt.Errorf("scenario: load.shape_amplitude must be in [0,1] (got %g)", l.ShapeAmplitude)
	}
	if l.ShapePeriod <= 0 {
		return fmt.Errorf("scenario: load.shape_period must be > 0 (got %s)", l.ShapePeriod)
	}
	if l.Shape == ShapeBurst {
		if l.BurstDuty <= 0 || l.BurstDuty >= 1 {
			return fmt.Errorf("scenario: load.burst_duty must be in (0,1) (got %g)", l.BurstDuty)
		}
		if l.BurstMultiplier < 1 {
			return fmt.Errorf("scenario: load.burst_multiplier must be >= 1 (got %g)", l.BurstMultiplier)
		}
		if l.BurstMultiplier*l.BurstDuty >= 1 {
			return fmt.Errorf("scenario: burst_multiplier*burst_duty must be < 1 to keep the mean rate (got %g)",
				l.BurstMultiplier*l.BurstDuty)
		}
	}
	if cl := l.ClosedLoop; cl != nil {
		if cl.MaxInFlight < 1 {
			return fmt.Errorf("scenario: closed_loop.max_in_flight must be >= 1 (got %d)", cl.MaxInFlight)
		}
		if cl.Backoff <= 0 || cl.MaxBackoff < cl.Backoff {
			return fmt.Errorf("scenario: closed_loop backoff must be > 0 and max_backoff >= backoff")
		}
	}

	ws := s.Workload
	switch {
	case ws.Clients < 0 || ws.Accounts < 0:
		return fmt.Errorf("scenario: workload counts must be >= 0")
	case ws.HotFraction < 0 || ws.HotFraction > 1:
		return fmt.Errorf("scenario: workload.hot_fraction must be in [0,1] (got %g)", ws.HotFraction)
	case ws.Contention < 0 || ws.Contention > 1:
		return fmt.Errorf("scenario: workload.contention must be in [0,1] (got %g)", ws.Contention)
	case ws.Nondet < 0 || ws.Nondet > 1:
		return fmt.Errorf("scenario: workload.nondet must be in [0,1] (got %g)", ws.Nondet)
	case ws.ZipfS != 0 && ws.ZipfS <= 1:
		return fmt.Errorf("scenario: workload.zipf_s must be 0 (uniform) or > 1 (got %g)", ws.ZipfS)
	case ws.Settlement < 0 || ws.Settlement > 1:
		return fmt.Errorf("scenario: workload.settlement must be in [0,1] (got %g)", ws.Settlement)
	case ws.Settlement+ws.Nondet > 1:
		return fmt.Errorf("scenario: workload.settlement + workload.nondet must be <= 1 (got %g)", ws.Settlement+ws.Nondet)
	}

	switch s.Attack.Kind {
	case "", AttackLeader, AttackBroadcaster, AttackSmart:
	default:
		return fmt.Errorf("scenario: unknown attack kind %q", s.Attack.Kind)
	}
	if s.Attack.Start < 0 || s.Attack.Window < 0 || s.Attack.Interval < 0 || s.Attack.DetectLag < 0 {
		return fmt.Errorf("scenario: attack parameters must be >= 0")
	}

	if isBIDL {
		cfg := s.bidlConfig()
		if err := s.validateFaults(cfg.NumOrgs, cfg.NormalPerOrg, cfg.NumDCs, true); err != nil {
			return err
		}
		return cfg.Validate()
	}
	cfg := s.fabricConfig()
	if err := s.validateFaults(cfg.NumOrgs, cfg.PeersPerOrg, cfg.NumDCs, false); err != nil {
		return err
	}
	return cfg.Validate()
}
