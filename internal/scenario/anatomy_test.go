package scenario

import (
	"bytes"
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/trace"
	"github.com/bidl-framework/bidl/internal/trace/anatomy"
)

func anatomySpec(framework string, workers int) Scenario {
	return Scenario{
		Name:       "anatomy-test",
		Framework:  framework,
		Nodes:      NodesSpec{Orgs: 4},
		Workload:   WorkloadSpec{Clients: 8, Accounts: 400},
		Load:       LoadSpec{Rate: 2000, Window: Duration(100 * time.Millisecond)},
		SimWorkers: workers,
		Anatomy:    true,
	}
}

// runAnatomy runs the spec with an explicit tracer and returns the rendered
// anatomy, its CSV, the JSONL export, and the report itself.
func runAnatomy(t *testing.T, sp Scenario, forceSerial bool) (string, string, []byte, *anatomy.Report) {
	t.Helper()
	tr := trace.New(trace.Options{})
	res, err := RunWith(sp, RunConfig{Tracer: tr, ForceSerialSim: forceSerial})
	if err != nil {
		t.Fatal(err)
	}
	if res.SafetyErr != nil {
		t.Fatalf("safety: %v", res.SafetyErr)
	}
	if res.Anatomy == nil {
		t.Fatal("spec requested anatomy but Result.Anatomy is nil")
	}
	var rbuf, cbuf, jbuf bytes.Buffer
	if err := res.Anatomy.Render(&rbuf); err != nil {
		t.Fatal(err)
	}
	if err := res.Anatomy.CSV(&cbuf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&jbuf); err != nil {
		t.Fatal(err)
	}
	return rbuf.String(), cbuf.String(), jbuf.Bytes(), res.Anatomy
}

// TestAnatomyInvariantOverRealRuns asserts the central decomposition
// invariant over real traced runs of both frameworks: every transaction's
// stage waits sum exactly to its measured submit→notified latency.
func TestAnatomyInvariantOverRealRuns(t *testing.T) {
	for _, fw := range []string{FrameworkBIDL, FrameworkHLF} {
		_, _, _, rep := runAnatomy(t, anatomySpec(fw, 0), false)
		if rep.Complete == 0 {
			t.Fatalf("%s: no complete transactions traced", fw)
		}
		for _, bd := range rep.Breakdowns {
			var sum time.Duration
			for _, w := range bd.Waits {
				sum += w
			}
			if want := bd.Notified - bd.Submit; sum != want {
				t.Fatalf("%s: tx %x waits sum %v != e2e %v", fw, bd.Tx[:4], sum, want)
			}
		}
		if fw == FrameworkBIDL && rep.Overlap.ExecTxs == 0 {
			t.Errorf("%s: no execution intervals measured", fw)
		}
	}
}

// TestAnatomySerialVsPDESIdentical pins the same-seed anatomy output
// byte-identical between a -sim-workers run and the serial reference.
func TestAnatomySerialVsPDESIdentical(t *testing.T) {
	renderP, csvP, jsonlP, _ := runAnatomy(t, anatomySpec(FrameworkBIDL, 4), false)
	renderS, csvS, jsonlS, _ := runAnatomy(t, anatomySpec(FrameworkBIDL, 4), true)
	if renderP != renderS {
		t.Errorf("anatomy render differs between PDES and serial:\n--- pdes ---\n%s--- serial ---\n%s", renderP, renderS)
	}
	if csvP != csvS {
		t.Error("anatomy CSV differs between PDES and serial")
	}
	if !bytes.Equal(jsonlP, jsonlS) {
		t.Error("JSONL export differs between PDES and serial")
	}
}

// TestAnatomyOfflineMatchesInProcess pins the offline path byte-identical:
// computing the breakdown from the JSONL export must reproduce the
// in-process report exactly — this is what freezes the JSONL schema.
func TestAnatomyOfflineMatchesInProcess(t *testing.T) {
	for _, fw := range []string{FrameworkBIDL, FrameworkFastFabric} {
		sp := anatomySpec(fw, 0)
		render, csv, jsonl, _ := runAnatomy(t, sp, false)
		data, err := trace.ValidateJSONL(bytes.NewReader(jsonl))
		if err != nil {
			t.Fatalf("%s: exported JSONL fails validation: %v", fw, err)
		}
		rep := anatomy.Compute(data.TxEvents, data.PhaseEvents,
			anatomy.Options{Windows: sp.AnatomyWindows()})
		var rbuf, cbuf bytes.Buffer
		if err := rep.Render(&rbuf); err != nil {
			t.Fatal(err)
		}
		if err := rep.CSV(&cbuf); err != nil {
			t.Fatal(err)
		}
		if rbuf.String() != render {
			t.Errorf("%s: offline render differs from in-process:\n--- offline ---\n%s--- in-process ---\n%s",
				fw, rbuf.String(), render)
		}
		if cbuf.String() != csv {
			t.Errorf("%s: offline CSV differs from in-process", fw)
		}
	}
}

// TestAnatomyFaultWindowsAnnotated runs a crash scenario and checks the
// report carries the compiled fault window plus the outside-windows row.
func TestAnatomyFaultWindowsAnnotated(t *testing.T) {
	sp := anatomySpec(FrameworkBIDL, 0)
	sp.Faults = []FaultSpec{{
		Kind: "crash", Org: 1, Node: 0,
		At: Duration(20 * time.Millisecond), Duration: Duration(30 * time.Millisecond),
	}}
	_, _, _, rep := runAnatomy(t, sp, false)
	if len(rep.Windows) != 2 {
		t.Fatalf("windows = %+v, want crash window + outside row", rep.Windows)
	}
	if rep.Windows[0].Label != "crash org1/node0" {
		t.Errorf("window label = %q", rep.Windows[0].Label)
	}
	if rep.Windows[1].Label != "outside windows" {
		t.Errorf("second row = %q", rep.Windows[1].Label)
	}
}

// TestAnatomyPrivateTracer checks spec.Anatomy alone (no caller tracer)
// produces a report.
func TestAnatomyPrivateTracer(t *testing.T) {
	res, err := Run(anatomySpec(FrameworkBIDL, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Anatomy == nil || res.Anatomy.Complete == 0 {
		t.Fatalf("anatomy = %+v, want populated report", res.Anatomy)
	}
}
