package scenario

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/core"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/types"
	"github.com/bidl-framework/bidl/internal/workload"
)

// shardedFixture builds a 2-shard harness with a small per-shard cluster and
// a registered workload client set.
func shardedFixture(t testing.TB, shards, simWorkers int) (*ShardedHarness, *workload.Generator) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.NumOrgs = 4
	cfg.BlockSize = 50
	cfg.BlockTimeout = 5 * time.Millisecond
	cfg.Seed = 7
	h := NewShardedHarness(ShardedConfig{Shards: shards, Shard: cfg, SimWorkers: simWorkers})

	w := workload.DefaultConfig(cfg.NumOrgs)
	w.NumClients = 8
	w.Accounts = 400
	gen := workload.NewGenerator(w, h.IdentityScheme())
	ids := make([]crypto.Identity, w.NumClients)
	for i := range ids {
		ids[i] = gen.Client(i)
	}
	h.RegisterClients(ids)
	h.Prepopulate(gen.Prepopulate)
	return h, gen
}

// payTx hand-crafts a signed send_payment between account indices.
func payTx(t testing.TB, h *ShardedHarness, client crypto.Identity, nonce uint64, src, dst int, amt int) *types.Transaction {
	t.Helper()
	org := func(i int) string { return "org" + strconv.Itoa(i%4) }
	tx := &types.Transaction{
		Client:   client,
		Nonce:    nonce,
		Contract: "smallbank",
		Fn:       "send_payment",
		Args: [][]byte{
			[]byte("acct-" + strconv.Itoa(src)),
			[]byte("acct-" + strconv.Itoa(dst)),
			[]byte(strconv.Itoa(amt)),
		},
		Orgs: []string{org(src), org(dst)},
	}
	if err := tx.Sign(h.IdentityScheme()); err != nil {
		t.Fatal(err)
	}
	return tx
}

// accountPair finds the skip-th (src, dst) pair with distinct orgs whose
// shards match `cross`. Distinct skip values yield disjoint account sets, so
// concurrent cross-shard transfers built from them never contend on locks.
func accountPair(n int, cross bool, skip int) (int, int) {
	for src := 0; src < 400; src++ {
		for dst := src + 1; dst < src+50; dst++ {
			if src%4 == dst%4 {
				continue // generator never pairs same-org accounts
			}
			sameShard := ledger.IndexShard(src, n) == ledger.IndexShard(dst, n)
			if sameShard != cross {
				if skip == 0 {
					return src, dst
				}
				skip--
				src += 50 // jump past both accounts of this pair
				break
			}
		}
	}
	panic("no pair found")
}

// Single-shard and cross-shard payments both commit end-to-end, the 2PC
// stats add up, and safety (including the atomicity audit) passes.
func TestShardedEndToEnd(t *testing.T) {
	h, gen := shardedFixture(t, 2, 0)
	c0 := gen.Client(0)

	sSrc, sDst := accountPair(2, false, 0)
	xSrc, xDst := accountPair(2, true, 0)
	x2Src, x2Dst := accountPair(2, true, 1)
	txs := []*types.Transaction{
		payTx(t, h, c0, 1000, sSrc, sDst, 5),
		payTx(t, h, c0, 1001, xSrc, xDst, 7),
		payTx(t, h, c0, 1002, x2Src, x2Dst, 3),
	}
	h.SubmitAt(10*time.Millisecond, txs...)
	h.Run(2 * time.Second)

	if got := h.Metrics().NumCommitted(); got != len(txs) {
		t.Fatalf("committed %d of %d", got, len(txs))
	}
	if ab := h.Metrics().NumAborted(); ab != 0 {
		t.Fatalf("%d aborts in a conflict-free run", ab)
	}
	begun, committed, aborted, unresolved := h.CrossShardStats()
	if begun != 2 || committed != 2 || aborted != 0 || unresolved != 0 {
		t.Fatalf("cross-shard stats: begun=%d committed=%d aborted=%d unresolved=%d",
			begun, committed, aborted, unresolved)
	}
	if err := h.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

// Two cross-shard transfers fighting over one account: the first prepare
// wins its lock, the second aborts on every touched shard (atomicity), and
// the aborted transfer's funds are fully refunded.
func TestShardedLockConflictAborts(t *testing.T) {
	h, gen := shardedFixture(t, 2, 0)
	c0 := gen.Client(0)

	xSrc, xDst := accountPair(2, true, 0)
	txs := []*types.Transaction{
		payTx(t, h, c0, 1, xSrc, xDst, 5),
		payTx(t, h, c0, 2, xSrc, xDst, 5), // same src: loses the lock race
	}
	h.SubmitAt(10*time.Millisecond, txs...)
	h.Run(2 * time.Second)

	begun, committed, aborted, unresolved := h.CrossShardStats()
	if begun != 2 || unresolved != 0 {
		t.Fatalf("begun=%d unresolved=%d, want 2/0", begun, unresolved)
	}
	if committed != 1 || aborted != 1 {
		t.Fatalf("committed=%d aborted=%d, want exactly one of each", committed, aborted)
	}
	if got := h.Metrics().NumAborted(); got != 1 {
		t.Fatalf("collector aborts = %d, want 1", got)
	}
	if err := h.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

// shardedSpec is a small declarative sharded experiment.
func shardedSpec() Scenario {
	return Scenario{
		Shards:          2,
		CrossShardRatio: 0.1,
		Seed:            7,
		Nodes:           NodesSpec{Orgs: 4},
		Workload:        WorkloadSpec{Clients: 8, Accounts: 400},
		Load:            LoadSpec{Rate: 2000, Window: Duration(200 * time.Millisecond)},
	}
}

// A declarative sharded spec runs through the standard driver end-to-end:
// transactions commit, 2PC transfers happen, and the safety audit (per-shard
// consistency plus cross-shard atomicity) passes.
func TestShardedScenarioRun(t *testing.T) {
	var stats [4]int
	res, err := RunWith(shardedSpec(), RunConfig{Observe: func(h Harness) {
		sh := h.(*ShardedHarness)
		stats[0], stats[1], stats[2], stats[3] = sh.CrossShardStats()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.SafetyErr != nil {
		t.Fatalf("safety: %v", res.SafetyErr)
	}
	if res.Collector.NumCommitted() == 0 {
		t.Fatal("no transactions committed")
	}
	if stats[0] == 0 {
		t.Fatal("no cross-shard transfers at ratio 0.1")
	}
	if stats[1] == 0 {
		t.Fatal("no cross-shard transfer committed")
	}
}

// `shards: 1` must reproduce the unsharded engine exactly: it compiles
// through the same single-channel target, so every result field — including
// the virtual event count — is identical to a spec without the field.
func TestShardsOneMatchesUnsharded(t *testing.T) {
	base := shardedSpec()
	base.Shards = 0
	base.CrossShardRatio = 0
	one := base
	one.Shards = 1

	r0, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Events != r1.Events || r0.Submitted != r1.Submitted ||
		r0.Throughput != r1.Throughput || r0.AvgLatency != r1.AvgLatency ||
		r0.P99 != r1.P99 {
		t.Fatalf("shards:1 diverged from unsharded:\n%+v\n%+v", r0, r1)
	}
}

// The spec-level PDES path: sim_workers on a sharded spec must replay the
// serial run byte-identically (events and per-shard ledger digests).
func TestShardedSpecSerialVsPDES(t *testing.T) {
	run := func(forceSerial bool) (Result, string) {
		spec := shardedSpec()
		spec.Shards = 4
		spec.SimWorkers = 4
		var digests string
		res, err := RunWith(spec, RunConfig{
			ForceSerialSim: forceSerial,
			Observe: func(h Harness) {
				digests = fmt.Sprint(h.(*ShardedHarness).LedgerDigests())
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, digests
	}
	rSer, dSer := run(true)
	rPar, dPar := run(false)
	if dSer != dPar {
		t.Fatalf("ledger digests diverged:\nserial: %s\npdes:   %s", dSer, dPar)
	}
	if rSer.Events != rPar.Events {
		t.Fatalf("event counts diverged: serial %d, pdes %d", rSer.Events, rPar.Events)
	}
	if rSer.Throughput != rPar.Throughput || rSer.P99 != rPar.P99 {
		t.Fatalf("metrics diverged:\n%+v\n%+v", rSer, rPar)
	}
}

// A sharded run is deterministic: same seed → identical per-shard ledger
// digests, metrics, and event counts, serial and under PDES.
func TestShardedSerialPDESDeterminism(t *testing.T) {
	fingerprint := func(workers int) string {
		h, gen := shardedFixture(t, 2, workers)
		c0 := gen.Client(0)
		var txs []*types.Transaction
		nonce := uint64(1)
		for i := 0; i < 40; i++ {
			cross := i%5 == 0
			src, dst := accountPair(2, cross, i%6)
			txs = append(txs, payTx(t, h, c0, nonce, src, dst, 1+i%7))
			nonce++
		}
		h.SubmitAt(10*time.Millisecond, txs...)
		h.Run(2 * time.Second)
		if err := h.CheckSafety(); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("digests=%v committed=%d aborted=%d events=%d",
			h.LedgerDigests(), h.Metrics().NumCommitted(), h.Metrics().NumAborted(), h.VirtualEvents())
	}
	serial := fingerprint(0)
	if again := fingerprint(0); again != serial {
		t.Fatalf("serial rerun diverged:\n%s\n%s", serial, again)
	}
	if pdes := fingerprint(4); pdes != serial {
		t.Fatalf("PDES diverged from serial:\n%s\n%s", serial, pdes)
	}
}
