package scenario

import (
	"fmt"
	"strconv"
	"time"

	"github.com/bidl-framework/bidl/internal/contract"
	"github.com/bidl-framework/bidl/internal/core"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/metrics"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/trace"
	"github.com/bidl-framework/bidl/internal/types"
)

// ShardedHarness runs N independent BIDL channels — each a full core.Cluster
// with its own sequencers, consensus group, and organizations — over ONE
// shared simnet.Sim, and stitches them into a single Harness so the Driver,
// every load shape, and the fault machinery work unchanged (DESIGN.md §14).
//
// The keyspace is partitioned by ledger.KeyShard: a transaction whose
// declared write set (contract.KeyDeclarer) falls entirely on one shard is
// routed to that shard's sequencer and flows through the ordinary BIDL
// pipeline; a send_payment spanning two shards is decomposed into a
// two-phase commit driven by per-shard coordinator clients (the "xcoord"
// endpoints): phase 1 submits prepare sub-transactions through each touched
// shard's own sequencer+consensus path, and once both outcomes are known the
// decision (commit everywhere or abort everywhere) is dispatched the same
// way. All coordinator state lives on PDES partition 0 — coordinator clients
// are hub-partition endpoints, so a parallel run replays the exact serial
// coordination order and sharded runs stay serial-vs-PDES byte-identical.
type ShardedHarness struct {
	sim       *simnet.Sim
	net       *simnet.Network
	scheme    crypto.Scheme
	collector *metrics.Collector
	tracer    *trace.Tracer
	shards    []*core.Cluster
	keyOwner  contract.KeyOwnerFunc

	// Per-shard 2PC coordinator clients.
	xid    []crypto.Identity
	xep    []simnet.NodeID
	xnonce []uint64

	gidSeq  uint64
	subs    map[types.TxID]*xsubref
	records []*xrecord
	open    int // records not yet resolved
}

// xrecord tracks one cross-shard transaction through its two phases.
type xrecord struct {
	orig                    types.TxID
	debitShard, creditShard int
	// The four possible decision sub-transactions, pre-signed at submit
	// time so the hook never draws nonces in notice-arrival order.
	commitD, commitC, abortD, abortC *types.Transaction

	votes, prepAborts int
	decided           bool
	abort             bool // the decision, once decided
	resolved          int
	done              bool
	// decisionAborted records a phase-2 sub-transaction reporting an
	// execution abort — an atomicity violation (decisions are infallible by
	// contract design), surfaced by CheckSafety.
	decisionAborted bool
}

type xsubref struct {
	rec   *xrecord
	phase int // 1 = prepare, 2 = decision
}

// ShardedConfig parameterizes a sharded deployment.
type ShardedConfig struct {
	// Shards is the number of channels (>= 1).
	Shards int
	// Shard is the per-shard cluster template: every shard gets this many
	// organizations, consensus nodes, etc. Seed, Costs, Topology, and
	// Tracer are taken from it; per-shard node randomness is decorrelated
	// by shard index.
	Shard core.Config
	// SimWorkers requests PDES across the union of all shards' partitions.
	SimWorkers int
}

// NewShardedHarness builds cfg.Shards clusters on one shared simulation.
func NewShardedHarness(cfg ShardedConfig) *ShardedHarness {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	base := cfg.Shard
	sim := simnet.NewSim(base.Seed)
	// One partition space across all shards: shard i's organizations map to
	// ShardPartition(i*NumOrgs + o), so PDES parallelism scales with the
	// total org count, not the per-shard count. All consensus nodes,
	// sequencers, clients, and coordinators share hub partition 0.
	sim.SetPartitions(simnet.PartitionCount(cfg.SimWorkers, cfg.Shards*base.NumOrgs))
	sim.SetWorkers(cfg.SimWorkers)
	net := simnet.NewNetwork(sim, base.Topology)
	net.SetTracer(base.Tracer)
	scheme := crypto.NewHMACScheme([]byte(fmt.Sprintf("bidl-%d", base.Seed)))
	collector := metrics.NewCollector()

	h := &ShardedHarness{
		sim:       sim,
		net:       net,
		scheme:    scheme,
		collector: collector,
		tracer:    base.Tracer,
		keyOwner:  base.KeyOwner,
		subs:      make(map[types.TxID]*xsubref),
	}
	if h.keyOwner == nil {
		h.keyOwner = contract.SmallBankKeyOwner(base.NumOrgs)
	}
	for i := 0; i < cfg.Shards; i++ {
		sc := base
		sc.Sim = sim
		sc.Net = net
		sc.Scheme = scheme
		sc.Collector = collector
		sc.Label = "s" + strconv.Itoa(i) + "/"
		sc.OrgPartitionOffset = i * base.NumOrgs
		// Decorrelate per-shard node randomness and leader rotation; the
		// shared scheme above keeps client keys identical across shards.
		sc.Seed = base.Seed + int64(i)*1_000_000_007
		h.shards = append(h.shards, core.NewCluster(sc))
		h.xid = append(h.xid, crypto.Identity("xcoord-s"+strconv.Itoa(i)))
		h.xnonce = append(h.xnonce, 0)
	}
	return h
}

// NumShards returns the channel count.
func (h *ShardedHarness) NumShards() int { return len(h.shards) }

// Shard exposes one channel's cluster (tests, fault wiring).
func (h *ShardedHarness) Shard(i int) *core.Cluster { return h.shards[i] }

// RegisterClients implements Harness: every workload client is registered on
// every shard (a client's transactions may route anywhere), then each
// shard's coordinator client is registered last — after all workload
// endpoints — so endpoint IDs are independent of the client set's content.
func (h *ShardedHarness) RegisterClients(ids []crypto.Identity) {
	for _, s := range h.shards {
		s.RegisterClients(ids)
	}
	for i, s := range h.shards {
		if len(h.xep) > i { // idempotent second call
			continue
		}
		h.scheme.Register(h.xid[i])
		s.RegisterClients([]crypto.Identity{h.xid[i]})
		s.SetClientHook(h.xid[i], h.onCoordNotice)
		h.xep = append(h.xep, s.ClientEndpoint(h.xid[i]))
	}
}

// Prepopulate implements Harness: every shard holds the FULL base state.
// Only the keys a shard owns are ever written there, so non-owned keys stay
// at their base version on all of a shard's replicas — identical staleness,
// which is exactly what per-org state agreement requires.
func (h *ShardedHarness) Prepopulate(fn func(*ledger.State)) {
	for _, s := range h.shards {
		s.Prepopulate(fn)
	}
}

// SubmitAt implements Harness: classify each transaction by its declared
// write-key set and route it — single-shard transactions to their shard's
// clients, two-shard payments through the 2PC coordinator.
func (h *ShardedHarness) SubmitAt(at time.Duration, txns ...*types.Transaction) {
	n := len(h.shards)
	perShard := make([][]*types.Transaction, n)
	for _, tx := range txns {
		keys, declared := h.shards[0].Registry.DeclaredWrites(tx)
		shard, cross := classify(keys, declared, tx, n)
		if !cross {
			perShard[shard] = append(perShard[shard], tx)
			continue
		}
		d, c := h.beginCross(at, tx, keys)
		perShard[d.debitShard] = append(perShard[d.debitShard], c[0])
		perShard[d.creditShard] = append(perShard[d.creditShard], c[1])
	}
	for i, batch := range perShard {
		if len(batch) > 0 {
			h.shards[i].SubmitAt(at, batch...)
		}
	}
}

// classify maps a declared write set to (shard, cross). Transactions with
// no declaration, no writes, or writes on one shard are single-shard; only
// a two-account payment spanning two shards goes through 2PC. Anything else
// multi-shard (not produced by the workload generator) falls back to the
// first key's shard — a documented approximation, safe because every shard
// executes deterministically and per-shard consistency is still audited.
func classify(keys []string, declared bool, tx *types.Transaction, n int) (shard int, cross bool) {
	if !declared || len(keys) == 0 {
		// Route by client so undeclared traffic still spreads; the draw is
		// deterministic in the transaction alone.
		return ledger.KeyShard(string(tx.Client), n), false
	}
	first := ledger.KeyShard(keys[0], n)
	multi := false
	for _, k := range keys[1:] {
		if ledger.KeyShard(k, n) != first {
			multi = true
			break
		}
	}
	if !multi {
		return first, false
	}
	if tx.Contract == "smallbank" && tx.Fn == "send_payment" && len(keys) == 2 {
		return first, true
	}
	return first, false
}

// beginCross decomposes a two-shard payment: pre-signs all six possible
// sub-transactions, registers the prepares with the coordinator, and
// accounts the original transaction as submitted. Returns the record and
// the two prepare sub-transactions (debit first).
func (h *ShardedHarness) beginCross(at time.Duration, tx *types.Transaction, keys []string) (*xrecord, [2]*types.Transaction) {
	src, dst := string(tx.Args[0]), string(tx.Args[1])
	amt := string(tx.Args[2])
	n := len(h.shards)
	rec := &xrecord{
		orig:        tx.ID(),
		debitShard:  ledger.KeyShard(keys[0], n),
		creditShard: ledger.KeyShard(keys[1], n),
	}
	gid := "xg-" + strconv.FormatUint(h.gidSeq, 10)
	h.gidSeq++
	orgSrc := h.keyOwner(keys[0], tx)
	orgDst := h.keyOwner(keys[1], tx)

	prepD := h.subTx(rec.debitShard, orgSrc, "prepare_debit", gid, src, amt)
	prepC := h.subTx(rec.creditShard, orgDst, "prepare_credit", gid, dst)
	rec.commitD = h.subTx(rec.debitShard, orgSrc, "commit_debit", gid, src)
	rec.commitC = h.subTx(rec.creditShard, orgDst, "commit_credit", gid, dst, amt)
	rec.abortD = h.subTx(rec.debitShard, orgSrc, "abort_debit", gid, src)
	rec.abortC = h.subTx(rec.creditShard, orgDst, "abort_credit", gid, dst)

	h.subs[prepD.ID()] = &xsubref{rec: rec, phase: 1}
	h.subs[prepC.ID()] = &xsubref{rec: rec, phase: 1}
	h.records = append(h.records, rec)
	h.open++

	// The original transaction never reaches a sequencer; its lifecycle is
	// the 2PC round, accounted here (submit) and in the hook (resolution).
	h.collector.Submitted(rec.orig, at)
	if tr := h.tracer; tr != nil {
		tr.TxStage(rec.orig, trace.StageSubmit, int(h.xep[rec.debitShard]), at)
	}
	return rec, [2]*types.Transaction{prepD, prepC}
}

// subTx builds and signs one coordinator sub-transaction for a shard.
func (h *ShardedHarness) subTx(shard int, org, fn string, args ...string) *types.Transaction {
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	tx := &types.Transaction{
		Client:   h.xid[shard],
		Nonce:    h.xnonce[shard],
		Contract: "xshard",
		Fn:       fn,
		Args:     bs,
		Orgs:     []string{org},
	}
	h.xnonce[shard]++
	if err := tx.Sign(h.scheme); err != nil {
		panic(fmt.Sprintf("scenario: signing coordinator sub-txn: %v", err))
	}
	tx.Warm()
	return tx
}

// onCoordNotice is the coordinator hook, invoked by a shard's xcoord client
// for every commit notice it receives. It runs inside hub-partition event
// execution, so its mutations of harness state are totally ordered and
// identical across serial and PDES runs.
func (h *ShardedHarness) onCoordNotice(ctx *simnet.Context, e core.CommitEntry) {
	ref, ok := h.subs[e.TxID]
	if !ok {
		return
	}
	delete(h.subs, e.TxID)
	rec := ref.rec
	if ref.phase == 1 {
		rec.votes++
		if e.Aborted {
			rec.prepAborts++
		}
		if rec.votes < 2 || rec.decided {
			return
		}
		rec.decided = true
		rec.abort = rec.prepAborts > 0
		if tr := h.tracer; tr != nil {
			tr.TxStage(rec.orig, trace.StageXPrepared, int(h.xep[rec.debitShard]), ctx.Now())
		}
		d, c := rec.commitD, rec.commitC
		if rec.abort {
			d, c = rec.abortD, rec.abortC
		}
		h.subs[d.ID()] = &xsubref{rec: rec, phase: 2}
		h.subs[c.ID()] = &xsubref{rec: rec, phase: 2}
		// Hand each decision to its shard's coordinator client, which
		// submits it to that shard's leader sequencer like any other batch.
		ctx.Send(h.xep[rec.debitShard], &core.SubmitBatch{Txns: []*types.Transaction{d}})
		ctx.Send(h.xep[rec.creditShard], &core.SubmitBatch{Txns: []*types.Transaction{c}})
		return
	}
	// Phase 2: a decision applied on one shard.
	rec.resolved++
	if e.Aborted {
		rec.decisionAborted = true
	}
	if rec.resolved < 2 {
		return
	}
	rec.done = true
	h.open--
	h.collector.Committed(rec.orig, ctx.Now(), rec.abort)
	if tr := h.tracer; tr != nil {
		tr.TxStage(rec.orig, trace.StageXResolved, int(h.xep[rec.debitShard]), ctx.Now())
		tr.TxStage(rec.orig, trace.StageNotified, int(h.xep[rec.debitShard]), ctx.Now())
	}
}

// At implements Harness (closed-loop controllers; serial engine only).
func (h *ShardedHarness) At(t time.Duration, fn func()) { h.sim.At(t, fn) }

// InFlight implements Harness: per-shard pending transactions (which count
// coordinator sub-transactions — a deliberate overcount that makes
// closed-loop control conservative about 2PC work in flight) plus
// cross-shard transactions awaiting their decision.
func (h *ShardedHarness) InFlight() int {
	n := h.open
	for _, s := range h.shards {
		n += s.InFlight()
	}
	return n
}

// Run implements Harness: one shared clock advances every shard.
func (h *ShardedHarness) Run(t time.Duration) { h.sim.RunUntil(t) }

// ForceSerial pins the shared engine to serial execution even when workers
// were requested — the byte-identity reference for PDES determinism tests.
func (h *ShardedHarness) ForceSerial(on bool) { h.sim.ForceSerial(on) }

// LeaderIndex implements Harness (shard 0's consensus leader).
func (h *ShardedHarness) LeaderIndex() int { return h.shards[0].LeaderIndex() }

// CheckSafety implements Harness: every shard's own audit (prefix-consistent
// ledgers, per-org state agreement) plus the cross-shard atomicity
// invariant — every RESOLVED transfer applied its decision on both shards;
// transfers still in flight at the simulation horizon are reported by
// InFlight, not here.
func (h *ShardedHarness) CheckSafety() error {
	var violations []string
	for i, rec := range h.records {
		if rec.done && rec.decisionAborted {
			violations = append(violations,
				fmt.Sprintf("cross-shard transfer %d (shards %d→%d): decision sub-transaction aborted — atomicity broken",
					i, rec.debitShard, rec.creditShard))
		}
		if rec.decided && rec.done && rec.resolved != 2 {
			violations = append(violations,
				fmt.Sprintf("cross-shard transfer %d: resolved on %d shards, want 2", i, rec.resolved))
		}
	}
	for i, s := range h.shards {
		if err := s.CheckSafety(); err != nil {
			violations = append(violations, fmt.Sprintf("shard %d: %v", i, err))
		}
	}
	return ledger.CheckConsistency("sharded", violations, nil, nil)
}

// Metrics implements Harness (the one collector all shards share).
func (h *ShardedHarness) Metrics() *metrics.Collector { return h.collector }

// IdentityScheme implements Harness (the one scheme all shards share).
func (h *ShardedHarness) IdentityScheme() crypto.Scheme { return h.scheme }

// VirtualEvents implements Harness (the shared engine's event count).
func (h *ShardedHarness) VirtualEvents() uint64 { return h.sim.Events() }

// LedgerDigests returns each shard's chained head-of-ledger digest — the
// determinism fingerprint sharded smoke tests compare across engines.
func (h *ShardedHarness) LedgerDigests() []crypto.Digest {
	ds := make([]crypto.Digest, len(h.shards))
	for i, s := range h.shards {
		ds[i] = s.LedgerDigest()
	}
	return ds
}

// CrossShardStats reports 2PC bookkeeping: transfers begun, committed,
// aborted, and still unresolved at the horizon.
func (h *ShardedHarness) CrossShardStats() (begun, committed, aborted, unresolved int) {
	for _, rec := range h.records {
		begun++
		switch {
		case !rec.done:
			unresolved++
		case rec.abort:
			aborted++
		default:
			committed++
		}
	}
	return
}
