package scenario

import (
	"github.com/bidl-framework/bidl/internal/attack"
	"github.com/bidl-framework/bidl/internal/baseline/fabric"
	"github.com/bidl-framework/bidl/internal/chaos"
	"github.com/bidl-framework/bidl/internal/core"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/workload"
)

// All three harnesses satisfy the framework-agnostic surface.
var (
	_ Harness = (*core.Cluster)(nil)
	_ Harness = (*fabric.Cluster)(nil)
	_ Harness = (*ShardedHarness)(nil)
)

// built is what a compile target hands back to RunWith: a ready harness, the
// organization count the workload generator must span, and a closure that
// arms the spec's fault schedule (called after membership is complete —
// arming earlier would shift endpoint IDs — and before load is scheduled).
type built struct {
	harness   Harness
	orgs      int
	armFaults func(gen *workload.Generator)
}

// compileTarget builds one framework family's harness from a validated,
// defaults-resolved spec.
type compileTarget func(s Scenario, rc RunConfig) built

// The compile-target registry. RunWith stays framework-agnostic: a new
// family (the sharded multi-channel deployment was the third) plugs in by
// registering a target here instead of growing an if/else ladder in the
// driver.
const (
	targetBIDL    = "bidl"
	targetFabric  = "fabric"
	targetSharded = "bidl-sharded"
)

var compileTargets = map[string]compileTarget{}

func registerTarget(name string, t compileTarget) {
	if _, dup := compileTargets[name]; dup {
		panic("scenario: duplicate compile target " + name)
	}
	compileTargets[name] = t
}

func init() {
	registerTarget(targetBIDL, buildBIDL)
	registerTarget(targetFabric, buildFabric)
	registerTarget(targetSharded, buildSharded)
}

// targetName selects the compile target for a defaults-resolved spec.
// Sharding is a BIDL deployment shape, not a framework: `shards: 1` (or
// absent) compiles through the ordinary single-channel target, which is what
// keeps unsharded goldens byte-identical.
func (s Scenario) targetName() string {
	switch {
	case s.Framework != FrameworkBIDL:
		return targetFabric
	case s.Shards > 1:
		return targetSharded
	default:
		return targetBIDL
	}
}

// buildBIDL compiles the single-channel BIDL cluster.
func buildBIDL(s Scenario, rc RunConfig) built {
	cfg := s.bidlConfig()
	cfg.Tracer = rc.Tracer
	bc := core.NewCluster(cfg)
	bc.Sim.ForceSerial(rc.ForceSerialSim)
	return built{
		harness: bc,
		orgs:    cfg.NumOrgs,
		armFaults: func(gen *workload.Generator) {
			installFaults(s.compiledFaults(), bidlChaosEnv(bc, gen), s.EffectiveSeed())
		},
	}
}

// buildFabric compiles one of the baseline clusters (HLF / FastFabric /
// StreamChain).
func buildFabric(s Scenario, rc RunConfig) built {
	cfg := s.fabricConfig()
	cfg.Tracer = rc.Tracer
	fc := fabric.NewCluster(cfg)
	fc.Sim.ForceSerial(rc.ForceSerialSim)
	return built{
		harness: fc,
		orgs:    cfg.NumOrgs,
		armFaults: func(gen *workload.Generator) {
			installFaults(s.compiledFaults(), fabricChaosEnv(fc), s.EffectiveSeed())
		},
	}
}

// buildSharded compiles the multi-channel deployment: s.Shards copies of the
// compiled BIDL config on one shared simulation. Faults arm per shard — each
// shard's schedule gets its own injector bound to that shard's cluster, with
// the legacy attack spec applying to shard 0.
func buildSharded(s Scenario, rc RunConfig) built {
	cfg := s.bidlConfig()
	cfg.Tracer = rc.Tracer
	workers := cfg.SimWorkers
	cfg.SimWorkers = 0 // the harness drives the shared engine's workers
	h := NewShardedHarness(ShardedConfig{Shards: s.Shards, Shard: cfg, SimWorkers: workers})
	h.ForceSerial(rc.ForceSerialSim)
	return built{
		harness: h,
		orgs:    cfg.NumOrgs,
		armFaults: func(gen *workload.Generator) {
			for i := 0; i < h.NumShards(); i++ {
				// Offset the injector seed per shard so concurrent same-kind
				// faults draw decorrelated randomness.
				installFaults(s.faultsForShard(i), bidlChaosEnv(h.Shard(i), gen),
					s.EffectiveSeed()+int64(i)*1_000_000_007)
			}
		},
	}
}

// installFaults arms a non-empty compiled schedule.
func installFaults(faults []chaos.Fault, env chaos.Env, seed int64) {
	if len(faults) == 0 {
		return
	}
	chaos.NewInjector(env, faults, seed).Install()
}

// bidlChaosEnv assembles the injector's cluster surface for a BIDL cluster
// (standalone or one shard): endpoint rosters plus closures binding the
// malicious-leader toggle and broadcaster attachment to the attack package.
func bidlChaosEnv(bc *core.Cluster, gen *workload.Generator) chaos.Env {
	cons := make([]*simnet.Endpoint, len(bc.ConsNodes))
	seqs := make([]*simnet.Endpoint, len(bc.Sequencers))
	for i, cn := range bc.ConsNodes {
		cons[i] = cn.Endpoint()
	}
	for i, sq := range bc.Sequencers {
		seqs[i] = sq.Endpoint()
	}
	orgs := make([][]*simnet.Endpoint, len(bc.Orgs))
	for i, org := range bc.Orgs {
		orgs[i] = make([]*simnet.Endpoint, len(org))
		for j, nn := range org {
			orgs[i][j] = nn.Endpoint()
		}
	}
	return chaos.Env{
		Sim:         bc.Sim,
		Net:         bc.Net,
		Consensus:   cons,
		Sequencers:  seqs,
		Orgs:        orgs,
		LeaderIndex: bc.LeaderIndex,
		SetLeaderEvil: func(on bool) {
			if on {
				attack.EnableMaliciousLeader(bc, bc.LeaderIndex())
				return
			}
			for _, sq := range bc.Sequencers {
				sq.Garbage = false
			}
		},
		StartBroadcaster: func(f chaos.Fault) {
			cfg := attack.DefaultBroadcasterConfig()
			if len(f.MaliciousClients) > 0 {
				cfg.MaliciousClients = f.MaliciousClients
			}
			if f.Window > 0 {
				cfg.Window = f.Window
			}
			if f.Interval != 0 {
				cfg.Interval = f.Interval
			}
			if f.DetectLag != 0 {
				cfg.DetectLag = f.DetectLag
			}
			if f.Kind == chaos.KindSmart {
				cfg.TargetLeader = bc.LeaderIndex()
			}
			attack.NewBroadcaster(bc, gen, cfg).Start(f.At)
		},
	}
}

// fabricChaosEnv assembles the injector's cluster surface for a baseline:
// orderers play the consensus role, peers the org role, and there is no
// sequencer multicast to race (broadcaster kinds are validated out).
func fabricChaosEnv(fc *fabric.Cluster) chaos.Env {
	cons := make([]*simnet.Endpoint, len(fc.Orderers))
	for i, o := range fc.Orderers {
		cons[i] = o.Endpoint()
	}
	orgs := make([][]*simnet.Endpoint, len(fc.Peers))
	for i, org := range fc.Peers {
		orgs[i] = make([]*simnet.Endpoint, len(org))
		for j, p := range org {
			orgs[i][j] = p.Endpoint()
		}
	}
	return chaos.Env{
		Sim:         fc.Sim,
		Net:         fc.Net,
		Consensus:   cons,
		Orgs:        orgs,
		LeaderIndex: fc.LeaderIndex,
		SetLeaderEvil: func(on bool) {
			if on {
				fc.Orderers[fc.LeaderIndex()].ProposeGarbage = true
				return
			}
			for _, o := range fc.Orderers {
				o.ProposeGarbage = false
			}
		},
	}
}
