package crypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func schemes() map[string]func() Scheme {
	return map[string]func() Scheme{
		"ed25519": func() Scheme { return NewEd25519Scheme([]byte("seed")) },
		"hmac":    func() Scheme { return NewHMACScheme([]byte("seed")) },
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	for name, mk := range schemes() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			s.Register("alice")
			msg := []byte("hello world")
			sig, err := s.Sign("alice", msg)
			if err != nil {
				t.Fatal(err)
			}
			if !s.Verify("alice", msg, sig) {
				t.Fatal("valid signature rejected")
			}
		})
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	for name, mk := range schemes() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			s.Register("alice")
			sig, _ := s.Sign("alice", []byte("msg"))
			if s.Verify("alice", []byte("msG"), sig) {
				t.Fatal("tampered message verified")
			}
		})
	}
}

func TestVerifyRejectsWrongIdentity(t *testing.T) {
	for name, mk := range schemes() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			s.Register("alice")
			s.Register("bob")
			sig, _ := s.Sign("alice", []byte("msg"))
			if s.Verify("bob", []byte("msg"), sig) {
				t.Fatal("signature verified under a different identity")
			}
		})
	}
}

func TestVerifyRejectsTruncatedSig(t *testing.T) {
	for name, mk := range schemes() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			s.Register("alice")
			sig, _ := s.Sign("alice", []byte("msg"))
			if s.Verify("alice", []byte("msg"), sig[:len(sig)-1]) {
				t.Fatal("truncated signature verified")
			}
			if s.Verify("alice", []byte("msg"), nil) {
				t.Fatal("nil signature verified")
			}
		})
	}
}

func TestUnknownIdentity(t *testing.T) {
	for name, mk := range schemes() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if _, err := s.Sign("ghost", []byte("msg")); err == nil {
				t.Fatal("signing as unknown identity succeeded")
			}
			if s.Verify("ghost", []byte("msg"), Signature(make([]byte, 64))) {
				t.Fatal("unknown identity verified")
			}
			if s.Known("ghost") {
				t.Fatal("ghost reported as known")
			}
		})
	}
}

func TestDeterministicKeys(t *testing.T) {
	a := NewEd25519Scheme([]byte("seed"))
	b := NewEd25519Scheme([]byte("seed"))
	a.Register("alice")
	b.Register("alice")
	sig, _ := a.Sign("alice", []byte("msg"))
	if !b.Verify("alice", []byte("msg"), sig) {
		t.Fatal("independently derived schemes disagree")
	}
	c := NewEd25519Scheme([]byte("other-seed"))
	c.Register("alice")
	if c.Verify("alice", []byte("msg"), sig) {
		t.Fatal("different master seed verified a foreign signature")
	}
}

func TestRegisterIdempotent(t *testing.T) {
	s := NewEd25519Scheme([]byte("seed"))
	s.Register("alice")
	sig, _ := s.Sign("alice", []byte("m"))
	s.Register("alice")
	if !s.Verify("alice", []byte("m"), sig) {
		t.Fatal("re-registration changed the key")
	}
}

func TestHashAllBoundaries(t *testing.T) {
	// Length prefixing must make ("ab","c") and ("a","bc") distinct.
	if HashAll([]byte("ab"), []byte("c")) == HashAll([]byte("a"), []byte("bc")) {
		t.Fatal("HashAll is ambiguous across part boundaries")
	}
	if HashAll() == HashAll([]byte{}) {
		t.Fatal("HashAll() must differ from HashAll(empty part)")
	}
}

func TestMACRoundTrip(t *testing.T) {
	key := []byte("pairwise-key")
	tag := MAC(key, []byte("payload"))
	if !VerifyMAC(key, []byte("payload"), tag) {
		t.Fatal("valid MAC rejected")
	}
	if VerifyMAC(key, []byte("payloaD"), tag) {
		t.Fatal("tampered payload accepted")
	}
	if VerifyMAC([]byte("other-key"), []byte("payload"), tag) {
		t.Fatal("wrong key accepted")
	}
}

func TestPropertySignVerify(t *testing.T) {
	for name, mk := range schemes() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			s.Register("p")
			f := func(msg []byte) bool {
				sig, err := s.Sign("p", msg)
				if err != nil {
					return false
				}
				return s.Verify("p", msg, sig)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPropertyHashCollisionFree(t *testing.T) {
	seen := make(map[Digest][]byte)
	f := func(data []byte) bool {
		d := Hash(data)
		if prev, ok := seen[d]; ok {
			return bytes.Equal(prev, data)
		}
		seen[d] = append([]byte(nil), data...)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
