// Package crypto implements the cryptographic primitives BIDL depends on:
// SHA-256 hashing, digital signatures over an explicit membership registry
// (§3.1: every node and client has a unique key pair), and MACs.
//
// Two signature schemes are provided behind one interface:
//
//   - Ed25519Scheme: real ed25519 signatures; used by unit tests, examples,
//     and anywhere authenticity actually matters.
//   - HMACScheme: an HMAC-SHA256 stand-in whose per-identity secrets derive
//     from a master seed. It is NOT a signature scheme (verifiers could
//     forge), but inside a simulation where the framework itself is the only
//     verifier it provides the same interface at ~100x less wall-clock cost.
//     Virtual crypto *cost* is charged separately from the cost model, so
//     simulation results are identical under either scheme.
package crypto

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"sync"
)

// Digest is a SHA-256 hash value.
type Digest [32]byte

// Hash returns the SHA-256 digest of data.
func Hash(data []byte) Digest { return sha256.Sum256(data) }

// HashAll hashes the concatenation of the given byte slices, length-prefixing
// each part so that boundaries are unambiguous.
func HashAll(parts ...[]byte) Digest {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// String renders the first 8 bytes of the digest in hex.
func (d Digest) String() string { return fmt.Sprintf("%x", d[:8]) }

// Signature is an opaque signature (or MAC tag) over a message.
type Signature []byte

// Identity names a member (node or client) in the permissioned network.
type Identity string

// Scheme signs and verifies messages for registered identities.
type Scheme interface {
	// Register creates a key pair for id. Registering an existing identity
	// is a no-op.
	Register(id Identity)
	// Sign signs msg as id. It returns an error for unknown identities.
	Sign(id Identity, msg []byte) (Signature, error)
	// Verify reports whether sig is id's valid signature over msg.
	// Unknown identities never verify.
	Verify(id Identity, msg []byte, sig Signature) bool
	// Known reports whether id has been registered.
	Known(id Identity) bool
}

// Ed25519Scheme implements Scheme with real ed25519 keys. Keys are derived
// deterministically from a master seed and the identity name so that
// independently constructed schemes with the same seed agree.
type Ed25519Scheme struct {
	mu     sync.RWMutex
	master [32]byte
	priv   map[Identity]ed25519.PrivateKey
	pub    map[Identity]ed25519.PublicKey
}

// NewEd25519Scheme creates a scheme whose keys derive from seed.
func NewEd25519Scheme(seed []byte) *Ed25519Scheme {
	return &Ed25519Scheme{
		master: sha256.Sum256(seed),
		priv:   make(map[Identity]ed25519.PrivateKey),
		pub:    make(map[Identity]ed25519.PublicKey),
	}
}

// Register implements Scheme.
func (s *Ed25519Scheme) Register(id Identity) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.priv[id]; ok {
		return
	}
	seed := HashAll(s.master[:], []byte(id))
	priv := ed25519.NewKeyFromSeed(seed[:])
	s.priv[id] = priv
	s.pub[id] = priv.Public().(ed25519.PublicKey)
}

// Sign implements Scheme.
func (s *Ed25519Scheme) Sign(id Identity, msg []byte) (Signature, error) {
	s.mu.RLock()
	priv, ok := s.priv[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("crypto: unknown identity %q", id)
	}
	return Signature(ed25519.Sign(priv, msg)), nil
}

// Verify implements Scheme.
func (s *Ed25519Scheme) Verify(id Identity, msg []byte, sig Signature) bool {
	s.mu.RLock()
	pub, ok := s.pub[id]
	s.mu.RUnlock()
	if !ok || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(pub, msg, sig)
}

// Known implements Scheme.
func (s *Ed25519Scheme) Known(id Identity) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.priv[id]
	return ok
}

// PublicKey returns id's public key (nil if unregistered). Exposed for
// membership-export tooling.
func (s *Ed25519Scheme) PublicKey(id Identity) ed25519.PublicKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pub[id]
}

// HMACScheme implements Scheme with HMAC-SHA256 tags. See the package
// comment for the trust caveat: this is a simulation-only stand-in.
//
// Keyed HMAC states are recycled through a per-identity sync.Pool: hmac.New
// costs three allocations and two key-block hashes, and on the hot path the
// same few identities sign/verify once per message. Pools are safe for the
// PDES engine's concurrent partitions.
type HMACScheme struct {
	mu     sync.RWMutex
	master [32]byte
	keys   map[Identity][]byte
	macs   map[Identity]*sync.Pool
}

// NewHMACScheme creates a scheme whose per-identity secrets derive from seed.
func NewHMACScheme(seed []byte) *HMACScheme {
	return &HMACScheme{
		master: sha256.Sum256(seed),
		keys:   make(map[Identity][]byte),
		macs:   make(map[Identity]*sync.Pool),
	}
}

// Register implements Scheme.
func (s *HMACScheme) Register(id Identity) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.keys[id]; ok {
		return
	}
	k := HashAll(s.master[:], []byte("hmac-key"), []byte(id))
	s.keys[id] = k[:]
	key := k[:]
	s.macs[id] = &sync.Pool{New: func() interface{} { return hmac.New(sha256.New, key) }}
}

// Sign implements Scheme.
func (s *HMACScheme) Sign(id Identity, msg []byte) (Signature, error) {
	s.mu.RLock()
	pool, ok := s.macs[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("crypto: unknown identity %q", id)
	}
	mac := pool.Get().(hash.Hash)
	mac.Reset()
	mac.Write(msg)
	tag := mac.Sum(make([]byte, 0, sha256.Size))
	pool.Put(mac)
	return Signature(tag), nil
}

// Verify implements Scheme.
func (s *HMACScheme) Verify(id Identity, msg []byte, sig Signature) bool {
	want, err := s.Sign(id, msg)
	if err != nil {
		return false
	}
	return hmac.Equal(want, sig)
}

// Known implements Scheme.
func (s *HMACScheme) Known(id Identity) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.keys[id]
	return ok
}

// MAC computes an HMAC-SHA256 tag over msg with the given pairwise key.
// BIDL uses the hybrid MAC-signature mechanism for client transactions
// (§4.1); pairwise session keys are modeled with this primitive.
func MAC(key, msg []byte) Signature {
	mac := hmac.New(sha256.New, key)
	mac.Write(msg)
	return Signature(mac.Sum(nil))
}

// VerifyMAC reports whether tag is the HMAC of msg under key.
func VerifyMAC(key, msg []byte, tag Signature) bool {
	return hmac.Equal(MAC(key, msg), tag)
}
