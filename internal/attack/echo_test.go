package attack

import (
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/simnet"
)

// TestEchoAdversaryHarmlessUnderTriangleInequality: §5.2's first claim —
// with intact triangle inequality, re-broadcasting correct clients'
// transactions achieves nothing: the replay check discards every echoed
// copy, no client is suspected, and throughput is unaffected.
func TestEchoAdversaryHarmlessUnderTriangleInequality(t *testing.T) {
	cfg := testConfig()
	c, gen := build(t, cfg)
	e := NewEchoAdversary(c)
	e.Start(20 * time.Millisecond)
	load(c, gen, 0, 800, 500*time.Microsecond)
	c.Run(3 * time.Second)
	if e.Echoed == 0 {
		t.Fatal("echo adversary never fired")
	}
	if got := c.Collector.NumCommitted(); got != 800 {
		t.Fatalf("committed %d of 800 under echo attack", got)
	}
	for _, cn := range c.ConsNodes {
		if len(cn.Denylist()) != 0 {
			t.Fatalf("denylist non-empty under intact triangle inequality: %v", cn.Denylist())
		}
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

// TestEchoAdversaryNeedsTriangleViolation: §5.2's second claim — framing a
// correct client requires beating the sequencer's delivery, i.e. a
// triangle-inequality violation. We break the inequality deliberately (the
// sequencer's path to half the nodes is 20x slower than the adversary's)
// and observe that conflicts now do get pinned on correct clients, while
// safety and liveness still hold (the denylist only disables speculation,
// §4.6).
func TestEchoAdversaryNeedsTriangleViolation(t *testing.T) {
	cfg := testConfig()
	c, gen := build(t, cfg)
	e := NewEchoAdversary(c)

	// Violate the triangle inequality: the sequencer's multicast reaches
	// half the normal nodes 2 ms late, while the adversary's copies travel
	// at the normal 0.1 ms.
	var slowTargets []simnet.NodeID
	for o := 0; o < len(c.Orgs); o += 2 {
		slowTargets = append(slowTargets, c.Orgs[o][0].Endpoint().ID())
	}
	var seqEps []simnet.NodeID
	for _, s := range c.Sequencers {
		seqEps = append(seqEps, s.Endpoint().ID())
	}
	c.Net.LatencyOverride = func(from, to simnet.NodeID) (time.Duration, bool) {
		for _, s := range seqEps {
			if from != s {
				continue
			}
			for _, v := range slowTargets {
				if to == v {
					return 2 * time.Millisecond, true
				}
			}
		}
		return 0, false
	}

	e.Start(20 * time.Millisecond)
	load(c, gen, 0, 1500, time.Millisecond)
	c.Run(4 * time.Second)

	if c.Collector.Conflicts == 0 {
		t.Fatal("triangle violation produced no conflicts")
	}
	// Liveness and safety survive even while correct clients get framed.
	if got := c.Collector.NumCommitted(); got < 1400 {
		t.Fatalf("committed %d of 1500", got)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}
