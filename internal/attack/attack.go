// Package attack implements the adversaries of the paper's robustness
// evaluation (§6.2):
//
//   - MaliciousLeader (Table 4 S2): the leader's sequencer emits invalid
//     transactions instead of the real client traffic. Enabled via the
//     sequencer's Garbage flag.
//   - Broadcaster (Table 4 S3): a non-member node in the datacenter that
//     listens to the sequencer multicast and races it, broadcasting
//     transactions signed by colluding malicious clients under sequence
//     numbers just ahead of the observed frontier. Nodes that receive the
//     crafted copy first speculate on it; the agreed proposal then
//     mismatches, forcing re-execution (§4.6).
//   - SmartAdversary (Fig 7): a Broadcaster that attacks only while a
//     chosen consensus node leads, trying to escape the denylist's
//     f+1-distinct-leaders rule; BIDL's proactive view change and
//     unpredictable rotation defeat it.
package attack

import (
	"time"

	"github.com/bidl-framework/bidl/internal/core"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/types"
	"github.com/bidl-framework/bidl/internal/workload"
)

// BroadcasterConfig tunes the crafted-transaction broadcaster.
type BroadcasterConfig struct {
	// MaliciousClients are the colluding clients (indices into the
	// workload generator's client space) whose signed transactions the
	// adversary re-broadcasts. A permissioned blockchain bounds this set
	// (§4.6), which is why the denylist eventually wins.
	MaliciousClients []int
	// Window is how many sequence numbers ahead of the observed frontier
	// each burst contests.
	Window int
	// Interval is the burst period.
	Interval time.Duration
	// TargetLeader, when >= 0, restricts attacking to views led by that
	// consensus node (the Fig 7 smart adversary). -1 attacks always.
	TargetLeader int
	// DetectLag models how long the adversary needs to notice a
	// leadership change; during the lag it keeps attacking, which is
	// exactly how conflicts leak into successor views (§4.6).
	DetectLag time.Duration
}

// DefaultBroadcasterConfig returns an aggressive always-on broadcaster
// using one malicious client.
func DefaultBroadcasterConfig() BroadcasterConfig {
	return BroadcasterConfig{
		MaliciousClients: []int{0},
		Window:           64,
		Interval:         time.Millisecond,
		TargetLeader:     -1,
		DetectLag:        5 * time.Millisecond,
	}
}

// Broadcaster is the malicious broadcaster endpoint.
type Broadcaster struct {
	c   *core.Cluster
	gen *workload.Generator
	cfg BroadcasterConfig
	ep  *simnet.Endpoint

	running        bool
	frontier       uint64
	contested      uint64 // highest seq we already attacked
	observedLeader int
	leaderSince    time.Duration

	// Bursts counts attack bursts actually emitted.
	Bursts uint64
}

// NewBroadcaster attaches a broadcaster to the cluster. It observes the
// transaction multicast group like any node in the datacenter.
func NewBroadcaster(c *core.Cluster, gen *workload.Generator, cfg BroadcasterConfig) *Broadcaster {
	b := &Broadcaster{c: c, gen: gen, cfg: cfg, observedLeader: -1}
	b.ep = c.AttachAdversary("adversary", 0, b)
	return b
}

// MaliciousIdentities returns the colluding clients' identities.
func (b *Broadcaster) MaliciousIdentities() []crypto.Identity {
	out := make([]crypto.Identity, 0, len(b.cfg.MaliciousClients))
	for _, i := range b.cfg.MaliciousClients {
		out = append(out, b.gen.Client(i))
	}
	return out
}

// Start arms the attack at virtual time at.
func (b *Broadcaster) Start(at time.Duration) {
	b.c.Sim.At(at, func() {
		if b.running {
			return
		}
		b.running = true
		b.tick()
	})
}

// Stop disarms the attack at virtual time at.
func (b *Broadcaster) Stop(at time.Duration) {
	b.c.Sim.At(at, func() { b.running = false })
}

// OnMessage implements simnet.Handler: the adversary passively tracks the
// sequencer frontier from the multicast it receives.
func (b *Broadcaster) OnMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	if m, ok := msg.(*core.SeqBatch); ok {
		for _, st := range m.Txns {
			if st.Seq > b.frontier {
				b.frontier = st.Seq
			}
		}
	}
}

// active reports whether the adversary currently attacks, modeling lagged
// leadership detection.
func (b *Broadcaster) active() bool {
	if b.cfg.TargetLeader < 0 {
		return true
	}
	actual := b.c.LeaderIndex()
	if actual != b.observedLeader {
		// Notice the change only after DetectLag.
		if b.leaderSince == 0 {
			b.leaderSince = b.c.Sim.Now()
		}
		if b.c.Sim.Now()-b.leaderSince >= b.cfg.DetectLag {
			b.observedLeader = actual
			b.leaderSince = 0
		}
	} else {
		b.leaderSince = 0
	}
	return b.observedLeader == b.cfg.TargetLeader
}

// tick emits one burst of crafted transactions ahead of the frontier.
func (b *Broadcaster) tick() {
	if !b.running {
		return
	}
	if b.active() && b.frontier > 0 {
		start := b.frontier + 1
		if b.contested >= start {
			start = b.contested + 1
		}
		end := b.frontier + uint64(b.cfg.Window)
		if end >= start {
			var crafted []types.SequencedTx
			for s := start; s <= end; s++ {
				ci := b.cfg.MaliciousClients[int(s)%len(b.cfg.MaliciousClients)]
				crafted = append(crafted, types.SequencedTx{Seq: s, Tx: b.gen.NextFrom(ci)})
			}
			b.contested = end
			b.Bursts++
			ctx := simnet.NewInjectedContext(b.c.Net, b.ep)
			ctx.Multicast(b.c.TxnGroup(), &core.SeqBatch{Txns: crafted})
		}
	}
	b.c.Sim.After(b.cfg.Interval, b.tick)
}

// EnableMaliciousLeader flips consensus node idx's sequencer into garbage
// mode (Table 4 S2): when that node leads, every sequenced transaction is
// replaced by an invalid one.
func EnableMaliciousLeader(c *core.Cluster, idx int) {
	c.Sequencers[idx].Garbage = true
}
