package attack

import (
	"time"

	"github.com/bidl-framework/bidl/internal/core"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/types"
)

// EchoAdversary implements the §5.2 false-positive analysis attack: it
// re-broadcasts *correct clients'* transactions under future sequence
// numbers, trying to frame them as conflict-causing (and so get them
// denylisted).
//
// Under the triangle-inequality network model this fails: every node has
// already received the original transaction from the sequencer, so the
// replay check (§4.1 step 2) discards the echoed copy. Only when the
// adversary's path to a victim beats the sequencer's (a triangle-inequality
// violation) can the echoed copy occupy a sequence slot first and later
// surface as a conflict attributed to the innocent client.
type EchoAdversary struct {
	c  *core.Cluster
	ep *simnet.Endpoint
	// SeqOffset is how far into the future echoed copies are placed.
	SeqOffset uint64
	running   bool
	// Echoed counts re-broadcast transactions.
	Echoed uint64
}

// NewEchoAdversary attaches the echo adversary to the cluster.
func NewEchoAdversary(c *core.Cluster) *EchoAdversary {
	e := &EchoAdversary{c: c, SeqOffset: 40}
	e.ep = c.AttachAdversary("echo-adversary", 0, e)
	return e
}

// Start arms the attack at virtual time at.
func (e *EchoAdversary) Start(at time.Duration) {
	e.c.Sim.At(at, func() { e.running = true })
}

// OnMessage implements simnet.Handler: every observed sequenced transaction
// is immediately re-broadcast under a future sequence number.
func (e *EchoAdversary) OnMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	m, ok := msg.(*core.SeqBatch)
	if !ok || !e.running || from == e.ep.ID() {
		return
	}
	echoed := make([]types.SequencedTx, 0, len(m.Txns))
	for _, st := range m.Txns {
		echoed = append(echoed, types.SequencedTx{Seq: st.Seq + e.SeqOffset, Tx: st.Tx})
		e.Echoed++
	}
	ctx.Multicast(e.c.TxnGroup(), &core.SeqBatch{Txns: echoed})
}
