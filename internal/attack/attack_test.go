package attack

import (
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/core"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/workload"
)

func build(t testing.TB, cfg core.Config) (*core.Cluster, *workload.Generator) {
	t.Helper()
	c := core.NewCluster(cfg)
	w := workload.DefaultConfig(cfg.NumOrgs)
	w.NumClients = 20
	w.Accounts = 800
	gen := workload.NewGenerator(w, c.Scheme)
	ids := make([]crypto.Identity, w.NumClients)
	for i := range ids {
		ids[i] = gen.Client(i)
	}
	c.RegisterClients(ids)
	c.Prepopulate(gen.Prepopulate)
	return c, gen
}

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.NumOrgs = 8
	cfg.BlockSize = 50
	cfg.BlockTimeout = 5 * time.Millisecond
	cfg.ViewTimeout = 80 * time.Millisecond
	return cfg
}

// load submits n transactions at the given per-txn interval starting at t0.
func load(c *core.Cluster, gen *workload.Generator, t0 time.Duration, n int, gap time.Duration) {
	for i := 0; i < n; i++ {
		c.SubmitAt(t0+time.Duration(i)*gap, gen.Next())
	}
}

func TestMaliciousLeaderReplaced(t *testing.T) {
	cfg := testConfig()
	c, gen := build(t, cfg)
	evil := c.LeaderIndex()
	EnableMaliciousLeader(c, evil)
	load(c, gen, 0, 400, 100*time.Microsecond)
	c.Run(4 * time.Second)
	if c.Collector.ViewChanges == 0 {
		t.Fatal("garbage-proposing leader never triggered a view change")
	}
	if c.LeaderIndex() == evil {
		t.Fatal("malicious leader still leading")
	}
	// Clients retransmit dropped transactions; most must commit once a
	// correct leader takes over.
	if got := c.Collector.NumCommitted(); got < 360 {
		t.Fatalf("committed %d of 400 after leader replacement", got)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcasterCausesConflictsAndReexecution(t *testing.T) {
	cfg := testConfig()
	cfg.DisableDenylist = true // observe the raw damage
	c, gen := build(t, cfg)
	b := NewBroadcaster(c, gen, DefaultBroadcasterConfig())
	b.Start(50 * time.Millisecond)
	load(c, gen, 0, 1500, time.Millisecond) // 1k tps for 1.5s, overlapping the attack
	c.Run(4 * time.Second)
	if b.Bursts == 0 {
		t.Fatal("broadcaster never fired")
	}
	if c.Collector.Conflicts == 0 {
		t.Fatal("no sequence-space conflicts recorded")
	}
	if c.Collector.Reexecuted == 0 {
		t.Fatal("no re-executions despite crafted speculation")
	}
	// Liveness holds: legitimate transactions still commit (§5.3).
	if got := c.Collector.NumCommitted(); got < 1400 {
		t.Fatalf("committed %d of 1500 under attack", got)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestDenylistCatchesBroadcaster(t *testing.T) {
	cfg := testConfig()
	c, gen := build(t, cfg)
	b := NewBroadcaster(c, gen, DefaultBroadcasterConfig())
	b.Start(50 * time.Millisecond)
	load(c, gen, 0, 2000, time.Millisecond)
	c.Run(4 * time.Second)
	mal := b.MaliciousIdentities()[0]
	denied := 0
	for _, cn := range c.ConsNodes {
		if cn.Denylist()[mal] {
			denied++
		}
	}
	if denied < 3 {
		t.Fatalf("malicious client denied at %d consensus nodes, want >= 2f+1", denied)
	}
	// Normal nodes must have learned the denylist too.
	nnDenied := 0
	for _, org := range c.Orgs {
		for _, nn := range org {
			if nn.Denied(mal) {
				nnDenied++
			}
		}
	}
	if nnDenied < cfg.NumOrgs/2 {
		t.Fatalf("only %d normal nodes denied the client", nnDenied)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestDenylistNeverAccusesCorrectClients(t *testing.T) {
	// Under the triangle-inequality network the broadcaster only gets its
	// own colluding client denied; correct clients keep speculation.
	cfg := testConfig()
	c, gen := build(t, cfg)
	b := NewBroadcaster(c, gen, DefaultBroadcasterConfig())
	b.Start(50 * time.Millisecond)
	load(c, gen, 0, 2000, time.Millisecond)
	c.Run(4 * time.Second)
	mal := b.MaliciousIdentities()[0]
	for _, cn := range c.ConsNodes {
		for cl := range cn.Denylist() {
			if cl != mal {
				t.Fatalf("correct client %s denylisted (false positive)", cl)
			}
		}
	}
}

func TestThroughputRecoversAfterDenylist(t *testing.T) {
	// Fig 7 essence: after the denylist catches the malicious client,
	// throughput returns to the attack-free level even though the
	// adversary keeps broadcasting.
	cfg := testConfig()
	c, gen := build(t, cfg)
	b := NewBroadcaster(c, gen, DefaultBroadcasterConfig())
	b.Start(200 * time.Millisecond)
	// Steady 2k tps load for 4 seconds.
	const total = 4 * 2000
	for i := 0; i < total; i += 4 {
		c.SubmitAt(time.Duration(i)*500*time.Microsecond, gen.Batch(4)...)
	}
	c.Run(5 * time.Second)
	mal := b.MaliciousIdentities()[0]
	deniedSomewhere := false
	for _, cn := range c.ConsNodes {
		if cn.Denylist()[mal] {
			deniedSomewhere = true
		}
	}
	if !deniedSomewhere {
		t.Fatal("denylist never engaged")
	}
	before := c.Collector.EffectiveThroughput(0, 200*time.Millisecond)
	after := c.Collector.EffectiveThroughput(3500*time.Millisecond, 4*time.Second)
	if after < before*0.7 {
		t.Fatalf("throughput after denylist %.0f tps; pre-attack %.0f tps — no recovery", after, before)
	}
}

func TestSmartAdversaryStillDenied(t *testing.T) {
	// Fig 7: attacking only in one correct node's views does not escape
	// the denylist, thanks to proactive view changes and unpredictable
	// rotation.
	cfg := testConfig()
	c, gen := build(t, cfg)
	bcfg := DefaultBroadcasterConfig()
	bcfg.TargetLeader = c.LeaderIndex()
	b := NewBroadcaster(c, gen, bcfg)
	b.Start(100 * time.Millisecond)
	const total = 6 * 2000
	for i := 0; i < total; i += 4 {
		c.SubmitAt(time.Duration(i)*500*time.Microsecond, gen.Batch(4)...)
	}
	c.Run(8 * time.Second)
	mal := b.MaliciousIdentities()[0]
	denied := 0
	for _, cn := range c.ConsNodes {
		if cn.Denylist()[mal] {
			denied++
		}
	}
	if denied < 3 {
		t.Fatalf("smart adversary's client denied at only %d consensus nodes", denied)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}
