package attack

import (
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/chaos"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/simnet"
)

// TestBroadcasterAtViewChangeBoundary arms the broadcaster at exactly the
// view timeout of a run whose initial leader is malicious, so the attack's
// first bursts straddle the leader replacement. The denylist edge case:
// conflict evidence gathered under the dying view must still converge on
// the colluding client — and only on it — once the new leader installs.
func TestBroadcasterAtViewChangeBoundary(t *testing.T) {
	cfg := testConfig()
	c, gen := build(t, cfg)
	evil := c.LeaderIndex()
	EnableMaliciousLeader(c, evil)
	b := NewBroadcaster(c, gen, DefaultBroadcasterConfig())
	b.Start(cfg.ViewTimeout) // first burst lands as the view change does
	load(c, gen, 0, 2000, time.Millisecond)
	c.Run(5 * time.Second)

	if c.Collector.ViewChanges == 0 {
		t.Fatal("malicious leader never triggered a view change")
	}
	if c.LeaderIndex() == evil {
		t.Fatal("malicious leader still leading")
	}
	if b.Bursts == 0 {
		t.Fatal("broadcaster never fired")
	}
	malicious := make(map[crypto.Identity]bool)
	for _, id := range b.MaliciousIdentities() {
		malicious[id] = true
	}
	denied := 0
	for _, cn := range c.ConsNodes {
		for cl := range cn.Denylist() {
			if !malicious[cl] {
				t.Fatalf("correct client %s denylisted across the view-change boundary", cl)
			}
		}
		if cn.Denylist()[b.MaliciousIdentities()[0]] {
			denied++
		}
	}
	if denied < 3 {
		t.Fatalf("colluding client denied at %d consensus nodes, want >= 2f+1", denied)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

// TestEchoAdversaryUnderDropStorm overlays the §5.2 echo adversary with a
// drop storm on the leader's consensus egress. The storm forces view
// changes and block retransmissions while echoed copies keep arriving —
// the replay check must keep discarding them (the sequencer multicast is
// not stormed, so originals still win), leaving the denylist empty, and
// the retransmission machinery must land every legitimate transaction.
func TestEchoAdversaryUnderDropStorm(t *testing.T) {
	cfg := testConfig()
	c, gen := build(t, cfg)
	e := NewEchoAdversary(c)
	e.Start(20 * time.Millisecond)

	cons := make([]*simnet.Endpoint, len(c.ConsNodes))
	for i, cn := range c.ConsNodes {
		cons[i] = cn.Endpoint()
	}
	env := chaos.Env{
		Sim:         c.Sim,
		Net:         c.Net,
		Consensus:   cons,
		LeaderIndex: c.LeaderIndex,
	}
	storm := []chaos.Fault{{
		Kind:     chaos.KindDropStorm,
		At:       100 * time.Millisecond,
		Duration: 200 * time.Millisecond,
		Rate:     0.6,
	}}
	if err := chaos.ValidateSchedule(storm); err != nil {
		t.Fatal(err)
	}
	chaos.NewInjector(env, storm, 99).Install()

	load(c, gen, 0, 1500, 500*time.Microsecond)
	c.Run(4 * time.Second)

	if e.Echoed == 0 {
		t.Fatal("echo adversary never fired")
	}
	if c.Collector.ViewChanges == 0 {
		t.Fatal("storm never forced a view change — the overlay tested nothing")
	}
	if got := c.Collector.NumCommitted(); got != 1500 {
		t.Fatalf("committed %d of 1500 under echo + storm", got)
	}
	for _, cn := range c.ConsNodes {
		if len(cn.Denylist()) != 0 {
			t.Fatalf("denylist non-empty: storm turned echoed copies into false accusations: %v", cn.Denylist())
		}
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}
