package metrics

import (
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/types"
)

func id(b byte) types.TxID { return crypto.Hash([]byte{b}) }

func TestSubmittedCommittedLifecycle(t *testing.T) {
	c := NewCollector()
	c.Submitted(id(1), 10*time.Millisecond)
	c.Committed(id(1), 30*time.Millisecond, false)
	if c.NumSubmitted() != 1 || c.NumCommitted() != 1 || c.NumAborted() != 0 {
		t.Fatalf("counts: %d/%d/%d", c.NumSubmitted(), c.NumCommitted(), c.NumAborted())
	}
	if got := c.AvgLatency(0, time.Second); got != 20*time.Millisecond {
		t.Fatalf("latency %v, want 20ms", got)
	}
}

func TestCommitRequiresSubmission(t *testing.T) {
	c := NewCollector()
	c.Committed(id(1), time.Millisecond, false)
	if c.NumCommitted() != 0 {
		t.Fatal("unsolicited commit counted")
	}
}

func TestFirstCommitWins(t *testing.T) {
	c := NewCollector()
	c.Submitted(id(1), 0)
	c.Committed(id(1), 10*time.Millisecond, false)
	c.Committed(id(1), 50*time.Millisecond, true) // duplicate from another node
	if c.NumAborted() != 0 {
		t.Fatal("later duplicate overwrote the first commit")
	}
	if got := c.AvgLatency(0, time.Second); got != 10*time.Millisecond {
		t.Fatalf("latency %v, want 10ms", got)
	}
}

func TestDuplicateSubmissionKeepsFirstTime(t *testing.T) {
	c := NewCollector()
	c.Submitted(id(1), 5*time.Millisecond)
	c.Submitted(id(1), 50*time.Millisecond) // client retransmission
	c.Committed(id(1), 25*time.Millisecond, false)
	if got := c.AvgLatency(0, time.Second); got != 20*time.Millisecond {
		t.Fatalf("latency %v, want 20ms from first submission", got)
	}
}

func TestEffectiveThroughputWindow(t *testing.T) {
	c := NewCollector()
	for i := byte(0); i < 100; i++ {
		c.Submitted(id(i), 0)
		c.Committed(id(i), time.Duration(i)*10*time.Millisecond, i%10 == 0)
	}
	// Window [0, 500ms): commits at 0..490ms = 50 txns, 5 aborted.
	got := c.EffectiveThroughput(0, 500*time.Millisecond)
	if got != 90 { // 45 valid in 0.5s = 90/s
		t.Fatalf("throughput %.1f, want 90", got)
	}
	// Warmup window [250ms,500ms): 25 commits, 2 aborted (at 300,400ms... i=30,40)
	got = c.EffectiveThroughput(250*time.Millisecond, 500*time.Millisecond)
	if got < 80 || got > 100 {
		t.Fatalf("warmup-window throughput %.1f", got)
	}
}

func TestPercentiles(t *testing.T) {
	c := NewCollector()
	for i := byte(1); i <= 100; i++ {
		c.Submitted(id(i), 0)
		c.Committed(id(i), time.Duration(i)*time.Millisecond, false)
	}
	if p50 := c.PercentileLatency(0.5, 0, time.Second); p50 != 50*time.Millisecond {
		t.Fatalf("p50 %v", p50)
	}
	if p99 := c.PercentileLatency(0.99, 0, time.Second); p99 != 99*time.Millisecond {
		t.Fatalf("p99 %v", p99)
	}
	if p100 := c.PercentileLatency(1.0, 0, time.Second); p100 != 100*time.Millisecond {
		t.Fatalf("p100 %v", p100)
	}
}

func TestLatencyCacheInvalidation(t *testing.T) {
	c := NewCollector()
	for i := byte(1); i <= 10; i++ {
		c.Submitted(id(i), 0)
		c.Committed(id(i), time.Duration(i)*time.Millisecond, false)
	}
	// Prime the cache, then query the same window repeatedly.
	if p50 := c.PercentileLatency(0.5, 0, time.Second); p50 != 5*time.Millisecond {
		t.Fatalf("p50 %v", p50)
	}
	if avg := c.AvgLatency(0, time.Second); avg != 5500*time.Microsecond {
		t.Fatalf("avg %v", avg)
	}
	// A new commit must invalidate the cached sort.
	c.Submitted(id(11), 0)
	c.Committed(id(11), 100*time.Millisecond, false)
	if p100 := c.PercentileLatency(1.0, 0, time.Second); p100 != 100*time.Millisecond {
		t.Fatalf("p100 after new commit %v, want 100ms (stale cache?)", p100)
	}
	// A different window must bypass the cache too.
	if p100 := c.PercentileLatency(1.0, 0, 50*time.Millisecond); p100 != 10*time.Millisecond {
		t.Fatalf("p100 over narrow window %v, want 10ms", p100)
	}
}

func TestTimelineBuckets(t *testing.T) {
	c := NewCollector()
	// 10 commits in bucket 0, 20 in bucket 1; one abort in bucket 1.
	for i := byte(0); i < 10; i++ {
		c.Submitted(id(i), 0)
		c.Committed(id(i), 50*time.Millisecond, false)
	}
	for i := byte(10); i < 30; i++ {
		c.Submitted(id(i), 0)
		c.Committed(id(i), 150*time.Millisecond, i == 10)
	}
	buckets := c.Timeline(100*time.Millisecond, 300*time.Millisecond)
	if len(buckets) != 3 {
		t.Fatalf("buckets %d", len(buckets))
	}
	if buckets[0] != 100 || buckets[1] != 190 || buckets[2] != 0 {
		t.Fatalf("buckets %v, want [100 190 0]", buckets)
	}
}

func TestPhaseAveraging(t *testing.T) {
	c := NewCollector()
	c.Phase("consensus", 10*time.Millisecond)
	c.Phase("consensus", 20*time.Millisecond)
	if got := c.PhaseAvg("consensus"); got != 15*time.Millisecond {
		t.Fatalf("avg %v", got)
	}
	if got := c.PhaseAvg("missing"); got != 0 {
		t.Fatalf("missing phase avg %v", got)
	}
}

func TestAbortRateAndSpecRate(t *testing.T) {
	c := NewCollector()
	for i := byte(0); i < 10; i++ {
		c.Submitted(id(i), 0)
		c.Committed(id(i), time.Millisecond, i < 3)
	}
	if got := c.AbortRate(); got != 0.3 {
		t.Fatalf("abort rate %.2f", got)
	}
	c.Speculated = 100
	c.SpecMatched = 80
	if got := c.SpecSuccessRate(); got != 0.8 {
		t.Fatalf("spec rate %.2f", got)
	}
	empty := NewCollector()
	if empty.AbortRate() != 0 || empty.SpecSuccessRate() != 0 {
		t.Fatal("empty collector rates nonzero")
	}
}
