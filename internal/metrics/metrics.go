// Package metrics collects per-transaction and per-phase measurements from a
// simulated blockchain run: client-perceived latency (submit → commit
// notification, the paper's end-to-end metric, §6), effective throughput
// (valid committed transactions per second, §6.2), abort and re-execution
// counters, per-phase latency breakdowns (Tables 2 and 3), and a real-time
// throughput timeline (Fig 7).
package metrics

import (
	"math"
	"sort"
	"time"

	"github.com/bidl-framework/bidl/internal/types"
)

// Collector accumulates measurements. The transaction maps and latency
// cache are touched only from client endpoints, which all execute in the
// simulation's hub partition (one goroutine), so they need no locking. The
// plain uint64 counters are incremented from node handlers that may execute
// in concurrent partitions under the parallel engine: those sites use
// atomic.AddUint64, which is commutative and therefore deterministic.
type Collector struct {
	submitted map[types.TxID]time.Duration
	committed map[types.TxID]time.Duration
	aborted   map[types.TxID]bool

	// Reg holds named counters and histogram-backed phase timings.
	Reg *Registry

	// latCache memoizes the sorted latency slice for the last queried
	// window: Avg/P50/P99 over the same [from, to) would otherwise each
	// copy and re-sort every commit latency. A new commit invalidates it.
	latCache      []time.Duration
	latCacheSum   time.Duration
	latCacheFrom  time.Duration
	latCacheTo    time.Duration
	latCacheValid bool

	// counters
	Reexecuted     uint64 // transactions re-executed in commit fallback
	Speculated     uint64 // transactions executed speculatively
	SpecMatched    uint64 // speculations confirmed by consensus
	Conflicts      uint64 // sequence-space conflicts observed
	ViewChanges    uint64
	DeniedClients  uint64
	MVCCAborts     uint64 // HLF/FF validation aborts (contention)
	NondetAborts   uint64 // result-vector mismatches (non-determinism)
	RejectedTxns   uint64 // malformed/invalid submissions dropped
	RetransmitReqs uint64 // payload fetches due to loss
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		submitted: make(map[types.TxID]time.Duration),
		committed: make(map[types.TxID]time.Duration),
		aborted:   make(map[types.TxID]bool),
		Reg:       NewRegistry(),
	}
}

// Submitted records that tx was handed to the framework at time at.
func (c *Collector) Submitted(id types.TxID, at time.Duration) {
	if _, ok := c.submitted[id]; !ok {
		c.submitted[id] = at
	}
}

// Committed records the first commit notification for id. aborted marks
// transactions that committed as aborts (no state change). Commits of
// transactions never submitted through the collector (e.g. an adversary's
// own traffic) are ignored: effective throughput counts client
// transactions (§6.2).
func (c *Collector) Committed(id types.TxID, at time.Duration, aborted bool) {
	if _, ok := c.submitted[id]; !ok {
		return
	}
	if _, ok := c.committed[id]; ok {
		return
	}
	c.committed[id] = at
	if aborted {
		c.aborted[id] = true
	}
	c.latCacheValid = false
}

// IsCommitted reports whether id has a recorded commit.
func (c *Collector) IsCommitted(id types.TxID) bool {
	_, ok := c.committed[id]
	return ok
}

// Phase accumulates one sample of a named phase duration into the registry
// (histogram "phase.<name>"). Sums and counts are exact, so PhaseAvg matches
// the old ad-hoc accumulator to the nanosecond.
func (c *Collector) Phase(name string, d time.Duration) {
	c.Reg.Observe("phase."+name, d)
}

// PhaseAvg returns the mean duration of a named phase.
func (c *Collector) PhaseAvg(name string) time.Duration {
	h := c.Reg.Histogram("phase." + name)
	if h == nil {
		return 0
	}
	return h.Avg()
}

// NumSubmitted returns the number of distinct submitted transactions.
func (c *Collector) NumSubmitted() int { return len(c.submitted) }

// NumCommitted returns the number of distinct committed transactions
// (including aborted ones).
func (c *Collector) NumCommitted() int { return len(c.committed) }

// NumAborted returns the number of transactions committed as aborts.
func (c *Collector) NumAborted() int { return len(c.aborted) }

// AbortRate returns aborted / committed.
func (c *Collector) AbortRate() float64 {
	if len(c.committed) == 0 {
		return 0
	}
	return float64(len(c.aborted)) / float64(len(c.committed))
}

// EffectiveThroughput returns valid (non-aborted) committed transactions per
// second within [from, to).
func (c *Collector) EffectiveThroughput(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	n := 0
	for id, at := range c.committed {
		if at >= from && at < to && !c.aborted[id] {
			n++
		}
	}
	return float64(n) / (to - from).Seconds()
}

// latencies returns sorted commit latencies for transactions committed in
// [from, to). The result is cached (along with its sum) until the next
// commit or a query for a different window; callers must not mutate it.
func (c *Collector) latencies(from, to time.Duration) []time.Duration {
	if c.latCacheValid && c.latCacheFrom == from && c.latCacheTo == to {
		return c.latCache
	}
	ls := c.latCache[:0]
	var sum time.Duration
	for id, at := range c.committed {
		if at < from || at >= to {
			continue
		}
		if sub, ok := c.submitted[id]; ok {
			ls = append(ls, at-sub)
			sum += at - sub
		}
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	c.latCache = ls
	c.latCacheSum = sum
	c.latCacheFrom = from
	c.latCacheTo = to
	c.latCacheValid = true
	return ls
}

// AvgLatency returns the mean commit latency over [from, to).
func (c *Collector) AvgLatency(from, to time.Duration) time.Duration {
	ls := c.latencies(from, to)
	if len(ls) == 0 {
		return 0
	}
	return c.latCacheSum / time.Duration(len(ls))
}

// PercentileLatency returns the p-quantile (0 < p <= 1) latency in [from,to)
// by the nearest-rank method: the ceil(p*n)-th smallest sample. Flooring the
// rank instead (the previous int(p*n)) under-reports whenever p*n is not an
// integer — e.g. p99 over 10 samples returned the 9th instead of the 10th.
func (c *Collector) PercentileLatency(p float64, from, to time.Duration) time.Duration {
	ls := c.latencies(from, to)
	if len(ls) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(ls)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ls) {
		idx = len(ls) - 1
	}
	return ls[idx]
}

// Timeline buckets committed valid transactions into windows of the given
// width over [0, horizon) and returns each bucket as a txns/s rate — the
// real-time throughput curve of Fig 7.
func (c *Collector) Timeline(width, horizon time.Duration) []float64 {
	n := int(horizon / width)
	if n <= 0 {
		return nil
	}
	buckets := make([]float64, n)
	for id, at := range c.committed {
		if c.aborted[id] || at >= horizon {
			continue
		}
		// When horizon is not an integer multiple of width, commits in the
		// partial tail window [n*width, horizon) have no full bucket; they
		// are dropped rather than indexing past the slice.
		if idx := int(at / width); idx < n {
			buckets[idx]++
		}
	}
	for i := range buckets {
		buckets[i] /= width.Seconds()
	}
	return buckets
}

// SpecSuccessRate returns confirmed speculations / total speculations.
func (c *Collector) SpecSuccessRate() float64 {
	if c.Speculated == 0 {
		return 0
	}
	return float64(c.SpecMatched) / float64(c.Speculated)
}
