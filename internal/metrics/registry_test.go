package metrics

import (
	"testing"
	"time"
)

// Regression: Timeline used to index out of bounds when the horizon was not
// an integer multiple of the bucket width and a commit landed in the partial
// final bucket (e.g. 240ms with a 250ms horizon and 100ms buckets).
func TestTimelinePartialFinalBucket(t *testing.T) {
	c := NewCollector()
	c.Submitted(id(1), 0)
	c.Committed(id(1), 240*time.Millisecond, false)
	buckets := c.Timeline(100*time.Millisecond, 250*time.Millisecond)
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(buckets))
	}
	// The commit at 240ms falls past the last full bucket and is dropped
	// rather than panicking or being misattributed.
	if buckets[0] != 0 || buckets[1] != 0 {
		t.Fatalf("buckets = %v, want [0 0]", buckets)
	}

	// A commit inside a represented bucket still counts.
	c.Submitted(id(2), 0)
	c.Committed(id(2), 150*time.Millisecond, false)
	buckets = c.Timeline(100*time.Millisecond, 250*time.Millisecond)
	if buckets[1] != 10 { // 1 txn / 0.1s
		t.Fatalf("buckets = %v, want bucket1 == 10", buckets)
	}
}

// PercentileLatency uses the nearest-rank definition: the p-quantile of n
// sorted samples is element ceil(p*n)-1.
func TestPercentileNearestRank(t *testing.T) {
	mk := func(n int) *Collector {
		c := NewCollector()
		for i := 1; i <= n; i++ {
			c.Submitted(id(byte(i)), 0)
			c.Committed(id(byte(i)), time.Duration(i)*time.Millisecond, false)
		}
		return c
	}
	cases := []struct {
		n    int
		p    float64
		want time.Duration
	}{
		{1, 0.5, time.Millisecond}, // single sample: every quantile is it
		{1, 0.99, time.Millisecond},
		{2, 0.5, time.Millisecond},      // ceil(0.5*2)=1 -> first element
		{2, 0.51, 2 * time.Millisecond}, // ceil(1.02)=2 -> second element
		{4, 0.25, time.Millisecond},     // exact quartile boundary
		{4, 0.75, 3 * time.Millisecond},
		{5, 0.5, 3 * time.Millisecond}, // odd n: true median
		{100, 0.95, 95 * time.Millisecond},
		{100, 1.0, 100 * time.Millisecond},
		{100, 0.0, time.Millisecond}, // p=0 clamps to the minimum
	}
	for _, tc := range cases {
		c := mk(tc.n)
		if got := c.PercentileLatency(tc.p, 0, time.Second); got != tc.want {
			t.Errorf("n=%d p=%v: got %v, want %v", tc.n, tc.p, got, tc.want)
		}
	}
	// No samples in the window.
	c := NewCollector()
	if got := c.PercentileLatency(0.5, 0, time.Second); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

// EffectiveThroughput divides by the window length, including when the
// window does not start at zero.
func TestEffectiveThroughputNonZeroFrom(t *testing.T) {
	c := NewCollector()
	// 30 valid commits between 500ms and 800ms.
	for i := 0; i < 30; i++ {
		c.Submitted(id(byte(i)), 0)
		c.Committed(id(byte(i)), 500*time.Millisecond+time.Duration(i)*10*time.Millisecond, false)
	}
	// Window [500ms, 1s): 30 txns over 0.5s = 60/s.
	if got := c.EffectiveThroughput(500*time.Millisecond, time.Second); got != 60 {
		t.Fatalf("throughput = %.1f, want 60", got)
	}
	// Degenerate window yields zero, not NaN/Inf.
	if got := c.EffectiveThroughput(time.Second, time.Second); got != 0 {
		t.Fatalf("zero-width window throughput = %.1f, want 0", got)
	}
}

func TestHistogramExactStats(t *testing.T) {
	var h Histogram
	if h.Avg() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	samples := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond,
	}
	for _, s := range samples {
		h.Observe(s)
	}
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 60*time.Millisecond {
		t.Errorf("sum = %v", h.Sum())
	}
	if h.Avg() != 20*time.Millisecond {
		t.Errorf("avg = %v, want exact 20ms", h.Avg())
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 30*time.Millisecond {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	// Log2 buckets: the quantile is an upper bound within 2x of the truth,
	// clamped to [min, max].
	for _, p := range []float64{0.01, 0.5, 0.99, 1.0} {
		q := h.Quantile(p)
		if q < h.Min() || q > h.Max() {
			t.Errorf("Quantile(%v) = %v outside [min, max]", p, q)
		}
	}
	if q := h.Quantile(1.0); q != h.Max() {
		t.Errorf("Quantile(1.0) = %v, want max %v", q, h.Max())
	}
}

func TestHistogramZeroAndNegativeSamples(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-time.Millisecond)
	h.Observe(time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != -time.Millisecond || h.Max() != time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestRegistryCountersAndHistograms(t *testing.T) {
	r := NewRegistry()
	if r.Counter("nope") != 0 {
		t.Fatal("unknown counter nonzero")
	}
	r.Inc("b.count", 2)
	r.Inc("a.count", 1)
	r.Inc("b.count", 3)
	if r.Counter("b.count") != 5 || r.Counter("a.count") != 1 {
		t.Fatalf("counters = %d/%d", r.Counter("b.count"), r.Counter("a.count"))
	}
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "a.count" || names[1] != "b.count" {
		t.Fatalf("CounterNames = %v, want sorted [a.count b.count]", names)
	}

	if r.Histogram("nope") != nil {
		t.Fatal("unknown histogram non-nil")
	}
	r.Observe("z.lat", 10*time.Millisecond)
	r.Observe("y.lat", 20*time.Millisecond)
	r.Observe("z.lat", 30*time.Millisecond)
	if got := r.Histogram("z.lat").Avg(); got != 20*time.Millisecond {
		t.Fatalf("z.lat avg = %v", got)
	}
	hn := r.HistogramNames()
	if len(hn) != 2 || hn[0] != "y.lat" || hn[1] != "z.lat" {
		t.Fatalf("HistogramNames = %v, want sorted [y.lat z.lat]", hn)
	}
}

// The collector's phase tracking now rides on the registry; both views must
// agree.
func TestCollectorPhaseRegistryIntegration(t *testing.T) {
	c := NewCollector()
	c.Phase("consensus", 10*time.Millisecond)
	c.Phase("consensus", 30*time.Millisecond)
	if got := c.PhaseAvg("consensus"); got != 20*time.Millisecond {
		t.Fatalf("PhaseAvg = %v", got)
	}
	h := c.Reg.Histogram("phase.consensus")
	if h == nil || h.Count() != 2 || h.Avg() != 20*time.Millisecond {
		t.Fatalf("registry histogram = %+v", h)
	}
}
