package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var summaryGoldenUpdate = flag.Bool("golden-update", false, "rewrite the registry summary golden file")

func populated() *Registry {
	r := NewRegistry()
	r.Inc("batches", 41)
	r.Inc("aborts", 3)
	r.Inc("view-changes", 0)
	for i := 1; i <= 100; i++ {
		r.Observe("persist-wait", time.Duration(i)*50*time.Microsecond)
	}
	r.Observe("fetch-gap", 3*time.Millisecond)
	return r
}

// TestRegistrySummaryGolden pins the -telemetry registry block byte-for-byte:
// sorted names, stable formatting. Regenerate deliberately with
//
//	go test ./internal/metrics -run TestRegistrySummaryGolden -golden-update
func TestRegistrySummaryGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := populated().WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden-registry-summary.txt")
	if *summaryGoldenUpdate {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -golden-update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("summary drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestRegistrySummaryEmptyAndNil(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry().WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty registry summary = %q, want nothing", buf.String())
	}
	var nilReg *Registry
	if err := nilReg.WriteSummary(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry summary = %q err %v", buf.String(), err)
	}
}

func TestRegistrySummaryDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := populated().WriteSummary(&a); err != nil {
		t.Fatal(err)
	}
	if err := populated().WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("registry summaries of identical registries differ")
	}
}
