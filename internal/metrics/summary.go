package metrics

import (
	"fmt"
	"io"
	"time"
)

// WriteSummary renders the registry's counters and log2 histograms as a
// deterministic text block: names sorted, one line per metric. Histograms
// print count, mean, exact min/max, and the p50/p95/p99 upper bounds from
// Quantile. An empty registry prints nothing (no header), so callers can
// append it to other summaries unconditionally.
func (r *Registry) WriteSummary(w io.Writer) error {
	if r == nil {
		return nil
	}
	counters := r.CounterNames()
	hists := r.HistogramNames()
	if len(counters) == 0 && len(hists) == 0 {
		return nil
	}
	ew := &summaryWriter{w: w}
	p := func(format string, args ...any) { fmt.Fprintf(ew, format, args...) }
	p("registry metrics:\n")
	for _, name := range counters {
		p("  counter  %-24s %d\n", name, r.Counter(name))
	}
	for _, name := range hists {
		h := r.Histogram(name)
		p("  hist     %-24s n=%-8d mean=%-10s min=%-10s max=%-10s p50<=%-10s p95<=%-10s p99<=%s\n",
			name, h.Count(), fmtDur(h.Avg()), fmtDur(h.Min()), fmtDur(h.Max()),
			fmtDur(h.Quantile(0.50)), fmtDur(h.Quantile(0.95)), fmtDur(h.Quantile(0.99)))
	}
	return ew.err
}

// fmtDur renders a duration compactly and deterministically (Go's
// time.Duration String is stable across runs for identical values).
func fmtDur(d time.Duration) string { return d.String() }

type summaryWriter struct {
	w   io.Writer
	err error
}

func (s *summaryWriter) Write(b []byte) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	n, err := s.w.Write(b)
	s.err = err
	return n, err
}
