package metrics

import (
	"math/bits"
	"sort"
	"sync"
	"time"
)

// Histogram is a log2-bucketed duration histogram with an exact sum and
// count, so averages lose no precision while quantiles cost O(64). Bucket i
// covers durations whose nanosecond value has bit length i (bucket 0 holds
// d <= 0), i.e. [2^(i-1), 2^i) ns.
type Histogram struct {
	counts   [65]uint64
	n        uint64
	sum      time.Duration
	min, max time.Duration
}

func histBucket(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[histBucket(d)]++
	h.n++
	h.sum += d
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the exact sum of all samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Avg returns the exact mean sample.
func (h *Histogram) Avg() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an upper bound for the p-quantile (0 < p <= 1) using the
// nearest-rank method over the log2 buckets: the true value lies within a
// factor of two below the returned bound. Exact min/max tighten the tails.
func (h *Histogram) Quantile(p float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := uint64(float64(h.n) * p)
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if i == 0 {
				return 0
			}
			// Upper edge of bucket i is 2^i ns, clamped by the exact max.
			edge := time.Duration(1) << uint(i)
			if edge > h.max {
				edge = h.max
			}
			if edge < h.min {
				edge = h.min
			}
			return edge
		}
	}
	return h.max
}

// Registry is a named-metric store: monotonic counters and duration
// histograms. Every simulation (and every sweep point of the parallel
// runner) owns a private registry; a mutex guards the maps because the
// parallel simulation engine increments from concurrent partitions. Counter
// adds and histogram merges are commutative — sums, counts, min/max — so the
// final values are independent of partition interleaving and a parallel run
// reports byte-identical metrics to a serial one.
type Registry struct {
	mu       sync.Mutex
	counters map[string]uint64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]uint64),
		hists:    make(map[string]*Histogram),
	}
}

// Inc adds delta to the named counter.
func (r *Registry) Inc(name string, delta uint64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter returns the named counter's value (0 if never incremented).
func (r *Registry) Counter(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// CounterNames returns all counter names, sorted.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters))
	for n := range r.counters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Observe records a duration sample into the named histogram. The sample is
// folded in under the registry lock: histogram accumulation is commutative,
// so concurrent partitions may interleave freely without affecting the
// reported values.
func (r *Registry) Observe(name string, d time.Duration) {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	h.Observe(d)
	r.mu.Unlock()
}

// Histogram returns the named histogram, or nil if nothing was observed.
// The returned histogram must only be read once the simulation is quiescent.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hists[name]
}

// HistogramNames returns all histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.hists))
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
