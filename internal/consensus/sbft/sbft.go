// Package sbft implements an SBFT-style linear BFT protocol: replicas send
// threshold-signature shares to c+1 collectors (default c=1, §6), a
// collector combines a quorum of shares into a single commit proof and
// broadcasts it, and replicas verify one aggregate signature regardless of
// cluster size. The fast path combines 3f+1 shares; if the fast quorum does
// not form before a timeout, the collector falls back to a 2f+1 proof.
//
// Redundant collectors make the protocol robust to a crashed collector;
// duplicate proofs are deduplicated by the decided flag.
package sbft

import (
	"time"

	"github.com/bidl-framework/bidl/internal/consensus"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/types"
)

// Message kinds.
const (
	kindPrePrepare  = iota // leader → all
	kindShare              // replica → collectors
	kindCommitProof        // collector → all
	kindViewChange
	kindNewView
)

// Msg is the single wire type for all SBFT messages.
type Msg struct {
	Kind   int
	View   uint64
	Seq    uint64
	Node   int
	Digest crypto.Digest
	Data   []byte
	Sig    crypto.Signature
	Certs  []types.NodeSig
	Meta   []byte
	Seen   []Entry
}

// Entry summarizes an in-flight instance for view changes.
type Entry struct {
	Seq    uint64
	Digest crypto.Digest
	Data   []byte
}

// Size implements consensus.Msg.
func (m *Msg) Size() int {
	n := 1 + 8 + 8 + 4 + 32 + len(m.Data) + len(m.Sig) + len(m.Meta)
	n += len(m.Certs) * (4 + 64)
	for _, e := range m.Seen {
		n += 8 + 32 + len(e.Data)
	}
	return n
}

type instance struct {
	digest   crypto.Digest
	data     []byte
	have     bool
	shares   map[int]crypto.Signature
	fallback bool
	decided  bool
}

// Replica is one SBFT consensus node.
type Replica struct {
	cfg        consensus.Config
	host       consensus.Host
	collectors int // c+1

	view       uint64
	inView     bool
	nextSeq    uint64
	instances  map[uint64]*instance
	pending    []consensus.Value
	vcs        map[uint64]map[int]*Msg
	timerArmed bool
	timerEpoch uint64
	decidedCnt uint64
}

// New creates an SBFT replica with the paper's default c=1 (two collectors).
func New(cfg consensus.Config, host consensus.Host) *Replica {
	return NewWithCollectors(cfg, host, 2)
}

// NewWithCollectors creates an SBFT replica with an explicit collector count.
func NewWithCollectors(cfg consensus.Config, host consensus.Host, collectors int) *Replica {
	if collectors < 1 {
		collectors = 1
	}
	if collectors > cfg.N {
		collectors = cfg.N
	}
	return &Replica{
		cfg:        cfg,
		host:       host,
		collectors: collectors,
		inView:     true,
		instances:  make(map[uint64]*instance),
		vcs:        make(map[uint64]map[int]*Msg),
	}
}

// Name returns the protocol name.
func (r *Replica) Name() string { return "sbft" }

// View implements consensus.Replica.
func (r *Replica) View() uint64 { return r.view }

// Leader implements consensus.Replica.
func (r *Replica) Leader() int { return r.cfg.Policy.Leader(r.view) }

// IsLeader implements consensus.Replica.
func (r *Replica) IsLeader() bool { return r.Leader() == r.cfg.Self }

// Start implements consensus.Replica.
func (r *Replica) Start() {}

// isCollector reports whether node idx collects shares in the current view.
func (r *Replica) isCollector(idx int) bool {
	leader := r.Leader()
	for i := 0; i < r.collectors; i++ {
		if (leader+i)%r.cfg.N == idx {
			return true
		}
	}
	return false
}

func (r *Replica) inst(seq uint64) *instance {
	in, ok := r.instances[seq]
	if !ok {
		in = &instance{shares: make(map[int]crypto.Signature)}
		r.instances[seq] = in
	}
	return in
}

// Propose implements consensus.Replica.
func (r *Replica) Propose(v consensus.Value) {
	if !r.IsLeader() || !r.inView {
		r.pending = append(r.pending, v)
		return
	}
	r.proposeAt(r.nextSeq, v)
	r.nextSeq++
}

func (r *Replica) proposeAt(seq uint64, v consensus.Value) {
	in := r.inst(seq)
	in.digest, in.data, in.have = v.Digest, v.Data, true
	r.host.Proposed(seq, v)
	r.host.Elapse(r.cfg.MACCompute)
	r.host.BroadcastCN(&Msg{Kind: kindPrePrepare, View: r.view, Seq: seq, Node: r.cfg.Self, Digest: v.Digest, Data: v.Data})
	r.sendShare(seq, in)
	r.armTimer()
}

// sendShare signs a threshold share and routes it to every collector.
func (r *Replica) sendShare(seq uint64, in *instance) {
	r.host.Elapse(r.cfg.ThresholdSign)
	sig := r.host.Sign(types.CertSigningBytes(r.view, seq, in.digest))
	for i := 0; i < r.collectors; i++ {
		collector := (r.Leader() + i) % r.cfg.N
		m := &Msg{Kind: kindShare, View: r.view, Seq: seq, Node: r.cfg.Self, Digest: in.digest, Sig: sig}
		if collector == r.cfg.Self {
			r.acceptShare(r.cfg.Self, seq, in, sig)
		} else {
			r.host.Send(collector, m)
		}
	}
}

// Step implements consensus.Replica.
func (r *Replica) Step(from int, m consensus.Msg) {
	msg, ok := m.(*Msg)
	if !ok {
		return
	}
	switch msg.Kind {
	case kindPrePrepare:
		r.onPrePrepare(from, msg)
	case kindShare:
		r.onShare(from, msg)
	case kindCommitProof:
		r.onCommitProof(from, msg)
	case kindViewChange:
		r.onViewChange(from, msg)
	case kindNewView:
		r.onNewView(from, msg)
	}
}

func (r *Replica) onPrePrepare(from int, m *Msg) {
	r.host.Elapse(r.cfg.MACVerify)
	if m.View != r.view || !r.inView || from != r.Leader() {
		return
	}
	in := r.inst(m.Seq)
	if in.decided {
		return
	}
	if in.have && in.digest != m.Digest {
		r.RequestViewChange()
		return
	}
	in.digest, in.data, in.have = m.Digest, m.Data, true
	r.host.Proposed(m.Seq, consensus.Value{Digest: m.Digest, Data: m.Data})
	r.sendShare(m.Seq, in)
	r.armTimer()
}

func (r *Replica) onShare(from int, m *Msg) {
	if m.View != r.view || !r.inView || !r.isCollector(r.cfg.Self) {
		return
	}
	// Share verification is cheap relative to combination; charge a MAC.
	r.host.Elapse(r.cfg.MACVerify)
	if !r.host.VerifyNode(from, types.CertSigningBytes(m.View, m.Seq, m.Digest), m.Sig) {
		return
	}
	in := r.inst(m.Seq)
	if !in.have || in.digest != m.Digest {
		return
	}
	r.acceptShare(from, m.Seq, in, m.Sig)
}

func (r *Replica) acceptShare(from int, seq uint64, in *instance, sig crypto.Signature) {
	if in.decided {
		return
	}
	in.shares[from] = sig
	if len(in.shares) >= r.cfg.FastQuorum() {
		r.emitProof(seq, in, r.cfg.FastQuorum())
		return
	}
	if len(in.shares) == r.cfg.Quorum() && !in.fallback {
		in.fallback = true
		epoch := r.timerEpoch
		slice := r.cfg.ViewTimeout / 4
		if slice <= 0 {
			slice = 5 * time.Millisecond
		}
		r.host.After(slice, func() {
			if r.timerEpoch != epoch || in.decided || len(in.shares) >= r.cfg.FastQuorum() {
				return
			}
			r.emitProof(seq, in, r.cfg.Quorum())
		})
	}
}

// emitProof combines shares into one aggregate proof and broadcasts it.
func (r *Replica) emitProof(seq uint64, in *instance, limit int) {
	consensus.Phase(r.host, "proof", r.view, seq)
	r.host.Elapse(r.cfg.ThresholdCombine)
	cert := &types.Certificate{View: r.view, Number: seq, Digest: in.digest}
	for _, node := range consensus.SortedNodes(in.shares) {
		cert.Sigs = append(cert.Sigs, types.NodeSig{Node: node, Sig: in.shares[node]})
		if len(cert.Sigs) == limit {
			break
		}
	}
	r.host.BroadcastCN(&Msg{Kind: kindCommitProof, View: r.view, Seq: seq, Node: r.cfg.Self, Digest: in.digest, Data: in.data, Certs: cert.Sigs})
	r.decide(seq, in, cert)
}

func (r *Replica) onCommitProof(from int, m *Msg) {
	// A single aggregate verification regardless of cluster size: SBFT's
	// headline property.
	r.host.Elapse(r.cfg.SigVerify)
	in := r.inst(m.Seq)
	if in.decided {
		return
	}
	if !in.have {
		in.digest, in.data, in.have = m.Digest, m.Data, true
	}
	if in.digest != m.Digest {
		return
	}
	cert := &types.Certificate{View: m.View, Number: m.Seq, Digest: m.Digest, Sigs: m.Certs}
	r.decide(m.Seq, in, cert)
}

func (r *Replica) decide(seq uint64, in *instance, cert *types.Certificate) {
	if in.decided {
		return
	}
	in.decided = true
	r.decidedCnt++
	consensus.Phase(r.host, "decided", cert.View, seq)
	r.host.Deliver(seq, consensus.Value{Digest: in.digest, Data: in.data}, cert)
	if r.hasUndecided() {
		r.armTimer()
	}
}

// --- view changes (same skeleton as zyzzyva) ------------------------------

// RequestViewChange implements consensus.Replica.
func (r *Replica) RequestViewChange() { r.startViewChange(r.view + 1) }

func (r *Replica) startViewChange(newView uint64) {
	if newView <= r.view && !r.inView {
		return
	}
	r.inView = false
	r.timerEpoch++
	var seen []Entry
	for _, seq := range consensus.SortedSeqs(r.instances) {
		if in := r.instances[seq]; !in.decided && in.have {
			seen = append(seen, Entry{Seq: seq, Digest: in.digest, Data: in.data})
		}
	}
	r.host.Elapse(r.cfg.SigSign)
	vc := &Msg{Kind: kindViewChange, View: newView, Node: r.cfg.Self, Meta: r.host.ViewChangeMeta(), Seen: seen}
	vc.Sig = r.host.Sign(vcBytes(vc))
	r.host.BroadcastCN(vc)
	r.onViewChange(r.cfg.Self, vc)
	epoch := r.timerEpoch
	r.host.After(r.cfg.ViewTimeout, func() {
		if r.timerEpoch == epoch && !r.inView {
			r.startViewChange(newView + 1)
		}
	})
}

func vcBytes(m *Msg) []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, byte(m.Kind))
	for i := 0; i < 8; i++ {
		buf = append(buf, byte(m.View>>(8*(7-i))))
	}
	buf = append(buf, byte(m.Node))
	buf = append(buf, m.Meta...)
	for _, e := range m.Seen {
		buf = append(buf, e.Digest[:]...)
	}
	return buf
}

func (r *Replica) onViewChange(from int, m *Msg) {
	if m.View <= r.view {
		return
	}
	if from != r.cfg.Self {
		r.host.Elapse(r.cfg.SigVerify)
		if !r.host.VerifyNode(from, vcBytes(m), m.Sig) {
			return
		}
	}
	set := r.vcs[m.View]
	if set == nil {
		set = make(map[int]*Msg)
		r.vcs[m.View] = set
	}
	set[from] = m
	if len(set) == r.cfg.F+1 && r.inView {
		if _, mine := set[r.cfg.Self]; !mine {
			r.startViewChange(m.View)
		}
	}
	if len(set) >= r.cfg.Quorum() && r.cfg.Policy.Leader(m.View) == r.cfg.Self {
		r.installNewView(m.View, set)
	}
}

func (r *Replica) installNewView(view uint64, set map[int]*Msg) {
	if r.view >= view && r.inView {
		return
	}
	reprop := make(map[uint64]Entry)
	var metas [][]byte
	for _, id := range consensus.SortedNodes(set) {
		vc := set[id]
		metas = append(metas, vc.Meta)
		for _, e := range vc.Seen {
			if _, ok := reprop[e.Seq]; !ok {
				reprop[e.Seq] = e
			}
		}
	}
	nv := &Msg{Kind: kindNewView, View: view, Node: r.cfg.Self}
	r.host.Elapse(r.cfg.SigSign)
	nv.Sig = r.host.Sign(vcBytes(nv))
	r.host.BroadcastCN(nv)
	r.enterView(view, metas)
	for _, seq := range consensus.SortedSeqs(reprop) {
		e := reprop[seq]
		if in, ok := r.instances[seq]; ok && in.decided {
			continue
		}
		delete(r.instances, seq)
		r.proposeAt(seq, consensus.Value{Digest: e.Digest, Data: e.Data})
		if seq >= r.nextSeq {
			r.nextSeq = seq + 1
		}
	}
}

func (r *Replica) onNewView(from int, m *Msg) {
	r.host.Elapse(r.cfg.SigVerify)
	if m.View < r.view || (m.View == r.view && r.inView) {
		return
	}
	if from != r.cfg.Policy.Leader(m.View) {
		return
	}
	if !r.host.VerifyNode(from, vcBytes(m), m.Sig) {
		return
	}
	var metas [][]byte
	for _, id := range consensus.SortedNodes(r.vcs[m.View]) {
		metas = append(metas, r.vcs[m.View][id].Meta)
	}
	r.enterView(m.View, metas)
}

func (r *Replica) enterView(view uint64, metas [][]byte) {
	r.view = view
	r.inView = true
	r.timerEpoch++
	for seq, in := range r.instances {
		if !in.decided {
			delete(r.instances, seq)
		} else if seq >= r.nextSeq {
			r.nextSeq = seq + 1
		}
	}
	delete(r.vcs, view)
	r.host.ViewChanged(view, r.Leader(), metas)
	if r.IsLeader() {
		pend := r.pending
		r.pending = nil
		for _, v := range pend {
			r.Propose(v)
		}
	}
}

// --- progress timer --------------------------------------------------------

func (r *Replica) armTimer() {
	if r.timerArmed || r.cfg.ViewTimeout <= 0 {
		return
	}
	r.timerArmed = true
	epoch := r.timerEpoch
	decided := r.decidedCnt
	r.host.After(r.cfg.ViewTimeout, func() {
		r.timerArmed = false
		if r.timerEpoch != epoch || !r.inView {
			return
		}
		if r.decidedCnt == decided && r.hasUndecided() {
			r.RequestViewChange()
		} else if r.hasUndecided() {
			r.armTimer()
		}
	})
}

func (r *Replica) hasUndecided() bool {
	for _, in := range r.instances {
		if !in.decided && in.have {
			return true
		}
	}
	return false
}
