package sbft

import (
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/consensus"
	"github.com/bidl-framework/bidl/internal/consensus/constest"
)

func factory(cfg consensus.Config, host consensus.Host) consensus.Replica {
	return New(cfg, host)
}

func TestConformance(t *testing.T) {
	constest.RunConformance(t, factory, constest.ConformanceOptions{HasCerts: true})
}

func TestConformanceLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("larger cluster")
	}
	constest.RunConformance(t, factory, constest.ConformanceOptions{N: 7, F: 2, HasCerts: true})
}

func TestSingleCollectorStillDecides(t *testing.T) {
	one := func(cfg consensus.Config, host consensus.Host) consensus.Replica {
		return NewWithCollectors(cfg, host, 1)
	}
	c := constest.NewCluster(4, 1, one, constest.Options{})
	c.Propose(time.Millisecond, constest.Val("v"))
	c.Run(time.Second)
	for i, n := range c.Nodes {
		if len(n.Delivered) != 1 {
			t.Fatalf("node %d delivered %d with one collector", i, len(n.Delivered))
		}
	}
}

func TestCrashedCollectorRedundancy(t *testing.T) {
	// Default c=1 means collectors are leader(0) and node 1. Crashing
	// node 1 must not block progress: the leader also collects.
	c := constest.NewCluster(4, 1, factory, constest.Options{ViewTimeout: 40 * time.Millisecond})
	c.Sim.At(0, func() {
		c.Nodes[1].Endpoint().SetDown(true)
		c.Nodes[1].DropOutgoing = true
	})
	c.Propose(time.Millisecond, constest.Val("v"))
	c.Run(2 * time.Second)
	for _, i := range []int{0, 2, 3} {
		if len(c.Nodes[i].Delivered) != 1 {
			t.Fatalf("node %d delivered %d with collector crashed", i, len(c.Nodes[i].Delivered))
		}
	}
}

func TestReplicaVerifiesOneAggregate(t *testing.T) {
	// Non-collector replicas should see O(1) inbound protocol messages
	// per decision (pre-prepare + one commit proof per collector), unlike
	// PBFT's O(n).
	c := constest.NewCluster(7, 2, factory, constest.Options{})
	const k = 5
	for i := 0; i < k; i++ {
		c.Propose(time.Duration(i)*time.Millisecond, constest.Val(string(rune('a'+i))))
	}
	c.Run(time.Second)
	// Node 5 is not leader (0) nor collector (0,1).
	recv := c.Nodes[5].Endpoint().Stats().Received
	if recv > uint64(k*4) {
		t.Fatalf("non-collector received %d messages for %d decisions; expected O(1) per decision", recv, k)
	}
}
