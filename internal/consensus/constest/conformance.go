package constest

import (
	"fmt"
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/consensus"
)

// ConformanceOptions selects which parts of the shared suite apply to a
// protocol.
type ConformanceOptions struct {
	// N and F size the cluster (defaults 4, 1).
	N, F int
	// HasCerts indicates the protocol emits verifiable certificates
	// (false for CFT protocols like Raft).
	HasCerts bool
	// CertQuorum is the signature quorum certificates must reach
	// (defaults to 2f+1).
	CertQuorum int
}

// RunConformance executes the protocol-independent consensus suite: safety
// (agreement, no duplicate delivery), liveness (fault-free progress, leader
// failover), certificate validity, and determinism.
func RunConformance(t *testing.T, factory Factory, opts ConformanceOptions) {
	if opts.N == 0 {
		opts.N, opts.F = 4, 1
	}
	if opts.CertQuorum == 0 {
		opts.CertQuorum = 2*opts.F + 1
	}

	t.Run("FaultFreeDecide", func(t *testing.T) {
		c := NewCluster(opts.N, opts.F, factory, Options{})
		const k = 10
		for i := 0; i < k; i++ {
			c.Propose(time.Duration(i)*time.Millisecond, Val(fmt.Sprintf("v%d", i)))
		}
		c.Run(2 * time.Second)
		for i, node := range c.Nodes {
			if got := len(node.DeliveredDigests()); got != k {
				t.Fatalf("node %d delivered %d values, want %d", i, got, k)
			}
			if dups := node.DuplicateDeliveries(); len(dups) != 0 {
				t.Fatalf("node %d delivered seqs %v more than once", i, dups)
			}
		}
	})

	t.Run("Agreement", func(t *testing.T) {
		c := NewCluster(opts.N, opts.F, factory, Options{})
		const k = 8
		for i := 0; i < k; i++ {
			c.Propose(time.Duration(i)*time.Millisecond, Val(fmt.Sprintf("v%d", i)))
		}
		c.Run(2 * time.Second)
		ref := c.Nodes[0].DeliveredDigests()
		if len(ref) != k {
			t.Fatalf("node 0 delivered %d, want %d", len(ref), k)
		}
		for i, node := range c.Nodes[1:] {
			got := node.DeliveredDigests()
			if len(got) != len(ref) {
				t.Fatalf("node %d delivered %d values, node 0 delivered %d", i+1, len(got), len(ref))
			}
			for s := range ref {
				if got[s] != ref[s] {
					t.Fatalf("node %d disagrees with node 0 at seq %d", i+1, s)
				}
			}
		}
	})

	if opts.HasCerts {
		t.Run("CertificatesVerify", func(t *testing.T) {
			c := NewCluster(opts.N, opts.F, factory, Options{})
			c.Propose(time.Millisecond, Val("certified"))
			c.Run(time.Second)
			for i, node := range c.Nodes {
				if len(node.Delivered) == 0 {
					t.Fatalf("node %d delivered nothing", i)
				}
				d := node.Delivered[0]
				if d.Cert == nil {
					t.Fatalf("node %d delivered without certificate", i)
				}
				if !d.Cert.Verify(c.Scheme, c.Identity, opts.CertQuorum) {
					t.Fatalf("node %d certificate does not verify at quorum %d", i, opts.CertQuorum)
				}
				if d.Cert.Digest != d.Val.Digest {
					t.Fatalf("node %d certificate digest mismatch", i)
				}
			}
		})
	}

	t.Run("LeaderFailover", func(t *testing.T) {
		c := NewCluster(opts.N, opts.F, factory, Options{ViewTimeout: 20 * time.Millisecond})
		// Decide something in view 0 first.
		c.Propose(time.Millisecond, Val("before"))
		c.Run(200 * time.Millisecond)
		oldLeader := c.LeaderIdx()
		// Crash the leader and have the hosts request a view change (the
		// shepherd/client-timeout path in BIDL, §4.5).
		c.Sim.At(c.Sim.Now(), func() {
			c.Nodes[oldLeader].Endpoint().SetDown(true)
			c.Nodes[oldLeader].DropOutgoing = true
			for i, n := range c.Nodes {
				if i == oldLeader {
					continue
				}
				n.withCtx(func() { n.replica.RequestViewChange() })
			}
		})
		c.Run(c.Sim.Now() + 500*time.Millisecond)
		// Propose in the new view at the new leader.
		var newLeader int
		for i, n := range c.Nodes {
			if i != oldLeader {
				newLeader = n.replica.Leader()
				break
			}
		}
		if newLeader == oldLeader {
			t.Fatalf("leader did not change after failover (still %d)", oldLeader)
		}
		c.ProposeAt(newLeader, c.Sim.Now()+time.Millisecond, Val("after"))
		c.Run(c.Sim.Now() + time.Second)
		for i, node := range c.Nodes {
			if i == oldLeader {
				continue
			}
			found := false
			for _, d := range node.Delivered {
				if d.Val.Digest == Val("after").Digest {
					found = true
				}
			}
			if !found {
				t.Fatalf("node %d never delivered the post-failover value", i)
			}
			if dups := node.DuplicateDeliveries(); len(dups) != 0 {
				t.Fatalf("node %d duplicate deliveries %v after failover", i, dups)
			}
		}
	})

	t.Run("Deterministic", func(t *testing.T) {
		run := func() []string {
			c := NewCluster(opts.N, opts.F, factory, Options{Seed: 99})
			for i := 0; i < 5; i++ {
				c.Propose(time.Duration(i)*time.Millisecond, Val(fmt.Sprintf("v%d", i)))
			}
			c.Run(time.Second)
			var out []string
			for _, node := range c.Nodes {
				for _, d := range node.Delivered {
					out = append(out, fmt.Sprintf("%d:%d:%s:%v", node.idx, d.Seq, d.Val.Digest, d.At))
				}
			}
			return out
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Fatalf("runs produced %d vs %d deliveries", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("runs diverge at %d: %s vs %s", i, a[i], b[i])
			}
		}
	})

	t.Run("CrashedFollowerTolerated", func(t *testing.T) {
		c := NewCluster(opts.N, opts.F, factory, Options{})
		// Crash one non-leader before anything happens.
		victim := (c.LeaderIdx() + 1) % opts.N
		c.Sim.At(0, func() {
			c.Nodes[victim].Endpoint().SetDown(true)
			c.Nodes[victim].DropOutgoing = true
		})
		const k = 5
		for i := 0; i < k; i++ {
			c.Propose(time.Duration(i+1)*time.Millisecond, Val(fmt.Sprintf("v%d", i)))
		}
		c.Run(2 * time.Second)
		for i, node := range c.Nodes {
			if i == victim {
				continue
			}
			if got := len(node.DeliveredDigests()); got != k {
				t.Fatalf("node %d delivered %d with one crashed follower, want %d", i, got, k)
			}
		}
	})

	_ = consensus.Value{}
}
