// Package constest provides a reusable harness for exercising consensus
// protocols over simnet: it builds an N-replica cluster, wires each replica
// to a simulated single-core endpoint via a Host adapter, and records
// deliveries, certificates, and view changes for assertions.
//
// Every protocol package's tests (pbft, hotstuff, zyzzyva, sbft, raft) run
// the same conformance suite through this harness.
package constest

import (
	"fmt"
	"time"

	"github.com/bidl-framework/bidl/internal/consensus"
	"github.com/bidl-framework/bidl/internal/cost"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/types"
)

// Factory builds a replica for one node of the cluster.
type Factory func(cfg consensus.Config, host consensus.Host) consensus.Replica

// Delivery records one decided value at one node.
type Delivery struct {
	Seq  uint64
	Val  consensus.Value
	Cert *types.Certificate
	At   time.Duration
}

// Node is one consensus node: endpoint handler + consensus.Host adapter.
type Node struct {
	cluster *Cluster
	idx     int
	ep      *simnet.Endpoint
	ctx     *simnet.Context
	replica consensus.Replica

	Delivered []Delivery
	bySeq     map[uint64]int // delivery count per seq, to catch duplicates
	Views     []uint64
	Metas     [][][]byte

	// Meta is returned from ViewChangeMeta.
	Meta []byte
	// DropOutgoing, when true, silences the node (crash-like without
	// marking the endpoint down).
	DropOutgoing bool
}

// Replica returns the node's protocol instance.
func (n *Node) Replica() consensus.Replica { return n.replica }

// Endpoint returns the node's simnet endpoint.
func (n *Node) Endpoint() *simnet.Endpoint { return n.ep }

// OnMessage implements simnet.Handler.
func (n *Node) OnMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	prev := n.ctx
	n.ctx = ctx
	defer func() { n.ctx = prev }()
	cm, ok := msg.(consensus.Msg)
	if !ok {
		return
	}
	idx, ok := n.cluster.index[from]
	if !ok {
		return
	}
	n.replica.Step(idx, cm)
}

// --- consensus.Host ----------------------------------------------------

// Send implements consensus.Host.
func (n *Node) Send(to int, m consensus.Msg) {
	if n.DropOutgoing {
		return
	}
	if to == n.idx {
		// Loopback without the network.
		n.replica.Step(n.idx, m)
		return
	}
	n.ctx.Send(n.cluster.Nodes[to].ep.ID(), m)
}

// BroadcastCN implements consensus.Host.
func (n *Node) BroadcastCN(m consensus.Msg) {
	if n.DropOutgoing {
		return
	}
	for i, peer := range n.cluster.Nodes {
		if i == n.idx {
			continue
		}
		n.ctx.Send(peer.ep.ID(), m)
	}
}

// After implements consensus.Host.
func (n *Node) After(d time.Duration, fn func()) {
	n.ctx.After(d, func(c *simnet.Context) {
		prev := n.ctx
		n.ctx = c
		defer func() { n.ctx = prev }()
		fn()
	})
}

// Elapse implements consensus.Host.
func (n *Node) Elapse(d time.Duration) { n.ctx.Elapse(d) }

// Sign implements consensus.Host.
func (n *Node) Sign(data []byte) crypto.Signature {
	sig, err := n.cluster.Scheme.Sign(n.cluster.Identity(n.idx), data)
	if err != nil {
		panic(err)
	}
	return sig
}

// VerifyNode implements consensus.Host.
func (n *Node) VerifyNode(node int, data []byte, sig crypto.Signature) bool {
	return n.cluster.Scheme.Verify(n.cluster.Identity(node), data, sig)
}

// Proposed implements consensus.Host.
func (n *Node) Proposed(seq uint64, v consensus.Value) {}

// Deliver implements consensus.Host.
func (n *Node) Deliver(seq uint64, v consensus.Value, cert *types.Certificate) {
	n.Delivered = append(n.Delivered, Delivery{Seq: seq, Val: v, Cert: cert, At: n.ctx.Now()})
	n.bySeq[seq]++
}

// ViewChanged implements consensus.Host.
func (n *Node) ViewChanged(view uint64, leader int, metas [][]byte) {
	n.Views = append(n.Views, view)
	n.Metas = append(n.Metas, metas)
}

// ViewChangeMeta implements consensus.Host.
func (n *Node) ViewChangeMeta() []byte { return n.Meta }

// RandInt implements consensus.Host.
func (n *Node) RandInt(m int) int { return n.cluster.Sim.Rand().Intn(m) }

// DuplicateDeliveries returns seqs delivered more than once.
func (n *Node) DuplicateDeliveries() []uint64 {
	var dups []uint64
	for s, c := range n.bySeq {
		if c > 1 {
			dups = append(dups, s)
		}
	}
	return dups
}

// DeliveredDigests returns the decided digests ordered by seq, up to the
// first gap.
func (n *Node) DeliveredDigests() []crypto.Digest {
	m := make(map[uint64]crypto.Digest, len(n.Delivered))
	for _, d := range n.Delivered {
		m[d.Seq] = d.Val.Digest
	}
	var out []crypto.Digest
	for seq := uint64(0); ; seq++ {
		d, ok := m[seq]
		if !ok {
			break
		}
		out = append(out, d)
	}
	return out
}

// Cluster is an N-node consensus cluster over simnet.
type Cluster struct {
	Sim    *simnet.Sim
	Net    *simnet.Network
	Nodes  []*Node
	Scheme crypto.Scheme
	Cfg    consensus.Config
	index  map[simnet.NodeID]int
}

// Options tweak cluster construction.
type Options struct {
	Seed        int64
	ViewTimeout time.Duration
	Policy      consensus.LeaderPolicy
	Topology    *simnet.Topology
}

// NewCluster builds an n-node cluster tolerating f faults.
func NewCluster(n, f int, factory Factory, opts Options) *Cluster {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.ViewTimeout == 0 {
		opts.ViewTimeout = 50 * time.Millisecond
	}
	if opts.Policy == nil {
		opts.Policy = consensus.RoundRobin{N: n}
	}
	topo := simnet.DefaultTopology()
	if opts.Topology != nil {
		topo = *opts.Topology
	}
	sim := simnet.NewSim(opts.Seed)
	net := simnet.NewNetwork(sim, topo)
	scheme := crypto.NewHMACScheme([]byte("constest"))
	cm := cost.Default()
	c := &Cluster{Sim: sim, Net: net, Scheme: scheme, index: make(map[simnet.NodeID]int)}
	base := consensus.Config{
		N: n, F: f,
		Policy:           opts.Policy,
		ViewTimeout:      opts.ViewTimeout,
		SigVerify:        cm.SigVerify,
		SigSign:          cm.SigSign,
		MACVerify:        cm.MACVerify,
		MACCompute:       cm.MACCompute,
		ThresholdSign:    cm.ThresholdSign,
		ThresholdCombine: cm.ThresholdCombine,
	}
	c.Cfg = base
	for i := 0; i < n; i++ {
		node := &Node{cluster: c, idx: i, bySeq: make(map[uint64]int)}
		node.ep = net.Register(fmt.Sprintf("cn%d", i), 0, node)
		c.index[node.ep.ID()] = i
		scheme.Register(c.Identity(i))
		cfg := base
		cfg.Self = i
		node.replica = factory(cfg, node)
		c.Nodes = append(c.Nodes, node)
	}
	sim.At(0, func() {
		for _, node := range c.Nodes {
			node.withCtx(func() { node.replica.Start() })
		}
	})
	return c
}

// WithCtx gives the node a synthetic activation context for calls injected
// from outside a handler (Propose, Start, forced view changes).
func (n *Node) WithCtx(fn func()) { n.withCtx(fn) }

// withCtx gives the node a synthetic activation context for calls injected
// from the test (Propose, Start).
func (n *Node) withCtx(fn func()) {
	prev := n.ctx
	n.ctx = simnet.NewInjectedContext(n.cluster.Net, n.ep)
	defer func() { n.ctx = prev }()
	fn()
}

// Identity names consensus node i in the membership registry.
func (c *Cluster) Identity(i int) crypto.Identity {
	return crypto.Identity(fmt.Sprintf("cn%d", i))
}

// LeaderIdx returns the current leader according to node 0.
func (c *Cluster) LeaderIdx() int { return c.Nodes[0].replica.Leader() }

// Propose schedules a proposal at the current leader at time d.
func (c *Cluster) Propose(d time.Duration, v consensus.Value) {
	c.Sim.At(d, func() {
		leader := c.Nodes[c.LeaderIdx()]
		leader.withCtx(func() { leader.replica.Propose(v) })
	})
}

// ProposeAt schedules a proposal at a specific node at time d.
func (c *Cluster) ProposeAt(node int, d time.Duration, v consensus.Value) {
	c.Sim.At(d, func() {
		nd := c.Nodes[node]
		nd.withCtx(func() { nd.replica.Propose(v) })
	})
}

// Run advances the simulation to t.
func (c *Cluster) Run(t time.Duration) { c.Sim.RunUntil(t) }

// SendAs transmits a protocol message from consensus node `from` to node
// `to` over the network at time d — used by tests to forge or replay
// messages (e.g. an equivocating leader).
func (c *Cluster) SendAs(d time.Duration, from, to int, m consensus.Msg) {
	c.Sim.At(d, func() {
		src := c.Nodes[from]
		ctx := simnet.NewInjectedContext(c.Net, src.ep)
		ctx.Send(c.Nodes[to].ep.ID(), m)
	})
}

// RequestViewChangeAll invokes RequestViewChange on every live replica at
// time d (the host-driven trigger path, §4.5).
func (c *Cluster) RequestViewChangeAll(d time.Duration) {
	c.Sim.At(d, func() {
		for _, n := range c.Nodes {
			if n.DropOutgoing {
				continue
			}
			n.withCtx(func() { n.replica.RequestViewChange() })
		}
	})
}

// Val builds a deterministic test value from a string.
func Val(s string) consensus.Value {
	return consensus.Value{Digest: crypto.Hash([]byte(s)), Data: []byte(s)}
}
