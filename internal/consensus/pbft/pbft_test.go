package pbft

import (
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/consensus"
	"github.com/bidl-framework/bidl/internal/consensus/constest"
)

func factory(cfg consensus.Config, host consensus.Host) consensus.Replica {
	return New(cfg, host)
}

func TestConformance(t *testing.T) {
	constest.RunConformance(t, factory, constest.ConformanceOptions{HasCerts: true})
}

func TestConformanceLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("larger cluster")
	}
	constest.RunConformance(t, factory, constest.ConformanceOptions{N: 7, F: 2, HasCerts: true})
}

func TestEquivocatingLeaderTriggersViewChange(t *testing.T) {
	c := constest.NewCluster(4, 1, factory, constest.Options{ViewTimeout: 20 * time.Millisecond})
	// Node 0 leads view 0 and equivocates on seq 0: followers 1 sees
	// digest A, followers 2 and 3 see digest B. Prepares for different
	// digests never reach quorum; the progress timer forces a view change.
	a, b := constest.Val("A"), constest.Val("B")
	for i := 1; i < 4; i++ {
		v := a
		if i >= 2 {
			v = b
		}
		c.SendAs(time.Millisecond, 0, i,
			&Msg{Kind: kindPrePrepare, View: 0, Seq: 0, Node: 0, Digest: v.Digest, Data: v.Data})
	}
	c.Run(2 * time.Second)
	for i := 1; i < 4; i++ {
		if c.Nodes[i].Replica().View() == 0 {
			t.Fatalf("node %d never left view 0 despite equivocation", i)
		}
	}
}

func TestDirectEquivocationDetection(t *testing.T) {
	// Followers seeing two conflicting pre-prepares for the same seq must
	// start a view change immediately (not just on timeout): with f+1
	// initiators the rest join and the view advances even though the
	// progress timer never fires.
	c := constest.NewCluster(4, 1, factory, constest.Options{ViewTimeout: time.Hour})
	a, b := constest.Val("A"), constest.Val("B")
	for _, follower := range []int{1, 2} {
		c.SendAs(time.Millisecond, 0, follower,
			&Msg{Kind: kindPrePrepare, View: 0, Seq: 0, Node: 0, Digest: a.Digest, Data: a.Data})
		c.SendAs(2*time.Millisecond, 0, follower,
			&Msg{Kind: kindPrePrepare, View: 0, Seq: 0, Node: 0, Digest: b.Digest, Data: b.Data})
	}
	c.Run(500 * time.Millisecond)
	for i := 1; i < 4; i++ {
		if c.Nodes[i].Replica().View() == 0 {
			t.Fatalf("node %d still in view 0 after direct equivocation detection", i)
		}
	}
}

func TestViewChangeCarriesMeta(t *testing.T) {
	c := constest.NewCluster(4, 1, factory, constest.Options{ViewTimeout: 10 * time.Millisecond})
	for i, n := range c.Nodes {
		n.Meta = []byte{byte('a' + i)}
	}
	c.RequestViewChangeAll(time.Millisecond)
	c.Run(time.Second)
	for i, n := range c.Nodes {
		if len(n.Views) == 0 {
			t.Fatalf("node %d saw no view change", i)
		}
		if len(n.Metas[0]) < 3 {
			t.Fatalf("node %d received %d metas, want >= quorum", i, len(n.Metas[0]))
		}
	}
}

func TestPreparedInstanceSurvivesViewChange(t *testing.T) {
	// An instance that reaches prepared state but is interrupted by a view
	// change must be re-proposed and decided in the next view without
	// duplicate delivery.
	c := constest.NewCluster(4, 1, factory, constest.Options{ViewTimeout: 15 * time.Millisecond})
	v := constest.Val("survivor")
	c.Propose(time.Millisecond, v)
	// Intra-DC one-way latency is 100µs: at t=1.15ms prepares have
	// quorum-ed at some nodes but commits are still in flight.
	c.RequestViewChangeAll(1150 * time.Microsecond)
	c.Run(2 * time.Second)
	for i, n := range c.Nodes {
		found := false
		for _, d := range n.Delivered {
			if d.Val.Digest == v.Digest {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d lost the in-flight value across the view change", i)
		}
		if dups := n.DuplicateDeliveries(); len(dups) != 0 {
			t.Fatalf("node %d delivered %v twice", i, dups)
		}
	}
}

func TestMessageSizes(t *testing.T) {
	m := &Msg{Kind: kindPrePrepare, Data: make([]byte, 100), Sig: make([]byte, 32)}
	if m.Size() <= 100 {
		t.Fatal("size must include headers")
	}
	withPrepared := &Msg{Kind: kindViewChange, Prepared: []PreparedEntry{{Data: make([]byte, 50)}}}
	if withPrepared.Size() <= (&Msg{Kind: kindViewChange}).Size() {
		t.Fatal("prepared entries must contribute to size")
	}
}
