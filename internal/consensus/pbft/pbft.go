// Package pbft implements a PBFT-style three-phase BFT protocol
// (pre-prepare → prepare → commit) with view changes, standing in for
// BFT-SMaRt, the paper's default consensus protocol (§6).
//
// Phase messages are MAC-authenticated (BFT-SMaRt style) except commits,
// which are signed so that 2f+1 of them form the block certificate normal
// nodes verify (Algo 2 line 9).
package pbft

import (
	"github.com/bidl-framework/bidl/internal/consensus"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/types"
)

// Message kinds.
const (
	kindPrePrepare = iota
	kindPrepare
	kindCommit
	kindViewChange
	kindNewView
)

// Msg is the single wire type for all PBFT messages.
type Msg struct {
	Kind   int
	View   uint64
	Seq    uint64
	Node   int
	Digest crypto.Digest
	// Data carries the proposal payload on pre-prepares.
	Data []byte
	// Sig authenticates commit and view-change messages.
	Sig crypto.Signature
	// Meta is the host's piggybacked view-change payload (denylist votes).
	Meta []byte
	// Prepared carries prepared-instance summaries inside view changes so
	// the new leader can re-propose them; PrePrepared carries instances
	// that only reached pre-prepare, re-proposed when no prepared entry
	// exists for the sequence (safe: an undecidable-prepared seq cannot
	// have been decided anywhere).
	Prepared    []PreparedEntry
	PrePrepared []PreparedEntry
}

// PreparedEntry summarizes an instance that reached prepared state.
type PreparedEntry struct {
	Seq    uint64
	Digest crypto.Digest
	Data   []byte
}

// Size implements consensus.Msg.
func (m *Msg) Size() int {
	n := 1 + 8 + 8 + 4 + 32 + len(m.Data) + len(m.Sig) + len(m.Meta) + 32 /* MAC */
	for _, p := range m.Prepared {
		n += 8 + 32 + len(p.Data)
	}
	for _, p := range m.PrePrepared {
		n += 8 + 32 + len(p.Data)
	}
	return n
}

type instance struct {
	digest   crypto.Digest
	data     []byte
	havePP   bool
	prepares map[int]bool
	commits  map[int]crypto.Signature
	sentPrep bool
	sentComm bool
	decided  bool
}

// Replica is one PBFT consensus node.
type Replica struct {
	cfg  consensus.Config
	host consensus.Host

	view       uint64
	inView     bool // false while a view change is in progress
	nextSeq    uint64
	minSeq     uint64 // sequences below this are decided/garbage
	instances  map[uint64]*instance
	pending    []consensus.Value // proposals waiting for leadership
	vcs        map[uint64]map[int]*Msg
	timerArmed bool
	timerEpoch uint64 // invalidates stale timers
	decidedCnt uint64
}

// New creates a PBFT replica.
func New(cfg consensus.Config, host consensus.Host) *Replica {
	return &Replica{
		cfg:       cfg,
		host:      host,
		inView:    true,
		instances: make(map[uint64]*instance),
		vcs:       make(map[uint64]map[int]*Msg),
	}
}

// Name returns the protocol name.
func (r *Replica) Name() string { return "pbft" }

// View implements consensus.Replica.
func (r *Replica) View() uint64 { return r.view }

// Leader implements consensus.Replica.
func (r *Replica) Leader() int { return r.cfg.Policy.Leader(r.view) }

// IsLeader implements consensus.Replica.
func (r *Replica) IsLeader() bool { return r.Leader() == r.cfg.Self }

// Start implements consensus.Replica.
func (r *Replica) Start() {}

func (r *Replica) inst(seq uint64) *instance {
	in, ok := r.instances[seq]
	if !ok {
		in = &instance{prepares: make(map[int]bool), commits: make(map[int]crypto.Signature)}
		r.instances[seq] = in
	}
	return in
}

// Propose implements consensus.Replica. On the leader it assigns the next
// sequence and broadcasts a pre-prepare; on followers it queues until this
// replica leads (the host normally routes proposals to the leader anyway).
func (r *Replica) Propose(v consensus.Value) {
	if !r.IsLeader() || !r.inView {
		r.pending = append(r.pending, v)
		return
	}
	r.proposeAt(r.nextSeq, v)
	r.nextSeq++
}

func (r *Replica) proposeAt(seq uint64, v consensus.Value) {
	in := r.inst(seq)
	in.digest, in.data, in.havePP = v.Digest, v.Data, true
	r.host.Proposed(seq, v)
	consensus.Phase(r.host, "pre-prepare", r.view, seq)
	r.host.Elapse(r.cfg.MACCompute) // authenticate the pre-prepare
	r.host.BroadcastCN(&Msg{Kind: kindPrePrepare, View: r.view, Seq: seq, Node: r.cfg.Self, Digest: v.Digest, Data: v.Data})
	// The leader's own prepare is implicit in the pre-prepare.
	in.prepares[r.cfg.Self] = true
	in.sentPrep = true
	r.maybePrepared(seq, in)
	r.armTimer()
}

// Step implements consensus.Replica.
func (r *Replica) Step(from int, m consensus.Msg) {
	msg, ok := m.(*Msg)
	if !ok {
		return
	}
	switch msg.Kind {
	case kindPrePrepare:
		r.onPrePrepare(from, msg)
	case kindPrepare:
		r.onPrepare(from, msg)
	case kindCommit:
		r.onCommit(from, msg)
	case kindViewChange:
		r.onViewChange(from, msg)
	case kindNewView:
		r.onNewView(from, msg)
	}
}

func (r *Replica) onPrePrepare(from int, m *Msg) {
	r.host.Elapse(r.cfg.MACVerify)
	if m.View != r.view || !r.inView || from != r.Leader() || m.Seq < r.minSeq {
		return
	}
	in := r.inst(m.Seq)
	if in.decided {
		if in.digest == m.Digest {
			// Help peers that lost this decision across a view change:
			// re-sign a commit in the current view.
			r.host.Elapse(r.cfg.SigSign)
			sig := r.host.Sign(types.CertSigningBytes(r.view, m.Seq, m.Digest))
			r.host.BroadcastCN(&Msg{Kind: kindCommit, View: r.view, Seq: m.Seq, Node: r.cfg.Self, Digest: m.Digest, Sig: sig})
		}
		return
	}
	if in.havePP && in.digest != m.Digest {
		// Equivocating leader: trigger a view change.
		r.RequestViewChange()
		return
	}
	in.digest, in.data, in.havePP = m.Digest, m.Data, true
	r.host.Proposed(m.Seq, consensus.Value{Digest: m.Digest, Data: m.Data})
	// The leader's pre-prepare doubles as its prepare.
	in.prepares[from] = true
	if !in.sentPrep {
		in.sentPrep = true
		r.host.Elapse(r.cfg.MACCompute)
		r.host.BroadcastCN(&Msg{Kind: kindPrepare, View: r.view, Seq: m.Seq, Node: r.cfg.Self, Digest: m.Digest})
		in.prepares[r.cfg.Self] = true
	} else if !in.decided {
		// A duplicate pre-prepare is the leader re-driving a stalled
		// instance (retransmit path): our earlier prepare or commit may
		// have been lost, so re-send the latest phase message we hold.
		if in.sentComm {
			r.host.Elapse(r.cfg.SigSign)
			sig := r.host.Sign(types.CertSigningBytes(r.view, m.Seq, m.Digest))
			r.host.BroadcastCN(&Msg{Kind: kindCommit, View: r.view, Seq: m.Seq, Node: r.cfg.Self, Digest: m.Digest, Sig: sig})
		} else {
			r.host.Elapse(r.cfg.MACCompute)
			r.host.BroadcastCN(&Msg{Kind: kindPrepare, View: r.view, Seq: m.Seq, Node: r.cfg.Self, Digest: m.Digest})
		}
	}
	r.maybePrepared(m.Seq, in)
	r.armTimer()
}

func (r *Replica) onPrepare(from int, m *Msg) {
	r.host.Elapse(r.cfg.MACVerify)
	if m.View != r.view || !r.inView || m.Seq < r.minSeq {
		return
	}
	in := r.inst(m.Seq)
	if in.havePP && in.digest != m.Digest {
		return
	}
	in.prepares[from] = true
	r.maybePrepared(m.Seq, in)
}

// maybePrepared sends a commit once the instance has a pre-prepare and a
// 2f+1 prepare quorum.
func (r *Replica) maybePrepared(seq uint64, in *instance) {
	if !in.havePP || in.sentComm || len(in.prepares) < r.cfg.Quorum() {
		return
	}
	in.sentComm = true
	consensus.Phase(r.host, "prepared", r.view, seq)
	r.host.Elapse(r.cfg.SigSign)
	sig := r.host.Sign(types.CertSigningBytes(r.view, seq, in.digest))
	in.commits[r.cfg.Self] = sig
	r.host.BroadcastCN(&Msg{Kind: kindCommit, View: r.view, Seq: seq, Node: r.cfg.Self, Digest: in.digest, Sig: sig})
	r.maybeDecide(seq, in)
}

func (r *Replica) onCommit(from int, m *Msg) {
	r.host.Elapse(r.cfg.SigVerify)
	if m.View != r.view || !r.inView || m.Seq < r.minSeq {
		return
	}
	if !r.host.VerifyNode(from, types.CertSigningBytes(m.View, m.Seq, m.Digest), m.Sig) {
		return
	}
	in := r.inst(m.Seq)
	if in.havePP && in.digest != m.Digest {
		return
	}
	in.commits[from] = m.Sig
	r.maybeDecide(m.Seq, in)
}

func (r *Replica) maybeDecide(seq uint64, in *instance) {
	if in.decided || !in.havePP || !in.sentComm || len(in.commits) < r.cfg.Quorum() {
		return
	}
	in.decided = true
	r.decidedCnt++
	consensus.Phase(r.host, "committed", r.view, seq)
	cert := &types.Certificate{View: r.view, Number: seq, Digest: in.digest}
	for _, node := range consensus.SortedNodes(in.commits) {
		cert.Sigs = append(cert.Sigs, types.NodeSig{Node: node, Sig: in.commits[node]})
		if len(cert.Sigs) == r.cfg.Quorum() {
			break
		}
	}
	r.host.Deliver(seq, consensus.Value{Digest: in.digest, Data: in.data}, cert)
	r.resetTimerIfProgress()
}

// --- view changes -----------------------------------------------------

// RequestViewChange implements consensus.Replica: abandon the current view.
func (r *Replica) RequestViewChange() {
	r.startViewChange(r.view + 1)
}

func (r *Replica) startViewChange(newView uint64) {
	if newView <= r.view && !r.inView {
		return
	}
	r.inView = false
	r.timerEpoch++
	var prepared, preprepared []PreparedEntry
	for _, seq := range consensus.SortedSeqs(r.instances) {
		in := r.instances[seq]
		if !in.havePP {
			continue
		}
		entry := PreparedEntry{Seq: seq, Digest: in.digest, Data: in.data}
		// A decided instance was necessarily prepared, so it belongs in
		// the P-set (PBFT §4.4): any sequence committed at a correct node
		// then appears in at least one of the 2f+1 view-change messages
		// (quorum intersection), which is what makes the new leader's
		// null-filling of absent sequences safe.
		if in.decided || len(in.prepares) >= r.cfg.Quorum() {
			prepared = append(prepared, entry)
		} else {
			preprepared = append(preprepared, entry)
		}
	}
	r.host.Elapse(r.cfg.SigSign)
	vc := &Msg{
		Kind: kindViewChange, View: newView, Node: r.cfg.Self,
		Meta: r.host.ViewChangeMeta(), Prepared: prepared, PrePrepared: preprepared,
	}
	vc.Sig = r.host.Sign(vcSigningBytes(vc))
	r.host.BroadcastCN(vc)
	r.onViewChange(r.cfg.Self, vc)
	// If the new view also stalls, escalate further.
	epoch := r.timerEpoch
	r.host.After(r.cfg.ViewTimeout, func() {
		if r.timerEpoch == epoch && !r.inView {
			r.startViewChange(newView + 1)
		}
	})
}

func vcSigningBytes(m *Msg) []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, byte(m.Kind))
	for i := 0; i < 8; i++ {
		buf = append(buf, byte(m.View>>(8*(7-i))))
	}
	buf = append(buf, byte(m.Node))
	buf = append(buf, m.Meta...)
	for _, p := range m.Prepared {
		buf = append(buf, p.Digest[:]...)
	}
	for _, p := range m.PrePrepared {
		buf = append(buf, p.Digest[:]...)
	}
	return buf
}

func (r *Replica) onViewChange(from int, m *Msg) {
	if m.View <= r.view {
		return
	}
	if from != r.cfg.Self {
		r.host.Elapse(r.cfg.SigVerify)
		if !r.host.VerifyNode(from, vcSigningBytes(m), m.Sig) {
			return
		}
	}
	set, ok := r.vcs[m.View]
	if !ok {
		set = make(map[int]*Msg)
		r.vcs[m.View] = set
	}
	set[from] = m

	// f+1 view changes for a higher view: join even without a local
	// trigger (PBFT's liveness rule).
	if len(set) == r.cfg.F+1 && r.inView {
		if _, mine := set[r.cfg.Self]; !mine {
			r.startViewChange(m.View)
		}
	}
	// 2f+1: the new leader installs the view.
	if len(set) >= r.cfg.Quorum() && r.cfg.Policy.Leader(m.View) == r.cfg.Self {
		r.installNewView(m.View, set)
	}
}

func (r *Replica) installNewView(view uint64, set map[int]*Msg) {
	if r.view >= view && r.inView {
		return
	}
	// Collect instances to re-propose: prepared entries take precedence
	// (a decided seq is prepared at every quorum intersection); merely
	// pre-prepared values fill remaining sequences so in-flight proposals
	// are not lost.
	reprop := make(map[uint64]PreparedEntry)
	var metas [][]byte
	nodes := consensus.SortedNodes(set)
	for _, id := range nodes {
		vc := set[id]
		metas = append(metas, vc.Meta)
		for _, p := range vc.Prepared {
			reprop[p.Seq] = p
		}
	}
	for _, id := range nodes {
		for _, p := range set[id].PrePrepared {
			if _, ok := reprop[p.Seq]; !ok {
				reprop[p.Seq] = p
			}
		}
	}
	// Null-fill sequence holes (PBFT's new-view rule): a sequence absent
	// from every collected P-set was never committed anywhere, but hosts
	// deliver blocks strictly in sequence order, so an unfilled hole
	// wedges the chain forever. A zero-digest, nil-data entry is the
	// no-op request hosts skip over on delivery.
	base := r.minSeq
	for {
		if in, ok := r.instances[base]; ok && in.decided {
			base++
			continue
		}
		break
	}
	top := base
	for seq := range reprop {
		if seq >= top {
			top = seq + 1
		}
	}
	for seq, in := range r.instances {
		if in.decided && seq >= top {
			top = seq + 1
		}
	}
	for seq := base; seq < top; seq++ {
		if _, ok := reprop[seq]; ok {
			continue
		}
		if in, ok := r.instances[seq]; ok && in.decided {
			continue
		}
		reprop[seq] = PreparedEntry{Seq: seq}
	}
	r.host.Elapse(r.cfg.SigSign)
	nv := &Msg{Kind: kindNewView, View: view, Node: r.cfg.Self}
	nv.Sig = r.host.Sign(vcSigningBytes(nv))
	r.host.BroadcastCN(nv)
	r.enterView(view, metas)
	// Re-propose prepared-but-undecided instances in the new view.
	for _, seq := range consensus.SortedSeqs(reprop) {
		p := reprop[seq]
		if in, ok := r.instances[seq]; ok && in.decided {
			continue
		}
		r.instances[seq] = &instance{prepares: make(map[int]bool), commits: make(map[int]crypto.Signature)}
		r.proposeAt(seq, consensus.Value{Digest: p.Digest, Data: p.Data})
		if seq >= r.nextSeq {
			r.nextSeq = seq + 1
		}
	}
	// Flush host proposals queued during the change.
	pend := r.pending
	r.pending = nil
	for _, v := range pend {
		r.Propose(v)
	}
}

func (r *Replica) onNewView(from int, m *Msg) {
	r.host.Elapse(r.cfg.SigVerify)
	if m.View < r.view || (m.View == r.view && r.inView) {
		return
	}
	if from != r.cfg.Policy.Leader(m.View) {
		return
	}
	if !r.host.VerifyNode(from, vcSigningBytes(m), m.Sig) {
		return
	}
	var metas [][]byte
	for _, id := range consensus.SortedNodes(r.vcs[m.View]) {
		metas = append(metas, r.vcs[m.View][id].Meta)
	}
	r.enterView(m.View, metas)
}

func (r *Replica) enterView(view uint64, metas [][]byte) {
	r.view = view
	r.inView = true
	r.timerEpoch++
	// Undecided instances are abandoned; the host (BIDL / baseline
	// ordering service) re-submits unordered payloads in the new view.
	for seq, in := range r.instances {
		if !in.decided {
			delete(r.instances, seq)
		} else if seq >= r.nextSeq {
			r.nextSeq = seq + 1
		}
	}
	delete(r.vcs, view)
	r.host.ViewChanged(view, r.Leader(), metas)
	if r.IsLeader() {
		pend := r.pending
		r.pending = nil
		for _, v := range pend {
			r.Propose(v)
		}
	}
}

// --- progress timer ----------------------------------------------------

func (r *Replica) armTimer() {
	if r.timerArmed || r.cfg.ViewTimeout <= 0 {
		return
	}
	r.timerArmed = true
	epoch := r.timerEpoch
	decided := r.decidedCnt
	r.host.After(r.cfg.ViewTimeout, func() {
		r.timerArmed = false
		if r.timerEpoch != epoch || !r.inView {
			return
		}
		if r.decidedCnt == decided && r.hasUndecided() {
			r.RequestViewChange()
		} else if r.hasUndecided() {
			r.retransmitStalled()
			r.armTimer()
		}
	})
}

// retransmitStalled re-drives the oldest undecided instances on the leader:
// a pre-prepare (or the phase messages it regenerates at the replicas) lost
// to the network would otherwise stall its sequence forever while newer
// sequences keep deciding, wedging in-order block delivery at the hole.
func (r *Replica) retransmitStalled() {
	if !r.IsLeader() {
		return
	}
	const maxResend = 8
	sent := 0
	for _, seq := range consensus.SortedSeqs(r.instances) {
		in := r.instances[seq]
		if in.decided || !in.havePP {
			continue
		}
		r.host.Elapse(r.cfg.MACCompute)
		r.host.BroadcastCN(&Msg{Kind: kindPrePrepare, View: r.view, Seq: seq, Node: r.cfg.Self, Digest: in.digest, Data: in.data})
		if sent++; sent >= maxResend {
			break
		}
	}
}

func (r *Replica) resetTimerIfProgress() {
	if r.hasUndecided() {
		r.armTimer()
	}
}

func (r *Replica) hasUndecided() bool {
	for _, in := range r.instances {
		if !in.decided && in.havePP {
			return true
		}
	}
	return false
}
