package raft

import (
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/consensus"
	"github.com/bidl-framework/bidl/internal/consensus/constest"
	"github.com/bidl-framework/bidl/internal/simnet"
)

func factory(cfg consensus.Config, host consensus.Host) consensus.Replica {
	return New(cfg, host)
}

func TestConformance(t *testing.T) {
	constest.RunConformance(t, factory, constest.ConformanceOptions{HasCerts: false})
}

func TestFiveNodeCluster(t *testing.T) {
	constest.RunConformance(t, factory, constest.ConformanceOptions{N: 5, F: 2, HasCerts: false})
}

func TestCommitUnderPacketLoss(t *testing.T) {
	topo := simnet.DefaultTopology()
	topo.LossRate = 0.05
	c := constest.NewCluster(3, 1, factory, constest.Options{Topology: &topo, ViewTimeout: 30 * time.Millisecond})
	const k = 20
	for i := 0; i < k; i++ {
		c.Propose(time.Duration(i)*time.Millisecond, constest.Val(string(rune('a'+i))))
	}
	c.Run(5 * time.Second)
	// Heartbeat re-broadcast must eventually deliver everything at the
	// leader despite 5% loss.
	leader := c.Nodes[c.LeaderIdx()]
	if got := len(leader.DeliveredDigests()); got != k {
		t.Fatalf("leader delivered %d of %d under loss", got, k)
	}
}

func TestFollowersLearnCommitViaHeartbeat(t *testing.T) {
	c := constest.NewCluster(3, 1, factory, constest.Options{ViewTimeout: 30 * time.Millisecond})
	c.Propose(time.Millisecond, constest.Val("x"))
	c.Run(time.Second)
	for i, n := range c.Nodes {
		if len(n.Delivered) != 1 {
			t.Fatalf("node %d delivered %d, want 1", i, len(n.Delivered))
		}
		if n.Delivered[0].Cert != nil {
			t.Fatalf("raft delivery carried a certificate")
		}
	}
}
