// Package raft implements a Raft-style CFT ordering protocol: leader-driven
// log replication with majority acknowledgement, heartbeats, and randomized
// leader election. It stands in for the built-in Raft orderer of FastFabric
// and StreamChain (§6, Baseline) and is exposed through the same blackbox
// consensus.Replica interface as the BFT protocols.
//
// Raft is crash-fault tolerant only: messages carry no signatures and
// deliveries carry no certificates — exactly the trust model FastFabric's
// paper assumes, and the reason it cannot survive the paper's S2/S3 attacks
// (Table 4).
package raft

import (
	"time"

	"github.com/bidl-framework/bidl/internal/consensus"
	"github.com/bidl-framework/bidl/internal/crypto"
)

// Message kinds.
const (
	kindAppend = iota
	kindAck
	kindCommit
	kindVoteReq
	kindVote
)

// Msg is the single wire type for all Raft messages.
type Msg struct {
	Kind   int
	Term   uint64
	Seq    uint64
	Node   int
	Digest crypto.Digest
	Data   []byte
	// LastSeq is the candidate's log length in vote requests (election
	// restriction) and the leader's commit index on appends.
	LastSeq uint64
}

// Size implements consensus.Msg.
func (m *Msg) Size() int { return 1 + 8 + 8 + 4 + 32 + 8 + len(m.Data) + 16 /* MAC */ }

type entry struct {
	term    uint64
	val     consensus.Value
	acks    map[int]bool
	decided bool
}

type role int

const (
	follower role = iota
	candidate
	leader
)

// Replica is one Raft node.
type Replica struct {
	cfg  consensus.Config
	host consensus.Host

	role     role
	term     uint64
	votedFor map[uint64]int // term -> candidate
	votes    map[uint64]map[int]bool
	leaderID int

	log       map[uint64]*entry
	nextSeq   uint64 // leader's next append index
	commitIdx uint64 // first not-yet-committed seq
	pending   []consensus.Value

	hbEpoch    uint64
	electEpoch uint64
}

// New creates a Raft replica. The initial leader is Policy.Leader(0) so the
// cluster starts without an election, matching how ordering services deploy.
func New(cfg consensus.Config, host consensus.Host) *Replica {
	r := &Replica{
		cfg:      cfg,
		host:     host,
		votedFor: make(map[uint64]int),
		votes:    make(map[uint64]map[int]bool),
		log:      make(map[uint64]*entry),
		leaderID: cfg.Policy.Leader(0),
	}
	if r.leaderID == cfg.Self {
		r.role = leader
	}
	return r
}

// Name returns the protocol name.
func (r *Replica) Name() string { return "raft" }

// View implements consensus.Replica (the Raft term).
func (r *Replica) View() uint64 { return r.term }

// Leader implements consensus.Replica.
func (r *Replica) Leader() int { return r.leaderID }

// IsLeader implements consensus.Replica.
func (r *Replica) IsLeader() bool { return r.role == leader }

// Start arms the leader's heartbeat.
func (r *Replica) Start() {
	if r.role == leader {
		r.heartbeat()
	}
}

func (r *Replica) majority() int { return r.cfg.N/2 + 1 }

// Propose implements consensus.Replica.
func (r *Replica) Propose(v consensus.Value) {
	if r.role != leader {
		r.pending = append(r.pending, v)
		return
	}
	seq := r.nextSeq
	r.nextSeq++
	e := &entry{term: r.term, val: v, acks: map[int]bool{r.cfg.Self: true}}
	r.log[seq] = e
	r.host.Proposed(seq, v)
	r.host.Elapse(r.cfg.MACCompute)
	r.host.BroadcastCN(&Msg{Kind: kindAppend, Term: r.term, Seq: seq, Node: r.cfg.Self,
		Digest: v.Digest, Data: v.Data, LastSeq: r.commitIdx})
}

// Step implements consensus.Replica.
func (r *Replica) Step(from int, m consensus.Msg) {
	msg, ok := m.(*Msg)
	if !ok {
		return
	}
	r.host.Elapse(r.cfg.MACVerify)
	if msg.Term > r.term {
		r.term = msg.Term
		if r.role != follower {
			r.role = follower
		}
	}
	switch msg.Kind {
	case kindAppend:
		r.onAppend(from, msg)
	case kindAck:
		r.onAck(from, msg)
	case kindCommit:
		r.onCommit(from, msg)
	case kindVoteReq:
		r.onVoteReq(from, msg)
	case kindVote:
		r.onVote(from, msg)
	}
}

func (r *Replica) onAppend(from int, m *Msg) {
	if m.Term < r.term {
		return
	}
	r.leaderID = from
	if r.role != follower && from != r.cfg.Self {
		r.role = follower
	}
	if m.Data != nil || m.Digest != (crypto.Digest{}) {
		e, ok := r.log[m.Seq]
		if !ok || e.term <= m.Term {
			r.log[m.Seq] = &entry{term: m.Term, val: consensus.Value{Digest: m.Digest, Data: m.Data}}
			r.host.Proposed(m.Seq, consensus.Value{Digest: m.Digest, Data: m.Data})
		}
		r.host.Send(from, &Msg{Kind: kindAck, Term: r.term, Seq: m.Seq, Node: r.cfg.Self})
	}
	// Advance commit index from the leader's piggybacked value.
	r.advanceCommit(m.LastSeq)
}

func (r *Replica) onAck(from int, m *Msg) {
	if r.role != leader || m.Term != r.term {
		return
	}
	e, ok := r.log[m.Seq]
	if !ok || e.acks == nil {
		return
	}
	e.acks[from] = true
	// Commit every consecutive majority-acked entry.
	for {
		e, ok := r.log[r.commitIdx]
		if !ok || e.decided || e.acks == nil || len(e.acks) < r.majority() {
			break
		}
		r.deliver(r.commitIdx)
	}
	// Tell followers.
	if m.Seq < r.commitIdx {
		r.host.BroadcastCN(&Msg{Kind: kindCommit, Term: r.term, Node: r.cfg.Self, LastSeq: r.commitIdx})
	}
}

func (r *Replica) onCommit(from int, m *Msg) {
	if from != r.leaderID {
		return
	}
	r.advanceCommit(m.LastSeq)
}

// advanceCommit delivers all log entries below upto, in order, stopping at
// gaps (filled later by leader re-broadcast).
func (r *Replica) advanceCommit(upto uint64) {
	for r.commitIdx < upto {
		e, ok := r.log[r.commitIdx]
		if !ok {
			return
		}
		if !e.decided {
			r.deliver(r.commitIdx)
		} else {
			r.commitIdx++
		}
	}
}

func (r *Replica) deliver(seq uint64) {
	e := r.log[seq]
	e.decided = true
	r.commitIdx = seq + 1
	consensus.Phase(r.host, "replicated", uint64(r.term), seq)
	r.host.Deliver(seq, e.val, nil)
}

// --- heartbeats and re-broadcast ---------------------------------------

func (r *Replica) heartbeat() {
	if r.role != leader {
		return
	}
	r.hbEpoch++
	epoch := r.hbEpoch
	interval := r.cfg.ViewTimeout / 3
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	var tick func()
	tick = func() {
		if r.role != leader || r.hbEpoch != epoch {
			return
		}
		// Heartbeat with current commit index.
		r.host.BroadcastCN(&Msg{Kind: kindAppend, Term: r.term, Node: r.cfg.Self, LastSeq: r.commitIdx})
		// Re-broadcast uncommitted entries (retransmission on loss).
		for seq := r.commitIdx; seq < r.nextSeq; seq++ {
			if e, ok := r.log[seq]; ok && !e.decided {
				r.host.BroadcastCN(&Msg{Kind: kindAppend, Term: r.term, Seq: seq, Node: r.cfg.Self,
					Digest: e.val.Digest, Data: e.val.Data, LastSeq: r.commitIdx})
			}
		}
		r.host.After(interval, tick)
	}
	r.host.After(interval, tick)
}

// --- elections ----------------------------------------------------------

// RequestViewChange implements consensus.Replica: become a candidate.
func (r *Replica) RequestViewChange() {
	r.startElection()
}

func (r *Replica) startElection() {
	r.term++
	r.role = candidate
	r.votedFor[r.term] = r.cfg.Self
	r.votes[r.term] = map[int]bool{r.cfg.Self: true}
	r.host.BroadcastCN(&Msg{Kind: kindVoteReq, Term: r.term, Node: r.cfg.Self, LastSeq: r.highestStored()})
	// Randomized retry on split votes.
	term := r.term
	r.electEpoch++
	epoch := r.electEpoch
	retry := r.cfg.ViewTimeout/2 + time.Duration(r.host.RandInt(int(r.cfg.ViewTimeout/2)+1))
	r.host.After(retry, func() {
		if r.role == candidate && r.term == term && r.electEpoch == epoch {
			r.startElection()
		}
	})
}

func (r *Replica) onVoteReq(from int, m *Msg) {
	if m.Term < r.term {
		return
	}
	// Election restriction: only vote for candidates whose log is at
	// least as long as ours.
	if m.LastSeq < r.highestStored() {
		return
	}
	if voted, ok := r.votedFor[m.Term]; ok && voted != from {
		return
	}
	r.votedFor[m.Term] = from
	r.role = follower
	r.host.Send(from, &Msg{Kind: kindVote, Term: m.Term, Node: r.cfg.Self})
}

func (r *Replica) highestStored() uint64 {
	var hi uint64
	for seq := range r.log {
		if seq+1 > hi {
			hi = seq + 1
		}
	}
	return hi
}

func (r *Replica) onVote(from int, m *Msg) {
	if r.role != candidate || m.Term != r.term {
		return
	}
	set := r.votes[m.Term]
	if set == nil {
		set = make(map[int]bool)
		r.votes[m.Term] = set
	}
	set[from] = true
	if len(set) < r.majority() {
		return
	}
	// Won: become leader, adopt the log, re-replicate uncommitted tail.
	r.role = leader
	r.leaderID = r.cfg.Self
	r.nextSeq = r.highestStored()
	for seq := r.commitIdx; seq < r.nextSeq; seq++ {
		if e, ok := r.log[seq]; ok {
			e.term = r.term
			if e.acks == nil {
				e.acks = map[int]bool{r.cfg.Self: true}
			}
		}
	}
	r.host.ViewChanged(r.term, r.cfg.Self, nil)
	r.host.BroadcastCN(&Msg{Kind: kindAppend, Term: r.term, Node: r.cfg.Self, LastSeq: r.commitIdx})
	r.heartbeat()
	pend := r.pending
	r.pending = nil
	for _, v := range pend {
		r.Propose(v)
	}
}
