// Package zyzzyva implements a Zyzzyva-style speculative BFT protocol with
// the batch optimization the paper applies (§6): the leader orders a batch,
// replicas speculatively respond, and — following the paper's setup — a
// designated non-leader collector gathers responses and distributes commit
// messages for each block.
//
// Fast path: 3f+1 matching speculative responses commit in three message
// delays. Slow path: after a collector timeout, 2f+1 responses form a
// commit certificate that must be acknowledged by a 2f+1 quorum before
// delivery (the extra phase Zyzzyva pays under faults).
package zyzzyva

import (
	"time"

	"github.com/bidl-framework/bidl/internal/consensus"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/types"
)

// Message kinds.
const (
	kindOrderReq    = iota // leader → all
	kindSpecResp           // replica → collector
	kindCommitFast         // collector → all (3f+1 path)
	kindCommitCert         // collector → all (2f+1 path)
	kindLocalCommit        // replica → collector
	kindFullCommit         // collector → all
	kindViewChange
	kindNewView
)

// Msg is the single wire type for all Zyzzyva messages.
type Msg struct {
	Kind   int
	View   uint64
	Seq    uint64
	Node   int
	Digest crypto.Digest
	Data   []byte
	Sig    crypto.Signature
	Certs  []types.NodeSig
	Meta   []byte
	Seen   []Entry
}

// Entry summarizes an in-flight instance for view changes.
type Entry struct {
	Seq    uint64
	Digest crypto.Digest
	Data   []byte
}

// Size implements consensus.Msg.
func (m *Msg) Size() int {
	n := 1 + 8 + 8 + 4 + 32 + len(m.Data) + len(m.Sig) + len(m.Meta)
	n += len(m.Certs) * (4 + 64)
	for _, e := range m.Seen {
		n += 8 + 32 + len(e.Data)
	}
	return n
}

type instance struct {
	digest  crypto.Digest
	data    []byte
	have    bool
	specs   map[int]crypto.Signature // collector: spec responses
	acks    map[int]crypto.Signature // collector: local commits
	sentCC  bool
	decided bool
}

// Replica is one Zyzzyva consensus node.
type Replica struct {
	cfg  consensus.Config
	host consensus.Host

	view       uint64
	inView     bool
	nextSeq    uint64
	instances  map[uint64]*instance
	pending    []consensus.Value
	vcs        map[uint64]map[int]*Msg
	timerArmed bool
	timerEpoch uint64
	decidedCnt uint64
}

// New creates a Zyzzyva replica.
func New(cfg consensus.Config, host consensus.Host) *Replica {
	return &Replica{
		cfg:       cfg,
		host:      host,
		inView:    true,
		instances: make(map[uint64]*instance),
		vcs:       make(map[uint64]map[int]*Msg),
	}
}

// Name returns the protocol name.
func (r *Replica) Name() string { return "zyzzyva" }

// View implements consensus.Replica.
func (r *Replica) View() uint64 { return r.view }

// Leader implements consensus.Replica.
func (r *Replica) Leader() int { return r.cfg.Policy.Leader(r.view) }

// IsLeader implements consensus.Replica.
func (r *Replica) IsLeader() bool { return r.Leader() == r.cfg.Self }

// Collector returns the designated response collector for the current view:
// the non-leader node following the leader.
func (r *Replica) Collector() int { return (r.Leader() + 1) % r.cfg.N }

// Start implements consensus.Replica.
func (r *Replica) Start() {}

func (r *Replica) inst(seq uint64) *instance {
	in, ok := r.instances[seq]
	if !ok {
		in = &instance{specs: make(map[int]crypto.Signature), acks: make(map[int]crypto.Signature)}
		r.instances[seq] = in
	}
	return in
}

// Propose implements consensus.Replica.
func (r *Replica) Propose(v consensus.Value) {
	if !r.IsLeader() || !r.inView {
		r.pending = append(r.pending, v)
		return
	}
	r.proposeAt(r.nextSeq, v)
	r.nextSeq++
}

func (r *Replica) proposeAt(seq uint64, v consensus.Value) {
	in := r.inst(seq)
	in.digest, in.data, in.have = v.Digest, v.Data, true
	r.host.Proposed(seq, v)
	r.host.Elapse(r.cfg.MACCompute)
	r.host.BroadcastCN(&Msg{Kind: kindOrderReq, View: r.view, Seq: seq, Node: r.cfg.Self, Digest: v.Digest, Data: v.Data})
	// The leader's own speculative response.
	r.sendSpec(seq, in)
	r.armTimer()
}

func (r *Replica) sendSpec(seq uint64, in *instance) {
	r.host.Elapse(r.cfg.SigSign)
	sig := r.host.Sign(types.CertSigningBytes(r.view, seq, in.digest))
	if r.Collector() == r.cfg.Self {
		r.acceptSpec(r.cfg.Self, seq, in, sig)
		return
	}
	r.host.Send(r.Collector(), &Msg{Kind: kindSpecResp, View: r.view, Seq: seq, Node: r.cfg.Self, Digest: in.digest, Sig: sig})
}

// Step implements consensus.Replica.
func (r *Replica) Step(from int, m consensus.Msg) {
	msg, ok := m.(*Msg)
	if !ok {
		return
	}
	switch msg.Kind {
	case kindOrderReq:
		r.onOrderReq(from, msg)
	case kindSpecResp:
		r.onSpecResp(from, msg)
	case kindCommitFast, kindFullCommit:
		r.onCommit(from, msg)
	case kindCommitCert:
		r.onCommitCert(from, msg)
	case kindLocalCommit:
		r.onLocalCommit(from, msg)
	case kindViewChange:
		r.onViewChange(from, msg)
	case kindNewView:
		r.onNewView(from, msg)
	}
}

func (r *Replica) onOrderReq(from int, m *Msg) {
	r.host.Elapse(r.cfg.MACVerify)
	if m.View != r.view || !r.inView || from != r.Leader() {
		return
	}
	in := r.inst(m.Seq)
	if in.decided {
		return
	}
	if in.have && in.digest != m.Digest {
		r.RequestViewChange()
		return
	}
	in.digest, in.data, in.have = m.Digest, m.Data, true
	r.host.Proposed(m.Seq, consensus.Value{Digest: m.Digest, Data: m.Data})
	r.sendSpec(m.Seq, in)
	r.armTimer()
}

func (r *Replica) onSpecResp(from int, m *Msg) {
	if m.View != r.view || !r.inView || r.Collector() != r.cfg.Self {
		return
	}
	r.host.Elapse(r.cfg.SigVerify)
	if !r.host.VerifyNode(from, types.CertSigningBytes(m.View, m.Seq, m.Digest), m.Sig) {
		return
	}
	in := r.inst(m.Seq)
	// Spec responses follow the leader's order-request (two hops vs one),
	// so a response for an unknown or mismatched instance is discarded;
	// the slow path recovers if the fast quorum never forms.
	if !in.have || in.digest != m.Digest {
		return
	}
	r.acceptSpec(from, m.Seq, in, m.Sig)
}

func (r *Replica) acceptSpec(from int, seq uint64, in *instance, sig crypto.Signature) {
	if in.decided {
		return
	}
	in.specs[from] = sig
	if len(in.specs) >= r.cfg.FastQuorum() {
		// Fast path: everyone responded consistently.
		consensus.Phase(r.host, "fast-quorum", r.view, seq)
		cert := r.buildCert(seq, in, in.specs, r.cfg.FastQuorum())
		r.host.BroadcastCN(&Msg{Kind: kindCommitFast, View: r.view, Seq: seq, Node: r.cfg.Self, Digest: in.digest, Data: in.data, Certs: cert.Sigs})
		r.decide(seq, in, cert)
		return
	}
	if len(in.specs) == r.cfg.Quorum() && !in.sentCC {
		// Arm the slow-path timer: if the fast quorum does not arrive,
		// fall back to the two-phase commit-certificate path.
		epoch := r.timerEpoch
		slice := r.cfg.ViewTimeout / 4
		if slice <= 0 {
			slice = 5 * time.Millisecond
		}
		r.host.After(slice, func() {
			if r.timerEpoch != epoch || in.decided || in.sentCC || len(in.specs) >= r.cfg.FastQuorum() {
				return
			}
			in.sentCC = true
			consensus.Phase(r.host, "commit-cert", r.view, seq)
			cert := r.buildCert(seq, in, in.specs, r.cfg.Quorum())
			r.host.BroadcastCN(&Msg{Kind: kindCommitCert, View: r.view, Seq: seq, Node: r.cfg.Self, Digest: in.digest, Certs: cert.Sigs})
			// The collector's own local commit.
			r.host.Elapse(r.cfg.SigSign)
			in.acks[r.cfg.Self] = r.host.Sign(types.CertSigningBytes(r.view, seq, in.digest))
			r.maybeFullCommit(seq, in)
		})
	}
}

func (r *Replica) buildCert(seq uint64, in *instance, sigs map[int]crypto.Signature, limit int) *types.Certificate {
	cert := &types.Certificate{View: r.view, Number: seq, Digest: in.digest}
	for _, node := range consensus.SortedNodes(sigs) {
		cert.Sigs = append(cert.Sigs, types.NodeSig{Node: node, Sig: sigs[node]})
		if len(cert.Sigs) == limit {
			break
		}
	}
	return cert
}

func (r *Replica) onCommit(from int, m *Msg) {
	if from != (r.cfg.Policy.Leader(m.View)+1)%r.cfg.N {
		return
	}
	// Verify the assembled certificate (modeled as one aggregate check).
	r.host.Elapse(r.cfg.SigVerify)
	in := r.inst(m.Seq)
	if in.decided {
		return
	}
	if !in.have {
		in.digest, in.have = m.Digest, true
		in.data = m.Data
	}
	if in.digest != m.Digest {
		return
	}
	cert := &types.Certificate{View: m.View, Number: m.Seq, Digest: m.Digest, Sigs: m.Certs}
	r.decide(m.Seq, in, cert)
}

func (r *Replica) onCommitCert(from int, m *Msg) {
	if m.View != r.view || !r.inView || from != r.Collector() {
		return
	}
	r.host.Elapse(r.cfg.SigVerify)
	in := r.inst(m.Seq)
	if in.decided {
		return
	}
	if !in.have {
		in.digest, in.have = m.Digest, true
	}
	if in.digest != m.Digest {
		return
	}
	// Acknowledge the commit certificate.
	r.host.Elapse(r.cfg.SigSign)
	sig := r.host.Sign(types.CertSigningBytes(m.View, m.Seq, m.Digest))
	r.host.Send(r.Collector(), &Msg{Kind: kindLocalCommit, View: m.View, Seq: m.Seq, Node: r.cfg.Self, Digest: m.Digest, Sig: sig})
}

func (r *Replica) onLocalCommit(from int, m *Msg) {
	if m.View != r.view || !r.inView || r.Collector() != r.cfg.Self {
		return
	}
	r.host.Elapse(r.cfg.SigVerify)
	if !r.host.VerifyNode(from, types.CertSigningBytes(m.View, m.Seq, m.Digest), m.Sig) {
		return
	}
	in := r.inst(m.Seq)
	if in.digest != m.Digest {
		return
	}
	in.acks[from] = m.Sig
	r.maybeFullCommit(m.Seq, in)
}

func (r *Replica) maybeFullCommit(seq uint64, in *instance) {
	if in.decided || len(in.acks) < r.cfg.Quorum() {
		return
	}
	cert := r.buildCert(seq, in, in.acks, r.cfg.Quorum())
	r.host.BroadcastCN(&Msg{Kind: kindFullCommit, View: r.view, Seq: seq, Node: r.cfg.Self, Digest: in.digest, Data: in.data, Certs: cert.Sigs})
	r.decide(seq, in, cert)
}

func (r *Replica) decide(seq uint64, in *instance, cert *types.Certificate) {
	if in.decided {
		return
	}
	in.decided = true
	r.decidedCnt++
	consensus.Phase(r.host, "decided", cert.View, seq)
	r.host.Deliver(seq, consensus.Value{Digest: in.digest, Data: in.data}, cert)
	if r.hasUndecided() {
		r.armTimer()
	}
}

// --- view changes --------------------------------------------------------

// RequestViewChange implements consensus.Replica.
func (r *Replica) RequestViewChange() { r.startViewChange(r.view + 1) }

func (r *Replica) startViewChange(newView uint64) {
	if newView <= r.view && !r.inView {
		return
	}
	r.inView = false
	r.timerEpoch++
	var seen []Entry
	for _, seq := range consensus.SortedSeqs(r.instances) {
		if in := r.instances[seq]; !in.decided && in.have {
			seen = append(seen, Entry{Seq: seq, Digest: in.digest, Data: in.data})
		}
	}
	r.host.Elapse(r.cfg.SigSign)
	vc := &Msg{Kind: kindViewChange, View: newView, Node: r.cfg.Self, Meta: r.host.ViewChangeMeta(), Seen: seen}
	vc.Sig = r.host.Sign(vcBytes(vc))
	r.host.BroadcastCN(vc)
	r.onViewChange(r.cfg.Self, vc)
	epoch := r.timerEpoch
	r.host.After(r.cfg.ViewTimeout, func() {
		if r.timerEpoch == epoch && !r.inView {
			r.startViewChange(newView + 1)
		}
	})
}

func vcBytes(m *Msg) []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, byte(m.Kind))
	for i := 0; i < 8; i++ {
		buf = append(buf, byte(m.View>>(8*(7-i))))
	}
	buf = append(buf, byte(m.Node))
	buf = append(buf, m.Meta...)
	for _, e := range m.Seen {
		buf = append(buf, e.Digest[:]...)
	}
	return buf
}

func (r *Replica) onViewChange(from int, m *Msg) {
	if m.View <= r.view {
		return
	}
	if from != r.cfg.Self {
		r.host.Elapse(r.cfg.SigVerify)
		if !r.host.VerifyNode(from, vcBytes(m), m.Sig) {
			return
		}
	}
	set := r.vcs[m.View]
	if set == nil {
		set = make(map[int]*Msg)
		r.vcs[m.View] = set
	}
	set[from] = m
	if len(set) == r.cfg.F+1 && r.inView {
		if _, mine := set[r.cfg.Self]; !mine {
			r.startViewChange(m.View)
		}
	}
	if len(set) >= r.cfg.Quorum() && r.cfg.Policy.Leader(m.View) == r.cfg.Self {
		r.installNewView(m.View, set)
	}
}

func (r *Replica) installNewView(view uint64, set map[int]*Msg) {
	if r.view >= view && r.inView {
		return
	}
	reprop := make(map[uint64]Entry)
	var metas [][]byte
	for _, id := range consensus.SortedNodes(set) {
		vc := set[id]
		metas = append(metas, vc.Meta)
		for _, e := range vc.Seen {
			if _, ok := reprop[e.Seq]; !ok {
				reprop[e.Seq] = e
			}
		}
	}
	nv := &Msg{Kind: kindNewView, View: view, Node: r.cfg.Self}
	r.host.Elapse(r.cfg.SigSign)
	nv.Sig = r.host.Sign(vcBytes(nv))
	r.host.BroadcastCN(nv)
	r.enterView(view, metas)
	for _, seq := range consensus.SortedSeqs(reprop) {
		e := reprop[seq]
		if in, ok := r.instances[seq]; ok && in.decided {
			continue
		}
		delete(r.instances, seq)
		r.proposeAt(seq, consensus.Value{Digest: e.Digest, Data: e.Data})
		if seq >= r.nextSeq {
			r.nextSeq = seq + 1
		}
	}
}

func (r *Replica) onNewView(from int, m *Msg) {
	r.host.Elapse(r.cfg.SigVerify)
	if m.View < r.view || (m.View == r.view && r.inView) {
		return
	}
	if from != r.cfg.Policy.Leader(m.View) {
		return
	}
	if !r.host.VerifyNode(from, vcBytes(m), m.Sig) {
		return
	}
	var metas [][]byte
	for _, id := range consensus.SortedNodes(r.vcs[m.View]) {
		metas = append(metas, r.vcs[m.View][id].Meta)
	}
	r.enterView(m.View, metas)
}

func (r *Replica) enterView(view uint64, metas [][]byte) {
	r.view = view
	r.inView = true
	r.timerEpoch++
	for seq, in := range r.instances {
		if !in.decided {
			delete(r.instances, seq)
		} else if seq >= r.nextSeq {
			r.nextSeq = seq + 1
		}
	}
	delete(r.vcs, view)
	r.host.ViewChanged(view, r.Leader(), metas)
	if r.IsLeader() {
		pend := r.pending
		r.pending = nil
		for _, v := range pend {
			r.Propose(v)
		}
	}
}

// --- progress timer --------------------------------------------------------

func (r *Replica) armTimer() {
	if r.timerArmed || r.cfg.ViewTimeout <= 0 {
		return
	}
	r.timerArmed = true
	epoch := r.timerEpoch
	decided := r.decidedCnt
	r.host.After(r.cfg.ViewTimeout, func() {
		r.timerArmed = false
		if r.timerEpoch != epoch || !r.inView {
			return
		}
		if r.decidedCnt == decided && r.hasUndecided() {
			r.RequestViewChange()
		} else if r.hasUndecided() {
			r.armTimer()
		}
	})
}

func (r *Replica) hasUndecided() bool {
	for _, in := range r.instances {
		if !in.decided && in.have {
			return true
		}
	}
	return false
}
