package zyzzyva

import (
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/consensus"
	"github.com/bidl-framework/bidl/internal/consensus/constest"
)

func factory(cfg consensus.Config, host consensus.Host) consensus.Replica {
	return New(cfg, host)
}

func TestConformance(t *testing.T) {
	constest.RunConformance(t, factory, constest.ConformanceOptions{HasCerts: true})
}

func TestConformanceLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("larger cluster")
	}
	constest.RunConformance(t, factory, constest.ConformanceOptions{N: 7, F: 2, HasCerts: true})
}

func TestFastPathCertIsFastQuorum(t *testing.T) {
	c := constest.NewCluster(4, 1, factory, constest.Options{})
	c.Propose(time.Millisecond, constest.Val("fast"))
	c.Run(time.Second)
	for i, n := range c.Nodes {
		if len(n.Delivered) != 1 {
			t.Fatalf("node %d delivered %d, want 1", i, len(n.Delivered))
		}
		if got := len(n.Delivered[0].Cert.Sigs); got != 4 {
			t.Fatalf("node %d fast-path cert has %d sigs, want 3f+1=4", i, got)
		}
	}
}

func TestSlowPathWithCrashedReplica(t *testing.T) {
	// With one replica down the fast quorum (3f+1) is unreachable: the
	// collector must fall back to the 2f+1 commit-certificate path and
	// the cluster still decides, at higher latency.
	c := constest.NewCluster(4, 1, factory, constest.Options{ViewTimeout: 40 * time.Millisecond})
	victim := 3 // neither leader (0) nor collector (1)
	c.Sim.At(0, func() {
		c.Nodes[victim].Endpoint().SetDown(true)
		c.Nodes[victim].DropOutgoing = true
	})
	c.Propose(time.Millisecond, constest.Val("slow"))
	c.Run(2 * time.Second)
	for i, n := range c.Nodes {
		if i == victim {
			continue
		}
		if len(n.Delivered) != 1 {
			t.Fatalf("node %d delivered %d via slow path, want 1", i, len(n.Delivered))
		}
	}
	// Slow-path latency exceeds the fast-path's ~0.4ms: it waits for the
	// collector's fallback timer.
	if at := c.Nodes[0].Delivered[0].At; at < 5*time.Millisecond {
		t.Fatalf("slow-path delivery at %v; expected to pay the fallback timer", at)
	}
}

func TestFastPathLatencyBeatsSlowPath(t *testing.T) {
	fast := constest.NewCluster(4, 1, factory, constest.Options{})
	fast.Propose(time.Millisecond, constest.Val("v"))
	fast.Run(time.Second)
	fastAt := fast.Nodes[2].Delivered[0].At

	slow := constest.NewCluster(4, 1, factory, constest.Options{ViewTimeout: 40 * time.Millisecond})
	slow.Sim.At(0, func() {
		slow.Nodes[3].Endpoint().SetDown(true)
		slow.Nodes[3].DropOutgoing = true
	})
	slow.Propose(time.Millisecond, constest.Val("v"))
	slow.Run(2 * time.Second)
	slowAt := slow.Nodes[2].Delivered[0].At
	if fastAt >= slowAt {
		t.Fatalf("fast path (%v) not faster than slow path (%v)", fastAt, slowAt)
	}
}
