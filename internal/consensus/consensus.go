// Package consensus defines the blackbox interface BIDL uses to drive a BFT
// (or CFT) agreement protocol (§4.2: "BIDL treats the BFT protocol as a
// blackbox"), plus shared plumbing. Concrete protocols live in
// subpackages: pbft (BFT-SMaRt stand-in), hotstuff, zyzzyva, sbft, and raft.
//
// A Replica is a message-driven state machine hosted on one simulated node.
// The Host interface supplies transport, timers, virtual CPU charging,
// signing, and delivery callbacks; BIDL and the baseline frameworks provide
// Host implementations wired to simnet endpoints.
package consensus

import (
	"sort"
	"time"

	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/types"
)

// Value is an opaque proposal: the digest is what certificates sign (BIDL
// passes a block header digest — consensus-on-hash), and Data carries the
// encoded hash list whose size the network model accounts.
type Value struct {
	Digest crypto.Digest
	Data   []byte
}

// Size returns the value's wire footprint.
func (v Value) Size() int { return 32 + len(v.Data) }

// Msg is a protocol message travelling between consensus nodes. It doubles
// as a simnet.Message.
type Msg interface {
	Size() int
}

// Host is everything a replica needs from its execution environment.
// All callbacks run on the hosting node's simulated core.
type Host interface {
	// Send routes a protocol message to consensus node index `to`.
	Send(to int, m Msg)
	// BroadcastCN routes a protocol message to every other consensus node.
	BroadcastCN(m Msg)
	// After schedules fn on this node's core after d (queued like a
	// delivery; a busy core delays it).
	After(d time.Duration, fn func())
	// Elapse charges virtual CPU time to the current activation.
	Elapse(d time.Duration)
	// Sign signs data as this consensus node.
	Sign(data []byte) crypto.Signature
	// VerifyNode verifies a signature by consensus node index.
	VerifyNode(node int, data []byte, sig crypto.Signature) bool
	// Proposed announces that the current leader proposed v at seq (the
	// pre-prepare/order-request stage). Hosts may act on proposals before
	// agreement — BIDL's persist protocol matches result vectors against
	// the leader's proposal (Algo 1 line 17).
	Proposed(seq uint64, v Value)
	// Deliver announces a decided value. Called exactly once per seq.
	Deliver(seq uint64, v Value, cert *types.Certificate)
	// ViewChanged announces that the protocol entered a new view.
	// meta carries the per-node opaque payloads piggybacked on the
	// view-change messages (BIDL's denylist votes, §4.5).
	ViewChanged(view uint64, leader int, meta [][]byte)
	// ViewChangeMeta returns this node's payload to piggyback on its next
	// view-change message.
	ViewChangeMeta() []byte
	// RandInt returns a deterministic random int in [0,n) (protocol
	// tie-breaking only; never safety-relevant).
	RandInt(n int) int
}

// PhaseRecorder is an optional Host capability: hosts that also implement it
// receive protocol milestone annotations (pre-prepare sent, prepare/commit
// quorum formed, QC assembled, ...) for tracing. Protocols report milestones
// through the Phase helper so hosts without the capability pay nothing.
type PhaseRecorder interface {
	ConsensusPhase(phase string, view, seq uint64)
}

// Phase reports a protocol milestone to the host if it records phases.
func Phase(h Host, phase string, view, seq uint64) {
	if r, ok := h.(PhaseRecorder); ok {
		r.ConsensusPhase(phase, view, seq)
	}
}

// LeaderPolicy maps views to leader indices. BIDL supplies its random
// epoch-rotation policy (§4.6); baselines use round-robin.
type LeaderPolicy interface {
	Leader(view uint64) int
}

// RoundRobin is the classic PBFT v mod n policy.
type RoundRobin struct{ N int }

// Leader implements LeaderPolicy.
func (r RoundRobin) Leader(view uint64) int { return int(view % uint64(r.N)) }

// RandomEpoch implements BIDL's unpredictable leader rotation: views are
// grouped into epochs of N views; within an epoch each node leads exactly
// once, in an order drawn from a PRF over the epoch number, so a malicious
// node cannot steer which correct leader follows it (§4.6).
//
// The paper seeds the draw with the hash of the last committed block; we
// seed with a per-chain genesis seed plus the epoch number, which keeps the
// permutation unpredictable to the adversary while guaranteeing that nodes
// with divergent commit frontiers still agree on the schedule (documented
// substitution, DESIGN.md §4).
type RandomEpoch struct {
	N    int
	Seed crypto.Digest
}

// Leader implements LeaderPolicy.
func (r RandomEpoch) Leader(view uint64) int {
	epoch := view / uint64(r.N)
	idx := int(view % uint64(r.N))
	perm := r.permutation(epoch)
	return perm[idx]
}

// permutation returns the epoch's leader order via a seeded Fisher-Yates
// shuffle driven by successive hashes.
func (r RandomEpoch) permutation(epoch uint64) []int {
	perm := make([]int, r.N)
	for i := range perm {
		perm[i] = i
	}
	var ctr [8]byte
	state := crypto.HashAll(r.Seed[:], []byte("epoch"), putU64(ctr[:], epoch))
	for i := r.N - 1; i > 0; i-- {
		state = crypto.Hash(state[:])
		j := int(uint64FromDigest(state) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

func putU64(buf []byte, v uint64) []byte {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * (7 - i)))
	}
	return buf
}

func uint64FromDigest(d crypto.Digest) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(d[i])
	}
	return v
}

// Replica is one consensus node's protocol instance.
type Replica interface {
	// Start arms initial timers.
	Start()
	// Propose requests agreement on v. Only the current leader acts on
	// it; hosts route client input to the leader themselves.
	Propose(v Value)
	// Step processes a protocol message from consensus node `from`.
	Step(from int, m Msg)
	// RequestViewChange asks the protocol to abandon the current view
	// (BIDL's shepherd calls this on detected misbehaviour, §4.5).
	RequestViewChange()
	// View returns the current view number.
	View() uint64
	// Leader returns the current leader's index.
	Leader() int
	// IsLeader reports whether this replica currently leads.
	IsLeader() bool
}

// Config carries the parameters every protocol shares.
type Config struct {
	// N is the number of consensus nodes; F the tolerated faults.
	N, F int
	// Self is this replica's index in [0,N).
	Self int
	// Policy selects leaders per view.
	Policy LeaderPolicy
	// ViewTimeout is the progress timeout that triggers view changes.
	ViewTimeout time.Duration
	// SigVerify/SigSign are virtual crypto costs charged per
	// signature operation; MACVerify/MACCompute per MAC operation.
	SigVerify, SigSign    time.Duration
	MACVerify, MACCompute time.Duration
	// ThresholdSign/ThresholdCombine are charged by protocols using
	// threshold signatures (SBFT, HotStuff QCs).
	ThresholdSign, ThresholdCombine time.Duration
}

// Quorum returns the 2f+1 quorum size.
func (c Config) Quorum() int { return 2*c.F + 1 }

// FastQuorum returns the 3f+1 (all-replica) fast-path size.
func (c Config) FastQuorum() int { return 3*c.F + 1 }

// SortedNodes returns m's replica indices in ascending order. Protocols
// assemble certificates and merge view-change sets from maps keyed by node;
// iterating those maps directly would let Go's randomized iteration order
// leak into message content and send order, breaking the simulator's
// same-seed determinism guarantee.
func SortedNodes[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// SortedSeqs returns m's sequence numbers in ascending order, for the same
// reason as SortedNodes: re-proposal and view-change collection must not
// depend on map iteration order.
func SortedSeqs[V any](m map[uint64]V) []uint64 {
	out := make([]uint64, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
