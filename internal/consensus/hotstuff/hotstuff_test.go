package hotstuff

import (
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/consensus"
	"github.com/bidl-framework/bidl/internal/consensus/constest"
)

func factory(cfg consensus.Config, host consensus.Host) consensus.Replica {
	return New(cfg, host)
}

func TestConformance(t *testing.T) {
	constest.RunConformance(t, factory, constest.ConformanceOptions{HasCerts: true})
}

func TestConformanceLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("larger cluster")
	}
	constest.RunConformance(t, factory, constest.ConformanceOptions{N: 10, F: 3, HasCerts: true})
}

func TestLinearMessageComplexity(t *testing.T) {
	// HotStuff replicas talk only to the leader: a follower's sent-message
	// count per decision is O(1) (votes) while PBFT's is O(n)
	// (all-to-all prepares+commits). Assert followers send ~4 messages
	// per decision regardless of cluster size.
	run := func(n, f int) float64 {
		c := constest.NewCluster(n, f, factory, constest.Options{})
		const k = 10
		for i := 0; i < k; i++ {
			c.Propose(time.Duration(i)*time.Millisecond, constest.Val(string(rune('a'+i))))
		}
		c.Run(2 * time.Second)
		// Average sent messages per follower per decision.
		var sent uint64
		followers := 0
		for i, node := range c.Nodes {
			if i == c.LeaderIdx() {
				continue
			}
			sent += node.Endpoint().Stats().Sent
			followers++
		}
		return float64(sent) / float64(followers) / k
	}
	small := run(4, 1)
	large := run(10, 3)
	if large > small*2 {
		t.Fatalf("follower message load grew with cluster size: %.1f → %.1f per decision", small, large)
	}
}

func TestEquivocationForcesPacemaker(t *testing.T) {
	c := constest.NewCluster(4, 1, factory, constest.Options{ViewTimeout: 20 * time.Millisecond})
	a, b := constest.Val("A"), constest.Val("B")
	for _, follower := range []int{1, 2, 3} {
		v := a
		if follower >= 2 {
			v = b
		}
		c.SendAs(time.Millisecond, 0, follower,
			&Msg{Kind: kindPrepare, View: 0, Seq: 0, Node: 0, Digest: v.Digest, Data: v.Data})
	}
	c.Run(2 * time.Second)
	for i := 1; i < 4; i++ {
		if c.Nodes[i].Replica().View() == 0 {
			t.Fatalf("node %d stuck in view 0 after leader equivocation", i)
		}
	}
}
