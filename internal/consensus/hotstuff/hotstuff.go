// Package hotstuff implements a basic (non-chained) HotStuff BFT protocol:
// four leader-driven rounds (prepare → pre-commit → commit → decide) with
// linear communication — replicas vote to the leader, the leader combines
// votes into quorum certificates modeled as threshold signatures
// (ThresholdCombine at the leader, a single verification at replicas).
// This linearity is why HotStuff scales better than PBFT as the number of
// consensus nodes grows (visible in Fig 6).
package hotstuff

import (
	"github.com/bidl-framework/bidl/internal/consensus"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/types"
)

// Message kinds.
const (
	kindPrepare      = iota // leader → all: proposal
	kindVotePrep            // replica → leader
	kindPreCommit           // leader → all: prepareQC
	kindVotePre             // replica → leader
	kindCommit              // leader → all: precommitQC (lock)
	kindVoteCommit          // replica → leader
	kindDecide              // leader → all: commitQC
	kindNewView             // replica → next leader (pacemaker)
	kindNewViewStart        // new leader → all
)

// Msg is the single wire type for all HotStuff messages.
type Msg struct {
	Kind   int
	View   uint64
	Seq    uint64
	Node   int
	Digest crypto.Digest
	Data   []byte
	Sig    crypto.Signature
	// QC carries the aggregate certificate on leader broadcasts.
	QC crypto.Signature
	// CertSigs carries the individual commit votes inside DECIDE so
	// downstream consumers get a standard 2f+1 certificate.
	CertSigs []types.NodeSig
	Meta     []byte
	// Entries carries in-flight proposals on pacemaker messages.
	Entries []Entry
}

// Entry is an in-flight instance summary for view changes.
type Entry struct {
	Seq    uint64
	Digest crypto.Digest
	Data   []byte
	Locked bool
}

// Size implements consensus.Msg.
func (m *Msg) Size() int {
	n := 1 + 8 + 8 + 4 + 32 + len(m.Data) + len(m.Sig) + len(m.QC) + len(m.Meta)
	n += len(m.CertSigs) * (4 + 64)
	for _, e := range m.Entries {
		n += 8 + 32 + len(e.Data) + 1
	}
	return n
}

type phase int

const (
	phasePrepare phase = iota
	phasePreCommit
	phaseCommit
	phaseDecided
)

type instance struct {
	digest crypto.Digest
	data   []byte
	have   bool
	locked bool
	phase  phase
	// leader-side vote tallies per phase
	votes   [3]map[int]crypto.Signature
	decided bool
}

// Replica is one HotStuff consensus node.
type Replica struct {
	cfg  consensus.Config
	host consensus.Host

	view       uint64
	inView     bool
	nextSeq    uint64
	instances  map[uint64]*instance
	pending    []consensus.Value
	nvs        map[uint64]map[int]*Msg
	timerArmed bool
	timerEpoch uint64
	decidedCnt uint64
}

// New creates a HotStuff replica.
func New(cfg consensus.Config, host consensus.Host) *Replica {
	return &Replica{
		cfg:       cfg,
		host:      host,
		inView:    true,
		instances: make(map[uint64]*instance),
		nvs:       make(map[uint64]map[int]*Msg),
	}
}

// Name returns the protocol name.
func (r *Replica) Name() string { return "hotstuff" }

// View implements consensus.Replica.
func (r *Replica) View() uint64 { return r.view }

// Leader implements consensus.Replica.
func (r *Replica) Leader() int { return r.cfg.Policy.Leader(r.view) }

// IsLeader implements consensus.Replica.
func (r *Replica) IsLeader() bool { return r.Leader() == r.cfg.Self }

// Start implements consensus.Replica.
func (r *Replica) Start() {}

func (r *Replica) inst(seq uint64) *instance {
	in, ok := r.instances[seq]
	if !ok {
		in = &instance{}
		for i := range in.votes {
			in.votes[i] = make(map[int]crypto.Signature)
		}
		r.instances[seq] = in
	}
	return in
}

func voteBytes(phase int, view, seq uint64, d crypto.Digest) []byte {
	buf := make([]byte, 0, 49)
	buf = append(buf, byte(phase))
	for i := 0; i < 8; i++ {
		buf = append(buf, byte(view>>(8*(7-i))), byte(seq>>(8*(7-i))))
	}
	return append(buf, d[:]...)
}

// Propose implements consensus.Replica.
func (r *Replica) Propose(v consensus.Value) {
	if !r.IsLeader() || !r.inView {
		r.pending = append(r.pending, v)
		return
	}
	r.proposeAt(r.nextSeq, v)
	r.nextSeq++
}

func (r *Replica) proposeAt(seq uint64, v consensus.Value) {
	in := r.inst(seq)
	in.digest, in.data, in.have = v.Digest, v.Data, true
	r.host.Proposed(seq, v)
	r.host.BroadcastCN(&Msg{Kind: kindPrepare, View: r.view, Seq: seq, Node: r.cfg.Self, Digest: v.Digest, Data: v.Data})
	// Leader votes for itself in the prepare phase.
	r.host.Elapse(r.cfg.SigSign)
	in.votes[0][r.cfg.Self] = r.host.Sign(signBytes(0, r.view, seq, v.Digest))
	r.armTimer()
}

// Step implements consensus.Replica.
func (r *Replica) Step(from int, m consensus.Msg) {
	msg, ok := m.(*Msg)
	if !ok {
		return
	}
	switch msg.Kind {
	case kindPrepare:
		r.onProposal(from, msg)
	case kindVotePrep, kindVotePre, kindVoteCommit:
		r.onVote(from, msg)
	case kindPreCommit, kindCommit:
		r.onQC(from, msg)
	case kindDecide:
		r.onDecide(from, msg)
	case kindNewView:
		r.onNewView(from, msg)
	case kindNewViewStart:
		r.onNewViewStart(from, msg)
	}
}

func (r *Replica) onProposal(from int, m *Msg) {
	if m.View != r.view || !r.inView || from != r.Leader() {
		return
	}
	in := r.inst(m.Seq)
	if in.decided {
		return
	}
	if in.have && in.digest != m.Digest {
		// Equivocation: force a pacemaker round.
		r.RequestViewChange()
		return
	}
	in.digest, in.data, in.have = m.Digest, m.Data, true
	r.host.Proposed(m.Seq, consensus.Value{Digest: m.Digest, Data: m.Data})
	r.vote(kindVotePrep, 0, m.Seq, in)
	r.armTimer()
}

func (r *Replica) vote(kind, phaseIdx int, seq uint64, in *instance) {
	r.host.Elapse(r.cfg.SigSign)
	sig := r.host.Sign(signBytes(phaseIdx, r.view, seq, in.digest))
	r.host.Send(r.Leader(), &Msg{Kind: kind, View: r.view, Seq: seq, Node: r.cfg.Self, Digest: in.digest, Sig: sig})
}

// signBytes selects the byte string a phase vote covers: commit-phase votes
// sign the canonical certificate bytes so that 2f+1 of them form a standard
// types.Certificate; earlier phases use phase-tagged vote bytes.
func signBytes(phase int, view, seq uint64, d crypto.Digest) []byte {
	if phase == 2 {
		return types.CertSigningBytes(view, seq, d)
	}
	return voteBytes(phase, view, seq, d)
}

func phaseOfVote(kind int) int {
	switch kind {
	case kindVotePrep:
		return 0
	case kindVotePre:
		return 1
	default:
		return 2
	}
}

func (r *Replica) onVote(from int, m *Msg) {
	if m.View != r.view || !r.inView || !r.IsLeader() {
		return
	}
	in := r.inst(m.Seq)
	if !in.have || in.digest != m.Digest || in.decided {
		return
	}
	p := phaseOfVote(m.Kind)
	// Votes are threshold-signature shares: individual share checks run at
	// MAC rate and the expensive work is the combine step below (same
	// treatment as SBFT's collector), keeping the leader's per-view cost
	// near-linear in practice.
	r.host.Elapse(r.cfg.MACVerify)
	if !r.host.VerifyNode(from, signBytes(p, m.View, m.Seq, m.Digest), m.Sig) {
		return
	}
	in.votes[p][from] = m.Sig
	if len(in.votes[p]) != r.cfg.Quorum() {
		return
	}
	// Quorum reached: combine into a QC and advance the phase.
	r.host.Elapse(r.cfg.ThresholdCombine)
	qcDigest := crypto.Hash(voteBytes(p, m.View, m.Seq, m.Digest))
	qc := crypto.Signature(qcDigest[:])
	switch p {
	case 0:
		consensus.Phase(r.host, "prepare-qc", r.view, m.Seq)
		r.host.BroadcastCN(&Msg{Kind: kindPreCommit, View: r.view, Seq: m.Seq, Node: r.cfg.Self, Digest: m.Digest, QC: qc})
		r.host.Elapse(r.cfg.SigSign)
		in.votes[1][r.cfg.Self] = r.host.Sign(signBytes(1, r.view, m.Seq, m.Digest))
		in.phase = phasePreCommit
	case 1:
		consensus.Phase(r.host, "precommit-qc", r.view, m.Seq)
		r.host.BroadcastCN(&Msg{Kind: kindCommit, View: r.view, Seq: m.Seq, Node: r.cfg.Self, Digest: m.Digest, QC: qc})
		r.host.Elapse(r.cfg.SigSign)
		in.locked = true
		in.votes[2][r.cfg.Self] = r.host.Sign(signBytes(2, r.view, m.Seq, m.Digest))
		in.phase = phaseCommit
	case 2:
		// Assemble the standard certificate from commit votes. The
		// commit-phase vote signs voteBytes(2,...); downstream
		// consumers receive those plus the block digest.
		cert := r.buildCert(m.Seq, in)
		r.host.BroadcastCN(&Msg{Kind: kindDecide, View: r.view, Seq: m.Seq, Node: r.cfg.Self, Digest: m.Digest, QC: qc, CertSigs: cert.Sigs})
		r.decide(m.Seq, in, cert)
	}
}

// buildCert converts commit-phase votes into a standard 2f+1 certificate:
// commit votes sign types.CertSigningBytes, so the assembled certificate
// verifies with types.Certificate.Verify like every other protocol's.
func (r *Replica) buildCert(seq uint64, in *instance) *types.Certificate {
	cert := &types.Certificate{View: r.view, Number: seq, Digest: in.digest}
	for _, node := range consensus.SortedNodes(in.votes[2]) {
		cert.Sigs = append(cert.Sigs, types.NodeSig{Node: node, Sig: in.votes[2][node]})
		if len(cert.Sigs) == r.cfg.Quorum() {
			break
		}
	}
	return cert
}

func (r *Replica) onQC(from int, m *Msg) {
	if m.View != r.view || !r.inView || from != r.Leader() {
		return
	}
	// One threshold-signature verification regardless of cluster size.
	r.host.Elapse(r.cfg.SigVerify)
	in := r.inst(m.Seq)
	if !in.have {
		in.digest, in.have = m.Digest, true
	}
	if in.digest != m.Digest || in.decided {
		return
	}
	switch m.Kind {
	case kindPreCommit:
		in.phase = phasePreCommit
		r.vote(kindVotePre, 1, m.Seq, in)
	case kindCommit:
		in.phase = phaseCommit
		in.locked = true
		r.vote(kindVoteCommit, 2, m.Seq, in)
	}
}

func (r *Replica) onDecide(from int, m *Msg) {
	if !r.inView || from != r.cfg.Policy.Leader(m.View) {
		return
	}
	r.host.Elapse(r.cfg.SigVerify)
	in := r.inst(m.Seq)
	if in.decided {
		return
	}
	if !in.have {
		in.digest, in.have = m.Digest, true
	}
	if in.digest != m.Digest {
		return
	}
	cert := &types.Certificate{View: m.View, Number: m.Seq, Digest: m.Digest, Sigs: m.CertSigs}
	r.decide(m.Seq, in, cert)
}

func (r *Replica) decide(seq uint64, in *instance, cert *types.Certificate) {
	in.decided = true
	in.phase = phaseDecided
	r.decidedCnt++
	consensus.Phase(r.host, "decided", cert.View, seq)
	r.host.Deliver(seq, consensus.Value{Digest: in.digest, Data: in.data}, cert)
	if r.hasUndecided() {
		r.armTimer()
	}
}

// --- pacemaker ----------------------------------------------------------

// RequestViewChange implements consensus.Replica.
func (r *Replica) RequestViewChange() { r.advanceView(r.view + 1) }

func (r *Replica) advanceView(newView uint64) {
	if newView <= r.view && !r.inView {
		return
	}
	r.inView = false
	r.timerEpoch++
	var entries []Entry
	for _, seq := range consensus.SortedSeqs(r.instances) {
		in := r.instances[seq]
		if in.decided || !in.have {
			continue
		}
		entries = append(entries, Entry{Seq: seq, Digest: in.digest, Data: in.data, Locked: in.locked})
	}
	r.host.Elapse(r.cfg.SigSign)
	nv := &Msg{Kind: kindNewView, View: newView, Node: r.cfg.Self, Meta: r.host.ViewChangeMeta(), Entries: entries}
	nv.Sig = r.host.Sign(nvBytes(nv))
	// Linear pacemaker: send only to the next leader...
	next := r.cfg.Policy.Leader(newView)
	if next == r.cfg.Self {
		r.onNewView(r.cfg.Self, nv)
	} else {
		r.host.Send(next, nv)
	}
	// ...but also arm an escalation timer.
	epoch := r.timerEpoch
	r.host.After(r.cfg.ViewTimeout, func() {
		if r.timerEpoch == epoch && !r.inView {
			r.advanceView(newView + 1)
		}
	})
}

func nvBytes(m *Msg) []byte {
	buf := make([]byte, 0, 64)
	for i := 0; i < 8; i++ {
		buf = append(buf, byte(m.View>>(8*(7-i))))
	}
	buf = append(buf, byte(m.Node))
	buf = append(buf, m.Meta...)
	for _, e := range m.Entries {
		buf = append(buf, e.Digest[:]...)
	}
	return buf
}

func (r *Replica) onNewView(from int, m *Msg) {
	if m.View <= r.view || r.cfg.Policy.Leader(m.View) != r.cfg.Self {
		return
	}
	if from != r.cfg.Self {
		r.host.Elapse(r.cfg.SigVerify)
		if !r.host.VerifyNode(from, nvBytes(m), m.Sig) {
			return
		}
	}
	set := r.nvs[m.View]
	if set == nil {
		set = make(map[int]*Msg)
		r.nvs[m.View] = set
	}
	set[from] = m
	if len(set) < r.cfg.Quorum() {
		return
	}
	// Install the view as its leader.
	reprop := make(map[uint64]Entry)
	var metas [][]byte
	for _, id := range consensus.SortedNodes(set) {
		nv := set[id]
		metas = append(metas, nv.Meta)
		for _, e := range nv.Entries {
			prev, ok := reprop[e.Seq]
			if !ok || (e.Locked && !prev.Locked) {
				reprop[e.Seq] = e
			}
		}
	}
	start := &Msg{Kind: kindNewViewStart, View: m.View, Node: r.cfg.Self}
	r.host.Elapse(r.cfg.SigSign)
	start.Sig = r.host.Sign(nvBytes(start))
	r.host.BroadcastCN(start)
	r.enterView(m.View, metas)
	for _, seq := range consensus.SortedSeqs(reprop) {
		e := reprop[seq]
		if in, ok := r.instances[seq]; ok && in.decided {
			continue
		}
		delete(r.instances, seq)
		r.proposeAt(seq, consensus.Value{Digest: e.Digest, Data: e.Data})
		if seq >= r.nextSeq {
			r.nextSeq = seq + 1
		}
	}
	pend := r.pending
	r.pending = nil
	for _, v := range pend {
		r.Propose(v)
	}
}

func (r *Replica) onNewViewStart(from int, m *Msg) {
	if m.View < r.view || (m.View == r.view && r.inView) {
		return
	}
	if from != r.cfg.Policy.Leader(m.View) {
		return
	}
	r.host.Elapse(r.cfg.SigVerify)
	if !r.host.VerifyNode(from, nvBytes(m), m.Sig) {
		return
	}
	r.enterView(m.View, nil)
}

func (r *Replica) enterView(view uint64, metas [][]byte) {
	r.view = view
	r.inView = true
	r.timerEpoch++
	for seq, in := range r.instances {
		if !in.decided {
			delete(r.instances, seq)
		} else if seq >= r.nextSeq {
			r.nextSeq = seq + 1
		}
	}
	delete(r.nvs, view)
	r.host.ViewChanged(view, r.Leader(), metas)
	if r.IsLeader() {
		pend := r.pending
		r.pending = nil
		for _, v := range pend {
			r.Propose(v)
		}
	}
}

// --- progress timer ------------------------------------------------------

func (r *Replica) armTimer() {
	if r.timerArmed || r.cfg.ViewTimeout <= 0 {
		return
	}
	r.timerArmed = true
	epoch := r.timerEpoch
	decided := r.decidedCnt
	r.host.After(r.cfg.ViewTimeout, func() {
		r.timerArmed = false
		if r.timerEpoch != epoch || !r.inView {
			return
		}
		if r.decidedCnt == decided && r.hasUndecided() {
			r.RequestViewChange()
		} else if r.hasUndecided() {
			r.armTimer()
		}
	})
}

func (r *Replica) hasUndecided() bool {
	for _, in := range r.instances {
		if !in.decided && in.have {
			return true
		}
	}
	return false
}
