package consensus

import (
	"testing"

	"github.com/bidl-framework/bidl/internal/crypto"
)

func TestRoundRobin(t *testing.T) {
	p := RoundRobin{N: 4}
	for v := uint64(0); v < 12; v++ {
		if got := p.Leader(v); got != int(v%4) {
			t.Fatalf("leader(%d) = %d", v, got)
		}
	}
}

func TestRandomEpochEachNodeLeadsOncePerEpoch(t *testing.T) {
	// §4.6: views are grouped into epochs of N views and each consensus
	// node is the leader of exactly one view per epoch.
	for _, n := range []int{4, 7, 13} {
		p := RandomEpoch{N: n, Seed: crypto.Hash([]byte("seed"))}
		for epoch := uint64(0); epoch < 5; epoch++ {
			seen := make(map[int]bool, n)
			for i := 0; i < n; i++ {
				l := p.Leader(epoch*uint64(n) + uint64(i))
				if l < 0 || l >= n {
					t.Fatalf("leader out of range: %d", l)
				}
				if seen[l] {
					t.Fatalf("n=%d epoch=%d: node %d leads twice", n, epoch, l)
				}
				seen[l] = true
			}
		}
	}
}

func TestRandomEpochDeterministic(t *testing.T) {
	a := RandomEpoch{N: 7, Seed: crypto.Hash([]byte("x"))}
	b := RandomEpoch{N: 7, Seed: crypto.Hash([]byte("x"))}
	for v := uint64(0); v < 50; v++ {
		if a.Leader(v) != b.Leader(v) {
			t.Fatal("same seed produced different schedules")
		}
	}
}

func TestRandomEpochUnpredictableAcrossEpochs(t *testing.T) {
	// The rotation must not be the same permutation every epoch (that
	// would let the adversary predict successors, §4.6).
	p := RandomEpoch{N: 13, Seed: crypto.Hash([]byte("x"))}
	same := true
	for i := 0; i < 13; i++ {
		if p.Leader(uint64(i)) != p.Leader(uint64(13+i)) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("epoch 0 and 1 have identical leader orders")
	}
}

func TestQuorums(t *testing.T) {
	c := Config{N: 7, F: 2}
	if c.Quorum() != 5 || c.FastQuorum() != 7 {
		t.Fatalf("quorums %d/%d", c.Quorum(), c.FastQuorum())
	}
}

func TestValueSize(t *testing.T) {
	v := Value{Data: make([]byte, 100)}
	if v.Size() != 132 {
		t.Fatalf("size %d", v.Size())
	}
}
