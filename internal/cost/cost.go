// Package cost defines the virtual CPU-time cost model charged by nodes in
// the simulation.
//
// The paper's performance arguments are quantitative in these constants: an
// Intel E5 core verifies fewer than 10k signatures per second (§4.1, so
// ~100 µs per verification), FastFabric's sequential MVCC check processes
// only 32.3k txns/s (§6.1, so ~31 µs per transaction), the DPDK sequencer
// adds ~20 µs per 1 KB transaction (§6), and smart-contract execution takes
// a fraction of a millisecond to several milliseconds (§2.2). Charging these
// costs in virtual time on single-core endpoints makes the paper's pipeline
// bottlenecks emerge from the model instead of being scripted.
package cost

import "time"

// Model is the set of per-operation virtual CPU costs.
type Model struct {
	// SigSign is the cost of producing one digital signature.
	SigSign time.Duration
	// SigVerify is the cost of verifying one digital signature
	// (paper: <10k/s per core on Intel E5 ⇒ ~100 µs).
	SigVerify time.Duration
	// MACCompute is the cost of computing one MAC.
	MACCompute time.Duration
	// MACVerify is the cost of verifying one MAC.
	MACVerify time.Duration
	// HashPerKB is the cost of hashing 1 KB of data (SHA-256).
	HashPerKB time.Duration
	// ExecTxn is the cost of executing one SmallBank transaction
	// (verify+simulate a smart contract invocation).
	ExecTxn time.Duration
	// MVCCCheck is the per-transaction cost of the sequential MVCC
	// validation in the HLF/FastFabric validate phase
	// (paper: 32.3k txns/s ⇒ ~31 µs).
	MVCCCheck time.Duration
	// CommitTxn is the per-transaction cost of writing committed state.
	CommitTxn time.Duration
	// SequencerPerTxn is the added delay of the software sequencer per
	// transaction (paper: ~20 µs for 1 KB transactions).
	SequencerPerTxn time.Duration
	// BlockOverhead is the fixed cost of assembling/validating one block's
	// metadata.
	BlockOverhead time.Duration
	// ThresholdSign is the cost of producing one threshold-signature share
	// (SBFT collectors).
	ThresholdSign time.Duration
	// ThresholdCombine is the cost of combining threshold shares.
	ThresholdCombine time.Duration
}

// Default returns the cost model calibrated to the paper's hardware
// (Intel 2.60 GHz E5-2690 v3).
func Default() Model {
	return Model{
		SigSign:          60 * time.Microsecond,
		SigVerify:        100 * time.Microsecond,
		MACCompute:       1 * time.Microsecond,
		MACVerify:        1 * time.Microsecond,
		HashPerKB:        2 * time.Microsecond,
		ExecTxn:          110 * time.Microsecond,
		MVCCCheck:        31 * time.Microsecond,
		CommitTxn:        4 * time.Microsecond,
		SequencerPerTxn:  20 * time.Microsecond,
		BlockOverhead:    200 * time.Microsecond,
		ThresholdSign:    150 * time.Microsecond,
		ThresholdCombine: 300 * time.Microsecond,
	}
}

// Hash returns the cost of hashing n bytes.
func (m Model) Hash(n int) time.Duration {
	return time.Duration(float64(m.HashPerKB) * float64(n) / 1024)
}

// VerifyBatch returns the cost of verifying n signatures.
func (m Model) VerifyBatch(n int) time.Duration {
	return time.Duration(n) * m.SigVerify
}
