package cost

import (
	"testing"
	"time"
)

func TestDefaultsMatchPaperQuantities(t *testing.T) {
	m := Default()
	// §4.1: an Intel E5 core verifies fewer than 10k signatures/s.
	perSec := time.Second / m.SigVerify
	if perSec > 10000 {
		t.Fatalf("signature verification rate %d/s exceeds the paper's <10k/s", perSec)
	}
	// §6.1: the sequential MVCC check processes ~32.3k txns/s.
	mvccPerSec := time.Second / m.MVCCCheck
	if mvccPerSec < 30000 || mvccPerSec > 35000 {
		t.Fatalf("MVCC rate %d/s, want ~32.3k", mvccPerSec)
	}
	// §6: the sequencer adds ~20µs per 1KB transaction.
	if m.SequencerPerTxn != 20*time.Microsecond {
		t.Fatalf("sequencer delay %v", m.SequencerPerTxn)
	}
	if m.MACVerify >= m.SigVerify/10 {
		t.Fatal("MACs must be far cheaper than signatures (§4.1)")
	}
}

func TestHashScalesWithSize(t *testing.T) {
	m := Default()
	if m.Hash(2048) != 2*m.Hash(1024) {
		t.Fatal("hash cost not linear in size")
	}
	if m.Hash(0) != 0 {
		t.Fatal("hashing nothing should cost nothing")
	}
}

func TestVerifyBatch(t *testing.T) {
	m := Default()
	if m.VerifyBatch(5) != 5*m.SigVerify {
		t.Fatal("batch verify not linear")
	}
}
