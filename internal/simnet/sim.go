// Package simnet provides a deterministic discrete-event simulation of a
// datacenter network: a virtual clock, an event queue, endpoints that model
// single-core nodes, and links with configurable propagation latency,
// bandwidth (serialization delay), shared inter-datacenter pipes, jitter,
// and packet loss.
//
// All of BIDL and its baseline frameworks run on top of this substrate, which
// replaces the paper's 20-server, 40 Gbps testbed. Virtual time makes every
// experiment deterministic: the same seed yields the same commit sequence.
//
// The simulator optionally runs as a conservative parallel discrete-event
// simulation (PDES): the event queue is partitioned by node group, each
// partition executes on its own goroutine with its own deterministic RNG
// stream, and link-latency lookahead bounds how far a partition may advance
// before synchronizing (see psim.go). A parallel run is byte-identical to a
// serial run of the same partitioned simulation at the same seed.
package simnet

import (
	"fmt"
	"math/rand"
	"time"
)

// MaxPartitions is the largest supported partition count: the event key
// reserves 6 bits for the originating partition index.
const MaxPartitions = 64

// event is a scheduled closure or an inlined message delivery. Events are
// ordered by (at, seq) where seq packs (push counter << 6 | origin
// partition): counters are per-partition, so the key is a total order that
// every partition can assign without synchronization, and with a single
// partition it degenerates to the classic scheduling-order tie-break.
// Events are stored by value inside the heap's backing array: scheduling one
// never heap-allocates an event node and never boxes through an interface.
//
// When fn is nil the event is a message delivery and the dst/from/msg/size
// fields carry the payload directly — the per-message closure that used to
// dominate the hot path's allocation profile is gone entirely.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()

	dst  *Endpoint
	from NodeID
	size int64
	msg  Message
}

// before orders events by (at, seq).
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// partition is one shard of the simulation: a private event heap, clock,
// push counter, and RNG stream. Partition 0 always exists and is seeded
// exactly like the historical single-queue simulator, so single-partition
// runs reproduce every prior trace bit-for-bit.
type partition struct {
	heap    []event // 4-ary min-heap ordered by event.before
	now     time.Duration
	seq     uint64 // push counter (pre-shift)
	rng     *rand.Rand
	nEvents uint64
}

// nextSeq assigns the next event key suffix for a push originating here.
func (p *partition) nextSeq(idx int) uint64 {
	p.seq++
	return p.seq<<6 | uint64(idx)
}

// Sim is a discrete-event simulator with a virtual clock.
//
// With one partition (the default) it is not safe for concurrent use; all
// node logic runs inside the event loop on a single goroutine. Distinct Sims
// share nothing, so independent simulations may run on separate goroutines
// concurrently. With SetPartitions(k>1) and SetWorkers(w>1), Run and
// RunUntil execute partitions concurrently under the conservative windowed
// protocol in psim.go; handlers in different partitions then run on
// different goroutines and must not share mutable state.
//
// Each partition's event queue is an inline 4-ary min-heap of event values.
// The 4-ary layout halves the sift-down depth versus a binary heap and keeps
// four sibling keys near one cache line; storing values (not pointers) means
// the backing array doubles as a free list of event slots — a pop vacates a
// slot that the next push reuses, so the steady-state event loop allocates
// nothing. Vacated slots are zeroed so the GC can reclaim closures.
type Sim struct {
	parts []*partition
	seed  int64

	// now is the global clock: the timestamp of the event being executed in
	// serial mode, the window frontier between barriers in parallel mode.
	now time.Duration
	// cur is the partition whose event is executing (serial mode only);
	// pushes made outside any event (setup code, drivers between RunUntil
	// calls) originate from partition 0.
	cur     int
	stopped bool

	// workers is the desired execution concurrency; values below 2 keep the
	// serial engine. forceSerial pins the serial engine regardless (the
	// byte-identity baseline for determinism tests).
	workers     int
	forceSerial bool
	// lookahead reports the minimum cross-partition scheduling delay the
	// attached network guarantees, re-queried at every Run/RunUntil;
	// nil or a non-positive bound disables parallel execution.
	lookahead func() time.Duration

	// par is non-nil while a parallel window executes (see psim.go). It is
	// written only by the coordinator while workers are quiescent.
	par *parRun
}

// NewSim returns a simulator whose randomness is derived entirely from seed.
func NewSim(seed int64) *Sim {
	return &Sim{
		parts: []*partition{{rng: rand.New(rand.NewSource(seed))}},
		seed:  seed,
	}
}

// SetPartitions splits the simulation into n event-queue partitions
// (1 <= n <= MaxPartitions). Partition 0 keeps the seed's historical RNG
// stream; partitions 1..n-1 get independent streams derived from the seed.
// It must be called before any event is scheduled: repartitioning a live
// queue would reorder causality.
func (s *Sim) SetPartitions(n int) {
	if n < 1 || n > MaxPartitions {
		panic(fmt.Sprintf("simnet: SetPartitions(%d) out of range [1,%d]", n, MaxPartitions))
	}
	if len(s.parts[0].heap) > 0 || s.parts[0].nEvents > 0 || len(s.parts) > 1 {
		panic("simnet: SetPartitions after events were scheduled or partitions set")
	}
	for i := 1; i < n; i++ {
		// Golden-ratio offset decorrelates the derived streams from both the
		// base seed and each other.
		s.parts = append(s.parts, &partition{
			rng: rand.New(rand.NewSource(s.seed ^ int64(uint64(i)*0x9e3779b97f4a7c15))),
		})
	}
}

// NumPartitions returns the partition count (>= 1).
func (s *Sim) NumPartitions() int { return len(s.parts) }

// PartitionCount derives a hub-and-shards partition count from a requested
// worker concurrency and the number of shardable node groups: one hub
// partition for nodes that share mid-run state plus up to workers-1 shard
// partitions, capped so no partition is left empty (groups+1) and by
// MaxPartitions. Workers < 2 keeps the single-queue serial engine. Both
// cluster builders (BIDL and the fabric baselines) use this rule.
func PartitionCount(workers, groups int) int {
	if workers < 2 {
		return 1
	}
	k := workers
	if groups+1 < k {
		k = groups + 1
	}
	if k > MaxPartitions {
		k = MaxPartitions
	}
	return k
}

// ShardPartition places shardable group g (an organization) in a partition:
// partition 0 is the hub; groups round-robin over partitions 1..nparts-1.
func ShardPartition(g, nparts int) int {
	if nparts < 2 {
		return 0
	}
	return 1 + g%(nparts-1)
}

// SetWorkers sets the desired execution concurrency. Parallel execution
// engages only when workers > 1, more than one partition exists, the
// lookahead bound is positive, and ForceSerial is off.
func (s *Sim) SetWorkers(w int) { s.workers = w }

// Workers returns the configured concurrency.
func (s *Sim) Workers() int { return s.workers }

// ForceSerial pins the serial engine regardless of workers/partitions —
// the reference executor that parallel runs must match byte-for-byte.
func (s *Sim) ForceSerial(v bool) { s.forceSerial = v }

// SetLookahead installs the function that bounds the minimum delay of any
// cross-partition schedule (the conservative-PDES lookahead). Networks
// install their own bound at construction; tests may override.
func (s *Sim) SetLookahead(fn func() time.Duration) { s.lookahead = fn }

// Now returns the current virtual time: the executing event's timestamp in
// serial mode, the last barrier frontier during a parallel run.
func (s *Sim) Now() time.Duration { return s.now }

// partNow returns partition p's local clock, which equals the global clock
// whenever the serial engine is driving.
func (s *Sim) partNow(p int) time.Duration {
	if s.par != nil {
		return s.parts[p].now
	}
	return s.now
}

// Rand returns partition 0's deterministic random source — the stream the
// historical single-queue simulator exposed. During a parallel run it must
// only be used from partition-0 handlers; partitioned handlers use
// Context.Rand, which resolves their own stream.
func (s *Sim) Rand() *rand.Rand { return s.parts[0].rng }

// partRng returns partition p's deterministic random source.
func (s *Sim) partRng(p int) *rand.Rand { return s.parts[p].rng }

// Events reports how many events have been executed so far.
func (s *Sim) Events() uint64 {
	var n uint64
	for _, p := range s.parts {
		n += p.nEvents
	}
	return n
}

// Pending reports how many events are waiting in the queues.
func (s *Sim) Pending() int {
	n := 0
	for _, p := range s.parts {
		n += len(p.heap)
	}
	return n
}

// At schedules fn at absolute virtual time t on the current partition.
// Scheduling in the past panics: it would silently reorder causality.
// During a parallel window only Context-based scheduling is legal.
func (s *Sim) At(t time.Duration, fn func()) {
	if s.par != nil {
		panic("simnet: Sim.At during parallel execution; schedule through a Context")
	}
	s.sched(s.cur, s.cur, event{at: t, fn: fn})
}

// After schedules fn d after the current virtual time. A negative delay
// panics, mirroring At's past-scheduling check: both used to be easy ways
// to silently reorder causality (After clamped negatives to "now", hiding
// the bug at the call site).
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("simnet: scheduling event %v in the past", d))
	}
	s.At(s.now+d, fn)
}

// sched routes an event originating in partition op to partition dp's
// queue, stamping its key from op's push counter. The caller fills every
// field of e except at-key bookkeeping (seq).
func (s *Sim) sched(op, dp int, e event) {
	e.seq = s.parts[op].nextSeq(op)
	if r := s.par; r != nil {
		r.push(op, dp, e)
		return
	}
	if e.at < s.now {
		panic(fmt.Sprintf("simnet: scheduling event at %v before now %v", e.at, s.now))
	}
	s.parts[dp].heap = heapPush(s.parts[dp].heap, e)
}

// schedDelivery schedules an inlined message-delivery event — no closure,
// no allocation beyond (amortized) heap growth.
func (s *Sim) schedDelivery(op int, at time.Duration, dst *Endpoint, from NodeID, msg Message, size int) {
	s.sched(op, dst.part, event{at: at, dst: dst, from: from, msg: msg, size: int64(size)})
}

// schedTimer schedules fn on partition p's queue at absolute time at, with
// p as the originating partition (endpoint-local timers and continuations).
func (s *Sim) schedTimer(p int, at time.Duration, fn func()) {
	s.sched(p, p, event{at: at, fn: fn})
}

// exec runs one event: either its closure or the inlined delivery.
func exec(e *event) {
	if e.fn != nil {
		e.fn()
		return
	}
	e.dst.net.deliver(e.dst, e.from, e.msg, e.at, int(e.size))
}

// heapPush inserts e into the 4-ary min-heap h, sifting parents down along
// the insertion path instead of swapping, so each level costs one copy.
func heapPush(h []event, e event) []event {
	h = append(h, event{})
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !e.before(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	return h
}

// heapPop removes and returns the earliest event. The vacated tail slot is
// zeroed (releasing the closure and message) but the backing array is kept,
// so the slot is reused by the next push.
func heapPop(h []event) (event, []event) {
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{}
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if h[j].before(&h[m]) {
					m = j
				}
			}
			if !h[m].before(&last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return top, h
}

// Stop halts the event loop after the currently running event returns. In a
// parallel run, other partitions may finish the already-released lookahead
// window before the halt takes effect (Stop mid-run is a serial-engine
// debugging affordance; the scenario layer never stops a parallel run).
func (s *Sim) Stop() {
	if r := s.par; r != nil {
		r.stop.Store(true)
		return
	}
	s.stopped = true
}

// minPart returns the index of the partition whose head event is globally
// earliest, or -1 when every queue is empty. Event keys are unique, so the
// comparison never ties.
func (s *Sim) minPart() int {
	best := -1
	for i, p := range s.parts {
		if len(p.heap) == 0 {
			continue
		}
		if best < 0 || p.heap[0].before(&s.parts[best].heap[0]) {
			best = i
		}
	}
	return best
}

// Run executes events until the queues are empty or Stop is called.
func (s *Sim) Run() {
	if s.parallelOK() {
		s.runParallel(0, false)
		return
	}
	s.stopped = false
	if len(s.parts) == 1 {
		// Single-partition fast path: the historical event loop.
		p := s.parts[0]
		for len(p.heap) > 0 && !s.stopped {
			var e event
			e, p.heap = heapPop(p.heap)
			s.now, p.now = e.at, e.at
			p.nEvents++
			exec(&e)
		}
		return
	}
	// Serial reference executor over k partitions: a k-way merge in global
	// key order — the order the parallel engine must reproduce.
	for !s.stopped {
		pi := s.minPart()
		if pi < 0 {
			break
		}
		p := s.parts[pi]
		var e event
		e, p.heap = heapPop(p.heap)
		s.now, p.now, s.cur = e.at, e.at, pi
		p.nEvents++
		exec(&e)
	}
	s.cur = 0
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
// Events scheduled beyond t remain queued so the simulation can be resumed.
func (s *Sim) RunUntil(t time.Duration) {
	if s.parallelOK() {
		s.runParallel(t, true)
		return
	}
	s.stopped = false
	if len(s.parts) == 1 {
		p := s.parts[0]
		for len(p.heap) > 0 && !s.stopped {
			if p.heap[0].at > t {
				break
			}
			var e event
			e, p.heap = heapPop(p.heap)
			s.now, p.now = e.at, e.at
			p.nEvents++
			exec(&e)
		}
	} else {
		for !s.stopped {
			pi := s.minPart()
			if pi < 0 || s.parts[pi].heap[0].at > t {
				break
			}
			p := s.parts[pi]
			var e event
			e, p.heap = heapPop(p.heap)
			s.now, p.now, s.cur = e.at, e.at, pi
			p.nEvents++
			exec(&e)
		}
		s.cur = 0
	}
	if !s.stopped && s.now < t {
		s.now = t
		for _, p := range s.parts {
			p.now = t
		}
	}
}
