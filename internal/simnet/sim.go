// Package simnet provides a deterministic discrete-event simulation of a
// datacenter network: a virtual clock, an event queue, endpoints that model
// single-core nodes, and links with configurable propagation latency,
// bandwidth (serialization delay), shared inter-datacenter pipes, jitter,
// and packet loss.
//
// All of BIDL and its baseline frameworks run on top of this substrate, which
// replaces the paper's 20-server, 40 Gbps testbed. Virtual time makes every
// experiment deterministic: the same seed yields the same commit sequence.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// event is a scheduled closure. Events at the same instant fire in the order
// they were scheduled (seq tie-break), which keeps simulations deterministic.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator with a virtual clock.
// It is not safe for concurrent use; all node logic runs inside the event
// loop on a single goroutine.
type Sim struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
	nEvents uint64
}

// NewSim returns a simulator whose randomness is derived entirely from seed.
func NewSim(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Events reports how many events have been executed so far.
func (s *Sim) Events() uint64 { return s.nEvents }

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it would silently reorder causality.
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("simnet: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current virtual time.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// Stop halts the event loop after the currently running event returns.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (s *Sim) Run() {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		s.nEvents++
		e.fn()
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
// Events scheduled beyond t remain queued so the simulation can be resumed.
func (s *Sim) RunUntil(t time.Duration) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		if s.events[0].at > t {
			break
		}
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		s.nEvents++
		e.fn()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
}
