// Package simnet provides a deterministic discrete-event simulation of a
// datacenter network: a virtual clock, an event queue, endpoints that model
// single-core nodes, and links with configurable propagation latency,
// bandwidth (serialization delay), shared inter-datacenter pipes, jitter,
// and packet loss.
//
// All of BIDL and its baseline frameworks run on top of this substrate, which
// replaces the paper's 20-server, 40 Gbps testbed. Virtual time makes every
// experiment deterministic: the same seed yields the same commit sequence.
package simnet

import (
	"fmt"
	"math/rand"
	"time"
)

// event is a scheduled closure. Events at the same instant fire in the order
// they were scheduled (seq tie-break), which keeps simulations deterministic.
// Events are stored by value inside the heap's backing array: scheduling one
// never heap-allocates an event node and never boxes through an interface.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// before orders events by (at, seq).
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Sim is a discrete-event simulator with a virtual clock.
// It is not safe for concurrent use; all node logic runs inside the event
// loop on a single goroutine. Distinct Sims share nothing, so independent
// simulations may run on separate goroutines concurrently.
//
// The event queue is an inline 4-ary min-heap of event values. The 4-ary
// layout halves the sift-down depth versus a binary heap and keeps four
// sibling keys on one cache line; storing values (not pointers) means the
// backing array doubles as a free list of event slots — a pop vacates a slot
// that the next push reuses, so the steady-state event loop allocates
// nothing. Vacated slots are zeroed so the GC can reclaim closures.
type Sim struct {
	now     time.Duration
	events  []event // 4-ary min-heap ordered by event.before
	seq     uint64
	rng     *rand.Rand
	stopped bool
	nEvents uint64
}

// NewSim returns a simulator whose randomness is derived entirely from seed.
func NewSim(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Events reports how many events have been executed so far.
func (s *Sim) Events() uint64 { return s.nEvents }

// Pending reports how many events are waiting in the queue.
func (s *Sim) Pending() int { return len(s.events) }

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it would silently reorder causality.
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("simnet: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	s.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current virtual time.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// push inserts e, sifting parents down along the insertion path instead of
// swapping, so each level costs one copy.
func (s *Sim) push(e event) {
	h := append(s.events, event{})
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !e.before(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	s.events = h
}

// pop removes and returns the earliest event. The vacated tail slot is
// zeroed (releasing the closure) but the backing array is kept, so the slot
// is reused by the next push.
func (s *Sim) pop() event {
	h := s.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{}
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if h[j].before(&h[m]) {
					m = j
				}
			}
			if !h[m].before(&last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	s.events = h
	return top
}

// Stop halts the event loop after the currently running event returns.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (s *Sim) Run() {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		e := s.pop()
		s.now = e.at
		s.nEvents++
		e.fn()
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
// Events scheduled beyond t remain queued so the simulation can be resumed.
func (s *Sim) RunUntil(t time.Duration) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		if s.events[0].at > t {
			break
		}
		e := s.pop()
		s.now = e.at
		s.nEvents++
		e.fn()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
}
