package simnet

import (
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/trace"
)

// TestUntracedDeliveryAllocs pins the allocation cost of the unicast delivery
// path with tracing disabled at zero: deliveries are inlined events (no
// closure), the handler Context is a per-endpoint scratch, the processNext
// continuation is bound once at registration, and the inbox pops by head
// index. If this number grows, either a tracing hook leaked onto the disabled
// path or a per-message closure crept back in.
func TestUntracedDeliveryAllocs(t *testing.T) {
	s := NewSim(1)
	n := NewNetwork(s, DefaultTopology())
	sink := HandlerFunc(func(*Context, NodeID, Message) {})
	src := n.Register("src", 0, sink)
	dst := n.Register("dst", 0, sink)
	var msg Message = testMsg{size: 256} // pre-boxed so the interface conversion isn't measured
	to := dst.ID()

	allocs := testing.AllocsPerRun(200, func() {
		ctx := NewInjectedContext(n, src)
		ctx.Send(to, msg)
		s.Run()
	})
	if allocs > 0 {
		t.Fatalf("untraced delivery = %v allocs/op, want 0 (tracing hook on disabled path, or a per-message closure crept back?)", allocs)
	}
}

// TestTracerHooksRecord drives traffic through a traced network and checks
// that every telemetry channel saw it: bytes out at the sender, bytes in at
// the receiver, queue depth, CPU busy time, and bytes on the wire.
func TestTracerHooksRecord(t *testing.T) {
	s := NewSim(1)
	n := NewNetwork(s, DefaultTopology())
	tr := trace.New(trace.Options{BucketWidth: 10 * time.Millisecond})

	busy := HandlerFunc(func(ctx *Context, _ NodeID, _ Message) {
		ctx.Elapse(100 * time.Microsecond)
	})
	src := n.Register("src", 0, busy)
	dst := n.Register("dst", 0, busy)

	// Attaching after registration must backfill node names.
	n.SetTracer(tr)
	if got := tr.NodeName(int(dst.ID())); got != "dst" {
		t.Fatalf("NodeName after late attach = %q, want \"dst\"", got)
	}

	var msg Message = testMsg{size: 512}
	for i := 0; i < 5; i++ {
		ctx := NewInjectedContext(n, src)
		ctx.Send(dst.ID(), msg)
	}
	s.Run()

	sum := func(id int, f func(trace.NodeBucket) uint64) uint64 {
		var total uint64
		for _, b := range tr.NodeBuckets(id) {
			total += f(b)
		}
		return total
	}
	if got := sum(int(src.ID()), func(b trace.NodeBucket) uint64 { return b.BytesOut }); got != 5*512 {
		t.Errorf("src BytesOut = %d, want %d", got, 5*512)
	}
	if got := sum(int(dst.ID()), func(b trace.NodeBucket) uint64 { return b.BytesIn }); got != 5*512 {
		t.Errorf("dst BytesIn = %d, want %d", got, 5*512)
	}
	if got := sum(int(dst.ID()), func(b trace.NodeBucket) uint64 { return b.Delivered }); got != 5 {
		t.Errorf("dst Delivered = %d, want 5", got)
	}
	var maxQ int
	var busyTotal time.Duration
	for _, b := range tr.NodeBuckets(int(dst.ID())) {
		if b.MaxQueue > maxQ {
			maxQ = b.MaxQueue
		}
		busyTotal += b.Busy
	}
	if maxQ == 0 {
		t.Error("dst MaxQueue never recorded")
	}
	if busyTotal != dst.Stats().BusyTime {
		t.Errorf("traced busy %v != endpoint BusyTime %v", busyTotal, dst.Stats().BusyTime)
	}
}

// TestTracerRecordsDrops covers the three drop sites: DropFilter, random
// loss, and a crashed destination.
func TestTracerRecordsDrops(t *testing.T) {
	s := NewSim(1)
	n := NewNetwork(s, DefaultTopology())
	tr := trace.New(trace.Options{})
	n.SetTracer(tr)
	sink := HandlerFunc(func(*Context, NodeID, Message) {})
	src := n.Register("src", 0, sink)
	dst := n.Register("dst", 0, sink)
	var msg Message = testMsg{size: 64}

	n.DropFilter = func(from, to NodeID, m Message) bool { return true }
	NewInjectedContext(n, src).Send(dst.ID(), msg)
	s.Run()
	n.DropFilter = nil

	dst.SetDown(true)
	NewInjectedContext(n, src).Send(dst.ID(), msg)
	s.Run()
	dst.SetDown(false)

	var drops uint64
	for _, b := range tr.NodeBuckets(int(dst.ID())) {
		drops += b.Dropped
	}
	if drops != 2 {
		t.Fatalf("traced drops = %d, want 2 (filter + down)", drops)
	}
	if dst.Stats().Dropped != 2 {
		t.Fatalf("endpoint drops = %d, want 2", dst.Stats().Dropped)
	}
}

// BenchmarkEndpointDelivery and BenchmarkEndpointDeliveryTraced bracket the
// cost of the tracing hooks on the unicast hot path. Compare allocs/op: the
// untraced variant must match the pre-tracing baseline exactly.
func BenchmarkEndpointDelivery(b *testing.B)       { benchDelivery(b, false) }
func BenchmarkEndpointDeliveryTraced(b *testing.B) { benchDelivery(b, true) }

func benchDelivery(b *testing.B, traced bool) {
	s := NewSim(1)
	n := NewNetwork(s, DefaultTopology())
	if traced {
		n.SetTracer(trace.New(trace.Options{}))
	}
	sink := HandlerFunc(func(*Context, NodeID, Message) {})
	src := n.Register("src", 0, sink)
	dst := n.Register("dst", 0, sink)
	var msg Message = testMsg{size: 256}
	to := dst.ID()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := NewInjectedContext(n, src)
		ctx.Send(to, msg)
		s.Run()
	}
}
