package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Conservative parallel discrete-event execution (PDES).
//
// The simulation is split into partitions (SetPartitions); every endpoint,
// its inbox, and its timers live in exactly one partition, and the network
// guarantees that any event one partition schedules onto another lies at
// least `lookahead` beyond the sender's clock (the minimum link propagation
// delay — the classic null-message bound, realized here as barrier windows).
//
// Each window the coordinator finds the globally earliest pending event at
// time m and releases every partition to execute its own queue up to the
// horizon H = m + lookahead. Cross-partition schedules produced inside the
// window land at >= m + lookahead >= H, so they cannot affect the window
// being executed; they accumulate in per-(src,dst) outboxes that only the
// source partition touches, and the coordinator folds them into the
// destination heaps at the barrier. Within a partition events execute in
// (at, seq) key order; keys are unique and assigned deterministically
// (per-partition push counters), so the execution each partition observes —
// and therefore every counter, table, and ledger digest — is byte-identical
// to the serial k-way merge of the same partitioned simulation.
type parRun struct {
	s *Sim
	k int

	// out holds cross-partition events produced during the current window,
	// indexed [src*k+dst]. A slice is appended to only by its source
	// partition's worker and drained only by the coordinator at barriers, so
	// no synchronization beyond the barrier itself is needed.
	out []([]event)

	// windowEnd is the current horizon H; written by the coordinator before
	// releasing workers, read-only inside the window.
	windowEnd time.Duration

	stop  atomic.Bool
	start []chan time.Duration // per-worker window release, carrying H
	wg    sync.WaitGroup
}

// parallelOK reports whether the next Run/RunUntil should use the parallel
// engine: concurrency requested, multiple partitions, a positive lookahead
// bound from the network, and no serial pin.
func (s *Sim) parallelOK() bool {
	if s.forceSerial || s.workers < 2 || len(s.parts) < 2 || s.lookahead == nil {
		return false
	}
	return s.lookahead() > 0
}

// runParallel drives bounded (RunUntil) or unbounded (Run) execution over
// the partitioned queues with one worker goroutine per partition.
func (s *Sim) runParallel(limit time.Duration, bounded bool) {
	lk := s.lookahead()
	k := len(s.parts)
	r := &parRun{
		s:     s,
		k:     k,
		out:   make([][]event, k*k),
		start: make([]chan time.Duration, k),
	}
	s.stopped = false
	s.par = r
	for p := 0; p < k; p++ {
		r.start[p] = make(chan time.Duration)
		go r.worker(p)
	}
	for {
		// Earliest pending event across all partitions: the next window's
		// base. Windows therefore jump over queue gaps instead of marching
		// in fixed lookahead steps.
		m := time.Duration(-1)
		for _, p := range s.parts {
			if len(p.heap) > 0 && (m < 0 || p.heap[0].at < m) {
				m = p.heap[0].at
			}
		}
		if m < 0 || (bounded && m > limit) {
			break
		}
		h := m + lk
		if bounded && h > limit+1 {
			// RunUntil executes events with at <= limit; timestamps are
			// integer nanoseconds, so the half-open horizon limit+1 is both
			// exact and still within the safe bound m + lk.
			h = limit + 1
		}
		r.windowEnd = h
		r.wg.Add(k)
		for p := 0; p < k; p++ {
			r.start[p] <- h
		}
		r.wg.Wait()
		r.drain()
		if r.stop.Load() {
			s.stopped = true
			break
		}
	}
	for p := 0; p < k; p++ {
		close(r.start[p])
	}
	s.par = nil
	if bounded && !s.stopped {
		s.now = limit
		for _, p := range s.parts {
			if p.now < limit {
				p.now = limit
			}
		}
	} else {
		for _, p := range s.parts {
			if p.now > s.now {
				s.now = p.now
			}
		}
	}
}

// worker executes partition p's events for each released window.
func (r *parRun) worker(p int) {
	part := r.s.parts[p]
	for h := range r.start[p] {
		for len(part.heap) > 0 && part.heap[0].at < h && !r.stop.Load() {
			var e event
			e, part.heap = heapPop(part.heap)
			part.now = e.at
			part.nEvents++
			exec(&e)
		}
		r.wg.Done()
	}
}

// push routes an event scheduled during a window: same-partition events go
// straight onto the worker's own heap (they may still execute inside this
// window); cross-partition events are buffered until the barrier.
func (r *parRun) push(op, dp int, e event) {
	if op == dp {
		part := r.s.parts[op]
		if e.at < part.now {
			panic(fmt.Sprintf("simnet: scheduling event at %v before now %v", e.at, part.now))
		}
		part.heap = heapPush(part.heap, e)
		return
	}
	if e.at < r.windowEnd {
		panic(fmt.Sprintf("simnet: cross-partition event at %v violates lookahead (window end %v)", e.at, r.windowEnd))
	}
	r.out[op*r.k+dp] = append(r.out[op*r.k+dp], e)
}

// drain folds every outbox into its destination heap. Insertion order is
// irrelevant: event keys are unique, so the heap's total order — not
// arrival order — decides execution.
func (r *parRun) drain() {
	for i, box := range r.out {
		if len(box) == 0 {
			continue
		}
		part := r.s.parts[i%r.k]
		for _, e := range box {
			if e.at < part.now {
				panic(fmt.Sprintf("simnet: drained event at %v behind partition clock %v", e.at, part.now))
			}
			part.heap = heapPush(part.heap, e)
		}
		clear(box)
		r.out[i] = box[:0]
	}
}
