package simnet

import (
	"testing"
	"time"
)

// BenchmarkSimEventLoop measures the raw cost of the event queue: a resident
// set of self-rescheduling events churns through the heap, so every op is one
// push + one pop at a realistic queue depth. allocs/op is the headline number:
// the seed container/heap implementation paid one *event allocation (plus
// interface boxing) per scheduled event; the value-based 4-ary heap pays none.
func BenchmarkSimEventLoop(b *testing.B) {
	s := NewSim(1)
	const resident = 256 // steady-state queue depth
	left := b.N
	for i := 0; i < resident; i++ {
		var f func()
		f = func() {
			if left <= 0 {
				return
			}
			left--
			s.After(time.Duration(1+s.Rand().Intn(1000))*time.Microsecond, f)
		}
		s.After(time.Duration(i)*time.Microsecond, f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
	b.StopTimer()
	if got := s.Events(); got < uint64(b.N) {
		b.Fatalf("executed %d events, want >= %d", got, b.N)
	}
	b.ReportMetric(float64(s.Events())/b.Elapsed().Seconds(), "vevents/sec")
}

// BenchmarkSimBroadcast measures a multicast fan-out through the full network
// stack (NIC serialization, group lookup, per-receiver delivery scheduling,
// endpoint inbox processing) — the hot path of BIDL's sequencer broadcast.
// Each op is one multicast to 50 receivers, i.e. ~100 scheduled events.
func BenchmarkSimBroadcast(b *testing.B) {
	const receivers = 50
	s := NewSim(1)
	n := NewNetwork(s, DefaultTopology())
	sink := HandlerFunc(func(*Context, NodeID, Message) {})
	sender := n.Register("sender", 0, sink)
	for i := 0; i < receivers; i++ {
		ep := n.Register("rx", 0, sink)
		n.Join("all", ep.ID())
	}
	msg := testMsg{size: 512}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := NewInjectedContext(n, sender)
		ctx.Multicast("all", msg)
		s.Run()
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Events())/b.Elapsed().Seconds(), "vevents/sec")
}
