package simnet

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := NewSim(1)
	var got []int
	s.After(3*time.Millisecond, func() { got = append(got, 3) })
	s.After(1*time.Millisecond, func() { got = append(got, 1) })
	s.After(2*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if s.Now() != 3*time.Millisecond {
		t.Fatalf("clock = %v, want 3ms", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := NewSim(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSim(1)
	fired := false
	s.After(time.Millisecond, func() {
		s.After(time.Millisecond, func() { fired = true })
	})
	s.Run()
	if !fired {
		t.Fatal("nested event did not fire")
	}
	if s.Now() != 2*time.Millisecond {
		t.Fatalf("clock = %v, want 2ms", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := NewSim(1)
	s.After(2*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(time.Millisecond, func() {})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := NewSim(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	s.RunUntil(5 * time.Millisecond)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("clock = %v, want 5ms", s.Now())
	}
	s.RunUntil(20 * time.Millisecond)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if s.Now() != 20*time.Millisecond {
		t.Fatalf("clock advanced to %v, want 20ms", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := NewSim(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 after Stop", count)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := NewSim(42), NewSim(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different random streams")
		}
	}
}

func TestNegativeAfterPanics(t *testing.T) {
	// After used to clamp negative delays to "now", silently reordering
	// causality at the call site; it now panics like At's past check.
	s := NewSim(1)
	defer func() {
		if recover() == nil {
			t.Error("After(-1s) did not panic")
		}
	}()
	s.After(-time.Second, func() {})
}

func TestAfterZeroBoundary(t *testing.T) {
	// The boundary case d == 0 stays legal: the event fires at the current
	// instant, after the currently executing event.
	s := NewSim(1)
	var got []int
	s.After(time.Millisecond, func() {
		s.After(0, func() { got = append(got, 2) })
		got = append(got, 1)
	})
	s.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("After(0) misbehaved: %v", got)
	}
	if s.Now() != time.Millisecond {
		t.Fatalf("clock = %v, want 1ms", s.Now())
	}
}

func TestNegativeAfterInsideEventPanics(t *testing.T) {
	// The same contract holds mid-run, where the old clamp was most
	// dangerous: now is far from zero and a negative delay rewound time.
	s := NewSim(1)
	s.After(2*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("After(-1ms) inside an event did not panic")
			}
		}()
		s.After(-time.Millisecond, func() {})
	})
	s.Run()
}

func TestRunUntilAdvancesClockOnEmptyQueue(t *testing.T) {
	// Resume semantics: RunUntil must advance the clock to t even when no
	// events exist, so a driver can idle the simulation forward and later
	// schedules land relative to t. This is the barrier primitive the PDES
	// coordinator leans on between windows.
	s := NewSim(1)
	s.RunUntil(5 * time.Millisecond)
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("clock = %v, want 5ms with an empty queue", s.Now())
	}
	fired := time.Duration(-1)
	s.After(time.Millisecond, func() { fired = s.Now() })
	s.RunUntil(10 * time.Millisecond)
	if fired != 6*time.Millisecond {
		t.Fatalf("resumed event fired at %v, want 6ms", fired)
	}
}

func TestRunUntilEventExactlyAtBoundary(t *testing.T) {
	// Events with at == t are inside the window (RunUntil is inclusive);
	// at == t+1ns stays queued for the next resume.
	s := NewSim(1)
	var fired []time.Duration
	s.At(5*time.Millisecond, func() { fired = append(fired, s.Now()) })
	s.At(5*time.Millisecond+time.Nanosecond, func() { fired = append(fired, s.Now()) })
	s.RunUntil(5 * time.Millisecond)
	if len(fired) != 1 || fired[0] != 5*time.Millisecond {
		t.Fatalf("window [0,5ms] fired %v, want exactly the 5ms event", fired)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want the 5ms+1ns event queued", s.Pending())
	}
	s.RunUntil(5*time.Millisecond + time.Nanosecond)
	if len(fired) != 2 || fired[1] != 5*time.Millisecond+time.Nanosecond {
		t.Fatalf("resume did not fire the boundary+1ns event: %v", fired)
	}
}

func TestRunUntilStopMidWindowThenResume(t *testing.T) {
	// Stop inside a bounded window halts immediately and must NOT advance
	// the clock to t: unexecuted events remain and time cannot have passed
	// them by. A subsequent RunUntil resumes exactly where the stop landed.
	s := NewSim(1)
	var fired []int
	for i := 1; i <= 6; i++ {
		i := i
		s.After(time.Duration(i)*time.Millisecond, func() {
			fired = append(fired, i)
			if i == 2 {
				s.Stop()
			}
		})
	}
	s.RunUntil(5 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want stop after event 2", fired)
	}
	if s.Now() != 2*time.Millisecond {
		t.Fatalf("clock = %v after Stop, want 2ms (not the window bound)", s.Now())
	}
	s.RunUntil(10 * time.Millisecond)
	if len(fired) != 6 {
		t.Fatalf("resume fired %v, want all six events", fired)
	}
	if s.Now() != 10*time.Millisecond {
		t.Fatalf("clock = %v, want 10ms", s.Now())
	}
}
