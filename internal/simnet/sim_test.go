package simnet

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := NewSim(1)
	var got []int
	s.After(3*time.Millisecond, func() { got = append(got, 3) })
	s.After(1*time.Millisecond, func() { got = append(got, 1) })
	s.After(2*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if s.Now() != 3*time.Millisecond {
		t.Fatalf("clock = %v, want 3ms", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := NewSim(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSim(1)
	fired := false
	s.After(time.Millisecond, func() {
		s.After(time.Millisecond, func() { fired = true })
	})
	s.Run()
	if !fired {
		t.Fatal("nested event did not fire")
	}
	if s.Now() != 2*time.Millisecond {
		t.Fatalf("clock = %v, want 2ms", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := NewSim(1)
	s.After(2*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(time.Millisecond, func() {})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := NewSim(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	s.RunUntil(5 * time.Millisecond)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("clock = %v, want 5ms", s.Now())
	}
	s.RunUntil(20 * time.Millisecond)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if s.Now() != 20*time.Millisecond {
		t.Fatalf("clock advanced to %v, want 20ms", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := NewSim(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 after Stop", count)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := NewSim(42), NewSim(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different random streams")
		}
	}
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	s := NewSim(1)
	fired := false
	s.After(-time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if s.Now() != 0 {
		t.Fatalf("clock = %v, want 0", s.Now())
	}
}
