package simnet

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// pingMsg is a synthetic payload for the PDES identity tests.
type pingMsg struct {
	hops int
	pad  int
}

func (p pingMsg) Size() int { return 64 + p.pad }

// pinger is a deterministic traffic generator: on start it fires a few
// messages at random peers, and every received message is forwarded (with
// random CPU cost and padding) until its hop budget runs out. All randomness
// comes from Context.Rand — the endpoint's partition stream — so a serial
// and a parallel run of the same partitioned network draw identically.
type pinger struct {
	peers []NodeID
	seen  uint64
	hopsx uint64
}

func (p *pinger) OnStart(ctx *Context) {
	for i := 0; i < 3; i++ {
		ctx.Elapse(time.Duration(ctx.Rand().Int63n(int64(20 * time.Microsecond))))
		ctx.Send(p.peers[ctx.Rand().Intn(len(p.peers))], pingMsg{hops: 12, pad: ctx.Rand().Intn(512)})
	}
}

func (p *pinger) OnMessage(ctx *Context, from NodeID, msg Message) {
	m := msg.(pingMsg)
	p.seen++
	p.hopsx += uint64(m.hops)
	ctx.Elapse(time.Duration(ctx.Rand().Int63n(int64(30 * time.Microsecond))))
	if m.hops > 0 {
		ctx.Send(p.peers[ctx.Rand().Intn(len(p.peers))], pingMsg{hops: m.hops - 1, pad: ctx.Rand().Intn(256)})
	}
}

// runPingMesh builds a 4-partition, 2-DC mesh of pingers over a lossy,
// jittery, bandwidth-limited topology (exercising every per-partition RNG
// draw site), runs it with the requested engine, and returns a full-state
// fingerprint: clocks, event counts, traffic totals, and per-endpoint stats.
func runPingMesh(t *testing.T, seed int64, workers int, forceSerial bool, until time.Duration) string {
	t.Helper()
	const parts, perPart = 4, 3
	s := NewSim(seed)
	s.SetPartitions(parts)
	s.SetWorkers(workers)
	s.ForceSerial(forceSerial)
	topo := Topology{
		IntraLatency: 100 * time.Microsecond,
		InterLatency: 2 * time.Millisecond,
		Jitter:       20 * time.Microsecond,
		LossRate:     0.02,
		NICBandwidth: 40e9 / 8,
	}
	n := NewNetwork(s, topo)
	var hs []*pinger
	var eps []*Endpoint
	for p := 0; p < parts; p++ {
		for j := 0; j < perPart; j++ {
			h := &pinger{}
			hs = append(hs, h)
			eps = append(eps, n.RegisterPart(fmt.Sprintf("n%d.%d", p, j), p%2, p, h))
		}
	}
	all := make([]NodeID, len(eps))
	for i, e := range eps {
		all[i] = e.ID()
	}
	for _, h := range hs {
		h.peers = all
	}
	if until > 0 {
		// Exercise the bounded engine and resume semantics: two windows.
		s.RunUntil(until / 2)
		s.RunUntil(until)
	} else {
		s.Run()
	}
	fp := fmt.Sprintf("now=%v events=%d msgs=%d bytes=%d xdc=%d\n",
		s.Now(), s.Events(), n.TotalMessages(), n.TotalBytes(), n.InterDCBytes())
	for i, e := range eps {
		fp += fmt.Sprintf("%s %+v seen=%d hopsx=%d\n", e.Name(), e.Stats(), hs[i].seen, hs[i].hopsx)
	}
	return fp
}

// TestParallelMatchesSerial asserts the tentpole property on the raw
// substrate: a parallel run is byte-identical to the serial reference
// executor over the same partitioned simulation at the same seed, for both
// Run and windowed RunUntil execution.
func TestParallelMatchesSerial(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		serial := runPingMesh(t, seed, 4, true, 0)
		parallel := runPingMesh(t, seed, 4, false, 0)
		if serial != parallel {
			t.Fatalf("seed %d: parallel Run diverged from serial\n--- serial ---\n%s--- parallel ---\n%s", seed, serial, parallel)
		}
		serialU := runPingMesh(t, seed, 4, true, 40*time.Millisecond)
		parallelU := runPingMesh(t, seed, 4, false, 40*time.Millisecond)
		if serialU != parallelU {
			t.Fatalf("seed %d: parallel RunUntil diverged from serial\n--- serial ---\n%s--- parallel ---\n%s", seed, serialU, parallelU)
		}
		if serial == serialU {
			t.Fatal("bounded run unexpectedly identical to unbounded (window never cut anything off?)")
		}
	}
}

// TestParallelEngineEngages guards against the parallel path silently
// degrading to serial: with workers > 1 the mesh must execute at least one
// multi-partition window (observed via the rendezvous test below for true
// concurrency; here we just pin the plumbing that selects the engine).
func TestParallelEngineEngages(t *testing.T) {
	s := NewSim(1)
	s.SetPartitions(2)
	s.SetWorkers(2)
	n := NewNetwork(s, DefaultTopology())
	if !s.parallelOK() {
		t.Fatal("parallelOK = false for 2 partitions, 2 workers, positive lookahead")
	}
	n.SetTracer(nil)
	s.ForceSerial(true)
	if s.parallelOK() {
		t.Fatal("ForceSerial did not pin the serial engine")
	}
	s.ForceSerial(false)
	n.LatencyOverride = func(from, to NodeID) (time.Duration, bool) { return 0, false }
	if s.parallelOK() {
		t.Fatal("LatencyOverride did not zero the lookahead bound")
	}
}

// rdvHandler participates in a two-goroutine rendezvous: it announces itself
// on its own channel and waits (bounded) for the peer. The handshake can only
// complete if both handlers are live at the same wall-clock moment on
// different goroutines — the serial engine, which runs handlers one at a
// time to completion, would time out.
type rdvHandler struct {
	mine, peer chan struct{}
	ok         *atomic.Bool
}

func (h *rdvHandler) OnStart(ctx *Context) {
	h.mine <- struct{}{}
	select {
	case <-h.peer:
		h.ok.Store(true)
	case <-time.After(5 * time.Second):
	}
}

func (h *rdvHandler) OnMessage(*Context, NodeID, Message) {}

// TestParallelGenuineConcurrency proves the engine really executes
// partitions on concurrent goroutines: two endpoints in different partitions
// rendezvous over unbuffered channels inside the same virtual-time window.
// GOMAXPROCS is pinned to 1, so the handshake succeeds through goroutine
// scheduling alone — the test is meaningful even on a 1-CPU CI container
// (cf. TestGatherRunsConcurrently for the sweep layer).
func TestParallelGenuineConcurrency(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var ok atomic.Bool
	a, b := make(chan struct{}, 1), make(chan struct{}, 1)
	s := NewSim(1)
	s.SetPartitions(2)
	s.SetWorkers(2)
	n := NewNetwork(s, DefaultTopology())
	n.RegisterPart("a", 0, 0, &rdvHandler{mine: a, peer: b, ok: &ok})
	n.RegisterPart("b", 0, 1, &rdvHandler{mine: b, peer: a, ok: &ok})
	s.Run()
	if !ok.Load() {
		t.Fatal("handlers in different partitions never overlapped: parallel engine is not concurrent")
	}
}

// TestCrossPartitionLookaheadPanic pins the conservative protocol's safety
// check: a cross-partition event landing inside the open window is a
// protocol violation and must panic rather than silently misorder.
func TestCrossPartitionSchedulingIsDeferred(t *testing.T) {
	// Indirect but deterministic: with the minimum link latency as
	// lookahead, every cross-partition delivery in the mesh must satisfy
	// arrive >= windowEnd, which drain() re-checks against the destination
	// clock. The mesh run would panic on any violation; reaching here with
	// identical fingerprints (TestParallelMatchesSerial) is the positive
	// case, so this test just runs a high-traffic mesh to hammer the checks
	// under -race.
	runPingMesh(t, 99, 4, false, 20*time.Millisecond)
}
