package simnet

import (
	"fmt"
	"time"
)

// Bandwidth values are in bytes per second. The paper's 40 Gbps NICs are
// 5e9 B/s.
const (
	Gbps = int64(1e9 / 8)
	Mbps = int64(1e6 / 8)
)

// Topology describes the datacenter layout and link characteristics.
// Endpoints are assigned to datacenters at registration time; latency and
// bandwidth between two endpoints are derived from their datacenter pair.
type Topology struct {
	// IntraLatency is the one-way propagation delay between two endpoints
	// in the same datacenter. The paper's cluster has 0.2 ms RTT.
	IntraLatency time.Duration
	// InterLatency is the one-way propagation delay between endpoints in
	// different datacenters (paper §6.4 uses 20 ms RTT).
	InterLatency time.Duration
	// NICBandwidth is each endpoint's egress capacity (bytes/s).
	// Zero means unlimited.
	NICBandwidth int64
	// InterDCBandwidth, when non-zero, models a shared dedicated pipe per
	// ordered datacenter pair: all traffic from DC a to DC b serializes on
	// one link of this capacity (bytes/s). This is the knob behind Fig 9.
	InterDCBandwidth int64
	// Jitter adds a uniform random [0, Jitter) delay to every message's
	// propagation. Large jitter can violate the triangle inequality, which
	// is what the denylist false-positive analysis (§5.2) depends on.
	Jitter time.Duration
	// LossRate is the independent per-message per-receiver drop
	// probability in [0, 1).
	LossRate float64
}

// DefaultTopology mirrors the paper's evaluation cluster: one datacenter,
// 0.2 ms RTT, 40 Gbps NICs, no loss.
func DefaultTopology() Topology {
	return Topology{
		IntraLatency: 100 * time.Microsecond,
		InterLatency: 10 * time.Millisecond,
		NICBandwidth: 40 * Gbps,
	}
}

// MultiDCTopology mirrors the §6.4 setup: several datacenters connected by
// dedicated cables with 20 ms RTT and a shared bandwidth cap per direction.
func MultiDCTopology(interDCBandwidth int64) Topology {
	t := DefaultTopology()
	t.InterDCBandwidth = interDCBandwidth
	return t
}

// Validate reports the first out-of-range topology parameter.
func (t Topology) Validate() error {
	switch {
	case t.IntraLatency < 0:
		return fmt.Errorf("simnet: IntraLatency must be >= 0 (got %s)", t.IntraLatency)
	case t.InterLatency < 0:
		return fmt.Errorf("simnet: InterLatency must be >= 0 (got %s)", t.InterLatency)
	case t.NICBandwidth < 0:
		return fmt.Errorf("simnet: NICBandwidth must be >= 0 (got %d)", t.NICBandwidth)
	case t.InterDCBandwidth < 0:
		return fmt.Errorf("simnet: InterDCBandwidth must be >= 0 (got %d)", t.InterDCBandwidth)
	case t.Jitter < 0:
		return fmt.Errorf("simnet: Jitter must be >= 0 (got %s)", t.Jitter)
	case t.LossRate < 0 || t.LossRate >= 1:
		return fmt.Errorf("simnet: LossRate must be in [0,1) (got %g)", t.LossRate)
	}
	return nil
}

// MinLatency returns the smallest one-way propagation delay across any
// endpoint pair — the conservative-PDES lookahead bound when no feature
// bypasses the propagation floor.
func (t Topology) MinLatency() time.Duration {
	if t.InterLatency < t.IntraLatency {
		return t.InterLatency
	}
	return t.IntraLatency
}

// latency returns the one-way propagation delay between two datacenters.
func (t Topology) latency(fromDC, toDC int) time.Duration {
	if fromDC == toDC {
		return t.IntraLatency
	}
	return t.InterLatency
}
