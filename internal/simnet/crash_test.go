package simnet

import (
	"fmt"
	"testing"
	"time"
)

// crashRxr counts deliveries, charging CPU per message so an inbox backlog
// builds, and crashes its own endpoint after a fixed number of receipts —
// from inside its handler, i.e. on its own partition, the only place a
// parallel run may mutate endpoint state.
type crashRxr struct {
	ep      *Endpoint
	seen    int
	crashAt int // crash after this many receipts (0 = never)
}

func (r *crashRxr) OnMessage(ctx *Context, from NodeID, msg Message) {
	r.seen++
	ctx.Elapse(50 * time.Microsecond)
	if r.crashAt > 0 && r.seen == r.crashAt {
		r.ep.SetDown(true)
	}
}

// warden restarts a crashed peer endpoint in its own partition at a fixed
// virtual time (standing in for the chaos injector's restart path).
type warden struct {
	target *Endpoint
	at     time.Duration
}

func (w *warden) OnMessage(*Context, NodeID, Message) {}
func (w *warden) OnStart(ctx *Context) {
	ctx.After(w.at, func(*Context) { w.target.Restart() })
}

// burster fires a burst at a target on start and a second burst at a fixed
// later time.
type burster struct {
	target       NodeID
	first, later int
	laterAt      time.Duration
}

func (b *burster) OnMessage(*Context, NodeID, Message) {}
func (b *burster) OnStart(ctx *Context) {
	for i := 0; i < b.first; i++ {
		ctx.Send(b.target, testMsg{size: 64})
	}
	ctx.After(b.laterAt, func(c2 *Context) {
		for i := 0; i < b.later; i++ {
			c2.Send(b.target, testMsg{size: 64})
		}
	})
}

// runMidFlightCrash builds the regression topology: a sender partition
// bursts 100 messages at a receiver in another partition; the receiver
// crashes itself mid-backlog, a warden restarts it later, and a second
// burst lands after the restart. Returns a full-state fingerprint.
func runMidFlightCrash(workers int) (seen int, dropped uint64, fingerprint string) {
	const first, later = 100, 50
	s := NewSim(11)
	s.SetPartitions(2)
	s.SetWorkers(workers)
	topo := Topology{
		IntraLatency: 100 * time.Microsecond,
		InterLatency: 2 * time.Millisecond,
	}
	n := NewNetwork(s, topo)
	rx := &crashRxr{crashAt: 40}
	b := n.RegisterPart("rx", 1, 1, rx)
	rx.ep = b
	n.RegisterPart("warden", 1, 1, &warden{target: b, at: 8 * time.Millisecond})
	n.RegisterPart("tx", 0, 0, &burster{
		target: b.ID(), first: first, later: later, laterAt: 10 * time.Millisecond,
	})
	s.Run()
	st := b.Stats()
	return rx.seen, st.Dropped, fmt.Sprintf(
		"seen=%d dropped=%d received=%d events=%d now=%s",
		rx.seen, st.Dropped, st.Received, s.Events(), s.Now())
}

// TestCrashMidFlightDropsEnqueued is the regression test for crash
// semantics under backlog: messages already sitting in the inbox when the
// endpoint goes down must be dropped (counted), not processed, and traffic
// sent after a Restart must flow again. Conservation: every sent message is
// either seen or dropped.
func TestCrashMidFlightDropsEnqueued(t *testing.T) {
	seen, dropped, _ := runMidFlightCrash(0)
	if seen <= 40 || seen >= 150 {
		t.Fatalf("seen = %d; want crash mid-backlog then recovery (40 < seen < 150)", seen)
	}
	if dropped == 0 {
		t.Fatal("no drops recorded: the enqueued backlog survived the crash")
	}
	if int(dropped)+seen != 150 {
		t.Fatalf("conservation violated: seen(%d) + dropped(%d) != 150", seen, dropped)
	}
	// The second burst lands entirely after the restart, so exactly the
	// first burst's tail is lost.
	if seen != 40+50 {
		t.Fatalf("seen = %d, want 90 (40 pre-crash + 50 post-restart)", seen)
	}
}

// TestCrashMidFlightParallelIdentical reruns the mid-flight crash with the
// conservative-PDES engine: crash, drop accounting, and restart must be
// byte-identical to the serial run (and race-clean under -race), because
// all endpoint mutation happens on the owning partition.
func TestCrashMidFlightParallelIdentical(t *testing.T) {
	_, _, serial := runMidFlightCrash(0)
	for _, w := range []int{2, 4} {
		if _, _, par := runMidFlightCrash(w); par != serial {
			t.Errorf("workers=%d diverged:\nserial:   %s\nparallel: %s", w, serial, par)
		}
	}
}
