package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/bidl-framework/bidl/internal/trace"
)

// NodeID identifies an endpoint within a Network.
type NodeID int

// Message is anything deliverable across the network. Size is used for
// serialization delay on bandwidth-limited links and for traffic accounting.
type Message interface {
	Size() int
}

// Handler receives messages and timer callbacks at an endpoint.
type Handler interface {
	OnMessage(ctx *Context, from NodeID, msg Message)
}

// Starter is implemented by handlers that want a callback when the
// simulation starts (scheduled at time zero on the endpoint's own core).
type Starter interface {
	OnStart(ctx *Context)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx *Context, from NodeID, msg Message)

// OnMessage implements Handler.
func (f HandlerFunc) OnMessage(ctx *Context, from NodeID, msg Message) { f(ctx, from, msg) }

// delivery is a message (or timer) waiting in an endpoint's inbox.
type delivery struct {
	from  NodeID
	msg   Message
	timer func(*Context)
}

// EndpointStats accumulates per-endpoint counters.
type EndpointStats struct {
	Received   uint64
	Dropped    uint64
	Sent       uint64
	BytesSent  uint64
	BytesRecvd uint64
	BusyTime   time.Duration
	MaxQueue   int
}

// Endpoint models a node with a single dedicated CPU core and one NIC.
// Deliveries queue FIFO and the handler processes them serially; the virtual
// CPU time a handler charges (Context.Elapse) delays subsequent deliveries,
// which is how stage bottlenecks arise in simulations.
type Endpoint struct {
	id      NodeID
	name    string
	dc      int
	part    int
	net     *Network
	handler Handler

	// queue is the inbox, consumed head-first via qHead so that draining
	// never reallocates: the backing array is reused once empty and
	// compacted in place when the consumed prefix would force a growth.
	queue      []delivery
	qHead      int
	processing bool
	down       bool

	// actCtx is the reusable activation context handed to the handler. No
	// handler retains its context past the activation (the bind/defer
	// pattern throughout core restores the previous one), so a single
	// per-endpoint scratch replaces one heap allocation per delivery.
	actCtx Context
	// procFn is the processNext continuation, bound once at registration so
	// scheduling the next delivery does not allocate a fresh closure.
	procFn func()

	// egressFree is when the NIC finishes serializing the last message.
	egressFree time.Duration

	stats EndpointStats
	// xdrop counts sender-side drops (loss, drop filters) charged to this
	// endpoint by each sending partition. Sender-side drop accounting is the
	// one place a remote partition touches a destination endpoint, so it
	// gets a per-sender-partition cell instead of a racy shared counter;
	// Stats folds the cells back into Dropped. Nil when single-partitioned.
	xdrop []uint64
}

// ID returns the endpoint's node ID.
func (e *Endpoint) ID() NodeID { return e.id }

// Name returns the human-readable name given at registration.
func (e *Endpoint) Name() string { return e.name }

// DC returns the datacenter index the endpoint lives in.
func (e *Endpoint) DC() int { return e.dc }

// Partition returns the simulation partition the endpoint executes in.
func (e *Endpoint) Partition() int { return e.part }

// Stats returns a copy of the endpoint's counters.
func (e *Endpoint) Stats() EndpointStats {
	st := e.stats
	for _, d := range e.xdrop {
		st.Dropped += d
	}
	return st
}

// SetDown marks the endpoint crashed (true) or alive (false). A crashed
// endpoint drops all deliveries — including messages already sitting in its
// inbox, which are counted as dropped when the (dead) core pops them — and
// loses its own timers. Prefer Restart over SetDown(false) to bring a node
// back: it gives the handler a chance to re-arm its periodic timers.
func (e *Endpoint) SetDown(down bool) { e.down = down }

// Restarter is implemented by handlers that need a callback when their
// crashed endpoint comes back up (Endpoint.Restart): free-running timers
// died with the crash, so this is where they are re-armed.
type Restarter interface {
	OnRestart(ctx *Context)
}

// Restart brings a crashed endpoint back up. If the handler implements
// Restarter, OnRestart is enqueued like a regular delivery so recovery work
// runs on the node's own core at the current virtual time.
func (e *Endpoint) Restart() {
	if !e.down {
		return
	}
	e.down = false
	if r, ok := e.handler.(Restarter); ok {
		e.enqueue(delivery{from: e.id, timer: r.OnRestart})
	}
}

// QueueLen reports the inbox backlog (for monitoring/backpressure tests).
func (e *Endpoint) QueueLen() int { return len(e.queue) - e.qHead }

// netCounters is one partition's share of the network-wide traffic
// accounting, padded so concurrent partitions never share a cache line.
type netCounters struct {
	messages uint64
	bytes    uint64
	interDC  uint64
	_        [40]byte
}

// Network connects endpoints according to a Topology.
type Network struct {
	sim       *Sim
	topo      Topology
	endpoints []*Endpoint
	groups    map[string][]NodeID

	// pipeFree tracks when the shared inter-DC pipe for an ordered DC pair
	// becomes free; keyed by fromDC*4096+toDC. A non-zero InterDCBandwidth
	// forces the serial engine (the pipe is global state), so the map is
	// never touched concurrently.
	pipeFree map[int]time.Duration

	// mcPipeDone and mcSeenDC are scratch maps reused across multicastSend
	// calls so a fan-out allocates no per-call maps. They are only touched
	// under features that force the serial engine (tracing, inter-DC pipes),
	// where a single activation owns them end to end.
	mcPipeDone map[int]time.Duration
	mcSeenDC   map[int]bool

	// LatencyOverride, when non-nil, replaces the topology latency for a
	// given endpoint pair. Used by tests and by adversarial scenarios that
	// need to violate the triangle inequality on specific paths.
	LatencyOverride func(from, to NodeID) (time.Duration, bool)

	// DropFilter, when non-nil, can force-drop specific messages
	// (targeted partition/censorship scenarios). Return true to drop.
	DropFilter func(from, to NodeID, msg Message) bool

	// counters holds per-partition traffic totals, indexed by the sending
	// partition and summed on read, so parallel partitions account traffic
	// without sharing a counter.
	counters []netCounters

	// tracer, when non-nil, receives node/link telemetry from the hot
	// paths. Every hook is guarded by a nil check so disabled tracing adds
	// zero allocations; an attached tracer also zeroes the PDES lookahead,
	// pinning the run to the serial engine (trace streams are strictly
	// time-ordered).
	tracer *trace.Tracer
}

// NewNetwork creates a network over the given simulator and topology.
// Partitioning must already be configured on the simulator (SetPartitions):
// the network sizes its per-partition accounting and installs the
// conservative-PDES lookahead bound here.
func NewNetwork(sim *Sim, topo Topology) *Network {
	n := &Network{
		sim:        sim,
		topo:       topo,
		groups:     make(map[string][]NodeID),
		pipeFree:   make(map[int]time.Duration),
		mcPipeDone: make(map[int]time.Duration),
		mcSeenDC:   make(map[int]bool),
		counters:   make([]netCounters, sim.NumPartitions()),
	}
	sim.SetLookahead(n.lookaheadBound)
	return n
}

// lookaheadBound is the minimum delay separating a send from its delivery
// across any endpoint pair — the conservative-PDES window size. Features
// that either bypass the propagation-delay floor (latency overrides), keep
// global mutable state (inter-DC pipes), possibly keep adversarial state
// (drop filters), or require a single time-ordered stream (tracing) return
// zero, which pins the simulation to the serial engine.
func (n *Network) lookaheadBound() time.Duration {
	if n.tracer != nil || n.LatencyOverride != nil || n.DropFilter != nil || n.topo.InterDCBandwidth > 0 {
		return 0
	}
	return n.topo.MinLatency()
}

// Sim returns the underlying simulator.
func (n *Network) Sim() *Sim { return n.sim }

// Topology returns the network's topology parameters.
func (n *Network) Topology() Topology { return n.topo }

// SetTopology replaces link parameters mid-simulation (used by experiments
// that change loss or bandwidth on the fly).
func (n *Network) SetTopology(t Topology) { n.topo = t }

// SetTracer attaches (or, with nil, detaches) a telemetry tracer. Endpoints
// already registered are named into the tracer, so attach order does not
// matter.
func (n *Network) SetTracer(t *trace.Tracer) {
	n.tracer = t
	if t != nil {
		for _, e := range n.endpoints {
			t.RegisterNode(int(e.id), e.name, e.dc)
		}
	}
}

// Tracer returns the attached tracer (nil when tracing is disabled).
func (n *Network) Tracer() *trace.Tracer { return n.tracer }

// TotalMessages reports how many messages have been accepted for delivery.
func (n *Network) TotalMessages() uint64 {
	var v uint64
	for i := range n.counters {
		v += n.counters[i].messages
	}
	return v
}

// TotalBytes reports the total bytes accepted for delivery.
func (n *Network) TotalBytes() uint64 {
	var v uint64
	for i := range n.counters {
		v += n.counters[i].bytes
	}
	return v
}

// InterDCBytes reports bytes that crossed datacenter boundaries.
func (n *Network) InterDCBytes() uint64 {
	var v uint64
	for i := range n.counters {
		v += n.counters[i].interDC
	}
	return v
}

// Register adds an endpoint in datacenter dc (partition 0) with the given
// handler and returns it. If the handler implements Starter, OnStart fires
// at time zero.
func (n *Network) Register(name string, dc int, h Handler) *Endpoint {
	return n.RegisterPart(name, dc, 0, h)
}

// RegisterPart adds an endpoint in datacenter dc, executing in simulation
// partition part. Cluster builders assign the hub partition (0) to nodes
// that share mid-run state (consensus, sequencers, clients) and spread the
// independent bulk (normal nodes, peers) over the remaining partitions.
func (n *Network) RegisterPart(name string, dc, part int, h Handler) *Endpoint {
	if part < 0 || part >= n.sim.NumPartitions() {
		panic(fmt.Sprintf("simnet: RegisterPart(%q, part=%d) outside the simulator's %d partitions (call Sim.SetPartitions before NewNetwork)",
			name, part, n.sim.NumPartitions()))
	}
	e := &Endpoint{id: NodeID(len(n.endpoints)), name: name, dc: dc, part: part, net: n, handler: h}
	e.procFn = e.processNext
	if n.sim.NumPartitions() > 1 {
		e.xdrop = make([]uint64, n.sim.NumPartitions())
	}
	n.endpoints = append(n.endpoints, e)
	if n.tracer != nil {
		n.tracer.RegisterNode(int(e.id), name, dc)
	}
	if s, ok := h.(Starter); ok {
		n.sim.schedTimer(part, 0, func() {
			if e.down {
				return
			}
			e.enqueue(delivery{from: e.id, timer: s.OnStart})
		})
	}
	return e
}

// Endpoint returns the endpoint with the given ID, or nil.
func (n *Network) Endpoint(id NodeID) *Endpoint {
	if int(id) < 0 || int(id) >= len(n.endpoints) {
		return nil
	}
	return n.endpoints[id]
}

// NumEndpoints returns the number of registered endpoints.
func (n *Network) NumEndpoints() int { return len(n.endpoints) }

// Join adds an endpoint to a named multicast group.
func (n *Network) Join(group string, id NodeID) {
	for _, m := range n.groups[group] {
		if m == id {
			return
		}
	}
	n.groups[group] = append(n.groups[group], id)
}

// Leave removes an endpoint from a multicast group.
func (n *Network) Leave(group string, id NodeID) {
	ms := n.groups[group]
	for i, m := range ms {
		if m == id {
			n.groups[group] = append(ms[:i:i], ms[i+1:]...)
			return
		}
	}
}

// Group returns the members of a multicast group.
func (n *Network) Group(group string) []NodeID { return n.groups[group] }

// dropAt charges a sender-side drop of a message bound for dst observed at
// virtual time at, attributed to the sending partition fromPart.
func (n *Network) dropAt(dst *Endpoint, fromPart int, at time.Duration) {
	if fromPart == dst.part || dst.xdrop == nil {
		dst.stats.Dropped++
	} else {
		dst.xdrop[fromPart]++
	}
	if n.tracer != nil {
		n.tracer.Dropped(int(dst.id), at)
	}
}

// send schedules msg from 'from' to 'to', departing at depart.
// unicastSerialize indicates the sender pays NIC serialization for this copy
// (true for unicast and for the single multicast emission).
func (n *Network) send(from *Endpoint, to NodeID, msg Message, depart time.Duration, paySerialization bool) {
	dst := n.Endpoint(to)
	if dst == nil {
		panic(fmt.Sprintf("simnet: send to unknown endpoint %d", to))
	}
	size := msg.Size()
	ctr := &n.counters[from.part]
	ctr.messages++
	ctr.bytes += uint64(size)
	from.stats.Sent++
	from.stats.BytesSent += uint64(size)

	// NIC egress serialization.
	txDone := depart
	if paySerialization && n.topo.NICBandwidth > 0 {
		start := depart
		if from.egressFree > start {
			start = from.egressFree
		}
		txDone = start + time.Duration(float64(size)/float64(n.topo.NICBandwidth)*float64(time.Second))
		from.egressFree = txDone
	}

	if n.tracer != nil {
		n.tracer.Sent(int(from.id), depart, size)
		n.tracer.Wire(from.dc, dst.dc, txDone, size)
	}

	if n.DropFilter != nil && n.DropFilter(from.id, to, msg) {
		n.dropAt(dst, from.part, txDone)
		return
	}
	// Random loss, independent per receiver, drawn from the sending
	// partition's stream.
	if n.topo.LossRate > 0 && n.sim.partRng(from.part).Float64() < n.topo.LossRate {
		n.dropAt(dst, from.part, txDone)
		return
	}

	arrive := txDone + n.pathLatency(from, dst)

	// Shared inter-DC pipe serialization.
	if from.dc != dst.dc {
		ctr.interDC += uint64(size)
		if n.topo.InterDCBandwidth > 0 {
			key := from.dc*4096 + dst.dc
			start := txDone
			if n.pipeFree[key] > start {
				start = n.pipeFree[key]
			}
			done := start + time.Duration(float64(size)/float64(n.topo.InterDCBandwidth)*float64(time.Second))
			n.pipeFree[key] = done
			arrive = done + n.pathLatency(from, dst)
		}
	}

	// Deliveries are inlined events (no closure): the steady-state unicast
	// path allocates nothing, pinned by TestUntracedDeliveryAllocs.
	n.sim.schedDelivery(from.part, arrive, dst, from.id, msg, size)
}

// deliver lands a message at its destination at virtual time 'at': the shared
// tail of the unicast and multicast paths.
func (n *Network) deliver(dst *Endpoint, from NodeID, msg Message, at time.Duration, size int) {
	if dst.down {
		dst.stats.Dropped++
		if n.tracer != nil {
			n.tracer.Dropped(int(dst.id), at)
		}
		return
	}
	dst.stats.Received++
	dst.stats.BytesRecvd += uint64(size)
	if n.tracer != nil {
		n.tracer.Received(int(dst.id), at, size)
	}
	dst.enqueue(delivery{from: from, msg: msg})
}

// multicastSend performs an IP-multicast emission: the sender pays NIC
// serialization once, and a shared inter-DC pipe carries the payload once per
// destination datacenter (the router replicates it), exactly the property
// that makes Fig 9's multicast optimization matter.
func (n *Network) multicastSend(from *Endpoint, targets []NodeID, msg Message, depart time.Duration) {
	size := msg.Size()
	txDone := depart
	if n.topo.NICBandwidth > 0 {
		start := depart
		if from.egressFree > start {
			start = from.egressFree
		}
		txDone = start + time.Duration(float64(size)/float64(n.topo.NICBandwidth)*float64(time.Second))
		from.egressFree = txDone
	}
	from.stats.Sent++
	from.stats.BytesSent += uint64(size)
	ctr := &n.counters[from.part]
	ctr.messages += uint64(len(targets))
	ctr.bytes += uint64(size)
	if n.tracer != nil {
		n.tracer.Sent(int(from.id), depart, size)
		// One wire crossing per destination datacenter (the router
		// replicates the payload), mirroring the pipe accounting below.
		// Tracing forces the serial engine, so the shared scratch map is
		// owned by this activation.
		seenDC := n.mcSeenDC
		clear(seenDC)
		for _, t := range targets {
			if dst := n.Endpoint(t); dst != nil && !seenDC[dst.dc] {
				seenDC[dst.dc] = true
				n.tracer.Wire(from.dc, dst.dc, txDone, size)
			}
		}
	}

	// Pay each inter-DC pipe once. pipeDone stays nil on the fast path
	// (unlimited inter-DC bandwidth): lookups on a nil map are legal, and
	// the shared scratch map is only touched under the serial engine.
	var pipeDone map[int]time.Duration
	if n.topo.InterDCBandwidth > 0 {
		pipeDone = n.mcPipeDone
		clear(pipeDone)
		seen := n.mcSeenDC
		clear(seen)
		for _, t := range targets {
			dst := n.Endpoint(t)
			if dst == nil || dst.dc == from.dc || seen[dst.dc] {
				continue
			}
			seen[dst.dc] = true
			key := from.dc*4096 + dst.dc
			start := txDone
			if n.pipeFree[key] > start {
				start = n.pipeFree[key]
			}
			done := start + time.Duration(float64(size)/float64(n.topo.InterDCBandwidth)*float64(time.Second))
			n.pipeFree[key] = done
			pipeDone[dst.dc] = done
			ctr.interDC += uint64(size)
		}
	} else {
		for _, t := range targets {
			dst := n.Endpoint(t)
			if dst != nil && dst.dc != from.dc {
				ctr.interDC += uint64(size)
			}
		}
	}

	for _, t := range targets {
		if t == from.id {
			continue
		}
		dst := n.Endpoint(t)
		if dst == nil {
			continue
		}
		if n.DropFilter != nil && n.DropFilter(from.id, t, msg) {
			n.dropAt(dst, from.part, txDone)
			continue
		}
		if n.topo.LossRate > 0 && n.sim.partRng(from.part).Float64() < n.topo.LossRate {
			n.dropAt(dst, from.part, txDone)
			continue
		}
		ready := txDone
		if d, ok := pipeDone[dst.dc]; ok {
			ready = d
		}
		// One inlined delivery event per receiver and nothing else.
		n.sim.schedDelivery(from.part, ready+n.pathLatency(from, dst), dst, from.id, msg, size)
	}
}

func (n *Network) pathLatency(from, to *Endpoint) time.Duration {
	var base time.Duration
	if n.LatencyOverride != nil {
		if d, ok := n.LatencyOverride(from.id, to.id); ok {
			base = d
		} else {
			base = n.topo.latency(from.dc, to.dc)
		}
	} else {
		base = n.topo.latency(from.dc, to.dc)
	}
	if n.topo.Jitter > 0 {
		base += time.Duration(n.sim.partRng(from.part).Int63n(int64(n.topo.Jitter)))
	}
	return base
}

// enqueue adds a delivery to the endpoint's inbox and kicks the processor.
func (e *Endpoint) enqueue(d delivery) {
	if e.qHead > 0 && len(e.queue) == cap(e.queue) {
		// The consumed prefix would force a reallocation: compact the live
		// suffix down in place instead and reuse the backing array.
		live := copy(e.queue, e.queue[e.qHead:])
		clear(e.queue[live:])
		e.queue = e.queue[:live]
		e.qHead = 0
	}
	e.queue = append(e.queue, d)
	if qlen := len(e.queue) - e.qHead; qlen > e.stats.MaxQueue {
		e.stats.MaxQueue = qlen
	}
	if e.net.tracer != nil {
		e.net.tracer.Queue(int(e.id), e.net.sim.partNow(e.part), len(e.queue)-e.qHead)
	}
	if !e.processing {
		e.processNext()
	}
}

// processNext runs the handler on the head-of-queue delivery. The virtual CPU
// time charged by the handler defers processing of the next delivery.
func (e *Endpoint) processNext() {
	if e.qHead == len(e.queue) {
		e.queue = e.queue[:0]
		e.qHead = 0
		e.processing = false
		return
	}
	e.processing = true
	d := e.queue[e.qHead]
	e.queue[e.qHead] = delivery{} // release the message reference
	e.qHead++
	now := e.net.sim.partNow(e.part)
	ctx := &e.actCtx
	*ctx = Context{net: e.net, node: e, start: now}
	if e.down {
		// The core died with deliveries still queued: they are lost, not
		// replayed on restart, and messages count against Dropped exactly
		// like arrivals at a down endpoint (deliver). Timers vanish
		// silently — a crashed process has no pending timers to lose.
		if d.timer == nil {
			e.stats.Dropped++
			if e.net.tracer != nil {
				e.net.tracer.Dropped(int(e.id), now)
			}
		}
		e.net.sim.schedTimer(e.part, now, e.procFn)
		return
	}
	if d.timer != nil {
		d.timer(ctx)
	} else {
		e.handler.OnMessage(ctx, d.from, d.msg)
	}
	e.stats.BusyTime += ctx.elapsed
	if e.net.tracer != nil {
		e.net.tracer.Busy(int(e.id), ctx.start, ctx.elapsed)
	}
	e.net.sim.schedTimer(e.part, now+ctx.elapsed, e.procFn)
}

// NewInjectedContext returns a context for injecting activity into an
// endpoint from outside a handler (tests, experiment drivers, workload
// generators). The activation starts at the current virtual time and does
// not queue behind the endpoint's core.
func NewInjectedContext(net *Network, ep *Endpoint) *Context {
	return &Context{net: net, node: ep, start: net.sim.partNow(ep.part)}
}

// Context is passed to handlers; it tracks virtual CPU time consumed by the
// current activation and timestamps outgoing messages accordingly.
type Context struct {
	net     *Network
	node    *Endpoint
	start   time.Duration
	elapsed time.Duration
}

// Now returns the current virtual time as seen by the handler: activation
// start plus CPU time charged so far.
func (c *Context) Now() time.Duration { return c.start + c.elapsed }

// Self returns the endpoint's node ID.
func (c *Context) Self() NodeID { return c.node.id }

// Node returns the endpoint being activated.
func (c *Context) Node() *Endpoint { return c.node }

// Network returns the network.
func (c *Context) Network() *Network { return c.net }

// Rand exposes the deterministic randomness of the endpoint's partition
// (partition 0's stream is the historical Sim.Rand stream).
func (c *Context) Rand() *rand.Rand { return c.net.sim.partRng(c.node.part) }

// Elapse charges d of virtual CPU time to this activation: later sends from
// this activation depart after it, and the endpoint's next delivery is
// processed only once the charged time has passed.
func (c *Context) Elapse(d time.Duration) {
	if d > 0 {
		c.elapsed += d
	}
}

// Send transmits msg to a single destination.
func (c *Context) Send(to NodeID, msg Message) {
	c.net.send(c.node, to, msg, c.Now(), true)
}

// SendWithoutSerialization transmits without charging NIC serialization;
// used to model offloaded/line-rate devices such as the DPDK sequencer.
func (c *Context) SendWithoutSerialization(to NodeID, msg Message) {
	c.net.send(c.node, to, msg, c.Now(), false)
}

// Multicast emits msg once to every member of a named group (IP multicast):
// single NIC serialization, single inter-DC pipe crossing per datacenter.
func (c *Context) Multicast(group string, msg Message) {
	targets := c.net.groups[group]
	c.net.multicastSend(c.node, targets, msg, c.Now())
}

// MulticastUnicast emulates disabling IP multicast: the message is sent as
// len(group) independent unicasts, each paying serialization and pipe
// bandwidth (the "BIDL-opt-disabled" configuration of Fig 9).
func (c *Context) MulticastUnicast(group string, msg Message) {
	for _, t := range c.net.groups[group] {
		if t == c.node.id {
			continue
		}
		c.net.send(c.node, t, msg, c.Now(), true)
	}
}

// After schedules fn to run on this endpoint's core d from now. The callback
// queues like any other delivery, so a busy core delays it.
func (c *Context) After(d time.Duration, fn func(*Context)) {
	node := c.node
	c.net.sim.schedTimer(node.part, c.Now()+d, func() {
		if node.down {
			return
		}
		node.enqueue(delivery{from: node.id, timer: fn})
	})
}
