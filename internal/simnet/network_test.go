package simnet

import (
	"testing"
	"time"
)

// testMsg is a fixed-size payload for network tests.
type testMsg struct {
	size int
	tag  int
}

func (m testMsg) Size() int { return m.size }

// recorder collects every delivery with its arrival time.
type recorder struct {
	got []recorded
	// cost charged per message, to exercise CPU queueing.
	cost time.Duration
	// onMsg, if set, runs on each delivery.
	onMsg func(ctx *Context, from NodeID, msg Message)
}

type recorded struct {
	at   time.Duration
	from NodeID
	msg  Message
}

func (r *recorder) OnMessage(ctx *Context, from NodeID, msg Message) {
	r.got = append(r.got, recorded{at: ctx.Now(), from: from, msg: msg})
	if r.cost > 0 {
		ctx.Elapse(r.cost)
	}
	if r.onMsg != nil {
		r.onMsg(ctx, from, msg)
	}
}

func newTestNet(topo Topology) (*Sim, *Network) {
	s := NewSim(7)
	return s, NewNetwork(s, topo)
}

func TestUnicastLatency(t *testing.T) {
	topo := DefaultTopology()
	topo.NICBandwidth = 0 // isolate propagation
	s, n := newTestNet(topo)
	rx := &recorder{}
	a := n.Register("a", 0, HandlerFunc(func(*Context, NodeID, Message) {}))
	b := n.Register("b", 0, rx)
	s.At(0, func() {
		ctx := &Context{net: n, node: a}
		ctx.Send(b.ID(), testMsg{size: 100})
	})
	s.Run()
	if len(rx.got) != 1 {
		t.Fatalf("got %d deliveries, want 1", len(rx.got))
	}
	if rx.got[0].at != topo.IntraLatency {
		t.Fatalf("arrival at %v, want %v", rx.got[0].at, topo.IntraLatency)
	}
}

func TestInterDCLatency(t *testing.T) {
	topo := DefaultTopology()
	topo.NICBandwidth = 0
	s, n := newTestNet(topo)
	rx := &recorder{}
	a := n.Register("a", 0, HandlerFunc(func(*Context, NodeID, Message) {}))
	b := n.Register("b", 1, rx)
	s.At(0, func() {
		(&Context{net: n, node: a}).Send(b.ID(), testMsg{size: 100})
	})
	s.Run()
	if rx.got[0].at != topo.InterLatency {
		t.Fatalf("arrival at %v, want %v", rx.got[0].at, topo.InterLatency)
	}
	if n.InterDCBytes() != 100 {
		t.Fatalf("interDC bytes = %d, want 100", n.InterDCBytes())
	}
}

func TestSerializationDelay(t *testing.T) {
	topo := DefaultTopology()
	topo.IntraLatency = 0
	topo.NICBandwidth = 1000 // 1000 B/s: 500 B takes 500 ms
	s, n := newTestNet(topo)
	rx := &recorder{}
	a := n.Register("a", 0, HandlerFunc(func(*Context, NodeID, Message) {}))
	b := n.Register("b", 0, rx)
	s.At(0, func() {
		ctx := &Context{net: n, node: a}
		ctx.Send(b.ID(), testMsg{size: 500, tag: 1})
		ctx.Send(b.ID(), testMsg{size: 500, tag: 2}) // queues behind the first
	})
	s.Run()
	if len(rx.got) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(rx.got))
	}
	if rx.got[0].at != 500*time.Millisecond {
		t.Fatalf("first arrival %v, want 500ms", rx.got[0].at)
	}
	if rx.got[1].at != 1000*time.Millisecond {
		t.Fatalf("second arrival %v, want 1000ms (egress queueing)", rx.got[1].at)
	}
}

func TestCPUQueueing(t *testing.T) {
	topo := DefaultTopology()
	topo.NICBandwidth = 0
	topo.IntraLatency = 0
	s, n := newTestNet(topo)
	rx := &recorder{cost: 10 * time.Millisecond}
	a := n.Register("a", 0, HandlerFunc(func(*Context, NodeID, Message) {}))
	b := n.Register("b", 0, rx)
	s.At(0, func() {
		ctx := &Context{net: n, node: a}
		for i := 0; i < 3; i++ {
			ctx.Send(b.ID(), testMsg{size: 10, tag: i})
		}
	})
	s.Run()
	// All arrive at t=0 but the single core serializes handler activations.
	want := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond}
	for i, w := range want {
		if rx.got[i].at != w {
			t.Fatalf("activation %d at %v, want %v", i, rx.got[i].at, w)
		}
	}
	if got := n.Endpoint(b.ID()).Stats().BusyTime; got != 30*time.Millisecond {
		t.Fatalf("busy time = %v, want 30ms", got)
	}
}

func TestElapseDelaysOutgoing(t *testing.T) {
	topo := DefaultTopology()
	topo.NICBandwidth = 0
	topo.IntraLatency = 0
	s, n := newTestNet(topo)
	rx := &recorder{}
	relay := n.Register("relay", 0, HandlerFunc(func(ctx *Context, from NodeID, msg Message) {
		ctx.Elapse(5 * time.Millisecond)
		ctx.Send(2, msg) // rx registered third, ID 2
	}))
	a := n.Register("a", 0, HandlerFunc(func(*Context, NodeID, Message) {}))
	n.Register("rx", 0, rx)
	s.At(0, func() {
		(&Context{net: n, node: a}).Send(relay.ID(), testMsg{size: 1})
	})
	s.Run()
	if rx.got[0].at != 5*time.Millisecond {
		t.Fatalf("relayed arrival %v, want 5ms (Elapse before Send)", rx.got[0].at)
	}
}

func TestMulticastSingleSerialization(t *testing.T) {
	topo := DefaultTopology()
	topo.IntraLatency = 0
	topo.NICBandwidth = 1000 // 500 B takes 500 ms
	s, n := newTestNet(topo)
	var rxs []*recorder
	a := n.Register("a", 0, HandlerFunc(func(*Context, NodeID, Message) {}))
	for i := 0; i < 5; i++ {
		r := &recorder{}
		rxs = append(rxs, r)
		e := n.Register("rx", 0, r)
		n.Join("g", e.ID())
	}
	s.At(0, func() {
		(&Context{net: n, node: a}).Multicast("g", testMsg{size: 500})
	})
	s.Run()
	for i, r := range rxs {
		if len(r.got) != 1 || r.got[0].at != 500*time.Millisecond {
			t.Fatalf("receiver %d arrival %+v, want single delivery at 500ms", i, r.got)
		}
	}
}

func TestMulticastUnicastPaysNTimes(t *testing.T) {
	topo := DefaultTopology()
	topo.IntraLatency = 0
	topo.NICBandwidth = 1000
	s, n := newTestNet(topo)
	var last *recorder
	a := n.Register("a", 0, HandlerFunc(func(*Context, NodeID, Message) {}))
	for i := 0; i < 5; i++ {
		r := &recorder{}
		last = r
		e := n.Register("rx", 0, r)
		n.Join("g", e.ID())
	}
	s.At(0, func() {
		(&Context{net: n, node: a}).MulticastUnicast("g", testMsg{size: 500})
	})
	s.Run()
	if last.got[0].at != 5*500*time.Millisecond {
		t.Fatalf("last unicast copy arrived %v, want 2.5s (5 serializations)", last.got[0].at)
	}
}

func TestSharedInterDCPipe(t *testing.T) {
	topo := DefaultTopology()
	topo.NICBandwidth = 0
	topo.InterLatency = 0
	topo.IntraLatency = 0
	topo.InterDCBandwidth = 1000
	s, n := newTestNet(topo)
	rx1, rx2 := &recorder{}, &recorder{}
	a := n.Register("a", 0, HandlerFunc(func(*Context, NodeID, Message) {}))
	b := n.Register("b", 1, rx1)
	c := n.Register("c", 1, rx2)
	s.At(0, func() {
		ctx := &Context{net: n, node: a}
		ctx.Send(b.ID(), testMsg{size: 500})
		ctx.Send(c.ID(), testMsg{size: 500}) // shares the DC0->DC1 pipe
	})
	s.Run()
	if rx1.got[0].at != 500*time.Millisecond {
		t.Fatalf("first pipe crossing %v, want 500ms", rx1.got[0].at)
	}
	if rx2.got[0].at != 1000*time.Millisecond {
		t.Fatalf("second pipe crossing %v, want 1s (pipe shared)", rx2.got[0].at)
	}
}

func TestMulticastCrossesPipeOncePerDC(t *testing.T) {
	topo := DefaultTopology()
	topo.NICBandwidth = 0
	topo.InterLatency = 0
	topo.IntraLatency = 0
	topo.InterDCBandwidth = 1000
	s, n := newTestNet(topo)
	rx1, rx2 := &recorder{}, &recorder{}
	a := n.Register("a", 0, HandlerFunc(func(*Context, NodeID, Message) {}))
	b := n.Register("b", 1, rx1)
	c := n.Register("c", 1, rx2)
	n.Join("g", b.ID())
	n.Join("g", c.ID())
	s.At(0, func() {
		(&Context{net: n, node: a}).Multicast("g", testMsg{size: 500})
	})
	s.Run()
	if rx1.got[0].at != 500*time.Millisecond || rx2.got[0].at != 500*time.Millisecond {
		t.Fatalf("multicast pipe crossings at %v/%v, want both 500ms",
			rx1.got[0].at, rx2.got[0].at)
	}
	if n.InterDCBytes() != 500 {
		t.Fatalf("interDC bytes = %d, want 500 (single crossing)", n.InterDCBytes())
	}
}

func TestPacketLoss(t *testing.T) {
	topo := DefaultTopology()
	topo.NICBandwidth = 0
	topo.LossRate = 0.5
	s, n := newTestNet(topo)
	rx := &recorder{}
	a := n.Register("a", 0, HandlerFunc(func(*Context, NodeID, Message) {}))
	b := n.Register("b", 0, rx)
	const total = 2000
	s.At(0, func() {
		ctx := &Context{net: n, node: a}
		for i := 0; i < total; i++ {
			ctx.Send(b.ID(), testMsg{size: 10})
		}
	})
	s.Run()
	got := len(rx.got)
	if got < total*40/100 || got > total*60/100 {
		t.Fatalf("delivered %d of %d with 50%% loss; outside [40%%,60%%]", got, total)
	}
	if dropped := n.Endpoint(b.ID()).Stats().Dropped; int(dropped)+got != total {
		t.Fatalf("dropped(%d)+delivered(%d) != %d", dropped, got, total)
	}
}

func TestDownEndpointDropsDeliveries(t *testing.T) {
	topo := DefaultTopology()
	topo.NICBandwidth = 0
	s, n := newTestNet(topo)
	rx := &recorder{}
	a := n.Register("a", 0, HandlerFunc(func(*Context, NodeID, Message) {}))
	b := n.Register("b", 0, rx)
	b.SetDown(true)
	s.At(0, func() {
		(&Context{net: n, node: a}).Send(b.ID(), testMsg{size: 10})
	})
	s.Run()
	if len(rx.got) != 0 {
		t.Fatal("down endpoint processed a delivery")
	}
}

func TestTimerQueuesBehindCPU(t *testing.T) {
	topo := DefaultTopology()
	topo.NICBandwidth = 0
	topo.IntraLatency = 0
	s, n := newTestNet(topo)
	var timerAt time.Duration
	rx := &recorder{cost: 20 * time.Millisecond}
	rx.onMsg = func(ctx *Context, from NodeID, msg Message) {
		if msg.(testMsg).tag != 0 {
			return
		}
		ctx.After(5*time.Millisecond, func(c2 *Context) { timerAt = c2.Now() })
	}
	a := n.Register("a", 0, HandlerFunc(func(*Context, NodeID, Message) {}))
	b := n.Register("b", 0, rx)
	s.At(0, func() {
		ctx := &Context{net: n, node: a}
		ctx.Send(b.ID(), testMsg{size: 1, tag: 0})
		ctx.Send(b.ID(), testMsg{size: 1, tag: 1})
	})
	s.Run()
	// Timer requested at t=20ms(Elapse)→fires at 25ms, but the second message
	// occupies the core during [20ms,40ms], so the timer runs at 40ms.
	if timerAt != 40*time.Millisecond {
		t.Fatalf("timer ran at %v, want 40ms (queued behind busy core)", timerAt)
	}
}

func TestLatencyOverride(t *testing.T) {
	topo := DefaultTopology()
	topo.NICBandwidth = 0
	s, n := newTestNet(topo)
	rx := &recorder{}
	a := n.Register("a", 0, HandlerFunc(func(*Context, NodeID, Message) {}))
	b := n.Register("b", 0, rx)
	n.LatencyOverride = func(from, to NodeID) (time.Duration, bool) {
		if from == a.ID() && to == b.ID() {
			return 7 * time.Millisecond, true
		}
		return 0, false
	}
	s.At(0, func() {
		(&Context{net: n, node: a}).Send(b.ID(), testMsg{size: 1})
	})
	s.Run()
	if rx.got[0].at != 7*time.Millisecond {
		t.Fatalf("arrival %v, want overridden 7ms", rx.got[0].at)
	}
}

func TestDropFilter(t *testing.T) {
	topo := DefaultTopology()
	topo.NICBandwidth = 0
	s, n := newTestNet(topo)
	rx := &recorder{}
	a := n.Register("a", 0, HandlerFunc(func(*Context, NodeID, Message) {}))
	b := n.Register("b", 0, rx)
	n.DropFilter = func(from, to NodeID, msg Message) bool { return to == b.ID() }
	s.At(0, func() {
		(&Context{net: n, node: a}).Send(b.ID(), testMsg{size: 1})
	})
	s.Run()
	if len(rx.got) != 0 {
		t.Fatal("DropFilter did not drop the message")
	}
}

func TestOnStartFires(t *testing.T) {
	s, n := newTestNet(DefaultTopology())
	st := &startRecorder{}
	n.Register("s", 0, st)
	s.Run()
	if !st.started {
		t.Fatal("OnStart did not fire")
	}
}

type startRecorder struct{ started bool }

func (s *startRecorder) OnMessage(*Context, NodeID, Message) {}
func (s *startRecorder) OnStart(*Context)                    { s.started = true }

func TestGroupJoinLeave(t *testing.T) {
	s, n := newTestNet(DefaultTopology())
	_ = s
	a := n.Register("a", 0, &recorder{})
	b := n.Register("b", 0, &recorder{})
	n.Join("g", a.ID())
	n.Join("g", b.ID())
	n.Join("g", b.ID()) // duplicate join is a no-op
	if len(n.Group("g")) != 2 {
		t.Fatalf("group size %d, want 2", len(n.Group("g")))
	}
	n.Leave("g", a.ID())
	if g := n.Group("g"); len(g) != 1 || g[0] != b.ID() {
		t.Fatalf("group after leave = %v, want [b]", g)
	}
}
