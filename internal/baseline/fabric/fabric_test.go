package fabric

import (
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/workload"
)

func smallConfig(v Variant) Config {
	cfg := DefaultConfig(v)
	cfg.NumOrgs = 8
	cfg.BlockSize = 50
	cfg.BlockTimeout = 5 * time.Millisecond
	if v == StreamChain {
		cfg.BlockSize = 1
		cfg.BlockTimeout = 500 * time.Microsecond
	}
	return cfg
}

func buildCluster(t testing.TB, cfg Config, wcfg workload.Config) (*Cluster, *workload.Generator) {
	t.Helper()
	c := NewCluster(cfg)
	wcfg.NumOrgs = cfg.NumOrgs
	gen := workload.NewGenerator(wcfg, c.Scheme)
	ids := make([]crypto.Identity, wcfg.NumClients)
	for i := range ids {
		ids[i] = gen.Client(i)
	}
	c.RegisterClients(ids)
	c.Prepopulate(gen.Prepopulate)
	return c, gen
}

func defaultWorkload() workload.Config {
	w := workload.DefaultConfig(8)
	w.NumClients = 20
	w.Accounts = 800
	return w
}

func TestEndToEndAllVariants(t *testing.T) {
	for _, v := range []Variant{HLF, FastFabric, StreamChain} {
		t.Run(v.String(), func(t *testing.T) {
			c, gen := buildCluster(t, smallConfig(v), defaultWorkload())
			const n = 150
			for i, tx := range gen.Batch(n) {
				c.SubmitAt(time.Duration(i)*100*time.Microsecond, tx)
			}
			c.Run(3 * time.Second)
			if got := c.Collector.NumCommitted(); got != n {
				t.Fatalf("%s committed %d of %d", v, got, n)
			}
			if err := c.CheckSafety(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestContentionCausesMVCCAborts(t *testing.T) {
	// §6.3: FastFabric endorses contending transactions in parallel and
	// most of them abort in validation. Force contention with a tiny hot
	// set and concurrent submission.
	w := defaultWorkload()
	w.ContentionRatio = 0.5
	c, gen := buildCluster(t, smallConfig(FastFabric), w)
	txs := gen.Batch(300)
	for i, tx := range txs {
		c.SubmitAt(time.Duration(i)*20*time.Microsecond, tx)
	}
	c.Run(3 * time.Second)
	if got := c.Collector.NumCommitted(); got != 300 {
		t.Fatalf("committed %d of 300", got)
	}
	if c.Collector.MVCCAborts == 0 {
		t.Fatal("expected MVCC aborts under 50% contention")
	}
	if rate := c.Collector.AbortRate(); rate < 0.05 {
		t.Fatalf("abort rate %.3f; expected substantial contention aborts", rate)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestNoContentionNoAborts(t *testing.T) {
	c, gen := buildCluster(t, smallConfig(FastFabric), defaultWorkload())
	// Spread submissions out so endorsements see committed state.
	for i, tx := range gen.Batch(100) {
		c.SubmitAt(time.Duration(i)*3*time.Millisecond, tx)
	}
	c.Run(3 * time.Second)
	if got := c.Collector.NumCommitted(); got != 100 {
		t.Fatalf("committed %d of 100", got)
	}
	if ab := c.Collector.NumAborted(); ab > 2 {
		t.Fatalf("%d aborts on an uncontended spread-out workload", ab)
	}
}

func TestNondeterminismEarlyAborts(t *testing.T) {
	// §6.3: in FastFabric, non-deterministic transactions are
	// early-aborted after endorsement (mismatching endorsement digests)
	// — but only multi-org transactions can be caught at endorsement.
	w := defaultWorkload()
	w.NondetRatio = 0.3
	c, gen := buildCluster(t, smallConfig(FastFabric), w)
	nNondet := 0
	txs := gen.Batch(200)
	for i, tx := range txs {
		if tx.Fn == "create_random" {
			nNondet++
		}
		c.SubmitAt(time.Duration(i)*100*time.Microsecond, tx)
	}
	c.Run(3 * time.Second)
	if got := c.Collector.NumCommitted(); got != 200 {
		t.Fatalf("committed %d of 200", got)
	}
	// Single-org nondet creations endorse at one org only — no digest
	// comparison possible, so they commit with that org's value. The
	// effective-throughput impact in Fig 8 comes from multi-org nondet
	// transactions; our generator emits single-org ones, so just check
	// determinism of the overall state here.
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
	_ = nNondet
}

func TestStreamChainLatencyBeatsHLF(t *testing.T) {
	run := func(v Variant) time.Duration {
		c, gen := buildCluster(t, smallConfig(v), defaultWorkload())
		for i, tx := range gen.Batch(50) {
			c.SubmitAt(time.Duration(i)*time.Millisecond, tx)
		}
		c.Run(3 * time.Second)
		return c.Collector.AvgLatency(0, 3*time.Second)
	}
	sc := run(StreamChain)
	hlf := run(HLF)
	if sc >= hlf {
		t.Fatalf("StreamChain latency %v not below HLF %v", sc, hlf)
	}
	if sc > 20*time.Millisecond {
		t.Fatalf("StreamChain latency %v; expected a few ms", sc)
	}
}

func TestMaliciousOrdererHLFRecovers(t *testing.T) {
	// Table 4 S2: an HLF ordering leader proposing garbage is detected by
	// the other consensus nodes (they hold the payloads) and replaced.
	cfg := smallConfig(HLF)
	cfg.ViewTimeout = 50 * time.Millisecond
	c, gen := buildCluster(t, cfg, defaultWorkload())
	evil := c.LeaderIndex()
	c.Orderers[evil].ProposeGarbage = true
	const n = 150
	for i, tx := range gen.Batch(n) {
		c.SubmitAt(time.Duration(i)*100*time.Microsecond, tx)
	}
	c.Run(5 * time.Second)
	if c.Collector.ViewChanges == 0 {
		t.Fatal("garbage proposals never triggered a view change")
	}
	if c.LeaderIndex() == evil {
		t.Fatal("malicious leader still in charge")
	}
	// Clients whose envelopes were eaten by the evil leader re-submit is
	// not modeled for fabric; what matters is the framework recovers and
	// commits transactions submitted after the change.
	extra := gen.Batch(50)
	at := c.Sim.Now()
	for i, tx := range extra {
		c.SubmitAt(at+time.Duration(i)*100*time.Microsecond, tx)
	}
	c.Run(at + 3*time.Second)
	committedExtra := 0
	for _, tx := range extra {
		if c.Collector.IsCommitted(tx.ID()) {
			committedExtra++
		}
	}
	if committedExtra < 45 {
		t.Fatalf("only %d of 50 post-recovery transactions committed", committedExtra)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, time.Duration) {
		c, gen := buildCluster(t, smallConfig(FastFabric), defaultWorkload())
		for i, tx := range gen.Batch(100) {
			c.SubmitAt(time.Duration(i)*100*time.Microsecond, tx)
		}
		c.Run(2 * time.Second)
		return c.Collector.NumCommitted(), c.Collector.AvgLatency(0, 2*time.Second)
	}
	n1, l1 := run()
	n2, l2 := run()
	if n1 != n2 || l1 != l2 {
		t.Fatalf("runs diverge: (%d,%v) vs (%d,%v)", n1, l1, n2, l2)
	}
}
