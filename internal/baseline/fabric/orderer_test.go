package fabric

import (
	"testing"
	"time"
)

func TestOrderersConverge(t *testing.T) {
	// All orderers process the same chain regardless of which one leads.
	c, gen := buildCluster(t, smallConfig(FastFabric), defaultWorkload())
	txs := gen.Batch(20)
	for i, tx := range txs {
		c.SubmitAt(time.Duration(i)*time.Millisecond, tx)
	}
	c.Run(2 * time.Second)
	if got := c.Collector.NumCommitted(); got != len(txs) {
		t.Fatalf("committed %d of %d", got, len(txs))
	}
	h0 := c.Orderers[0].chainHeight
	for i, o := range c.Orderers {
		if o.chainHeight != h0 {
			t.Fatalf("orderer %d height %d != %d", i, o.chainHeight, h0)
		}
	}
}

func TestStreamChainBlocksAreSingletons(t *testing.T) {
	c, gen := buildCluster(t, smallConfig(StreamChain), defaultWorkload())
	for i, tx := range gen.Batch(30) {
		c.SubmitAt(time.Duration(i)*time.Millisecond, tx)
	}
	c.Run(2 * time.Second)
	p := c.Peers[0][0]
	if p.CommitHeight() < 30 {
		t.Fatalf("streamchain committed %d blocks for 30 txns", p.CommitHeight())
	}
	for n := uint64(0); n < p.CommitHeight(); n++ {
		if blk := p.Blocks().Get(n); blk != nil && len(blk.Hashes) != 1 {
			t.Fatalf("block %d has %d txns; streamchain must not batch", n, len(blk.Hashes))
		}
	}
}

func TestHLFOrderersHoldPayloads(t *testing.T) {
	// The HLF ordering leader disseminates payloads to all consensus
	// nodes (Table 4 S2's defensive property); FastFabric's does not.
	run := func(v Variant) int {
		c, gen := buildCluster(t, smallConfig(v), defaultWorkload())
		for i, tx := range gen.Batch(50) {
			c.SubmitAt(time.Duration(i)*time.Millisecond, tx)
		}
		c.Run(2 * time.Second)
		// Count payloads held by a FOLLOWER orderer.
		follower := (c.LeaderIndex() + 1) % len(c.Orderers)
		return len(c.Orderers[follower].byHash)
	}
	if got := run(HLF); got < 50 {
		t.Fatalf("HLF follower orderer holds %d payloads, want >= 50", got)
	}
	if got := run(FastFabric); got != 0 {
		t.Fatalf("FastFabric follower orderer holds %d payloads, want 0 (trusted single orderer)", got)
	}
}
