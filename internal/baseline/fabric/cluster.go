package fabric

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/bidl-framework/bidl/internal/consensus"
	"github.com/bidl-framework/bidl/internal/consensus/pbft"
	"github.com/bidl-framework/bidl/internal/consensus/raft"
	"github.com/bidl-framework/bidl/internal/contract"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/metrics"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/types"
)

func ordererIdentity(i int) crypto.Identity {
	return crypto.Identity("orderer" + strconv.Itoa(i))
}

func orgName(o int) string { return "org" + strconv.Itoa(o) }

// Cluster is a complete simulated baseline deployment (HLF, FastFabric, or
// StreamChain depending on Config.Variant).
type Cluster struct {
	Cfg       Config
	Sim       *simnet.Sim
	Net       *simnet.Network
	Scheme    crypto.Scheme
	Registry  *contract.Registry
	Collector *metrics.Collector

	Orderers []*Orderer
	Peers    [][]*Peer
	Clients  map[crypto.Identity]*Client

	ordIndex  map[simnet.NodeID]int
	clientEps map[crypto.Identity]simnet.NodeID
	policy    consensus.LeaderPolicy

	violationsMu sync.Mutex
	violations   []string
}

// NewCluster builds a baseline deployment.
func NewCluster(cfg Config) *Cluster {
	if cfg.NumOrderers == 0 {
		cfg.NumOrderers = 3*cfg.F + 1
	}
	sim := simnet.NewSim(cfg.Seed)
	// Same partitioning rule as the BIDL cluster: orderers and clients in
	// the hub partition, peer organizations sharded over the rest.
	nparts := simnet.PartitionCount(cfg.SimWorkers, cfg.NumOrgs)
	sim.SetPartitions(nparts)
	sim.SetWorkers(cfg.SimWorkers)
	net := simnet.NewNetwork(sim, cfg.Topology)
	net.SetTracer(cfg.Tracer)
	scheme := crypto.NewHMACScheme([]byte(fmt.Sprintf("fabric-%d", cfg.Seed)))
	reg := contract.NewRegistry()
	reg.Deploy(contract.SmallBank{})
	reg.Deploy(contract.Settlement{})

	c := &Cluster{
		Cfg:       cfg,
		Sim:       sim,
		Net:       net,
		Scheme:    scheme,
		Registry:  reg,
		Collector: metrics.NewCollector(),
		Clients:   make(map[crypto.Identity]*Client),
		ordIndex:  make(map[simnet.NodeID]int),
		clientEps: make(map[crypto.Identity]simnet.NodeID),
		policy:    consensus.RoundRobin{N: cfg.NumOrderers},
	}

	dc := func(i int) int {
		if cfg.NumDCs <= 1 {
			return 0
		}
		return i % cfg.NumDCs
	}

	consCfg := consensus.Config{
		N: cfg.NumOrderers, F: cfg.F,
		Policy:           c.policy,
		ViewTimeout:      cfg.ViewTimeout,
		SigVerify:        cfg.Costs.SigVerify,
		SigSign:          cfg.Costs.SigSign,
		MACVerify:        cfg.Costs.MACVerify,
		MACCompute:       cfg.Costs.MACCompute,
		ThresholdSign:    cfg.Costs.ThresholdSign,
		ThresholdCombine: cfg.Costs.ThresholdCombine,
	}

	node := 0
	for i := 0; i < cfg.NumOrderers; i++ {
		ord := newOrderer(c, i)
		ord.ep = net.Register(fmt.Sprintf("orderer%d", i), dc(node), ord)
		node++
		c.ordIndex[ord.ep.ID()] = i
		scheme.Register(ordererIdentity(i))
		rcfg := consCfg
		rcfg.Self = i
		if cfg.Protocol == "raft" {
			ord.replica = raft.New(rcfg, ord)
		} else {
			ord.replica = pbft.New(rcfg, ord)
		}
		c.Orderers = append(c.Orderers, ord)
	}

	for o := 0; o < cfg.NumOrgs; o++ {
		scheme.Register(crypto.Identity(orgName(o)))
		var peers []*Peer
		for j := 0; j < cfg.PeersPerOrg; j++ {
			p := newPeer(c, o, j, cfg.Seed*7_000_003+int64(o*64+j))
			p.ep = net.RegisterPart(fmt.Sprintf("%s-peer%d", orgName(o), j), dc(node), simnet.ShardPartition(o, nparts), p)
			node++
			peers = append(peers, p)
		}
		c.Peers = append(c.Peers, peers)
	}
	return c
}

// policyLeader resolves which orderer disseminates a block: the view leader
// for BFT certificates, the current leader under CFT (Raft).
func (c *Cluster) policyLeader(cert *types.Certificate, r consensus.Replica) int {
	if cert == nil {
		return r.Leader()
	}
	return c.policy.Leader(cert.View)
}

// RegisterClients creates client endpoints for the given identities.
func (c *Cluster) RegisterClients(ids []crypto.Identity) {
	for _, id := range ids {
		if _, ok := c.Clients[id]; ok {
			continue
		}
		cl := newClient(c, id)
		cl.ep = c.Net.Register("client-"+string(id), 0, cl)
		c.Clients[id] = cl
		c.clientEps[id] = cl.ep.ID()
	}
}

// Prepopulate applies fn to every peer's committed state.
func (c *Cluster) Prepopulate(fn func(*ledger.State)) {
	for _, org := range c.Peers {
		for _, p := range org {
			fn(p.state)
		}
	}
}

// SubmitAt schedules transactions for submission by their clients at time at.
func (c *Cluster) SubmitAt(at time.Duration, txns ...*types.Transaction) {
	byClient := make(map[crypto.Identity][]*types.Transaction)
	var order []crypto.Identity
	for _, tx := range txns {
		// Fill the lazy ID/signing/size caches before the transaction can
		// cross a partition boundary (see Transaction.Warm).
		tx.Warm()
		if _, ok := byClient[tx.Client]; !ok {
			order = append(order, tx.Client)
		}
		byClient[tx.Client] = append(byClient[tx.Client], tx)
	}
	c.Sim.At(at, func() {
		for _, id := range order {
			cl, ok := c.Clients[id]
			if !ok {
				continue
			}
			ctx := simnet.NewInjectedContext(c.Net, cl.ep)
			cl.submit(ctx, byClient[id])
		}
	})
}

// At schedules fn at virtual time t (see core.Cluster.At); serial engine
// only once the run has started.
func (c *Cluster) At(t time.Duration, fn func()) { c.Sim.At(t, fn) }

// InFlight returns the cluster-wide count of submitted transactions whose
// clients have not yet seen a commit.
func (c *Cluster) InFlight() int {
	n := 0
	for _, cl := range c.Clients {
		n += cl.Pending()
	}
	return n
}

// Run advances the simulation to absolute virtual time t.
func (c *Cluster) Run(t time.Duration) { c.Sim.RunUntil(t) }

// LeaderIndex returns the current ordering-service leader.
func (c *Cluster) LeaderIndex() int {
	var hi uint64
	leader := 0
	for _, ord := range c.Orderers {
		if v := ord.replica.View(); v >= hi {
			hi = v
			leader = ord.replica.Leader()
		}
	}
	return leader
}

// safetyViolation records an invariant breach; peers in concurrent
// partitions may report simultaneously, hence the lock.
func (c *Cluster) safetyViolation(msg string) {
	c.violationsMu.Lock()
	c.violations = append(c.violations, msg)
	c.violationsMu.Unlock()
}

// CheckSafety validates that all peers hold prefix-consistent ledgers and
// that peers at equal heights hold identical world states (full
// replication: every peer is in one state-agreement group). The comparison
// itself is shared with the BIDL cluster (ledger.CheckConsistency).
func (c *Cluster) CheckSafety() error {
	views := make([]ledger.SafetyView, 0, c.Cfg.NumOrgs*c.Cfg.PeersPerOrg)
	for _, org := range c.Peers {
		for j, p := range org {
			views = append(views, ledger.SafetyView{
				Label:  fmt.Sprintf("peer %s/%d", p.orgName, j),
				Blocks: p.blocks,
				State:  p.state,
				Height: p.commitHeight,
			})
		}
	}
	violations := c.violations
	if c.Sim.NumPartitions() > 1 {
		// Partitioned runs sort for a deterministic report (the multiset is
		// engine-independent, the arrival order is not); single-partition
		// runs keep the historical event order.
		violations = append([]string(nil), violations...)
		sort.Strings(violations)
	}
	return ledger.CheckConsistency("fabric", violations, views, [][]ledger.SafetyView{views})
}

// Metrics returns the cluster's metrics collector (the scenario.Harness
// accessor; the Collector field keeps its historical name).
func (c *Cluster) Metrics() *metrics.Collector { return c.Collector }

// IdentityScheme returns the membership crypto scheme clients register with.
func (c *Cluster) IdentityScheme() crypto.Scheme { return c.Scheme }

// VirtualEvents returns the number of discrete events executed so far.
func (c *Cluster) VirtualEvents() uint64 { return c.Sim.Events() }
