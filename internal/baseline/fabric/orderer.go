package fabric

import (
	"sync/atomic"
	"time"

	"github.com/bidl-framework/bidl/internal/consensus"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/trace"
	"github.com/bidl-framework/bidl/internal/types"
)

// Orderer is one ordering-service node hosting a consensus replica. The
// leader batches client envelopes into blocks; under consensus-on-hash (§6,
// enabled for all frameworks) agreement runs over envelope hashes while
// payloads travel separately:
//
//   - HLF: the leader disseminates payloads to all consensus nodes
//     (PayloadShare), so any of them can verify proposals (Table 4 S2).
//   - FastFabric: a single trusted orderer keeps payloads to itself and
//     sends only hashes through Raft.
type Orderer struct {
	c   *Cluster
	idx int
	ep  *simnet.Endpoint
	ctx *simnet.Context

	replica consensus.Replica

	pendingEnvs []*Envelope
	byHash      map[types.TxID]*Envelope
	batchArmed  bool

	delivered   map[uint64]*FabricBlock
	chainHeight uint64
	proposeTime map[crypto.Digest]time.Duration

	// ProposeGarbage makes a malicious leader propose invalid envelopes
	// (Table 4 S2).
	ProposeGarbage bool
	vcOnce         bool
}

// Endpoint returns the orderer's simnet endpoint.
func (o *Orderer) Endpoint() *simnet.Endpoint { return o.ep }

// Replica exposes the hosted consensus replica.
func (o *Orderer) Replica() consensus.Replica { return o.replica }

func newOrderer(c *Cluster, idx int) *Orderer {
	return &Orderer{
		c:           c,
		idx:         idx,
		byHash:      make(map[types.TxID]*Envelope),
		delivered:   make(map[uint64]*FabricBlock),
		proposeTime: make(map[crypto.Digest]time.Duration),
	}
}

func (o *Orderer) bind(ctx *simnet.Context, fn func()) {
	prev := o.ctx
	o.ctx = ctx
	defer func() { o.ctx = prev }()
	fn()
}

// OnStart implements simnet.Starter.
func (o *Orderer) OnStart(ctx *simnet.Context) {
	o.bind(ctx, func() { o.replica.Start() })
}

// OnRestart implements simnet.Restarter: the batch timer died with the
// crash, so its guard flag must reset (the next submission re-arms it).
func (o *Orderer) OnRestart(ctx *simnet.Context) {
	o.bind(ctx, func() {
		o.batchArmed = false
		o.maybeBatch()
	})
}

// OnMessage implements simnet.Handler.
func (o *Orderer) OnMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	o.bind(ctx, func() {
		switch m := msg.(type) {
		case *SubmitEnvelopes:
			o.onSubmit(m)
		case *PayloadShare:
			for _, env := range m.Envs {
				o.byHash[env.Tx.ID()] = env
			}
		case *FabricBlockFetch:
			o.onBlockFetch(from, m)
		case consensus.Msg:
			if idx, ok := o.c.ordIndex[from]; ok {
				o.replica.Step(idx, m)
			}
		}
	})
}

func (o *Orderer) onSubmit(m *SubmitEnvelopes) {
	if !o.replica.IsLeader() {
		// Forward to the leader.
		o.ctx.Send(o.c.Orderers[o.leaderIdx()].ep.ID(), m)
		return
	}
	for _, env := range m.Envs {
		o.ctx.Elapse(o.c.Cfg.Costs.MACVerify)
		id := env.Tx.ID()
		if _, ok := o.byHash[id]; ok {
			continue
		}
		if o.ProposeGarbage {
			env = o.garbageEnvelope(env)
			id = env.Tx.ID()
		}
		o.byHash[id] = env
		o.pendingEnvs = append(o.pendingEnvs, env)
		if tr := o.c.Cfg.Tracer; tr != nil {
			// The leader orderer accepting the envelope into its batch queue
			// is Fabric's sequencing point.
			tr.TxStage(id, trace.StageSequenced, int(o.ep.ID()), o.ctx.Now())
		}
	}
	o.maybeBatch()
}

func (o *Orderer) leaderIdx() int {
	var hi uint64
	leader := 0
	for _, ord := range o.c.Orderers {
		if v := ord.replica.View(); v >= hi {
			hi = v
			leader = ord.replica.Leader()
		}
	}
	return leader
}

func (o *Orderer) maybeBatch() {
	for len(o.pendingEnvs) >= o.c.Cfg.BlockSize {
		batch := o.pendingEnvs[:o.c.Cfg.BlockSize]
		o.pendingEnvs = o.pendingEnvs[o.c.Cfg.BlockSize:]
		o.proposeBatch(batch)
	}
	if len(o.pendingEnvs) > 0 && !o.batchArmed {
		o.batchArmed = true
		o.ctx.After(o.c.Cfg.BlockTimeout, func(c2 *simnet.Context) {
			o.bind(c2, func() {
				o.batchArmed = false
				if o.replica.IsLeader() && len(o.pendingEnvs) > 0 {
					batch := o.pendingEnvs
					if len(batch) > o.c.Cfg.BlockSize {
						batch = batch[:o.c.Cfg.BlockSize]
					}
					o.pendingEnvs = o.pendingEnvs[len(batch):]
					o.proposeBatch(batch)
				}
				o.maybeBatch()
			})
		})
	}
}

func (o *Orderer) proposeBatch(envs []*Envelope) {
	hashes := make([]types.TxID, len(envs))
	seqs := make([]uint64, len(envs))
	total := 0
	for i, env := range envs {
		hashes[i] = env.Tx.ID()
		total += env.Size()
	}
	// HLF: disseminate payloads to the other consensus nodes so they can
	// verify the proposal contents.
	if o.c.Cfg.Variant == HLF {
		share := &PayloadShare{Envs: envs}
		for i, ord := range o.c.Orderers {
			if i == o.idx {
				continue
			}
			o.ctx.Send(ord.ep.ID(), share)
		}
	}
	ordering := types.EncodeOrdering(seqs, hashes)
	o.ctx.Elapse(o.c.Cfg.Costs.Hash(total) + o.c.Cfg.Costs.BlockOverhead)
	v := consensus.Value{Digest: types.OrderingDigest(ordering), Data: ordering}
	o.proposeTime[v.Digest] = o.ctx.Now()
	o.replica.Propose(v)
}

// --- consensus.Host ---------------------------------------------------------

// Send implements consensus.Host.
func (o *Orderer) Send(to int, m consensus.Msg) {
	if to == o.idx {
		o.replica.Step(o.idx, m)
		return
	}
	o.ctx.Send(o.c.Orderers[to].ep.ID(), m)
}

// BroadcastCN implements consensus.Host.
func (o *Orderer) BroadcastCN(m consensus.Msg) {
	for i, ord := range o.c.Orderers {
		if i != o.idx {
			o.ctx.Send(ord.ep.ID(), m)
		}
	}
}

// After implements consensus.Host.
func (o *Orderer) After(d time.Duration, fn func()) {
	o.ctx.After(d, func(c2 *simnet.Context) { o.bind(c2, fn) })
}

// Elapse implements consensus.Host.
func (o *Orderer) Elapse(d time.Duration) { o.ctx.Elapse(d) }

// Sign implements consensus.Host.
func (o *Orderer) Sign(data []byte) crypto.Signature {
	sig, err := o.c.Scheme.Sign(ordererIdentity(o.idx), data)
	if err != nil {
		panic(err)
	}
	return sig
}

// VerifyNode implements consensus.Host.
func (o *Orderer) VerifyNode(node int, data []byte, sig crypto.Signature) bool {
	return o.c.Scheme.Verify(ordererIdentity(node), data, sig)
}

// ViewChangeMeta implements consensus.Host.
func (o *Orderer) ViewChangeMeta() []byte { return nil }

// ViewChanged implements consensus.Host.
func (o *Orderer) ViewChanged(view uint64, leader int, metas [][]byte) {
	o.vcOnce = false
	if o.idx == 0 {
		atomic.AddUint64(&o.c.Collector.ViewChanges, 1)
	}
}

// RandInt implements consensus.Host.
func (o *Orderer) RandInt(n int) int { return o.c.Sim.Rand().Intn(n) }

// ConsensusPhase implements consensus.PhaseRecorder: ordering-service
// protocol milestones land on the tracer's consensus track.
func (o *Orderer) ConsensusPhase(phase string, view, seq uint64) {
	if tr := o.c.Cfg.Tracer; tr != nil {
		tr.Phase(phase, int(o.ep.ID()), view, seq, o.ctx.Now())
	}
}

// Proposed implements consensus.Host (unused by the baselines).
func (o *Orderer) Proposed(seq uint64, v consensus.Value) {}

// Deliver implements consensus.Host: assemble the block and send it to
// every peer.
func (o *Orderer) Deliver(seq uint64, v consensus.Value, cert *types.Certificate) {
	_, hashes, err := types.DecodeOrdering(v.Data)
	if err != nil {
		// Null requests (a new leader's hole filler) become empty blocks:
		// peers commit strictly in order, so the chain must advance past
		// the sequence either way.
		hashes = nil
	}
	if at, ok := o.proposeTime[v.Digest]; ok {
		o.c.Collector.Phase("consensus", o.ctx.Now()-at)
		delete(o.proposeTime, v.Digest)
	}
	blk := &FabricBlock{Number: seq, Cert: cert}
	missing := 0
	invalid := 0
	checked := 0
	for _, h := range hashes {
		env, ok := o.byHash[h]
		if !ok {
			missing++
			continue
		}
		// HLF consensus nodes verify payloads (sampled) — a garbage
		// proposal triggers a view change (Table 4 S2).
		if o.c.Cfg.Variant == HLF && checked < 8 {
			checked++
			o.ctx.Elapse(o.c.Cfg.Costs.SigVerify)
			if !env.Tx.VerifySig(o.c.Scheme) {
				invalid++
			}
		}
		blk.Envs = append(blk.Envs, env)
	}
	if invalid > 0 && !o.vcOnce {
		o.vcOnce = true
		atomic.AddUint64(&o.c.Collector.RejectedTxns, uint64(invalid))
		o.replica.RequestViewChange()
	}
	o.delivered[seq] = blk
	for {
		b, ok := o.delivered[o.chainHeight]
		if !ok {
			return
		}
		// Only the block's view leader disseminates to peers.
		if o.c.policyLeader(b.Cert, o.replica) == o.idx {
			if tr := o.c.Cfg.Tracer; tr != nil {
				for _, env := range b.Envs {
					tr.TxStage(env.Tx.ID(), trace.StageAgreed, int(o.ep.ID()), o.ctx.Now())
				}
			}
			for _, org := range o.c.Peers {
				for _, p := range org {
					o.ctx.Send(p.ep.ID(), b)
				}
			}
		}
		// Retained past o.chainHeight: disseminated blocks stay in the
		// map so lagging peers can re-fetch them (FabricBlockFetch).
		o.chainHeight++
	}
}

// onBlockFetch re-sends committed blocks a lagging peer missed (crash or
// partition catch-up). Responses are capped so one request stays bounded;
// the peer re-requests as it advances.
func (o *Orderer) onBlockFetch(from simnet.NodeID, m *FabricBlockFetch) {
	to := m.To
	if to > o.chainHeight {
		to = o.chainHeight
	}
	const maxBlocks = 32
	if to > m.From+maxBlocks {
		to = m.From + maxBlocks
	}
	for n := m.From; n < to; n++ {
		if b, ok := o.delivered[n]; ok {
			o.ctx.Send(from, b)
		}
	}
}

// garbageEnvelope replaces an envelope with an invalid one (S2 attack).
func (o *Orderer) garbageEnvelope(orig *Envelope) *Envelope {
	junk := make([]byte, 32)
	o.c.Sim.Rand().Read(junk)
	tx := &types.Transaction{
		Client:   "forged",
		Nonce:    o.c.Sim.Rand().Uint64(),
		Contract: "smallbank",
		Fn:       "send_payment",
		Args:     [][]byte{junk},
		Orgs:     orig.Tx.Orgs,
		Padding:  orig.Tx.Padding,
		Sig:      junk,
	}
	return &Envelope{Tx: tx}
}
