// Package fabric implements the three baseline permissioned-blockchain
// frameworks the paper compares against (§6, Baseline), all built on the
// execute→order→validate workflow:
//
//   - HLF: Hyperledger Fabric with a BFT ordering service (BFT-SMaRt
//     stand-in). The ordering leader disseminates full transaction payloads
//     to all consensus nodes, which is why HLF survives a malicious leader
//     (Table 4 S2). Validation runs VSCC (endorsement signature checks) and
//     the sequential MVCC check on every peer.
//   - FastFabric: Gorenflo et al.'s re-architected Fabric: a single trusted
//     orderer sends only transaction hashes into a Raft consensus,
//     validation is pipelined so only the sequential MVCC check (~32.3k
//     txns/s, §6.1) sits on the critical path. Its trust assumptions make
//     the malicious-participant scenarios inapplicable (Table 4 N/A).
//   - StreamChain: processes transactions in a stream (block size 1),
//     trading peak throughput for very low latency (§6.1).
//
// All three share the endorsement flow: clients collect signed read-write
// sets from one peer per related organization, then submit the assembled
// envelope to the ordering service. Contending transactions endorsed in
// parallel abort in MVCC validation — the behaviour BIDL eliminates (§6.3).
package fabric

import (
	"fmt"
	"time"

	"github.com/bidl-framework/bidl/internal/cost"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/trace"
)

// Variant selects which baseline framework a cluster emulates.
type Variant int

// The three baseline frameworks.
const (
	HLF Variant = iota
	FastFabric
	StreamChain
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case FastFabric:
		return "fastfabric"
	case StreamChain:
		return "streamchain"
	default:
		return "hlf"
	}
}

// Config parameterizes a baseline cluster.
type Config struct {
	Variant Variant

	// NumOrgs organizations with PeersPerOrg peers each.
	NumOrgs     int
	PeersPerOrg int
	// NumOrderers ordering-service nodes tolerating F faults.
	NumOrderers int
	F           int
	// Protocol: "bft-smart" (PBFT) or "raft". Defaults: HLF → bft-smart,
	// FastFabric/StreamChain → raft (their built-in, §6).
	Protocol string

	BlockSize    int
	BlockTimeout time.Duration
	ViewTimeout  time.Duration

	Costs    cost.Model
	Topology simnet.Topology
	NumDCs   int
	Seed     int64

	// SimWorkers requests conservative parallel discrete-event execution
	// with this many worker goroutines; values below 2 keep the serial
	// engine. Orderers and clients share the hub partition, peer
	// organizations shard over the rest (see core.Config.SimWorkers).
	SimWorkers int

	// Tracer, when non-nil, records per-transaction lifecycle spans and
	// node/link telemetry (see internal/trace). Nil disables tracing.
	Tracer *trace.Tracer
}

// DefaultConfig mirrors evaluation setting A for the given variant.
func DefaultConfig(v Variant) Config {
	cfg := Config{
		Variant:      v,
		NumOrgs:      50,
		PeersPerOrg:  1,
		NumOrderers:  4,
		F:            1,
		BlockSize:    500,
		BlockTimeout: 10 * time.Millisecond,
		ViewTimeout:  150 * time.Millisecond,
		Costs:        cost.Default(),
		Topology:     simnet.DefaultTopology(),
		NumDCs:       1,
		Seed:         1,
	}
	switch v {
	case HLF:
		cfg.Protocol = "bft-smart"
	case FastFabric:
		cfg.Protocol = "raft"
	case StreamChain:
		cfg.Protocol = "raft"
		cfg.BlockSize = 1
		cfg.BlockTimeout = 500 * time.Microsecond
	}
	return cfg
}

func (c Config) quorum() int { return 2*c.F + 1 }

// Validate reports the first configuration error, after applying the same
// derivation NewCluster performs (NumOrderers = 3F+1 when zero). A Config
// that validates builds a runnable cluster; scenario.Validate surfaces
// these errors before any cluster is constructed.
func (c Config) Validate() error {
	if c.NumOrderers == 0 {
		c.NumOrderers = 3*c.F + 1
	}
	switch {
	case c.Variant != HLF && c.Variant != FastFabric && c.Variant != StreamChain:
		return fmt.Errorf("fabric: unknown variant %d", int(c.Variant))
	case c.NumOrgs < 1:
		return fmt.Errorf("fabric: NumOrgs must be >= 1 (got %d)", c.NumOrgs)
	case c.PeersPerOrg < 1:
		return fmt.Errorf("fabric: PeersPerOrg must be >= 1 (got %d)", c.PeersPerOrg)
	case c.NumOrderers < 1:
		return fmt.Errorf("fabric: NumOrderers must be >= 1 (got %d)", c.NumOrderers)
	case c.F < 0:
		return fmt.Errorf("fabric: F must be >= 0 (got %d)", c.F)
	case c.BlockSize < 1:
		return fmt.Errorf("fabric: BlockSize must be >= 1 (got %d)", c.BlockSize)
	case c.BlockTimeout < 0:
		return fmt.Errorf("fabric: BlockTimeout must be >= 0 (got %s)", c.BlockTimeout)
	case c.ViewTimeout < 0:
		return fmt.Errorf("fabric: ViewTimeout must be >= 0 (got %s)", c.ViewTimeout)
	case c.NumDCs < 0:
		return fmt.Errorf("fabric: NumDCs must be >= 0 (got %d)", c.NumDCs)
	case c.SimWorkers < 0:
		return fmt.Errorf("fabric: SimWorkers must be >= 0 (got %d)", c.SimWorkers)
	}
	switch c.Protocol {
	case "", "bft-smart", "raft":
	default:
		return fmt.Errorf("fabric: unknown protocol %q", c.Protocol)
	}
	// Raft is crash-fault tolerant (2F+1); the BFT ordering service needs
	// 3F+1.
	if c.F > 0 {
		need := 3*c.F + 1
		if c.Protocol == "raft" {
			need = 2*c.F + 1
		}
		if c.NumOrderers < need {
			return fmt.Errorf("fabric: NumOrderers %d cannot tolerate F=%d faults under %q (need >= %d)",
				c.NumOrderers, c.F, c.Protocol, need)
		}
	}
	if err := c.Topology.Validate(); err != nil {
		return fmt.Errorf("fabric: %w", err)
	}
	return nil
}

// endorsePerTxn returns the endorsement critical-path cost. FastFabric and
// StreamChain pipeline signature work off the critical path (FastFabric's
// re-architecture) and authenticate responses at MAC rate; HLF pays full
// signature costs.
func (c Config) endorsePerTxn() (verify, sign time.Duration) {
	switch c.Variant {
	case HLF:
		return c.Costs.SigVerify, c.Costs.SigSign
	default:
		return c.Costs.MACVerify, c.Costs.MACCompute
	}
}

// validatePerTxn returns the critical-path validation cost per transaction.
func (c Config) validatePerTxn() time.Duration {
	switch c.Variant {
	case HLF:
		// Sequential VSCC (batched endorsement verification) + MVCC.
		return c.Costs.MVCCCheck + c.Costs.SigVerify
	default:
		// FastFabric/StreamChain pipeline VSCC off the critical path;
		// the sequential MVCC check remains (§6.1: 32.3k txns/s).
		return c.Costs.MVCCCheck + 2*time.Microsecond
	}
}
