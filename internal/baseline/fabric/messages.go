package fabric

import (
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/types"
)

// EndorseReq asks a peer to simulate a transaction.
type EndorseReq struct {
	Tx *types.Transaction
}

// Size implements simnet.Message.
func (m *EndorseReq) Size() int { return 16 + m.Tx.Size() }

// Endorsement is one organization's signed simulation result.
type Endorsement struct {
	Org    string
	Digest crypto.Digest
	Sig    crypto.Signature
}

func endorsementBytes(id types.TxID, org string, digest crypto.Digest) []byte {
	buf := make([]byte, 0, 80)
	buf = append(buf, id[:]...)
	buf = append(buf, org...)
	return append(buf, digest[:]...)
}

// EndorseResp returns the endorsement and (from the first org) the
// read-write set the client assembles into the envelope.
type EndorseResp struct {
	TxID        types.TxID
	Endorsement Endorsement
	Reads       []ledger.Read
	Writes      []ledger.Write
	Aborted     bool
	// Err marks an endorsement failure (invalid transaction).
	Err bool
}

// Size implements simnet.Message.
func (m *EndorseResp) Size() int {
	n := 16 + 32 + 16 + 32 + 64
	for _, r := range m.Reads {
		n += len(r.Key) + 17
	}
	for _, w := range m.Writes {
		n += len(w.Key) + len(w.Val) + 2
	}
	return n
}

// Envelope is the client-assembled transaction proposal submitted to the
// ordering service: the transaction, its read-write set, and one
// endorsement per related organization.
type Envelope struct {
	Tx           *types.Transaction
	Reads        []ledger.Read
	Writes       []ledger.Write
	Aborted      bool
	Endorsements []Endorsement
}

// Size implements simnet.Message.
func (m *Envelope) Size() int {
	n := m.Tx.Size() + len(m.Endorsements)*(16+32+64)
	for _, r := range m.Reads {
		n += len(r.Key) + 17
	}
	for _, w := range m.Writes {
		n += len(w.Key) + len(w.Val) + 2
	}
	return n
}

// rwDigest hashes an endorsement result canonically.
func rwDigest(reads []ledger.Read, writes []ledger.Write, aborted bool) crypto.Digest {
	rw := ledger.RWSet{Reads: reads, Writes: writes, Aborted: aborted}
	return rw.Digest()
}

// SubmitEnvelopes carries client envelopes to the ordering service.
type SubmitEnvelopes struct {
	Envs []*Envelope
}

// Size implements simnet.Message.
func (m *SubmitEnvelopes) Size() int {
	n := 16
	for _, e := range m.Envs {
		n += e.Size()
	}
	return n
}

// PayloadShare is the HLF ordering leader's dissemination of full envelope
// payloads to the other consensus nodes (so they can verify proposals —
// the property FastFabric gives up, Table 4).
type PayloadShare struct {
	Envs []*Envelope
}

// Size implements simnet.Message.
func (m *PayloadShare) Size() int {
	n := 16
	for _, e := range m.Envs {
		n += e.Size()
	}
	return n
}

// FabricBlock is an ordered block delivered to peers for validation.
type FabricBlock struct {
	Number uint64
	Envs   []*Envelope
	Cert   *types.Certificate
}

// Size implements simnet.Message.
func (m *FabricBlock) Size() int {
	n := 24
	for _, e := range m.Envs {
		n += e.Size()
	}
	if m.Cert != nil {
		n += m.Cert.Size()
	}
	return n
}

// FabricBlockFetch asks an orderer to re-send committed blocks in
// [From, To) — the peer catch-up path after a crash or healed partition.
type FabricBlockFetch struct {
	From uint64
	To   uint64
}

// Size implements simnet.Message.
func (m *FabricBlockFetch) Size() int { return 32 }

// CommitNote notifies a client of transaction outcomes.
type CommitNote struct {
	Entries []CommitEntry
}

// CommitEntry is one transaction's outcome.
type CommitEntry struct {
	TxID    types.TxID
	Aborted bool
}

// Size implements simnet.Message.
func (m *CommitNote) Size() int { return 16 + len(m.Entries)*33 }
