package fabric

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/trace"
	"github.com/bidl-framework/bidl/internal/types"
)

// Peer is a Fabric peer: it endorses (simulates) transactions against its
// committed state and validates+commits ordered blocks (VSCC + MVCC).
type Peer struct {
	c        *Cluster
	org      int
	orgName  string
	idxInOrg int
	ep       *simnet.Endpoint

	state  *ledger.State
	blocks *ledger.BlockStore
	nondet *rand.Rand

	commitHeight uint64
	blockBuf     map[uint64]*FabricBlock
	committed    map[types.TxID]bool
	fetching     bool
}

// Endpoint returns the peer's simnet endpoint.
func (p *Peer) Endpoint() *simnet.Endpoint { return p.ep }

// State exposes the committed world state.
func (p *Peer) State() *ledger.State { return p.state }

// Blocks exposes the peer's ledger.
func (p *Peer) Blocks() *ledger.BlockStore { return p.blocks }

// CommitHeight returns the number of committed blocks.
func (p *Peer) CommitHeight() uint64 { return p.commitHeight }

func newPeer(c *Cluster, org, idxInOrg int, seed int64) *Peer {
	return &Peer{
		c:         c,
		org:       org,
		orgName:   orgName(org),
		idxInOrg:  idxInOrg,
		state:     ledger.NewState(),
		blocks:    ledger.NewBlockStore(),
		nondet:    rand.New(rand.NewSource(seed)),
		blockBuf:  make(map[uint64]*FabricBlock),
		committed: make(map[types.TxID]bool),
	}
}

// OnRestart implements simnet.Restarter: the fetch-cooldown timer died with
// the crash, so its guard flag must reset; the next delivered block re-opens
// the catch-up window.
func (p *Peer) OnRestart(ctx *simnet.Context) {
	p.fetching = false
}

// OnMessage implements simnet.Handler.
func (p *Peer) OnMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case *EndorseReq:
		p.endorse(ctx, from, m)
	case *FabricBlock:
		p.onBlock(ctx, from, m)
	}
}

// endorse simulates the transaction against committed state and signs the
// result (the execute phase of execute→order→validate).
func (p *Peer) endorse(ctx *simnet.Context, from simnet.NodeID, m *EndorseReq) {
	costs := p.c.Cfg.Costs
	verifyCost, signCost := p.c.Cfg.endorsePerTxn()
	ctx.Elapse(verifyCost) // client signature (cached/pipelined in FF)
	resp := &EndorseResp{TxID: m.Tx.ID()}
	if !m.Tx.VerifySig(p.c.Scheme) || !m.Tx.RelatedTo(p.orgName) {
		resp.Err = true
		ctx.Send(from, resp)
		return
	}
	// The corresponding org's lead peer is the single stage authority for
	// execution marks (mirrors the BIDL delegate rule).
	traceExec := p.c.Cfg.Tracer != nil && p.idxInOrg == 0 && m.Tx.CorrespondingOrg() == p.orgName
	if traceExec {
		p.c.Cfg.Tracer.TxStage(m.Tx.ID(), trace.StageExecStart, int(p.ep.ID()), ctx.Now())
	}
	ctx.Elapse(costs.ExecTxn)
	rw := p.c.Registry.Execute(p.state, m.Tx, p.nondet)
	if traceExec {
		p.c.Cfg.Tracer.TxStage(m.Tx.ID(), trace.StageExecuted, int(p.ep.ID()), ctx.Now())
	}
	resp.Reads, resp.Writes, resp.Aborted = rw.Reads, rw.Writes, rw.Aborted
	dig := rwDigest(rw.Reads, rw.Writes, rw.Aborted)
	ctx.Elapse(signCost)
	sig, err := p.c.Scheme.Sign(crypto.Identity(p.orgName), endorsementBytes(m.Tx.ID(), p.orgName, dig))
	if err != nil {
		resp.Err = true
	} else {
		resp.Endorsement = Endorsement{Org: p.orgName, Digest: dig, Sig: sig}
	}
	ctx.Send(from, resp)
}

// onBlock buffers and processes ordered blocks in order.
func (p *Peer) onBlock(ctx *simnet.Context, from simnet.NodeID, m *FabricBlock) {
	if m.Number < p.commitHeight {
		return
	}
	if _, ok := p.blockBuf[m.Number]; ok {
		return
	}
	// Verify the ordering certificate when present (BFT ordering).
	if m.Cert != nil {
		ctx.Elapse(p.c.Cfg.Costs.SigVerify + time.Duration(p.c.Cfg.quorum())*p.c.Cfg.Costs.MACVerify)
		if !m.Cert.Verify(p.c.Scheme, ordererIdentity, p.c.Cfg.quorum()) {
			return
		}
	}
	p.blockBuf[m.Number] = m
	for {
		blk, ok := p.blockBuf[p.commitHeight]
		if !ok {
			p.maybeFetch(ctx, from, p.topBuffered())
			return
		}
		p.validateAndCommit(ctx, blk)
		delete(p.blockBuf, p.commitHeight)
		p.commitHeight++
	}
}

// topBuffered returns one past the highest buffered block number — the
// exclusive upper bound of the gap a fetch needs to cover (the buffered
// blocks themselves need no re-send).
func (p *Peer) topBuffered() uint64 {
	top := p.commitHeight
	for n := range p.blockBuf {
		if n > top {
			top = n
		}
	}
	return top
}

// maybeFetch requests the missing block range [commitHeight, top) from the
// orderer src when delivery left a gap (the peer was down or partitioned
// while blocks went out). A cooldown guard bounds request rate; when it
// expires the gap is re-checked so a capped response chain keeps advancing
// even if no fresh block arrives to re-trigger detection.
func (p *Peer) maybeFetch(ctx *simnet.Context, src simnet.NodeID, top uint64) {
	if p.fetching || top <= p.commitHeight {
		return
	}
	p.fetching = true
	ctx.Send(src, &FabricBlockFetch{From: p.commitHeight, To: top})
	cool := 2 * p.c.Cfg.BlockTimeout
	if cool <= 0 {
		cool = 20 * time.Millisecond
	}
	ctx.After(cool, func(c2 *simnet.Context) {
		p.fetching = false
		p.maybeFetch(c2, src, p.topBuffered())
	})
}

// validateAndCommit is the validate phase: VSCC endorsement checks and the
// sequential MVCC check, then commit of valid write sets. Contending
// transactions endorsed against the same snapshot abort here (§6.3).
func (p *Peer) validateAndCommit(ctx *simnet.Context, blk *FabricBlock) {
	costs := p.c.Cfg.Costs
	start := ctx.Now()
	ctx.Elapse(costs.BlockOverhead)
	notices := make(map[crypto.Identity][]CommitEntry)
	for i, env := range blk.Envs {
		id := env.Tx.ID()
		if p.committed[id] {
			continue
		}
		p.committed[id] = true
		ctx.Elapse(p.c.Cfg.validatePerTxn())
		aborted := env.Aborted
		if !aborted && !p.validateEndorsements(env) {
			aborted = true
			atomic.AddUint64(&p.c.Collector.RejectedTxns, 1)
		}
		if !aborted && !ledger.ValidateMVCC(p.state, &ledger.RWSet{Reads: env.Reads}) {
			aborted = true
			atomic.AddUint64(&p.c.Collector.MVCCAborts, 1)
		}
		if !aborted {
			ctx.Elapse(costs.CommitTxn)
			p.state.Apply(env.Writes, ledger.Version{Block: blk.Number, Tx: i})
		}
		// The first related org's lead peer notifies the client.
		if p.idxInOrg == 0 && env.Tx.CorrespondingOrg() == p.orgName {
			notices[env.Tx.Client] = append(notices[env.Tx.Client], CommitEntry{TxID: id, Aborted: aborted})
			if tr := p.c.Cfg.Tracer; tr != nil {
				// Block arrival at the committing peer, then the durable
				// commit after VSCC+MVCC, on the same stage authority.
				tr.TxStage(id, trace.StageDelivered, int(p.ep.ID()), start)
				tr.TxStage(id, trace.StagePersisted, int(p.ep.ID()), ctx.Now())
			}
		}
	}
	// Ledger append.
	b := &types.Block{Number: blk.Number, Prev: p.blocks.LastDigest()}
	for _, env := range blk.Envs {
		b.Hashes = append(b.Hashes, env.Tx.ID())
		b.Seqs = append(b.Seqs, 0)
	}
	if err := p.blocks.Append(b); err != nil {
		p.c.safetyViolation("peer block append: " + err.Error())
	}
	p.c.Collector.Phase("validate", ctx.Now()-start)

	clients := make([]crypto.Identity, 0, len(notices))
	for cl := range notices {
		clients = append(clients, cl)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	for _, cl := range clients {
		if ep, ok := p.c.clientEps[cl]; ok {
			ctx.Send(ep, &CommitNote{Entries: notices[cl]})
		}
	}
}

// validateEndorsements checks the envelope carries a valid endorsement from
// every related organization (VSCC). Signature-verification cost is part of
// validatePerTxn.
func (p *Peer) validateEndorsements(env *Envelope) bool {
	if len(env.Endorsements) != len(env.Tx.Orgs) {
		return false
	}
	dig := rwDigest(env.Reads, env.Writes, env.Aborted)
	seen := make(map[string]bool, len(env.Endorsements))
	for _, e := range env.Endorsements {
		if seen[e.Org] || !env.Tx.RelatedTo(e.Org) {
			return false
		}
		seen[e.Org] = true
		if e.Digest != dig {
			return false
		}
		if !p.c.Scheme.Verify(crypto.Identity(e.Org), endorsementBytes(env.Tx.ID(), e.Org, e.Digest), e.Sig) {
			return false
		}
	}
	return true
}
