package fabric

import (
	"sort"
	"sync/atomic"
	"time"

	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/trace"
	"github.com/bidl-framework/bidl/internal/types"
)

// pendingTx tracks one client transaction through the endorsement round.
type pendingTx struct {
	tx        *types.Transaction
	resps     map[string]*EndorseResp
	submitted bool
	start     time.Duration
}

// Client drives the execute→order→validate workflow: it requests
// endorsements from one peer per related organization, assembles the
// envelope, submits it to the ordering service, and waits for the commit
// notification (client-perceived latency, §6).
type Client struct {
	c  *Cluster
	id crypto.Identity
	ep *simnet.Endpoint

	pending map[types.TxID]*pendingTx
}

func newClient(c *Cluster, id crypto.Identity) *Client {
	return &Client{c: c, id: id, pending: make(map[types.TxID]*pendingTx)}
}

// Endpoint returns the client's simnet endpoint.
func (cl *Client) Endpoint() *simnet.Endpoint { return cl.ep }

// Pending returns how many transactions are in flight.
func (cl *Client) Pending() int { return len(cl.pending) }

// OnMessage implements simnet.Handler.
func (cl *Client) OnMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case *EndorseResp:
		cl.onEndorse(ctx, m)
	case *CommitNote:
		for _, e := range m.Entries {
			if _, ok := cl.pending[e.TxID]; !ok {
				continue
			}
			delete(cl.pending, e.TxID)
			cl.c.Collector.Committed(e.TxID, ctx.Now(), e.Aborted)
			if tr := cl.c.Cfg.Tracer; tr != nil {
				tr.TxStage(e.TxID, trace.StageNotified, int(cl.ep.ID()), ctx.Now())
			}
		}
	}
}

// submit starts the endorsement round for a batch of transactions.
func (cl *Client) submit(ctx *simnet.Context, txns []*types.Transaction) {
	for _, tx := range txns {
		id := tx.ID()
		if _, ok := cl.pending[id]; ok {
			continue
		}
		cl.pending[id] = &pendingTx{tx: tx, resps: make(map[string]*EndorseResp), start: ctx.Now()}
		cl.c.Collector.Submitted(id, ctx.Now())
		if tr := cl.c.Cfg.Tracer; tr != nil {
			tr.TxStage(id, trace.StageSubmit, int(cl.ep.ID()), ctx.Now())
		}
		for _, org := range tx.Orgs {
			o := orgIdx(org)
			if o < 0 || o >= len(cl.c.Peers) || len(cl.c.Peers[o]) == 0 {
				continue
			}
			// Endorse at the organization's lead peer.
			ctx.Send(cl.c.Peers[o][0].ep.ID(), &EndorseReq{Tx: tx})
		}
	}
}

func orgIdx(name string) int {
	if len(name) < 4 || name[:3] != "org" {
		return -1
	}
	v := 0
	for _, ch := range name[3:] {
		if ch < '0' || ch > '9' {
			return -1
		}
		v = v*10 + int(ch-'0')
	}
	return v
}

// onEndorse collects endorsements; once every related org responded, the
// envelope is assembled and submitted for ordering.
func (cl *Client) onEndorse(ctx *simnet.Context, m *EndorseResp) {
	pt, ok := cl.pending[m.TxID]
	if !ok || pt.submitted {
		return
	}
	if m.Err {
		// Endorsement failure: the transaction cannot proceed.
		pt.submitted = true
		delete(cl.pending, m.TxID)
		cl.c.Collector.Committed(m.TxID, ctx.Now(), true)
		return
	}
	pt.resps[m.Endorsement.Org] = m
	if len(pt.resps) < len(pt.tx.Orgs) {
		return
	}
	// All endorsements in: check result agreement. Non-deterministic
	// transactions produce mismatching endorsements and are early-aborted
	// (FastFabric behaviour, §6.3) — they never reach ordering.
	orgs := make([]string, 0, len(pt.resps))
	for o := range pt.resps {
		orgs = append(orgs, o)
	}
	sort.Strings(orgs)
	first := pt.resps[orgs[0]]
	for _, o := range orgs[1:] {
		if pt.resps[o].Endorsement.Digest != first.Endorsement.Digest {
			pt.submitted = true
			delete(cl.pending, m.TxID)
			atomic.AddUint64(&cl.c.Collector.NondetAborts, 1)
			cl.c.Collector.Committed(m.TxID, ctx.Now(), true)
			return
		}
	}
	env := &Envelope{
		Tx:      pt.tx,
		Reads:   first.Reads,
		Writes:  first.Writes,
		Aborted: first.Aborted,
	}
	for _, o := range orgs {
		env.Endorsements = append(env.Endorsements, pt.resps[o].Endorsement)
	}
	pt.submitted = true
	cl.c.Collector.Phase("endorse", ctx.Now()-pt.start)
	ctx.Send(cl.c.Orderers[cl.c.LeaderIndex()].ep.ID(), &SubmitEnvelopes{Envs: []*Envelope{env}})
}
