package fabric

import (
	"strings"
	"testing"
	"time"
)

// TestConfigValidate covers every rejection class of Config.Validate,
// including the per-protocol quorum feasibility rule (raft is CFT and only
// needs 2F+1 orderers; the BFT ordering service needs 3F+1).
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string // substring of the expected error; "" = valid
	}{
		{"default-hlf", func(c *Config) {}, ""},
		{"derive-orderers-from-f", func(c *Config) { c.NumOrderers = 0; c.F = 2 }, ""},
		{"unknown-variant", func(c *Config) { c.Variant = Variant(99) }, "unknown variant"},
		{"zero-orgs", func(c *Config) { c.NumOrgs = 0 }, "NumOrgs"},
		{"zero-peers", func(c *Config) { c.PeersPerOrg = 0 }, "PeersPerOrg"},
		{"negative-f", func(c *Config) { c.F = -1 }, "F must be >= 0"},
		{"zero-block-size", func(c *Config) { c.BlockSize = 0 }, "BlockSize"},
		{"negative-block-timeout", func(c *Config) { c.BlockTimeout = -time.Millisecond }, "BlockTimeout"},
		{"negative-view-timeout", func(c *Config) { c.ViewTimeout = -1 }, "ViewTimeout"},
		{"negative-dcs", func(c *Config) { c.NumDCs = -1 }, "NumDCs"},
		{"unknown-protocol", func(c *Config) { c.Protocol = "pbft" }, "unknown protocol"},
		{"bft-quorum-infeasible", func(c *Config) { c.NumOrderers = 5; c.F = 2 }, "cannot tolerate"},
		{"raft-quorum-feasible", func(c *Config) { c.Protocol = "raft"; c.NumOrderers = 5; c.F = 2 }, ""},
		{"raft-quorum-infeasible", func(c *Config) { c.Protocol = "raft"; c.NumOrderers = 4; c.F = 2 }, "cannot tolerate"},
		{"loss-rate-range", func(c *Config) { c.Topology.LossRate = 1 }, "LossRate"},
		{"negative-jitter", func(c *Config) { c.Topology.Jitter = -1 }, "Jitter"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(HLF)
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}
