package bench

import (
	"testing"

	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/workload"
)

// The workload microbenchmarks pin the O(1)-memory guarantees of the
// million-user workload layer: prepopulating a node's world state must cost
// the same at 10⁴ and 10⁷ accounts (the copy-on-write base layer is shared,
// never materialized), and generating one transaction must stay constant-cost
// under Zipf skew, contention, and settlement flows. Like PipelineHotPath,
// the functions live outside the test files so cmd/bidl-perfgate can run
// them with testing.Benchmark and gate bytes/op + allocs/op against the
// committed BENCH_workload.json baseline; Benchmark wrappers in
// workload_bench_test.go keep the ordinary `go test -bench` path.

// PrepopulateBenchAccounts is the account count the gated PrepopulateBench
// entry runs at. The curve (PrepopulateCurve) separately proves the cost is
// flat in this number.
const PrepopulateBenchAccounts = 1_000_000

// benchSink keeps benchmark results live so the compiler cannot elide the
// measured work.
var benchSink any

// PrepopulateBench measures creating and prepopulating one node's world
// state at a million accounts with settlement fee schedules enabled —
// exactly what every node pays at cluster construction. With the shared
// copy-on-write base this is O(1): a fresh state plus one pointer.
func PrepopulateBench(b *testing.B) { prepopulateBenchAt(b, PrepopulateBenchAccounts) }

func prepopulateBenchAt(b *testing.B, accounts int) {
	w := workload.DefaultConfig(4)
	w.Seed = 1
	w.Accounts = accounts
	w.SettlementRatio = 0.2 // fee schedule joins the base layer
	gen := workload.NewGenerator(w, crypto.NewHMACScheme([]byte("bench")))
	gen.Prepopulate(ledger.NewState()) // build the shared base outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	var st *ledger.State
	for i := 0; i < b.N; i++ {
		st = ledger.NewState()
		gen.Prepopulate(st)
	}
	b.StopTimer()
	benchSink = st
	if want := 2*accounts + 4; st.Len() != want {
		b.Fatalf("prepopulated state has %d entries, want %d", st.Len(), want)
	}
}

// GeneratorNextBench measures producing one signed transaction from the
// steady-state generator with every streaming feature engaged: Zipf(1.5)
// account skew over a million accounts, 20% hot-set contention, and 20%
// multi-step settlement flows. Cost must not depend on Accounts — names
// render lazily and draws are O(1).
func GeneratorNextBench(b *testing.B) {
	w := workload.DefaultConfig(4)
	w.Seed = 1
	w.Accounts = PrepopulateBenchAccounts
	w.ZipfS = 1.5
	w.ContentionRatio = 0.2
	w.SettlementRatio = 0.2
	gen := workload.NewGenerator(w, crypto.NewHMACScheme([]byte("bench")))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = gen.Next()
	}
}

// PrepopPoint is one account count on the memory-per-account curve.
type PrepopPoint struct {
	Accounts    int     `json:"accounts"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// prepopCurveCounts spans three decades; the gate's flatness ratio divides
// the most expensive point by the cheapest, so any O(accounts) regression in
// prepopulation shows up as a ~1000x ratio against a ~1.0 baseline.
var prepopCurveCounts = []int{10_000, 100_000, 1_000_000, 10_000_000}

// PrepopulateCurve measures per-node prepopulation cost across account
// counts. With the copy-on-write base the curve is flat — the O(1)-memory
// claim, stated as data.
func PrepopulateCurve() []PrepopPoint {
	pts := make([]PrepopPoint, 0, len(prepopCurveCounts))
	for _, n := range prepopCurveCounts {
		n := n
		r := testing.Benchmark(func(b *testing.B) { prepopulateBenchAt(b, n) })
		pts = append(pts, PrepopPoint{
			Accounts:    n,
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
		})
	}
	return pts
}

// Flatness reduces a curve to its gate metric: max bytes/op over min
// bytes/op. O(1) prepopulation keeps it ≈ 1.
func Flatness(pts []PrepopPoint) float64 {
	if len(pts) == 0 {
		return 0
	}
	min, max := pts[0].BytesPerOp, pts[0].BytesPerOp
	for _, p := range pts[1:] {
		if p.BytesPerOp < min {
			min = p.BytesPerOp
		}
		if p.BytesPerOp > max {
			max = p.BytesPerOp
		}
	}
	if min == 0 {
		return 1
	}
	return max / min
}
