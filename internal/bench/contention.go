package bench

import (
	"fmt"
	"time"

	"github.com/bidl-framework/bidl/internal/scenario"
)

// --- Contention: skew × load shape (extension) ------------------------------

// The contention experiment stresses what §6.3's fixed hot-set sweep cannot:
// realistic access skew (Zipf account popularity), realistic arrival
// processes (diurnal and bursty load shapes), closed-loop clients with
// backpressure, and the multi-step settlement contract — on BIDL and both
// Fabric baselines. It is the golden-gated face of the million-user
// workload layer.

func init() {
	register(Experiment{
		ID:    "contention",
		Paper: "Skew × load shape (extension)",
		Description: "BIDL vs FastFabric vs HLF under uniform and Zipf(1.5) account " +
			"skew crossed with constant/diurnal/burst open-loop shapes and " +
			"closed-loop clients, with 20% multi-step settlement flows.",
		Scenarios: contentionScenarios,
		Table:     contentionTable,
	})
}

type contentionPoint struct {
	skewName string
	zipfS    float64
	shape    string // scenario shape name, or "closed" for closed-loop
}

func contentionPoints() []contentionPoint {
	var points []contentionPoint
	for _, skew := range []struct {
		name string
		s    float64
	}{{"uniform", 0}, {"zipf1.5", 1.5}} {
		for _, shape := range []string{scenario.ShapeConstant, scenario.ShapeDiurnal, scenario.ShapeBurst, "closed"} {
			points = append(points, contentionPoint{skew.name, skew.s, shape})
		}
	}
	return points
}

var contentionFrameworks = []struct {
	name string
	rate float64
}{
	{scenario.FrameworkBIDL, satBIDL * 3 / 4},
	{scenario.FrameworkFastFabric, satFF * 3 / 4},
	{scenario.FrameworkHLF, satHLF * 3 / 4},
}

func contentionScenarios(o Options) []scenario.Scenario {
	window := o.scaled(1 * time.Second)
	var specs []scenario.Scenario
	for _, p := range contentionPoints() {
		for _, fw := range contentionFrameworks {
			sp := spec(fw.name, fmt.Sprintf("%s, %s skew, %s load", fw.name, p.skewName, p.shape), o, 0, 0)
			sp.Workload.ZipfS = p.zipfS
			sp.Workload.Settlement = 0.2
			sp.Load = load(o.rate(fw.rate), window)
			if p.shape == "closed" {
				// Closed-loop demand follows the constant curve; the
				// controller withholds whatever the cluster cannot absorb.
				sp.Load.ClosedLoop = &scenario.ClosedLoopSpec{MaxInFlight: 512}
			} else {
				sp.Load.Shape = p.shape
			}
			specs = append(specs, sp)
		}
	}
	return specs
}

func contentionTable(o Options, res []Result) *Table {
	t := &Table{
		ID:    "contention",
		Title: "Skew × load shape: throughput and aborts (settlement 20%)",
		Columns: []string{"skew", "shape", "bidl_ktps", "bidl_abort",
			"ff_ktps", "ff_abort", "hlf_ktps", "hlf_abort", "bidl_submitted"},
	}
	nf := len(contentionFrameworks)
	for i, p := range contentionPoints() {
		b, f, h := res[nf*i], res[nf*i+1], res[nf*i+2]
		t.AddRow(p.skewName, p.shape,
			ktps(b.Throughput), pct(b.AbortRate),
			ktps(f.Throughput), pct(f.AbortRate),
			ktps(h.Throughput), pct(h.AbortRate),
			fmt.Sprintf("%d", b.Submitted))
	}
	t.Notes = append(t.Notes,
		"Zipf skew concentrates writes on popular accounts: BIDL holds throughput via speculative re-execution while the baselines' MVCC abort rates grow",
		"bidl_submitted < open-loop demand on closed rows shows backpressure withholding load the cluster cannot absorb")
	return t
}
