package bench

import (
	"math"
	"testing"
	"time"
)

// TestScheduleTicksExactTotal pins the anti-drift contract: for any rate,
// the total scheduled over a window equals round(rate * window_seconds)
// exactly. The seed implementation carried a running float accumulator whose
// rounding error could compound across thousands of ticks and under-deliver.
func TestScheduleTicksExactTotal(t *testing.T) {
	cases := []struct {
		rate   float64
		window time.Duration
	}{
		{3333.3, 7 * time.Second}, // awkward repeating fraction
		{999.9, 7 * time.Second},
		{44000, 1200 * time.Millisecond},
		{0.1, 30 * time.Second}, // far below one txn per tick
		{7, 999 * time.Millisecond},
		{123456.78, 2 * time.Second},
	}
	for _, tc := range cases {
		total := ScheduleTicks(tc.rate, tc.window, func(time.Duration, int) {})
		want := int(math.Round(tc.rate * tc.window.Seconds()))
		if total != want {
			t.Errorf("rate %.2f over %v: scheduled %d, want exactly %d",
				tc.rate, tc.window, total, want)
		}
	}
}

// TestScheduleTicksMonotonic checks ticks arrive in order, inside the
// window, with positive counts summing to the returned total.
func TestScheduleTicksMonotonic(t *testing.T) {
	last := time.Duration(-1)
	sum := 0
	total := ScheduleTicks(3333.3, 2*time.Second, func(at time.Duration, n int) {
		if at <= last {
			t.Fatalf("tick at %v not after previous %v", at, last)
		}
		if at >= 2*time.Second {
			t.Fatalf("tick at %v outside window", at)
		}
		if n <= 0 {
			t.Fatalf("non-positive tick count %d", n)
		}
		last = at
		sum += n
	})
	if sum != total {
		t.Fatalf("tick counts sum to %d, returned total %d", sum, total)
	}
}
