package bench

import (
	"fmt"
	"time"

	"github.com/bidl-framework/bidl/internal/scenario"
)

// Every experiment below is pure data over the scenario layer: Scenarios
// expands the sweep into declarative scenario specs (each builds its own
// cluster from the experiment seed via the shared scenario driver), and
// Table assembles the rows from the gathered results in sweep order.
// Nothing here touches a cluster directly, so serial and parallel
// execution produce byte-identical tables, and `bidl-bench
// -dump-scenarios` can emit every sweep as JSON.

// Default per-framework saturation offered loads (txns/s) in evaluation
// setting A, calibrated so each framework runs at its natural capacity:
// BIDL ≈ 40-45k (sequencer-bound), FastFabric ≈ 30k (MVCC-bound),
// HLF ≈ 8-9k (VSCC+MVCC-bound), StreamChain ≈ 2-3k (per-txn ordering).
const (
	satBIDL   = 44000
	satFF     = 30000
	satHLF    = 10000
	satStream = 3500
)

// spec starts a sweep point: framework + experiment seed + the standard
// workload (10000 accounts = 1% hot set of 100, per the paper's setup).
// An otherwise-empty spec compiles to the paper's evaluation setting A.
func spec(framework, name string, o Options, contention, nondet float64) scenario.Scenario {
	return scenario.Scenario{
		Name:      name,
		Framework: framework,
		Seed:      o.Seed,
		Workload:  scenario.WorkloadSpec{Accounts: 10000, Contention: contention, Nondet: nondet},
	}
}

// settingB sizes the scalability setting: one consensus node per org.
func settingB(orgs, nnPerOrg int) scenario.NodesSpec {
	f := (orgs - 1) / 3
	if f < 1 {
		f = 1
	}
	return scenario.NodesSpec{Orgs: orgs, PerOrg: nnPerOrg, Consensus: orgs, Faults: f}
}

func load(rate float64, window time.Duration) scenario.LoadSpec {
	return scenario.LoadSpec{Rate: rate, Window: scenario.Duration(window)}
}

// --- Figure 3: performance vs contention ratio ------------------------------

func init() {
	register(Experiment{
		ID:    "fig3",
		Paper: "Figure 3",
		Description: "Throughput, latency, and abort rate vs contention ratio " +
			"(0-50%) for BIDL, FastFabric, and HLF; 4 consensus nodes, 50 normal nodes.",
		Scenarios: fig3Scenarios,
		Table:     fig3Table,
	})
}

var fig3Ratios = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}

func fig3Scenarios(o Options) []scenario.Scenario {
	window := o.scaled(1200 * time.Millisecond)
	var specs []scenario.Scenario
	for _, cr := range fig3Ratios {
		for _, fw := range []struct {
			name string
			rate float64
		}{
			{scenario.FrameworkBIDL, satBIDL},
			{scenario.FrameworkFastFabric, satFF},
			{scenario.FrameworkHLF, satHLF},
		} {
			sp := spec(fw.name, fmt.Sprintf("%s, contention %.0f%%", fw.name, cr*100), o, cr, 0)
			sp.Load = load(o.rate(fw.rate), window)
			specs = append(specs, sp)
		}
	}
	return specs
}

func fig3Table(o Options, res []Result) *Table {
	t := &Table{
		ID:    "fig3",
		Title: "Performance under contention (setting A)",
		Columns: []string{"contention", "bidl_ktps", "bidl_ms", "bidl_abort",
			"ff_ktps", "ff_ms", "ff_abort", "hlf_ktps", "hlf_ms", "hlf_abort"},
	}
	for i, cr := range fig3Ratios {
		b, f, h := res[3*i], res[3*i+1], res[3*i+2]
		t.AddRow(pct(cr),
			ktps(b.Throughput), ms(b.AvgLatency), pct(b.AbortRate),
			ktps(f.Throughput), ms(f.AvgLatency), pct(f.AbortRate),
			ktps(h.Throughput), ms(h.AvgLatency), pct(h.AbortRate))
	}
	t.Notes = append(t.Notes,
		"paper: BIDL 40.1k txns/s with zero aborts at 50% contention; FF 2.2x lower with 37.7% aborts")
	return t
}

// --- Figure 5: throughput vs latency ----------------------------------------

func init() {
	register(Experiment{
		ID:    "fig5",
		Paper: "Figure 5",
		Description: "Throughput vs latency curves in the fault-free case for " +
			"BIDL, FastFabric, and StreamChain (offered-load sweep).",
		Scenarios: fig5Scenarios,
		Table:     fig5Table,
	})
}

type fig5Point struct {
	name string
	rate float64
}

func fig5Points() []fig5Point {
	var points []fig5Point
	addSweep := func(name string, rates []float64) {
		for _, r := range rates {
			points = append(points, fig5Point{name, r})
		}
	}
	addSweep("bidl", []float64{5000, 10000, 20000, 30000, 40000, 44000})
	addSweep("fastfabric", []float64{5000, 10000, 20000, 26000, 30000})
	addSweep("streamchain", []float64{500, 1000, 2000, 3000, 3500})
	return points
}

func fig5Scenarios(o Options) []scenario.Scenario {
	window := o.scaled(1200 * time.Millisecond)
	points := fig5Points()
	specs := make([]scenario.Scenario, len(points))
	for i, p := range points {
		sp := spec(p.name, fmt.Sprintf("%s at %.0f txns/s", p.name, o.rate(p.rate)), o, 0, 0)
		sp.Load = load(o.rate(p.rate), window)
		specs[i] = sp
	}
	return specs
}

func fig5Table(o Options, res []Result) *Table {
	t := &Table{
		ID:      "fig5",
		Title:   "Throughput vs latency (fault-free, setting A)",
		Columns: []string{"framework", "offered_ktps", "achieved_ktps", "avg_ms", "p99_ms"},
	}
	for i, p := range fig5Points() {
		t.AddRow(p.name, ktps(o.rate(p.rate)), ktps(res[i].Throughput), ms(res[i].AvgLatency), ms(res[i].P99))
	}
	t.Notes = append(t.Notes,
		"paper: StreamChain lowest latency at low throughput; BIDL dominates both throughput and latency at scale")
	return t
}

// --- Figure 6: BIDL scalability across BFT protocols ------------------------

func init() {
	register(Experiment{
		ID:    "fig6",
		Paper: "Figure 6",
		Description: "BIDL latency with four BFT protocols (BFT-SMaRt, Zyzzyva, " +
			"SBFT, HotStuff) as organizations scale 4..97 (setting B: 1 CN + 1 NN per org).",
		Scenarios: fig6Scenarios,
		Table:     fig6Table,
	})
}

var fig6Orgs = []int{4, 7, 13, 25, 49, 97}

// fig6Protos must match core's protocol names (bft-smart, zyzzyva, sbft,
// hotstuff) in table-column order.
var fig6Protos = []string{"bft-smart", "zyzzyva", "sbft", "hotstuff"}

func fig6Scenarios(o Options) []scenario.Scenario {
	window := o.scaled(1 * time.Second)
	var specs []scenario.Scenario
	for _, orgs := range fig6Orgs {
		for _, proto := range fig6Protos {
			sp := spec(scenario.FrameworkBIDL, fmt.Sprintf("%s with %d orgs", proto, orgs), o, 0, 0)
			sp.Protocol = proto
			sp.Nodes = settingB(orgs, 1)
			sp.Load = load(o.rate(20000), window)
			specs = append(specs, sp)
		}
	}
	return specs
}

func fig6Table(o Options, res []Result) *Table {
	t := &Table{
		ID:      "fig6",
		Title:   "BIDL latency vs #organizations per BFT protocol (ms)",
		Columns: []string{"orgs", "bft-smart", "zyzzyva", "sbft", "hotstuff"},
	}
	for i, orgs := range fig6Orgs {
		row := []string{fmt.Sprintf("%d", orgs)}
		for j := range fig6Protos {
			row = append(row, ms(res[i*len(fig6Protos)+j].AvgLatency))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: latency first decreases (execution parallelism grows) then increases gently (consensus cost)")
	return t
}

// --- Tables 2 and 3: latency breakdowns -------------------------------------

func init() {
	register(Experiment{
		ID:    "table2",
		Paper: "Table 2",
		Description: "FastFabric-SMaRt end-to-end latency breakdown " +
			"(endorse/consensus/validate) vs #organizations.",
		Scenarios: table2Scenarios,
		Table:     table2Table,
	})
	register(Experiment{
		ID:    "table3",
		Paper: "Table 3",
		Description: "BIDL-SMaRt end-to-end latency breakdown " +
			"(consensus/ver&exec/persist/commit) vs #organizations.",
		Scenarios: table3Scenarios,
		Table:     table3Table,
	})
}

func table2Scenarios(o Options) []scenario.Scenario {
	window := o.scaled(1 * time.Second)
	specs := make([]scenario.Scenario, len(fig6Orgs))
	for i, orgs := range fig6Orgs {
		sp := spec(scenario.FrameworkFastFabric, fmt.Sprintf("%d orgs", orgs), o, 0, 0)
		sp.Protocol = "bft-smart" // the paper's modified FastFabric-SMaRt
		sp.Nodes = settingB(orgs, 1)
		sp.Load = load(o.rate(15000), window)
		specs[i] = sp
	}
	return specs
}

func table2Table(o Options, res []Result) *Table {
	t := &Table{
		ID:      "table2",
		Title:   "FastFabric-SMaRt latency breakdown (ms)",
		Columns: []string{"orgs", "P1_endorse", "P2_consensus", "P3_validate", "end_to_end"},
	}
	for i, orgs := range fig6Orgs {
		endorse := res[i].Collector.PhaseAvg("endorse")
		cons := res[i].Collector.PhaseAvg("consensus")
		validate := res[i].Collector.PhaseAvg("validate")
		t.AddRow(fmt.Sprintf("%d", orgs), ms(endorse), ms(cons), ms(validate), ms(endorse+cons+validate))
	}
	t.Notes = append(t.Notes,
		"paper (4→97 orgs): endorse 9.2→6.5, consensus 10.4→16.2, validate 51.5→6.9, e2e 71.0→29.6")
	return t
}

func table3Scenarios(o Options) []scenario.Scenario {
	window := o.scaled(1 * time.Second)
	specs := make([]scenario.Scenario, len(fig6Orgs))
	for i, orgs := range fig6Orgs {
		sp := spec(scenario.FrameworkBIDL, fmt.Sprintf("%d orgs", orgs), o, 0, 0)
		sp.Nodes = settingB(orgs, 1)
		sp.Load = load(o.rate(15000), window)
		specs[i] = sp
	}
	return specs
}

func table3Table(o Options, res []Result) *Table {
	t := &Table{
		ID:      "table3",
		Title:   "BIDL-SMaRt latency breakdown (ms)",
		Columns: []string{"orgs", "P1_consensus", "P2_ver_exec", "P3_persist", "P4_execution", "P5_commit", "end_to_end"},
	}
	for i, orgs := range fig6Orgs {
		cons := res[i].Collector.PhaseAvg("consensus")
		verexec := res[i].Collector.PhaseAvg("verexec")
		persist := res[i].Collector.PhaseAvg("persist")
		commit := res[i].Collector.PhaseAvg("commit")
		exec := verexec + persist
		e2e := cons
		if exec > e2e {
			e2e = exec
		}
		e2e += commit
		t.AddRow(fmt.Sprintf("%d", orgs), ms(cons), ms(verexec), ms(persist), ms(exec), ms(commit), ms(e2e))
	}
	t.Notes = append(t.Notes,
		"paper (4→97 orgs): consensus 10.3→16.4, ver&exec 59.3→7.6, persist 0.5→2.1, commit ~2.7, e2e = max(P1,P4)+P5 62.5→19.3")
	return t
}

// --- Table 4: malicious participants -----------------------------------------

func init() {
	register(Experiment{
		ID:    "table4",
		Paper: "Table 4",
		Description: "Effective throughput under S1 (fault-free), S2 (malicious " +
			"leader proposing invalid transactions), S3 (malicious broadcaster) " +
			"for StreamChain, HLF, FastFabric, BIDL without denylist, and BIDL.",
		Scenarios: table4Scenarios,
		Table:     table4Table,
	})
}

func table4Scenarios(o Options) []scenario.Scenario {
	window := o.scaled(2 * time.Second)
	warm := window / 2 // measure after the system stabilizes post-attack

	point := func(framework, label string, rate float64, attackSpec scenario.AttackSpec, noDenylist bool) scenario.Scenario {
		sp := spec(framework, label, o, 0, 0)
		sp.Load = load(o.rate(rate), window)
		sp.Load.Warmup = scenario.Duration(warm)
		sp.Attack = attackSpec
		sp.Tuning.DisableDenylist = noDenylist
		return sp
	}
	leader := scenario.AttackSpec{Kind: scenario.AttackLeader}
	bcast := scenario.AttackSpec{Kind: scenario.AttackBroadcaster, Start: scenario.Duration(100 * time.Millisecond)}

	return []scenario.Scenario{
		point(scenario.FrameworkStreamChain, "streamchain S1", satStream, scenario.AttackSpec{}, false),
		point(scenario.FrameworkHLF, "hlf S1", satHLF, scenario.AttackSpec{}, false),
		point(scenario.FrameworkHLF, "hlf S2", satHLF, leader, false),
		point(scenario.FrameworkFastFabric, "fastfabric S1", satFF, scenario.AttackSpec{}, false),
		point(scenario.FrameworkBIDL, "bidl-no-denylist S1", satBIDL, scenario.AttackSpec{}, true),
		point(scenario.FrameworkBIDL, "bidl-no-denylist S2", satBIDL, leader, true),
		point(scenario.FrameworkBIDL, "bidl-no-denylist S3", satBIDL, bcast, true),
		point(scenario.FrameworkBIDL, "bidl S1", satBIDL, scenario.AttackSpec{}, false),
		point(scenario.FrameworkBIDL, "bidl S2", satBIDL, leader, false),
		point(scenario.FrameworkBIDL, "bidl S3", satBIDL, bcast, false),
	}
}

func table4Table(o Options, res []Result) *Table {
	t := &Table{
		ID:      "table4",
		Title:   "Effective throughput under malicious participants (ktxns/s)",
		Columns: []string{"framework", "S1_fault_free", "S2_malicious_leader", "S3_malicious_broadcaster"},
	}
	sc, h1, h2, ff := res[0], res[1], res[2], res[3]
	bn1, bn2, bn3 := res[4], res[5], res[6]
	b1, b2, b3 := res[7], res[8], res[9]

	t.AddRow("streamchain", ktps(sc.Throughput), "N/A", "N/A")
	// HLF: S3 unaffected (no multicast ingestion).
	t.AddRow("hlf", ktps(h1.Throughput), ktps(h2.Throughput), ktps(h1.Throughput))
	// FastFabric: only S1 is in its trust model.
	t.AddRow("fastfabric", ktps(ff.Throughput), "N/A", "N/A")
	// BIDL without the denylist: S3 hurts and stays hurt.
	t.AddRow("bidl-no-denylist", ktps(bn1.Throughput), ktps(bn2.Throughput), ktps(bn3.Throughput))
	// BIDL with the full shepherded workflow.
	t.AddRow("bidl", ktps(b1.Throughput), ktps(b2.Throughput), ktps(b3.Throughput))

	t.Notes = append(t.Notes,
		"paper: SC 2.73 / HLF 9.25 / FF 29.32 / BIDL-no-denylist 41.67,41.67,10.75 / BIDL 41.67 across all")
	return t
}

// --- Figure 7: real-time throughput under the smart adversary ----------------

func init() {
	register(Experiment{
		ID:    "fig7",
		Paper: "Figure 7",
		Description: "Real-time BIDL throughput while a smart adversary attacks " +
			"only one correct node's views: dip, view changes, denylist, recovery.",
		Scenarios: fig7Scenarios,
		Table:     fig7Table,
	})
}

func fig7Scenarios(o Options) []scenario.Scenario {
	horizon := o.scaled(6 * time.Second)
	attackAt := horizon / 6
	rate := o.rate(satBIDL * 3 / 4)
	// A single timeline run: nothing to fan out.
	sp := spec(scenario.FrameworkBIDL, fmt.Sprintf("%.0f txns/s, attack at %v", rate, attackAt), o, 0, 0)
	sp.Load = load(rate, horizon)
	sp.Load.Warmup = scenario.Duration(time.Millisecond)
	sp.Attack = scenario.AttackSpec{Kind: scenario.AttackSmart, Start: scenario.Duration(attackAt)}
	return []scenario.Scenario{sp}
}

func fig7Table(o Options, res []Result) *Table {
	t := &Table{
		ID:      "fig7",
		Title:   "BIDL throughput timeline under the smart adversary",
		Columns: []string{"time_s", "ktps"},
	}
	horizon := o.scaled(6 * time.Second)
	attackAt := horizon / 6
	width := horizon / 30
	for i, v := range res[0].Collector.Timeline(width, horizon) {
		t.AddRow(fmt.Sprintf("%.2f", (time.Duration(i)*width).Seconds()), ktps(v))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("attack starts at %.2fs; view changes observed: %d; clients denied: %d",
			attackAt.Seconds(), res[0].Collector.ViewChanges, res[0].Collector.DeniedClients),
		"paper: throughput dips on attack, view changes rotate the leader, the denylist restores peak throughput")
	return t
}

// --- Figure 8: non-determinism and contention robustness ---------------------

func init() {
	register(Experiment{
		ID:    "fig8",
		Paper: "Figure 8",
		Description: "Effective throughput of BIDL vs FastFabric under increasing " +
			"non-determinism ratio and increasing contention ratio.",
		Scenarios: fig8Scenarios,
		Table:     fig8Table,
	})
}

type fig8Point struct {
	mode  string
	ratio float64
}

func fig8Points() []fig8Point {
	var points []fig8Point
	for _, nd := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		points = append(points, fig8Point{"nondet", nd})
	}
	for _, cr := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		points = append(points, fig8Point{"contention", cr})
	}
	return points
}

func fig8Scenarios(o Options) []scenario.Scenario {
	window := o.scaled(1200 * time.Millisecond)
	var specs []scenario.Scenario
	for _, p := range fig8Points() {
		cr, nd := 0.0, 0.0
		if p.mode == "nondet" {
			nd = p.ratio
		} else {
			cr = p.ratio
		}
		b := spec(scenario.FrameworkBIDL, fmt.Sprintf("bidl, %s %.0f%%", p.mode, p.ratio*100), o, cr, nd)
		b.Load = load(o.rate(satBIDL), window)
		f := spec(scenario.FrameworkFastFabric, fmt.Sprintf("fastfabric, %s %.0f%%", p.mode, p.ratio*100), o, cr, nd)
		f.Load = load(o.rate(satFF), window)
		specs = append(specs, b, f)
	}
	return specs
}

func fig8Table(o Options, res []Result) *Table {
	t := &Table{
		ID:      "fig8",
		Title:   "Robustness to non-deterministic and contended workloads (ktxns/s)",
		Columns: []string{"workload", "param", "bidl_ktps", "bidl_abort", "ff_ktps", "ff_abort"},
	}
	for i, p := range fig8Points() {
		b, f := res[2*i], res[2*i+1]
		t.AddRow(p.mode, pct(p.ratio), ktps(b.Throughput), pct(b.AbortRate), ktps(f.Throughput), pct(f.AbortRate))
	}
	t.Notes = append(t.Notes,
		"paper: both drop with non-determinism (BIDL faster); under contention BIDL holds throughput with zero aborts while FF aborts grow")
	return t
}

// --- Figure 9: multi-datacenter bandwidth -------------------------------------

func init() {
	register(Experiment{
		ID:    "fig9",
		Paper: "Figure 9",
		Description: "BIDL vs BIDL-opt-disabled (no IP multicast, no consensus-on-hash) " +
			"across 4 datacenters with shrinking inter-DC bandwidth.",
		Scenarios: fig9Scenarios,
		Table:     fig9Table,
	})
}

var fig9Bands = []float64{10, 5, 2, 1, 0.5}

func fig9Scenarios(o Options) []scenario.Scenario {
	window := o.scaled(1200 * time.Millisecond)
	var specs []scenario.Scenario
	for _, gbps := range fig9Bands {
		for _, optDisabled := range []bool{false, true} {
			sp := spec(scenario.FrameworkBIDL,
				fmt.Sprintf("%.1f Gbps inter-DC (opt_disabled=%v)", gbps, optDisabled), o, 0, 0)
			sp.Nodes.Datacenters = 4
			sp.Topology.InterDCGbps = gbps
			sp.Topology.InterLatency = scenario.Duration(10 * time.Millisecond) // 20ms RTT (§6.4)
			sp.Tuning.ViewTimeout = scenario.Duration(400 * time.Millisecond)
			sp.Tuning.BlockTimeout = scenario.Duration(25 * time.Millisecond)
			sp.Tuning.DisableMulticast = optDisabled
			sp.Tuning.ConsensusOnPayload = optDisabled
			sp.Load = load(o.rate(satBIDL/2), window)
			specs = append(specs, sp)
		}
	}
	return specs
}

func fig9Table(o Options, res []Result) *Table {
	t := &Table{
		ID:      "fig9",
		Title:   "Throughput over 4 datacenters vs inter-DC bandwidth (ktxns/s)",
		Columns: []string{"bandwidth_gbps", "bidl", "bidl_opt_disabled"},
	}
	for i, gbps := range fig9Bands {
		t.AddRow(fmt.Sprintf("%.1f", gbps), ktps(res[2*i].Throughput), ktps(res[2*i+1].Throughput))
	}
	t.Notes = append(t.Notes,
		"paper: BIDL degrades slowly as bandwidth shrinks; without multicast+consensus-on-hash the gap widens at tight bandwidth")
	return t
}

// --- Figure 10: packet loss ---------------------------------------------------

func init() {
	register(Experiment{
		ID:    "fig10",
		Paper: "Figure 10",
		Description: "BIDL vs FastFabric effective throughput under increasing " +
			"packet-loss rates.",
		Scenarios: fig10Scenarios,
		Table:     fig10Table,
	})
}

var fig10Losses = []float64{0, 0.005, 0.01, 0.02, 0.04, 0.08}

func fig10Scenarios(o Options) []scenario.Scenario {
	window := o.scaled(1500 * time.Millisecond)
	var specs []scenario.Scenario
	for _, loss := range fig10Losses {
		b := spec(scenario.FrameworkBIDL, fmt.Sprintf("bidl, %.1f%% loss", loss*100), o, 0, 0)
		b.Topology.LossRate = loss
		b.Load = load(o.rate(satBIDL*3/4), window)
		f := spec(scenario.FrameworkFastFabric, fmt.Sprintf("fastfabric, %.1f%% loss", loss*100), o, 0, 0)
		f.Topology.LossRate = loss
		f.Load = load(o.rate(satFF*3/4), window)
		specs = append(specs, b, f)
	}
	return specs
}

func fig10Table(o Options, res []Result) *Table {
	t := &Table{
		ID:      "fig10",
		Title:   "Throughput vs packet-loss rate (ktxns/s)",
		Columns: []string{"loss", "bidl", "fastfabric"},
	}
	for i, loss := range fig10Losses {
		t.AddRow(pct(loss), ktps(res[2*i].Throughput), ktps(res[2*i+1].Throughput))
	}
	t.Notes = append(t.Notes,
		"paper: BIDL's gain over FF is largest at low loss and narrows as loss grows")
	return t
}

// --- Ablations ----------------------------------------------------------------

func init() {
	register(Experiment{
		ID:    "ablation",
		Paper: "Design ablations (extension)",
		Description: "BIDL design-choice ablations: parallel vs sequential workflow, " +
			"IP multicast, consensus-on-hash.",
		Scenarios: ablationScenarios,
		Table:     ablationTable,
	})
}

type ablationVariant struct {
	name string
	mut  func(*scenario.TuningSpec)
}

func ablationVariants() []ablationVariant {
	return []ablationVariant{
		{"bidl-full", func(*scenario.TuningSpec) {}},
		{"no-speculation", func(t *scenario.TuningSpec) { t.DisableSpeculation = true }},
		{"no-multicast", func(t *scenario.TuningSpec) { t.DisableMulticast = true }},
		{"consensus-on-payload", func(t *scenario.TuningSpec) { t.ConsensusOnPayload = true }},
	}
}

func ablationScenarios(o Options) []scenario.Scenario {
	window := o.scaled(1200 * time.Millisecond)
	variants := ablationVariants()
	specs := make([]scenario.Scenario, len(variants))
	for i, v := range variants {
		sp := spec(scenario.FrameworkBIDL, v.name, o, 0.2, 0)
		v.mut(&sp.Tuning)
		sp.Load = load(o.rate(satBIDL*3/4), window)
		specs[i] = sp
	}
	return specs
}

func ablationTable(o Options, res []Result) *Table {
	t := &Table{
		ID:      "ablation",
		Title:   "BIDL ablations (setting A)",
		Columns: []string{"variant", "ktps", "avg_ms", "p99_ms", "spec_success"},
	}
	for i, v := range ablationVariants() {
		t.AddRow(v.name, ktps(res[i].Throughput), ms(res[i].AvgLatency), ms(res[i].P99), pct(res[i].SpecSuccess))
	}
	t.Notes = append(t.Notes,
		"no-speculation reverts to the sequential workflow: latency rises by roughly the execution phase")
	return t
}
