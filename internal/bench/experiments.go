package bench

import (
	"fmt"
	"time"

	"github.com/bidl-framework/bidl/internal/attack"
	"github.com/bidl-framework/bidl/internal/baseline/fabric"
	"github.com/bidl-framework/bidl/internal/core"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/workload"
)

// Every experiment below is expressed as a flat list of sweep-point tasks
// handed to gather (see runner.go): each task builds its own cluster from the
// experiment seed and returns a Result (or a finished row), and the rows are
// assembled from the gathered slice in sweep order. Task closures must not
// touch anything but their own captures and o, so serial and parallel
// execution produce byte-identical tables.

// Default per-framework saturation offered loads (txns/s) in evaluation
// setting A, calibrated so each framework runs at its natural capacity:
// BIDL ≈ 40-45k (sequencer-bound), FastFabric ≈ 30k (MVCC-bound),
// HLF ≈ 8-9k (VSCC+MVCC-bound), StreamChain ≈ 2-3k (per-txn ordering).
const (
	satBIDL   = 44000
	satFF     = 30000
	satHLF    = 10000
	satStream = 3500
)

// settingA returns the paper's evaluation setting A for BIDL: four consensus
// nodes (f=1), 50 organizations with one normal node each.
func settingA(seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	return cfg
}

func settingAFabric(v fabric.Variant, seed int64) fabric.Config {
	cfg := fabric.DefaultConfig(v)
	cfg.Seed = seed
	return cfg
}

func stdWorkload(contention, nondet float64, seed int64) workload.Config {
	w := workload.DefaultConfig(50)
	w.Accounts = 10000 // 1% hot set = 100 accounts (paper setup)
	w.ContentionRatio = contention
	w.NondetRatio = nondet
	w.Seed = seed
	return w
}

// --- Figure 3: performance vs contention ratio ------------------------------

func init() {
	register(Experiment{
		ID:    "fig3",
		Paper: "Figure 3",
		Description: "Throughput, latency, and abort rate vs contention ratio " +
			"(0-50%) for BIDL, FastFabric, and HLF; 4 consensus nodes, 50 normal nodes.",
		Run: runFig3,
	})
}

func runFig3(o Options) *Table {
	t := &Table{
		ID:    "fig3",
		Title: "Performance under contention (setting A)",
		Columns: []string{"contention", "bidl_ktps", "bidl_ms", "bidl_abort",
			"ff_ktps", "ff_ms", "ff_abort", "hlf_ktps", "hlf_ms", "hlf_abort"},
	}
	window := o.scaled(1200 * time.Millisecond)
	ratios := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	var tasks []func() Result
	for _, cr := range ratios {
		cr := cr
		tasks = append(tasks,
			func() Result {
				o.logf("fig3: bidl, contention %.0f%%", cr*100)
				r, _ := bidlRun{Cfg: settingA(o.Seed), Workload: stdWorkload(cr, 0, o.Seed),
					Rate: o.rate(satBIDL), Window: window}.run(o)
				return r
			},
			func() Result {
				o.logf("fig3: fastfabric, contention %.0f%%", cr*100)
				r, _ := fabricRun{Cfg: settingAFabric(fabric.FastFabric, o.Seed), Workload: stdWorkload(cr, 0, o.Seed),
					Rate: o.rate(satFF), Window: window}.run(o)
				return r
			},
			func() Result {
				o.logf("fig3: hlf, contention %.0f%%", cr*100)
				r, _ := fabricRun{Cfg: settingAFabric(fabric.HLF, o.Seed), Workload: stdWorkload(cr, 0, o.Seed),
					Rate: o.rate(satHLF), Window: window}.run(o)
				return r
			})
	}
	res := gather(o, tasks)
	for i, cr := range ratios {
		b, f, h := res[3*i], res[3*i+1], res[3*i+2]
		t.AddRow(pct(cr),
			ktps(b.Throughput), ms(b.AvgLatency), pct(b.AbortRate),
			ktps(f.Throughput), ms(f.AvgLatency), pct(f.AbortRate),
			ktps(h.Throughput), ms(h.AvgLatency), pct(h.AbortRate))
	}
	t.Notes = append(t.Notes,
		"paper: BIDL 40.1k txns/s with zero aborts at 50% contention; FF 2.2x lower with 37.7% aborts")
	return t
}

// --- Figure 5: throughput vs latency ----------------------------------------

func init() {
	register(Experiment{
		ID:    "fig5",
		Paper: "Figure 5",
		Description: "Throughput vs latency curves in the fault-free case for " +
			"BIDL, FastFabric, and StreamChain (offered-load sweep).",
		Run: runFig5,
	})
}

func runFig5(o Options) *Table {
	t := &Table{
		ID:      "fig5",
		Title:   "Throughput vs latency (fault-free, setting A)",
		Columns: []string{"framework", "offered_ktps", "achieved_ktps", "avg_ms", "p99_ms"},
	}
	window := o.scaled(1200 * time.Millisecond)
	type point struct {
		name string
		rate float64
	}
	var points []point
	addSweep := func(name string, rates []float64) {
		for _, r := range rates {
			points = append(points, point{name, r})
		}
	}
	addSweep("bidl", []float64{5000, 10000, 20000, 30000, 40000, 44000})
	addSweep("fastfabric", []float64{5000, 10000, 20000, 26000, 30000})
	addSweep("streamchain", []float64{500, 1000, 2000, 3000, 3500})
	tasks := make([]func() Result, len(points))
	for i, p := range points {
		p := p
		tasks[i] = func() Result {
			o.logf("fig5: %s at %.0f txns/s", p.name, o.rate(p.rate))
			if p.name == "bidl" {
				r, _ := bidlRun{Cfg: settingA(o.Seed), Workload: stdWorkload(0, 0, o.Seed),
					Rate: o.rate(p.rate), Window: window}.run(o)
				return r
			}
			v := fabric.FastFabric
			if p.name == "streamchain" {
				v = fabric.StreamChain
			}
			r, _ := fabricRun{Cfg: settingAFabric(v, o.Seed), Workload: stdWorkload(0, 0, o.Seed),
				Rate: o.rate(p.rate), Window: window}.run(o)
			return r
		}
	}
	for i, res := range gather(o, tasks) {
		p := points[i]
		t.AddRow(p.name, ktps(o.rate(p.rate)), ktps(res.Throughput), ms(res.AvgLatency), ms(res.P99))
	}
	t.Notes = append(t.Notes,
		"paper: StreamChain lowest latency at low throughput; BIDL dominates both throughput and latency at scale")
	return t
}

// --- Figure 6: BIDL scalability across BFT protocols ------------------------

func init() {
	register(Experiment{
		ID:    "fig6",
		Paper: "Figure 6",
		Description: "BIDL latency with four BFT protocols (BFT-SMaRt, Zyzzyva, " +
			"SBFT, HotStuff) as organizations scale 4..97 (setting B: 1 CN + 1 NN per org).",
		Run: runFig6,
	})
}

var fig6Orgs = []int{4, 7, 13, 25, 49, 97}

var fig6Protos = []string{core.ProtoPBFT, core.ProtoZyzzyva, core.ProtoSBFT, core.ProtoHotStuff}

func runFig6(o Options) *Table {
	t := &Table{
		ID:      "fig6",
		Title:   "BIDL latency vs #organizations per BFT protocol (ms)",
		Columns: []string{"orgs", "bft-smart", "zyzzyva", "sbft", "hotstuff"},
	}
	window := o.scaled(1 * time.Second)
	var tasks []func() Result
	for _, orgs := range fig6Orgs {
		for _, proto := range fig6Protos {
			orgs, proto := orgs, proto
			tasks = append(tasks, func() Result {
				o.logf("fig6: %s with %d orgs", proto, orgs)
				cfg := settingB(orgs, 1, o.Seed)
				cfg.Protocol = proto
				w := stdWorkload(0, 0, o.Seed)
				w.NumOrgs = orgs
				res, _ := bidlRun{Cfg: cfg, Workload: w, Rate: o.rate(20000), Window: window}.run(o)
				return res
			})
		}
	}
	res := gather(o, tasks)
	for i, orgs := range fig6Orgs {
		row := []string{fmt.Sprintf("%d", orgs)}
		for j := range fig6Protos {
			row = append(row, ms(res[i*len(fig6Protos)+j].AvgLatency))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: latency first decreases (execution parallelism grows) then increases gently (consensus cost)")
	return t
}

// settingB builds the scalability setting: one consensus node per org.
func settingB(orgs, nnPerOrg int, seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.NumOrgs = orgs
	cfg.NormalPerOrg = nnPerOrg
	cfg.NumConsensus = orgs
	cfg.F = (orgs - 1) / 3
	if cfg.F < 1 {
		cfg.F = 1
	}
	return cfg
}

// --- Tables 2 and 3: latency breakdowns -------------------------------------

func init() {
	register(Experiment{
		ID:    "table2",
		Paper: "Table 2",
		Description: "FastFabric-SMaRt end-to-end latency breakdown " +
			"(endorse/consensus/validate) vs #organizations.",
		Run: runTable2,
	})
	register(Experiment{
		ID:    "table3",
		Paper: "Table 3",
		Description: "BIDL-SMaRt end-to-end latency breakdown " +
			"(consensus/ver&exec/persist/commit) vs #organizations.",
		Run: runTable3,
	})
}

func runTable2(o Options) *Table {
	t := &Table{
		ID:      "table2",
		Title:   "FastFabric-SMaRt latency breakdown (ms)",
		Columns: []string{"orgs", "P1_endorse", "P2_consensus", "P3_validate", "end_to_end"},
	}
	window := o.scaled(1 * time.Second)
	tasks := make([]func() []string, len(fig6Orgs))
	for i, orgs := range fig6Orgs {
		orgs := orgs
		tasks[i] = func() []string {
			o.logf("table2: %d orgs", orgs)
			cfg := settingAFabric(fabric.FastFabric, o.Seed)
			cfg.Protocol = "bft-smart" // the paper's modified FastFabric-SMaRt
			cfg.NumOrgs = orgs
			cfg.NumOrderers = orgs
			cfg.F = (orgs - 1) / 3
			if cfg.F < 1 {
				cfg.F = 1
			}
			cfg.PeersPerOrg = 1
			w := stdWorkload(0, 0, o.Seed)
			w.NumOrgs = orgs
			res, _ := fabricRun{Cfg: cfg, Workload: w, Rate: o.rate(15000), Window: window}.run(o)
			endorse := res.Collector.PhaseAvg("endorse")
			cons := res.Collector.PhaseAvg("consensus")
			validate := res.Collector.PhaseAvg("validate")
			return []string{fmt.Sprintf("%d", orgs), ms(endorse), ms(cons), ms(validate), ms(endorse + cons + validate)}
		}
	}
	for _, row := range gather(o, tasks) {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper (4→97 orgs): endorse 9.2→6.5, consensus 10.4→16.2, validate 51.5→6.9, e2e 71.0→29.6")
	return t
}

func runTable3(o Options) *Table {
	t := &Table{
		ID:      "table3",
		Title:   "BIDL-SMaRt latency breakdown (ms)",
		Columns: []string{"orgs", "P1_consensus", "P2_ver_exec", "P3_persist", "P4_execution", "P5_commit", "end_to_end"},
	}
	window := o.scaled(1 * time.Second)
	tasks := make([]func() []string, len(fig6Orgs))
	for i, orgs := range fig6Orgs {
		orgs := orgs
		tasks[i] = func() []string {
			o.logf("table3: %d orgs", orgs)
			cfg := settingB(orgs, 1, o.Seed)
			w := stdWorkload(0, 0, o.Seed)
			w.NumOrgs = orgs
			res, _ := bidlRun{Cfg: cfg, Workload: w, Rate: o.rate(15000), Window: window}.run(o)
			cons := res.Collector.PhaseAvg("consensus")
			verexec := res.Collector.PhaseAvg("verexec")
			persist := res.Collector.PhaseAvg("persist")
			commit := res.Collector.PhaseAvg("commit")
			exec := verexec + persist
			e2e := cons
			if exec > e2e {
				e2e = exec
			}
			e2e += commit
			return []string{fmt.Sprintf("%d", orgs), ms(cons), ms(verexec), ms(persist), ms(exec), ms(commit), ms(e2e)}
		}
	}
	for _, row := range gather(o, tasks) {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper (4→97 orgs): consensus 10.3→16.4, ver&exec 59.3→7.6, persist 0.5→2.1, commit ~2.7, e2e = max(P1,P4)+P5 62.5→19.3")
	return t
}

// --- Table 4: malicious participants -----------------------------------------

func init() {
	register(Experiment{
		ID:    "table4",
		Paper: "Table 4",
		Description: "Effective throughput under S1 (fault-free), S2 (malicious " +
			"leader proposing invalid transactions), S3 (malicious broadcaster) " +
			"for StreamChain, HLF, FastFabric, BIDL without denylist, and BIDL.",
		Run: runTable4,
	})
}

func runTable4(o Options) *Table {
	t := &Table{
		ID:      "table4",
		Title:   "Effective throughput under malicious participants (ktxns/s)",
		Columns: []string{"framework", "S1_fault_free", "S2_malicious_leader", "S3_malicious_broadcaster"},
	}
	window := o.scaled(2 * time.Second)
	warm := window / 2 // measure after the system stabilizes post-attack
	wl := stdWorkload(0, 0, o.Seed)

	fab := func(label string, v fabric.Variant, rate float64, mut func(*fabric.Cluster, *workload.Generator)) func() Result {
		return func() Result {
			o.logf("table4: %s", label)
			r, _ := fabricRun{Cfg: settingAFabric(v, o.Seed), Workload: wl,
				Rate: o.rate(rate), Window: window, Warmup: warm, Mutate: mut}.run(o)
			return r
		}
	}
	bidl := func(label string, cfg core.Config, mut func(*core.Cluster, *workload.Generator)) func() Result {
		return func() Result {
			o.logf("table4: %s", label)
			r, _ := bidlRun{Cfg: cfg, Workload: wl, Rate: o.rate(satBIDL),
				Window: window, Warmup: warm, Mutate: mut}.run(o)
			return r
		}
	}
	malLeader := func(c *core.Cluster, _ *workload.Generator) {
		attack.EnableMaliciousLeader(c, c.LeaderIndex())
	}
	noDeny := settingA(o.Seed)
	noDeny.DisableDenylist = true

	res := gather(o, []func() Result{
		fab("streamchain S1", fabric.StreamChain, satStream, nil),
		fab("hlf S1", fabric.HLF, satHLF, nil),
		fab("hlf S2", fabric.HLF, satHLF, func(c *fabric.Cluster, _ *workload.Generator) {
			c.Orderers[c.LeaderIndex()].ProposeGarbage = true
		}),
		fab("fastfabric S1", fabric.FastFabric, satFF, nil),
		bidl("bidl-no-denylist S1", noDeny, nil),
		bidl("bidl-no-denylist S2", noDeny, malLeader),
		bidl("bidl-no-denylist S3", noDeny, broadcastAttack(100*time.Millisecond, -1)),
		bidl("bidl S1", settingA(o.Seed), nil),
		bidl("bidl S2", settingA(o.Seed), malLeader),
		bidl("bidl S3", settingA(o.Seed), broadcastAttack(100*time.Millisecond, -1)),
	})
	sc, h1, h2, ff := res[0], res[1], res[2], res[3]
	bn1, bn2, bn3 := res[4], res[5], res[6]
	b1, b2, b3 := res[7], res[8], res[9]

	t.AddRow("streamchain", ktps(sc.Throughput), "N/A", "N/A")
	// HLF: S3 unaffected (no multicast ingestion).
	t.AddRow("hlf", ktps(h1.Throughput), ktps(h2.Throughput), ktps(h1.Throughput))
	// FastFabric: only S1 is in its trust model.
	t.AddRow("fastfabric", ktps(ff.Throughput), "N/A", "N/A")
	// BIDL without the denylist: S3 hurts and stays hurt.
	t.AddRow("bidl-no-denylist", ktps(bn1.Throughput), ktps(bn2.Throughput), ktps(bn3.Throughput))
	// BIDL with the full shepherded workflow.
	t.AddRow("bidl", ktps(b1.Throughput), ktps(b2.Throughput), ktps(b3.Throughput))

	t.Notes = append(t.Notes,
		"paper: SC 2.73 / HLF 9.25 / FF 29.32 / BIDL-no-denylist 41.67,41.67,10.75 / BIDL 41.67 across all")
	return t
}

// --- Figure 7: real-time throughput under the smart adversary ----------------

func init() {
	register(Experiment{
		ID:    "fig7",
		Paper: "Figure 7",
		Description: "Real-time BIDL throughput while a smart adversary attacks " +
			"only one correct node's views: dip, view changes, denylist, recovery.",
		Run: runFig7,
	})
}

func runFig7(o Options) *Table {
	t := &Table{
		ID:      "fig7",
		Title:   "BIDL throughput timeline under the smart adversary",
		Columns: []string{"time_s", "ktps"},
	}
	horizon := o.scaled(6 * time.Second)
	attackAt := horizon / 6
	rate := o.rate(satBIDL * 3 / 4)
	o.logf("fig7: %.0f txns/s, attack at %v", rate, attackAt)
	// A single timeline run: nothing to fan out.
	res, c := bidlRun{Cfg: settingA(o.Seed), Workload: stdWorkload(0, 0, o.Seed),
		Rate: rate, Window: horizon, Warmup: time.Millisecond,
		Mutate: func(cl *core.Cluster, gen *workload.Generator) {
			cfg := attack.DefaultBroadcasterConfig()
			cfg.TargetLeader = cl.LeaderIndex()
			b := attack.NewBroadcaster(cl, gen, cfg)
			b.Start(attackAt)
		}}.run(o)
	width := horizon / 30
	for i, v := range res.Collector.Timeline(width, horizon) {
		t.AddRow(fmt.Sprintf("%.2f", (time.Duration(i)*width).Seconds()), ktps(v))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("attack starts at %.2fs; view changes observed: %d; clients denied: %d",
			attackAt.Seconds(), res.Collector.ViewChanges, res.Collector.DeniedClients),
		"paper: throughput dips on attack, view changes rotate the leader, the denylist restores peak throughput")
	_ = c
	return t
}

// --- Figure 8: non-determinism and contention robustness ---------------------

func init() {
	register(Experiment{
		ID:    "fig8",
		Paper: "Figure 8",
		Description: "Effective throughput of BIDL vs FastFabric under increasing " +
			"non-determinism ratio and increasing contention ratio.",
		Run: runFig8,
	})
}

func runFig8(o Options) *Table {
	t := &Table{
		ID:      "fig8",
		Title:   "Robustness to non-deterministic and contended workloads (ktxns/s)",
		Columns: []string{"workload", "param", "bidl_ktps", "bidl_abort", "ff_ktps", "ff_abort"},
	}
	window := o.scaled(1200 * time.Millisecond)
	type point struct {
		mode  string
		ratio float64
	}
	var points []point
	for _, nd := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		points = append(points, point{"nondet", nd})
	}
	for _, cr := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		points = append(points, point{"contention", cr})
	}
	var tasks []func() Result
	for _, p := range points {
		p := p
		mkWl := func() workload.Config {
			if p.mode == "nondet" {
				return stdWorkload(0, p.ratio, o.Seed)
			}
			return stdWorkload(p.ratio, 0, o.Seed)
		}
		tasks = append(tasks,
			func() Result {
				o.logf("fig8: bidl, %s %.0f%%", p.mode, p.ratio*100)
				r, _ := bidlRun{Cfg: settingA(o.Seed), Workload: mkWl(),
					Rate: o.rate(satBIDL), Window: window}.run(o)
				return r
			},
			func() Result {
				o.logf("fig8: fastfabric, %s %.0f%%", p.mode, p.ratio*100)
				r, _ := fabricRun{Cfg: settingAFabric(fabric.FastFabric, o.Seed), Workload: mkWl(),
					Rate: o.rate(satFF), Window: window}.run(o)
				return r
			})
	}
	res := gather(o, tasks)
	for i, p := range points {
		b, f := res[2*i], res[2*i+1]
		t.AddRow(p.mode, pct(p.ratio), ktps(b.Throughput), pct(b.AbortRate), ktps(f.Throughput), pct(f.AbortRate))
	}
	t.Notes = append(t.Notes,
		"paper: both drop with non-determinism (BIDL faster); under contention BIDL holds throughput with zero aborts while FF aborts grow")
	return t
}

// --- Figure 9: multi-datacenter bandwidth -------------------------------------

func init() {
	register(Experiment{
		ID:    "fig9",
		Paper: "Figure 9",
		Description: "BIDL vs BIDL-opt-disabled (no IP multicast, no consensus-on-hash) " +
			"across 4 datacenters with shrinking inter-DC bandwidth.",
		Run: runFig9,
	})
}

func runFig9(o Options) *Table {
	t := &Table{
		ID:      "fig9",
		Title:   "Throughput over 4 datacenters vs inter-DC bandwidth (ktxns/s)",
		Columns: []string{"bandwidth_gbps", "bidl", "bidl_opt_disabled"},
	}
	window := o.scaled(1200 * time.Millisecond)
	bands := []float64{10, 5, 2, 1, 0.5}
	var tasks []func() Result
	for _, gbps := range bands {
		gbps := gbps
		mk := func(optDisabled bool) core.Config {
			cfg := settingA(o.Seed)
			cfg.NumDCs = 4
			cfg.Topology = simnet.MultiDCTopology(int64(gbps * float64(simnet.Gbps)))
			cfg.Topology.InterLatency = 10 * time.Millisecond // 20ms RTT (§6.4)
			cfg.ViewTimeout = 400 * time.Millisecond
			cfg.BlockTimeout = 25 * time.Millisecond
			if optDisabled {
				cfg.DisableMulticast = true
				cfg.ConsensusOnPayload = true
			}
			return cfg
		}
		for _, optDisabled := range []bool{false, true} {
			optDisabled := optDisabled
			tasks = append(tasks, func() Result {
				o.logf("fig9: %.1f Gbps inter-DC (opt_disabled=%v)", gbps, optDisabled)
				r, _ := bidlRun{Cfg: mk(optDisabled), Workload: stdWorkload(0, 0, o.Seed),
					Rate: o.rate(satBIDL / 2), Window: window}.run(o)
				return r
			})
		}
	}
	res := gather(o, tasks)
	for i, gbps := range bands {
		t.AddRow(fmt.Sprintf("%.1f", gbps), ktps(res[2*i].Throughput), ktps(res[2*i+1].Throughput))
	}
	t.Notes = append(t.Notes,
		"paper: BIDL degrades slowly as bandwidth shrinks; without multicast+consensus-on-hash the gap widens at tight bandwidth")
	return t
}

// --- Figure 10: packet loss ---------------------------------------------------

func init() {
	register(Experiment{
		ID:    "fig10",
		Paper: "Figure 10",
		Description: "BIDL vs FastFabric effective throughput under increasing " +
			"packet-loss rates.",
		Run: runFig10,
	})
}

func runFig10(o Options) *Table {
	t := &Table{
		ID:      "fig10",
		Title:   "Throughput vs packet-loss rate (ktxns/s)",
		Columns: []string{"loss", "bidl", "fastfabric"},
	}
	window := o.scaled(1500 * time.Millisecond)
	losses := []float64{0, 0.005, 0.01, 0.02, 0.04, 0.08}
	var tasks []func() Result
	for _, loss := range losses {
		loss := loss
		tasks = append(tasks,
			func() Result {
				o.logf("fig10: bidl, %.1f%% loss", loss*100)
				cfg := settingA(o.Seed)
				cfg.Topology.LossRate = loss
				r, _ := bidlRun{Cfg: cfg, Workload: stdWorkload(0, 0, o.Seed),
					Rate: o.rate(satBIDL * 3 / 4), Window: window}.run(o)
				return r
			},
			func() Result {
				o.logf("fig10: fastfabric, %.1f%% loss", loss*100)
				fcfg := settingAFabric(fabric.FastFabric, o.Seed)
				fcfg.Topology.LossRate = loss
				r, _ := fabricRun{Cfg: fcfg, Workload: stdWorkload(0, 0, o.Seed),
					Rate: o.rate(satFF * 3 / 4), Window: window}.run(o)
				return r
			})
	}
	res := gather(o, tasks)
	for i, loss := range losses {
		t.AddRow(pct(loss), ktps(res[2*i].Throughput), ktps(res[2*i+1].Throughput))
	}
	t.Notes = append(t.Notes,
		"paper: BIDL's gain over FF is largest at low loss and narrows as loss grows")
	return t
}

// --- Ablations ----------------------------------------------------------------

func init() {
	register(Experiment{
		ID:    "ablation",
		Paper: "Design ablations (extension)",
		Description: "BIDL design-choice ablations: parallel vs sequential workflow, " +
			"IP multicast, consensus-on-hash.",
		Run: runAblation,
	})
}

func runAblation(o Options) *Table {
	t := &Table{
		ID:      "ablation",
		Title:   "BIDL ablations (setting A)",
		Columns: []string{"variant", "ktps", "avg_ms", "p99_ms", "spec_success"},
	}
	window := o.scaled(1200 * time.Millisecond)
	type variant struct {
		name string
		mut  func(*core.Config)
	}
	variants := []variant{
		{"bidl-full", func(*core.Config) {}},
		{"no-speculation", func(c *core.Config) { c.DisableSpeculation = true }},
		{"no-multicast", func(c *core.Config) { c.DisableMulticast = true }},
		{"consensus-on-payload", func(c *core.Config) { c.ConsensusOnPayload = true }},
	}
	tasks := make([]func() Result, len(variants))
	for i, v := range variants {
		v := v
		tasks[i] = func() Result {
			o.logf("ablation: %s", v.name)
			cfg := settingA(o.Seed)
			v.mut(&cfg)
			res, _ := bidlRun{Cfg: cfg, Workload: stdWorkload(0.2, 0, o.Seed),
				Rate: o.rate(satBIDL * 3 / 4), Window: window}.run(o)
			return res
		}
	}
	res := gather(o, tasks)
	for i, v := range variants {
		t.AddRow(v.name, ktps(res[i].Throughput), ms(res[i].AvgLatency), ms(res[i].P99), pct(res[i].SpecSuccess))
	}
	t.Notes = append(t.Notes,
		"no-speculation reverts to the sequential workflow: latency rises by roughly the execution phase")
	return t
}
