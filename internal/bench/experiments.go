package bench

import (
	"fmt"
	"time"

	"github.com/bidl-framework/bidl/internal/attack"
	"github.com/bidl-framework/bidl/internal/baseline/fabric"
	"github.com/bidl-framework/bidl/internal/core"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/workload"
)

// Default per-framework saturation offered loads (txns/s) in evaluation
// setting A, calibrated so each framework runs at its natural capacity:
// BIDL ≈ 40-45k (sequencer-bound), FastFabric ≈ 30k (MVCC-bound),
// HLF ≈ 8-9k (VSCC+MVCC-bound), StreamChain ≈ 2-3k (per-txn ordering).
const (
	satBIDL   = 44000
	satFF     = 30000
	satHLF    = 10000
	satStream = 3500
)

// settingA returns the paper's evaluation setting A for BIDL: four consensus
// nodes (f=1), 50 organizations with one normal node each.
func settingA(seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	return cfg
}

func settingAFabric(v fabric.Variant, seed int64) fabric.Config {
	cfg := fabric.DefaultConfig(v)
	cfg.Seed = seed
	return cfg
}

func stdWorkload(contention, nondet float64, seed int64) workload.Config {
	w := workload.DefaultConfig(50)
	w.Accounts = 10000 // 1% hot set = 100 accounts (paper setup)
	w.ContentionRatio = contention
	w.NondetRatio = nondet
	w.Seed = seed
	return w
}

// --- Figure 3: performance vs contention ratio ------------------------------

func init() {
	register(Experiment{
		ID:    "fig3",
		Paper: "Figure 3",
		Description: "Throughput, latency, and abort rate vs contention ratio " +
			"(0-50%) for BIDL, FastFabric, and HLF; 4 consensus nodes, 50 normal nodes.",
		Run: runFig3,
	})
}

func runFig3(o Options) *Table {
	t := &Table{
		ID:    "fig3",
		Title: "Performance under contention (setting A)",
		Columns: []string{"contention", "bidl_ktps", "bidl_ms", "bidl_abort",
			"ff_ktps", "ff_ms", "ff_abort", "hlf_ktps", "hlf_ms", "hlf_abort"},
	}
	window := o.scaled(1200 * time.Millisecond)
	for _, cr := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		o.logf("fig3: contention %.0f%%", cr*100)
		b, _ := bidlRun{Cfg: settingA(o.Seed), Workload: stdWorkload(cr, 0, o.Seed),
			Rate: o.rate(satBIDL), Window: window}.run()
		f, _ := fabricRun{Cfg: settingAFabric(fabric.FastFabric, o.Seed), Workload: stdWorkload(cr, 0, o.Seed),
			Rate: o.rate(satFF), Window: window}.run()
		h, _ := fabricRun{Cfg: settingAFabric(fabric.HLF, o.Seed), Workload: stdWorkload(cr, 0, o.Seed),
			Rate: o.rate(satHLF), Window: window}.run()
		t.AddRow(pct(cr),
			ktps(b.Throughput), ms(b.AvgLatency), pct(b.AbortRate),
			ktps(f.Throughput), ms(f.AvgLatency), pct(f.AbortRate),
			ktps(h.Throughput), ms(h.AvgLatency), pct(h.AbortRate))
	}
	t.Notes = append(t.Notes,
		"paper: BIDL 40.1k txns/s with zero aborts at 50% contention; FF 2.2x lower with 37.7% aborts")
	return t
}

// --- Figure 5: throughput vs latency ----------------------------------------

func init() {
	register(Experiment{
		ID:    "fig5",
		Paper: "Figure 5",
		Description: "Throughput vs latency curves in the fault-free case for " +
			"BIDL, FastFabric, and StreamChain (offered-load sweep).",
		Run: runFig5,
	})
}

func runFig5(o Options) *Table {
	t := &Table{
		ID:      "fig5",
		Title:   "Throughput vs latency (fault-free, setting A)",
		Columns: []string{"framework", "offered_ktps", "achieved_ktps", "avg_ms", "p99_ms"},
	}
	window := o.scaled(1200 * time.Millisecond)
	sweep := func(name string, rates []float64, run func(rate float64) Result) {
		for _, r := range rates {
			o.logf("fig5: %s at %.0f txns/s", name, o.rate(r))
			res := run(o.rate(r))
			t.AddRow(name, ktps(o.rate(r)), ktps(res.Throughput), ms(res.AvgLatency), ms(res.P99))
		}
	}
	sweep("bidl", []float64{5000, 10000, 20000, 30000, 40000, 44000}, func(rate float64) Result {
		r, _ := bidlRun{Cfg: settingA(o.Seed), Workload: stdWorkload(0, 0, o.Seed), Rate: rate, Window: window}.run()
		return r
	})
	sweep("fastfabric", []float64{5000, 10000, 20000, 26000, 30000}, func(rate float64) Result {
		r, _ := fabricRun{Cfg: settingAFabric(fabric.FastFabric, o.Seed), Workload: stdWorkload(0, 0, o.Seed), Rate: rate, Window: window}.run()
		return r
	})
	sweep("streamchain", []float64{500, 1000, 2000, 3000, 3500}, func(rate float64) Result {
		r, _ := fabricRun{Cfg: settingAFabric(fabric.StreamChain, o.Seed), Workload: stdWorkload(0, 0, o.Seed), Rate: rate, Window: window}.run()
		return r
	})
	t.Notes = append(t.Notes,
		"paper: StreamChain lowest latency at low throughput; BIDL dominates both throughput and latency at scale")
	return t
}

// --- Figure 6: BIDL scalability across BFT protocols ------------------------

func init() {
	register(Experiment{
		ID:    "fig6",
		Paper: "Figure 6",
		Description: "BIDL latency with four BFT protocols (BFT-SMaRt, Zyzzyva, " +
			"SBFT, HotStuff) as organizations scale 4..97 (setting B: 1 CN + 1 NN per org).",
		Run: runFig6,
	})
}

var fig6Orgs = []int{4, 7, 13, 25, 49, 97}

func runFig6(o Options) *Table {
	t := &Table{
		ID:      "fig6",
		Title:   "BIDL latency vs #organizations per BFT protocol (ms)",
		Columns: []string{"orgs", "bft-smart", "zyzzyva", "sbft", "hotstuff"},
	}
	window := o.scaled(1 * time.Second)
	for _, orgs := range fig6Orgs {
		row := []string{fmt.Sprintf("%d", orgs)}
		for _, proto := range []string{core.ProtoPBFT, core.ProtoZyzzyva, core.ProtoSBFT, core.ProtoHotStuff} {
			o.logf("fig6: %s with %d orgs", proto, orgs)
			cfg := settingB(orgs, 1, o.Seed)
			cfg.Protocol = proto
			w := stdWorkload(0, 0, o.Seed)
			w.NumOrgs = orgs
			res, _ := bidlRun{Cfg: cfg, Workload: w, Rate: o.rate(20000), Window: window}.run()
			row = append(row, ms(res.AvgLatency))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: latency first decreases (execution parallelism grows) then increases gently (consensus cost)")
	return t
}

// settingB builds the scalability setting: one consensus node per org.
func settingB(orgs, nnPerOrg int, seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.NumOrgs = orgs
	cfg.NormalPerOrg = nnPerOrg
	cfg.NumConsensus = orgs
	cfg.F = (orgs - 1) / 3
	if cfg.F < 1 {
		cfg.F = 1
	}
	return cfg
}

// --- Tables 2 and 3: latency breakdowns -------------------------------------

func init() {
	register(Experiment{
		ID:    "table2",
		Paper: "Table 2",
		Description: "FastFabric-SMaRt end-to-end latency breakdown " +
			"(endorse/consensus/validate) vs #organizations.",
		Run: runTable2,
	})
	register(Experiment{
		ID:    "table3",
		Paper: "Table 3",
		Description: "BIDL-SMaRt end-to-end latency breakdown " +
			"(consensus/ver&exec/persist/commit) vs #organizations.",
		Run: runTable3,
	})
}

func runTable2(o Options) *Table {
	t := &Table{
		ID:      "table2",
		Title:   "FastFabric-SMaRt latency breakdown (ms)",
		Columns: []string{"orgs", "P1_endorse", "P2_consensus", "P3_validate", "end_to_end"},
	}
	window := o.scaled(1 * time.Second)
	for _, orgs := range fig6Orgs {
		o.logf("table2: %d orgs", orgs)
		cfg := settingAFabric(fabric.FastFabric, o.Seed)
		cfg.Protocol = "bft-smart" // the paper's modified FastFabric-SMaRt
		cfg.NumOrgs = orgs
		cfg.NumOrderers = orgs
		cfg.F = (orgs - 1) / 3
		if cfg.F < 1 {
			cfg.F = 1
		}
		cfg.PeersPerOrg = 1
		w := stdWorkload(0, 0, o.Seed)
		w.NumOrgs = orgs
		res, _ := fabricRun{Cfg: cfg, Workload: w, Rate: o.rate(15000), Window: window}.run()
		endorse := res.Collector.PhaseAvg("endorse")
		cons := res.Collector.PhaseAvg("consensus")
		validate := res.Collector.PhaseAvg("validate")
		t.AddRow(fmt.Sprintf("%d", orgs), ms(endorse), ms(cons), ms(validate), ms(endorse+cons+validate))
	}
	t.Notes = append(t.Notes,
		"paper (4→97 orgs): endorse 9.2→6.5, consensus 10.4→16.2, validate 51.5→6.9, e2e 71.0→29.6")
	return t
}

func runTable3(o Options) *Table {
	t := &Table{
		ID:      "table3",
		Title:   "BIDL-SMaRt latency breakdown (ms)",
		Columns: []string{"orgs", "P1_consensus", "P2_ver_exec", "P3_persist", "P4_execution", "P5_commit", "end_to_end"},
	}
	window := o.scaled(1 * time.Second)
	for _, orgs := range fig6Orgs {
		o.logf("table3: %d orgs", orgs)
		cfg := settingB(orgs, 1, o.Seed)
		w := stdWorkload(0, 0, o.Seed)
		w.NumOrgs = orgs
		res, _ := bidlRun{Cfg: cfg, Workload: w, Rate: o.rate(15000), Window: window}.run()
		cons := res.Collector.PhaseAvg("consensus")
		verexec := res.Collector.PhaseAvg("verexec")
		persist := res.Collector.PhaseAvg("persist")
		commit := res.Collector.PhaseAvg("commit")
		exec := verexec + persist
		e2e := cons
		if exec > e2e {
			e2e = exec
		}
		e2e += commit
		t.AddRow(fmt.Sprintf("%d", orgs), ms(cons), ms(verexec), ms(persist), ms(exec), ms(commit), ms(e2e))
	}
	t.Notes = append(t.Notes,
		"paper (4→97 orgs): consensus 10.3→16.4, ver&exec 59.3→7.6, persist 0.5→2.1, commit ~2.7, e2e = max(P1,P4)+P5 62.5→19.3")
	return t
}

// --- Table 4: malicious participants -----------------------------------------

func init() {
	register(Experiment{
		ID:    "table4",
		Paper: "Table 4",
		Description: "Effective throughput under S1 (fault-free), S2 (malicious " +
			"leader proposing invalid transactions), S3 (malicious broadcaster) " +
			"for StreamChain, HLF, FastFabric, BIDL without denylist, and BIDL.",
		Run: runTable4,
	})
}

func runTable4(o Options) *Table {
	t := &Table{
		ID:      "table4",
		Title:   "Effective throughput under malicious participants (ktxns/s)",
		Columns: []string{"framework", "S1_fault_free", "S2_malicious_leader", "S3_malicious_broadcaster"},
	}
	window := o.scaled(2 * time.Second)
	warm := window / 2 // measure after the system stabilizes post-attack
	wl := stdWorkload(0, 0, o.Seed)

	// StreamChain.
	o.logf("table4: streamchain S1")
	sc, _ := fabricRun{Cfg: settingAFabric(fabric.StreamChain, o.Seed), Workload: wl,
		Rate: o.rate(satStream), Window: window, Warmup: warm}.run()
	t.AddRow("streamchain", ktps(sc.Throughput), "N/A", "N/A")

	// HLF: S1; S2 malicious orderer; S3 unaffected (no multicast ingestion).
	o.logf("table4: hlf S1")
	h1, _ := fabricRun{Cfg: settingAFabric(fabric.HLF, o.Seed), Workload: wl,
		Rate: o.rate(satHLF), Window: window, Warmup: warm}.run()
	o.logf("table4: hlf S2")
	h2, _ := fabricRun{Cfg: settingAFabric(fabric.HLF, o.Seed), Workload: wl,
		Rate: o.rate(satHLF), Window: window, Warmup: warm,
		Mutate: func(c *fabric.Cluster, _ *workload.Generator) {
			c.Orderers[c.LeaderIndex()].ProposeGarbage = true
		}}.run()
	t.AddRow("hlf", ktps(h1.Throughput), ktps(h2.Throughput), ktps(h1.Throughput))

	// FastFabric: only S1 is in its trust model.
	o.logf("table4: fastfabric S1")
	ff, _ := fabricRun{Cfg: settingAFabric(fabric.FastFabric, o.Seed), Workload: wl,
		Rate: o.rate(satFF), Window: window, Warmup: warm}.run()
	t.AddRow("fastfabric", ktps(ff.Throughput), "N/A", "N/A")

	// BIDL without the denylist: S3 hurts and stays hurt.
	noDeny := settingA(o.Seed)
	noDeny.DisableDenylist = true
	o.logf("table4: bidl-no-denylist S1")
	bn1, _ := bidlRun{Cfg: noDeny, Workload: wl, Rate: o.rate(satBIDL), Window: window, Warmup: warm}.run()
	o.logf("table4: bidl-no-denylist S2")
	bn2, _ := bidlRun{Cfg: noDeny, Workload: wl, Rate: o.rate(satBIDL), Window: window, Warmup: warm,
		Mutate: func(c *core.Cluster, _ *workload.Generator) {
			attack.EnableMaliciousLeader(c, c.LeaderIndex())
		}}.run()
	o.logf("table4: bidl-no-denylist S3")
	bn3, _ := bidlRun{Cfg: noDeny, Workload: wl, Rate: o.rate(satBIDL), Window: window, Warmup: warm,
		Mutate: broadcastAttack(100*time.Millisecond, -1)}.run()
	t.AddRow("bidl-no-denylist", ktps(bn1.Throughput), ktps(bn2.Throughput), ktps(bn3.Throughput))

	// BIDL with the full shepherded workflow.
	o.logf("table4: bidl S1")
	b1, _ := bidlRun{Cfg: settingA(o.Seed), Workload: wl, Rate: o.rate(satBIDL), Window: window, Warmup: warm}.run()
	o.logf("table4: bidl S2")
	b2, _ := bidlRun{Cfg: settingA(o.Seed), Workload: wl, Rate: o.rate(satBIDL), Window: window, Warmup: warm,
		Mutate: func(c *core.Cluster, _ *workload.Generator) {
			attack.EnableMaliciousLeader(c, c.LeaderIndex())
		}}.run()
	o.logf("table4: bidl S3")
	b3, _ := bidlRun{Cfg: settingA(o.Seed), Workload: wl, Rate: o.rate(satBIDL), Window: window, Warmup: warm,
		Mutate: broadcastAttack(100*time.Millisecond, -1)}.run()
	t.AddRow("bidl", ktps(b1.Throughput), ktps(b2.Throughput), ktps(b3.Throughput))

	t.Notes = append(t.Notes,
		"paper: SC 2.73 / HLF 9.25 / FF 29.32 / BIDL-no-denylist 41.67,41.67,10.75 / BIDL 41.67 across all")
	return t
}

// --- Figure 7: real-time throughput under the smart adversary ----------------

func init() {
	register(Experiment{
		ID:    "fig7",
		Paper: "Figure 7",
		Description: "Real-time BIDL throughput while a smart adversary attacks " +
			"only one correct node's views: dip, view changes, denylist, recovery.",
		Run: runFig7,
	})
}

func runFig7(o Options) *Table {
	t := &Table{
		ID:      "fig7",
		Title:   "BIDL throughput timeline under the smart adversary",
		Columns: []string{"time_s", "ktps"},
	}
	horizon := o.scaled(6 * time.Second)
	attackAt := horizon / 6
	rate := o.rate(satBIDL * 3 / 4)
	o.logf("fig7: %.0f txns/s, attack at %v", rate, attackAt)
	res, c := bidlRun{Cfg: settingA(o.Seed), Workload: stdWorkload(0, 0, o.Seed),
		Rate: rate, Window: horizon, Warmup: time.Millisecond,
		Mutate: func(cl *core.Cluster, gen *workload.Generator) {
			cfg := attack.DefaultBroadcasterConfig()
			cfg.TargetLeader = cl.LeaderIndex()
			b := attack.NewBroadcaster(cl, gen, cfg)
			b.Start(attackAt)
		}}.run()
	width := horizon / 30
	for i, v := range res.Collector.Timeline(width, horizon) {
		t.AddRow(fmt.Sprintf("%.2f", (time.Duration(i)*width).Seconds()), ktps(v))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("attack starts at %.2fs; view changes observed: %d; clients denied: %d",
			attackAt.Seconds(), res.Collector.ViewChanges, res.Collector.DeniedClients),
		"paper: throughput dips on attack, view changes rotate the leader, the denylist restores peak throughput")
	_ = c
	return t
}

// --- Figure 8: non-determinism and contention robustness ---------------------

func init() {
	register(Experiment{
		ID:    "fig8",
		Paper: "Figure 8",
		Description: "Effective throughput of BIDL vs FastFabric under increasing " +
			"non-determinism ratio and increasing contention ratio.",
		Run: runFig8,
	})
}

func runFig8(o Options) *Table {
	t := &Table{
		ID:      "fig8",
		Title:   "Robustness to non-deterministic and contended workloads (ktxns/s)",
		Columns: []string{"workload", "param", "bidl_ktps", "bidl_abort", "ff_ktps", "ff_abort"},
	}
	window := o.scaled(1200 * time.Millisecond)
	for _, nd := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		o.logf("fig8: nondet %.0f%%", nd*100)
		b, _ := bidlRun{Cfg: settingA(o.Seed), Workload: stdWorkload(0, nd, o.Seed),
			Rate: o.rate(satBIDL), Window: window}.run()
		f, _ := fabricRun{Cfg: settingAFabric(fabric.FastFabric, o.Seed), Workload: stdWorkload(0, nd, o.Seed),
			Rate: o.rate(satFF), Window: window}.run()
		t.AddRow("nondet", pct(nd), ktps(b.Throughput), pct(b.AbortRate), ktps(f.Throughput), pct(f.AbortRate))
	}
	for _, cr := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		o.logf("fig8: contention %.0f%%", cr*100)
		b, _ := bidlRun{Cfg: settingA(o.Seed), Workload: stdWorkload(cr, 0, o.Seed),
			Rate: o.rate(satBIDL), Window: window}.run()
		f, _ := fabricRun{Cfg: settingAFabric(fabric.FastFabric, o.Seed), Workload: stdWorkload(cr, 0, o.Seed),
			Rate: o.rate(satFF), Window: window}.run()
		t.AddRow("contention", pct(cr), ktps(b.Throughput), pct(b.AbortRate), ktps(f.Throughput), pct(f.AbortRate))
	}
	t.Notes = append(t.Notes,
		"paper: both drop with non-determinism (BIDL faster); under contention BIDL holds throughput with zero aborts while FF aborts grow")
	return t
}

// --- Figure 9: multi-datacenter bandwidth -------------------------------------

func init() {
	register(Experiment{
		ID:    "fig9",
		Paper: "Figure 9",
		Description: "BIDL vs BIDL-opt-disabled (no IP multicast, no consensus-on-hash) " +
			"across 4 datacenters with shrinking inter-DC bandwidth.",
		Run: runFig9,
	})
}

func runFig9(o Options) *Table {
	t := &Table{
		ID:      "fig9",
		Title:   "Throughput over 4 datacenters vs inter-DC bandwidth (ktxns/s)",
		Columns: []string{"bandwidth_gbps", "bidl", "bidl_opt_disabled"},
	}
	window := o.scaled(1200 * time.Millisecond)
	for _, gbps := range []float64{10, 5, 2, 1, 0.5} {
		o.logf("fig9: %.1f Gbps inter-DC", gbps)
		mk := func(optDisabled bool) core.Config {
			cfg := settingA(o.Seed)
			cfg.NumDCs = 4
			cfg.Topology = simnet.MultiDCTopology(int64(gbps * float64(simnet.Gbps)))
			cfg.Topology.InterLatency = 10 * time.Millisecond // 20ms RTT (§6.4)
			cfg.ViewTimeout = 400 * time.Millisecond
			cfg.BlockTimeout = 25 * time.Millisecond
			if optDisabled {
				cfg.DisableMulticast = true
				cfg.ConsensusOnPayload = true
			}
			return cfg
		}
		b, _ := bidlRun{Cfg: mk(false), Workload: stdWorkload(0, 0, o.Seed),
			Rate: o.rate(satBIDL / 2), Window: window}.run()
		d, _ := bidlRun{Cfg: mk(true), Workload: stdWorkload(0, 0, o.Seed),
			Rate: o.rate(satBIDL / 2), Window: window}.run()
		t.AddRow(fmt.Sprintf("%.1f", gbps), ktps(b.Throughput), ktps(d.Throughput))
	}
	t.Notes = append(t.Notes,
		"paper: BIDL degrades slowly as bandwidth shrinks; without multicast+consensus-on-hash the gap widens at tight bandwidth")
	return t
}

// --- Figure 10: packet loss ---------------------------------------------------

func init() {
	register(Experiment{
		ID:    "fig10",
		Paper: "Figure 10",
		Description: "BIDL vs FastFabric effective throughput under increasing " +
			"packet-loss rates.",
		Run: runFig10,
	})
}

func runFig10(o Options) *Table {
	t := &Table{
		ID:      "fig10",
		Title:   "Throughput vs packet-loss rate (ktxns/s)",
		Columns: []string{"loss", "bidl", "fastfabric"},
	}
	window := o.scaled(1500 * time.Millisecond)
	for _, loss := range []float64{0, 0.005, 0.01, 0.02, 0.04, 0.08} {
		o.logf("fig10: %.1f%% loss", loss*100)
		cfg := settingA(o.Seed)
		cfg.Topology.LossRate = loss
		b, _ := bidlRun{Cfg: cfg, Workload: stdWorkload(0, 0, o.Seed),
			Rate: o.rate(satBIDL * 3 / 4), Window: window}.run()
		fcfg := settingAFabric(fabric.FastFabric, o.Seed)
		fcfg.Topology.LossRate = loss
		f, _ := fabricRun{Cfg: fcfg, Workload: stdWorkload(0, 0, o.Seed),
			Rate: o.rate(satFF * 3 / 4), Window: window}.run()
		t.AddRow(pct(loss), ktps(b.Throughput), ktps(f.Throughput))
	}
	t.Notes = append(t.Notes,
		"paper: BIDL's gain over FF is largest at low loss and narrows as loss grows")
	return t
}

// --- Ablations ----------------------------------------------------------------

func init() {
	register(Experiment{
		ID:    "ablation",
		Paper: "Design ablations (extension)",
		Description: "BIDL design-choice ablations: parallel vs sequential workflow, " +
			"IP multicast, consensus-on-hash.",
		Run: runAblation,
	})
}

func runAblation(o Options) *Table {
	t := &Table{
		ID:      "ablation",
		Title:   "BIDL ablations (setting A)",
		Columns: []string{"variant", "ktps", "avg_ms", "p99_ms", "spec_success"},
	}
	window := o.scaled(1200 * time.Millisecond)
	run := func(name string, mut func(*core.Config)) {
		o.logf("ablation: %s", name)
		cfg := settingA(o.Seed)
		mut(&cfg)
		res, _ := bidlRun{Cfg: cfg, Workload: stdWorkload(0.2, 0, o.Seed),
			Rate: o.rate(satBIDL * 3 / 4), Window: window}.run()
		t.AddRow(name, ktps(res.Throughput), ms(res.AvgLatency), ms(res.P99), pct(res.SpecSuccess))
	}
	run("bidl-full", func(*core.Config) {})
	run("no-speculation", func(c *core.Config) { c.DisableSpeculation = true })
	run("no-multicast", func(c *core.Config) { c.DisableMulticast = true })
	run("consensus-on-payload", func(c *core.Config) { c.ConsensusOnPayload = true })
	t.Notes = append(t.Notes,
		"no-speculation reverts to the sequential workflow: latency rises by roughly the execution phase")
	return t
}
