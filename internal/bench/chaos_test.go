package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/bidl-framework/bidl/internal/chaos"
	"github.com/bidl-framework/bidl/internal/scenario"
)

// TestChaosSpecsMatchCatalogFiles pins the chaos experiment's programmatic
// sweep to the JSON spec files the catalog (and `bidl-sim -scenario`) runs:
// the i-th chaosSpecs entry must equal the i-th catalog entry's parsed
// file, so the two representations cannot drift apart silently.
func TestChaosSpecsMatchCatalogFiles(t *testing.T) {
	specs := chaosSpecs()
	cat := chaos.Catalog()
	if len(specs) != len(cat) {
		t.Fatalf("chaosSpecs has %d entries, catalog has %d", len(specs), len(cat))
	}
	for i, e := range cat {
		data, err := os.ReadFile(filepath.Join("..", "..", e.File))
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		fromFile, err := scenario.Parse(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", e.ID, err)
		}
		if !reflect.DeepEqual(fromFile, specs[i]) {
			t.Errorf("catalog entry %s (%s) differs from chaosSpecs[%d]:\nfile: %+v\ncode: %+v",
				e.ID, e.File, i, fromFile, specs[i])
		}
	}
}

// TestChaosExperimentRegistered smoke-checks the sweep wiring: every spec
// validates, and the table assembles one row per catalog entry.
func TestChaosExperimentRegistered(t *testing.T) {
	e, ok := Get("chaos")
	if !ok {
		t.Fatal("chaos experiment not registered")
	}
	o := DefaultOptions()
	specs := e.Scenarios(o)
	if len(specs) != len(chaos.Catalog()) {
		t.Fatalf("%d sweep points, want %d", len(specs), len(chaos.Catalog()))
	}
	for _, sp := range specs {
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: %v", sp.Name, err)
		}
		if sp.Seed != o.Seed {
			t.Errorf("%s: seed %d not threaded from options", sp.Name, sp.Seed)
		}
	}
	tab := e.Table(o, make([]Result, len(specs)))
	if len(tab.Rows) != len(specs) {
		t.Fatalf("table has %d rows, want %d", len(tab.Rows), len(specs))
	}
}
