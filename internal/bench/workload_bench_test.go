package bench

import "testing"

// Wrappers so the workload microbenchmarks run under the ordinary
// `go test -bench` path; cmd/bidl-perfgate calls the exported functions
// directly via testing.Benchmark.

func BenchmarkPrepopulate(b *testing.B)   { PrepopulateBench(b) }
func BenchmarkGeneratorNext(b *testing.B) { GeneratorNextBench(b) }

// TestPrepopulateMemoryFlat is the in-tree form of the O(1)-memory claim:
// per-node prepopulation cost may not grow with the account count. The
// perfgate run measures the full three-decade curve; here two endpoints two
// decades apart keep the test fast.
func TestPrepopulateMemoryFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed")
	}
	small := testing.Benchmark(func(b *testing.B) { prepopulateBenchAt(b, 10_000) })
	large := testing.Benchmark(func(b *testing.B) { prepopulateBenchAt(b, 1_000_000) })
	pts := []PrepopPoint{
		{Accounts: 10_000, BytesPerOp: float64(small.AllocedBytesPerOp())},
		{Accounts: 1_000_000, BytesPerOp: float64(large.AllocedBytesPerOp())},
	}
	if f := Flatness(pts); f > 2 {
		t.Fatalf("prepopulation bytes/op grew %.1fx from 10k to 1M accounts (%v); want flat",
			f, pts)
	}
}
