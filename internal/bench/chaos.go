package bench

import (
	"fmt"
	"time"

	"github.com/bidl-framework/bidl/internal/chaos"
	"github.com/bidl-framework/bidl/internal/scenario"
)

// --- Chaos catalog sweep ----------------------------------------------------

func init() {
	register(Experiment{
		ID:    "chaos",
		Paper: "robustness",
		Description: "Sweep the chaos catalog (crash/restart, partition heal, DC outage, " +
			"drop storm, churn, sequencer failover, fabric crash) and report per-scenario " +
			"commit progress, view changes, and the end-of-run consistency audit.",
		Scenarios: chaosScenarios,
		Table:     chaosTable,
	})
}

// chaosSpecs returns the catalog scenarios in catalog order, built
// programmatically so `bidl-bench -run chaos` works from any working
// directory. The examples/scenario-chaos-*.json files are the same specs in
// JSON form (the catalog's runnable-from-JSON surface, fed to `bidl-sim
// -scenario` and the chaos test gate); TestChaosSpecsMatchCatalogFiles pins
// the two representations together, so edit both or neither.
func chaosSpecs() []scenario.Scenario {
	ms := func(n int) scenario.Duration { return scenario.Duration(time.Duration(n) * time.Millisecond) }
	return []scenario.Scenario{
		{
			Name:      "chaos-crash",
			Framework: scenario.FrameworkBIDL,
			Nodes:     scenario.NodesSpec{Orgs: 6, PerOrg: 2, Consensus: 4},
			Load:      scenario.LoadSpec{Rate: 2000, Window: ms(1000)},
			Faults: []scenario.FaultSpec{
				{Kind: chaos.KindCrash, At: ms(200), Duration: ms(300), Org: 2, Node: 0},
			},
		},
		{
			Name:      "chaos-partition",
			Framework: scenario.FrameworkBIDL,
			Nodes:     scenario.NodesSpec{Orgs: 6, PerOrg: 2, Consensus: 4},
			Load:      scenario.LoadSpec{Rate: 2000, Window: ms(1000)},
			Faults: []scenario.FaultSpec{
				{Kind: chaos.KindPartition, At: ms(200), Duration: ms(250), Org: 1},
			},
		},
		{
			Name:      "chaos-dc-outage",
			Framework: scenario.FrameworkBIDL,
			Nodes:     scenario.NodesSpec{Orgs: 6, PerOrg: 1, Consensus: 4, Datacenters: 3},
			Load:      scenario.LoadSpec{Rate: 1500, Window: ms(1200)},
			Faults: []scenario.FaultSpec{
				{Kind: chaos.KindDCOutage, At: ms(250), Duration: ms(250), DC: 2},
			},
		},
		{
			Name:      "chaos-storm",
			Framework: scenario.FrameworkBIDL,
			Nodes:     scenario.NodesSpec{Orgs: 6, PerOrg: 1, Consensus: 4},
			Tuning:    scenario.TuningSpec{ViewTimeout: ms(100)},
			Load:      scenario.LoadSpec{Rate: 2000, Window: ms(1000)},
			Faults: []scenario.FaultSpec{
				{Kind: chaos.KindDropStorm, At: ms(200), Duration: ms(250), Rate: 0.7},
			},
		},
		{
			Name:      "chaos-churn",
			Framework: scenario.FrameworkBIDL,
			Nodes:     scenario.NodesSpec{Orgs: 6, PerOrg: 2, Consensus: 4},
			Load:      scenario.LoadSpec{Rate: 2000, Window: ms(1200)},
			Faults: []scenario.FaultSpec{
				{Kind: chaos.KindChurn, At: ms(150), Count: 4, Period: ms(200)},
			},
		},
		{
			Name:      "chaos-seq-failover",
			Framework: scenario.FrameworkBIDL,
			Nodes:     scenario.NodesSpec{Orgs: 6, PerOrg: 1, Consensus: 4},
			Load:      scenario.LoadSpec{Rate: 2000, Window: ms(1000)},
			Faults: []scenario.FaultSpec{
				{Kind: chaos.KindSeqFailover, At: ms(200), Duration: ms(200)},
			},
		},
		{
			Name:      "chaos-fabric-crash",
			Framework: scenario.FrameworkHLF,
			Nodes:     scenario.NodesSpec{Orgs: 4, PerOrg: 2, Consensus: 4},
			Load:      scenario.LoadSpec{Rate: 500, Window: ms(1000)},
			Faults: []scenario.FaultSpec{
				{Kind: chaos.KindCrash, At: ms(200), Duration: ms(300), Org: 1, Node: 1},
			},
		},
	}
}

// chaosScenarios ignores Options.Scale deliberately: each catalog window is
// calibrated against the invariant gates in internal/chaos (fault windows
// must end early enough for recovery to be observable), so shrinking them
// would change what the sweep exercises.
func chaosScenarios(o Options) []scenario.Scenario {
	specs := chaosSpecs()
	for i := range specs {
		specs[i].Seed = o.Seed
	}
	return specs
}

func chaosTable(o Options, results []Result) *Table {
	t := &Table{
		ID:      "chaos",
		Title:   "chaos catalog sweep",
		Columns: []string{"scenario", "framework", "committed", "vchanges", "ktps", "consistent"},
		Notes: []string{
			"invariant gates (progress floors, trace-backed recovery deadlines) run in `go test ./internal/chaos`",
		},
	}
	specs := chaosSpecs()
	for i, r := range results {
		committed, vchanges := uint64(0), uint64(0)
		if r.Collector != nil {
			committed = uint64(r.Collector.NumCommitted())
			vchanges = r.Collector.ViewChanges
		}
		consistent := "yes"
		if r.SafetyErr != nil {
			consistent = r.SafetyErr.Error()
		}
		t.AddRow(
			specs[i].Name,
			specs[i].WithDefaults().Framework,
			fmt.Sprintf("%d", committed),
			fmt.Sprintf("%d", vchanges),
			ktps(r.Throughput),
			consistent,
		)
	}
	return t
}
