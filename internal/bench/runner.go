package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the parallel sweep runner. Every experiment is a sweep of
// fully independent simulation runs — each sweep point builds its own
// simnet.Sim, RNG, cluster, and metrics.Collector from the experiment seed,
// shares no state with its siblings, and is pure with respect to its slot in
// the result slice. gather fans those points out to a worker pool and puts
// results back in task order, so an experiment table is byte-identical
// whether Workers is 1 or GOMAXPROCS.

// workers resolves Options.Workers: 0/1 → serial, <0 → GOMAXPROCS.
func (o Options) workers() int {
	switch {
	case o.Workers < 0:
		return runtime.GOMAXPROCS(0)
	case o.Workers == 0:
		return 1
	default:
		return o.Workers
	}
}

// gather executes tasks across o.workers() goroutines and returns results in
// task order. Tasks are claimed from a shared atomic cursor, so long points
// (large org counts, long windows) don't convoy behind short ones.
func gather[T any](o Options, tasks []func() T) []T {
	n := len(tasks)
	out := make([]T, n)
	w := o.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i, task := range tasks {
			out[i] = task()
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = tasks[i]()
			}
		}()
	}
	wg.Wait()
	return out
}
