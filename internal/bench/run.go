package bench

import (
	"time"

	"github.com/bidl-framework/bidl/internal/scenario"
	"github.com/bidl-framework/bidl/internal/trace"
)

// Result summarizes one framework run (the scenario driver's result type;
// re-exported so tables and callers keep their historical name).
type Result = scenario.Result

// ScheduleTicks drives fn once per millisecond with the txn count owed at
// that tick, returning the total scheduled (see scenario.ScheduleTicks).
func ScheduleTicks(rate float64, window time.Duration, fn func(time.Duration, int)) int {
	return scenario.ScheduleTicks(rate, window, fn)
}

// runScenario executes one sweep point through the shared scenario driver,
// wiring the harness-level accounting (virtual-event counter, trace sink)
// around it. Spec validation errors surface as SafetyErr so a single bad
// point cannot abort a whole gathered sweep.
func runScenario(o Options, sp scenario.Scenario) Result {
	var rc scenario.RunConfig
	if o.TraceSink != nil {
		rc.Tracer = trace.New(trace.Options{})
	}
	// Harness-level PDES selection: an explicit sim_workers in the spec
	// wins; otherwise the option applies to every point of the sweep.
	if o.SimWorkers > 1 && sp.SimWorkers == 0 {
		sp.SimWorkers = o.SimWorkers
	}
	// Sharding overlay: an explicit shards in the spec wins; otherwise
	// every BIDL point of the sweep runs as an o.Shards-channel deployment
	// (sharding is a BIDL-only feature, so baseline points are untouched).
	if o.Shards > 1 && sp.Shards == 0 &&
		sp.WithDefaults().Framework == scenario.FrameworkBIDL {
		sp.Shards = o.Shards
	}
	rc.ForceSerialSim = o.ForceSerialSim
	res, err := scenario.RunWith(sp, rc)
	if err != nil {
		res.SafetyErr = err
		return res
	}
	o.addEvents(res.Events)
	if o.TraceSink != nil {
		o.TraceSink(rc.Tracer)
	}
	return res
}
