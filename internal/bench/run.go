package bench

import (
	"math"
	"time"

	"github.com/bidl-framework/bidl/internal/attack"
	"github.com/bidl-framework/bidl/internal/baseline/fabric"
	"github.com/bidl-framework/bidl/internal/core"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/metrics"
	"github.com/bidl-framework/bidl/internal/trace"
	"github.com/bidl-framework/bidl/internal/workload"
)

// Result summarizes one framework run.
type Result struct {
	Throughput  float64 // effective txns/s in the measurement window
	AvgLatency  time.Duration
	P50, P99    time.Duration
	AbortRate   float64
	SpecSuccess float64
	Events      uint64 // virtual events executed by the run's simulator
	Collector   *metrics.Collector
	SafetyErr   error
}

// scheduleLoad submits rate txns/s over window onto a BIDL cluster.
func scheduleLoadBIDL(c *core.Cluster, gen *workload.Generator, rate float64, window time.Duration) int {
	return ScheduleTicks(rate, window, func(at time.Duration, n int) {
		c.SubmitAt(at, gen.Batch(n)...)
	})
}

// scheduleLoadFabric submits rate txns/s over window onto a fabric cluster.
func scheduleLoadFabric(c *fabric.Cluster, gen *workload.Generator, rate float64, window time.Duration) int {
	return ScheduleTicks(rate, window, func(at time.Duration, n int) {
		c.SubmitAt(at, gen.Batch(n)...)
	})
}

// ScheduleTicks drives fn once per millisecond with the txn count owed at
// that tick, returning the total scheduled. The count owed is derived from
// the rounded cumulative target rate*elapsed rather than a running float
// accumulator, so rounding error never compounds: for any rate, the total
// scheduled over window is exactly round(rate * window_seconds).
func ScheduleTicks(rate float64, window time.Duration, fn func(time.Duration, int)) int {
	tick := time.Millisecond
	total := 0
	for at := time.Duration(0); at < window; at += tick {
		target := int(math.Round(rate * (at + tick).Seconds()))
		if n := target - total; n > 0 {
			fn(at, n)
			total = target
		}
	}
	return total
}

// bidlRun executes a BIDL run and returns its result.
type bidlRun struct {
	Cfg      core.Config
	Workload workload.Config
	Rate     float64
	Window   time.Duration // load window
	Warmup   time.Duration
	Drain    time.Duration
	// Mutate, when non-nil, adjusts the cluster before the run (attacks).
	Mutate func(*core.Cluster, *workload.Generator)
}

func (r bidlRun) run(o Options) (Result, *core.Cluster) {
	if r.Warmup == 0 {
		r.Warmup = r.Window / 5
	}
	if r.Drain == 0 {
		r.Drain = 500 * time.Millisecond
	}
	if o.TraceSink != nil && r.Cfg.Tracer == nil {
		r.Cfg.Tracer = trace.New(trace.Options{})
	}
	c := core.NewCluster(r.Cfg)
	r.Workload.NumOrgs = r.Cfg.NumOrgs
	gen := workload.NewGenerator(r.Workload, c.Scheme)
	ids := make([]crypto.Identity, r.Workload.NumClients)
	for i := range ids {
		ids[i] = gen.Client(i)
	}
	c.RegisterClients(ids)
	c.Prepopulate(gen.Prepopulate)
	if r.Mutate != nil {
		r.Mutate(c, gen)
	}
	scheduleLoadBIDL(c, gen, r.Rate, r.Window)
	c.Run(r.Window + r.Drain)
	o.addEvents(c.Sim.Events())
	if o.TraceSink != nil && r.Cfg.Tracer != nil {
		o.TraceSink(r.Cfg.Tracer)
	}
	res := summarize(c.Collector, r.Warmup, r.Window, c.CheckSafety())
	res.Events = c.Sim.Events()
	return res, c
}

// fabricRun executes a baseline run and returns its result.
type fabricRun struct {
	Cfg      fabric.Config
	Workload workload.Config
	Rate     float64
	Window   time.Duration
	Warmup   time.Duration
	Drain    time.Duration
	Mutate   func(*fabric.Cluster, *workload.Generator)
}

func (r fabricRun) run(o Options) (Result, *fabric.Cluster) {
	if r.Warmup == 0 {
		r.Warmup = r.Window / 5
	}
	if r.Drain == 0 {
		r.Drain = 500 * time.Millisecond
	}
	if o.TraceSink != nil && r.Cfg.Tracer == nil {
		r.Cfg.Tracer = trace.New(trace.Options{})
	}
	c := fabric.NewCluster(r.Cfg)
	r.Workload.NumOrgs = r.Cfg.NumOrgs
	gen := workload.NewGenerator(r.Workload, c.Scheme)
	ids := make([]crypto.Identity, r.Workload.NumClients)
	for i := range ids {
		ids[i] = gen.Client(i)
	}
	c.RegisterClients(ids)
	c.Prepopulate(gen.Prepopulate)
	if r.Mutate != nil {
		r.Mutate(c, gen)
	}
	scheduleLoadFabric(c, gen, r.Rate, r.Window)
	c.Run(r.Window + r.Drain)
	o.addEvents(c.Sim.Events())
	if o.TraceSink != nil && r.Cfg.Tracer != nil {
		o.TraceSink(r.Cfg.Tracer)
	}
	res := summarize(c.Collector, r.Warmup, r.Window, c.CheckSafety())
	res.Events = c.Sim.Events()
	return res, c
}

func summarize(col *metrics.Collector, warmup, window time.Duration, safety error) Result {
	return Result{
		Throughput:  col.EffectiveThroughput(warmup, window),
		AvgLatency:  col.AvgLatency(warmup, window),
		P50:         col.PercentileLatency(0.5, warmup, window),
		P99:         col.PercentileLatency(0.99, warmup, window),
		AbortRate:   col.AbortRate(),
		SpecSuccess: col.SpecSuccessRate(),
		Collector:   col,
		SafetyErr:   safety,
	}
}

// newDebugCluster builds a loaded BIDL cluster for diagnostics.
func newDebugCluster(cfg core.Config, w workload.Config, rate float64, window time.Duration) *core.Cluster {
	c := core.NewCluster(cfg)
	w.NumOrgs = cfg.NumOrgs
	gen := workload.NewGenerator(w, c.Scheme)
	ids := make([]crypto.Identity, w.NumClients)
	for i := range ids {
		ids[i] = gen.Client(i)
	}
	c.RegisterClients(ids)
	c.Prepopulate(gen.Prepopulate)
	scheduleLoadBIDL(c, gen, rate, window)
	return c
}

// broadcastAttack wires the Table 4 S3 / Fig 7 broadcaster.
func broadcastAttack(start time.Duration, target int) func(*core.Cluster, *workload.Generator) {
	return func(c *core.Cluster, gen *workload.Generator) {
		cfg := attack.DefaultBroadcasterConfig()
		cfg.TargetLeader = target
		b := attack.NewBroadcaster(c, gen, cfg)
		b.Start(start)
	}
}
