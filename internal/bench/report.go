package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"
)

// RunStats records the wall-clock cost of regenerating one experiment —
// the machine-readable perf trail (BENCH_*.json) that tracks harness speed
// across PRs. Virtual events count every discrete-event execution across all
// of the experiment's runs; events-per-wall-second is the harness's true
// throughput and is what parallelism and event-loop work should move.
type RunStats struct {
	ID            string  `json:"id"`
	WallSeconds   float64 `json:"wall_seconds"`
	VirtualEvents uint64  `json:"virtual_events"`
	EventsPerSec  float64 `json:"events_per_wall_sec"`
}

// Report aggregates RunStats for a harness invocation.
type Report struct {
	Scale              float64    `json:"scale"`
	Seed               int64      `json:"seed"`
	Workers            int        `json:"workers"`
	GoMaxProcs         int        `json:"gomaxprocs"`
	TotalWallSeconds   float64    `json:"total_wall_seconds"`
	TotalVirtualEvents uint64     `json:"total_virtual_events"`
	Experiments        []RunStats `json:"experiments"`
}

// NewReport returns a report stamped with the options' execution parameters.
func NewReport(o Options) *Report {
	return &Report{
		Scale:      o.Scale,
		Seed:       o.Seed,
		Workers:    o.workers(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
}

// Add appends one experiment's stats and folds it into the totals.
func (r *Report) Add(s RunStats) {
	r.Experiments = append(r.Experiments, s)
	r.TotalWallSeconds += s.WallSeconds
	r.TotalVirtualEvents += s.VirtualEvents
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Measure runs the experiment registered under id and reports both its table
// and its wall-clock/virtual-event stats.
func Measure(id string, o Options) (*Table, RunStats, error) {
	e, ok := Get(id)
	if !ok {
		return nil, RunStats{}, fmt.Errorf("bench: unknown experiment %q", id)
	}
	var events atomic.Uint64
	o.events = &events
	start := time.Now()
	table, err := e.Run(o)
	if err != nil {
		return nil, RunStats{}, err
	}
	wall := time.Since(start).Seconds()
	s := RunStats{ID: id, WallSeconds: wall, VirtualEvents: events.Load()}
	if wall > 0 {
		s.EventsPerSec = float64(s.VirtualEvents) / wall
	}
	return table, s, nil
}
