package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The perf-regression gate (`make bench-check`, cmd/bidl-perfgate) compares
// a fresh measurement against the committed BENCH_*.json trail. Two metric
// classes with different rigor:
//
//   - machine-independent metrics (virtual event counts, allocs/op,
//     vevents/op) gate tightly — virtual events exactly, the per-op
//     counters within a small tolerance (they are amortized over b.N, so
//     the last iteration's rounding moves them slightly);
//   - wall-clock metrics (events/wall-second, ns/op) gate loosely by
//     default, because the trail was recorded on a specific machine; the
//     explicit tolerances exist to catch catastrophic regressions anywhere
//     and can be tightened via flags on a pinned CI host.

// GateMetric is one baseline-vs-current comparison.
type GateMetric struct {
	Name     string
	Baseline float64
	Current  float64
	// Tolerance is the maximum allowed relative regression (0.15 = 15%
	// worse than baseline passes, more fails). Ignored when Exact.
	Tolerance float64
	// HigherIsWorse orients the regression: true for costs (ns/op,
	// allocs/op), false for rates (events/wall-second).
	HigherIsWorse bool
	// Exact requires Baseline == Current (deterministic counters).
	Exact bool
}

// Regression returns the signed relative change oriented so that positive
// means worse (cost grew, or rate shrank).
func (m GateMetric) Regression() float64 {
	if m.Baseline == 0 {
		if m.Current == 0 {
			return 0
		}
		if m.HigherIsWorse {
			return 1
		}
		return -1
	}
	d := (m.Current - m.Baseline) / m.Baseline
	if !m.HigherIsWorse {
		d = -d
	}
	return d
}

// OK reports whether the metric passes its gate.
func (m GateMetric) OK() bool {
	if m.Exact {
		return m.Baseline == m.Current
	}
	return m.Regression() <= m.Tolerance
}

// GateReport is the full per-metric delta table of one gate run.
type GateReport struct {
	Title   string
	Metrics []GateMetric
}

// Add appends one comparison.
func (g *GateReport) Add(m GateMetric) { g.Metrics = append(g.Metrics, m) }

// OK reports whether every metric passed.
func (g *GateReport) OK() bool {
	for _, m := range g.Metrics {
		if !m.OK() {
			return false
		}
	}
	return true
}

// Render writes the per-metric delta table.
func (g *GateReport) Render(w io.Writer) {
	fmt.Fprintf(w, "== perf gate: %s ==\n", g.Title)
	fmt.Fprintf(w, "  %-24s %14s %14s %9s %11s  %s\n",
		"metric", "baseline", "current", "delta", "tolerance", "status")
	for _, m := range g.Metrics {
		tol := fmt.Sprintf("%.1f%%", 100*m.Tolerance)
		if m.Exact {
			tol = "exact"
		}
		status := "ok"
		if !m.OK() {
			status = "FAIL"
		}
		delta := 100 * m.Regression()
		delta += 0 // normalize -0 so the sign prefix renders cleanly
		sign := "+"
		if delta < 0 {
			sign = ""
		}
		fmt.Fprintf(w, "  %-24s %14.1f %14.1f %8s%.1f%% %11s  %s\n",
			m.Name, m.Baseline, m.Current, sign, delta, tol, status)
	}
	if g.OK() {
		fmt.Fprintln(w, "  result: PASS")
	} else {
		fmt.Fprintln(w, "  result: FAIL (regression beyond tolerance; deliberate changes refresh baselines with -update)")
	}
}

// GateTolerances bundles the gate's flag-tunable limits.
type GateTolerances struct {
	// Wall caps the allowed drop in events/wall-second (default 0.9: fail
	// only past a 10x slowdown — the trail machine differs from CI hosts).
	Wall float64
	// NsPerOp caps the allowed growth in the hot-path ns/op (default 9.0,
	// i.e. 10x, for the same machine-portability reason).
	NsPerOp float64
	// AllocsPerOp caps growth in allocs/op (default 0.15 — machine-
	// independent, so tight).
	AllocsPerOp float64
	// VEventsPerOp caps growth in virtual events per op (default 0.10).
	VEventsPerOp float64
}

// DefaultGateTolerances returns the portable defaults described above.
func DefaultGateTolerances() GateTolerances {
	return GateTolerances{Wall: 0.9, NsPerOp: 9.0, AllocsPerOp: 0.15, VEventsPerOp: 0.10}
}

// CompareRunStats gates a fresh experiment measurement against its entry in
// a committed Report: virtual events must match exactly (same scale + seed
// ⇒ deterministic), events/wall-second within the wall tolerance.
func CompareRunStats(baseline RunStats, current RunStats, tol GateTolerances) *GateReport {
	g := &GateReport{Title: fmt.Sprintf("experiment %s", baseline.ID)}
	g.Add(GateMetric{Name: "virtual_events",
		Baseline: float64(baseline.VirtualEvents), Current: float64(current.VirtualEvents),
		Exact: true})
	g.Add(GateMetric{Name: "events_per_wall_sec",
		Baseline: baseline.EventsPerSec, Current: current.EventsPerSec,
		Tolerance: tol.Wall, HigherIsWorse: false})
	return g
}

// CompareShardingStats gates a fresh sharding-experiment measurement against
// its BENCH_sharding.json entry. Virtual events gate exactly, like every
// trail experiment; event throughput gates loosely both in aggregate and
// normalized per sequenced channel (channels = ShardingChannels()), so the
// trailed headline is "events one shard's pipeline sustains per wall-second"
// rather than a number that silently grows with the sweep's shard counts.
func CompareShardingStats(baseline, current RunStats, channels int, tol GateTolerances) *GateReport {
	g := CompareRunStats(baseline, current, tol)
	g.Title = fmt.Sprintf("experiment %s (%d channels)", baseline.ID, channels)
	if channels > 0 {
		g.Add(GateMetric{Name: "events_per_channel_sec",
			Baseline:  baseline.EventsPerSec / float64(channels),
			Current:   current.EventsPerSec / float64(channels),
			Tolerance: tol.Wall, HigherIsWorse: false})
	}
	return g
}

// HotpathStats is the gated slice of one microbenchmark entry in
// BENCH_hotpath.json.
type HotpathStats struct {
	NsPerOp      float64 `json:"ns_per_op"`
	VEventsPerOp float64 `json:"vevents_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
}

// CompareHotpath gates a fresh hot-path benchmark run against the committed
// microbenchmark baseline.
func CompareHotpath(baseline, current HotpathStats, tol GateTolerances) *GateReport {
	g := &GateReport{Title: "BenchmarkPipelineHotPath"}
	g.Add(GateMetric{Name: "ns_per_op",
		Baseline: baseline.NsPerOp, Current: current.NsPerOp,
		Tolerance: tol.NsPerOp, HigherIsWorse: true})
	g.Add(GateMetric{Name: "allocs_per_op",
		Baseline: baseline.AllocsPerOp, Current: current.AllocsPerOp,
		Tolerance: tol.AllocsPerOp, HigherIsWorse: true})
	g.Add(GateMetric{Name: "vevents_per_op",
		Baseline: baseline.VEventsPerOp, Current: current.VEventsPerOp,
		Tolerance: tol.VEventsPerOp, HigherIsWorse: true})
	return g
}

// WorkloadStats is the gated slice of the workload microbenchmark baseline
// in BENCH_workload.json: per-node prepopulation cost, per-transaction
// generation cost, and the flatness of the memory-per-account curve (max/min
// prepopulation bytes/op across three decades of account counts — the O(1)
// guarantee as a single number).
type WorkloadStats struct {
	PrepopNsPerOp     float64 `json:"prepop_ns_per_op"`
	PrepopBytesPerOp  float64 `json:"prepop_bytes_per_op"`
	PrepopAllocsPerOp float64 `json:"prepop_allocs_per_op"`
	PrepopFlatness    float64 `json:"prepop_flatness"`
	NextNsPerOp       float64 `json:"next_ns_per_op"`
	NextBytesPerOp    float64 `json:"next_bytes_per_op"`
	NextAllocsPerOp   float64 `json:"next_allocs_per_op"`
}

// CompareWorkload gates fresh workload microbenchmark runs against the
// committed baseline. Bytes/op, allocs/op, and the flatness ratio are
// machine-independent and gate tightly; ns/op gates loosely.
func CompareWorkload(baseline, current WorkloadStats, tol GateTolerances) *GateReport {
	g := &GateReport{Title: "workload microbenchmarks"}
	g.Add(GateMetric{Name: "prepop_ns_per_op",
		Baseline: baseline.PrepopNsPerOp, Current: current.PrepopNsPerOp,
		Tolerance: tol.NsPerOp, HigherIsWorse: true})
	g.Add(GateMetric{Name: "prepop_bytes_per_op",
		Baseline: baseline.PrepopBytesPerOp, Current: current.PrepopBytesPerOp,
		Tolerance: tol.AllocsPerOp, HigherIsWorse: true})
	g.Add(GateMetric{Name: "prepop_allocs_per_op",
		Baseline: baseline.PrepopAllocsPerOp, Current: current.PrepopAllocsPerOp,
		Tolerance: tol.AllocsPerOp, HigherIsWorse: true})
	g.Add(GateMetric{Name: "prepop_flatness",
		Baseline: baseline.PrepopFlatness, Current: current.PrepopFlatness,
		Tolerance: tol.AllocsPerOp, HigherIsWorse: true})
	g.Add(GateMetric{Name: "next_ns_per_op",
		Baseline: baseline.NextNsPerOp, Current: current.NextNsPerOp,
		Tolerance: tol.NsPerOp, HigherIsWorse: true})
	g.Add(GateMetric{Name: "next_bytes_per_op",
		Baseline: baseline.NextBytesPerOp, Current: current.NextBytesPerOp,
		Tolerance: tol.AllocsPerOp, HigherIsWorse: true})
	g.Add(GateMetric{Name: "next_allocs_per_op",
		Baseline: baseline.NextAllocsPerOp, Current: current.NextAllocsPerOp,
		Tolerance: tol.AllocsPerOp, HigherIsWorse: true})
	return g
}

// LoadReport parses a committed BENCH_serial.json-style trail file.
func LoadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// FindRunStats returns the trail entry for one experiment id.
func (r *Report) FindRunStats(id string) (RunStats, bool) {
	for _, s := range r.Experiments {
		if s.ID == id {
			return s, true
		}
	}
	return RunStats{}, false
}
