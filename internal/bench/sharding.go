package bench

import (
	"fmt"
	"time"

	"github.com/bidl-framework/bidl/internal/scenario"
)

// --- Sharding: multi-channel scale-out (extension) ---------------------------

// The sharding experiment measures the multi-channel deployment
// (scenario.ShardedHarness, DESIGN.md §14): shard count × cross-shard ratio
// on BIDL, against the unsharded single-channel engine and both Fabric
// baselines at the same per-shard cluster size. Offered load scales with the
// shard count — each shard is a full copy of the cluster — so the no-cross
// rows show near-linear scale-out while rising cross-shard ratios surface
// the 2PC coordination cost (two sequencing rounds plus lock conflicts).

// shardOrgs keeps per-shard clusters small enough that a 4-shard sweep point
// stays cheap; every row (sharded or not) uses the same per-cluster size so
// rows compare like for like.
const shardOrgs = 12

// shardBaseRate is the per-shard offered load (txns/s) for the BIDL rows at
// this reduced cluster size; the baselines run at their calibrated fraction.
const (
	shardBaseRate = 16000
	shardRateFF   = 12000
	shardRateHLF  = 6000
)

func init() {
	register(Experiment{
		ID:    "sharding",
		Paper: "Sharded multi-channel scale-out (extension)",
		Description: "BIDL sharded over 1/2/4 channels with cross-shard 2PC ratios " +
			"of 0/5%/20%, vs the unsharded engine and the FastFabric/HLF " +
			"baselines at the same per-cluster size.",
		Scenarios: shardingScenarios,
		Table:     shardingTable,
	})
}

// ShardingChannels returns the total number of independently sequenced
// channels simulated across the sharding sweep — every shard of every sweep
// point. It is the divisor behind the perf gate's per-channel event
// throughput (cmd/bidl-perfgate -sharding): aggregate events/wall-second
// over the sweep normalized to one sequencer+consensus channel.
func ShardingChannels() int {
	n := 0
	for _, p := range shardingPoints() {
		n += p.shards
	}
	return n
}

type shardingPoint struct {
	framework string
	shards    int
	ratio     float64
	rate      float64 // total offered load before Options scaling
}

func shardingPoints() []shardingPoint {
	pts := []shardingPoint{
		{scenario.FrameworkBIDL, 1, 0, shardBaseRate},
	}
	for _, n := range []int{2, 4} {
		for _, r := range []float64{0, 0.05, 0.2} {
			pts = append(pts, shardingPoint{scenario.FrameworkBIDL, n, r, float64(n) * shardBaseRate})
		}
	}
	pts = append(pts,
		shardingPoint{scenario.FrameworkFastFabric, 1, 0, shardRateFF},
		shardingPoint{scenario.FrameworkHLF, 1, 0, shardRateHLF},
	)
	return pts
}

func shardingScenarios(o Options) []scenario.Scenario {
	window := o.scaled(1 * time.Second)
	var specs []scenario.Scenario
	for _, p := range shardingPoints() {
		name := fmt.Sprintf("%s shards=%d cross=%g", p.framework, p.shards, p.ratio)
		sp := spec(p.framework, name, o, 0, 0)
		sp.Nodes = scenario.NodesSpec{Orgs: shardOrgs}
		if p.framework == scenario.FrameworkBIDL && p.shards > 1 {
			sp.Shards = p.shards
			sp.CrossShardRatio = p.ratio
		}
		sp.Load = load(o.rate(p.rate), window)
		specs = append(specs, sp)
	}
	return specs
}

func shardingTable(o Options, res []Result) *Table {
	t := &Table{
		ID:    "sharding",
		Title: "Multi-channel sharding: scale-out vs cross-shard 2PC cost",
		Columns: []string{"framework", "shards", "cross", "offered_ktps",
			"ktps", "avg_ms", "p99_ms", "abort"},
	}
	for i, p := range shardingPoints() {
		r := res[i]
		t.AddRow(p.framework,
			fmt.Sprintf("%d", p.shards),
			pct(p.ratio),
			ktps(o.rate(p.rate)),
			ktps(r.Throughput), ms(r.AvgLatency), ms(r.P99), pct(r.AbortRate))
	}
	t.Notes = append(t.Notes,
		"each shard is a full copy of the cluster, so offered load scales with the shard count; cross=0% rows isolate pure horizontal scale-out",
		"cross-shard transfers pay two sequencing rounds (prepare, then commit/abort) plus first-wins lock conflicts — visible as added latency and aborts at 20%")
	return t
}
