package bench

import (
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/core"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/workload"
)

// PipelineHotPath times one transaction end-to-end through the full BIDL
// pipeline — submit → sequence → multicast → execute → persist → commit —
// on the paper's Setting A cluster. ns/op is the host cost of pushing one
// transaction through every phase, the number the profile-guided pass
// (`make profile`) optimizes; vevents/op shows how many simulator events one
// transaction fans out into.
//
// It lives outside the test files so cmd/bidl-perfgate can run it directly
// with testing.Benchmark and compare the result against the committed
// BENCH_hotpath.json baseline; BenchmarkPipelineHotPath wraps it for the
// ordinary `go test -bench` path.
func PipelineHotPath(b *testing.B) {
	cfg := core.DefaultConfig() // the paper's setting A
	cfg.Seed = 1
	w := workload.DefaultConfig(cfg.NumOrgs)
	w.Seed = 1
	w.Accounts = 2000 // lighter prepopulation; per-txn pipeline cost is unaffected

	c := core.NewCluster(cfg)
	gen := workload.NewGenerator(w, c.Scheme)
	ids := make([]crypto.Identity, w.NumClients)
	for i := range ids {
		ids[i] = gen.Client(i)
	}
	c.RegisterClients(ids)
	c.Prepopulate(gen.Prepopulate)

	const gap = 50 * time.Microsecond // ~20k txns/s offered, well under capacity
	txns := gen.Batch(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i, tx := range txns {
		c.SubmitAt(time.Duration(i)*gap, tx)
	}
	c.Run(time.Duration(b.N)*gap + 500*time.Millisecond)
	b.StopTimer()
	if got := c.Collector.NumCommitted(); got != b.N {
		b.Fatalf("committed %d of %d transactions", got, b.N)
	}
	b.ReportMetric(float64(c.Sim.Events())/float64(b.N), "vevents/op")
}
