package bench

import (
	"reflect"
	"testing"

	"github.com/bidl-framework/bidl/internal/scenario"
)

// TestRegistryScenariosValidAndSerializable asserts the acceptance criterion
// of the scenario-layer refactor: every registered experiment is expressible
// as declarative scenario.Scenario values — each sweep produces at least one
// spec, every spec passes Validate, and every spec survives a JSON round-trip
// (so `bidl-bench -dump-scenarios` output can be replayed through
// `bidl-sim -scenario`).
func TestRegistryScenariosValidAndSerializable(t *testing.T) {
	o := Options{Scale: 0.1, Seed: 7}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			specs := e.Scenarios(o)
			if len(specs) == 0 {
				t.Fatal("experiment produced no scenarios")
			}
			names := make(map[string]bool, len(specs))
			for i, sp := range specs {
				if err := sp.Validate(); err != nil {
					t.Fatalf("sweep point %d (%s): %v", i, sp.Name, err)
				}
				if sp.Name == "" {
					t.Fatalf("sweep point %d has no name", i)
				}
				if names[sp.Name] {
					t.Fatalf("duplicate scenario name %q", sp.Name)
				}
				names[sp.Name] = true
				data, err := sp.Marshal()
				if err != nil {
					t.Fatalf("%s: marshal: %v", sp.Name, err)
				}
				back, err := scenario.Parse(data)
				if err != nil {
					t.Fatalf("%s: parse: %v", sp.Name, err)
				}
				if !reflect.DeepEqual(sp, back) {
					t.Fatalf("%s: JSON round-trip mismatch:\n in: %+v\nout: %+v", sp.Name, sp, back)
				}
			}
		})
	}
}
