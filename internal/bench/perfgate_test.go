package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestGateMetricOrientation(t *testing.T) {
	cases := []struct {
		name string
		m    GateMetric
		ok   bool
	}{
		{"exact match", GateMetric{Baseline: 100, Current: 100, Exact: true}, true},
		{"exact mismatch", GateMetric{Baseline: 100, Current: 101, Exact: true}, false},
		{"cost within tolerance", GateMetric{Baseline: 100, Current: 110, Tolerance: 0.15, HigherIsWorse: true}, true},
		{"cost beyond tolerance", GateMetric{Baseline: 100, Current: 120, Tolerance: 0.15, HigherIsWorse: true}, false},
		{"cost improvement passes", GateMetric{Baseline: 100, Current: 50, Tolerance: 0.15, HigherIsWorse: true}, true},
		{"rate within tolerance", GateMetric{Baseline: 100, Current: 60, Tolerance: 0.5, HigherIsWorse: false}, true},
		{"rate beyond tolerance", GateMetric{Baseline: 100, Current: 40, Tolerance: 0.5, HigherIsWorse: false}, false},
		{"rate improvement passes", GateMetric{Baseline: 100, Current: 500, Tolerance: 0.5, HigherIsWorse: false}, true},
		{"zero baseline zero current", GateMetric{Baseline: 0, Current: 0, Tolerance: 0.1, HigherIsWorse: true}, true},
	}
	for _, c := range cases {
		if got := c.m.OK(); got != c.ok {
			t.Errorf("%s: OK() = %v, want %v (regression %.3f)", c.name, got, c.ok, c.m.Regression())
		}
	}
}

// TestPerfGateFailsOnDoctoredBaseline is the gate's negative test: a
// baseline doctored to claim fewer virtual events or fewer allocations than
// the current run must fail the gate with a rendered FAIL row.
func TestPerfGateFailsOnDoctoredBaseline(t *testing.T) {
	tol := DefaultGateTolerances()
	current := RunStats{ID: "fig5", VirtualEvents: 386786, EventsPerSec: 50000}

	honest := RunStats{ID: "fig5", VirtualEvents: 386786, EventsPerSec: 48000}
	if g := CompareRunStats(honest, current, tol); !g.OK() {
		var buf bytes.Buffer
		g.Render(&buf)
		t.Fatalf("honest baseline failed the gate:\n%s", buf.String())
	}

	doctored := RunStats{ID: "fig5", VirtualEvents: 386785, EventsPerSec: 48000}
	g := CompareRunStats(doctored, current, tol)
	if g.OK() {
		t.Fatal("doctored virtual_events baseline passed the gate")
	}
	var buf bytes.Buffer
	g.Render(&buf)
	if !strings.Contains(buf.String(), "FAIL") || !strings.Contains(buf.String(), "virtual_events") {
		t.Errorf("render missing FAIL row:\n%s", buf.String())
	}

	// Hot-path side: doctor allocs/op far below the current run.
	curHP := HotpathStats{NsPerOp: 300000, AllocsPerOp: 309, VEventsPerOp: 24.3}
	if g := CompareHotpath(HotpathStats{NsPerOp: 350000, AllocsPerOp: 310, VEventsPerOp: 24.4}, curHP, tol); !g.OK() {
		t.Fatal("honest hotpath baseline failed the gate")
	}
	if g := CompareHotpath(HotpathStats{NsPerOp: 350000, AllocsPerOp: 200, VEventsPerOp: 24.4}, curHP, tol); g.OK() {
		t.Fatal("doctored allocs_per_op baseline passed the gate")
	}
	// Wall-clock metrics only fail past the generous portability tolerance.
	slow := CompareRunStats(RunStats{ID: "fig5", VirtualEvents: 386786, EventsPerSec: 500001},
		RunStats{ID: "fig5", VirtualEvents: 386786, EventsPerSec: 50000}, tol)
	if slow.OK() {
		t.Fatal("10x events/wall-sec drop passed the gate")
	}
}

func TestLoadReportAndFind(t *testing.T) {
	r, err := LoadReport("../../BENCH_serial.json")
	if err != nil {
		t.Fatal(err)
	}
	s, ok := r.FindRunStats("fig5")
	if !ok || s.VirtualEvents == 0 {
		t.Fatalf("fig5 stats = %+v, ok=%v", s, ok)
	}
	if _, ok := r.FindRunStats("no-such-experiment"); ok {
		t.Fatal("found a stats entry that does not exist")
	}
}
