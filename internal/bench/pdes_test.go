package bench

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/core"
	"github.com/bidl-framework/bidl/internal/scenario"
	"github.com/bidl-framework/bidl/internal/trace"
)

// pdesOptions is the tier the PDES determinism sweep runs at: small enough
// to keep the full-registry double run affordable, parallel enough (4
// workers over the 50-org default) that every cross-partition code path is
// exercised.
func pdesOptions() Options {
	return Options{Scale: 0.05, Seed: 1, SimWorkers: 4}
}

// renderAll renders an experiment's table and run stats into one byte
// fingerprint (text + CSV + virtual event count).
func renderAll(t *testing.T, id string, o Options) []byte {
	t.Helper()
	table, stats, err := Measure(id, o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	table.Render(&buf)
	table.CSV(&buf)
	fmt.Fprintf(&buf, "virtual_events: %d\n", stats.VirtualEvents)
	return buf.Bytes()
}

// TestPDESDeterminismAllExperiments is the tentpole's acceptance gate: for
// EVERY registered experiment, a parallel run (4 PDES workers) must be
// byte-identical — rendered tables, CSV, and virtual event counts — to the
// serial reference engine over the same partitioned simulation at the same
// seed. Run under -race this doubles as the data-race audit of every
// framework, protocol, attack, and ablation path the registry reaches.
func TestPDESDeterminismAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry double sweep")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			o := pdesOptions()
			parallel := renderAll(t, e.ID, o)
			o.ForceSerialSim = true
			serial := renderAll(t, e.ID, o)
			if !bytes.Equal(parallel, serial) {
				t.Fatalf("parallel run diverges from serial engine:\n--- parallel ---\n%s\n--- serial ---\n%s", parallel, serial)
			}
		})
	}
}

// TestPDESScenarioDeepIdentity compares a single multi-DC BIDL scenario at
// full-result depth: beyond the table numbers, the committed ledger digest
// (a chained hash over every block) and the virtual event count must match
// between engines, proving the two executions were the same event sequence,
// not merely statistically alike.
func TestPDESScenarioDeepIdentity(t *testing.T) {
	sp := scenario.Scenario{
		Name:       "pdes-deep",
		Framework:  scenario.FrameworkBIDL,
		Seed:       3,
		Nodes:      scenario.NodesSpec{Orgs: 8, Datacenters: 2},
		Topology:   scenario.TopologySpec{LossRate: 0.01, Jitter: scenario.Duration(20 * time.Microsecond)},
		Load:       scenario.LoadSpec{Rate: 2000, Window: scenario.Duration(400 * time.Millisecond)},
		SimWorkers: 4,
	}
	type deep struct {
		res    Result
		digest string
		parts  int
	}
	run := func(forceSerial bool) deep {
		var d deep
		rc := scenario.RunConfig{
			ForceSerialSim: forceSerial,
			Observe: func(h scenario.Harness) {
				bc := h.(*core.Cluster)
				d.digest = fmt.Sprintf("%x", bc.LedgerDigest())
				d.parts = bc.Sim.NumPartitions()
			},
		}
		res, err := scenario.RunWith(sp, rc)
		if err != nil {
			t.Fatal(err)
		}
		res.Collector = nil // pointer identity, not part of the fingerprint
		d.res = res
		return d
	}
	parallel, serial := run(false), run(true)
	if parallel.parts < 2 {
		t.Fatalf("scenario compiled to %d partitions; PDES never engaged", parallel.parts)
	}
	if parallel.res != serial.res {
		t.Fatalf("results diverge:\nparallel: %+v\nserial:   %+v", parallel.res, serial.res)
	}
	if parallel.digest != serial.digest || parallel.digest == "" {
		t.Fatalf("ledger digests diverge: parallel %q, serial %q", parallel.digest, serial.digest)
	}
	if parallel.res.Events == 0 || parallel.res.Throughput == 0 {
		t.Fatalf("degenerate run (events=%d throughput=%g)", parallel.res.Events, parallel.res.Throughput)
	}
}

// TestPDESTracedRunFallsBackToSerial pins the safety valve: tracing needs a
// globally time-ordered event stream, so a traced run must ignore
// sim_workers and still produce the identical result.
func TestPDESTracedRunFallsBackToSerial(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 1, SimWorkers: 4}
	o.TraceSink = func(tr *trace.Tracer) {}
	spec := scenario.Scenario{
		Framework:  scenario.FrameworkBIDL,
		Seed:       1,
		Nodes:      scenario.NodesSpec{Orgs: 6},
		Load:       scenario.LoadSpec{Rate: 1000, Window: scenario.Duration(300 * time.Millisecond)},
		SimWorkers: 4,
	}
	traced := runScenario(o, spec)
	o.TraceSink = nil
	o.ForceSerialSim = true
	serial := runScenario(o, spec)
	traced.Collector, serial.Collector = nil, nil
	if traced != serial {
		t.Fatalf("traced (serial-pinned) run diverges from explicit serial run:\ntraced: %+v\nserial: %+v", traced, serial)
	}
}
