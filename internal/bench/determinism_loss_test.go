package bench

import (
	"testing"
	"time"
)

// TestLossyRunDeterminism guards against map-iteration order leaking into
// the simulation through the consensus view-change path. Packet loss at 8%
// forces view changes, and before the protocols sorted their map walks
// (certificate assembly, view-change Seen/Prepared collection, re-proposal
// order) two identical runs could diverge in message order, RNG consumption,
// and therefore retransmission volume. Same seed must mean same event count.
func TestLossyRunDeterminism(t *testing.T) {
	run := func() uint64 {
		o := Options{Scale: 0.05, Seed: 1}
		cfg := settingA(o.Seed)
		cfg.Topology.LossRate = 0.08
		r, _ := (bidlRun{Cfg: cfg, Workload: stdWorkload(0, 0, o.Seed),
			Rate: o.rate(satBIDL * 3 / 4), Window: o.scaled(1500 * time.Millisecond)}).run(o)
		return r.Events
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed lossy runs diverged: %d vs %d virtual events", a, b)
	}
}
