package bench

import (
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/scenario"
)

// TestLossyRunDeterminism guards against map-iteration order leaking into
// the simulation through the consensus view-change path. Packet loss at 8%
// forces view changes, and before the protocols sorted their map walks
// (certificate assembly, view-change Seen/Prepared collection, re-proposal
// order) two identical runs could diverge in message order, RNG consumption,
// and therefore retransmission volume. Same seed must mean same event count.
func TestLossyRunDeterminism(t *testing.T) {
	run := func() uint64 {
		o := Options{Scale: 0.05, Seed: 1}
		sp := scenario.Scenario{
			Framework: scenario.FrameworkBIDL,
			Seed:      o.Seed,
			Topology:  scenario.TopologySpec{LossRate: 0.08},
			Workload:  scenario.WorkloadSpec{Accounts: 10000},
			Load: scenario.LoadSpec{Rate: o.rate(satBIDL * 3 / 4),
				Window: scenario.Duration(o.scaled(1500 * time.Millisecond))},
		}
		r, err := scenario.Run(sp)
		if err != nil {
			t.Fatal(err)
		}
		return r.Events
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed lossy runs diverged: %d vs %d virtual events", a, b)
	}
}
