package bench

import (
	"testing"
)

// BenchmarkPipelineHotPath is the `go test -bench` entry point for
// PipelineHotPath (see hotpath.go — the body is exported so cmd/bidl-perfgate
// can run the identical benchmark against the committed baseline). `make ci`
// runs this with -benchtime=1x as a smoke test, which also asserts that
// every submitted transaction commits.
func BenchmarkPipelineHotPath(b *testing.B) { PipelineHotPath(b) }

// TestPipelineHotPathAllocs pins the profile-guided allocation budget: one
// transaction end-to-end currently costs ~310 allocations (down from 1828
// before the persist-path memoization — content-key/vector-digest caching,
// bitmask persist votes, pooled HMAC states). The ceiling leaves headroom
// for noise but fails loudly if a hot-path regression reintroduces per-echo
// hashing or per-vote map churn.
func TestPipelineHotPathAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark run")
	}
	r := testing.Benchmark(BenchmarkPipelineHotPath)
	if a := r.AllocsPerOp(); a > 400 {
		t.Fatalf("pipeline hot path allocates %d/op; ceiling 400", a)
	}
}
