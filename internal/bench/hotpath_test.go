package bench

import (
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/core"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/workload"
)

// BenchmarkPipelineHotPath times one transaction end-to-end through the full
// BIDL pipeline — submit → sequence → multicast → execute → persist → commit
// — on the paper's Setting A cluster. ns/op is the host cost of pushing one
// transaction through every phase, the number the profile-guided pass
// (`make profile`) optimizes; vevents/op shows how many simulator events one
// transaction fans out into. `make ci` runs this with -benchtime=1x as a
// smoke test, which also asserts that every submitted transaction commits.
func BenchmarkPipelineHotPath(b *testing.B) {
	cfg := core.DefaultConfig() // the paper's setting A
	cfg.Seed = 1
	w := workload.DefaultConfig(cfg.NumOrgs)
	w.Seed = 1
	w.Accounts = 2000 // lighter prepopulation; per-txn pipeline cost is unaffected

	c := core.NewCluster(cfg)
	gen := workload.NewGenerator(w, c.Scheme)
	ids := make([]crypto.Identity, w.NumClients)
	for i := range ids {
		ids[i] = gen.Client(i)
	}
	c.RegisterClients(ids)
	c.Prepopulate(gen.Prepopulate)

	const gap = 50 * time.Microsecond // ~20k txns/s offered, well under capacity
	txns := gen.Batch(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i, tx := range txns {
		c.SubmitAt(time.Duration(i)*gap, tx)
	}
	c.Run(time.Duration(b.N)*gap + 500*time.Millisecond)
	b.StopTimer()
	if got := c.Collector.NumCommitted(); got != b.N {
		b.Fatalf("committed %d of %d transactions", got, b.N)
	}
	b.ReportMetric(float64(c.Sim.Events())/float64(b.N), "vevents/op")
}

// TestPipelineHotPathAllocs pins the profile-guided allocation budget: one
// transaction end-to-end currently costs ~310 allocations (down from 1828
// before the persist-path memoization — content-key/vector-digest caching,
// bitmask persist votes, pooled HMAC states). The ceiling leaves headroom
// for noise but fails loudly if a hot-path regression reintroduces per-echo
// hashing or per-vote map churn.
func TestPipelineHotPathAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark run")
	}
	r := testing.Benchmark(BenchmarkPipelineHotPath)
	if a := r.AllocsPerOp(); a > 400 {
		t.Fatalf("pipeline hot path allocates %d/op; ceiling 400", a)
	}
}
