// Package bench is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (§6). Each experiment is registered under
// the paper's artifact ID (fig3, fig5, fig6, table2, table3, table4, fig7,
// fig8, fig9, fig10, plus design ablations) and produces a Table whose rows
// mirror what the paper reports. EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bidl-framework/bidl/internal/scenario"
	"github.com/bidl-framework/bidl/internal/trace"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}

// Options tune experiment execution.
type Options struct {
	// Scale in (0,1] shrinks offered loads and measurement windows for
	// quick runs; 1.0 is the paper-faithful configuration.
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// Workers bounds how many sweep points run concurrently. 0 or 1 runs
	// serially; <0 uses GOMAXPROCS. Every sweep point owns a private Sim,
	// RNG, and Collector seeded identically in both modes, so tables are
	// byte-identical regardless of Workers.
	Workers int

	// events, when non-nil, accumulates virtual events executed by every
	// run launched under these options (set by Measure).
	events *atomic.Uint64

	// SimWorkers requests conservative parallel discrete-event execution
	// inside every sweep point that does not set its own sim_workers:
	// the single-run counterpart to Workers' across-run parallelism.
	// Results are byte-identical to serial runs at the same seed.
	SimWorkers int
	// ForceSerialSim pins the serial simulation engine even when
	// SimWorkers (or a spec) requests parallelism — the byte-identity
	// reference used by the PDES determinism tests.
	ForceSerialSim bool

	// Shards overlays multi-channel sharding (the scenario `shards` field)
	// onto every BIDL sweep point that does not set its own. Unlike
	// Workers/SimWorkers this changes what is simulated — each point becomes
	// an N-channel deployment — so the golden and perf trails never set it;
	// it exists for `bidl-bench -shards` exploration.
	Shards int

	// TraceSink, when non-nil, turns on per-run tracing: every framework
	// run gets a private Tracer, handed to the sink after the run
	// finishes. Sweep points may run concurrently (Workers), so the sink
	// must be safe for concurrent calls.
	TraceSink func(*trace.Tracer)
}

// DefaultOptions runs experiments at full scale, serially.
func DefaultOptions() Options { return Options{Scale: 1.0, Seed: 1} }

// logMu serializes progress lines from concurrent sweep workers.
var logMu sync.Mutex

func (o Options) logf(format string, args ...interface{}) {
	if o.Log != nil {
		logMu.Lock()
		fmt.Fprintf(o.Log, format+"\n", args...)
		logMu.Unlock()
	}
}

// addEvents credits executed virtual events to the harness counter.
func (o Options) addEvents(n uint64) {
	if o.events != nil {
		o.events.Add(n)
	}
}

// scaled shrinks a duration by the scale factor, with a floor.
func (o Options) scaled(d time.Duration) time.Duration {
	s := time.Duration(float64(d) * o.Scale)
	if s < 200*time.Millisecond {
		s = 200 * time.Millisecond
	}
	return s
}

// rate scales an offered load.
func (o Options) rate(r float64) float64 { return r * o.Scale }

// Experiment regenerates one of the paper's artifacts. Experiments are
// pure data over the scenario layer: Scenarios expands the sweep into
// declarative specs (what `bidl-bench -dump-scenarios` emits), and Table
// assembles the paper's table from the per-spec results. The Run method
// executes the sweep through the shared scenario driver.
type Experiment struct {
	ID          string
	Paper       string
	Description string
	// Scenarios expands the experiment into its sweep of scenario specs,
	// one per independent simulation run, in table order.
	Scenarios func(Options) []scenario.Scenario
	// Table assembles the experiment's table from results indexed in
	// Scenarios order.
	Table func(Options, []Result) *Table
}

// Run validates and executes every sweep point (concurrently per
// o.Workers) and assembles the table.
func (e Experiment) Run(o Options) (*Table, error) {
	specs := e.Scenarios(o)
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, fmt.Errorf("bench: %s sweep point %d (%s): %w", e.ID, i, specs[i].Name, err)
		}
	}
	tasks := make([]func() Result, len(specs))
	for i := range specs {
		sp := specs[i]
		tasks[i] = func() Result {
			o.logf("%s: %s", e.ID, sp.Name)
			return runScenario(o, sp)
		}
	}
	return e.Table(o, gather(o, tasks)), nil
}

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// Get returns the experiment registered under id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// helpers ---------------------------------------------------------------

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

func ktps(v float64) string { return fmt.Sprintf("%.2f", v/1000) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
