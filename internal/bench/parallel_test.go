package bench

import (
	"bytes"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/core"
	"github.com/bidl-framework/bidl/internal/scenario"
)

// TestGatherPreservesTaskOrder checks the worker pool's core contract:
// results land at their task's index no matter which worker ran them.
func TestGatherPreservesTaskOrder(t *testing.T) {
	const n = 100
	tasks := make([]func() int, n)
	for i := range tasks {
		i := i
		tasks[i] = func() int { return i * i }
	}
	for _, workers := range []int{0, 1, 3, 8, -1} {
		out := gather(Options{Workers: workers}, tasks)
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestGatherRunsConcurrently verifies the pool actually overlaps work: with 4
// workers over rendezvous-style tasks, peak in-flight count must exceed 1.
func TestGatherRunsConcurrently(t *testing.T) {
	var inFlight, peak atomic.Int64
	tasks := make([]func() int, 8)
	for i := range tasks {
		tasks[i] = func() int {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(10 * time.Millisecond)
			inFlight.Add(-1)
			return 0
		}
	}
	gather(Options{Workers: 4}, tasks)
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d, want >= 2", peak.Load())
	}
}

// shortOptions returns a fast configuration: tiny scale clamps every
// measurement window to the 200ms floor while rates shrink proportionally.
func shortOptions(workers int) Options {
	return Options{Scale: 0.02, Seed: 7, Workers: workers}
}

// TestParallelMatchesSerial is the determinism regression test for the sweep
// runner: fig3 (18 independent runs) must render byte-identical tables
// whether its sweep points execute serially or on a worker pool.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment sweep")
	}
	serial, err := renderExperiment("fig3", shortOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := renderExperiment("fig3", shortOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel table diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

func renderExperiment(id string, o Options) ([]byte, error) {
	e, ok := Get(id)
	if !ok {
		return nil, errUnknown(id)
	}
	var buf bytes.Buffer
	table, err := e.Run(o)
	if err != nil {
		return nil, err
	}
	table.Render(&buf)
	table.CSV(&buf)
	return buf.Bytes(), nil
}

type errUnknown string

func (e errUnknown) Error() string { return "unknown experiment " + string(e) }

// TestSameSeedRunsAreIdentical asserts the substrate invariant the parallel
// runner leans on: two runs built from the same seed execute the same number
// of events and commit the same block sequence (chained ledger digest).
func TestSameSeedRunsAreIdentical(t *testing.T) {
	run := func() (uint64, int, [32]byte) {
		sp := scenario.Scenario{
			Framework: scenario.FrameworkBIDL,
			Seed:      7,
			Workload:  scenario.WorkloadSpec{Accounts: 10000, Contention: 0.2},
			Load:      scenario.LoadSpec{Rate: 2000, Window: scenario.Duration(300 * time.Millisecond)},
		}
		var digest [32]byte
		rc := scenario.RunConfig{Observe: func(h scenario.Harness) {
			digest = h.(*core.Cluster).LedgerDigest()
		}}
		res, err := scenario.RunWith(sp, rc)
		if err != nil {
			t.Fatal(err)
		}
		return res.Events, res.Collector.NumCommitted(), digest
	}
	e1, n1, d1 := run()
	e2, n2, d2 := run()
	if e1 != e2 {
		t.Fatalf("event counts diverge: %d vs %d", e1, e2)
	}
	if n1 != n2 {
		t.Fatalf("commit counts diverge: %d vs %d", n1, n2)
	}
	if d1 != d2 {
		t.Fatalf("commit sequences diverge: %x vs %x", d1, d2)
	}
	if n1 == 0 {
		t.Fatal("no transactions committed; determinism check is vacuous")
	}
}

// TestMeasureCountsEvents checks that Measure attributes virtual events and
// wall time to the experiment it ran.
func TestMeasureCountsEvents(t *testing.T) {
	table, stats, err := Measure("ablation", shortOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if table == nil || len(table.Rows) != 4 {
		t.Fatalf("ablation table malformed: %+v", table)
	}
	if stats.VirtualEvents == 0 {
		t.Fatal("no virtual events recorded")
	}
	if stats.WallSeconds <= 0 {
		t.Fatal("no wall time recorded")
	}
	if math.Abs(stats.EventsPerSec-float64(stats.VirtualEvents)/stats.WallSeconds) > 1 {
		t.Fatalf("events/sec inconsistent: %+v", stats)
	}
}

// TestReportAccumulates checks report totals and JSON rendering.
func TestReportAccumulates(t *testing.T) {
	r := NewReport(Options{Scale: 0.5, Seed: 3, Workers: 2})
	r.Add(RunStats{ID: "a", WallSeconds: 1.5, VirtualEvents: 100})
	r.Add(RunStats{ID: "b", WallSeconds: 0.5, VirtualEvents: 50})
	if r.TotalWallSeconds != 2.0 || r.TotalVirtualEvents != 150 {
		t.Fatalf("totals wrong: %+v", r)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"total_virtual_events": 150`, `"workers": 2`, `"id": "a"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("JSON missing %q:\n%s", want, buf.String())
		}
	}
}
