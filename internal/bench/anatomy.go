package bench

import (
	"fmt"
	"time"

	"github.com/bidl-framework/bidl/internal/scenario"
	"github.com/bidl-framework/bidl/internal/trace"
)

// The anatomy experiment turns the latency-anatomy subsystem
// (internal/trace/anatomy) into a registered, golden-gated table: the same
// deployment swept across BIDL under three BFT protocols and the two main
// Fabric baselines, each row decomposing client-perceived latency into the
// waits the paper's breakdown analysis names — sequencing, delivery,
// execution, consensus, persist, notification — plus the speculative
//-execution overlap ratio (§4.4's claim as one number per configuration).

func init() {
	register(Experiment{
		ID:    "anatomy",
		Paper: "latency breakdown",
		Description: "Critical-path decomposition of submit→notified latency per " +
			"framework/protocol (BIDL × {bft-smart, hotstuff, sbft}, HLF, FastFabric): " +
			"per-stage p50 waits, end-to-end percentiles, and the execution-under-" +
			"consensus overlap ratio.",
		Scenarios: anatomyScenarios,
		Table:     anatomyTable,
	})
}

// anatomyConfigs is the sweep, in table order.
var anatomyConfigs = []struct {
	label     string
	framework string
	protocol  string
	rate      float64
}{
	{"bidl/bft-smart", scenario.FrameworkBIDL, "bft-smart", satBIDL},
	{"bidl/hotstuff", scenario.FrameworkBIDL, "hotstuff", satBIDL},
	{"bidl/sbft", scenario.FrameworkBIDL, "sbft", satBIDL},
	{"hlf", scenario.FrameworkHLF, "", satHLF},
	{"fastfabric", scenario.FrameworkFastFabric, "", satFF},
}

func anatomyScenarios(o Options) []scenario.Scenario {
	window := o.scaled(1200 * time.Millisecond)
	var specs []scenario.Scenario
	for _, c := range anatomyConfigs {
		sp := spec(c.framework, fmt.Sprintf("anatomy %s", c.label), o, 0, 0)
		sp.Protocol = c.protocol
		sp.Load = load(o.rate(c.rate), window)
		sp.Anatomy = true
		specs = append(specs, sp)
	}
	return specs
}

func anatomyTable(o Options, res []Result) *Table {
	t := &Table{
		ID:    "anatomy",
		Title: "Latency anatomy: per-stage p50 waits and execution/consensus overlap",
		Columns: []string{"config", "txs", "p50_ms", "p99_ms", "seq_ms", "deliver_ms",
			"exec_ms", "persist_ms", "agree_ms", "notify_ms", "overlap"},
	}
	for i, c := range anatomyConfigs {
		rep := res[i].Anatomy
		if rep == nil {
			t.AddRow(c.label, "0", "-", "-", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		t.AddRow(c.label,
			fmt.Sprintf("%d", rep.Complete),
			ms(rep.E2E.P50), ms(rep.E2E.P99),
			ms(rep.StageWait(trace.StageSequenced).P50),
			ms(rep.StageWait(trace.StageDelivered).P50),
			ms(rep.StageWait(trace.StageExecStart).P50+rep.StageWait(trace.StageExecuted).P50),
			ms(rep.StageWait(trace.StagePersisted).P50),
			ms(rep.StageWait(trace.StageAgreed).P50),
			ms(rep.StageWait(trace.StageNotified).P50),
			pct(rep.Overlap.Ratio))
	}
	t.Notes = append(t.Notes,
		"stage columns are p50 critical-path waits (frontier decomposition); they need not sum to p50 e2e",
		"overlap = fraction of execution time hidden inside [sequenced, agreed] — the speculative-execution claim",
	)
	return t
}
