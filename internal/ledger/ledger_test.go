package ledger

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/bidl-framework/bidl/internal/types"
)

func TestStateGetPut(t *testing.T) {
	s := NewState()
	if _, _, ok := s.Get("k"); ok {
		t.Fatal("empty state returned a value")
	}
	s.Put("k", []byte("v"), Version{Block: 1, Tx: 2})
	val, ver, ok := s.Get("k")
	if !ok || string(val) != "v" || ver != (Version{Block: 1, Tx: 2}) {
		t.Fatalf("got %q %v %v", val, ver, ok)
	}
	s.Delete("k")
	if _, _, ok := s.Get("k"); ok {
		t.Fatal("deleted key still present")
	}
}

func TestStateApplyAndDigest(t *testing.T) {
	a, b := NewState(), NewState()
	writes := []Write{{Key: "x", Val: []byte("1")}, {Key: "y", Val: []byte("2")}}
	a.Apply(writes, Version{Block: 1})
	// Apply in a different order on b; digest must match (sorted keys).
	b.Apply([]Write{writes[1], writes[0]}, Version{Block: 1})
	if a.Digest() != b.Digest() {
		t.Fatal("same content produced different digests")
	}
	b.Apply([]Write{{Key: "x", Val: []byte("9")}}, Version{Block: 2})
	if a.Digest() == b.Digest() {
		t.Fatal("different content produced same digest")
	}
	a.Apply([]Write{{Key: "y", Delete: true}}, Version{Block: 3})
	if _, _, ok := a.Get("y"); ok {
		t.Fatal("Apply with Delete did not remove key")
	}
}

func TestStateClone(t *testing.T) {
	s := NewState()
	s.Put("k", []byte("v"), Version{})
	c := s.Clone()
	c.Put("k", []byte("changed"), Version{})
	if val, _, _ := s.Get("k"); string(val) != "v" {
		t.Fatal("clone aliases original")
	}
}

func TestVersionLess(t *testing.T) {
	cases := []struct {
		a, b Version
		want bool
	}{
		{Version{1, 0}, Version{2, 0}, true},
		{Version{2, 0}, Version{1, 5}, false},
		{Version{1, 1}, Version{1, 2}, true},
		{Version{1, 2}, Version{1, 2}, false},
	}
	for _, c := range cases {
		if c.a.Less(c.b) != c.want {
			t.Fatalf("Less(%v,%v) != %v", c.a, c.b, c.want)
		}
	}
}

func TestMVCCValidation(t *testing.T) {
	s := NewState()
	s.Put("acct", []byte("100"), Version{Block: 1, Tx: 0})

	ok := &RWSet{Reads: []Read{{Key: "acct", Ver: Version{Block: 1, Tx: 0}, Existed: true}}}
	if !ValidateMVCC(s, ok) {
		t.Fatal("matching read version rejected")
	}

	stale := &RWSet{Reads: []Read{{Key: "acct", Ver: Version{Block: 0, Tx: 0}, Existed: true}}}
	if ValidateMVCC(s, stale) {
		t.Fatal("stale read version accepted")
	}

	phantomGone := &RWSet{Reads: []Read{{Key: "missing", Existed: true}}}
	if ValidateMVCC(s, phantomGone) {
		t.Fatal("read of now-missing key accepted")
	}

	phantomNew := &RWSet{Reads: []Read{{Key: "acct", Existed: false}}}
	if ValidateMVCC(s, phantomNew) {
		t.Fatal("key created since absent-read accepted")
	}

	absentOK := &RWSet{Reads: []Read{{Key: "nope", Existed: false}}}
	if !ValidateMVCC(s, absentOK) {
		t.Fatal("still-absent read rejected")
	}
}

func TestMVCCContentionAborts(t *testing.T) {
	// Two transactions endorsed against the same snapshot both read
	// acct@v1; committing the first bumps the version, so the second must
	// fail MVCC — HLF's contention abort that BIDL avoids.
	s := NewState()
	s.Put("acct", []byte("100"), Version{Block: 1, Tx: 0})
	read := Read{Key: "acct", Ver: Version{Block: 1, Tx: 0}, Existed: true}
	tx1 := &RWSet{Reads: []Read{read}, Writes: []Write{{Key: "acct", Val: []byte("90")}}}
	tx2 := &RWSet{Reads: []Read{read}, Writes: []Write{{Key: "acct", Val: []byte("80")}}}
	if !ValidateMVCC(s, tx1) {
		t.Fatal("first contending txn rejected")
	}
	s.Apply(tx1.Writes, Version{Block: 2, Tx: 0})
	if ValidateMVCC(s, tx2) {
		t.Fatal("second contending txn accepted; expected MVCC abort")
	}
}

func TestRWSetDigestAndEqual(t *testing.T) {
	a := &RWSet{Writes: []Write{{Key: "k", Val: []byte("v")}}}
	b := &RWSet{Writes: []Write{{Key: "k", Val: []byte("v")}},
		Reads: []Read{{Key: "other"}}}
	if a.Digest() != b.Digest() {
		t.Fatal("reads should not affect result digest")
	}
	if !a.Equal(b) {
		t.Fatal("equal write sets reported unequal")
	}
	c := &RWSet{Writes: []Write{{Key: "k", Val: []byte("w")}}}
	if a.Digest() == c.Digest() || a.Equal(c) {
		t.Fatal("different writes reported equal")
	}
	d := &RWSet{Writes: []Write{{Key: "k", Val: []byte("v")}}, Aborted: true}
	if a.Digest() == d.Digest() || a.Equal(d) {
		t.Fatal("abort flag ignored in result comparison")
	}
	del := &RWSet{Writes: []Write{{Key: "k", Delete: true}}}
	notDel := &RWSet{Writes: []Write{{Key: "k", Val: []byte{0xFF}}}}
	if del.Digest() == notDel.Digest() {
		t.Fatal("delete marker collides with value 0xFF")
	}
}

func TestOverlayReadThrough(t *testing.T) {
	base := NewState()
	base.Put("a", []byte("base"), Version{Block: 1})
	o := NewOverlay(base)
	if v, _, ok := o.Get("a"); !ok || string(v) != "base" {
		t.Fatal("overlay did not read through to base")
	}
	o.Put("a", []byte("spec"), Version{Block: 2})
	if v, _, _ := o.Get("a"); string(v) != "spec" {
		t.Fatal("overlay write not visible")
	}
	if v, _, _ := base.Get("a"); string(v) != "base" {
		t.Fatal("overlay write leaked to base")
	}
}

func TestOverlayDiscard(t *testing.T) {
	base := NewState()
	base.Put("a", []byte("base"), Version{})
	o := NewOverlay(base)
	o.Put("a", []byte("spec"), Version{})
	o.Put("b", []byte("new"), Version{})
	o.Delete("a")
	o.Discard()
	if v, _, ok := o.Get("a"); !ok || string(v) != "base" {
		t.Fatal("discard did not restore base view")
	}
	if _, _, ok := o.Get("b"); ok {
		t.Fatal("discard left speculative key")
	}
	if o.Pending() != 0 {
		t.Fatal("pending count nonzero after discard")
	}
}

func TestOverlayCommit(t *testing.T) {
	base := NewState()
	base.Put("a", []byte("base"), Version{})
	base.Put("dead", []byte("x"), Version{})
	o := NewOverlay(base)
	o.Put("a", []byte("spec"), Version{Block: 5})
	o.Delete("dead")
	o.Commit()
	if v, _, _ := base.Get("a"); string(v) != "spec" {
		t.Fatal("commit did not flush writes")
	}
	if _, _, ok := base.Get("dead"); ok {
		t.Fatal("commit did not flush deletion")
	}
	if o.Pending() != 0 {
		t.Fatal("overlay not reset after commit")
	}
}

func TestOverlayDeleteShadowsBase(t *testing.T) {
	base := NewState()
	base.Put("a", []byte("base"), Version{})
	o := NewOverlay(base)
	o.Delete("a")
	if _, _, ok := o.Get("a"); ok {
		t.Fatal("deleted key visible through overlay")
	}
	o.Put("a", []byte("again"), Version{})
	if v, _, ok := o.Get("a"); !ok || string(v) != "again" {
		t.Fatal("re-put after delete not visible")
	}
}

func makeBlock(n uint64, prev [32]byte) *types.Block {
	tx := &types.Transaction{Client: "c", Nonce: n, Contract: "x", Fn: "f"}
	return &types.Block{Number: n, Prev: prev, Seqs: []uint64{n}, Hashes: []types.TxID{tx.ID()}}
}

func TestBlockStoreChaining(t *testing.T) {
	bs := NewBlockStore()
	b0 := makeBlock(0, bs.LastDigest())
	if err := bs.Append(b0); err != nil {
		t.Fatal(err)
	}
	b1 := makeBlock(1, bs.LastDigest())
	if err := bs.Append(b1); err != nil {
		t.Fatal(err)
	}
	if bs.Height() != 2 {
		t.Fatalf("height = %d, want 2", bs.Height())
	}
	if bs.Get(0) != b0 || bs.Get(1) != b1 || bs.Get(2) != nil {
		t.Fatal("Get returned wrong blocks")
	}

	// Wrong number.
	bad := makeBlock(5, bs.LastDigest())
	if err := bs.Append(bad); err == nil {
		t.Fatal("gap in block numbers accepted")
	}
	// Wrong prev digest.
	bad2 := makeBlock(2, [32]byte{1, 2, 3})
	if err := bs.Append(bad2); err == nil {
		t.Fatal("broken prev link accepted")
	}
}

func TestBlockStoreEqualAndPrefix(t *testing.T) {
	a, b := NewBlockStore(), NewBlockStore()
	for i := uint64(0); i < 3; i++ {
		blkA := makeBlock(i, a.LastDigest())
		if err := a.Append(blkA); err != nil {
			t.Fatal(err)
		}
		if i < 2 {
			blkB := makeBlock(i, b.LastDigest())
			if err := b.Append(blkB); err != nil {
				t.Fatal(err)
			}
		}
	}
	if a.Equal(b) {
		t.Fatal("chains of different heights reported equal")
	}
	if !a.CommonPrefixEqual(b) {
		t.Fatal("prefix chains reported divergent")
	}
}

func TestPropertyOverlayMatchesDirectApply(t *testing.T) {
	// Applying a random series of writes through an overlay then
	// committing must equal applying them directly to the state.
	f := func(ops []uint8) bool {
		direct := NewState()
		base := NewState()
		o := NewOverlay(base)
		for i, op := range ops {
			key := fmt.Sprintf("k%d", op%8)
			if op%5 == 0 {
				direct.Delete(key)
				o.Delete(key)
			} else {
				val := []byte{op, byte(i)}
				ver := Version{Block: uint64(i)}
				direct.Put(key, val, ver)
				o.Put(key, val, ver)
			}
		}
		o.Commit()
		return direct.Digest() == base.Digest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMVCCAcceptsCurrentReads(t *testing.T) {
	// A read set captured from the current state always validates.
	f := func(keys []uint8) bool {
		s := NewState()
		for i, k := range keys {
			s.Put(fmt.Sprintf("k%d", k), []byte{k}, Version{Block: uint64(i)})
		}
		var rw RWSet
		for _, k := range keys {
			key := fmt.Sprintf("k%d", k)
			_, ver, ok := s.Get(key)
			rw.Reads = append(rw.Reads, Read{Key: key, Ver: ver, Existed: ok})
		}
		return ValidateMVCC(s, &rw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
