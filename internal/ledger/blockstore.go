package ledger

import (
	"errors"
	"fmt"

	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/types"
)

// ErrChainBroken is returned when a block does not extend the chain.
var ErrChainBroken = errors.New("ledger: block does not extend chain")

// BlockStore is an append-only, hash-chained block ledger. Every node
// maintains one; experiments compare stores across correct nodes to validate
// the paper's safety guarantee.
type BlockStore struct {
	blocks []*types.Block
	last   crypto.Digest
}

// NewBlockStore returns an empty chain. The genesis predecessor digest is
// the zero digest.
func NewBlockStore() *BlockStore { return &BlockStore{} }

// Height returns the number of appended blocks.
func (bs *BlockStore) Height() uint64 { return uint64(len(bs.blocks)) }

// LastDigest returns the header digest of the most recent block (zero digest
// for an empty chain). BIDL uses it as the random seed for leader rotation
// (§4.6).
func (bs *BlockStore) LastDigest() crypto.Digest { return bs.last }

// Get returns block n (0-based), or nil if out of range.
func (bs *BlockStore) Get(n uint64) *types.Block {
	if n >= uint64(len(bs.blocks)) {
		return nil
	}
	return bs.blocks[n]
}

// Append validates that b extends the chain (consecutive number, matching
// previous digest) and appends it.
func (bs *BlockStore) Append(b *types.Block) error {
	if b.Number != bs.Height() {
		return fmt.Errorf("%w: number %d, height %d", ErrChainBroken, b.Number, bs.Height())
	}
	if b.Prev != bs.last {
		return fmt.Errorf("%w: prev digest mismatch at block %d", ErrChainBroken, b.Number)
	}
	bs.blocks = append(bs.blocks, b)
	bs.last = b.HeaderDigest()
	return nil
}

// Equal reports whether two chains contain identical block headers.
func (bs *BlockStore) Equal(o *BlockStore) bool {
	if bs.Height() != o.Height() {
		return false
	}
	for i := range bs.blocks {
		if bs.blocks[i].HeaderDigest() != o.blocks[i].HeaderDigest() {
			return false
		}
	}
	return true
}

// CommonPrefixEqual reports whether the shorter chain is a prefix of the
// longer one — the safety property that holds even while nodes are at
// different heights.
func (bs *BlockStore) CommonPrefixEqual(o *BlockStore) bool {
	n := bs.Height()
	if o.Height() < n {
		n = o.Height()
	}
	for i := uint64(0); i < n; i++ {
		if bs.blocks[i].HeaderDigest() != o.blocks[i].HeaderDigest() {
			return false
		}
	}
	return true
}
