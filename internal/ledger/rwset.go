package ledger

import (
	"bytes"

	"github.com/bidl-framework/bidl/internal/crypto"
)

// Read records a key read and the version observed at execution time.
type Read struct {
	Key string
	Ver Version
	// Existed records whether the key existed at read time; a later
	// creation of a previously-absent key is also a conflict.
	Existed bool
}

// Write records a key (over)write or deletion.
type Write struct {
	Key    string
	Val    []byte
	Delete bool
}

// RWSet is the execution result of one transaction: the HLF-style read-write
// set. In BIDL, the write portion is the "execution result (i.e., all
// modified keys and values)" persisted by the multi-write protocol (§4.4).
type RWSet struct {
	Reads  []Read
	Writes []Write
	// Aborted marks an execution that failed application logic (e.g.
	// insufficient balance); it still commits as a no-op result.
	Aborted bool
}

// Digest hashes the write set (the externally visible result). Two
// executions of a deterministic transaction produce equal digests; a
// non-deterministic transaction may not (§4.4).
func (rw *RWSet) Digest() crypto.Digest {
	parts := make([][]byte, 0, len(rw.Writes)*3+1)
	if rw.Aborted {
		parts = append(parts, []byte("aborted"))
	} else {
		parts = append(parts, []byte("ok"))
	}
	for _, w := range rw.Writes {
		parts = append(parts, []byte(w.Key))
		if w.Delete {
			parts = append(parts, []byte{1}, nil)
		} else {
			parts = append(parts, []byte{0}, w.Val)
		}
	}
	return crypto.HashAll(parts...)
}

// Equal reports whether two results have identical write sets.
func (rw *RWSet) Equal(o *RWSet) bool {
	if rw.Aborted != o.Aborted || len(rw.Writes) != len(o.Writes) {
		return false
	}
	for i := range rw.Writes {
		a, b := rw.Writes[i], o.Writes[i]
		if a.Key != b.Key || a.Delete != b.Delete || !bytes.Equal(a.Val, b.Val) {
			return false
		}
	}
	return true
}

// Size approximates the wire size of the result for bandwidth accounting.
func (rw *RWSet) Size() int {
	n := 1
	for _, r := range rw.Reads {
		n += len(r.Key) + 16
	}
	for _, w := range rw.Writes {
		n += len(w.Key) + len(w.Val) + 1
	}
	return n
}

// ValidateMVCC performs HLF's multi-version concurrency check: every key the
// transaction read must still be at the version observed during endorsement.
// Contending transactions endorsed in parallel fail this check and abort —
// the behaviour BIDL eliminates by executing in sequence-number order (§4.3).
func ValidateMVCC(s *State, rw *RWSet) bool {
	for _, r := range rw.Reads {
		_, ver, ok := s.Get(r.Key)
		if ok != r.Existed {
			return false
		}
		if ok && ver != r.Ver {
			return false
		}
	}
	return true
}
