// Package ledger implements the storage substrate shared by BIDL and the
// baseline frameworks: a versioned key-value world state (Hyperledger
// Fabric-style), read-write sets with MVCC validation, a speculative overlay
// used by BIDL's Phase 4, and an append-only hash-chained block store.
package ledger

import (
	"bytes"
	"sort"

	"github.com/bidl-framework/bidl/internal/crypto"
)

// Version identifies the transaction that last wrote a key: the HLF-style
// (block, txNum) pair used by MVCC validation.
type Version struct {
	Block uint64
	Tx    int
}

// Less orders versions by block then transaction index.
func (v Version) Less(o Version) bool {
	if v.Block != o.Block {
		return v.Block < o.Block
	}
	return v.Tx < o.Tx
}

type entry struct {
	val []byte
	ver Version
}

// State is the committed world state: a versioned key-value store.
// It is single-writer by construction (one simulated node owns it).
type State struct {
	data map[string]entry
}

// NewState returns an empty world state.
func NewState() *State {
	return &State{data: make(map[string]entry)}
}

// Get returns the value and version for key, with ok=false if absent.
func (s *State) Get(key string) (val []byte, ver Version, ok bool) {
	e, ok := s.data[key]
	return e.val, e.ver, ok
}

// Put writes key=val at version ver.
func (s *State) Put(key string, val []byte, ver Version) {
	s.data[key] = entry{val: val, ver: ver}
}

// Delete removes key.
func (s *State) Delete(key string) { delete(s.data, key) }

// Len returns the number of live keys.
func (s *State) Len() int { return len(s.data) }

// Apply installs a write set at the given version.
func (s *State) Apply(writes []Write, ver Version) {
	for _, w := range writes {
		if w.Delete {
			delete(s.data, w.Key)
		} else {
			s.data[w.Key] = entry{val: w.Val, ver: ver}
		}
	}
}

// Digest returns a deterministic hash of the entire state (keys sorted).
// Experiments use it to assert that all correct nodes' states never diverge
// (the paper's safety guarantee, §3.1).
func (s *State) Digest() crypto.Digest {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([][]byte, 0, len(keys)*2)
	for _, k := range keys {
		parts = append(parts, []byte(k), s.data[k].val)
	}
	return crypto.HashAll(parts...)
}

// Equal reports whether two states hold identical live key-value pairs —
// the same relation Digest-comparison checks, without the per-state key sort
// and hashing. Safety checks over many peers use this; versions are excluded
// exactly as they are from Digest.
func (s *State) Equal(o *State) bool {
	if len(s.data) != len(o.data) {
		return false
	}
	for k, e := range s.data {
		oe, ok := o.data[k]
		if !ok || !bytes.Equal(e.val, oe.val) {
			return false
		}
	}
	return true
}

// Clone deep-copies the state (values are copied).
func (s *State) Clone() *State {
	c := NewState()
	for k, e := range s.data {
		c.data[k] = entry{val: append([]byte(nil), e.val...), ver: e.ver}
	}
	return c
}
