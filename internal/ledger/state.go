// Package ledger implements the storage substrate shared by BIDL and the
// baseline frameworks: a versioned key-value world state (Hyperledger
// Fabric-style) layered copy-on-write over a shared immutable base, read-
// write sets with MVCC validation, a speculative overlay used by BIDL's
// Phase 4, and an append-only hash-chained block store.
package ledger

import (
	"bytes"
	"sort"

	"github.com/bidl-framework/bidl/internal/crypto"
)

// Version identifies the transaction that last wrote a key: the HLF-style
// (block, txNum) pair used by MVCC validation.
type Version struct {
	Block uint64
	Tx    int
}

// Less orders versions by block then transaction index.
func (v Version) Less(o Version) bool {
	if v.Block != o.Block {
		return v.Block < o.Block
	}
	return v.Tx < o.Tx
}

type entry struct {
	val []byte
	ver Version
}

// State is the committed world state: a versioned key-value store.
// It is single-writer by construction (one simulated node owns it).
//
// A State is optionally layered copy-on-write over a shared immutable Base
// (SetBase): reads that miss the private delta fall through to the base,
// writes land in the delta, and deletes of base keys leave tombstones. The
// observable key-value relation — Get, Len, Digest, Equal, Clone — is
// exactly that of a flat state holding base∪delta, so attaching a base is
// behavior-preserving; only the memory cost changes (O(written keys) per
// node instead of O(base keys)).
type State struct {
	data map[string]entry
	base *Base
	// dels tombstones base keys the state has deleted; nil until the first
	// such delete. Keys in data are never simultaneously in dels.
	dels map[string]struct{}
	// size is the live key count: len(data not shadowing base) + base keys
	// neither shadowed nor tombstoned. Maintained incrementally so Len stays
	// O(1) with a functional base.
	size int
}

// NewState returns an empty world state.
func NewState() *State {
	return &State{data: make(map[string]entry)}
}

// SetBase attaches a shared immutable base layer. It must be called on an
// empty state (prepopulation happens before any traffic by lifecycle
// contract); attaching to a non-empty state panics rather than silently
// changing which layer owns existing keys.
func (s *State) SetBase(b *Base) {
	if len(s.data) != 0 || s.size != 0 || s.base != nil {
		panic("ledger: SetBase on a non-empty state")
	}
	s.base = b
	s.size = b.Len()
}

// Base returns the attached base layer, or nil.
func (s *State) Base() *Base { return s.base }

// baseLive reports whether key is visible from the base layer (defined and
// not tombstoned).
func (s *State) baseLive(key string) ([]byte, bool) {
	if s.base == nil {
		return nil, false
	}
	if s.dels != nil {
		if _, dead := s.dels[key]; dead {
			return nil, false
		}
	}
	return s.base.Get(key)
}

// Get returns the value and version for key, with ok=false if absent.
// Base-layer values read at Version{}, the prepopulation version.
func (s *State) Get(key string) (val []byte, ver Version, ok bool) {
	if e, ok := s.data[key]; ok {
		return e.val, e.ver, true
	}
	if v, ok := s.baseLive(key); ok {
		return v, Version{}, true
	}
	return nil, Version{}, false
}

// Put writes key=val at version ver.
func (s *State) Put(key string, val []byte, ver Version) {
	if _, shadowing := s.data[key]; !shadowing {
		if s.base != nil && s.base.Has(key) {
			if s.dels != nil {
				if _, dead := s.dels[key]; dead {
					// Resurrecting a tombstoned base key.
					delete(s.dels, key)
					s.size++
				}
			}
			// Shadowing a live base key leaves the count unchanged.
		} else {
			s.size++
		}
	}
	s.data[key] = entry{val: val, ver: ver}
}

// Delete removes key, tombstoning it when the base layer defines it.
func (s *State) Delete(key string) {
	if _, ok := s.data[key]; ok {
		delete(s.data, key)
		s.size--
		if s.base != nil && s.base.Has(key) {
			if s.dels == nil {
				s.dels = make(map[string]struct{})
			}
			s.dels[key] = struct{}{}
		}
		return
	}
	if _, ok := s.baseLive(key); ok {
		if s.dels == nil {
			s.dels = make(map[string]struct{})
		}
		s.dels[key] = struct{}{}
		s.size--
	}
}

// Len returns the number of live keys.
func (s *State) Len() int { return s.size }

// Apply installs a write set at the given version.
func (s *State) Apply(writes []Write, ver Version) {
	for _, w := range writes {
		if w.Delete {
			s.Delete(w.Key)
		} else {
			s.Put(w.Key, w.Val, ver)
		}
	}
}

// forEachLive calls fn with every live (key, value) pair: the delta plus
// base keys neither shadowed nor tombstoned. Order is unspecified.
func (s *State) forEachLive(fn func(key string, val []byte)) {
	for k, e := range s.data {
		fn(k, e.val)
	}
	if s.base == nil {
		return
	}
	s.base.forEach(func(k string, v []byte) {
		if _, shadowed := s.data[k]; shadowed {
			return
		}
		if s.dels != nil {
			if _, dead := s.dels[k]; dead {
				return
			}
		}
		fn(k, v)
	})
}

// Digest returns a deterministic hash of the entire state (keys sorted).
// Experiments use it to assert that all correct nodes' states never diverge
// (the paper's safety guarantee, §3.1). With a base attached this costs
// O(base keys) — it is an audit, not a hot path.
func (s *State) Digest() crypto.Digest {
	keys := make([]string, 0, s.size)
	vals := make(map[string][]byte, s.size)
	s.forEachLive(func(k string, v []byte) {
		keys = append(keys, k)
		vals[k] = v
	})
	sort.Strings(keys)
	parts := make([][]byte, 0, len(keys)*2)
	for _, k := range keys {
		parts = append(parts, []byte(k), vals[k])
	}
	return crypto.HashAll(parts...)
}

// Equal reports whether two states hold identical live key-value pairs —
// the same relation Digest-comparison checks, without the per-state key sort
// and hashing. Safety checks over many peers use this; versions are excluded
// exactly as they are from Digest. When both states share one base (the
// cluster-wide prepopulation layer) the comparison touches only the deltas,
// so a consistency audit stays O(written keys) at any account scale.
func (s *State) Equal(o *State) bool {
	if s.size != o.size {
		return false
	}
	if s.base == o.base {
		// Shared (or both-nil) base: keys in neither delta nor tombstone set
		// resolve identically, so only delta keys need checking — each side's
		// writes and deletes against the other's view.
		return s.deltaMatches(o) && o.deltaMatches(s)
	}
	// Different bases: full scan. size equality plus one-sided containment
	// implies set equality.
	equal := true
	s.forEachLive(func(k string, v []byte) {
		if !equal {
			return
		}
		ov, _, ok := o.Get(k)
		if !ok || !bytes.Equal(v, ov) {
			equal = false
		}
	})
	return equal
}

// deltaMatches checks s's delta writes and tombstones against o's view.
func (s *State) deltaMatches(o *State) bool {
	for k, e := range s.data {
		ov, _, ok := o.Get(k)
		if !ok || !bytes.Equal(e.val, ov) {
			return false
		}
	}
	for k := range s.dels {
		if _, _, ok := o.Get(k); ok {
			return false
		}
	}
	return true
}

// Clone deep-copies the state (delta values are copied; the immutable base
// layer is shared by reference).
func (s *State) Clone() *State {
	c := NewState()
	c.base = s.base
	c.size = s.size
	for k, e := range s.data {
		c.data[k] = entry{val: append([]byte(nil), e.val...), ver: e.ver}
	}
	if s.dels != nil {
		c.dels = make(map[string]struct{}, len(s.dels))
		for k := range s.dels {
			c.dels[k] = struct{}{}
		}
	}
	return c
}
