package ledger

import "hash/fnv"

// Keyspace partitioning for the sharded multi-channel engine (DESIGN.md §14).
//
// Every world-state key deterministically belongs to exactly one of n shards.
// The mapping must be stable under the key formats the built-in contracts and
// workload generator emit, and — critically — must NOT correlate with the
// account→org mapping (org = index % numOrgs): a positional `index % n` shard
// would make "cross-shard" and "cross-org" the same predicate whenever
// numOrgs and n share a factor, and the generator's cross-shard draw could
// then never find a same-shard pair to fall back on. IndexShard therefore
// decorrelates with a Knuth multiplicative hash before reducing mod n.

// knuthMul is the 32-bit multiplicative-hash constant (2^32 / φ).
const knuthMul = 2654435761

// IndexShard maps a dense entity index (account number, fee-org index, flow
// sequence) to a shard in [0, n). It is the single source of truth that
// KeyShard and the workload generator's routing both reduce to, so a
// transaction's declared key set always routes to the shard that executes it.
func IndexShard(i, n int) int {
	if n <= 1 {
		return 0
	}
	// Fixed-point range reduction on the HIGH bits of the product: a plain
	// `mod n` would reuse the low bits, which an odd multiplier preserves
	// exactly (i ≡ 0 mod 4 ⇒ i*c ≡ 0 mod 4), resurrecting the org
	// correlation for power-of-two shard counts.
	h := uint32(i) * knuthMul
	return int((uint64(h) * uint64(n)) >> 32)
}

// KeyShard maps a world-state key to a shard in [0, n). Recognized formats
// (the contracts' and generator's entire key vocabulary) route through
// IndexShard on the embedded entity index so that all keys of one entity —
// checking + savings of an account, escrow of a flow — land on one shard:
//
//	sb:chk:acct-<i>, sb:sav:acct-<i>, acct-<i>  → IndexShard(i)
//	stl:fee:org<k>                              → IndexShard(k)
//	stl:esc:flow-<seq>                          → IndexShard(seq)
//	xs:lock:<inner>                             → KeyShard(inner)
//	sb:chk:<name>, sb:sav:<name>                → content hash of <name>
//
// The last rule matters for free-form account names (the nondet workload's
// create_random accounts): checking and savings of one account must co-shard
// even when the name embeds no index, so the balance-kind prefix is stripped
// before hashing. Fully unrecognized keys fall back to an FNV-1a content
// hash of the whole key — still deterministic, just not index-aligned.
func KeyShard(key string, n int) int {
	if n <= 1 {
		return 0
	}
	if inner, ok := cutPrefix(key, "xs:lock:"); ok {
		return KeyShard(inner, n)
	}
	if i, ok := suffixIndexAfter(key, "acct-"); ok {
		return IndexShard(i, n)
	}
	if i, ok := suffixIndexAfter(key, "flow-"); ok {
		return IndexShard(i, n)
	}
	if rest, ok := cutPrefix(key, "stl:fee:org"); ok {
		if k, ok := parseAllDigits(rest); ok {
			return IndexShard(k, n)
		}
	}
	if name, ok := cutPrefix(key, "sb:chk:"); ok {
		return contentShard(name, n)
	}
	if name, ok := cutPrefix(key, "sb:sav:"); ok {
		return contentShard(name, n)
	}
	return contentShard(key, n)
}

// contentShard hashes arbitrary content to a shard with FNV-1a, reduced on
// the high bits like IndexShard.
func contentShard(s string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(s))
	return int((uint64(h.Sum32()) * uint64(n)) >> 32)
}

// cutPrefix is strings.CutPrefix without pulling the strings package into
// the hot path (this file must stay alloc-free: KeyShard runs per key per
// transaction during routing).
func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return s, false
}

// suffixIndexAfter finds the LAST occurrence of marker in s and parses the
// remainder as a decimal index; it only matches when the remainder is
// entirely digits (so "acct-12-shadow" does not route as account 12).
func suffixIndexAfter(s, marker string) (int, bool) {
	// Search backwards for the marker.
	for i := len(s) - len(marker); i >= 0; i-- {
		if s[i:i+len(marker)] == marker {
			return parseAllDigits(s[i+len(marker):])
		}
	}
	return 0, false
}

// parseAllDigits parses s as a non-empty all-digit decimal int.
func parseAllDigits(s string) (int, bool) {
	if len(s) == 0 {
		return 0, false
	}
	v := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int(c-'0')
		if v < 0 { // overflow: fall back to content hash
			return 0, false
		}
	}
	return v, true
}
