package ledger

// Base is an immutable, shareable bottom layer for State: the copy-on-write
// substrate that makes million-account prepopulation O(1) per node. Every
// replica of a cluster points at the same Base; reads that miss the node's
// private delta fall through to it, and writes (including deletes, via
// tombstones) only ever touch the delta. A Base must never be mutated after
// it is attached to a State — all constructors seal it by construction.
//
// Two flavors share the one type:
//
//   - a snapshot base interns an explicit key→value map (NewSnapshotBase),
//     paying O(keys) once per cluster instead of once per node;
//   - a functional base (NewFuncBase) describes its keyspace as a pure
//     function — count, enumerator, lookup — and costs O(1) memory total,
//     which is what lets a 10⁷-account workload run in near-constant space.
//
// Base entries carry Version{} (the prepopulation version), exactly like the
// eager Prepopulate writes they replace, so MVCC validation observes
// identical read versions either way.
type Base struct {
	// Snapshot flavor: interned entries. Values are shared across every
	// state referencing the base; the ledger/contract stack never mutates a
	// value slice in place (writes always allocate fresh values), so the
	// sharing is safe.
	data map[string][]byte

	// Functional flavor: n keys enumerated by keyAt, resolved by lookup.
	// lookup must return (value, true) exactly for the n keys keyAt yields
	// and (nil, false) for every other string, and both must be pure.
	n      int
	keyAt  func(i int) string
	lookup func(key string) ([]byte, bool)
}

// NewSnapshotBase interns an explicit key→value map as a shared base. The
// map is owned by the base afterwards and must not be mutated by the caller.
func NewSnapshotBase(entries map[string][]byte) *Base {
	return &Base{data: entries}
}

// NewFuncBase builds a function-defined base over exactly n keys: keyAt
// enumerates them (0 <= i < n, duplicates forbidden) and lookup resolves any
// string to (value, ok). Both must be pure functions — the base is consulted
// concurrently by every node sharing it.
func NewFuncBase(n int, keyAt func(i int) string, lookup func(key string) ([]byte, bool)) *Base {
	if n < 0 {
		n = 0
	}
	return &Base{n: n, keyAt: keyAt, lookup: lookup}
}

// Get resolves key against the base.
func (b *Base) Get(key string) ([]byte, bool) {
	if b == nil {
		return nil, false
	}
	if b.data != nil {
		v, ok := b.data[key]
		return v, ok
	}
	if b.lookup == nil {
		return nil, false
	}
	return b.lookup(key)
}

// Has reports whether the base defines key.
func (b *Base) Has(key string) bool {
	_, ok := b.Get(key)
	return ok
}

// Len returns the number of keys the base defines.
func (b *Base) Len() int {
	if b == nil {
		return 0
	}
	if b.data != nil {
		return len(b.data)
	}
	return b.n
}

// forEach calls fn with every (key, value) pair the base defines.
// Enumeration order is unspecified; callers needing determinism sort.
func (b *Base) forEach(fn func(key string, val []byte)) {
	if b == nil {
		return
	}
	if b.data != nil {
		for k, v := range b.data {
			fn(k, v)
		}
		return
	}
	for i := 0; i < b.n; i++ {
		k := b.keyAt(i)
		v, ok := b.lookup(k)
		if !ok {
			panic("ledger: functional base keyAt yields a key its lookup rejects: " + k)
		}
		fn(k, v)
	}
}
