package ledger

import (
	"fmt"
	"testing"
)

// Every key format the contracts and generator emit must route through the
// embedded entity index, so all keys of one entity land on one shard.
func TestKeyShardFormats(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8} {
		for _, idx := range []int{0, 1, 7, 12, 999, 1_000_000} {
			want := IndexShard(idx, n)
			keys := []string{
				fmt.Sprintf("sb:chk:acct-%d", idx),
				fmt.Sprintf("sb:sav:acct-%d", idx),
				fmt.Sprintf("acct-%d", idx),
				fmt.Sprintf("stl:fee:org%d", idx),
				fmt.Sprintf("stl:esc:flow-%d", idx),
				fmt.Sprintf("xs:lock:sb:chk:acct-%d", idx),
			}
			for _, k := range keys {
				if got := KeyShard(k, n); got != want {
					t.Errorf("KeyShard(%q, %d) = %d, want IndexShard(%d)=%d", k, n, got, idx, want)
				}
			}
		}
	}
}

// KeyShard must be a pure function: the same key maps to the same shard on
// every call, and always lands in range.
func TestKeyShardStable(t *testing.T) {
	keys := []string{
		"sb:chk:acct-42", "sb:sav:acct-42", "acct-42",
		"stl:fee:org3", "stl:esc:flow-17",
		"xs:lock:sb:chk:acct-42", "xs:esc:g-0-1",
		"some-opaque-key", "", "acct-", "acct-12-shadow",
	}
	for _, n := range []int{1, 2, 3, 4, 16, 64} {
		for _, k := range keys {
			first := KeyShard(k, n)
			if first < 0 || first >= max(n, 1) {
				t.Fatalf("KeyShard(%q, %d) = %d out of range", k, n, first)
			}
			for i := 0; i < 3; i++ {
				if got := KeyShard(k, n); got != first {
					t.Fatalf("KeyShard(%q, %d) unstable: %d then %d", k, n, first, got)
				}
			}
		}
	}
}

// Malformed index suffixes must not be parsed as entity indices; they fall
// back to the content hash (deterministic, in range) rather than aliasing a
// real account's shard by accident.
func TestKeyShardMalformedSuffix(t *testing.T) {
	if KeyShard("acct-12-shadow", 4) == KeyShard("acct-12", 4) &&
		KeyShard("acct-12-shadow", 5) == KeyShard("acct-12", 5) &&
		KeyShard("acct-12-shadow", 7) == KeyShard("acct-12", 7) {
		t.Error("acct-12-shadow routed as account 12 across multiple shard counts")
	}
	for _, k := range []string{"acct-", "stl:fee:orgX", "flow-", "sb:chk:acct-9x"} {
		for _, n := range []int{2, 4} {
			if got := KeyShard(k, n); got < 0 || got >= n {
				t.Errorf("KeyShard(%q, %d) = %d out of range", k, n, got)
			}
		}
	}
}

// IndexShard must not degenerate: with shard counts that divide typical org
// counts, dense indices still spread over every shard (the whole point of
// the multiplicative hash — positional i%n would collapse shard onto org).
func TestIndexShardSpreads(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		seen := make(map[int]int)
		for i := 0; i < 1024; i++ {
			s := IndexShard(i, n)
			if s < 0 || s >= n {
				t.Fatalf("IndexShard(%d, %d) = %d out of range", i, n, s)
			}
			seen[s]++
		}
		if len(seen) != n {
			t.Errorf("IndexShard with n=%d hit only %d shards", n, len(seen))
		}
		// Decorrelation from org = i % k for small org counts: accounts of
		// one org must not all land on one shard.
		for _, orgs := range []int{2, 4} {
			shardsOfOrg0 := make(map[int]bool)
			for i := 0; i < 1024; i += orgs {
				shardsOfOrg0[IndexShard(i, n)] = true
			}
			if len(shardsOfOrg0) < 2 {
				t.Errorf("n=%d orgs=%d: org 0's accounts collapse onto one shard", n, orgs)
			}
		}
	}
}

// n <= 1 always routes to shard 0 (the unsharded degenerate case).
func TestKeyShardUnsharded(t *testing.T) {
	for _, k := range []string{"sb:chk:acct-9", "anything"} {
		for _, n := range []int{-1, 0, 1} {
			if got := KeyShard(k, n); got != 0 {
				t.Errorf("KeyShard(%q, %d) = %d, want 0", k, n, got)
			}
			if got := IndexShard(5, n); got != 0 {
				t.Errorf("IndexShard(5, %d) = %d, want 0", n, got)
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
