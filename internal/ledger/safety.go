package ledger

import "fmt"

// SafetyView is one node's end-of-run ledger view, submitted to
// CheckConsistency. Label identifies the node in error messages.
type SafetyView struct {
	Label  string
	Blocks *BlockStore
	State  *State
	Height uint64
}

// CheckConsistency is the shared end-of-run safety audit used by both the
// BIDL cluster and the fabric baselines: any runtime violation recorded
// during the simulation fails first; then every view's block ledger must be
// prefix-consistent with the first view's; then, within each state group,
// views that reached the same commit height must hold identical world
// states (each height's first-seen view is the reference). system prefixes
// error messages ("core", "fabric").
func CheckConsistency(system string, violations []string, ledgers []SafetyView, stateGroups [][]SafetyView) error {
	if len(violations) > 0 {
		return fmt.Errorf("%s: %d runtime safety violations, first: %s", system, len(violations), violations[0])
	}
	if len(ledgers) > 0 {
		ref := ledgers[0]
		for _, v := range ledgers[1:] {
			if !ref.Blocks.CommonPrefixEqual(v.Blocks) {
				return fmt.Errorf("%s: %s ledger diverges from %s", system, v.Label, ref.Label)
			}
		}
	}
	for _, group := range stateGroups {
		first := make(map[uint64]SafetyView, len(group))
		for _, v := range group {
			prev, ok := first[v.Height]
			if !ok {
				first[v.Height] = v
				continue
			}
			if !prev.State.Equal(v.State) {
				return fmt.Errorf("%s: %s and %s states diverge at height %d",
					system, prev.Label, v.Label, v.Height)
			}
		}
	}
	return nil
}
