package ledger

// Overlay is a speculative view layered over committed State. BIDL normal
// nodes execute Phase 4 against an overlay: sequential speculative writes
// land here, later transactions in the same block read through it, and on a
// consensus mismatch the whole overlay is discarded and the block
// re-executed (Phase 5 fallback, §4.3).
type Overlay struct {
	base *State
	data map[string]entry
	dels map[string]struct{}
}

// NewOverlay creates an empty overlay over base.
func NewOverlay(base *State) *Overlay {
	return &Overlay{
		base: base,
		data: make(map[string]entry),
		dels: make(map[string]struct{}),
	}
}

// Get reads through the overlay: speculative writes win over base state.
func (o *Overlay) Get(key string) (val []byte, ver Version, ok bool) {
	if _, deleted := o.dels[key]; deleted {
		return nil, Version{}, false
	}
	if e, ok := o.data[key]; ok {
		return e.val, e.ver, true
	}
	return o.base.Get(key)
}

// Put stages a speculative write.
func (o *Overlay) Put(key string, val []byte, ver Version) {
	delete(o.dels, key)
	o.data[key] = entry{val: val, ver: ver}
}

// Delete stages a speculative deletion.
func (o *Overlay) Delete(key string) {
	delete(o.data, key)
	o.dels[key] = struct{}{}
}

// Pending reports the number of staged writes and deletions.
func (o *Overlay) Pending() int { return len(o.data) + len(o.dels) }

// Discard drops all speculative changes (fallback to sequential workflow).
// The maps are cleared in place, not reallocated: an overlay is discarded or
// committed once per block, and reusing the buckets keeps the per-block cost
// flat. Safe because neither map's iteration order is observable (Commit
// flushes distinct keys into a map, which commutes).
func (o *Overlay) Discard() {
	clear(o.data)
	clear(o.dels)
}

// Commit flushes all speculative changes into the base state and resets the
// overlay.
func (o *Overlay) Commit() {
	for k, e := range o.data {
		o.base.Put(k, e.val, e.ver)
	}
	for k := range o.dels {
		o.base.Delete(k)
	}
	o.Discard()
}

// Base returns the committed state beneath the overlay.
func (o *Overlay) Base() *State { return o.base }
