package ledger

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// flatReplay mirrors every operation applied to a based state onto a flat
// one — the reference the CoW layer must be indistinguishable from.
type flatReplay struct {
	cow  *State
	flat *State
}

func newFlatReplay(b *Base) *flatReplay {
	r := &flatReplay{cow: NewState(), flat: NewState()}
	r.cow.SetBase(b)
	b.forEach(func(k string, v []byte) { r.flat.Put(k, v, Version{}) })
	return r
}

func (r *flatReplay) put(k string, v []byte, ver Version) {
	r.cow.Put(k, v, ver)
	r.flat.Put(k, v, ver)
}

func (r *flatReplay) del(k string) {
	r.cow.Delete(k)
	r.flat.Delete(k)
}

func (r *flatReplay) check(t *testing.T, keys []string) {
	t.Helper()
	if r.cow.Len() != r.flat.Len() {
		t.Fatalf("Len: cow %d, flat %d", r.cow.Len(), r.flat.Len())
	}
	if r.cow.Digest() != r.flat.Digest() {
		t.Fatal("Digest diverges from flat reference")
	}
	if !r.cow.Equal(r.flat) || !r.flat.Equal(r.cow) {
		t.Fatal("Equal(flat) is false")
	}
	for _, k := range keys {
		cv, cver, cok := r.cow.Get(k)
		fv, fver, fok := r.flat.Get(k)
		if cok != fok || string(cv) != string(fv) || cver != fver {
			t.Fatalf("Get(%q): cow (%q,%v,%v) flat (%q,%v,%v)", k, cv, cver, cok, fv, fver, fok)
		}
	}
}

func snapBase() *Base {
	return NewSnapshotBase(map[string][]byte{
		"a": []byte("1"), "b": []byte("2"), "c": []byte("3"),
	})
}

func funcBase(n int) *Base {
	return NewFuncBase(n,
		func(i int) string { return "k" + strconv.Itoa(i) },
		func(key string) ([]byte, bool) {
			if !strings.HasPrefix(key, "k") {
				return nil, false
			}
			i, err := strconv.Atoi(key[1:])
			if err != nil || i < 0 || i >= n || key != "k"+strconv.Itoa(i) {
				return nil, false
			}
			return []byte("v" + strconv.Itoa(i)), true
		})
}

func TestBasedStateMatchesFlat(t *testing.T) {
	for _, tc := range []struct {
		name string
		base *Base
		keys []string
	}{
		{"snapshot", snapBase(), []string{"a", "b", "c", "x", "y"}},
		{"functional", funcBase(5), []string{"k0", "k1", "k4", "k5", "x"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := newFlatReplay(tc.base)
			r.check(t, tc.keys)

			r.put("x", []byte("new"), Version{Block: 1})
			r.check(t, tc.keys)

			// Shadow a base key, then resurrect a deleted one.
			r.put(tc.keys[0], []byte("shadow"), Version{Block: 1, Tx: 1})
			r.check(t, tc.keys)
			r.del(tc.keys[1])
			r.check(t, tc.keys)
			r.put(tc.keys[1], []byte("back"), Version{Block: 2})
			r.check(t, tc.keys)

			// Delete a delta key, a shadowing key, and a missing key.
			r.del("x")
			r.del(tc.keys[0])
			r.del("never-there")
			r.check(t, tc.keys)
		})
	}
}

func TestBasedStateRandomOpsMatchFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := newFlatReplay(funcBase(20))
	keyAt := func(i int) string { return "k" + strconv.Itoa(i) }
	allKeys := make([]string, 30)
	for i := range allKeys {
		allKeys[i] = keyAt(i) // k20..k29 are never in the base
	}
	for step := 0; step < 500; step++ {
		k := allKeys[rng.Intn(len(allKeys))]
		if rng.Intn(3) == 0 {
			r.del(k)
		} else {
			r.put(k, []byte(fmt.Sprintf("s%d", step)), Version{Block: uint64(step)})
		}
	}
	r.check(t, allKeys)
}

func TestSetBaseNonEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetBase on a non-empty state did not panic")
		}
	}()
	s := NewState()
	s.Put("k", []byte("v"), Version{})
	s.SetBase(snapBase())
}

func TestSharedBaseEqualIsDeltaOnly(t *testing.T) {
	b := funcBase(1000)
	a, c := NewState(), NewState()
	a.SetBase(b)
	c.SetBase(b)
	if !a.Equal(c) {
		t.Fatal("two empty states over one base differ")
	}
	a.Put("k3", []byte("x"), Version{Block: 1})
	if a.Equal(c) {
		t.Fatal("delta write not observed by Equal")
	}
	c.Put("k3", []byte("x"), Version{Block: 9}) // versions excluded from Equal
	if !a.Equal(c) {
		t.Fatal("identical values at different versions must be Equal")
	}
	a.Delete("k7")
	if a.Equal(c) || c.Equal(a) {
		t.Fatal("tombstone not observed by Equal")
	}
	c.Delete("k7")
	if !a.Equal(c) {
		t.Fatal("matching tombstones must be Equal")
	}
}

func TestDifferentBasesEqualBySemantics(t *testing.T) {
	// A snapshot base and a functional base describing the same relation
	// must compare equal, as must a based state and a flat state.
	snap := NewSnapshotBase(map[string][]byte{"k0": []byte("v0"), "k1": []byte("v1")})
	fn := funcBase(2)
	a, b := NewState(), NewState()
	a.SetBase(snap)
	b.SetBase(fn)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("equivalent bases compare unequal")
	}
	if a.Digest() != b.Digest() {
		t.Fatal("equivalent bases digest differently")
	}
	b.Put("k1", []byte("other"), Version{Block: 1})
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("divergent value not detected across bases")
	}
}

func TestCloneSharesBaseCopiesDelta(t *testing.T) {
	s := NewState()
	s.SetBase(snapBase())
	s.Put("x", []byte("1"), Version{Block: 1})
	s.Delete("a")
	c := s.Clone()
	if c.Base() != s.Base() {
		t.Fatal("clone must share the immutable base")
	}
	if !c.Equal(s) {
		t.Fatal("clone differs from original")
	}
	// Mutating the clone must not leak into the original.
	c.Put("b", []byte("clone"), Version{Block: 2})
	c.Delete("x")
	if v, _, _ := s.Get("b"); string(v) != "2" {
		t.Fatalf("original b = %q after clone mutation", v)
	}
	if _, _, ok := s.Get("x"); !ok {
		t.Fatal("original lost x after clone deletion")
	}
}

func TestOverlayOverBasedState(t *testing.T) {
	s := NewState()
	s.SetBase(funcBase(10))
	o := NewOverlay(s)
	// Read through overlay to base.
	if v, _, ok := o.Get("k2"); !ok || string(v) != "v2" {
		t.Fatalf("overlay read through base = %q, %v", v, ok)
	}
	o.Put("k2", []byte("spec"), Version{Block: 1})
	o.Delete("k3")
	o.Commit()
	if v, _, _ := s.Get("k2"); string(v) != "spec" {
		t.Fatal("overlay commit lost the write")
	}
	if _, _, ok := s.Get("k3"); ok {
		t.Fatal("overlay commit lost the delete")
	}
	if want := 9; s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
}

func TestApplyWritesOverBase(t *testing.T) {
	s := NewState()
	s.SetBase(snapBase())
	s.Apply([]Write{
		{Key: "a", Val: []byte("10")},
		{Key: "b", Delete: true},
		{Key: "new", Val: []byte("n")},
	}, Version{Block: 3, Tx: 1})
	if v, ver, _ := s.Get("a"); string(v) != "10" || ver.Block != 3 {
		t.Fatalf("a = %q @ %v", v, ver)
	}
	if _, _, ok := s.Get("b"); ok {
		t.Fatal("b survived Apply delete")
	}
	if s.Len() != 3 { // a, c, new
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}
