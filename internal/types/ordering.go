package types

import "github.com/bidl-framework/bidl/internal/crypto"

// EncodeOrdering serializes a parallel (sequence number, transaction hash)
// list — the exact bytes a BFT protocol agrees on under the
// consensus-on-hash optimization. seqs and hashes must have equal length.
func EncodeOrdering(seqs []uint64, hashes []TxID) []byte {
	var e enc
	e.u32(uint32(len(seqs)))
	for i := range seqs {
		e.u64(seqs[i])
		e.buf = append(e.buf, hashes[i][:]...)
	}
	return e.buf
}

// DecodeOrdering parses EncodeOrdering output.
func DecodeOrdering(buf []byte) (seqs []uint64, hashes []TxID, err error) {
	d := &dec{buf: buf}
	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		seqs = append(seqs, d.u64())
		if d.off+32 > len(d.buf) {
			d.fail("hash")
			break
		}
		var h TxID
		copy(h[:], d.buf[d.off:])
		d.off += 32
		hashes = append(hashes, h)
	}
	if e := d.done(); e != nil {
		return nil, nil, e
	}
	return seqs, hashes, nil
}

// OrderingDigest hashes an encoded ordering — the consensus value digest.
func OrderingDigest(ordering []byte) crypto.Digest { return crypto.Hash(ordering) }
