package types

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/bidl-framework/bidl/internal/crypto"
)

func sampleTx() *Transaction {
	return &Transaction{
		Client:   "client-1",
		Nonce:    42,
		View:     3,
		Contract: "smallbank",
		Fn:       "send_payment",
		Args:     [][]byte{[]byte("acct-1"), []byte("acct-2"), []byte("100")},
		Orgs:     []string{"org1", "org2"},
		Padding:  DefaultTxPadding,
	}
}

func TestTransactionRoundTrip(t *testing.T) {
	tx := sampleTx()
	scheme := crypto.NewHMACScheme([]byte("s"))
	scheme.Register(tx.Client)
	if err := tx.Sign(scheme); err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalTransaction(tx.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Client != tx.Client || got.Nonce != tx.Nonce || got.View != tx.View ||
		got.Contract != tx.Contract || got.Fn != tx.Fn {
		t.Fatalf("scalar fields mismatch: %+v vs %+v", got, tx)
	}
	if !reflect.DeepEqual(got.Args, tx.Args) || !reflect.DeepEqual(got.Orgs, tx.Orgs) {
		t.Fatal("slices mismatch after round trip")
	}
	if got.ID() != tx.ID() {
		t.Fatal("ID changed across round trip")
	}
	if !got.VerifySig(scheme) {
		t.Fatal("signature invalid after round trip")
	}
}

func TestTransactionIDBindsFields(t *testing.T) {
	a, b := sampleTx(), sampleTx()
	b.Nonce++
	if a.ID() == b.ID() {
		t.Fatal("different transactions share an ID")
	}
	c := sampleTx()
	c.Args = [][]byte{[]byte("acct-1"), []byte("acct-2"), []byte("101")}
	if a.ID() == c.ID() {
		t.Fatal("argument change did not change ID")
	}
}

func TestSignatureVerification(t *testing.T) {
	scheme := crypto.NewHMACScheme([]byte("s"))
	scheme.Register("client-1")
	scheme.Register("client-2")
	tx := sampleTx()
	if err := tx.Sign(scheme); err != nil {
		t.Fatal(err)
	}
	if !tx.VerifySig(scheme) {
		t.Fatal("valid signature rejected")
	}
	forged := sampleTx()
	forged.Nonce = 1000
	forged.Sig = tx.Sig
	if forged.VerifySig(scheme) {
		t.Fatal("signature verified over different content")
	}
	stolen := sampleTx()
	stolen.Client = "client-2"
	stolen.Sig = tx.Sig
	if stolen.VerifySig(scheme) {
		t.Fatal("client-1 signature verified for client-2")
	}
}

func TestTxSizeAboutOneKB(t *testing.T) {
	tx := sampleTx()
	scheme := crypto.NewHMACScheme([]byte("s"))
	scheme.Register(tx.Client)
	if err := tx.Sign(scheme); err != nil {
		t.Fatal(err)
	}
	size := tx.Size()
	if size < 900 || size > 1200 {
		t.Fatalf("default transaction size = %d, want ~1KB", size)
	}
}

func TestRelatedOrgHelpers(t *testing.T) {
	tx := sampleTx()
	if tx.CorrespondingOrg() != "org1" {
		t.Fatalf("corresponding org = %q, want org1", tx.CorrespondingOrg())
	}
	if !tx.RelatedTo("org2") || tx.RelatedTo("org9") {
		t.Fatal("RelatedTo incorrect")
	}
	empty := &Transaction{}
	if empty.CorrespondingOrg() != "" {
		t.Fatal("empty transaction should have no corresponding org")
	}
}

func TestUnmarshalCorruptInputs(t *testing.T) {
	tx := sampleTx()
	buf := tx.Marshal()
	// Every strict prefix must fail cleanly, never panic.
	for i := 0; i < len(buf); i++ {
		if _, err := UnmarshalTransaction(buf[:i]); err == nil {
			t.Fatalf("prefix of length %d decoded successfully", i)
		}
	}
	// Trailing garbage must fail.
	if _, err := UnmarshalTransaction(append(append([]byte{}, buf...), 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Hostile length field must not over-allocate.
	hostile := append([]byte{}, buf...)
	hostile[0], hostile[1], hostile[2], hostile[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := UnmarshalTransaction(hostile); err == nil {
		t.Fatal("hostile length accepted")
	}
}

func TestPropertyTransactionRoundTrip(t *testing.T) {
	f := func(client string, nonce, view uint64, fn string, arg1, arg2 []byte, pad uint16) bool {
		tx := &Transaction{
			Client:   crypto.Identity(client),
			Nonce:    nonce,
			View:     view,
			Contract: "c",
			Fn:       fn,
			Args:     [][]byte{arg1, arg2},
			Orgs:     []string{"o1"},
			Padding:  uint32(pad),
			Sig:      crypto.Signature([]byte("sig")),
		}
		got, err := UnmarshalTransaction(tx.Marshal())
		if err != nil {
			return false
		}
		return got.ID() == tx.ID() && bytes.Equal(got.Args[0], arg1) && bytes.Equal(got.Args[1], arg2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockHeaderDigest(t *testing.T) {
	tx1, tx2 := sampleTx(), sampleTx()
	tx2.Nonce = 43
	b := &Block{
		Number: 7,
		Seqs:   []uint64{100, 101},
		Hashes: []TxID{tx1.ID(), tx2.ID()},
	}
	d1 := b.HeaderDigest()
	// Reordering transactions must change the digest.
	b2 := &Block{
		Number: 7,
		Seqs:   []uint64{101, 100},
		Hashes: []TxID{tx2.ID(), tx1.ID()},
	}
	if d1 == b2.HeaderDigest() {
		t.Fatal("reordered block has same digest")
	}
	// Payload attachment must NOT change the digest (consensus-on-hash).
	b3 := &Block{Number: 7, Seqs: b.Seqs, Hashes: b.Hashes, Txns: []*Transaction{tx1, tx2}}
	if d1 != b3.HeaderDigest() {
		t.Fatal("payload attachment changed header digest")
	}
}

func TestBlockSizes(t *testing.T) {
	tx := sampleTx()
	b := &Block{Number: 1, Seqs: []uint64{1}, Hashes: []TxID{tx.ID()}}
	hashOnly := b.HashOnlySize()
	b.Txns = []*Transaction{tx}
	if b.Size() != hashOnly+tx.Size() {
		t.Fatalf("full size %d != hash-only %d + tx %d", b.Size(), hashOnly, tx.Size())
	}
	if hashOnly >= tx.Size() {
		t.Fatal("hash-only block should be far smaller than one 1KB txn")
	}
}

func TestCertificateVerify(t *testing.T) {
	scheme := crypto.NewHMACScheme([]byte("s"))
	ident := func(i int) crypto.Identity {
		return crypto.Identity("node-" + string(rune('0'+i)))
	}
	for i := 0; i < 4; i++ {
		scheme.Register(ident(i))
	}
	digest := crypto.Hash([]byte("block"))
	cert := &Certificate{View: 1, Number: 5, Digest: digest}
	msg := CertSigningBytes(1, 5, digest)
	for i := 0; i < 3; i++ {
		sig, _ := scheme.Sign(ident(i), msg)
		cert.Sigs = append(cert.Sigs, NodeSig{Node: i, Sig: sig})
	}
	if !cert.Verify(scheme, ident, 3) {
		t.Fatal("valid 3-sig certificate rejected at quorum 3")
	}
	if cert.Verify(scheme, ident, 4) {
		t.Fatal("3-sig certificate accepted at quorum 4")
	}
	// Duplicate signatures must not count twice.
	dup := &Certificate{View: 1, Number: 5, Digest: digest,
		Sigs: []NodeSig{cert.Sigs[0], cert.Sigs[0], cert.Sigs[0]}}
	if dup.Verify(scheme, ident, 2) {
		t.Fatal("duplicate node signatures counted toward quorum")
	}
	// Forged signature must not count.
	bad := &Certificate{View: 1, Number: 5, Digest: digest,
		Sigs: []NodeSig{{Node: 0, Sig: crypto.Signature([]byte("junk"))}, cert.Sigs[1], cert.Sigs[2]}}
	if bad.Verify(scheme, ident, 3) {
		t.Fatal("forged signature counted toward quorum")
	}
	// Wrong-view certificate must fail.
	wrongView := &Certificate{View: 2, Number: 5, Digest: digest, Sigs: cert.Sigs}
	if wrongView.Verify(scheme, ident, 3) {
		t.Fatal("certificate verified under wrong view")
	}
}

func TestSequencedTxSize(t *testing.T) {
	tx := sampleTx()
	s := &SequencedTx{Seq: 9, Tx: tx}
	if s.Size() != 8+tx.Size() {
		t.Fatalf("sequenced size %d, want %d", s.Size(), 8+tx.Size())
	}
}
