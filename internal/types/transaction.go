// Package types defines the wire-level data structures shared by BIDL and
// the baseline frameworks: client transactions, sequenced transactions,
// blocks, and quorum certificates, together with a compact binary codec so
// that simulated message sizes reflect a real serialization format.
package types

import (
	"github.com/bidl-framework/bidl/internal/crypto"
)

// TxID is the SHA-256 digest identifying a transaction (its replay-check and
// consensus-on-hash handle, §4.1/§6).
type TxID = crypto.Digest

// DefaultTxPadding pads encoded transactions to roughly the paper's default
// 1 KB transaction size.
const DefaultTxPadding = 840

// Transaction is a client-signed request: ⟨Txn, 𝒯, O, v, pk⟩σc in the
// paper's notation (§4.1). The contract invocation (Contract/Fn/Args) is the
// payload 𝒯; Orgs is the related-organization list O; View is v.
type Transaction struct {
	// Client is the submitting client's identity (stands in for pk; the
	// membership registry maps identities to keys).
	Client crypto.Identity
	// Nonce makes otherwise-identical invocations distinct.
	Nonce uint64
	// View is the view number the client fetched before submitting.
	View uint64
	// Contract and Fn name the smart contract and function to invoke.
	Contract string
	Fn       string
	// Args are the invocation arguments.
	Args [][]byte
	// Orgs lists the related organizations; the first is the corresponding
	// organization o_c whose delegate drives the persist protocol (§4.4).
	Orgs []string
	// Padding models payload bytes beyond the structured fields, so that
	// encoded transactions match the paper's ~1 KB default.
	Padding uint32
	// Sig is the client's signature over SigningBytes.
	Sig crypto.Signature

	id    TxID
	hasID bool
	// signing caches SigningBytes and size caches Size: transactions are
	// immutable once signed (like the id cache above), yet both used to be
	// recomputed — a full re-marshal per call — at every verification and
	// bandwidth-accounting site. Sign invalidates all three caches.
	signing []byte
	size    int
}

// SigningBytes returns the canonical encoding covered by the client
// signature (everything except the signature itself). The encoding is
// computed once and cached; callers must not mutate the returned slice.
func (t *Transaction) SigningBytes() []byte {
	if t.signing == nil {
		var e enc
		t.encodeBody(&e)
		t.signing = e.buf
	}
	return t.signing
}

func (t *Transaction) encodeBody(e *enc) {
	e.str(string(t.Client))
	e.u64(t.Nonce)
	e.u64(t.View)
	e.str(t.Contract)
	e.str(t.Fn)
	e.u32(uint32(len(t.Args)))
	for _, a := range t.Args {
		e.bytes(a)
	}
	e.u32(uint32(len(t.Orgs)))
	for _, o := range t.Orgs {
		e.str(o)
	}
	e.u32(t.Padding)
}

// Marshal encodes the transaction including its signature.
func (t *Transaction) Marshal() []byte {
	var e enc
	t.encodeBody(&e)
	e.bytes(t.Sig)
	return e.buf
}

// UnmarshalTransaction decodes a transaction produced by Marshal.
func UnmarshalTransaction(buf []byte) (*Transaction, error) {
	d := &dec{buf: buf}
	t, err := decodeTransaction(d)
	if err != nil {
		return nil, err
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return t, nil
}

func decodeTransaction(d *dec) (*Transaction, error) {
	t := &Transaction{}
	t.Client = crypto.Identity(d.str())
	t.Nonce = d.u64()
	t.View = d.u64()
	t.Contract = d.str()
	t.Fn = d.str()
	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		t.Args = append(t.Args, d.bytes())
	}
	n = d.count()
	for i := 0; i < n && d.err == nil; i++ {
		t.Orgs = append(t.Orgs, d.str())
	}
	t.Padding = d.u32()
	t.Sig = crypto.Signature(d.bytes())
	if d.err != nil {
		return nil, d.err
	}
	return t, nil
}

// ID returns the transaction's digest over the signed bytes. It is cached:
// transactions are immutable once signed.
func (t *Transaction) ID() TxID {
	if !t.hasID {
		t.id = crypto.Hash(t.SigningBytes())
		t.hasID = true
	}
	return t.id
}

// Size returns the wire size in bytes, including padding, for bandwidth
// accounting. It is computed arithmetically — mirroring the enc layout
// field-for-field — and cached, so the hot paths (per-hop bandwidth
// accounting, replay-check hash costing) never re-marshal the transaction.
// TestTransactionSizeMatchesMarshal pins Size() == len(Marshal())+Padding.
func (t *Transaction) Size() int {
	if t.size == 0 {
		n := 4 + len(t.Client) + 8 + 8 + 4 + len(t.Contract) + 4 + len(t.Fn) + 4
		for _, a := range t.Args {
			n += 4 + len(a)
		}
		n += 4
		for _, o := range t.Orgs {
			n += 4 + len(o)
		}
		n += 4 + 4 + len(t.Sig) // padding field + signature
		t.size = n + int(t.Padding)
	}
	return t.size
}

// Sign signs the transaction as its client using the given scheme, caching
// the resulting ID. Mutating any field after Sign invalidates no caches;
// transactions are immutable once signed.
func (t *Transaction) Sign(scheme crypto.Scheme) error {
	t.signing = nil
	t.size = 0
	sig, err := scheme.Sign(t.Client, t.SigningBytes())
	if err != nil {
		return err
	}
	t.Sig = sig
	t.hasID = false
	t.ID()
	return nil
}

// Warm forces the lazy caches (signing bytes, ID, wire size) to be computed
// now. Transactions are immutable once signed, but the caches are filled on
// first use; under the parallel simulation engine a transaction handed to
// another partition must have them pre-computed so that two partitions never
// race on the first fill. Cluster injection points call this before a
// transaction crosses a partition boundary.
func (t *Transaction) Warm() {
	t.SigningBytes()
	t.ID()
	t.Size()
}

// VerifySig reports whether the client signature is valid.
func (t *Transaction) VerifySig(scheme crypto.Scheme) bool {
	return scheme.Verify(t.Client, t.SigningBytes(), t.Sig)
}

// CorrespondingOrg returns the first related organization (o_c, §4.4), or ""
// if the transaction names none.
func (t *Transaction) CorrespondingOrg() string {
	if len(t.Orgs) == 0 {
		return ""
	}
	return t.Orgs[0]
}

// RelatedTo reports whether org must execute this transaction (§4.3).
func (t *Transaction) RelatedTo(org string) bool {
	for _, o := range t.Orgs {
		if o == org {
			return true
		}
	}
	return false
}

// SequencedTx is a transaction carrying the sequence number assigned by the
// sequencer in Phase 2. Deliberately unsigned: §4.1 explains why BIDL
// eliminates signatures on sequence numbers.
type SequencedTx struct {
	Seq uint64
	Tx  *Transaction
}

// Size implements simnet.Message.
func (s *SequencedTx) Size() int { return 8 + s.Tx.Size() }
