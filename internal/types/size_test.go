package types

import (
	"testing"
	"testing/quick"

	"github.com/bidl-framework/bidl/internal/crypto"
)

// TestTransactionSizeMatchesMarshal is the property gate for the arithmetic
// Size computation: for arbitrary transactions, the cached Size() must equal
// the marshal-derived size it replaced, len(Marshal())+Padding.
func TestTransactionSizeMatchesMarshal(t *testing.T) {
	prop := func(client string, nonce, view uint64, contract, fn string,
		args [][]byte, orgs []string, padding uint32, sig []byte) bool {
		tx := &Transaction{
			Client:   crypto.Identity(client),
			Nonce:    nonce,
			View:     view,
			Contract: contract,
			Fn:       fn,
			Args:     args,
			Orgs:     orgs,
			Padding:  padding % (1 << 20), // keep int additions sensible
			Sig:      crypto.Signature(sig),
		}
		return tx.Size() == len(tx.Marshal())+int(tx.Padding)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestTransactionSizeCacheInvalidation: Sign must invalidate the memoized
// size and signing bytes, since it replaces the signature (and callers
// typically populate fields right up until signing).
func TestTransactionSizeCacheInvalidation(t *testing.T) {
	scheme := crypto.NewHMACScheme([]byte("s"))
	tx := sampleTx()
	scheme.Register(tx.Client)

	unsigned := tx.Size() // prime the cache before the signature exists
	if err := tx.Sign(scheme); err != nil {
		t.Fatal(err)
	}
	if got, want := tx.Size(), len(tx.Marshal())+int(tx.Padding); got != want {
		t.Fatalf("Size after Sign = %d, want %d (stale cache? unsigned was %d)", got, want, unsigned)
	}
	if tx.Size() <= unsigned {
		t.Fatalf("signed Size %d not larger than unsigned %d", tx.Size(), unsigned)
	}
}

// TestSequencedTxSizeMatchesWrapped pins the SequencedTx framing overhead on
// top of the memoized transaction size.
func TestSequencedTxSizeMatchesWrapped(t *testing.T) {
	tx := sampleTx()
	st := &SequencedTx{Seq: 7, Tx: tx}
	if got, want := st.Size(), 8+len(tx.Marshal())+int(tx.Padding); got != want {
		t.Fatalf("SequencedTx.Size = %d, want %d", got, want)
	}
}
