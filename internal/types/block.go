package types

import (
	"github.com/bidl-framework/bidl/internal/crypto"
)

// NodeSig is one consensus node's signature within a certificate.
type NodeSig struct {
	Node int
	Sig  crypto.Signature
}

// Certificate proves that a quorum of consensus nodes agreed on a block
// digest in a view. Blocks with 2f+1 valid signatures are committable
// (Algo 2 line 9).
type Certificate struct {
	View   uint64
	Number uint64
	Digest crypto.Digest
	Sigs   []NodeSig
}

// SigningBytes returns the bytes each consensus node signs: the tuple
// (view, number, digest).
func CertSigningBytes(view, number uint64, digest crypto.Digest) []byte {
	var e enc
	e.u64(view)
	e.u64(number)
	e.buf = append(e.buf, digest[:]...)
	return e.buf
}

// Size returns the certificate's wire size.
func (c *Certificate) Size() int {
	n := 8 + 8 + 32 + 4
	for _, s := range c.Sigs {
		n += 4 + 4 + len(s.Sig)
	}
	return n
}

// Verify checks that the certificate carries at least quorum valid
// signatures from distinct nodes over the expected tuple.
func (c *Certificate) Verify(scheme crypto.Scheme, nodeIdentity func(int) crypto.Identity, quorum int) bool {
	msg := CertSigningBytes(c.View, c.Number, c.Digest)
	seen := make(map[int]bool, len(c.Sigs))
	valid := 0
	for _, s := range c.Sigs {
		if seen[s.Node] {
			continue
		}
		seen[s.Node] = true
		if scheme.Verify(nodeIdentity(s.Node), msg, s.Sig) {
			valid++
		}
	}
	return valid >= quorum
}

// Block is an ordered batch of transactions. Under the consensus-on-hash
// optimization (§6), consensus nodes agree on Seqs+Hashes; full transactions
// travel via the sequencer multicast and are re-attached at assembly.
type Block struct {
	Number uint64
	Prev   crypto.Digest
	// Seqs are the sequence numbers assigned by the sequencer, parallel
	// with Hashes.
	Seqs   []uint64
	Hashes []TxID
	// Txns carries full payloads when present (nil in hash-only
	// proposals).
	Txns []*Transaction
	Cert *Certificate
}

// HeaderDigest hashes the ordering-relevant content: number, previous
// digest, sequence numbers and transaction hashes. This is the value the BFT
// protocol agrees on and certificates sign.
func (b *Block) HeaderDigest() crypto.Digest {
	var e enc
	e.u64(b.Number)
	e.buf = append(e.buf, b.Prev[:]...)
	e.u32(uint32(len(b.Seqs)))
	for i := range b.Seqs {
		e.u64(b.Seqs[i])
		e.buf = append(e.buf, b.Hashes[i][:]...)
	}
	return crypto.Hash(e.buf)
}

// HashOnlySize is the wire size of the block without payloads — what the
// consensus-on-hash optimization sends through the BFT protocol.
func (b *Block) HashOnlySize() int {
	n := 8 + 32 + 4 + len(b.Hashes)*(8+32)
	if b.Cert != nil {
		n += b.Cert.Size()
	}
	return n
}

// Size implements simnet.Message: full size including any payloads.
func (b *Block) Size() int {
	n := b.HashOnlySize()
	for _, t := range b.Txns {
		if t != nil {
			n += t.Size()
		}
	}
	return n
}

// Len returns the number of transactions the block orders.
func (b *Block) Len() int { return len(b.Hashes) }
