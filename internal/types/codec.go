package types

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorrupt is returned when a buffer cannot be decoded.
var ErrCorrupt = errors.New("types: corrupt encoding")

// maxElems bounds collection lengths during decoding so corrupt or hostile
// inputs cannot trigger huge allocations.
const maxElems = 1 << 20

// enc is a little append-based binary encoder. All BIDL wire types use it so
// that message sizes (which drive simulated bandwidth costs) reflect a real
// serialization format.
type enc struct{ buf []byte }

func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *enc) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *enc) str(s string) { e.bytes([]byte(s)) }

// dec decodes buffers produced by enc. It records the first error and makes
// subsequent reads no-ops, so callers can check once at the end.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, what, d.off)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail("u8")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail("u32")
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail("u64")
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *dec) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail("bytes")
		return nil
	}
	v := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return v
}

func (d *dec) str() string { return string(d.bytes()) }

// count reads a collection length and validates it against maxElems.
func (d *dec) count() int {
	n := int(d.u32())
	if n > maxElems {
		d.fail("collection too large")
		return 0
	}
	return n
}

// done returns the accumulated error, also failing if bytes remain.
func (d *dec) done() error {
	if d.err == nil && d.off != len(d.buf) {
		d.fail("trailing bytes")
	}
	return d.err
}
