package types

import (
	"testing"
	"testing/quick"

	"github.com/bidl-framework/bidl/internal/crypto"
)

func TestOrderingRoundTrip(t *testing.T) {
	seqs := []uint64{5, 9, 100}
	hashes := []TxID{crypto.Hash([]byte("a")), crypto.Hash([]byte("b")), crypto.Hash([]byte("c"))}
	buf := EncodeOrdering(seqs, hashes)
	s2, h2, err := DecodeOrdering(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqs {
		if s2[i] != seqs[i] || h2[i] != hashes[i] {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestOrderingEmpty(t *testing.T) {
	buf := EncodeOrdering(nil, nil)
	s, h, err := DecodeOrdering(buf)
	if err != nil || len(s) != 0 || len(h) != 0 {
		t.Fatalf("empty ordering: %v %v %v", s, h, err)
	}
}

func TestOrderingCorrupt(t *testing.T) {
	buf := EncodeOrdering([]uint64{1}, []TxID{crypto.Hash([]byte("x"))})
	for i := 0; i < len(buf); i++ {
		if _, _, err := DecodeOrdering(buf[:i]); err == nil {
			t.Fatalf("prefix %d decoded", i)
		}
	}
	if _, _, err := DecodeOrdering(append(buf, 1)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestPropertyOrderingRoundTrip(t *testing.T) {
	f := func(seqs []uint64) bool {
		hashes := make([]TxID, len(seqs))
		for i, s := range seqs {
			hashes[i] = crypto.Hash([]byte{byte(s), byte(s >> 8), byte(i)})
		}
		s2, h2, err := DecodeOrdering(EncodeOrdering(seqs, hashes))
		if err != nil || len(s2) != len(seqs) {
			return false
		}
		for i := range seqs {
			if s2[i] != seqs[i] || h2[i] != hashes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderingDigestBindsContent(t *testing.T) {
	a := EncodeOrdering([]uint64{1}, []TxID{crypto.Hash([]byte("a"))})
	b := EncodeOrdering([]uint64{2}, []TxID{crypto.Hash([]byte("a"))})
	if OrderingDigest(a) == OrderingDigest(b) {
		t.Fatal("digest ignores sequence numbers")
	}
}
