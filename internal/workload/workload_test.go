package workload

import (
	"strconv"
	"testing"

	"github.com/bidl-framework/bidl/internal/contract"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/ledger"
)

func newGen(cfg Config) *Generator {
	return NewGenerator(cfg, crypto.NewHMACScheme([]byte("wl")))
}

func TestTransfersCrossOrgs(t *testing.T) {
	g := newGen(DefaultConfig(10))
	for i := 0; i < 200; i++ {
		tx := g.Next()
		if tx.Fn != "send_payment" {
			t.Fatalf("unexpected fn %q with zero nondet ratio", tx.Fn)
		}
		if len(tx.Orgs) != 2 || tx.Orgs[0] == tx.Orgs[1] {
			t.Fatalf("transfer orgs = %v, want two distinct", tx.Orgs)
		}
	}
}

func TestSignedAndUnique(t *testing.T) {
	scheme := crypto.NewHMACScheme([]byte("wl"))
	g := NewGenerator(DefaultConfig(4), scheme)
	seen := make(map[[32]byte]bool)
	for i := 0; i < 500; i++ {
		tx := g.Next()
		if !tx.VerifySig(scheme) {
			t.Fatal("generated transaction has invalid signature")
		}
		if seen[tx.ID()] {
			t.Fatal("duplicate transaction ID generated")
		}
		seen[tx.ID()] = true
	}
}

func TestContentionSkewsToHotAccounts(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.ContentionRatio = 0.5
	g := newGen(cfg)
	hot := 0
	const n = 2000
	nHot := int(float64(cfg.Accounts) * cfg.HotFraction)
	for i := 0; i < n; i++ {
		tx := g.Next()
		src := string(tx.Args[0])
		idx, _ := strconv.Atoi(src[len("acct-"):])
		if idx < nHot {
			hot++
		}
	}
	frac := float64(hot) / n
	// Expect roughly >=45% of transfers to source from the hot set (50%
	// forced + occasional cold draws landing there).
	if frac < 0.40 || frac > 0.65 {
		t.Fatalf("hot-source fraction = %.2f with contention 0.5", frac)
	}

	cfg.ContentionRatio = 0
	cold := newGen(cfg)
	hot = 0
	for i := 0; i < n; i++ {
		tx := cold.Next()
		idx, _ := strconv.Atoi(string(tx.Args[0])[len("acct-"):])
		if idx < nHot {
			hot++
		}
	}
	if f := float64(hot) / n; f > 0.05 {
		t.Fatalf("hot fraction %.3f without contention; want ~1%%", f)
	}
}

func TestNondetRatio(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.NondetRatio = 0.3
	g := newGen(cfg)
	nd := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if g.Next().Fn == "create_random" {
			nd++
		}
	}
	if f := float64(nd) / n; f < 0.25 || f > 0.35 {
		t.Fatalf("nondet fraction = %.2f, want ~0.30", f)
	}
}

func TestPrepopulate(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Accounts = 100
	g := newGen(cfg)
	st := ledger.NewState()
	g.Prepopulate(st)
	if st.Len() != 200 {
		t.Fatalf("state has %d keys, want 200 (checking+savings)", st.Len())
	}
	val, _, ok := st.Get(contract.CheckingKey("acct-0"))
	if !ok || string(val) != strconv.FormatInt(cfg.InitialBalance, 10) {
		t.Fatalf("acct-0 checking = %q", val)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, b := newGen(DefaultConfig(8)), newGen(DefaultConfig(8))
	for i := 0; i < 100; i++ {
		if a.Next().ID() != b.Next().ID() {
			t.Fatal("same seed generated different transactions")
		}
	}
}

func TestTransactionsAreOneKB(t *testing.T) {
	g := newGen(DefaultConfig(4))
	tx := g.Next()
	if s := tx.Size(); s < 900 || s > 1200 {
		t.Fatalf("generated txn size %d, want ~1KB", s)
	}
}

func TestDegenerateConfigsClamped(t *testing.T) {
	cfg := Config{NumOrgs: 0, NumClients: 0, Accounts: 0, Seed: 1}
	g := newGen(cfg)
	tx := g.Next()
	if tx == nil || len(tx.Orgs) == 0 {
		t.Fatal("degenerate config produced unusable generator")
	}
}
