package workload

import (
	"math"
	"strconv"
	"testing"

	"github.com/bidl-framework/bidl/internal/contract"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/ledger"
)

func newGen(cfg Config) *Generator {
	return NewGenerator(cfg, crypto.NewHMACScheme([]byte("wl")))
}

func TestTransfersCrossOrgs(t *testing.T) {
	g := newGen(DefaultConfig(10))
	for i := 0; i < 200; i++ {
		tx := g.Next()
		if tx.Fn != "send_payment" {
			t.Fatalf("unexpected fn %q with zero nondet ratio", tx.Fn)
		}
		if len(tx.Orgs) != 2 || tx.Orgs[0] == tx.Orgs[1] {
			t.Fatalf("transfer orgs = %v, want two distinct", tx.Orgs)
		}
	}
}

func TestSignedAndUnique(t *testing.T) {
	scheme := crypto.NewHMACScheme([]byte("wl"))
	g := NewGenerator(DefaultConfig(4), scheme)
	seen := make(map[[32]byte]bool)
	for i := 0; i < 500; i++ {
		tx := g.Next()
		if !tx.VerifySig(scheme) {
			t.Fatal("generated transaction has invalid signature")
		}
		if seen[tx.ID()] {
			t.Fatal("duplicate transaction ID generated")
		}
		seen[tx.ID()] = true
	}
}

func TestContentionSkewsToHotAccounts(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.ContentionRatio = 0.5
	g := newGen(cfg)
	hot := 0
	const n = 2000
	nHot := int(float64(cfg.Accounts) * cfg.HotFraction)
	for i := 0; i < n; i++ {
		tx := g.Next()
		src := string(tx.Args[0])
		idx, _ := strconv.Atoi(src[len("acct-"):])
		if idx < nHot {
			hot++
		}
	}
	frac := float64(hot) / n
	// Expect roughly >=45% of transfers to source from the hot set (50%
	// forced + occasional cold draws landing there).
	if frac < 0.40 || frac > 0.65 {
		t.Fatalf("hot-source fraction = %.2f with contention 0.5", frac)
	}

	cfg.ContentionRatio = 0
	cold := newGen(cfg)
	hot = 0
	for i := 0; i < n; i++ {
		tx := cold.Next()
		idx, _ := strconv.Atoi(string(tx.Args[0])[len("acct-"):])
		if idx < nHot {
			hot++
		}
	}
	if f := float64(hot) / n; f > 0.05 {
		t.Fatalf("hot fraction %.3f without contention; want ~1%%", f)
	}
}

func TestNondetRatio(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.NondetRatio = 0.3
	g := newGen(cfg)
	nd := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if g.Next().Fn == "create_random" {
			nd++
		}
	}
	if f := float64(nd) / n; f < 0.25 || f > 0.35 {
		t.Fatalf("nondet fraction = %.2f, want ~0.30", f)
	}
}

func TestPrepopulate(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Accounts = 100
	g := newGen(cfg)
	st := ledger.NewState()
	g.Prepopulate(st)
	if st.Len() != 200 {
		t.Fatalf("state has %d keys, want 200 (checking+savings)", st.Len())
	}
	val, _, ok := st.Get(contract.CheckingKey("acct-0"))
	if !ok || string(val) != strconv.FormatInt(cfg.InitialBalance, 10) {
		t.Fatalf("acct-0 checking = %q", val)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, b := newGen(DefaultConfig(8)), newGen(DefaultConfig(8))
	for i := 0; i < 100; i++ {
		if a.Next().ID() != b.Next().ID() {
			t.Fatal("same seed generated different transactions")
		}
	}
}

func TestTransactionsAreOneKB(t *testing.T) {
	g := newGen(DefaultConfig(4))
	tx := g.Next()
	if s := tx.Size(); s < 900 || s > 1200 {
		t.Fatalf("generated txn size %d, want ~1KB", s)
	}
}

func TestDegenerateConfigsClamped(t *testing.T) {
	cfg := Config{NumOrgs: 0, NumClients: 0, Accounts: 0, Seed: 1}
	g := newGen(cfg)
	tx := g.Next()
	if tx == nil || len(tx.Orgs) == 0 {
		t.Fatal("degenerate config produced unusable generator")
	}
}

// TestDestinationContention is the regression test for the NextFrom
// destination-collision redraw: it used to call rng.Intn directly instead
// of pickAccount, so with two organizations (where ~half of first draws
// collide on org parity) the destination silently lost most of its
// contention skew.
func TestDestinationContention(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Accounts = 1000
	cfg.ContentionRatio = 0.6
	g := newGen(cfg)
	nHot := int(float64(cfg.Accounts) * cfg.HotFraction)
	const n = 4000
	dstHot, bothHot := 0, 0
	for i := 0; i < n; i++ {
		tx := g.Next()
		src, _ := strconv.Atoi(string(tx.Args[0])[len("acct-"):])
		dst, _ := strconv.Atoi(string(tx.Args[1])[len("acct-"):])
		if dst < nHot {
			dstHot++
			if src < nHot {
				bothHot++
			}
		}
	}
	// Fixed behavior keeps the destination hot with probability
	// ~ContentionRatio; the uniform-redraw bug dropped this to ~0.31 here.
	if f := float64(dstHot) / n; f < 0.50 || f > 0.72 {
		t.Fatalf("dst hot fraction = %.3f, want ~%.2f", f, cfg.ContentionRatio)
	}
	// Hot pairs (both endpoints hot) are the contention that actually forces
	// speculative re-execution; with the bug they occurred at ~0.19.
	if f := float64(bothHot) / n; f < 0.30 {
		t.Fatalf("hot-pair fraction = %.3f, want ~%.2f", f, cfg.ContentionRatio*cfg.ContentionRatio)
	}
}

func TestClientOutOfRangePanics(t *testing.T) {
	g := newGen(DefaultConfig(2))
	defer func() {
		if recover() == nil {
			t.Fatal("Client(NumClients) did not panic")
		}
	}()
	g.Client(g.cfg.NumClients)
}

func TestZipfSInvalidPanics(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.ZipfS = 0.5
	defer func() {
		if recover() == nil {
			t.Fatal("ZipfS in (0,1] did not panic")
		}
	}()
	newGen(cfg)
}

// TestZipfDistribution pins the Zipf draw distribution for a known seed
// with a chi-squared test against the theoretical pmf, bucketed so every
// expected count is large.
func TestZipfDistribution(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.ZipfS = 1.5
	g := newGen(cfg)
	const n = 50000
	counts := make([]int, cfg.Accounts)
	for i := 0; i < n; i++ {
		counts[g.pickAccount()]++
	}
	// Theoretical pmf: P(k) ∝ 1/(1+k)^s (rand.Zipf with v=1).
	pmf := make([]float64, cfg.Accounts)
	var norm float64
	for k := range pmf {
		pmf[k] = math.Pow(float64(1+k), -cfg.ZipfS)
		norm += pmf[k]
	}
	buckets := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 10}, {10, 100}, {100, cfg.Accounts}}
	chi2 := 0.0
	for _, b := range buckets {
		obs, exp := 0, 0.0
		for k := b[0]; k < b[1]; k++ {
			obs += counts[k]
			exp += pmf[k] / norm * n
		}
		chi2 += (float64(obs) - exp) * (float64(obs) - exp) / exp
	}
	// 5 degrees of freedom; the seed is fixed so this cannot flake. A broken
	// skew (uniform draws, wrong exponent) lands in the thousands.
	if chi2 > 16.75 { // p ≈ 0.005
		t.Fatalf("chi-squared = %.1f against Zipf(s=1.5) pmf", chi2)
	}
	// Rank-frequency sanity: strict monotone head and heavy top mass.
	if counts[0] <= counts[1] || counts[1] <= counts[2] {
		t.Fatalf("rank frequencies not decreasing: %v", counts[:3])
	}
	top := 0
	for k := 0; k < 100; k++ {
		top += counts[k]
	}
	if f := float64(top) / n; f < 0.80 {
		t.Fatalf("top-100 mass = %.3f, want > 0.80 under s=1.5", f)
	}
}

// TestZipfSettlementStreamsDeterministic: same-seed generators with every
// new knob enabled produce byte-identical transaction streams — the
// property serial/PDES equivalence of experiment output rests on.
func TestZipfSettlementStreamsDeterministic(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.ZipfS = 1.2
	cfg.SettlementRatio = 0.3
	cfg.ContentionRatio = 0.2
	a, b := newGen(cfg), newGen(cfg)
	for i := 0; i < 300; i++ {
		if a.Next().ID() != b.Next().ID() {
			t.Fatalf("same seed diverged at tx %d", i)
		}
	}
}

func TestSettlementFlowSteps(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.SettlementRatio = 1
	g := newGen(cfg)
	opened := make(map[string]bool)
	follow := 0
	for i := 0; i < 400; i++ {
		tx := g.Next()
		if tx.Contract != "settlement" {
			t.Fatalf("tx %d contract = %q with SettlementRatio 1", i, tx.Contract)
		}
		switch tx.Fn {
		case "open":
			if len(tx.Args) != 5 {
				t.Fatalf("open has %d args", len(tx.Args))
			}
			id := string(tx.Args[0])
			if opened[id] {
				t.Fatalf("flow %s opened twice", id)
			}
			opened[id] = true
		case "settle", "cancel":
			follow++
			if len(tx.Args) != 2 {
				t.Fatalf("%s has %d args", tx.Fn, len(tx.Args))
			}
			if !opened[string(tx.Args[0])] {
				t.Fatalf("%s references unopened flow %q", tx.Fn, tx.Args[0])
			}
		default:
			t.Fatalf("unexpected settlement fn %q", tx.Fn)
		}
		if len(tx.Orgs) == 0 || len(tx.Orgs) > 2 {
			t.Fatalf("settlement orgs = %v", tx.Orgs)
		}
	}
	if follow < 100 {
		t.Fatalf("only %d follow-up steps in 400 draws", follow)
	}
}

// TestPrepopulateSharesBase: prepopulation attaches one shared base to
// every node state — O(1) per node — and the fee schedule appears exactly
// when settlement is enabled.
func TestPrepopulateSharesBase(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Accounts = 100
	g := newGen(cfg)
	a, b := ledger.NewState(), ledger.NewState()
	g.Prepopulate(a)
	g.Prepopulate(b)
	if a.Base() == nil || a.Base() != b.Base() {
		t.Fatal("node states do not share one base layer")
	}
	if !a.Equal(b) {
		t.Fatal("freshly prepopulated states differ")
	}

	cfg.SettlementRatio = 0.5
	gs := newGen(cfg)
	st := ledger.NewState()
	gs.Prepopulate(st)
	if want := 2*cfg.Accounts + cfg.NumOrgs; st.Len() != want {
		t.Fatalf("settlement-enabled state has %d keys, want %d", st.Len(), want)
	}
	fee, _, ok := st.Get(contract.FeeKey("org0"))
	if !ok || string(fee) != strconv.Itoa(contract.DefaultSettlementFee) {
		t.Fatalf("fee schedule = %q, %v", fee, ok)
	}
	if _, _, ok := st.Get(contract.FeeKey("org4")); ok {
		t.Fatal("fee key beyond NumOrgs resolved")
	}
	if _, _, ok := st.Get("sb:chk:acct-0100"); ok {
		t.Fatal("non-canonical account key resolved")
	}
	if _, _, ok := st.Get("sb:chk:acct-100"); ok {
		t.Fatal("account index beyond Accounts resolved")
	}
}

// TestLazyNamesStable: account names render identically from the bounded
// cache and the on-demand path beyond it.
func TestLazyNamesStable(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Accounts = maxNameCache + 10
	g := newGen(cfg)
	for _, i := range []int{0, 1, maxNameCache - 1, maxNameCache, maxNameCache + 9} {
		want := "acct-" + strconv.Itoa(i)
		if got := g.accountName(i); got != want {
			t.Fatalf("accountName(%d) = %q, want %q", i, got, want)
		}
		if got := g.accountName(i); got != want { // cached second read
			t.Fatalf("accountName(%d) second read = %q", i, got)
		}
	}
}
