package workload

import (
	"testing"

	"github.com/bidl-framework/bidl/internal/contract"
	"github.com/bidl-framework/bidl/internal/ledger"
)

// shardRegistry mirrors the contract set every cluster deploys.
func shardRegistry() *contract.Registry {
	reg := contract.NewRegistry()
	reg.Deploy(contract.SmallBank{})
	reg.Deploy(contract.Settlement{})
	reg.Deploy(contract.XShard{})
	return reg
}

// Property: under a sharded config, every generated transaction's declared
// write set routes to one shard — except send_payment, which crosses shards
// and only ever spans exactly two. This is the contract the ShardedHarness
// classifier relies on: nothing but a two-account payment takes the 2PC path.
func TestShardedGeneratorRoutesConsistently(t *testing.T) {
	reg := shardRegistry()
	for _, n := range []int{2, 4, 8} {
		cfg := DefaultConfig(8)
		cfg.Shards = n
		cfg.CrossShardRatio = 0.2
		cfg.SettlementRatio = 0.2
		cfg.NondetRatio = 0.05
		cfg.ContentionRatio = 0.1
		g := newGen(cfg)
		cross := 0
		for i := 0; i < 3000; i++ {
			tx := g.Next()
			keys, ok := reg.DeclaredWrites(tx)
			if !ok {
				t.Fatalf("generated unknown contract %q", tx.Contract)
			}
			if len(keys) == 0 {
				continue // read-only or undeclared: routed by client identity
			}
			shards := map[int]bool{}
			for _, k := range keys {
				shards[ledger.KeyShard(k, n)] = true
			}
			if len(shards) == 1 {
				continue
			}
			if tx.Contract != "smallbank" || tx.Fn != "send_payment" || len(shards) != 2 {
				t.Fatalf("shards=%d: %s/%s writes %v spanning %d shards; only two-shard payments may cross",
					n, tx.Contract, tx.Fn, keys, len(shards))
			}
			cross++
		}
		if cross == 0 {
			t.Fatalf("shards=%d: no cross-shard payments at ratio 0.2", n)
		}
	}
}

// With CrossShardRatio zero, a sharded generator emits no cross-shard
// write set at all, and the observed cross rate at 0.5 tracks the knob.
func TestCrossShardRatioObserved(t *testing.T) {
	reg := shardRegistry()
	count := func(ratio float64) (cross, total int) {
		cfg := DefaultConfig(8)
		cfg.Shards = 4
		cfg.CrossShardRatio = ratio
		g := newGen(cfg)
		for i := 0; i < 2000; i++ {
			keys, _ := reg.DeclaredWrites(g.Next())
			shards := map[int]bool{}
			for _, k := range keys {
				shards[ledger.KeyShard(k, 4)] = true
			}
			if len(shards) > 1 {
				cross++
			}
			total++
		}
		return
	}
	if cross, _ := count(0); cross != 0 {
		t.Fatalf("ratio 0: %d cross-shard pairs", cross)
	}
	cross, total := count(0.5)
	if frac := float64(cross) / float64(total); frac < 0.4 || frac > 0.6 {
		t.Fatalf("ratio 0.5: observed cross fraction %.3f", frac)
	}
}

// Sharding off (Shards <= 1) must not consume extra randomness: the
// transaction stream is byte-identical to the unsharded generator's.
func TestUnshardedByteIdentical(t *testing.T) {
	mk := func(shards int) []string {
		cfg := DefaultConfig(8)
		cfg.SettlementRatio = 0.2
		cfg.Shards = shards
		g := newGen(cfg)
		var out []string
		for i := 0; i < 500; i++ {
			tx := g.Next()
			out = append(out, tx.Fn+"|"+string(tx.Args[0]))
		}
		return out
	}
	base, zero, one := mk(0), mk(0), mk(1)
	for i := range base {
		if base[i] != zero[i] || base[i] != one[i] {
			t.Fatalf("draw %d diverged: %q / %q / %q", i, base[i], zero[i], one[i])
		}
	}
}
