// Package workload generates the paper's SmallBank evaluation workload
// (§6, "Workloads and metrics"): accounts spread over organizations, money
// transfers between accounts of different organizations, a configurable
// contention ratio steering transfers onto a 1% hot-account set (§6.3), and
// a configurable ratio of non-deterministic account-creation transactions.
package workload

import (
	"fmt"
	"math/rand"
	"strconv"

	"github.com/bidl-framework/bidl/internal/contract"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/types"
)

// Config parameterizes a workload.
type Config struct {
	// NumOrgs is the number of organizations accounts are spread over.
	NumOrgs int
	// NumClients is the number of submitting clients (paper: 100).
	NumClients int
	// Accounts is the total number of bank accounts.
	Accounts int
	// HotFraction is the share of accounts considered hot (paper: 1%).
	HotFraction float64
	// ContentionRatio is the probability a transfer touches a hot account
	// (paper sweeps 0–50%).
	ContentionRatio float64
	// NondetRatio is the probability a transaction invokes the
	// non-deterministic create_random contract (§6.3).
	NondetRatio float64
	// InitialBalance seeds every account.
	InitialBalance int64
	// Padding sizes transactions (~1 KB default).
	Padding uint32
	// Seed drives all workload randomness.
	Seed int64
}

// DefaultConfig returns the paper's standard workload parameters.
func DefaultConfig(numOrgs int) Config {
	return Config{
		NumOrgs:         numOrgs,
		NumClients:      100,
		Accounts:        10000,
		HotFraction:     0.01,
		ContentionRatio: 0,
		NondetRatio:     0,
		InitialBalance:  1_000_000,
		Padding:         types.DefaultTxPadding,
		Seed:            7,
	}
}

// Generator produces signed SmallBank transactions.
type Generator struct {
	cfg    Config
	rng    *rand.Rand
	scheme crypto.Scheme
	nonces map[crypto.Identity]uint64
	nHot   int

	// Deterministic name caches. Account, client, and organization names
	// are pure functions of the config, yet used to be re-rendered with
	// fmt.Sprintf per transaction and — worse — per node state during
	// prepopulation (~1M formats on a Setting A cluster). Built once here.
	clients  []crypto.Identity
	accts    []string
	orgNames []string
	// prepop caches the prepopulation key/value set: every node state seeds
	// the identical accounts, so the interned state keys and the shared
	// balance bytes are computed once. Values are never mutated in place
	// anywhere in the ledger/contract stack (writes always allocate fresh
	// value slices), so sharing one balance slice across states is safe.
	prepop  []prepopEntry
	prepBal []byte
}

type prepopEntry struct {
	chk, sav string
}

// NewGenerator builds a generator and registers all client identities with
// the scheme.
func NewGenerator(cfg Config, scheme crypto.Scheme) *Generator {
	if cfg.NumOrgs < 1 {
		cfg.NumOrgs = 1
	}
	if cfg.NumClients < 1 {
		cfg.NumClients = 1
	}
	if cfg.Accounts < cfg.NumOrgs*2 {
		cfg.Accounts = cfg.NumOrgs * 2
	}
	g := &Generator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		scheme: scheme,
		nonces: make(map[crypto.Identity]uint64),
		nHot:   int(float64(cfg.Accounts) * cfg.HotFraction),
	}
	if g.nHot < 1 {
		g.nHot = 1
	}
	g.clients = make([]crypto.Identity, cfg.NumClients)
	for i := range g.clients {
		g.clients[i] = crypto.Identity(fmt.Sprintf("client-%d", i))
	}
	g.orgNames = make([]string, cfg.NumOrgs)
	for o := range g.orgNames {
		g.orgNames[o] = Org(o)
	}
	g.accts = make([]string, cfg.Accounts)
	for i := range g.accts {
		g.accts[i] = fmt.Sprintf("acct-%d", i)
	}
	for i := 0; i < cfg.NumClients; i++ {
		scheme.Register(g.Client(i))
	}
	return g
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Client returns the identity of client i.
func (g *Generator) Client(i int) crypto.Identity {
	if i >= 0 && i < len(g.clients) {
		return g.clients[i]
	}
	return crypto.Identity(fmt.Sprintf("client-%d", i))
}

// Org returns the organization name for index o.
func Org(o int) string { return fmt.Sprintf("org%d", o) }

// account returns the name of account i; accounts are assigned to
// organizations round-robin.
func (g *Generator) account(i int) (name, org string) {
	return g.accts[i], g.orgNames[i%g.cfg.NumOrgs]
}

// Prepopulate seeds a world state with every account at the initial balance,
// replacing the create phase of the benchmark so experiments start from the
// transfer steady state. Every node state seeds the identical key/value set,
// so the interned keys and balance bytes are built once per generator and
// replayed into each state — prepopulation used to dominate the CPU profile
// of short sweeps at ~40% before this cache.
func (g *Generator) Prepopulate(st *ledger.State) {
	if g.prepop == nil {
		g.prepBal = []byte(strconv.FormatInt(g.cfg.InitialBalance, 10))
		g.prepop = make([]prepopEntry, g.cfg.Accounts)
		for i := range g.prepop {
			name, _ := g.account(i)
			g.prepop[i] = prepopEntry{chk: contract.CheckingKey(name), sav: contract.SavingsKey(name)}
		}
	}
	for _, p := range g.prepop {
		st.Put(p.chk, g.prepBal, ledger.Version{})
		st.Put(p.sav, g.prepBal, ledger.Version{})
	}
}

// pickAccount returns a random account index, drawn from the hot set with
// probability ContentionRatio.
func (g *Generator) pickAccount() int {
	if g.cfg.ContentionRatio > 0 && g.rng.Float64() < g.cfg.ContentionRatio {
		return g.rng.Intn(g.nHot)
	}
	// Cold accounts (may rarely hit hot ones too, as in the benchmark).
	return g.rng.Intn(g.cfg.Accounts)
}

// Next produces one signed transaction from a uniformly chosen client.
func (g *Generator) Next() *types.Transaction {
	return g.NextFrom(g.rng.Intn(g.cfg.NumClients))
}

// NextFrom produces one signed transaction from client ci.
func (g *Generator) NextFrom(ci int) *types.Transaction {
	client := g.Client(ci)
	g.nonces[client]++
	tx := &types.Transaction{
		Client:   client,
		Nonce:    g.nonces[client],
		Contract: "smallbank",
		Padding:  g.cfg.Padding,
	}
	if g.cfg.NondetRatio > 0 && g.rng.Float64() < g.cfg.NondetRatio {
		// Non-deterministic account creation (one related org).
		acct := fmt.Sprintf("nd-%d-%d", ci, g.nonces[client])
		tx.Fn = "create_random"
		tx.Args = [][]byte{[]byte(acct)}
		tx.Orgs = []string{Org(g.rng.Intn(g.cfg.NumOrgs))}
	} else {
		// Money transfer between accounts of different organizations
		// (same-org transfers only in the degenerate single-org case).
		src := g.pickAccount()
		dst := g.pickAccount()
		for dst == src || (g.cfg.NumOrgs > 1 && dst%g.cfg.NumOrgs == src%g.cfg.NumOrgs) {
			dst = g.rng.Intn(g.cfg.Accounts)
		}
		srcName, srcOrg := g.account(src)
		dstName, dstOrg := g.account(dst)
		amount := strconv.Itoa(1 + g.rng.Intn(100))
		tx.Fn = "send_payment"
		tx.Args = [][]byte{[]byte(srcName), []byte(dstName), []byte(amount)}
		tx.Orgs = []string{srcOrg, dstOrg}
		if srcOrg == dstOrg {
			tx.Orgs = []string{srcOrg}
		}
	}
	if err := tx.Sign(g.scheme); err != nil {
		panic(fmt.Sprintf("workload: signing failed: %v", err))
	}
	return tx
}

// Batch produces n transactions.
func (g *Generator) Batch(n int) []*types.Transaction {
	txs := make([]*types.Transaction, n)
	for i := range txs {
		txs[i] = g.Next()
	}
	return txs
}
