// Package workload generates the paper's SmallBank evaluation workload
// (§6, "Workloads and metrics"): accounts spread over organizations, money
// transfers between accounts of different organizations, a configurable
// contention ratio steering transfers onto a 1% hot-account set (§6.3), and
// a configurable ratio of non-deterministic account-creation transactions.
//
// Generation is streaming and O(1) per draw at any account count: account
// names render lazily (a bounded cache covers the hot low indices, anything
// beyond renders on demand), account selection optionally follows a Zipf
// distribution with configurable skew, and prepopulation attaches a shared
// function-defined base layer to each node state instead of writing
// 2×Accounts entries per node — the step that made 10⁷-account scenarios
// cost O(accounts × nodes) memory before the first transaction flowed.
package workload

import (
	"fmt"
	"math/rand"
	"strconv"

	"github.com/bidl-framework/bidl/internal/contract"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/types"
)

// Config parameterizes a workload.
type Config struct {
	// NumOrgs is the number of organizations accounts are spread over.
	NumOrgs int
	// NumClients is the number of submitting clients (paper: 100).
	NumClients int
	// Accounts is the total number of bank accounts.
	Accounts int
	// HotFraction is the share of accounts considered hot (paper: 1%).
	HotFraction float64
	// ContentionRatio is the probability a transfer touches a hot account
	// (paper sweeps 0–50%).
	ContentionRatio float64
	// NondetRatio is the probability a transaction invokes the
	// non-deterministic create_random contract (§6.3).
	NondetRatio float64
	// ZipfS, when > 1, draws non-hot-set accounts from a Zipf distribution
	// with skew exponent s (low indices are popular). Zero keeps the legacy
	// uniform draw; values in (0, 1] are invalid (rand.Zipf requires s > 1).
	ZipfS float64
	// SettlementRatio is the probability a transaction is a step of a
	// multi-step settlement flow (open → settle/cancel) instead of a
	// SmallBank transfer.
	SettlementRatio float64
	// Shards, when > 1, makes pair selection shard-aware (the ledger.KeyShard
	// keyspace partitioning): both accounts of a transfer land on the same
	// shard, except with probability CrossShardRatio the pair deliberately
	// straddles two shards (the 2PC path). Settlement flows stay shard-local —
	// the flow id is advanced until its escrow key shards with the source
	// account. Zero or one keeps the pair draw byte-identical to the
	// unsharded generator (no extra randomness is consumed).
	Shards int
	// CrossShardRatio is the probability a transfer crosses shards.
	CrossShardRatio float64
	// InitialBalance seeds every account.
	InitialBalance int64
	// Padding sizes transactions (~1 KB default).
	Padding uint32
	// Seed drives all workload randomness.
	Seed int64
}

// DefaultConfig returns the paper's standard workload parameters.
func DefaultConfig(numOrgs int) Config {
	return Config{
		NumOrgs:         numOrgs,
		NumClients:      100,
		Accounts:        10000,
		HotFraction:     0.01,
		ContentionRatio: 0,
		NondetRatio:     0,
		ZipfS:           0,
		SettlementRatio: 0,
		InitialBalance:  1_000_000,
		Padding:         types.DefaultTxPadding,
		Seed:            7,
	}
}

// maxNameCache bounds the lazily-filled account-name cache. Skewed draws
// concentrate on low indices, so the cache absorbs almost every render while
// staying constant-size no matter how many accounts the config declares.
const maxNameCache = 1 << 16

// settleLag is how many generator draws separate a flow's open from its
// settle/cancel follow-up — long enough to usually land in a later block.
const settleLag = 8

// pendingFlow is a settlement flow that has been opened but not yet
// settled or cancelled.
type pendingFlow struct {
	id       string
	src, dst int
	due      uint64 // draw count after which the follow-up may fire
}

// Generator produces signed SmallBank (and optionally settlement-flow)
// transactions.
type Generator struct {
	cfg    Config
	rng    *rand.Rand
	zipf   *rand.Zipf
	scheme crypto.Scheme
	nonces map[crypto.Identity]uint64
	nHot   int

	// Deterministic name caches. Client and organization names are pure
	// functions of the config, rendered once. Account names render lazily
	// into a bounded cache so construction stays O(1) in Accounts.
	clients   []crypto.Identity
	orgNames  []string
	nameCache []string

	// base is the shared immutable prepopulation layer: one function-defined
	// ledger.Base describing every account balance (and, with settlement
	// enabled, every org's fee schedule), attached to each node state by
	// Prepopulate. Built once per generator; O(1) memory total.
	base    *ledger.Base
	prepBal []byte
	feeVal  []byte

	// Settlement-flow bookkeeping: opened flows queue here until their
	// follow-up (settle or cancel) comes due.
	flows   []pendingFlow
	flowSeq uint64
	draws   uint64
}

// NewGenerator builds a generator and registers all client identities with
// the scheme.
func NewGenerator(cfg Config, scheme crypto.Scheme) *Generator {
	if cfg.NumOrgs < 1 {
		cfg.NumOrgs = 1
	}
	if cfg.NumClients < 1 {
		cfg.NumClients = 1
	}
	if cfg.Accounts < cfg.NumOrgs*2 {
		cfg.Accounts = cfg.NumOrgs * 2
	}
	if cfg.ZipfS != 0 && cfg.ZipfS <= 1 {
		panic(fmt.Sprintf("workload: ZipfS = %v is invalid; need 0 (uniform) or > 1", cfg.ZipfS))
	}
	g := &Generator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		scheme: scheme,
		nonces: make(map[crypto.Identity]uint64),
		nHot:   int(float64(cfg.Accounts) * cfg.HotFraction),
	}
	if g.nHot < 1 {
		g.nHot = 1
	}
	if cfg.ZipfS > 1 {
		g.zipf = rand.NewZipf(g.rng, cfg.ZipfS, 1, uint64(cfg.Accounts-1))
	}
	g.clients = make([]crypto.Identity, cfg.NumClients)
	for i := range g.clients {
		g.clients[i] = crypto.Identity(fmt.Sprintf("client-%d", i))
	}
	g.orgNames = make([]string, cfg.NumOrgs)
	for o := range g.orgNames {
		g.orgNames[o] = Org(o)
	}
	n := cfg.Accounts
	if n > maxNameCache {
		n = maxNameCache
	}
	g.nameCache = make([]string, n)
	for i := 0; i < cfg.NumClients; i++ {
		scheme.Register(g.Client(i))
	}
	return g
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Client returns the identity of client i. An out-of-range index is a
// harness bug — the returned identity would never have been registered with
// the crypto scheme, so every transaction it signs would fail verification
// far from the root cause; panic here instead.
func (g *Generator) Client(i int) crypto.Identity {
	if i < 0 || i >= len(g.clients) {
		panic(fmt.Sprintf("workload: client index %d out of range [0,%d)", i, len(g.clients)))
	}
	return g.clients[i]
}

// Org returns the organization name for index o.
func Org(o int) string { return fmt.Sprintf("org%d", o) }

// accountName renders the name of account i, serving low indices from the
// bounded cache.
func (g *Generator) accountName(i int) string {
	if i < len(g.nameCache) {
		if s := g.nameCache[i]; s != "" {
			return s
		}
		s := "acct-" + strconv.Itoa(i)
		g.nameCache[i] = s
		return s
	}
	return "acct-" + strconv.Itoa(i)
}

// account returns the name of account i; accounts are assigned to
// organizations round-robin.
func (g *Generator) account(i int) (name, org string) {
	return g.accountName(i), g.orgNames[i%g.cfg.NumOrgs]
}

// World-state key prefixes the functional base resolves. These mirror
// contract.CheckingKey/SavingsKey/FeeKey applied to the generator's account
// and organization naming, without going through the contract package's
// interning cache (which would retain every key a full-state scan renders).
const (
	baseChkPrefix = "sb:chk:acct-"
	baseSavPrefix = "sb:sav:acct-"
	baseFeePrefix = "stl:fee:org"
)

// parseSuffixIndex matches key against prefix + canonical decimal index in
// [0, n). It allocates nothing: the base's lookup function sits under every
// state read that misses a node's delta.
func parseSuffixIndex(key, prefix string, n int) (int, bool) {
	if len(key) <= len(prefix) || key[:len(prefix)] != prefix {
		return 0, false
	}
	s := key[len(prefix):]
	if len(s) > 1 && s[0] == '0' { // leading zeros are non-canonical
		return 0, false
	}
	idx := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		idx = idx*10 + int(c-'0')
		if idx >= n { // also guards overflow: n is an int that fit the config
			return 0, false
		}
	}
	return idx, true
}

// Base returns the shared prepopulation layer: a function-defined
// ledger.Base holding every account's checking and savings balance (and,
// when settlement flows are enabled, each organization's fee schedule).
// It is built once and shared by reference across every node state, so a
// cluster's prepopulated world state costs O(1) memory regardless of
// Accounts. Both closures are pure — the base is read concurrently by every
// partition under PDES.
func (g *Generator) Base() *ledger.Base {
	if g.base != nil {
		return g.base
	}
	prepBal := []byte(strconv.FormatInt(g.cfg.InitialBalance, 10))
	feeVal := []byte(strconv.Itoa(contract.DefaultSettlementFee))
	nAcct := g.cfg.Accounts
	nFee := 0
	if g.cfg.SettlementRatio > 0 {
		nFee = g.cfg.NumOrgs
	}
	g.prepBal, g.feeVal = prepBal, feeVal
	g.base = ledger.NewFuncBase(2*nAcct+nFee,
		func(i int) string {
			switch {
			case i < nAcct:
				return baseChkPrefix + strconv.Itoa(i)
			case i < 2*nAcct:
				return baseSavPrefix + strconv.Itoa(i-nAcct)
			default:
				return baseFeePrefix + strconv.Itoa(i-2*nAcct)
			}
		},
		func(key string) ([]byte, bool) {
			if _, ok := parseSuffixIndex(key, baseChkPrefix, nAcct); ok {
				return prepBal, true
			}
			if _, ok := parseSuffixIndex(key, baseSavPrefix, nAcct); ok {
				return prepBal, true
			}
			if nFee > 0 {
				if _, ok := parseSuffixIndex(key, baseFeePrefix, nFee); ok {
					return feeVal, true
				}
			}
			return nil, false
		})
	return g.base
}

// Prepopulate seeds a world state with every account at the initial
// balance, replacing the create phase of the benchmark so experiments start
// from the transfer steady state. The state is attached copy-on-write to
// the generator's shared base layer: O(1) time and memory per node, where
// this used to write 2×Accounts entries into every node state (dominating
// startup at ~40% of short-sweep CPU and making memory O(accounts×nodes)).
func (g *Generator) Prepopulate(st *ledger.State) {
	st.SetBase(g.Base())
}

// pickAccount returns a random account index, drawn from the hot set with
// probability ContentionRatio; the remaining draws are uniform, or Zipf
// with skew ZipfS when configured.
func (g *Generator) pickAccount() int {
	if g.cfg.ContentionRatio > 0 && g.rng.Float64() < g.cfg.ContentionRatio {
		return g.rng.Intn(g.nHot)
	}
	if g.zipf != nil {
		return int(g.zipf.Uint64())
	}
	// Cold accounts (may rarely hit hot ones too, as in the benchmark).
	return g.rng.Intn(g.cfg.Accounts)
}

// pickPair draws a (src, dst) account pair for a cross-org transfer or
// settlement flow. Every redraw goes through pickAccount so the contention
// and skew knobs apply to the destination too — the redraw loop used to
// fall back to a uniform draw, silently under-applying contention to the
// destination on every collision.
func (g *Generator) pickPair() (src, dst int) {
	if g.cfg.Shards > 1 {
		return g.pickPairSharded(g.rng.Float64() < g.cfg.CrossShardRatio)
	}
	src = g.pickAccount()
	dst = g.pickAccount()
	for dst == src || (g.cfg.NumOrgs > 1 && dst%g.cfg.NumOrgs == src%g.cfg.NumOrgs) {
		dst = g.pickAccount()
	}
	return src, dst
}

// pickPairSharded draws a pair whose ledger.IndexShard relation is exactly
// cross: same shard for the ordinary single-channel pipeline, different
// shards for the 2PC path. Every redraw still goes through pickAccount, so
// the contention and skew knobs keep applying to the destination.
func (g *Generator) pickPairSharded(cross bool) (src, dst int) {
	n := g.cfg.Shards
	src = g.pickAccount()
	srcShard := ledger.IndexShard(src, n)
	dst = g.pickAccount()
	for dst == src ||
		(g.cfg.NumOrgs > 1 && dst%g.cfg.NumOrgs == src%g.cfg.NumOrgs) ||
		(ledger.IndexShard(dst, n) == srcShard) == cross {
		dst = g.pickAccount()
	}
	return src, dst
}

// orgsPair returns the related-organization set for a two-account action.
func orgsPair(a, b string) []string {
	if a == b {
		return []string{a}
	}
	return []string{a, b}
}

// Next produces one signed transaction from a uniformly chosen client.
func (g *Generator) Next() *types.Transaction {
	return g.NextFrom(g.rng.Intn(g.cfg.NumClients))
}

// NextFrom produces one signed transaction from client ci.
func (g *Generator) NextFrom(ci int) *types.Transaction {
	client := g.Client(ci)
	g.nonces[client]++
	g.draws++
	tx := &types.Transaction{
		Client:   client,
		Nonce:    g.nonces[client],
		Contract: "smallbank",
		Padding:  g.cfg.Padding,
	}
	switch {
	case g.cfg.NondetRatio > 0 && g.rng.Float64() < g.cfg.NondetRatio:
		// Non-deterministic account creation (one related org).
		acct := fmt.Sprintf("nd-%d-%d", ci, g.nonces[client])
		tx.Fn = "create_random"
		tx.Args = [][]byte{[]byte(acct)}
		tx.Orgs = []string{Org(g.rng.Intn(g.cfg.NumOrgs))}
	case g.cfg.SettlementRatio > 0 && g.rng.Float64() < g.cfg.SettlementRatio:
		g.settlementStep(tx)
	default:
		// Money transfer between accounts of different organizations
		// (same-org transfers only in the degenerate single-org case).
		src, dst := g.pickPair()
		srcName, srcOrg := g.account(src)
		dstName, dstOrg := g.account(dst)
		amount := strconv.Itoa(1 + g.rng.Intn(100))
		tx.Fn = "send_payment"
		tx.Args = [][]byte{[]byte(srcName), []byte(dstName), []byte(amount)}
		tx.Orgs = orgsPair(srcOrg, dstOrg)
	}
	if err := tx.Sign(g.scheme); err != nil {
		panic(fmt.Sprintf("workload: signing failed: %v", err))
	}
	return tx
}

// settlementStep emits one step of a multi-step settlement flow: either the
// follow-up (settle 90% / cancel 10%) of the oldest due open flow, or a new
// open. Follow-ups trail their open by settleLag draws, so a flow's escrow
// key is created, read, and deleted across distinct blocks — the
// read/write-skewed delta churn SmallBank's single-shot transfers lack.
func (g *Generator) settlementStep(tx *types.Transaction) {
	tx.Contract = "settlement"
	if len(g.flows) > 0 && g.flows[0].due <= g.draws {
		f := g.flows[0]
		g.flows = g.flows[1:]
		srcName, srcOrg := g.account(f.src)
		dstName, dstOrg := g.account(f.dst)
		if g.rng.Float64() < 0.9 {
			tx.Fn = "settle"
			tx.Args = [][]byte{[]byte(f.id), []byte(dstName)}
		} else {
			tx.Fn = "cancel"
			tx.Args = [][]byte{[]byte(f.id), []byte(srcName)}
		}
		tx.Orgs = orgsPair(srcOrg, dstOrg)
		return
	}
	var src, dst int
	if g.cfg.Shards > 1 {
		src, dst = g.pickPairSharded(false)
	} else {
		src, dst = g.pickPair()
	}
	g.flowSeq++
	if n := g.cfg.Shards; n > 1 {
		// Keep the flow single-shard: its escrow key ("stl:esc:flow-<seq>")
		// must shard with the source account's keys, so advance the flow
		// sequence until ledger routes it there.
		want := ledger.IndexShard(src, n)
		for ledger.IndexShard(int(g.flowSeq), n) != want {
			g.flowSeq++
		}
	}
	id := "flow-" + strconv.FormatUint(g.flowSeq, 10)
	srcName, srcOrg := g.account(src)
	dstName, dstOrg := g.account(dst)
	amount := strconv.Itoa(100 + g.rng.Intn(900))
	tx.Fn = "open"
	tx.Args = [][]byte{[]byte(id), []byte(srcName), []byte(dstName), []byte(amount), []byte(srcOrg)}
	tx.Orgs = orgsPair(srcOrg, dstOrg)
	g.flows = append(g.flows, pendingFlow{id: id, src: src, dst: dst, due: g.draws + settleLag})
}

// Batch produces n transactions.
func (g *Generator) Batch(n int) []*types.Transaction {
	txs := make([]*types.Transaction, n)
	for i := range txs {
		txs[i] = g.Next()
	}
	return txs
}
