package chaos

import "time"

// Entry is one chaos-catalog scenario: a declarative spec file (under
// examples/, so the same files feed `bidl-sim -scenario` and the smoke
// targets) paired with the invariants its fault schedule must preserve.
type Entry struct {
	ID string
	// File is the scenario spec path relative to the repository root.
	File       string
	Invariants Invariants
}

// Catalog returns the chaos scenario catalog in a stable order. Every
// fault kind that can be expressed in JSON appears at least once, and
// every entry asserts end-state consistency plus a liveness gate
// (trace-backed recovery and/or a committed-transaction floor).
func Catalog() []Entry {
	return []Entry{
		{
			ID:   "crash-restart",
			File: "examples/scenario-chaos-crash.json",
			Invariants: Invariants{
				RequireConsistent: true,
				MinCommitted:      1200,
				RecoveryFloor:     30,
				RecoverBy:         900 * time.Millisecond,
			},
		},
		{
			ID:   "partition-heal",
			File: "examples/scenario-chaos-partition.json",
			Invariants: Invariants{
				RequireConsistent: true,
				MinCommitted:      1200,
				RecoveryFloor:     30,
				RecoverBy:         900 * time.Millisecond,
			},
		},
		{
			ID:   "dc-outage",
			File: "examples/scenario-chaos-dc-outage.json",
			Invariants: Invariants{
				RequireConsistent: true,
				MinCommitted:      600,
				RecoveryFloor:     20,
				RecoverBy:         1100 * time.Millisecond,
			},
		},
		{
			ID:   "drop-storm",
			File: "examples/scenario-chaos-storm.json",
			Invariants: Invariants{
				RequireConsistent: true,
				MinCommitted:      800,
				MinViewChanges:    1,
				RecoveryFloor:     30,
				RecoverBy:         1 * time.Second,
			},
		},
		{
			ID:   "churn",
			File: "examples/scenario-chaos-churn.json",
			Invariants: Invariants{
				RequireConsistent: true,
				MinCommitted:      1400,
				RecoveryFloor:     30,
				RecoverBy:         1350 * time.Millisecond,
			},
		},
		{
			ID:   "seq-failover",
			File: "examples/scenario-chaos-seq-failover.json",
			Invariants: Invariants{
				RequireConsistent: true,
				MinCommitted:      800,
				MinViewChanges:    1,
				RecoveryFloor:     30,
				RecoverBy:         1 * time.Second,
			},
		},
		{
			ID:   "fabric-crash",
			File: "examples/scenario-chaos-fabric-crash.json",
			Invariants: Invariants{
				RequireConsistent: true,
				MinCommitted:      250,
				RecoveryFloor:     8,
				RecoverBy:         1 * time.Second,
			},
		},
	}
}
