package chaos_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/chaos"
	"github.com/bidl-framework/bidl/internal/scenario"
	"github.com/bidl-framework/bidl/internal/trace"
)

// -golden-update rewrites the golden invariant reports from the current
// run. Review the diff before committing: the reports pin exact committed
// counts, so any behavioral change shows up here.
var goldenUpdate = flag.Bool("golden-update", false, "rewrite golden invariant reports")

// bucketWidth is the recovery-series resolution: coarse enough that a
// healthy bucket at catalog load levels holds ~100 commit notices, fine
// enough to locate recovery within a fault window.
const bucketWidth = 50 * time.Millisecond

// runEntry executes one catalog scenario with a tracer attached and
// evaluates its invariants.
func runEntry(t *testing.T, e chaos.Entry) chaos.Report {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", e.File))
	if err != nil {
		t.Fatalf("read spec: %v", err)
	}
	spec, err := scenario.Parse(data)
	if err != nil {
		t.Fatalf("parse spec: %v", err)
	}
	tr := trace.New(trace.Options{})
	res, err := scenario.RunWith(spec, scenario.RunConfig{Tracer: tr})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	stats := chaos.RunStats{
		Committed:   uint64(res.Collector.NumCommitted()),
		ViewChanges: res.Collector.ViewChanges,
		SafetyErr:   res.SafetyErr,
		Series:      tr.CommitSeries(bucketWidth),
		BucketWidth: bucketWidth,
		FaultEnd:    chaos.ScheduleEnd(spec.FaultSchedule()),
	}
	return chaos.Evaluate(e.ID, e.Invariants, stats)
}

// TestChaosCatalog runs every catalog entry and gates it twice: the
// invariants must pass (consistency via the cluster safety audit, progress
// via committed floors, liveness via trace-backed recovery), and the
// rendered report must match its committed golden byte-for-byte — pinning
// each chaos run's deterministic outcome, not just pass/fail.
func TestChaosCatalog(t *testing.T) {
	for _, e := range chaos.Catalog() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			rep := runEntry(t, e)
			if !rep.OK() {
				t.Errorf("invariants failed:\n%s", rep.Render())
			}
			golden := filepath.Join("testdata", "golden-"+e.ID+".txt")
			if *goldenUpdate {
				if err := os.WriteFile(golden, []byte(rep.Render()), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -golden-update): %v", err)
			}
			if got := rep.Render(); got != string(want) {
				t.Errorf("invariant report drifted from golden %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestChaosSameSeedReproducible re-runs one faulted scenario and demands
// an identical invariant report — crash timing, drop-storm coin flips, and
// recovery extraction must all be functions of the seed alone.
func TestChaosSameSeedReproducible(t *testing.T) {
	var e chaos.Entry
	for _, c := range chaos.Catalog() {
		if c.ID == "drop-storm" {
			e = c
		}
	}
	a := runEntry(t, e).Render()
	b := runEntry(t, e).Render()
	if a != b {
		t.Errorf("same seed, different reports:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}
