package chaos

import (
	"math/rand"
	"time"

	"github.com/bidl-framework/bidl/internal/simnet"
)

// Env is the cluster surface the injector needs, assembled by the scenario
// layer. Endpoint rosters give the injector crash/partition targets without
// knowing node types; the closures delegate the cluster-specific mutations
// (leader identification, malicious-leader toggles, broadcaster attachment)
// back to the caller, so the same schedule drives BIDL and the baselines.
type Env struct {
	Sim *simnet.Sim
	Net *simnet.Network

	// Consensus holds the consensus-node (BIDL) or orderer (baseline)
	// endpoints, indexed like the cluster. Sequencers is parallel to
	// Consensus for BIDL and nil for the baselines. Orgs holds the
	// normal-node/peer endpoints per organization.
	Consensus  []*simnet.Endpoint
	Sequencers []*simnet.Endpoint
	Orgs       [][]*simnet.Endpoint

	// LeaderIndex reports the current consensus leader.
	LeaderIndex func() int
	// SetLeaderEvil makes the current leader malicious (on) or clears the
	// malice flag on every node (off) — sequencer garbage mode for BIDL,
	// ProposeGarbage for the baselines.
	SetLeaderEvil func(on bool)
	// StartBroadcaster attaches and arms the §6.2 broadcaster; nil when
	// the framework has no sequencer multicast to race (the baselines —
	// Validate rejects such specs before they get here).
	StartBroadcaster func(f Fault)
}

// Injector compiles a validated fault schedule onto a simulation: fault
// events become Sim.At timers, and partition/storm faults install one
// composed DropFilter. Faulted runs always execute on the serial engine
// (the scenario layer pins SimWorkers to zero, and a non-nil DropFilter
// zeroes the PDES lookahead bound anyway), so the injector's mutable state
// needs no locking and the storm's rng draws stay deterministic.
type Injector struct {
	env    Env
	faults []Fault
	rng    *rand.Rand

	isolated    map[simnet.NodeID]bool
	stormActive bool
	stormRate   float64
	prevFilter  func(from, to simnet.NodeID, msg simnet.Message) bool
}

// NewInjector builds an injector for the schedule. The caller is expected
// to have run ValidateSchedule; seed isolates the storm's coin flips from
// the cluster's randomness.
func NewInjector(env Env, faults []Fault, seed int64) *Injector {
	return &Injector{
		env:      env,
		faults:   faults,
		rng:      rand.New(rand.NewSource(seed*1_000_003 + 17)),
		isolated: make(map[simnet.NodeID]bool),
	}
}

// Install schedules every fault and, when the schedule needs one, hooks the
// network's DropFilter (composing with any filter already installed).
// Kinds that must preserve the legacy attack arming order (leader at time
// zero, broadcaster endpoint registration) apply immediately rather than
// through a timer.
func (in *Injector) Install() {
	needFilter := false
	for _, f := range in.faults {
		switch f.Kind {
		case KindPartition, KindDropStorm:
			needFilter = true
		}
	}
	if needFilter {
		in.prevFilter = in.env.Net.DropFilter
		in.env.Net.DropFilter = in.filter
	}
	for _, f := range in.faults {
		in.schedule(f)
	}
}

func (in *Injector) schedule(f Fault) {
	switch f.Kind {
	case KindCrash:
		in.crashCycle(in.orgEndpoint(f.Org, f.Node), f.At, f.Duration)
	case KindDCOutage:
		eps := in.dcEndpoints(f.DC)
		in.env.Sim.At(f.At, func() {
			for _, ep := range eps {
				ep.SetDown(true)
			}
		})
		in.env.Sim.At(f.At+f.Duration, func() {
			for _, ep := range eps {
				ep.Restart()
			}
		})
	case KindPartition:
		eps := in.env.Orgs[f.Org]
		in.env.Sim.At(f.At, func() {
			for _, ep := range eps {
				in.isolated[ep.ID()] = true
			}
		})
		in.env.Sim.At(f.At+f.Duration, func() {
			for _, ep := range eps {
				delete(in.isolated, ep.ID())
			}
		})
	case KindDropStorm:
		rate := f.Rate
		in.env.Sim.At(f.At, func() {
			in.stormActive = true
			in.stormRate = rate
		})
		in.env.Sim.At(f.At+f.Duration, func() { in.stormActive = false })
	case KindChurn:
		for i := 0; i < f.Count; i++ {
			org := i % len(in.env.Orgs)
			node := (i / len(in.env.Orgs)) % len(in.env.Orgs[org])
			in.crashCycle(in.orgEndpoint(org, node), f.At+time.Duration(i)*f.Period, f.Period/2)
		}
	case KindSeqFailover:
		in.env.Sim.At(f.At, func() { in.env.SetLeaderEvil(true) })
		in.env.Sim.At(f.At+f.Duration, func() { in.env.SetLeaderEvil(false) })
	case KindLeader:
		if f.At == 0 {
			// Legacy attack semantics: the malicious leader is armed
			// before the first event, not by a time-zero timer.
			in.env.SetLeaderEvil(true)
		} else {
			in.env.Sim.At(f.At, func() { in.env.SetLeaderEvil(true) })
		}
		if f.Duration > 0 {
			in.env.Sim.At(f.At+f.Duration, func() { in.env.SetLeaderEvil(false) })
		}
	case KindBroadcaster, KindSmart:
		// Attached immediately: the broadcaster registers its own
		// endpoint, and membership must be complete before any load is
		// scheduled (it arms itself at f.At).
		in.env.StartBroadcaster(f)
	}
}

// crashCycle takes one endpoint down at `at` and, when the window is
// bounded, restarts it after `dur`.
func (in *Injector) crashCycle(ep *simnet.Endpoint, at, dur time.Duration) {
	in.env.Sim.At(at, func() { ep.SetDown(true) })
	if dur > 0 {
		in.env.Sim.At(at+dur, func() { ep.Restart() })
	}
}

// orgEndpoint resolves a (org, node) target, clamping out-of-range indices
// to the last entry so a schedule written for a bigger cluster still runs.
func (in *Injector) orgEndpoint(org, node int) *simnet.Endpoint {
	if org >= len(in.env.Orgs) {
		org = len(in.env.Orgs) - 1
	}
	nodes := in.env.Orgs[org]
	if node >= len(nodes) {
		node = len(nodes) - 1
	}
	return nodes[node]
}

// dcEndpoints collects every roster endpoint in datacenter dc.
func (in *Injector) dcEndpoints(dc int) []*simnet.Endpoint {
	var out []*simnet.Endpoint
	add := func(ep *simnet.Endpoint) {
		if ep != nil && ep.DC() == dc {
			out = append(out, ep)
		}
	}
	for _, ep := range in.env.Consensus {
		add(ep)
	}
	for _, ep := range in.env.Sequencers {
		add(ep)
	}
	for _, org := range in.env.Orgs {
		for _, ep := range org {
			add(ep)
		}
	}
	return out
}

// filter is the composed DropFilter: partition isolation drops messages
// crossing the isolation boundary; an active storm drops the current
// leader's consensus egress with the configured probability, chasing
// leadership as views change.
func (in *Injector) filter(from, to simnet.NodeID, msg simnet.Message) bool {
	if in.prevFilter != nil && in.prevFilter(from, to, msg) {
		return true
	}
	if len(in.isolated) > 0 && in.isolated[from] != in.isolated[to] {
		return true
	}
	if in.stormActive && in.leaderEgress(from) && in.rng.Float64() < in.stormRate {
		return true
	}
	return false
}

// leaderEgress reports whether id is the current leader's consensus
// endpoint. The co-located sequencer is deliberately spared: storming the
// transaction multicast would starve the run of load instead of testing
// the protocol — the goal is lost proposals and block dissemination, which
// force view changes while transactions keep arriving.
func (in *Injector) leaderEgress(id simnet.NodeID) bool {
	li := in.env.LeaderIndex()
	return li >= 0 && li < len(in.env.Consensus) && in.env.Consensus[li].ID() == id
}
