package chaos

import (
	"fmt"
	"strings"
	"time"
)

// RunStats is the post-run evidence the invariant engine judges: end-state
// consistency from the cluster's safety audit, counters from the metrics
// collector, and the committed-per-bucket time series extracted from the
// trace (client commit notices bucketed over virtual time).
type RunStats struct {
	Committed   uint64
	ViewChanges uint64
	SafetyErr   error

	// Series[i] is the number of transactions whose commit notice reached
	// the client in bucket [i*BucketWidth, (i+1)*BucketWidth).
	Series      []int
	BucketWidth time.Duration

	// FaultEnd is the latest bounded fault-window end in the schedule —
	// the earliest virtual time recovery can be expected to begin.
	FaultEnd time.Duration
}

// ScheduleEnd returns the latest bounded fault-window end in the schedule
// (permanent faults are skipped: nothing recovers from them, so liveness
// is measured against the windows that do heal).
func ScheduleEnd(faults []Fault) time.Duration {
	var end time.Duration
	for _, f := range faults {
		if e := f.End(); e < 1<<62 && e > end {
			end = e
		}
	}
	return end
}

// Invariants is one catalog entry's machine-checkable postconditions.
// Zero-valued checks are skipped, so an entry states only what its fault
// schedule is supposed to preserve.
type Invariants struct {
	// RequireConsistent asserts the end-of-run safety audit passed:
	// every correct node's ledger and state agree (ledger.CheckConsistency
	// via the harness's CheckSafety).
	RequireConsistent bool
	// MinCommitted is the progress floor: the run must commit at least
	// this many transactions despite the faults.
	MinCommitted uint64
	// MinViewChanges asserts the faults actually provoked the protocol
	// (a drop storm that never forced a view change tested nothing).
	MinViewChanges uint64
	// RecoveryFloor and RecoverBy are the liveness gate: some trace
	// bucket starting at or after the last fault window's end must carry
	// at least RecoveryFloor commit notices, no later than RecoverBy.
	RecoveryFloor int
	RecoverBy     time.Duration
}

// RecoveryAfter returns the start of the first bucket beginning at or
// after `after` whose count reaches floor, or -1 if none does. Pure
// arithmetic over the trace-derived series so it is unit-testable without
// a simulation.
func RecoveryAfter(series []int, width, after time.Duration, floor int) time.Duration {
	if width <= 0 || floor <= 0 {
		return -1
	}
	for i, n := range series {
		start := time.Duration(i) * width
		if start < after {
			continue
		}
		if n >= floor {
			return start
		}
	}
	return -1
}

// Check is one evaluated invariant.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Report is the invariant engine's verdict for one run.
type Report struct {
	ID     string
	Checks []Check
}

// OK reports whether every check passed.
func (r Report) OK() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// Render formats the report as stable, diffable text — one line per check
// — for golden-file comparison. Details embed exact counters, so a golden
// report also pins the run's deterministic outcome, not just pass/fail.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", r.ID)
	for _, c := range r.Checks {
		status := "ok"
		if !c.OK {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  %-12s %-4s %s\n", c.Name, status, c.Detail)
	}
	return b.String()
}

// Evaluate judges the run against the invariants, skipping zero-valued
// checks.
func Evaluate(id string, inv Invariants, st RunStats) Report {
	r := Report{ID: id}
	if inv.RequireConsistent {
		detail := "all correct nodes consistent"
		if st.SafetyErr != nil {
			detail = st.SafetyErr.Error()
		}
		r.Checks = append(r.Checks, Check{"consistency", st.SafetyErr == nil, detail})
	}
	if inv.MinCommitted > 0 {
		r.Checks = append(r.Checks, Check{
			"progress",
			st.Committed >= inv.MinCommitted,
			fmt.Sprintf("committed %d (floor %d)", st.Committed, inv.MinCommitted),
		})
	}
	if inv.MinViewChanges > 0 {
		r.Checks = append(r.Checks, Check{
			"view_changes",
			st.ViewChanges >= inv.MinViewChanges,
			fmt.Sprintf("view changes %d (floor %d)", st.ViewChanges, inv.MinViewChanges),
		})
	}
	if inv.RecoveryFloor > 0 {
		at := RecoveryAfter(st.Series, st.BucketWidth, st.FaultEnd, inv.RecoveryFloor)
		switch {
		case at < 0:
			r.Checks = append(r.Checks, Check{
				"recovery", false,
				fmt.Sprintf("no bucket after %s reached %d commits/bucket", st.FaultEnd, inv.RecoveryFloor),
			})
		default:
			ok := inv.RecoverBy == 0 || at <= inv.RecoverBy
			r.Checks = append(r.Checks, Check{
				"recovery", ok,
				fmt.Sprintf("recovered at %s (faults end %s, deadline %s)", at, st.FaultEnd, inv.RecoverBy),
			})
		}
	}
	return r
}
