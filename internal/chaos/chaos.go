// Package chaos is the fault-injection engine: a declarative schedule of
// typed fault events (crashes with state catch-up, partitions that heal,
// datacenter outages, message-drop storms, long-horizon churn, sequencer
// equivocation, and the paper's §6.2 adversaries) compiled onto a running
// simulation, paired with a machine-checkable invariant engine that turns a
// finished run into a pass/fail report (consistency, progress, liveness
// expressed as recovery time).
//
// The package deliberately depends only on simnet: cluster-specific
// operations (who is the leader, how to make it malicious, how to attach a
// broadcaster) arrive as closures in Env, so the same fault schedule drives
// both the BIDL cluster and the Fabric baselines. The scenario layer owns
// the JSON surface (scenario.FaultSpec) and compiles it to []Fault.
package chaos

import (
	"fmt"
	"time"
)

// Fault kinds accepted by Fault.Kind.
const (
	// KindCrash takes one node down at At; with Duration > 0 it restarts
	// after the window and catches up from committed state, with
	// Duration == 0 the crash is permanent.
	KindCrash = "crash"
	// KindPartition isolates one organization from the rest of the
	// cluster for the window, then heals.
	KindPartition = "partition"
	// KindDCOutage crashes every endpoint in one datacenter for the
	// window — the correlated-failure case a per-node crash cannot model.
	KindDCOutage = "dc_outage"
	// KindDropStorm drops each message sent by the current leader's
	// consensus endpoint with probability Rate during the window, forcing
	// repeated view changes as the storm chases leadership.
	KindDropStorm = "drop_storm"
	// KindChurn runs Count staggered crash/restart cycles, one every
	// Period, rotating round-robin over organizations; each victim is
	// down for half its cycle.
	KindChurn = "churn"
	// KindSeqFailover flips the current leader's sequencer into garbage
	// mode for the window (equivocation); detection triggers a view
	// change and the successor's sequencer takes over. The window end
	// clears the flag everywhere.
	KindSeqFailover = "seq_failover"
	// KindLeader is the Table 4 S2 malicious leader: permanent from At
	// (At == 0 applies before the first event, preserving the legacy
	// attack spec's semantics). Duration > 0 bounds it.
	KindLeader = "leader"
	// KindBroadcaster arms the §6.2 malicious broadcaster at At.
	KindBroadcaster = "broadcaster"
	// KindSmart is a broadcaster targeting only the startup leader's
	// views (Fig 7).
	KindSmart = "smart"
)

// Fault is one scheduled fault event, the engine-level form the scenario
// layer compiles FaultSpec into. Field meaning varies by Kind; unused
// fields are ignored.
type Fault struct {
	Kind     string
	At       time.Duration
	Duration time.Duration

	// Targeting.
	Org  int // crash/partition/churn: organization index
	Node int // crash: node index within Org
	DC   int // dc_outage: datacenter index

	// Churn shape.
	Count  int
	Period time.Duration

	// Drop-storm intensity.
	Rate float64

	// Broadcaster knobs (KindBroadcaster/KindSmart); zero values take
	// the attack package defaults.
	Window           int
	Interval         time.Duration
	DetectLag        time.Duration
	MaliciousClients []int
}

// end returns the exclusive end of the fault's active window.
// Permanent faults (and broadcasters, which never stop on their own)
// extend to the horizon.
func (f Fault) end() time.Duration {
	switch f.Kind {
	case KindChurn:
		return f.At + time.Duration(f.Count)*f.Period
	case KindCrash, KindLeader:
		if f.Duration == 0 {
			return 1 << 62
		}
	case KindBroadcaster, KindSmart:
		return 1 << 62
	}
	return f.At + f.Duration
}

// End is the exclusive end of the fault's active window (the horizon
// sentinel for permanent faults). Recovery invariants measure from the
// latest End across a schedule.
func (f Fault) End() time.Duration { return f.end() }

// KindInfo describes one fault kind for CLI listings.
type KindInfo struct {
	Name    string
	Summary string
}

// Kinds returns the fault taxonomy in a stable order (the -list-faults
// surface of the CLIs).
func Kinds() []KindInfo {
	return []KindInfo{
		{KindCrash, "take one node down at `at`; restart after `duration` (0 = permanent) and catch up from committed state"},
		{KindPartition, "isolate organization `org` from the rest of the cluster for `duration`, then heal"},
		{KindDCOutage, "crash every endpoint in datacenter `dc` for `duration` (correlated failure), then restart them"},
		{KindDropStorm, "drop each message from the current leader's consensus endpoint with probability `rate` for `duration`, forcing repeated view changes"},
		{KindChurn, "`count` staggered crash/restart cycles, one per `period`, rotating over organizations; each victim down for period/2"},
		{KindSeqFailover, "current leader's sequencer equivocates (garbage) for `duration`; detection fails over to the successor's sequencer"},
		{KindLeader, "Table 4 S2 malicious leader from `at` (0 = before the first event); `duration` > 0 bounds it"},
		{KindBroadcaster, "§6.2 malicious broadcaster racing the sequencer multicast from `at` (BIDL only)"},
		{KindSmart, "broadcaster attacking only the startup leader's views, Fig 7 (BIDL only)"},
	}
}

func knownKind(kind string) bool {
	for _, k := range Kinds() {
		if k.Name == kind {
			return true
		}
	}
	return false
}

// windowed reports whether the kind needs an explicit positive Duration.
func windowed(kind string) bool {
	switch kind {
	case KindPartition, KindDCOutage, KindDropStorm, KindSeqFailover:
		return true
	}
	return false
}

// overlapKey distinguishes targets whose windows may legally overlap:
// crashing org 0 and org 1 at once is a valid schedule, crashing the same
// node twice at once is not. Kinds with global state (partition drop rule,
// storm state, leader-evil toggles, the broadcaster endpoint) collapse to
// one key so any overlap is rejected.
func (f Fault) overlapKey() string {
	switch f.Kind {
	case KindCrash:
		return fmt.Sprintf("crash/%d/%d", f.Org, f.Node)
	case KindDCOutage:
		return fmt.Sprintf("dc_outage/%d", f.DC)
	}
	return f.Kind
}

// ValidateSchedule rejects malformed fault schedules: unknown kinds,
// negative times, out-of-range rates, shapeless churn, and overlapping
// active windows against the same target (two storms or two partitions at
// once would fight over the same drop rule; sequence them instead).
func ValidateSchedule(faults []Fault) error {
	for i, f := range faults {
		if !knownKind(f.Kind) {
			return fmt.Errorf("chaos: fault %d: unknown kind %q", i, f.Kind)
		}
		if f.At < 0 || f.Duration < 0 || f.Period < 0 || f.Interval < 0 || f.DetectLag < 0 {
			return fmt.Errorf("chaos: fault %d (%s): times must be >= 0", i, f.Kind)
		}
		if f.Org < 0 || f.Node < 0 || f.DC < 0 || f.Count < 0 || f.Window < 0 {
			return fmt.Errorf("chaos: fault %d (%s): targets and counts must be >= 0", i, f.Kind)
		}
		if f.Rate < 0 || f.Rate > 1 {
			return fmt.Errorf("chaos: fault %d (%s): rate must be in [0,1] (got %g)", i, f.Kind, f.Rate)
		}
		if windowed(f.Kind) && f.Duration == 0 {
			return fmt.Errorf("chaos: fault %d (%s): duration must be > 0", i, f.Kind)
		}
		if f.Kind == KindDropStorm && f.Rate == 0 {
			return fmt.Errorf("chaos: fault %d (drop_storm): rate must be > 0", i)
		}
		if f.Kind == KindChurn && (f.Count == 0 || f.Period == 0) {
			return fmt.Errorf("chaos: fault %d (churn): count and period must be > 0", i)
		}
		for _, ci := range f.MaliciousClients {
			if ci < 0 {
				return fmt.Errorf("chaos: fault %d (%s): malicious client indices must be >= 0 (got %d)", i, f.Kind, ci)
			}
		}
		for j := 0; j < i; j++ {
			g := faults[j]
			if g.overlapKey() != f.overlapKey() {
				continue
			}
			if f.At < g.end() && g.At < f.end() {
				return fmt.Errorf("chaos: faults %d and %d (%s): active windows overlap", j, i, f.Kind)
			}
		}
	}
	return nil
}
