package chaos

import (
	"strings"
	"testing"
	"time"
)

// TestValidateSchedule covers each rejection class of the schedule
// validator, plus representative well-formed schedules (including
// back-to-back windows on the same target, which must NOT be treated as
// overlapping).
func TestValidateSchedule(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name   string
		faults []Fault
		want   string // substring of the expected error; "" = valid
	}{
		{"empty", nil, ""},
		{"crash", []Fault{{Kind: KindCrash, At: ms(100), Duration: ms(200), Org: 1}}, ""},
		{"permanent-crash", []Fault{{Kind: KindCrash, At: ms(100)}}, ""},
		{"storm", []Fault{{Kind: KindDropStorm, At: ms(100), Duration: ms(100), Rate: 0.5}}, ""},
		{"churn", []Fault{{Kind: KindChurn, Count: 3, Period: ms(100)}}, ""},
		{"unknown-kind", []Fault{{Kind: "meteor"}}, `unknown kind "meteor"`},
		{"negative-at", []Fault{{Kind: KindCrash, At: -ms(1)}}, "times must be >= 0"},
		{"negative-duration", []Fault{{Kind: KindCrash, Duration: -ms(1)}}, "times must be >= 0"},
		{"negative-org", []Fault{{Kind: KindCrash, Org: -1}}, "targets and counts must be >= 0"},
		{"rate-too-high", []Fault{{Kind: KindDropStorm, Duration: ms(10), Rate: 1.5}}, "rate must be in [0,1]"},
		{"storm-zero-rate", []Fault{{Kind: KindDropStorm, Duration: ms(10)}}, "rate must be > 0"},
		{"windowed-zero-duration", []Fault{{Kind: KindPartition, Org: 1}}, "duration must be > 0"},
		{"shapeless-churn", []Fault{{Kind: KindChurn, Count: 3}}, "count and period must be > 0"},
		{"negative-malicious-client", []Fault{{Kind: KindBroadcaster, MaliciousClients: []int{-2}}}, "malicious client"},
		{
			"overlapping-storms",
			[]Fault{
				{Kind: KindDropStorm, At: ms(100), Duration: ms(200), Rate: 0.5},
				{Kind: KindDropStorm, At: ms(250), Duration: ms(100), Rate: 0.5},
			},
			"active windows overlap",
		},
		{
			"overlapping-same-node-crashes",
			[]Fault{
				{Kind: KindCrash, At: ms(100), Duration: ms(300), Org: 1, Node: 0},
				{Kind: KindCrash, At: ms(200), Duration: ms(100), Org: 1, Node: 0},
			},
			"active windows overlap",
		},
		{
			// Different targets may fail concurrently.
			"concurrent-distinct-crashes",
			[]Fault{
				{Kind: KindCrash, At: ms(100), Duration: ms(300), Org: 1, Node: 0},
				{Kind: KindCrash, At: ms(100), Duration: ms(300), Org: 2, Node: 0},
			},
			"",
		},
		{
			// [100,300) then [300,400): touching endpoints do not overlap.
			"back-to-back-windows",
			[]Fault{
				{Kind: KindPartition, At: ms(100), Duration: ms(200), Org: 1},
				{Kind: KindPartition, At: ms(300), Duration: ms(100), Org: 1},
			},
			"",
		},
		{
			"overlap-with-permanent",
			[]Fault{
				{Kind: KindCrash, At: ms(100), Org: 1, Node: 0}, // permanent
				{Kind: KindCrash, At: ms(500), Duration: ms(100), Org: 1, Node: 0},
			},
			"active windows overlap",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateSchedule(tc.faults)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestScheduleEnd pins the fault-window arithmetic the recovery invariant
// measures from: bounded windows contribute their ends, permanent faults
// and broadcasters (horizon sentinels) are skipped, churn ends after its
// last cycle.
func TestScheduleEnd(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name   string
		faults []Fault
		want   time.Duration
	}{
		{"empty", nil, 0},
		{"one-window", []Fault{{Kind: KindCrash, At: ms(100), Duration: ms(200)}}, ms(300)},
		{"latest-wins", []Fault{
			{Kind: KindCrash, At: ms(100), Duration: ms(200)},
			{Kind: KindPartition, At: ms(300), Duration: ms(250), Org: 1},
		}, ms(550)},
		{"permanent-skipped", []Fault{
			{Kind: KindCrash, At: ms(100)},
			{Kind: KindDropStorm, At: ms(50), Duration: ms(100), Rate: 0.5},
		}, ms(150)},
		{"broadcaster-skipped", []Fault{{Kind: KindBroadcaster, At: ms(100)}}, 0},
		{"churn-cycles", []Fault{{Kind: KindChurn, At: ms(100), Count: 4, Period: ms(200)}}, ms(900)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ScheduleEnd(tc.faults); got != tc.want {
				t.Fatalf("ScheduleEnd = %s, want %s", got, tc.want)
			}
		})
	}
}

// TestRecoveryAfter pins the pure arithmetic of the liveness gate.
func TestRecoveryAfter(t *testing.T) {
	w := 50 * time.Millisecond
	series := []int{90, 100, 5, 0, 2, 40, 95, 100}
	cases := []struct {
		name  string
		after time.Duration
		floor int
		want  time.Duration
	}{
		{"first-healthy-bucket-after-fault", 150 * time.Millisecond, 30, 250 * time.Millisecond},
		{"pre-fault-buckets-ignored", 100 * time.Millisecond, 80, 300 * time.Millisecond},
		{"after-mid-bucket-rounds-up", 260 * time.Millisecond, 30, 300 * time.Millisecond},
		{"never-recovers", 150 * time.Millisecond, 200, -1},
		{"zero-after-sees-first-bucket", 0, 30, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := RecoveryAfter(series, w, tc.after, tc.floor); got != tc.want {
				t.Fatalf("RecoveryAfter = %s, want %s", got, tc.want)
			}
		})
	}
	if got := RecoveryAfter(series, 0, 0, 10); got != -1 {
		t.Fatalf("zero width must return -1, got %s", got)
	}
	if got := RecoveryAfter(series, w, 0, 0); got != -1 {
		t.Fatalf("zero floor must return -1, got %s", got)
	}
}

// TestEvaluateReport exercises the pass and fail paths of each invariant
// and the rendered report's stability.
func TestEvaluateReport(t *testing.T) {
	inv := Invariants{
		RequireConsistent: true,
		MinCommitted:      100,
		MinViewChanges:    1,
		RecoveryFloor:     10,
		RecoverBy:         300 * time.Millisecond,
	}
	good := RunStats{
		Committed:   150,
		ViewChanges: 2,
		Series:      []int{50, 0, 50, 50},
		BucketWidth: 100 * time.Millisecond,
		FaultEnd:    150 * time.Millisecond,
	}
	if rep := Evaluate("x", inv, good); !rep.OK() {
		t.Fatalf("want all checks ok:\n%s", rep.Render())
	}
	bad := good
	bad.Committed = 10
	bad.ViewChanges = 0
	bad.Series = []int{50, 0, 0, 0}
	rep := Evaluate("x", inv, bad)
	if rep.OK() {
		t.Fatalf("want failures:\n%s", rep.Render())
	}
	r := rep.Render()
	for _, want := range []string{"progress     FAIL", "view_changes FAIL", "recovery     FAIL", "consistency  ok"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
	// A recovery bucket past the deadline fails even though the floor is
	// eventually reached.
	late := good
	late.Series = []int{50, 0, 0, 0, 50}
	if rep := Evaluate("x", inv, late); rep.OK() {
		t.Fatalf("recovery past deadline must fail:\n%s", rep.Render())
	}
	// Zero-valued invariants are skipped entirely.
	if rep := Evaluate("x", Invariants{}, bad); len(rep.Checks) != 0 || !rep.OK() {
		t.Fatalf("zero invariants must produce an empty passing report, got:\n%s", rep.Render())
	}
}
