package contract

import (
	"testing"

	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/types"
)

func xtx(fn string, args ...string) *types.Transaction {
	var bs [][]byte
	for _, a := range args {
		bs = append(bs, []byte(a))
	}
	return &types.Transaction{Client: "xc", Contract: "xshard", Fn: fn, Args: bs, Orgs: []string{"org1"}}
}

func xRegistry() *Registry {
	r := NewRegistry()
	r.Deploy(SmallBank{})
	r.Deploy(XShard{})
	return r
}

// Prepare debits eagerly into escrow, commit burns the escrow and releases
// the lock, and the balances end where a one-shot transfer would put them.
func TestXShardPrepareCommit(t *testing.T) {
	r, s := xRegistry(), ledger.NewState()
	exec(t, r, s, tx("create_account", "a1", "100"), ledger.Version{Block: 1})
	exec(t, r, s, tx("create_account", "a2", "50"), ledger.Version{Block: 1, Tx: 1})

	if rw := exec(t, r, s, xtx("prepare_debit", "g1", "a1", "30"), ledger.Version{Block: 2}); rw.Aborted {
		t.Fatal("prepare_debit aborted")
	}
	if got := balance(t, s, CheckingKey("a1")); got != 70 {
		t.Fatalf("post-prepare src checking = %d, want 70 (debit is eager)", got)
	}
	if _, _, ok := s.Get(XEscrowKey("g1", "a1")); !ok {
		t.Fatal("no escrow after prepare_debit")
	}
	if rw := exec(t, r, s, xtx("prepare_credit", "g1", "a2"), ledger.Version{Block: 2, Tx: 1}); rw.Aborted {
		t.Fatal("prepare_credit aborted")
	}

	exec(t, r, s, xtx("commit_debit", "g1", "a1"), ledger.Version{Block: 3})
	exec(t, r, s, xtx("commit_credit", "g1", "a2", "30"), ledger.Version{Block: 3, Tx: 1})
	if got := balance(t, s, CheckingKey("a1")); got != 70 {
		t.Fatalf("final src = %d, want 70", got)
	}
	if got := balance(t, s, CheckingKey("a2")); got != 80 {
		t.Fatalf("final dst = %d, want 80", got)
	}
	if _, _, ok := s.Get(XEscrowKey("g1", "a1")); ok {
		t.Fatal("escrow survived commit")
	}
	if _, _, ok := s.Get(XLockKey("a1")); ok {
		t.Fatal("src lock survived commit")
	}
	if _, _, ok := s.Get(XLockKey("a2")); ok {
		t.Fatal("dst lock survived commit")
	}
}

// Abort refunds the escrow on the debit side and releases both locks; a
// second abort (retransmission, or abort after a failed prepare) is a no-op.
func TestXShardAbortIdempotent(t *testing.T) {
	r, s := xRegistry(), ledger.NewState()
	exec(t, r, s, tx("create_account", "a1", "100"), ledger.Version{Block: 1})
	exec(t, r, s, tx("create_account", "a2", "50"), ledger.Version{Block: 1, Tx: 1})
	exec(t, r, s, xtx("prepare_debit", "g1", "a1", "30"), ledger.Version{Block: 2})

	for i := 0; i < 2; i++ {
		if rw := exec(t, r, s, xtx("abort_debit", "g1", "a1"), ledger.Version{Block: 3, Tx: i}); rw.Aborted {
			t.Fatalf("abort_debit #%d aborted (must be infallible)", i)
		}
		if rw := exec(t, r, s, xtx("abort_credit", "g1", "a2"), ledger.Version{Block: 3, Tx: 2 + i}); rw.Aborted {
			t.Fatalf("abort_credit #%d aborted (must be infallible)", i)
		}
	}
	if got := balance(t, s, CheckingKey("a1")); got != 100 {
		t.Fatalf("post-abort src = %d, want full refund to 100", got)
	}
	if got := balance(t, s, CheckingKey("a2")); got != 50 {
		t.Fatalf("post-abort dst = %d, want untouched 50", got)
	}
	if _, _, ok := s.Get(XLockKey("a1")); ok {
		t.Fatal("lock survived abort")
	}
}

// First-wins 2PL: a second gid's prepare against a locked account aborts,
// and the loser's decision must not release the winner's lock.
func TestXShardLockConflict(t *testing.T) {
	r, s := xRegistry(), ledger.NewState()
	exec(t, r, s, tx("create_account", "a1", "100"), ledger.Version{Block: 1})
	exec(t, r, s, xtx("prepare_debit", "g1", "a1", "30"), ledger.Version{Block: 2})

	if rw := exec(t, r, s, xtx("prepare_debit", "g2", "a1", "10"), ledger.Version{Block: 2, Tx: 1}); !rw.Aborted {
		t.Fatal("second prepare_debit on locked account did not abort")
	}
	if rw := exec(t, r, s, xtx("prepare_credit", "g2", "a1"), ledger.Version{Block: 2, Tx: 2}); !rw.Aborted {
		t.Fatal("prepare_credit on locked account did not abort")
	}
	// The losing gid aborts everywhere; g1's lock must survive.
	exec(t, r, s, xtx("abort_debit", "g2", "a1"), ledger.Version{Block: 3})
	if holder, _, ok := s.Get(XLockKey("a1")); !ok || string(holder) != "g1" {
		t.Fatalf("winner's lock gone or stolen: %q", holder)
	}
	if got := balance(t, s, CheckingKey("a1")); got != 70 {
		t.Fatalf("loser's abort changed balance: %d, want 70", got)
	}
	exec(t, r, s, xtx("commit_debit", "g1", "a1"), ledger.Version{Block: 4})
	if _, _, ok := s.Get(XLockKey("a1")); ok {
		t.Fatal("winner's commit did not release lock")
	}
}

// Insufficient funds and unknown accounts abort at prepare with no writes.
func TestXShardPrepareValidation(t *testing.T) {
	r, s := xRegistry(), ledger.NewState()
	exec(t, r, s, tx("create_account", "a1", "10"), ledger.Version{Block: 1})

	if rw := exec(t, r, s, xtx("prepare_debit", "g1", "a1", "30"), ledger.Version{Block: 2}); !rw.Aborted {
		t.Fatal("insufficient-funds prepare did not abort")
	}
	if got := balance(t, s, CheckingKey("a1")); got != 10 {
		t.Fatalf("aborted prepare changed balance: %d", got)
	}
	if rw := exec(t, r, s, xtx("prepare_debit", "g1", "ghost", "1"), ledger.Version{Block: 2, Tx: 1}); !rw.Aborted {
		t.Fatal("unknown-account prepare_debit did not abort")
	}
	if rw := exec(t, r, s, xtx("prepare_credit", "g1", "ghost"), ledger.Version{Block: 2, Tx: 2}); !rw.Aborted {
		t.Fatal("unknown-account prepare_credit did not abort")
	}
}

// Conservation across the whole lifecycle: checking totals plus live escrow
// equal the initial endowment at every step of both commit and abort paths.
func TestXShardConservation(t *testing.T) {
	r, s := xRegistry(), ledger.NewState()
	exec(t, r, s, tx("create_account", "a1", "100"), ledger.Version{Block: 1})
	exec(t, r, s, tx("create_account", "a2", "100"), ledger.Version{Block: 1, Tx: 1})
	total := func() int64 {
		sum := balance(t, s, CheckingKey("a1")) + balance(t, s, CheckingKey("a2"))
		if raw, _, ok := s.Get(XEscrowKey("g1", "a1")); ok {
			var v int64
			for _, c := range raw {
				v = v*10 + int64(c-'0')
			}
			sum += v
		}
		return sum
	}
	// Conservation holds at every point where no decision is partially
	// applied: throughout phase 1 (funds sit in escrow) and once phase 2 has
	// fully resolved. Between the two decision sub-transactions the funds
	// are legitimately in flight on the wire — that window is exactly what
	// the harness's atomicity audit tolerates only for unresolved transfers.
	steps := []struct {
		txn   *types.Transaction
		check bool
	}{
		{xtx("prepare_debit", "g1", "a1", "40"), true},
		{xtx("prepare_credit", "g1", "a2"), true},
		{xtx("commit_credit", "g1", "a2", "40"), false},
		{xtx("commit_debit", "g1", "a1"), true},
	}
	for i, st := range steps {
		exec(t, r, s, st.txn, ledger.Version{Block: 2, Tx: i})
		if got := total(); st.check && got != 200 {
			t.Fatalf("after step %d (%s): total %d, want 200", i, st.txn.Fn, got)
		}
	}
}

// Every xshard sub-transaction's declared writes shard with its account: the
// classification layer must see a single-shard key set for each sub-txn.
func TestXShardDeclaredWritesSingleShard(t *testing.T) {
	fns := [][2]string{
		{"prepare_debit", "3"}, {"prepare_credit", ""},
		{"commit_debit", ""}, {"commit_credit", "3"},
		{"abort_debit", ""}, {"abort_credit", ""},
	}
	var x XShard
	for _, f := range fns {
		args := [][]byte{[]byte("g7"), []byte("acct-12")}
		if f[1] != "" {
			args = append(args, []byte(f[1]))
		}
		keys := x.DeclaredWrites(f[0], args)
		if len(keys) == 0 {
			t.Fatalf("%s declared no writes", f[0])
		}
		for _, n := range []int{2, 4, 8} {
			want := ledger.KeyShard(CheckingKey("acct-12"), n)
			for _, k := range keys {
				if got := ledger.KeyShard(k, n); got != want {
					t.Errorf("%s: key %q shards to %d, account shards to %d (n=%d)", f[0], k, got, want, n)
				}
			}
		}
	}
}
