package contract

import (
	"math/rand"
	"testing"

	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/types"
)

// Every write a contract actually performs must be covered by its
// declaration — otherwise the sharded router could send a transaction to a
// shard that does not own all its writes. Exercise each function of each
// declaring contract against live state and compare write sets.
func TestDeclaredWritesCoverActualWrites(t *testing.T) {
	r := NewRegistry()
	r.Deploy(SmallBank{})
	r.Deploy(Settlement{})
	r.Deploy(XShard{})

	s := ledger.NewState()
	seed := []*types.Transaction{
		tx("create_account", "a1", "1000"),
		tx("create_account", "a2", "1000"),
		tx("create_account", "a5", "1000"),
	}
	for i, txn := range seed {
		rw := r.Execute(s, txn, nil)
		s.Apply(rw.Writes, ledger.Version{Block: 1, Tx: i})
	}
	// An open settlement flow and a prepared transfer, so settle/cancel and
	// the 2PC decision paths take their full write-heavy branches.
	setup := []*types.Transaction{
		{Client: "c", Contract: "settlement", Fn: "open", Args: argv("flow-1", "a1", "a2", "100", "org1"), Orgs: []string{"org1"}},
		{Client: "c", Contract: "settlement", Fn: "open", Args: argv("flow-2", "a1", "a2", "100", "org1"), Orgs: []string{"org1"}},
		{Client: "c", Contract: "xshard", Fn: "prepare_debit", Args: argv("g1", "a1", "50"), Orgs: []string{"org1"}},
		{Client: "c", Contract: "xshard", Fn: "prepare_credit", Args: argv("g1", "a2"), Orgs: []string{"org1"}},
		// a5, not a1/a2: those accounts are locked by g1's prepares above,
		// and a conflicting prepare would (correctly) abort.
		{Client: "c", Contract: "xshard", Fn: "prepare_debit", Args: argv("g2", "a5", "10"), Orgs: []string{"org1"}},
	}
	for i, txn := range setup {
		rw := r.Execute(s, txn, nil)
		if rw.Aborted {
			t.Fatalf("setup %s aborted", txn.Fn)
		}
		s.Apply(rw.Writes, ledger.Version{Block: 2, Tx: i})
	}

	cases := []*types.Transaction{
		tx("create_account", "a3", "5"),
		tx("create_random", "a4"),
		tx("deposit_checking", "a1", "7"),
		tx("transact_savings", "a1", "-3"),
		tx("send_payment", "a1", "a2", "9"),
		tx("send_payment", "a1", "a1", "9"), // self-payment no-op
		tx("write_check", "a1", "2"),
		tx("write_check", "a2", "1000000"), // overdraft branch
		tx("amalgamate", "a1", "a2"),
		tx("amalgamate", "a2", "a2"), // self-amalgamate branch
		tx("query", "a1"),
		{Client: "c", Contract: "settlement", Fn: "open", Args: argv("flow-3", "a2", "a1", "10", "org1"), Orgs: []string{"org1"}},
		{Client: "c", Contract: "settlement", Fn: "settle", Args: argv("flow-1", "a2"), Orgs: []string{"org1"}},
		{Client: "c", Contract: "settlement", Fn: "cancel", Args: argv("flow-2", "a1"), Orgs: []string{"org1"}},
		{Client: "c", Contract: "xshard", Fn: "commit_debit", Args: argv("g1", "a1"), Orgs: []string{"org1"}},
		{Client: "c", Contract: "xshard", Fn: "commit_credit", Args: argv("g1", "a2", "50"), Orgs: []string{"org1"}},
		{Client: "c", Contract: "xshard", Fn: "abort_debit", Args: argv("g2", "a5"), Orgs: []string{"org1"}},
		{Client: "c", Contract: "xshard", Fn: "abort_credit", Args: argv("g2", "a5"), Orgs: []string{"org1"}},
	}
	for i, txn := range cases {
		declared, ok := r.DeclaredWrites(txn)
		if !ok {
			t.Fatalf("%s/%s: contract does not declare keys", txn.Contract, txn.Fn)
		}
		set := make(map[string]bool, len(declared))
		for _, k := range declared {
			set[k] = true
		}
		rw := r.Execute(s, txn, rand.New(rand.NewSource(1)))
		if !rw.Aborted {
			for _, w := range rw.Writes {
				if !set[w.Key] {
					t.Errorf("%s/%s: wrote undeclared key %q (declared %v)", txn.Contract, txn.Fn, w.Key, declared)
				}
			}
			s.Apply(rw.Writes, ledger.Version{Block: 3, Tx: i})
		}
	}
}

// Read-only and malformed invocations declare nil, and unknown contracts
// report ok=false so the router can fall back.
func TestDeclaredWritesFallbacks(t *testing.T) {
	r := NewRegistry()
	r.Deploy(SmallBank{})
	if keys, ok := r.DeclaredWrites(tx("query", "a1")); !ok || keys != nil {
		t.Errorf("query: got (%v, %v), want (nil, true)", keys, ok)
	}
	if keys, ok := r.DeclaredWrites(tx("send_payment", "a1")); !ok || keys != nil {
		t.Errorf("malformed send_payment: got (%v, %v), want (nil, true)", keys, ok)
	}
	ghost := &types.Transaction{Client: "c", Contract: "nope", Fn: "x", Orgs: []string{"org1"}}
	if _, ok := r.DeclaredWrites(ghost); ok {
		t.Error("unknown contract reported ok=true")
	}
}

func argv(args ...string) [][]byte {
	var bs [][]byte
	for _, a := range args {
		bs = append(bs, []byte(a))
	}
	return bs
}
