package contract

import (
	"fmt"
	"strconv"
)

// XShard is the two-phase-commit sub-transaction contract behind cross-shard
// payments (DESIGN.md §14). A cross-shard send_payment is decomposed by the
// coordinator into per-shard sub-transactions that each run through their
// shard's ordinary sequencer + consensus + speculative-execution path:
//
//	phase 1 (prepare, one per touched shard):
//	  prepare_debit(gid, src, amount) — debit src checking into an escrow
//	                                    entry and take src's transfer lock
//	  prepare_credit(gid, dst)        — validate dst exists, take its lock
//	phase 2 (decision, sent only after both phase-1 outcomes are known):
//	  commit_debit(gid, src)          — burn the escrow, release the lock
//	  commit_credit(gid, dst, amount) — credit dst, release the lock
//	  abort_debit(gid, src)           — refund the escrow, release the lock
//	  abort_credit(gid, dst)          — release the lock
//
// Locking is first-wins 2PL on the account's transfer lock key: a prepare
// that finds a live lock held by another gid aborts (ErrAbort), the
// coordinator observes the aborted prepare and drives abort_* everywhere.
// Funds conservation holds against concurrent single-shard traffic because
// the debit happens eagerly at prepare time — the money lives in the escrow
// entry, not in any balance, until commit or abort resolves it.
//
// Phase-2 functions are deliberately idempotent and infallible: an abort may
// arrive on a shard whose prepare itself aborted (nothing was applied), and
// the atomicity invariant ("commit on all touched shards or abort on all")
// must not be voidable by a decision sub-transaction refusing to apply.
type XShard struct{}

// Name implements Contract.
func (XShard) Name() string { return "xshard" }

// XLockKey returns the transfer-lock key guarding an account's checking
// balance during 2PC. Wrapping the checking key keeps ledger.KeyShard and
// the ownership partitioner routing the lock with its account.
func XLockKey(acct string) string { return "xs:lock:" + CheckingKey(acct) }

// XEscrowKey returns the escrow entry holding a transfer's in-flight funds
// on the debit shard. The key ends with the account name so ownership
// partitioning groups it with the account's org.
func XEscrowKey(gid, acct string) string { return "xs:esc:" + gid + ":" + acct }

// Invoke implements Contract.
func (XShard) Invoke(ctx *TxContext, fn string, args [][]byte) error {
	switch fn {
	case "prepare_debit":
		if len(args) != 3 {
			return fmt.Errorf("%w: prepare_debit wants (gid, src, amount)", ErrAbort)
		}
		gid, src := string(args[0]), string(args[1])
		amt, err := strconv.ParseInt(string(args[2]), 10, 64)
		if err != nil || amt < 0 {
			return fmt.Errorf("%w: bad amount", ErrAbort)
		}
		if holder, held := ctx.GetState(XLockKey(src)); held && string(holder) != gid {
			return fmt.Errorf("%w: %s locked by %s", ErrAbort, src, holder)
		}
		bal, ok := getBal(ctx, CheckingKey(src))
		if !ok {
			return fmt.Errorf("%w: no account %s", ErrAbort, src)
		}
		if bal < amt {
			return fmt.Errorf("%w: insufficient funds", ErrAbort)
		}
		putBal(ctx, CheckingKey(src), bal-amt)
		ctx.PutState(XEscrowKey(gid, src), []byte(strconv.FormatInt(amt, 10)))
		ctx.PutState(XLockKey(src), []byte(gid))
		return nil

	case "prepare_credit":
		if len(args) != 2 {
			return fmt.Errorf("%w: prepare_credit wants (gid, dst)", ErrAbort)
		}
		gid, dst := string(args[0]), string(args[1])
		if holder, held := ctx.GetState(XLockKey(dst)); held && string(holder) != gid {
			return fmt.Errorf("%w: %s locked by %s", ErrAbort, dst, holder)
		}
		if _, ok := getBal(ctx, CheckingKey(dst)); !ok {
			return fmt.Errorf("%w: no account %s", ErrAbort, dst)
		}
		ctx.PutState(XLockKey(dst), []byte(gid))
		return nil

	case "commit_debit":
		if len(args) != 2 {
			return fmt.Errorf("%w: commit_debit wants (gid, src)", ErrAbort)
		}
		gid, src := string(args[0]), string(args[1])
		ctx.DelState(XEscrowKey(gid, src))
		releaseLock(ctx, gid, src)
		return nil

	case "commit_credit":
		if len(args) != 3 {
			return fmt.Errorf("%w: commit_credit wants (gid, dst, amount)", ErrAbort)
		}
		gid, dst := string(args[0]), string(args[1])
		amt, err := strconv.ParseInt(string(args[2]), 10, 64)
		if err != nil || amt < 0 {
			return fmt.Errorf("%w: bad amount", ErrAbort)
		}
		if bal, ok := getBal(ctx, CheckingKey(dst)); ok {
			putBal(ctx, CheckingKey(dst), bal+amt)
		}
		releaseLock(ctx, gid, dst)
		return nil

	case "abort_debit":
		if len(args) != 2 {
			return fmt.Errorf("%w: abort_debit wants (gid, src)", ErrAbort)
		}
		gid, src := string(args[0]), string(args[1])
		// Refund only if our prepare actually escrowed (it may have aborted
		// before applying anything — abort must stay idempotent).
		if raw, ok := ctx.GetState(XEscrowKey(gid, src)); ok {
			if amt, err := strconv.ParseInt(string(raw), 10, 64); err == nil {
				if bal, ok := getBal(ctx, CheckingKey(src)); ok {
					putBal(ctx, CheckingKey(src), bal+amt)
				}
			}
			ctx.DelState(XEscrowKey(gid, src))
		}
		releaseLock(ctx, gid, src)
		return nil

	case "abort_credit":
		if len(args) != 2 {
			return fmt.Errorf("%w: abort_credit wants (gid, dst)", ErrAbort)
		}
		releaseLock(ctx, string(args[0]), string(args[1]))
		return nil

	default:
		return fmt.Errorf("%w: unknown function %q", ErrAbort, fn)
	}
}

// releaseLock clears acct's transfer lock iff gid holds it. A lock taken by
// a different (later) transfer must survive this gid's decision.
func releaseLock(ctx *TxContext, gid, acct string) {
	if holder, held := ctx.GetState(XLockKey(acct)); held && string(holder) == gid {
		ctx.DelState(XLockKey(acct))
	}
}

// DeclaredWrites implements KeyDeclarer. Declared pessimistically (a
// decision function may write fewer keys than declared when there is
// nothing to undo); routing only needs the set to stay within one shard,
// and every key here shards with the account.
func (XShard) DeclaredWrites(fn string, args [][]byte) []string {
	if len(args) < 2 {
		return nil
	}
	gid, acct := string(args[0]), string(args[1])
	switch fn {
	case "prepare_debit", "commit_debit", "abort_debit":
		return []string{CheckingKey(acct), XEscrowKey(gid, acct), XLockKey(acct)}
	case "prepare_credit", "abort_credit":
		return []string{XLockKey(acct)}
	case "commit_credit":
		return []string{CheckingKey(acct), XLockKey(acct)}
	default:
		return nil
	}
}
