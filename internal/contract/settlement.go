package contract

import (
	"fmt"
	"strconv"
	"strings"
)

// Settlement implements a multi-step interbank settlement flow — the richer-
// than-SmallBank contract the million-user workload draws on. One flow is
// two to three transactions spread over time:
//
//	open(flow, src, dst, amount, feeOrg)  — debit src checking by amount+fee,
//	                                        escrow the amount
//	settle(flow, dst)                     — credit dst checking, delete escrow
//	cancel(flow, src)                     — refund src (fee kept), delete escrow
//
// Its access pattern is the realistic read/write skew the SmallBank transfer
// lacks: every step reads hot shared reference data (the per-org fee
// schedule, prepopulated in the base layer and never written) and hot
// account balances, while writing a unique cold escrow key that exists only
// for the life of the flow — creation, mutation, and deletion of delta keys
// layered over the copy-on-write base.
type Settlement struct{}

// Name implements Contract.
func (Settlement) Name() string { return "settlement" }

// FeeKey returns the world-state key of an organization's settlement fee
// schedule (hot, read-only reference data seeded by prepopulation).
func FeeKey(org string) string { return "stl:fee:" + org }

// EscrowKey returns the world-state key holding one flow's escrowed amount.
func EscrowKey(flow string) string { return "stl:esc:" + flow }

// DefaultSettlementFee is the per-flow fee seeded into every organization's
// fee schedule by prepopulation.
const DefaultSettlementFee = 25

// escrowVal encodes "amount|dst"; parseEscrow decodes it.
func escrowVal(amount int64, dst string) []byte {
	return []byte(strconv.FormatInt(amount, 10) + "|" + dst)
}

func parseEscrow(raw []byte) (amount int64, dst string, ok bool) {
	s := string(raw)
	i := strings.IndexByte(s, '|')
	if i < 0 {
		return 0, "", false
	}
	v, err := strconv.ParseInt(s[:i], 10, 64)
	if err != nil {
		return 0, "", false
	}
	return v, s[i+1:], true
}

// Invoke implements Contract.
func (Settlement) Invoke(ctx *TxContext, fn string, args [][]byte) error {
	switch fn {
	case "open":
		if len(args) != 5 {
			return fmt.Errorf("%w: open wants (flow, src, dst, amount, feeOrg)", ErrAbort)
		}
		flow, src, dst := string(args[0]), string(args[1]), string(args[2])
		amount, err := strconv.ParseInt(string(args[3]), 10, 64)
		if err != nil || amount <= 0 {
			return fmt.Errorf("%w: bad amount", ErrAbort)
		}
		if _, exists := ctx.GetState(EscrowKey(flow)); exists {
			return fmt.Errorf("%w: flow %s already open", ErrAbort, flow)
		}
		fee := int64(DefaultSettlementFee)
		if raw, ok := ctx.GetState(FeeKey(string(args[4]))); ok {
			if v, err := strconv.ParseInt(string(raw), 10, 64); err == nil {
				fee = v
			}
		}
		bal, ok := getBal(ctx, CheckingKey(src))
		if !ok {
			return fmt.Errorf("%w: no account %s", ErrAbort, src)
		}
		if bal < amount+fee {
			return fmt.Errorf("%w: insufficient funds for settlement", ErrAbort)
		}
		putBal(ctx, CheckingKey(src), bal-amount-fee)
		ctx.PutState(EscrowKey(flow), escrowVal(amount, dst))
		return nil

	case "settle":
		if len(args) != 2 {
			return fmt.Errorf("%w: settle wants (flow, dst)", ErrAbort)
		}
		flow, dst := string(args[0]), string(args[1])
		raw, ok := ctx.GetState(EscrowKey(flow))
		if !ok {
			return fmt.Errorf("%w: no open flow %s", ErrAbort, flow)
		}
		amount, escDst, ok := parseEscrow(raw)
		if !ok || escDst != dst {
			return fmt.Errorf("%w: flow %s is not payable to %s", ErrAbort, flow, dst)
		}
		bal, ok := getBal(ctx, CheckingKey(dst))
		if !ok {
			return fmt.Errorf("%w: no account %s", ErrAbort, dst)
		}
		putBal(ctx, CheckingKey(dst), bal+amount)
		ctx.DelState(EscrowKey(flow))
		return nil

	case "cancel":
		if len(args) != 2 {
			return fmt.Errorf("%w: cancel wants (flow, src)", ErrAbort)
		}
		flow, src := string(args[0]), string(args[1])
		raw, ok := ctx.GetState(EscrowKey(flow))
		if !ok {
			return fmt.Errorf("%w: no open flow %s", ErrAbort, flow)
		}
		amount, _, ok := parseEscrow(raw)
		if !ok {
			return fmt.Errorf("%w: corrupt escrow for %s", ErrAbort, flow)
		}
		bal, ok := getBal(ctx, CheckingKey(src))
		if !ok {
			return fmt.Errorf("%w: no account %s", ErrAbort, src)
		}
		putBal(ctx, CheckingKey(src), bal+amount)
		ctx.DelState(EscrowKey(flow))
		return nil

	default:
		return fmt.Errorf("%w: unknown function %q", ErrAbort, fn)
	}
}
