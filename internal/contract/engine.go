// Package contract implements the smart-contract execution engine shared by
// BIDL and the baseline frameworks: contracts read and write world state
// through a TxContext that records an HLF-style read-write set, and the
// engine supports deliberately non-deterministic contracts (§3.1: BIDL must
// support non-determinism, e.g. caused by data races).
package contract

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/types"
)

// ErrAbort is the sentinel contracts return (wrapped) to abort a
// transaction for application reasons.
var ErrAbort = errors.New("contract: aborted")

// StateView is any readable state: committed State, a speculative Overlay,
// or an endorsement snapshot.
type StateView interface {
	Get(key string) (val []byte, ver ledger.Version, ok bool)
}

// TxContext is the API a contract sees during one invocation. Reads record
// observed versions; writes stage into the read-write set with
// read-your-writes semantics inside the transaction.
type TxContext struct {
	view   StateView
	rw     ledger.RWSet
	staged map[string][]byte
	dels   map[string]bool
	nondet *rand.Rand
	keys   []string // scratch for seal's sorted key pass
}

// NewTxContext creates a context reading from view. nondet, when non-nil, is
// the node-local randomness a non-deterministic contract observes; correct
// deterministic contracts never touch it.
func NewTxContext(view StateView, nondet *rand.Rand) *TxContext {
	return &TxContext{
		view:   view,
		staged: make(map[string][]byte),
		dels:   make(map[string]bool),
		nondet: nondet,
	}
}

// GetState reads a key, recording the read version for MVCC validation.
func (c *TxContext) GetState(key string) ([]byte, bool) {
	if c.dels[key] {
		return nil, false
	}
	if v, ok := c.staged[key]; ok {
		return v, true
	}
	val, ver, ok := c.view.Get(key)
	c.rw.Reads = append(c.rw.Reads, ledger.Read{Key: key, Ver: ver, Existed: ok})
	return val, ok
}

// PutState stages a write.
func (c *TxContext) PutState(key string, val []byte) {
	delete(c.dels, key)
	c.staged[key] = val
}

// DelState stages a deletion.
func (c *TxContext) DelState(key string) {
	delete(c.staged, key)
	c.dels[key] = true
}

// Nondet exposes node-local randomness. Using it makes the transaction
// non-deterministic across nodes — exactly the §6.3 experiment's contract.
// It panics if the executing node supplied no source.
func (c *TxContext) Nondet() *rand.Rand {
	if c.nondet == nil {
		panic("contract: non-deterministic contract executed without a randomness source")
	}
	return c.nondet
}

// seal orders the staged writes into c.rw. Writes are emitted in sorted key
// order so result digests are canonical.
func (c *TxContext) seal(aborted bool) {
	c.rw.Aborted = aborted
	if !aborted {
		c.keys = c.keys[:0]
		for k := range c.staged {
			c.keys = append(c.keys, k)
		}
		for k := range c.dels {
			c.keys = append(c.keys, k)
		}
		sort.Strings(c.keys)
		for _, k := range c.keys {
			if c.dels[k] {
				c.rw.Writes = append(c.rw.Writes, ledger.Write{Key: k, Delete: true})
			} else {
				c.rw.Writes = append(c.rw.Writes, ledger.Write{Key: k, Val: c.staged[k]})
			}
		}
	}
}

// finish seals the read-write set and returns it as a standalone value whose
// lifetime is independent of the context.
func (c *TxContext) finish(aborted bool) *ledger.RWSet {
	c.seal(aborted)
	rw := c.rw
	return &rw
}

// reset re-arms the context for another invocation, reusing its maps and
// slice backings. Any RWSet previously sealed in place (ExecuteTransient) is
// invalidated.
func (c *TxContext) reset(view StateView, nondet *rand.Rand) {
	c.view = view
	c.nondet = nondet
	c.rw.Reads = c.rw.Reads[:0]
	c.rw.Writes = c.rw.Writes[:0]
	c.rw.Aborted = false
	if c.staged == nil {
		c.staged = make(map[string][]byte)
		c.dels = make(map[string]bool)
	} else {
		clear(c.staged)
		clear(c.dels)
	}
}

// Contract is a deployed smart contract.
type Contract interface {
	// Name is the contract's registry key.
	Name() string
	// Invoke executes fn with args against the context. Returning an
	// error aborts the transaction (its writes are discarded).
	Invoke(ctx *TxContext, fn string, args [][]byte) error
}

// Registry holds deployed contracts and executes transactions against them.
type Registry struct {
	contracts map[string]Contract
}

// NewRegistry returns an empty contract registry.
func NewRegistry() *Registry {
	return &Registry{contracts: make(map[string]Contract)}
}

// Deploy installs a contract. Re-deploying a name replaces it.
func (r *Registry) Deploy(c Contract) { r.contracts[c.Name()] = c }

// Get returns the named contract, or nil.
func (r *Registry) Get(name string) Contract { return r.contracts[name] }

// Execute runs tx against view and returns its read-write set. Unknown
// contracts or functions, and contract errors, yield an aborted result with
// no writes — never a panic, since transactions are adversarial inputs.
func (r *Registry) Execute(view StateView, tx *types.Transaction, nondet *rand.Rand) *ledger.RWSet {
	c := r.contracts[tx.Contract]
	ctx := NewTxContext(view, nondet)
	if c == nil {
		return ctx.finish(true)
	}
	err := safeInvoke(c, ctx, tx.Fn, tx.Args)
	return ctx.finish(err != nil)
}

// ExecScratch is a reusable execution context for ExecuteTransient. Each
// call reuses the embedded TxContext's maps and the RW-set's backing slices,
// so repeated executions settle at zero steady-state allocations.
type ExecScratch struct {
	ctx TxContext
}

// ExecuteTransient is Execute with a caller-owned scratch context. The
// returned RWSet aliases the scratch and is valid ONLY until the next
// ExecuteTransient call with the same scratch — use it where the result is
// consumed immediately and discarded, e.g. the delegate's redundant
// re-execution that only compares digests (§4.4 non-determinism check).
func (r *Registry) ExecuteTransient(view StateView, tx *types.Transaction, nondet *rand.Rand, sc *ExecScratch) *ledger.RWSet {
	c := r.contracts[tx.Contract]
	ctx := &sc.ctx
	ctx.reset(view, nondet)
	if c == nil {
		ctx.seal(true)
	} else {
		err := safeInvoke(c, ctx, tx.Fn, tx.Args)
		ctx.seal(err != nil)
	}
	return &ctx.rw
}

func safeInvoke(c Contract, ctx *TxContext, fn string, args [][]byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("contract %s panicked: %v", c.Name(), r)
		}
	}()
	return c.Invoke(ctx, fn, args)
}
