package contract

import "github.com/bidl-framework/bidl/internal/types"

// KeyDeclarer is implemented by contracts whose write-key set is computable
// from the invocation alone (function + args), before execution. The sharded
// engine (DESIGN.md §14) uses the declaration to classify a transaction as
// single- vs. cross-shard BEFORE sequencing: a transaction whose declared
// writes all map to one ledger.KeyShard is routed to that shard's sequencer,
// anything else goes through the 2PC coordinator.
//
// Only WRITE keys are declared. Read-only reference data (e.g. the
// settlement fee schedule) is replicated on every shard and must not
// constrain routing.
type KeyDeclarer interface {
	// DeclaredWrites returns the keys fn(args) may write. A nil result
	// means "no writes" (read-only, or malformed arguments that will abort
	// at execution) — such transactions route by their corresponding org.
	DeclaredWrites(fn string, args [][]byte) []string
}

// DeclaredWrites resolves tx's contract and returns its declared write-key
// set. ok is false when the contract is unknown or does not declare its keys
// — callers then fall back to corresponding-org routing (the transaction
// will abort or execute single-shard anyway).
func (r *Registry) DeclaredWrites(tx *types.Transaction) (keys []string, ok bool) {
	c := r.contracts[tx.Contract]
	if c == nil {
		return nil, false
	}
	d, ok := c.(KeyDeclarer)
	if !ok {
		return nil, false
	}
	return d.DeclaredWrites(tx.Fn, tx.Args), true
}

// DeclaredWrites implements KeyDeclarer for SmallBank. The sets mirror
// Invoke's PutState calls exactly; smallbank_declare_test.go pins the
// correspondence per function.
func (SmallBank) DeclaredWrites(fn string, args [][]byte) []string {
	switch fn {
	case "create_account", "create_random":
		if len(args) < 1 {
			return nil
		}
		acct := string(args[0])
		return []string{CheckingKey(acct), SavingsKey(acct)}
	case "deposit_checking", "write_check":
		if len(args) < 1 {
			return nil
		}
		return []string{CheckingKey(string(args[0]))}
	case "transact_savings":
		if len(args) < 1 {
			return nil
		}
		return []string{SavingsKey(string(args[0]))}
	case "send_payment":
		if len(args) < 2 {
			return nil
		}
		src, dst := string(args[0]), string(args[1])
		if src == dst { // funds-checked no-op
			return nil
		}
		return []string{CheckingKey(src), CheckingKey(dst)}
	case "amalgamate":
		if len(args) < 2 {
			return nil
		}
		src, dst := string(args[0]), string(args[1])
		if src == dst {
			return []string{SavingsKey(src), CheckingKey(src)}
		}
		return []string{SavingsKey(src), CheckingKey(src), CheckingKey(dst)}
	default: // query and unknown functions write nothing
		return nil
	}
}

// DeclaredWrites implements KeyDeclarer for Settlement. Every step touches
// its flow's escrow key plus one account's checking balance; the fee
// schedule is read-only and deliberately absent.
func (Settlement) DeclaredWrites(fn string, args [][]byte) []string {
	switch fn {
	case "open":
		if len(args) < 2 {
			return nil
		}
		return []string{CheckingKey(string(args[1])), EscrowKey(string(args[0]))}
	case "settle", "cancel":
		if len(args) < 2 {
			return nil
		}
		return []string{CheckingKey(string(args[1])), EscrowKey(string(args[0]))}
	default:
		return nil
	}
}
