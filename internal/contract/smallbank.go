package contract

import (
	"fmt"
	"strconv"
	"sync"
)

// SmallBank implements the SmallBank benchmark contract used throughout the
// paper's evaluation (§6, "Workloads and metrics"): accounts with checking
// and savings balances, creation and money-transfer operations.
//
// Functions:
//
//	create_account(acct, balance)      — create checking+savings (one org)
//	create_random(acct)                — §6.3 non-deterministic creation
//	deposit_checking(acct, amount)
//	transact_savings(acct, amount)     — amount may be negative
//	send_payment(src, dst, amount)     — checking transfer (two orgs)
//	write_check(acct, amount)
//	amalgamate(src, dst)               — move all funds src→dst checking
//	query(acct)                        — read-only
type SmallBank struct{}

// Name implements Contract.
func (SmallBank) Name() string { return "smallbank" }

// sbKeys holds an account's interned state keys. The workload's account
// space is small and hit millions of times across a sweep, so the key
// strings are built once per account and shared: state maps, RW sets, and
// overlays all reference the same backing strings instead of churning a
// fresh concatenation per invocation. sync.Map because parallel sweeps
// (-j N) execute SmallBank concurrently; the cache is append-only.
type sbKeys struct{ chk, sav string }

var sbKeyCache sync.Map // acct string → *sbKeys

func sbKeysFor(acct string) *sbKeys {
	if v, ok := sbKeyCache.Load(acct); ok {
		return v.(*sbKeys)
	}
	v, _ := sbKeyCache.LoadOrStore(acct, &sbKeys{chk: "sb:chk:" + acct, sav: "sb:sav:" + acct})
	return v.(*sbKeys)
}

// CheckingKey returns the world-state key for an account's checking balance.
func CheckingKey(acct string) string { return sbKeysFor(acct).chk }

// SavingsKey returns the world-state key for an account's savings balance.
func SavingsKey(acct string) string { return sbKeysFor(acct).sav }

func getBal(ctx *TxContext, key string) (int64, bool) {
	raw, ok := ctx.GetState(key)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseInt(string(raw), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func putBal(ctx *TxContext, key string, v int64) {
	ctx.PutState(key, []byte(strconv.FormatInt(v, 10)))
}

// Invoke implements Contract.
func (SmallBank) Invoke(ctx *TxContext, fn string, args [][]byte) error {
	switch fn {
	case "create_account":
		if len(args) != 2 {
			return fmt.Errorf("%w: create_account wants (acct, balance)", ErrAbort)
		}
		acct := string(args[0])
		bal, err := strconv.ParseInt(string(args[1]), 10, 64)
		if err != nil {
			return fmt.Errorf("%w: bad balance", ErrAbort)
		}
		if _, exists := ctx.GetState(CheckingKey(acct)); exists {
			return fmt.Errorf("%w: account %s exists", ErrAbort, acct)
		}
		putBal(ctx, CheckingKey(acct), bal)
		putBal(ctx, SavingsKey(acct), bal)
		return nil

	case "create_random":
		// The §6.3 non-deterministic contract: "creates an account with
		// a random balance", so different nodes generate different
		// results — deliberately a bug-like contract.
		if len(args) != 1 {
			return fmt.Errorf("%w: create_random wants (acct)", ErrAbort)
		}
		acct := string(args[0])
		bal := ctx.Nondet().Int63n(1_000_000)
		putBal(ctx, CheckingKey(acct), bal)
		putBal(ctx, SavingsKey(acct), bal)
		return nil

	case "deposit_checking":
		if len(args) != 2 {
			return fmt.Errorf("%w: deposit_checking wants (acct, amount)", ErrAbort)
		}
		acct := string(args[0])
		amt, err := strconv.ParseInt(string(args[1]), 10, 64)
		if err != nil || amt < 0 {
			return fmt.Errorf("%w: bad amount", ErrAbort)
		}
		bal, ok := getBal(ctx, CheckingKey(acct))
		if !ok {
			return fmt.Errorf("%w: no account %s", ErrAbort, acct)
		}
		putBal(ctx, CheckingKey(acct), bal+amt)
		return nil

	case "transact_savings":
		if len(args) != 2 {
			return fmt.Errorf("%w: transact_savings wants (acct, amount)", ErrAbort)
		}
		acct := string(args[0])
		amt, err := strconv.ParseInt(string(args[1]), 10, 64)
		if err != nil {
			return fmt.Errorf("%w: bad amount", ErrAbort)
		}
		bal, ok := getBal(ctx, SavingsKey(acct))
		if !ok {
			return fmt.Errorf("%w: no account %s", ErrAbort, acct)
		}
		if bal+amt < 0 {
			return fmt.Errorf("%w: insufficient savings", ErrAbort)
		}
		putBal(ctx, SavingsKey(acct), bal+amt)
		return nil

	case "send_payment":
		if len(args) != 3 {
			return fmt.Errorf("%w: send_payment wants (src, dst, amount)", ErrAbort)
		}
		src, dst := string(args[0]), string(args[1])
		amt, err := strconv.ParseInt(string(args[2]), 10, 64)
		if err != nil || amt < 0 {
			return fmt.Errorf("%w: bad amount", ErrAbort)
		}
		sb, ok := getBal(ctx, CheckingKey(src))
		if !ok {
			return fmt.Errorf("%w: no account %s", ErrAbort, src)
		}
		if sb < amt {
			return fmt.Errorf("%w: insufficient funds", ErrAbort)
		}
		if src == dst {
			// A self-payment is a funds-checked no-op; naively applying
			// both writes would double-count through read-your-writes.
			return nil
		}
		db, ok := getBal(ctx, CheckingKey(dst))
		if !ok {
			return fmt.Errorf("%w: no account %s", ErrAbort, dst)
		}
		putBal(ctx, CheckingKey(src), sb-amt)
		putBal(ctx, CheckingKey(dst), db+amt)
		return nil

	case "write_check":
		if len(args) != 2 {
			return fmt.Errorf("%w: write_check wants (acct, amount)", ErrAbort)
		}
		acct := string(args[0])
		amt, err := strconv.ParseInt(string(args[1]), 10, 64)
		if err != nil || amt < 0 {
			return fmt.Errorf("%w: bad amount", ErrAbort)
		}
		chk, ok := getBal(ctx, CheckingKey(acct))
		if !ok {
			return fmt.Errorf("%w: no account %s", ErrAbort, acct)
		}
		sav, _ := getBal(ctx, SavingsKey(acct))
		if chk+sav < amt {
			// SmallBank semantics: overdraft penalty.
			putBal(ctx, CheckingKey(acct), chk-amt-1)
		} else {
			putBal(ctx, CheckingKey(acct), chk-amt)
		}
		return nil

	case "amalgamate":
		if len(args) != 2 {
			return fmt.Errorf("%w: amalgamate wants (src, dst)", ErrAbort)
		}
		src, dst := string(args[0]), string(args[1])
		sav, ok := getBal(ctx, SavingsKey(src))
		if !ok {
			return fmt.Errorf("%w: no account %s", ErrAbort, src)
		}
		chk, _ := getBal(ctx, CheckingKey(src))
		if src == dst {
			// Self-amalgamate folds savings into checking.
			putBal(ctx, SavingsKey(src), 0)
			putBal(ctx, CheckingKey(src), chk+sav)
			return nil
		}
		dchk, ok := getBal(ctx, CheckingKey(dst))
		if !ok {
			return fmt.Errorf("%w: no account %s", ErrAbort, dst)
		}
		putBal(ctx, SavingsKey(src), 0)
		putBal(ctx, CheckingKey(src), 0)
		putBal(ctx, CheckingKey(dst), dchk+sav+chk)
		return nil

	case "query":
		if len(args) != 1 {
			return fmt.Errorf("%w: query wants (acct)", ErrAbort)
		}
		if _, ok := getBal(ctx, CheckingKey(string(args[0]))); !ok {
			return fmt.Errorf("%w: no account", ErrAbort)
		}
		return nil

	default:
		return fmt.Errorf("%w: unknown function %q", ErrAbort, fn)
	}
}
