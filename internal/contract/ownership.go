package contract

import (
	"strconv"
	"strings"

	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/types"
)

// KeyOwnerFunc maps a world-state key (written by tx) to the organization
// that owns it. BIDL partitions execution results by key ownership: each
// related organization signs and publishes the writes to its own keys,
// which it always computes from fresh state (its own keys are only ever
// written by transactions it executes). See DESIGN.md for how this
// substitutes for the paper's whole-result comparison.
type KeyOwnerFunc func(key string, tx *types.Transaction) string

// SmallBankKeyOwner returns the ownership map for the SmallBank layout:
// account i belongs to organization i mod numOrgs; keys that do not parse
// (e.g. freshly created non-deterministic accounts) belong to the
// transaction's corresponding organization.
func SmallBankKeyOwner(numOrgs int) KeyOwnerFunc {
	return func(key string, tx *types.Transaction) string {
		// Keys look like "sb:chk:acct-<i>" / "sb:sav:acct-<i>".
		idx := strings.LastIndex(key, "acct-")
		if idx >= 0 {
			if i, err := strconv.Atoi(key[idx+len("acct-"):]); err == nil {
				return "org" + strconv.Itoa(i%numOrgs)
			}
		}
		return tx.CorrespondingOrg()
	}
}

// PartitionWrites filters a write set down to the keys owned by org.
func PartitionWrites(rw *ledger.RWSet, owner KeyOwnerFunc, tx *types.Transaction, org string) []ledger.Write {
	var out []ledger.Write
	for _, w := range rw.Writes {
		o := owner(w.Key, tx)
		// Writes owned by a non-related organization fall to the
		// corresponding organization's partition.
		if !tx.RelatedTo(o) {
			o = tx.CorrespondingOrg()
		}
		if o == org {
			out = append(out, w)
		}
	}
	return out
}
