package contract

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/types"
)

func newRegistry() *Registry {
	r := NewRegistry()
	r.Deploy(SmallBank{})
	return r
}

func tx(fn string, args ...string) *types.Transaction {
	var bs [][]byte
	for _, a := range args {
		bs = append(bs, []byte(a))
	}
	return &types.Transaction{Client: "c", Contract: "smallbank", Fn: fn, Args: bs, Orgs: []string{"org1"}}
}

// exec runs a tx against state and applies successful writes.
func exec(t *testing.T, r *Registry, s *ledger.State, txn *types.Transaction, ver ledger.Version) *ledger.RWSet {
	t.Helper()
	rw := r.Execute(s, txn, nil)
	if !rw.Aborted {
		s.Apply(rw.Writes, ver)
	}
	return rw
}

func balance(t *testing.T, s *ledger.State, key string) int64 {
	t.Helper()
	raw, _, ok := s.Get(key)
	if !ok {
		t.Fatalf("key %s missing", key)
	}
	v, err := strconv.ParseInt(string(raw), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCreateAndQuery(t *testing.T) {
	r, s := newRegistry(), ledger.NewState()
	rw := exec(t, r, s, tx("create_account", "a1", "100"), ledger.Version{Block: 1})
	if rw.Aborted {
		t.Fatal("create_account aborted")
	}
	if got := balance(t, s, CheckingKey("a1")); got != 100 {
		t.Fatalf("checking = %d, want 100", got)
	}
	if got := balance(t, s, SavingsKey("a1")); got != 100 {
		t.Fatalf("savings = %d, want 100", got)
	}
	if rw2 := exec(t, r, s, tx("query", "a1"), ledger.Version{Block: 2}); rw2.Aborted {
		t.Fatal("query aborted")
	}
	if rw3 := r.Execute(s, tx("create_account", "a1", "50"), nil); !rw3.Aborted {
		t.Fatal("duplicate create_account succeeded")
	}
}

func TestSendPayment(t *testing.T) {
	r, s := newRegistry(), ledger.NewState()
	exec(t, r, s, tx("create_account", "a1", "100"), ledger.Version{Block: 1, Tx: 0})
	exec(t, r, s, tx("create_account", "a2", "100"), ledger.Version{Block: 1, Tx: 1})
	rw := exec(t, r, s, tx("send_payment", "a1", "a2", "30"), ledger.Version{Block: 2})
	if rw.Aborted {
		t.Fatal("send_payment aborted")
	}
	if balance(t, s, CheckingKey("a1")) != 70 || balance(t, s, CheckingKey("a2")) != 130 {
		t.Fatal("transfer balances wrong")
	}
	// Insufficient funds aborts without partial writes.
	rw = r.Execute(s, tx("send_payment", "a1", "a2", "1000"), nil)
	if !rw.Aborted || len(rw.Writes) != 0 {
		t.Fatal("overdraft transfer did not cleanly abort")
	}
	// Unknown destination aborts.
	if rw := r.Execute(s, tx("send_payment", "a1", "ghost", "1"), nil); !rw.Aborted {
		t.Fatal("payment to unknown account succeeded")
	}
}

func TestSavingsAndChecks(t *testing.T) {
	r, s := newRegistry(), ledger.NewState()
	exec(t, r, s, tx("create_account", "a1", "100"), ledger.Version{Block: 1})
	if rw := exec(t, r, s, tx("transact_savings", "a1", "-40"), ledger.Version{Block: 2}); rw.Aborted {
		t.Fatal("savings withdrawal aborted")
	}
	if balance(t, s, SavingsKey("a1")) != 60 {
		t.Fatal("savings wrong after withdrawal")
	}
	if rw := r.Execute(s, tx("transact_savings", "a1", "-100"), nil); !rw.Aborted {
		t.Fatal("savings overdraft succeeded")
	}
	if rw := exec(t, r, s, tx("deposit_checking", "a1", "25"), ledger.Version{Block: 3}); rw.Aborted {
		t.Fatal("deposit aborted")
	}
	if balance(t, s, CheckingKey("a1")) != 125 {
		t.Fatal("checking wrong after deposit")
	}
	// write_check within funds.
	exec(t, r, s, tx("write_check", "a1", "50"), ledger.Version{Block: 4})
	if balance(t, s, CheckingKey("a1")) != 75 {
		t.Fatal("write_check wrong")
	}
	// write_check beyond chk+sav incurs the penalty.
	exec(t, r, s, tx("write_check", "a1", "500"), ledger.Version{Block: 5})
	if balance(t, s, CheckingKey("a1")) != 75-500-1 {
		t.Fatalf("overdraft penalty wrong: %d", balance(t, s, CheckingKey("a1")))
	}
}

func TestAmalgamate(t *testing.T) {
	r, s := newRegistry(), ledger.NewState()
	exec(t, r, s, tx("create_account", "a1", "100"), ledger.Version{Block: 1, Tx: 0})
	exec(t, r, s, tx("create_account", "a2", "10"), ledger.Version{Block: 1, Tx: 1})
	if rw := exec(t, r, s, tx("amalgamate", "a1", "a2"), ledger.Version{Block: 2}); rw.Aborted {
		t.Fatal("amalgamate aborted")
	}
	if balance(t, s, CheckingKey("a1")) != 0 || balance(t, s, SavingsKey("a1")) != 0 {
		t.Fatal("source not drained")
	}
	if balance(t, s, CheckingKey("a2")) != 210 {
		t.Fatalf("dst checking = %d, want 210", balance(t, s, CheckingKey("a2")))
	}
}

func TestNondeterministicCreate(t *testing.T) {
	r := newRegistry()
	s1, s2 := ledger.NewState(), ledger.NewState()
	txn := tx("create_random", "a1")
	rw1 := r.Execute(s1, txn, rand.New(rand.NewSource(1)))
	rw2 := r.Execute(s2, txn, rand.New(rand.NewSource(2)))
	if rw1.Aborted || rw2.Aborted {
		t.Fatal("create_random aborted")
	}
	if rw1.Digest() == rw2.Digest() {
		t.Fatal("different nondet sources produced identical results")
	}
	// Same source ⇒ same result (the divergence is the randomness).
	rw3 := r.Execute(ledger.NewState(), txn, rand.New(rand.NewSource(1)))
	if rw1.Digest() != rw3.Digest() {
		t.Fatal("same nondet source produced different results")
	}
}

func TestNondetWithoutSourceAbortsNotPanics(t *testing.T) {
	r := newRegistry()
	rw := r.Execute(ledger.NewState(), tx("create_random", "a1"), nil)
	if !rw.Aborted {
		t.Fatal("nondet contract without source should abort (recovered panic)")
	}
}

func TestUnknownContractAndFunction(t *testing.T) {
	r := newRegistry()
	s := ledger.NewState()
	bad := &types.Transaction{Contract: "nope", Fn: "f"}
	if rw := r.Execute(s, bad, nil); !rw.Aborted {
		t.Fatal("unknown contract executed")
	}
	if rw := r.Execute(s, tx("frobnicate"), nil); !rw.Aborted {
		t.Fatal("unknown function executed")
	}
	if rw := r.Execute(s, tx("send_payment", "only-one-arg"), nil); !rw.Aborted {
		t.Fatal("wrong arity executed")
	}
	if rw := r.Execute(s, tx("deposit_checking", "a", "not-a-number"), nil); !rw.Aborted {
		t.Fatal("garbage amount executed")
	}
}

func TestReadYourWrites(t *testing.T) {
	s := ledger.NewState()
	ctx := NewTxContext(s, nil)
	ctx.PutState("k", []byte("v1"))
	if v, ok := ctx.GetState("k"); !ok || string(v) != "v1" {
		t.Fatal("staged write not visible in same txn")
	}
	ctx.DelState("k")
	if _, ok := ctx.GetState("k"); ok {
		t.Fatal("staged delete not visible")
	}
	rw := ctx.finish(false)
	if len(rw.Writes) != 1 || !rw.Writes[0].Delete {
		t.Fatalf("writes = %+v, want single delete", rw.Writes)
	}
}

func TestWritesCanonicalOrder(t *testing.T) {
	mk := func(order []string) *ledger.RWSet {
		ctx := NewTxContext(ledger.NewState(), nil)
		for _, k := range order {
			ctx.PutState(k, []byte("v"))
		}
		return ctx.finish(false)
	}
	a := mk([]string{"b", "a", "c"})
	b := mk([]string{"c", "b", "a"})
	if a.Digest() != b.Digest() {
		t.Fatal("write order affects result digest; digests must be canonical")
	}
}

func TestRWSetRecordsReads(t *testing.T) {
	s := ledger.NewState()
	s.Put("k", []byte("v"), ledger.Version{Block: 3, Tx: 1})
	ctx := NewTxContext(s, nil)
	ctx.GetState("k")
	ctx.GetState("missing")
	rw := ctx.finish(false)
	if len(rw.Reads) != 2 {
		t.Fatalf("reads = %d, want 2", len(rw.Reads))
	}
	if rw.Reads[0].Ver != (ledger.Version{Block: 3, Tx: 1}) || !rw.Reads[0].Existed {
		t.Fatal("read version not recorded")
	}
	if rw.Reads[1].Existed {
		t.Fatal("absent read marked existing")
	}
}

func TestPropertyMoneyConserved(t *testing.T) {
	// Sequentially executed transfers never create or destroy money:
	// sum(checking) is invariant under send_payment.
	f := func(transfers []uint16) bool {
		r := newRegistry()
		s := ledger.NewState()
		const nAcct = 5
		for i := 0; i < nAcct; i++ {
			rw := r.Execute(s, tx("create_account", fmt.Sprintf("a%d", i), "1000"), nil)
			s.Apply(rw.Writes, ledger.Version{Block: 0, Tx: i})
		}
		sum := func() int64 {
			var total int64
			for i := 0; i < nAcct; i++ {
				raw, _, _ := s.Get(CheckingKey(fmt.Sprintf("a%d", i)))
				v, _ := strconv.ParseInt(string(raw), 10, 64)
				total += v
			}
			return total
		}
		before := sum()
		for i, tr := range transfers {
			src := fmt.Sprintf("a%d", int(tr)%nAcct)
			dst := fmt.Sprintf("a%d", int(tr/7)%nAcct)
			amt := strconv.Itoa(int(tr % 300))
			rw := r.Execute(s, tx("send_payment", src, dst, amt), nil)
			if !rw.Aborted {
				s.Apply(rw.Writes, ledger.Version{Block: 1, Tx: i})
			}
		}
		return sum() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDeterministicExecution(t *testing.T) {
	// The same transaction against equal states yields equal results.
	f := func(amtRaw uint16) bool {
		amt := strconv.Itoa(int(amtRaw % 500))
		run := func() *ledger.RWSet {
			r := newRegistry()
			s := ledger.NewState()
			rw := r.Execute(s, tx("create_account", "a1", "1000"), nil)
			s.Apply(rw.Writes, ledger.Version{})
			rw = r.Execute(s, tx("create_account", "a2", "1000"), nil)
			s.Apply(rw.Writes, ledger.Version{})
			return r.Execute(s, tx("send_payment", "a1", "a2", amt), nil)
		}
		return run().Digest() == run().Digest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
