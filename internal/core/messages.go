package core

import (
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/types"
)

// SubmitBatch carries client transactions to the leader's sequencer
// (Phase 1). Clients batch their submissions per flush tick.
type SubmitBatch struct {
	Txns []*types.Transaction
}

// Size implements simnet.Message.
func (m *SubmitBatch) Size() int {
	n := 16
	for _, t := range m.Txns {
		n += t.Size()
	}
	return n
}

// RelayBatch carries transactions a consensus node relays to the current
// leader's sequencer: client retransmissions (§4.5) and re-sequencing after
// a view change.
type RelayBatch struct {
	Txns []*types.Transaction
}

// Size implements simnet.Message.
func (m *RelayBatch) Size() int {
	n := 16
	for _, t := range m.Txns {
		n += t.Size()
	}
	return n
}

// SeqBatch is the sequencer's multicast of sequenced transactions
// (Phase 2). Deliberately unsigned (§4.1).
type SeqBatch struct {
	View uint64
	Txns []types.SequencedTx

	size int // lazy Size cache; batches are immutable once multicast
}

// Size implements simnet.Message. Computed once and cached: the batch fans
// out to every consensus and normal node (and to each target separately in
// the multicast-disabled configuration), all sharing this object.
func (m *SeqBatch) Size() int {
	if m.size == 0 {
		n := 16
		for _, t := range m.Txns {
			n += t.Size()
		}
		m.size = n
	}
	return m.size
}

// BlockMsg disseminates an agreed block (hash list + certificate) from the
// leader consensus node to all nodes (end of Phase 3). Payloads are not
// included: nodes already hold them from the sequencer multicast
// (consensus-on-hash, §6).
type BlockMsg struct {
	Number uint64
	// Ordering is the encoded (seq, hash) list, the exact bytes agreed by
	// consensus.
	Ordering []byte
	Cert     *types.Certificate
	// Txns optionally carries full payloads when consensus-on-hash is
	// disabled.
	Txns []*types.Transaction

	size    int // lazy Size cache; blocks are immutable once disseminated
	oDig    crypto.Digest
	hasODig bool
}

// Size implements simnet.Message. Cached: the leader multicasts one shared
// object to every node.
func (m *BlockMsg) Size() int {
	if m.size == 0 {
		n := 8 + len(m.Ordering)
		if m.Cert != nil {
			n += m.Cert.Size()
		}
		for _, t := range m.Txns {
			n += t.Size()
		}
		m.size = n
	}
	return m.size
}

// OrderingDig returns the digest of the encoded ordering. Every receiver
// checks the certificate against this digest; since the message object is
// shared by all receivers and immutable in flight, the SHA-256 is computed
// once instead of once per node. (The virtual CPU cost each node charges for
// the check is unchanged — this only removes redundant host work.)
//
// Like every lazy cache on a multicast message, it must be warmed by the
// sender (warmCaches) before dissemination: receivers in different PDES
// partitions read the shared object concurrently.
func (m *BlockMsg) OrderingDig() crypto.Digest {
	if !m.hasODig {
		m.oDig = types.OrderingDigest(m.Ordering)
		m.hasODig = true
	}
	return m.oDig
}

// warmCaches fills the lazy size/digest caches before the block is shared
// across partitions.
func (m *BlockMsg) warmCaches() {
	m.Size()
	m.OrderingDig()
}

// OrgResult is one organization's signed execution result for a transaction
// (§4.4): the writes to the keys the organization owns (its partition,
// always computed from fresh state), the partition digest the delegate
// signs, and two self-reported flags — Aborted (application-level abort)
// and Inconsistent (the delegate's redundant executions diverged,
// indicating a non-deterministic transaction).
type OrgResult struct {
	Org          string
	Digest       crypto.Digest
	Writes       []ledger.Write
	Aborted      bool
	Inconsistent bool
	Sig          crypto.Signature

	// wdOK marks that Digest was derived from Writes/Aborted at the one
	// honest construction site (makeOrgResult), letting receivers skip the
	// defensive write-set re-hash. Any partition built elsewhere (tests,
	// crafted messages) leaves it false and still gets fully re-checked;
	// virtual hash cost is charged either way.
	wdOK bool
}

// orgResultBytes is what the delegate signs; the digest covers the writes
// and the aborted flag, so signing digest+flags covers everything.
func orgResultBytes(seq uint64, id types.TxID, org string, digest crypto.Digest, aborted, inconsistent bool) []byte {
	buf := make([]byte, 0, 84)
	for i := 0; i < 8; i++ {
		buf = append(buf, byte(seq>>(8*(7-i))))
	}
	buf = append(buf, id[:]...)
	buf = append(buf, org...)
	buf = append(buf, digest[:]...)
	flags := byte(0)
	if aborted {
		flags |= 1
	}
	if inconsistent {
		flags |= 2
	}
	return append(buf, flags)
}

// OrgResultMsg carries signed per-org results from a related organization's
// delegate to the corresponding organization's delegate (Phase 4-2 step 1).
type OrgResultMsg struct {
	Entries []OrgResultEntry
}

// OrgResultEntry is one transaction's result from one organization.
type OrgResultEntry struct {
	Seq    uint64
	TxID   types.TxID
	Result OrgResult
}

// Size implements simnet.Message.
func (m *OrgResultMsg) Size() int {
	n := 16
	for _, e := range m.Entries {
		n += 8 + 32 + 16 + 32 + 64 + 2 + writesSize(e.Result.Writes)
	}
	return n
}

// ResultMsg carries approved result vectors from a corresponding-org
// delegate to all consensus nodes (Phase 4-2 step 2: the multi-write).
type ResultMsg struct {
	Entries []ResultEntry
}

// ResultEntry is one transaction's approved result vector r̄: one
// partitioned result per related organization. The canonical committed
// write set is the union of the partitions — the paper's "retrievable"
// result (§4.4): once persisted, every correct node can read and apply it.
type ResultEntry struct {
	Seq    uint64
	TxID   types.TxID
	Vector []OrgResult

	// vd caches VectorDigest, warmed by the delegate that assembles the
	// vector (never lazily by receivers: a ResultMsg's entries slice is
	// shared across consensus nodes, possibly in different PDES partitions).
	vd   crypto.Digest
	vdOK bool
}

// Consistent reports whether no organization flagged non-determinism.
func (e *ResultEntry) Consistent() bool {
	for _, r := range e.Vector {
		if r.Inconsistent {
			return false
		}
	}
	return len(e.Vector) > 0
}

// Aborted reports whether any organization aborted the transaction; an
// aborted transaction commits as a no-op everywhere, so disagreement on
// application-level aborts can never split the state.
func (e *ResultEntry) Aborted() bool {
	for _, r := range e.Vector {
		if r.Aborted {
			return true
		}
	}
	return false
}

// Union concatenates the per-org partitions in vector order into the
// canonical write set.
func (e *ResultEntry) Union() []ledger.Write {
	var out []ledger.Write
	for _, r := range e.Vector {
		out = append(out, r.Writes...)
	}
	return out
}

// VectorDigest canonically hashes the vector for persist matching.
func (e *ResultEntry) VectorDigest() crypto.Digest {
	if e.vdOK {
		return e.vd
	}
	parts := make([][]byte, 0, len(e.Vector)*3+1)
	parts = append(parts, e.TxID[:])
	for _, r := range e.Vector {
		flags := byte(0)
		if r.Aborted {
			flags |= 1
		}
		if r.Inconsistent {
			flags |= 2
		}
		parts = append(parts, []byte(r.Org), r.Digest[:], []byte{flags})
	}
	return crypto.HashAll(parts...)
}

// warmVectorDigest fills the VectorDigest cache; the assembling delegate
// calls it once so every consensus node skips the re-hash.
func (e *ResultEntry) warmVectorDigest() {
	e.vd, e.vdOK = e.VectorDigest(), true
}

// Size implements simnet.Message.
func (m *ResultMsg) Size() int {
	n := 16
	for _, e := range m.Entries {
		n += 8 + 32
		for _, r := range e.Vector {
			n += 16 + 32 + 64 + 2 + writesSize(r.Writes)
		}
	}
	return n
}

func writesSize(ws []ledger.Write) int {
	n := 0
	for _, w := range ws {
		n += len(w.Key) + len(w.Val) + 2
	}
	return n
}

// PersistMsg is a consensus node's batched PERSIST echo to all normal nodes
// (Algo 1 line 18). One signature covers the batch.
type PersistMsg struct {
	Node    int
	Entries []PersistEntry
	Sig     crypto.Signature

	size int // lazy Size cache; persist echoes are immutable once multicast
}

// PersistEntry acknowledges one persisted result vector and carries the
// canonical result so normal nodes can adopt it (§4.4 retrievability).
type PersistEntry struct {
	Seq        uint64
	TxID       types.TxID
	VecDigest  crypto.Digest
	Consistent bool
	// ResultDigest is the common result digest when Consistent.
	ResultDigest crypto.Digest
	Writes       []ledger.Write
	Aborted      bool

	// ck caches contentKey. It is filled by the sender (warmContentKey)
	// before the entry is shared, never lazily by receivers: a multicast
	// batch is read by every org delegate, possibly from different PDES
	// partitions concurrently.
	ck   crypto.Digest
	ckOK bool
}

// contentKey digests the entry's full content; normal nodes count PERSIST
// votes per content key so that 2f+1 votes imply f+1 honest nodes vouch for
// every field, not just the vector digest. The cache is sound even against
// a byzantine sender: it memoizes a pure function of the entry's fields, so
// a warmed key always matches what the receiver would have computed.
func (e *PersistEntry) contentKey() crypto.Digest {
	if e.ckOK {
		return e.ck
	}
	rw := ledger.RWSet{Writes: e.Writes, Aborted: e.Aborted}
	wd := rw.Digest()
	flags := byte(0)
	if e.Consistent {
		flags |= 1
	}
	return crypto.HashAll(e.TxID[:], e.VecDigest[:], e.ResultDigest[:], wd[:], []byte{flags})
}

// warmContentKey fills the contentKey cache; senders call it once per entry
// so the O(consensus × orgs) receivers skip the write-set hash entirely.
func (e *PersistEntry) warmContentKey() {
	e.ck, e.ckOK = e.contentKey(), true
}

// persistSigningBytes covers the batch content.
func persistSigningBytes(node int, entries []PersistEntry) []byte {
	buf := make([]byte, 0, 32+len(entries)*105)
	buf = append(buf, byte(node))
	for _, e := range entries {
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(e.Seq>>(8*(7-i))))
		}
		buf = append(buf, e.TxID[:]...)
		buf = append(buf, e.VecDigest[:]...)
		if e.Consistent {
			buf = append(buf, 1)
		}
		if e.Aborted {
			buf = append(buf, 2)
		}
		buf = append(buf, e.ResultDigest[:]...)
		for _, w := range e.Writes {
			buf = append(buf, w.Key...)
			buf = append(buf, w.Val...)
		}
	}
	return buf
}

// Size implements simnet.Message. Cached: one shared object fans out to all
// normal nodes.
func (m *PersistMsg) Size() int {
	if m.size == 0 {
		n := 16 + len(m.Sig)
		for _, e := range m.Entries {
			n += 8 + 32 + 32 + 2 + 32 + writesSize(e.Writes)
		}
		m.size = n
	}
	return m.size
}

// FetchReq asks a consensus node for transaction payloads missing locally
// (checkProp retransmission, §4.2; also loss recovery, §6.4).
type FetchReq struct {
	Hashes []types.TxID
}

// Size implements simnet.Message.
func (m *FetchReq) Size() int { return 16 + len(m.Hashes)*32 }

// FetchResp returns the requested payloads with their sequence numbers.
type FetchResp struct {
	Txns []types.SequencedTx
}

// Size implements simnet.Message.
func (m *FetchResp) Size() int {
	n := 16
	for _, t := range m.Txns {
		n += t.Size()
	}
	return n
}

// CommitNotice tells a client its transactions committed (or aborted).
type CommitNotice struct {
	Entries []CommitEntry
}

// CommitEntry is one transaction's outcome.
type CommitEntry struct {
	TxID    types.TxID
	Aborted bool
}

// Size implements simnet.Message.
func (m *CommitNotice) Size() int { return 16 + len(m.Entries)*33 }

// PersistFetchReq asks consensus nodes to re-send their stored PERSIST
// entries for stalled sequence numbers (loss recovery for the persist
// protocol).
type PersistFetchReq struct {
	Seqs []uint64
}

// Size implements simnet.Message.
func (m *PersistFetchReq) Size() int { return 16 + 8*len(m.Seqs) }

// ChainStatus is a leader consensus node's periodic advertisement of its
// processed chain height, letting normal nodes detect and recover lost
// block disseminations.
type ChainStatus struct {
	Height uint64
}

// Size implements simnet.Message.
func (m *ChainStatus) Size() int { return 16 }

// BlockFetchReq asks a consensus node for blocks [From, To).
type BlockFetchReq struct {
	From, To uint64
}

// Size implements simnet.Message.
func (m *BlockFetchReq) Size() int { return 24 }

// DenyUpdate propagates newly denylisted clients from a consensus node to
// normal nodes (§4.6 step 3 aftermath).
type DenyUpdate struct {
	Node    int
	Clients []crypto.Identity
	Sig     crypto.Signature
}

func denySigningBytes(node int, clients []crypto.Identity) []byte {
	buf := []byte{byte(node)}
	for _, c := range clients {
		buf = append(buf, c...)
		buf = append(buf, 0)
	}
	return buf
}

// Size implements simnet.Message.
func (m *DenyUpdate) Size() int {
	n := 16 + len(m.Sig)
	for _, c := range m.Clients {
		n += len(c)
	}
	return n
}
