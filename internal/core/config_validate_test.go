package core

import (
	"strings"
	"testing"
	"time"
)

// TestConfigValidate covers every rejection class of Config.Validate, plus
// the derivation rules it must apply before judging (NumConsensus from F and
// vice versa) so that configs NewCluster would accept are not rejected.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string // substring of the expected error; "" = valid
	}{
		{"default", func(c *Config) {}, ""},
		{"derive-consensus-from-f", func(c *Config) { c.NumConsensus = 0; c.F = 2 }, ""},
		{"derive-f-from-consensus", func(c *Config) { c.NumConsensus = 7; c.F = 0 }, ""},
		{"zero-orgs", func(c *Config) { c.NumOrgs = 0 }, "NumOrgs"},
		{"zero-normal-per-org", func(c *Config) { c.NormalPerOrg = 0 }, "NormalPerOrg"},
		{"zero-consensus-zero-f", func(c *Config) { c.NumConsensus = 0; c.F = 0 }, ""},
		{"negative-f", func(c *Config) { c.NumConsensus = 4; c.F = -1 }, "F must be >= 0"},
		{"quorum-infeasible", func(c *Config) { c.NumConsensus = 5; c.F = 2 }, "cannot tolerate"},
		{"zero-block-size", func(c *Config) { c.BlockSize = 0 }, "BlockSize"},
		{"negative-dcs", func(c *Config) { c.NumDCs = -1 }, "NumDCs"},
		{"reexec-threshold-range", func(c *Config) { c.ReexecThreshold = 1.2 }, "ReexecThreshold"},
		{"negative-sample-verify", func(c *Config) { c.SampleVerify = -1 }, "SampleVerify"},
		{"negative-seq-batch", func(c *Config) { c.SeqBatchMax = -1 }, "SeqBatchMax"},
		{"unknown-protocol", func(c *Config) { c.Protocol = "paxos" }, "unknown protocol"},
		{"negative-block-timeout", func(c *Config) { c.BlockTimeout = -time.Millisecond }, "BlockTimeout"},
		{"negative-view-timeout", func(c *Config) { c.ViewTimeout = -1 }, "ViewTimeout"},
		{"negative-client-timeout", func(c *Config) { c.ClientTimeout = -1 }, "ClientTimeout"},
		{"negative-seq-flush", func(c *Config) { c.SeqFlushInterval = -1 }, "SeqFlushInterval"},
		{"negative-result-flush", func(c *Config) { c.ResultFlushInterval = -1 }, "ResultFlushInterval"},
		{"negative-deny-rejoin", func(c *Config) { c.DenyRejoin = -1 }, "DenyRejoin"},
		{"negative-intra-latency", func(c *Config) { c.Topology.IntraLatency = -1 }, "IntraLatency"},
		{"loss-rate-range", func(c *Config) { c.Topology.LossRate = 1 }, "LossRate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}
