package core

import (
	"sort"

	"github.com/bidl-framework/bidl/internal/types"
)

// txPool holds sequenced transactions pending agreement, indexed by sequence
// number and by hash. The first transaction received for a sequence number
// wins (§4.1 step 1); duplicate hashes are rejected (replay check, step 2).
type txPool struct {
	bySeq  map[uint64]*types.Transaction
	byHash map[types.TxID]uint64
	// committed tracks hashes that reached the ledger; they are rejected
	// forever by the replay check.
	committed map[types.TxID]bool
}

func newTxPool() *txPool {
	return &txPool{
		bySeq:     make(map[uint64]*types.Transaction),
		byHash:    make(map[types.TxID]uint64),
		committed: make(map[types.TxID]bool),
	}
}

// addResult says what happened to an insertion attempt.
type addResult int

const (
	poolAdded addResult = iota
	// poolDupSeq: the sequence number is occupied by a different
	// transaction — a conflict in the sense of Def 4.1 precursor.
	poolDupSeq
	// poolDupHash: replay-check rejection.
	poolDupHash
)

// add attempts to insert tx at seq.
func (p *txPool) add(seq uint64, tx *types.Transaction) addResult {
	id := tx.ID()
	if p.committed[id] {
		return poolDupHash
	}
	if existing, ok := p.bySeq[seq]; ok {
		if existing.ID() == id {
			return poolDupHash
		}
		return poolDupSeq
	}
	if _, ok := p.byHash[id]; ok {
		return poolDupHash
	}
	p.bySeq[seq] = tx
	p.byHash[id] = seq
	return poolAdded
}

// at returns the transaction at seq, if any.
func (p *txPool) at(seq uint64) (*types.Transaction, bool) {
	tx, ok := p.bySeq[seq]
	return tx, ok
}

// byID returns the transaction with the given hash, if pooled.
func (p *txPool) byID(id types.TxID) (*types.Transaction, bool) {
	seq, ok := p.byHash[id]
	if !ok {
		return nil, false
	}
	return p.bySeq[seq], true
}

// seqOf returns the pooled sequence number of a hash.
func (p *txPool) seqOf(id types.TxID) (uint64, bool) {
	seq, ok := p.byHash[id]
	return seq, ok
}

// markCommitted removes a transaction and bars its hash from re-entry.
func (p *txPool) markCommitted(id types.TxID) {
	p.committed[id] = true
	if seq, ok := p.byHash[id]; ok {
		delete(p.byHash, id)
		delete(p.bySeq, seq)
	}
}

// isCommitted reports whether the hash already committed.
func (p *txPool) isCommitted(id types.TxID) bool { return p.committed[id] }

// replace forcibly installs tx at seq, evicting any different occupant —
// the authoritative path for batches arriving from the leader's own
// co-located sequencer, which a racing broadcaster must never displace.
func (p *txPool) replace(seq uint64, tx *types.Transaction) {
	id := tx.ID()
	if p.committed[id] {
		return
	}
	if existing, ok := p.bySeq[seq]; ok {
		if existing.ID() == id {
			return
		}
		delete(p.byHash, existing.ID())
	}
	if oldSeq, ok := p.byHash[id]; ok {
		delete(p.bySeq, oldSeq)
	}
	p.bySeq[seq] = tx
	p.byHash[id] = seq
}

// drop removes the entry at seq without barring the hash.
func (p *txPool) drop(seq uint64) {
	if tx, ok := p.bySeq[seq]; ok {
		delete(p.byHash, tx.ID())
		delete(p.bySeq, seq)
	}
}

// pendingTxns returns all pooled, uncommitted transactions in sequence
// order (used to re-sequence after a view change). Sorting keeps the whole
// simulation deterministic: Go map iteration order is random.
func (p *txPool) pendingTxns() []*types.Transaction {
	seqs := make([]uint64, 0, len(p.bySeq))
	for s := range p.bySeq {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := make([]*types.Transaction, 0, len(seqs))
	for _, s := range seqs {
		out = append(out, p.bySeq[s])
	}
	return out
}

// size returns the number of pooled transactions.
func (p *txPool) size() int { return len(p.bySeq) }
