package core

import (
	"testing"

	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/types"
)

// TestSequencerMulticastFanoutAllocs pins (in the style of simnet's
// TestUntracedDeliveryAllocs) the allocation cost of the sequencer's batch
// multicast: size and inter-DC pipe accounting are computed once per
// emission, so the fan-out must cost roughly one allocation (the delivery
// closure) per receiver, not per-receiver recomputation of the batch.
func TestSequencerMulticastFanoutAllocs(t *testing.T) {
	c, gen := buildCluster(t, smallConfig(), defaultWorkload())
	seq := c.Sequencers[0]

	txns := gen.Batch(8)
	sts := make([]types.SequencedTx, len(txns))
	for i, tx := range txns {
		sts[i] = types.SequencedTx{Seq: uint64(i), Tx: tx}
	}
	batch := &SeqBatch{View: 0, Txns: sts}
	batch.Size() // one shared object: the size memoizes on first use

	receivers := 0
	for _, id := range c.Net.Group(groupTxns) {
		if id != seq.ep.ID() {
			receivers++
		}
	}
	if receivers == 0 {
		t.Fatal("no multicast receivers in txn group")
	}

	// Warm up once (scratch maps, event heap growth), then measure.
	simnet.NewInjectedContext(c.Net, seq.ep).Multicast(groupTxns, batch)
	allocs := testing.AllocsPerRun(100, func() {
		ctx := simnet.NewInjectedContext(c.Net, seq.ep)
		ctx.Multicast(groupTxns, batch)
	})
	// One delivery closure per receiver plus slack for amortized event-heap
	// growth (the scheduled deliveries are intentionally left undrained so
	// only the emission itself is measured).
	budget := float64(receivers) + 3
	if allocs > budget {
		t.Fatalf("sequencer multicast fan-out = %v allocs for %d receivers, want <= %v",
			allocs, receivers, budget)
	}
}

// TestExecutePathAllocs pins the delegate's execute path: the redundant
// non-determinism re-execution runs through the transient scratch context,
// so makeOrgResult must settle at a small constant allocation count —
// re-marshalling or context reallocation would blow well past the budget.
func TestExecutePathAllocs(t *testing.T) {
	c, gen := buildCluster(t, smallConfig(), defaultWorkload())
	nn := c.Orgs[0][0]
	if !nn.isDelegate() {
		t.Fatal("first org node is not the delegate")
	}
	tx := gen.Batch(1)[0]

	var allocs float64
	nnWithCtx(c, nn, func() {
		rw := c.Registry.Execute(nn.overlay, tx, nn.nondet)
		nn.makeOrgResult(1, tx, rw) // warm the transient scratch
		allocs = testing.AllocsPerRun(100, func() {
			nn.makeOrgResult(1, tx, rw)
		})
	})
	// Partition slices, SmallBank's strconv/string conversions inside the
	// re-execution, and the two partition digests — but no per-call context
	// maps and no re-marshal.
	const budget = 30
	if allocs > budget {
		t.Fatalf("delegate execute path = %v allocs/op, want <= %d (transient scratch not reused?)",
			allocs, budget)
	}
}
