package core

import (
	"testing"

	"github.com/bidl-framework/bidl/internal/types"
)

func poolTx(n uint64) *types.Transaction {
	return &types.Transaction{Client: "c", Nonce: n, Contract: "x", Fn: "f"}
}

func TestPoolFirstReceivedWins(t *testing.T) {
	p := newTxPool()
	a, b := poolTx(1), poolTx(2)
	if p.add(5, a) != poolAdded {
		t.Fatal("first add rejected")
	}
	if p.add(5, b) != poolDupSeq {
		t.Fatal("conflicting seq not reported")
	}
	if got, _ := p.at(5); got != a {
		t.Fatal("first-received did not win")
	}
	// The loser's hash is not barred: it can take another slot.
	if p.add(6, b) != poolAdded {
		t.Fatal("loser could not take a fresh slot")
	}
}

func TestPoolReplayCheck(t *testing.T) {
	p := newTxPool()
	a := poolTx(1)
	p.add(5, a)
	if p.add(7, a) != poolDupHash {
		t.Fatal("replayed hash accepted at a second slot")
	}
	if p.add(5, a) != poolDupHash {
		t.Fatal("exact duplicate not detected as replay")
	}
}

func TestPoolCommittedBarsReentry(t *testing.T) {
	p := newTxPool()
	a := poolTx(1)
	p.add(5, a)
	p.markCommitted(a.ID())
	if !p.isCommitted(a.ID()) {
		t.Fatal("not marked committed")
	}
	if _, ok := p.at(5); ok {
		t.Fatal("committed txn still pooled")
	}
	if p.add(9, a) != poolDupHash {
		t.Fatal("committed hash re-entered the pool")
	}
}

func TestPoolReplaceEvictsSquatter(t *testing.T) {
	p := newTxPool()
	crafted, real := poolTx(1), poolTx(2)
	p.add(5, crafted)
	p.replace(5, real)
	if got, _ := p.at(5); got != real {
		t.Fatal("replace did not install the authoritative txn")
	}
	if _, ok := p.byID(crafted.ID()); ok {
		t.Fatal("evicted squatter still indexed by hash")
	}
	// Replacing with a committed txn is a no-op.
	p.markCommitted(real.ID())
	other := poolTx(3)
	p.add(6, other)
	p.replace(6, real)
	if got, _ := p.at(6); got != other {
		t.Fatal("committed txn displaced a live one")
	}
}

func TestPoolReplaceMovesSeq(t *testing.T) {
	p := newTxPool()
	a := poolTx(1)
	p.add(5, a)
	// The same txn re-sequenced at a new slot: old mapping must go.
	p.replace(9, a)
	if _, ok := p.at(5); ok {
		t.Fatal("old slot still occupied after move")
	}
	if seq, ok := p.seqOf(a.ID()); !ok || seq != 9 {
		t.Fatalf("hash index seq = %d, want 9", seq)
	}
}

func TestPoolPendingTxnsSorted(t *testing.T) {
	p := newTxPool()
	for _, s := range []uint64{9, 2, 7, 4} {
		p.add(s, poolTx(s))
	}
	pend := p.pendingTxns()
	if len(pend) != 4 {
		t.Fatalf("pending %d, want 4", len(pend))
	}
	// Sorted by seq: nonces were chosen equal to seqs.
	want := []uint64{2, 4, 7, 9}
	for i, tx := range pend {
		if tx.Nonce != want[i] {
			t.Fatalf("pending order %v at %d, want %v", tx.Nonce, i, want[i])
		}
	}
	if p.size() != 4 {
		t.Fatalf("size %d", p.size())
	}
	p.drop(7)
	if p.size() != 3 {
		t.Fatal("drop did not shrink pool")
	}
	if _, ok := p.byID(poolTx(7).ID()); ok {
		t.Fatal("dropped txn still indexed")
	}
}
