package core

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/bidl-framework/bidl/internal/consensus"
	"github.com/bidl-framework/bidl/internal/consensus/hotstuff"
	"github.com/bidl-framework/bidl/internal/consensus/pbft"
	"github.com/bidl-framework/bidl/internal/consensus/sbft"
	"github.com/bidl-framework/bidl/internal/consensus/zyzzyva"
	"github.com/bidl-framework/bidl/internal/contract"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/metrics"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/trace"
	"github.com/bidl-framework/bidl/internal/types"
)

// cnIdentity names consensus node i in the membership registry.
func cnIdentity(i int) crypto.Identity {
	return crypto.Identity("cn" + strconv.Itoa(i))
}

// orgName returns organization o's registry name ("org<o>").
func orgName(o int) string { return "org" + strconv.Itoa(o) }

// orgIndex parses an organization name back to its index (-1 if malformed).
func orgIndex(name string) int {
	if len(name) < 4 || name[:3] != "org" {
		return -1
	}
	v, err := strconv.Atoi(name[3:])
	if err != nil {
		return -1
	}
	return v
}

// Cluster is a complete simulated BIDL deployment: consensus nodes with
// co-located sequencers, organizations of normal nodes, and clients, wired
// over a simnet datacenter.
type Cluster struct {
	Cfg       Config
	Sim       *simnet.Sim
	Net       *simnet.Network
	Scheme    crypto.Scheme
	Registry  *contract.Registry
	Collector *metrics.Collector

	ConsNodes  []*ConsNode
	Sequencers []*SequencerNode
	Orgs       [][]*NormalNode
	Clients    map[crypto.Identity]*ClientNode

	cnIndex   map[simnet.NodeID]int
	clientEps map[crypto.Identity]simnet.NodeID
	policy    consensus.LeaderPolicy
	keyOwner  contract.KeyOwnerFunc
	tracer    *trace.Tracer

	// Multicast group names, namespaced by Cfg.Label so clusters sharing
	// one Network (sharded deployments) cannot hear each other's traffic.
	// For a standalone cluster these equal the package constants.
	groupTxns, groupBlocks, groupPersist string
	// ownsSim is false when the Sim/Net were injected via Config: the owner
	// (the sharded harness) configured partitions and drives the run.
	ownsSim bool

	violationsMu sync.Mutex
	violations   []string
}

// NewCluster builds a BIDL deployment from cfg. Client identities must be
// registered afterwards via RegisterClients before transactions from them
// verify.
func NewCluster(cfg Config) *Cluster {
	if cfg.NumConsensus == 0 {
		cfg.NumConsensus = 3*cfg.F + 1
	}
	if cfg.F == 0 && cfg.NumConsensus >= 4 {
		cfg.F = (cfg.NumConsensus - 1) / 3
	}
	sim, net, scheme := cfg.Sim, cfg.Net, cfg.Scheme
	ownsSim := sim == nil
	if ownsSim {
		sim = simnet.NewSim(cfg.Seed)
		// Hub-and-shards PDES partitioning: consensus nodes, sequencers, and
		// clients share partition 0 (they read each other's state mid-run);
		// organizations of normal nodes shard over the remaining partitions.
		sim.SetPartitions(simnet.PartitionCount(cfg.SimWorkers, cfg.NumOrgs))
		sim.SetWorkers(cfg.SimWorkers)
		net = simnet.NewNetwork(sim, cfg.Topology)
		net.SetTracer(cfg.Tracer)
		scheme = crypto.NewHMACScheme([]byte(fmt.Sprintf("bidl-%d", cfg.Seed)))
	}
	nparts := sim.NumPartitions()
	reg := contract.NewRegistry()
	reg.Deploy(contract.SmallBank{})
	reg.Deploy(contract.Settlement{})
	reg.Deploy(contract.XShard{})

	collector := cfg.Collector
	if collector == nil {
		collector = metrics.NewCollector()
	}
	seed := crypto.Hash([]byte(fmt.Sprintf("leader-rotation-%d", cfg.Seed)))
	c := &Cluster{
		Cfg:       cfg,
		Sim:       sim,
		Net:       net,
		Scheme:    scheme,
		Registry:  reg,
		Collector: collector,
		Clients:   make(map[crypto.Identity]*ClientNode),
		cnIndex:   make(map[simnet.NodeID]int),
		clientEps: make(map[crypto.Identity]simnet.NodeID),
		// BIDL's unpredictable epoch rotation (§4.6).
		policy:       consensus.RandomEpoch{N: cfg.NumConsensus, Seed: seed},
		keyOwner:     cfg.KeyOwner,
		tracer:       cfg.Tracer,
		groupTxns:    cfg.Label + groupTxns,
		groupBlocks:  cfg.Label + groupBlocks,
		groupPersist: cfg.Label + groupPersist,
		ownsSim:      ownsSim,
	}
	if c.keyOwner == nil {
		c.keyOwner = contract.SmallBankKeyOwner(cfg.NumOrgs)
	}

	dc := func(i int) int {
		if cfg.NumDCs <= 1 {
			return 0
		}
		return i % cfg.NumDCs
	}

	consCfg := consensus.Config{
		N: cfg.NumConsensus, F: cfg.F,
		Policy:           c.policy,
		ViewTimeout:      cfg.ViewTimeout,
		SigVerify:        cfg.Costs.SigVerify,
		SigSign:          cfg.Costs.SigSign,
		MACVerify:        cfg.Costs.MACVerify,
		MACCompute:       cfg.Costs.MACCompute,
		ThresholdSign:    cfg.Costs.ThresholdSign,
		ThresholdCombine: cfg.Costs.ThresholdCombine,
	}

	node := 0
	// Consensus nodes + their co-located sequencers.
	for i := 0; i < cfg.NumConsensus; i++ {
		cn := newConsNode(c, i, i%cfg.NumOrgs)
		cn.ep = net.Register(fmt.Sprintf("%scn%d", cfg.Label, i), dc(node), cn)
		node++
		c.cnIndex[cn.ep.ID()] = i
		scheme.Register(cnIdentity(i))
		rcfg := consCfg
		rcfg.Self = i
		cn.replica = newReplica(cfg.Protocol, rcfg, cn)
		c.ConsNodes = append(c.ConsNodes, cn)

		seqNode := &SequencerNode{c: c, idx: i}
		// The sequencer shares the consensus node's server (same DC).
		seqNode.ep = net.Register(fmt.Sprintf("%sseq%d", cfg.Label, i), cn.ep.DC(), seqNode)
		c.Sequencers = append(c.Sequencers, seqNode)

		net.Join(c.groupTxns, cn.ep.ID())
		net.Join(c.groupBlocks, cn.ep.ID())
	}

	// Organizations of normal nodes.
	for o := 0; o < cfg.NumOrgs; o++ {
		scheme.Register(crypto.Identity(orgName(o)))
		var orgNodes []*NormalNode
		for j := 0; j < cfg.NormalPerOrg; j++ {
			nn := newNormalNode(c, o, j, cfg.Seed*1_000_003+int64(o*64+j))
			nn.ep = net.RegisterPart(fmt.Sprintf("%s%s-nn%d", cfg.Label, orgName(o), j), dc(node),
				simnet.ShardPartition(cfg.OrgPartitionOffset+o, nparts), nn)
			node++
			net.Join(c.groupTxns, nn.ep.ID())
			net.Join(c.groupBlocks, nn.ep.ID())
			net.Join(c.groupPersist, nn.ep.ID())
			orgNodes = append(orgNodes, nn)
		}
		c.Orgs = append(c.Orgs, orgNodes)
	}
	return c
}

// newReplica instantiates the configured BFT protocol.
func newReplica(name string, cfg consensus.Config, host consensus.Host) consensus.Replica {
	switch name {
	case ProtoHotStuff:
		return hotstuff.New(cfg, host)
	case ProtoZyzzyva:
		return zyzzyva.New(cfg, host)
	case ProtoSBFT:
		return sbft.New(cfg, host)
	default:
		return pbft.New(cfg, host)
	}
}

// RegisterClients creates client endpoints for the given identities.
// Identities must already exist in the scheme (the workload generator
// registers them).
func (c *Cluster) RegisterClients(ids []crypto.Identity) {
	for _, id := range ids {
		if _, ok := c.Clients[id]; ok {
			continue
		}
		cl := &ClientNode{c: c, id: id, pending: make(map[types.TxID]*types.Transaction)}
		cl.ep = c.Net.Register(c.Cfg.Label+"client-"+string(id), 0, cl)
		c.Clients[id] = cl
		c.clientEps[id] = cl.ep.ID()
	}
}

// SetClientHook marks an already-registered client as a quiet coordinator
// endpoint: its submissions and notifications bypass the metrics collector
// and tracer, and hook observes every commit-notice entry it receives. The
// sharded harness attaches its 2PC coordinators this way (DESIGN.md §14).
func (c *Cluster) SetClientHook(id crypto.Identity, hook func(*simnet.Context, CommitEntry)) {
	cl := c.Clients[id]
	cl.hook = hook
	cl.quiet = true
}

// ClientEndpoint returns a registered client's endpoint ID (the address the
// sharded harness uses to hand decision batches to a shard's coordinator).
func (c *Cluster) ClientEndpoint(id crypto.Identity) simnet.NodeID { return c.clientEps[id] }

// Prepopulate applies fn to every normal node's committed state (workload
// account seeding).
func (c *Cluster) Prepopulate(fn func(*ledger.State)) {
	for _, org := range c.Orgs {
		for _, nn := range org {
			fn(nn.base)
		}
	}
}

// SubmitAt schedules transactions for submission by their own clients at
// virtual time at.
func (c *Cluster) SubmitAt(at time.Duration, txns ...*types.Transaction) {
	byClient := make(map[crypto.Identity][]*types.Transaction)
	var order []crypto.Identity
	for _, tx := range txns {
		// Fill the lazy ID/signing/size caches before the transaction can
		// cross a partition boundary (see Transaction.Warm).
		tx.Warm()
		if _, ok := byClient[tx.Client]; !ok {
			order = append(order, tx.Client)
		}
		byClient[tx.Client] = append(byClient[tx.Client], tx)
	}
	c.Sim.At(at, func() {
		for _, id := range order {
			cl, ok := c.Clients[id]
			if !ok {
				continue
			}
			ctx := simnet.NewInjectedContext(c.Net, cl.ep)
			cl.submit(ctx, byClient[id])
		}
	})
}

// At schedules fn at virtual time t — the hook closed-loop load
// controllers use to observe mid-run cluster state and reschedule
// themselves. Only legal on the serial engine once the run has started
// (Sim.At rejects scheduling during parallel windows).
func (c *Cluster) At(t time.Duration, fn func()) { c.Sim.At(t, fn) }

// InFlight returns the cluster-wide count of submitted transactions whose
// clients have not yet seen a commit notification.
func (c *Cluster) InFlight() int {
	n := 0
	for _, cl := range c.Clients {
		n += cl.Pending()
	}
	return n
}

// Run advances the simulation to absolute virtual time t.
func (c *Cluster) Run(t time.Duration) { c.Sim.RunUntil(t) }

// leaderIdx returns the consensus cluster's current leader: the leader of
// the highest view any consensus node occupies.
func (c *Cluster) leaderIdx() int {
	var hi uint64
	leader := 0
	for _, cn := range c.ConsNodes {
		if v := cn.replica.View(); v >= hi {
			hi = v
			leader = cn.replica.Leader()
		}
	}
	return leader
}

// LeaderIndex exposes the current leader for tests and attacks.
func (c *Cluster) LeaderIndex() int { return c.leaderIdx() }

// safetyViolation records an invariant breach detected during simulation.
// Node handlers in concurrent partitions may report simultaneously, hence
// the lock; CheckSafety sorts partitioned runs so the report order is
// independent of partition interleaving.
func (c *Cluster) safetyViolation(msg string) {
	c.violationsMu.Lock()
	c.violations = append(c.violations, msg)
	c.violationsMu.Unlock()
}

// CheckSafety validates the paper's safety guarantee across the whole
// deployment: all correct nodes hold prefix-consistent ledgers, and normal
// nodes within an organization that reached the same height hold identical
// world states. The block-by-block comparison itself is shared with the
// fabric baselines (ledger.CheckConsistency); this method only assembles
// the views: consensus node 0 is the prefix reference, and each
// organization forms one state-agreement group.
func (c *Cluster) CheckSafety() error {
	ledgers := make([]ledger.SafetyView, 0, len(c.ConsNodes)+c.Cfg.NumOrgs*c.Cfg.NormalPerOrg)
	for i, cn := range c.ConsNodes {
		ledgers = append(ledgers, ledger.SafetyView{
			Label:  fmt.Sprintf("%sconsensus node %d", c.Cfg.Label, i),
			Blocks: cn.blocks,
		})
	}
	groups := make([][]ledger.SafetyView, 0, len(c.Orgs))
	for o, org := range c.Orgs {
		group := make([]ledger.SafetyView, 0, len(org))
		for j, nn := range org {
			v := ledger.SafetyView{
				Label:  fmt.Sprintf("%snormal node %s/%d", c.Cfg.Label, orgName(o), j),
				Blocks: nn.blocks,
				State:  nn.base,
				Height: nn.commitHeight,
			}
			ledgers = append(ledgers, v)
			group = append(group, v)
		}
		groups = append(groups, group)
	}
	violations := c.violations
	if c.Sim.NumPartitions() > 1 {
		// Partitioned runs sort for a deterministic report: the multiset of
		// violations is engine-independent but the arrival order is not.
		// Single-partition runs keep the historical event order.
		violations = append([]string(nil), violations...)
		sort.Strings(violations)
	}
	return ledger.CheckConsistency("core", violations, ledgers, groups)
}

// Metrics returns the cluster's metrics collector (the scenario.Harness
// accessor; the Collector field keeps its historical name).
func (c *Cluster) Metrics() *metrics.Collector { return c.Collector }

// IdentityScheme returns the membership crypto scheme clients register with.
func (c *Cluster) IdentityScheme() crypto.Scheme { return c.Scheme }

// VirtualEvents returns the number of discrete events executed so far.
func (c *Cluster) VirtualEvents() uint64 { return c.Sim.Events() }

// AttachAdversary registers an extra endpoint in datacenter dc, joined to
// the transaction multicast group so it observes sequencer traffic and can
// broadcast crafted transactions (the §6.2 malicious broadcaster). The
// adversary is NOT a member: it holds no registered identity.
func (c *Cluster) AttachAdversary(name string, dc int, h simnet.Handler) *simnet.Endpoint {
	ep := c.Net.Register(name, dc, h)
	c.Net.Join(c.groupTxns, ep.ID())
	return ep
}

// TxnGroup names the sequencer multicast group (for adversaries).
func (c *Cluster) TxnGroup() string { return c.groupTxns }

// LedgerDigest returns consensus node 0's chained head-of-ledger digest.
// Because every block digest folds in its predecessor, two runs with equal
// digests committed the exact same block sequence — a compact fingerprint
// for determinism tests.
func (c *Cluster) LedgerDigest() crypto.Digest {
	return c.ConsNodes[0].blocks.LastDigest()
}

// TotalCommitHeight returns the minimum commit height across normal nodes.
func (c *Cluster) TotalCommitHeight() uint64 {
	min := ^uint64(0)
	for _, org := range c.Orgs {
		for _, nn := range org {
			if nn.commitHeight < min {
				min = nn.commitHeight
			}
		}
	}
	if min == ^uint64(0) {
		return 0
	}
	return min
}
