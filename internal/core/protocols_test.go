package core

import (
	"testing"
	"time"
)

// TestAllProtocolsEndToEnd runs the BIDL workflow over each of the four BFT
// protocols the paper integrates (§6) and checks commits and safety.
func TestAllProtocolsEndToEnd(t *testing.T) {
	for _, proto := range []string{ProtoPBFT, ProtoHotStuff, ProtoZyzzyva, ProtoSBFT} {
		t.Run(proto, func(t *testing.T) {
			cfg := smallConfig()
			cfg.Protocol = proto
			c, gen := buildCluster(t, cfg, defaultWorkload())
			const n = 200
			for i, tx := range gen.Batch(n) {
				c.SubmitAt(time.Duration(i)*50*time.Microsecond, tx)
			}
			c.Run(3 * time.Second)
			if got := c.Collector.NumCommitted(); got != n {
				t.Fatalf("%s committed %d of %d", proto, got, n)
			}
			if err := c.CheckSafety(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMoreConsensusNodes exercises a 7-node (f=2) consensus cluster.
func TestMoreConsensusNodes(t *testing.T) {
	cfg := smallConfig()
	cfg.NumConsensus = 7
	cfg.F = 2
	c, gen := buildCluster(t, cfg, defaultWorkload())
	for i, tx := range gen.Batch(200) {
		c.SubmitAt(time.Duration(i)*50*time.Microsecond, tx)
	}
	c.Run(3 * time.Second)
	if got := c.Collector.NumCommitted(); got != 200 {
		t.Fatalf("committed %d of 200 with 7 consensus nodes", got)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

// TestDisableSpeculationAblation verifies the sequential-workflow ablation:
// commits still happen, nothing speculates, and latency exceeds the parallel
// workflow's.
func TestDisableSpeculationAblation(t *testing.T) {
	run := func(disable bool) (time.Duration, uint64, int) {
		cfg := smallConfig()
		cfg.DisableSpeculation = disable
		c, gen := buildCluster(t, cfg, defaultWorkload())
		for i, tx := range gen.Batch(200) {
			c.SubmitAt(time.Duration(i)*50*time.Microsecond, tx)
		}
		c.Run(3 * time.Second)
		if err := c.CheckSafety(); err != nil {
			t.Fatal(err)
		}
		return c.Collector.AvgLatency(0, 3*time.Second), c.Collector.Speculated, c.Collector.NumCommitted()
	}
	parLat, parSpec, parN := run(false)
	seqLat, seqSpec, seqN := run(true)
	if parN != 200 || seqN != 200 {
		t.Fatalf("committed %d / %d", parN, seqN)
	}
	if seqSpec != 0 {
		t.Fatalf("sequential ablation speculated %d transactions", seqSpec)
	}
	if parSpec == 0 {
		t.Fatal("parallel workflow never speculated")
	}
	if seqLat <= parLat {
		t.Fatalf("sequential latency %v not above parallel %v", seqLat, parLat)
	}
}

// TestConsensusOnPayloadMode verifies the opt-disabled configuration works
// end-to-end and pushes more bytes through consensus.
func TestConsensusOnPayloadMode(t *testing.T) {
	run := func(onPayload bool) (int, uint64) {
		cfg := smallConfig()
		cfg.ConsensusOnPayload = onPayload
		c, gen := buildCluster(t, cfg, defaultWorkload())
		for i, tx := range gen.Batch(150) {
			c.SubmitAt(time.Duration(i)*50*time.Microsecond, tx)
		}
		c.Run(2 * time.Second)
		if err := c.CheckSafety(); err != nil {
			t.Fatal(err)
		}
		return c.Collector.NumCommitted(), c.Net.TotalBytes()
	}
	nHash, bytesHash := run(false)
	nFull, bytesFull := run(true)
	if nHash != 150 || nFull != 150 {
		t.Fatalf("committed %d / %d", nHash, nFull)
	}
	if bytesFull <= bytesHash {
		t.Fatalf("consensus-on-payload moved %d bytes <= hash mode's %d", bytesFull, bytesHash)
	}
}

// TestDisableMulticastMode verifies unicast fan-out still commits.
func TestDisableMulticastMode(t *testing.T) {
	cfg := smallConfig()
	cfg.DisableMulticast = true
	c, gen := buildCluster(t, cfg, defaultWorkload())
	for i, tx := range gen.Batch(150) {
		c.SubmitAt(time.Duration(i)*50*time.Microsecond, tx)
	}
	c.Run(2 * time.Second)
	if got := c.Collector.NumCommitted(); got != 150 {
		t.Fatalf("committed %d of 150 without multicast", got)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashedConsensusFollower: BIDL keeps committing with one crashed
// non-leader consensus node (f=1).
func TestCrashedConsensusFollower(t *testing.T) {
	cfg := smallConfig()
	c, gen := buildCluster(t, cfg, defaultWorkload())
	victim := (c.LeaderIndex() + 1) % cfg.NumConsensus
	c.Sim.At(0, func() {
		c.ConsNodes[victim].Endpoint().SetDown(true)
		c.Sequencers[victim].Endpoint().SetDown(true)
	})
	for i, tx := range gen.Batch(200) {
		c.SubmitAt(time.Duration(i)*50*time.Microsecond, tx)
	}
	c.Run(3 * time.Second)
	if got := c.Collector.NumCommitted(); got != 200 {
		t.Fatalf("committed %d of 200 with a crashed follower", got)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashedLeaderRecovers: clients retransmit, the view changes, and
// transactions commit under a new leader.
func TestCrashedLeaderRecovers(t *testing.T) {
	cfg := smallConfig()
	cfg.ViewTimeout = 60 * time.Millisecond
	cfg.ClientTimeout = 200 * time.Millisecond
	c, gen := buildCluster(t, cfg, defaultWorkload())
	evil := c.LeaderIndex()
	// Crash the leader (and its sequencer) before any load arrives, so
	// every submission initially lands at a dead sequencer and recovery
	// must go through client retransmission and a view change (§4.5).
	c.Sim.At(0, func() {
		c.ConsNodes[evil].Endpoint().SetDown(true)
		c.Sequencers[evil].Endpoint().SetDown(true)
	})
	for i, tx := range gen.Batch(200) {
		c.SubmitAt(time.Duration(i)*50*time.Microsecond, tx)
	}
	c.Run(5 * time.Second)
	if c.LeaderIndex() == evil {
		t.Fatal("leader did not change after crash")
	}
	if got := c.Collector.NumCommitted(); got < 190 {
		t.Fatalf("committed %d of 200 after leader crash", got)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

// TestMultipleNormalNodesPerOrg: intra-org replicas stay consistent.
func TestMultipleNormalNodesPerOrg(t *testing.T) {
	cfg := smallConfig()
	cfg.NormalPerOrg = 3
	c, gen := buildCluster(t, cfg, defaultWorkload())
	for i, tx := range gen.Batch(200) {
		c.SubmitAt(time.Duration(i)*50*time.Microsecond, tx)
	}
	c.Run(3 * time.Second)
	if got := c.Collector.NumCommitted(); got != 200 {
		t.Fatalf("committed %d of 200", got)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
	// Every replica in org 0 at the same height has the same state.
	org := c.Orgs[0]
	for j := 1; j < len(org); j++ {
		if org[0].CommitHeight() == org[j].CommitHeight() &&
			org[0].State().Digest() != org[j].State().Digest() {
			t.Fatalf("org replica %d state diverges", j)
		}
	}
}
