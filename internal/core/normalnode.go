package core

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"github.com/bidl-framework/bidl/internal/contract"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/trace"
	"github.com/bidl-framework/bidl/internal/types"
)

// specResult is one speculatively executed transaction's outcome. orgRes
// caches the delegate's signed partition so it can be retransmitted if the
// persist round stalls under packet loss.
type specResult struct {
	txID   types.TxID
	rw     *ledger.RWSet
	orgRes *OrgResult
}

// vectorBuild accumulates per-org results for one transaction at its
// corresponding organization's delegate (§4.4).
type vectorBuild struct {
	seq    uint64
	txID   types.TxID
	needed map[string]bool
	got    map[string]OrgResult
	start  time.Duration
	sent   bool
}

// persistStatus tracks PERSIST quorum formation for one sequence number.
// Honest runs see exactly one content key per sequence, so votes for the
// first-seen key are a bitmask of consensus-node indices; a diverging key
// (byzantine sender) or a node index ≥ 64 spills to the generic map.
type persistStatus struct {
	key0       crypto.Digest
	haveKey0   bool
	votes0     uint64
	spill      map[crypto.Digest]map[int]bool
	persisted  bool
	consistent bool
	resultDig  crypto.Digest
	writes     []ledger.Write
	aborted    bool
}

// vote records node's vote for key and returns how many distinct nodes have
// voted for that key so far. Nodes in [0,64) voting for the first-seen key
// never allocate; everything else lands in the spill map.
func (ps *persistStatus) vote(key crypto.Digest, node int) int {
	if !ps.haveKey0 {
		ps.key0, ps.haveKey0 = key, true
	}
	if key == ps.key0 && 0 <= node && node < 64 {
		ps.votes0 |= 1 << uint(node)
	} else {
		if ps.spill == nil {
			ps.spill = make(map[crypto.Digest]map[int]bool)
		}
		set := ps.spill[key]
		if set == nil {
			set = make(map[int]bool)
			ps.spill[key] = set
		}
		set[node] = true
	}
	n := len(ps.spill[key])
	if key == ps.key0 {
		n += bits.OnesCount64(ps.votes0)
	}
	return n
}

// voteCounts returns the per-key vote tallies (diagnostics only; spill-map
// order is unspecified).
func (ps *persistStatus) voteCounts() []int {
	var out []int
	if ps.haveKey0 {
		out = append(out, bits.OnesCount64(ps.votes0)+len(ps.spill[ps.key0]))
	}
	for k, set := range ps.spill {
		if ps.haveKey0 && k == ps.key0 {
			continue
		}
		out = append(out, len(set))
	}
	return out
}

// pendingBlock is an agreed block a normal node is working through.
type pendingBlock struct {
	number   uint64
	seqs     []uint64
	hashes   []types.TxID
	cert     *types.Certificate
	arrived  time.Duration
	executed bool
	fetching bool
}

// NormalNode is one BIDL normal node: it verifies and speculatively executes
// sequenced transactions (Phase 4-1), participates in the persist protocol
// (Phase 4-2), and commits agreed blocks (Phase 5).
type NormalNode struct {
	c        *Cluster
	org      int
	orgName  string
	idxInOrg int
	ep       *simnet.Endpoint
	ctx      *simnet.Context

	pool    *txPool
	arrival map[uint64]time.Duration
	invalid map[types.TxID]bool
	checked map[types.TxID]bool

	base     *ledger.State
	overlay  *ledger.Overlay
	spec     map[uint64]*specResult
	specNext uint64
	specInit bool
	gapArmed bool
	nondet   *rand.Rand
	// execScratch backs the delegate's redundant re-execution, whose result
	// is digested and discarded within makeOrgResult — the one execution
	// site where a transient, buffer-reusing run is provably safe.
	execScratch contract.ExecScratch

	// delegate state (first normal node of the org).
	vectors   map[types.TxID]*vectorBuild
	orgOut    map[int][]OrgResultEntry // target org → batched results
	resultOut []ResultEntry
	flushArm  bool

	persist map[uint64]*persistStatus

	blockBuf        map[uint64]*pendingBlock
	commitHeight    uint64
	blocks          *ledger.BlockStore
	blockFetching   bool
	persistRetryArm bool

	deny      map[crypto.Identity]bool
	denyVotes map[crypto.Identity]map[int]bool

	// agreed marks hashes ordered by consensus: an agreed transaction is
	// authoritative for its sequence slot and displaces any crafted
	// squatter the first-received-wins rule let in (§4.1 vs Def 4.1).
	agreed map[types.TxID]uint64
}

// Endpoint returns the node's simnet endpoint.
func (n *NormalNode) Endpoint() *simnet.Endpoint { return n.ep }

// State exposes the committed world state (safety checks, examples).
func (n *NormalNode) State() *ledger.State { return n.base }

// Blocks exposes the node's ledger.
func (n *NormalNode) Blocks() *ledger.BlockStore { return n.blocks }

// CommitHeight returns the number of fully committed blocks.
func (n *NormalNode) CommitHeight() uint64 { return n.commitHeight }

// DebugHead describes the head pending block (diagnostics).
func (n *NormalNode) DebugHead() string {
	pb, ok := n.blockBuf[n.commitHeight]
	if !ok {
		return fmt.Sprintf("none (commitH=%d buf=%d)", n.commitHeight, len(n.blockBuf))
	}
	missPayload, missPersist := 0, 0
	for i, h := range pb.hashes {
		if n.pool.isCommitted(h) {
			continue
		}
		if _, ok := n.pool.byID(h); !ok {
			missPayload++
			continue
		}
		if n.invalid[h] {
			continue
		}
		if ps := n.persist[pb.seqs[i]]; ps == nil || !ps.persisted {
			missPersist++
		}
	}
	return fmt.Sprintf("commitH=%d buf=%d head{num=%d len=%d missPay=%d missPer=%d exec=%v fetch=%v retry=%v}",
		n.commitHeight, len(n.blockBuf), pb.number, len(pb.hashes), missPayload, missPersist, pb.executed, pb.fetching, n.persistRetryArm)
}

// DebugStalledSeq reports details for the first stalled entry of the head
// block (diagnostics).
func (n *NormalNode) DebugStalledSeq() string {
	pb, ok := n.blockBuf[n.commitHeight]
	if !ok {
		return "none"
	}
	for i, h := range pb.hashes {
		if n.pool.isCommitted(h) || n.invalid[h] {
			continue
		}
		if ps := n.persist[pb.seqs[i]]; ps == nil || !ps.persisted {
			tx, pooled := n.pool.byID(h)
			out := fmt.Sprintf("seq=%d pooled=%v", pb.seqs[i], pooled)
			if pooled {
				out += fmt.Sprintf(" client=%s orgs=%v poolSeq=?", tx.Client, tx.Orgs)
				if sq, ok := n.pool.seqOf(h); ok {
					out += fmt.Sprintf(" poolSeq=%d", sq)
				}
				sr, hasSpec := n.spec[pb.seqs[i]]
				out += fmt.Sprintf(" spec@agreed=%v", hasSpec && sr.txID == h)
				if vb, ok := n.vectors[h]; ok {
					out += fmt.Sprintf(" vb{seq=%d sent=%v got=%d need=%d}", vb.seq, vb.sent, len(vb.got), len(vb.needed))
				} else {
					out += " vb=nil"
				}
			}
			return out
		}
	}
	return "none-stalled"
}

// DebugStalledSeqNum returns the first stalled seq of the head block (0 if none).
func (n *NormalNode) DebugStalledSeqNum() uint64 {
	pb, ok := n.blockBuf[n.commitHeight]
	if !ok {
		return 0
	}
	for i, h := range pb.hashes {
		if n.pool.isCommitted(h) || n.invalid[h] {
			continue
		}
		if ps := n.persist[pb.seqs[i]]; ps == nil || !ps.persisted {
			return pb.seqs[i]
		}
	}
	return 0
}

// DebugVotes summarizes persist votes for a seq.
func (n *NormalNode) DebugVotes(seq uint64) string {
	ps := n.persist[seq]
	if ps == nil {
		return "no status"
	}
	counts := ps.voteCounts()
	out := fmt.Sprintf("persisted=%v keys=%d:", ps.persisted, len(counts))
	for _, c := range counts {
		out += fmt.Sprintf(" %d", c)
	}
	return out
}

// Denied reports whether the node currently denies a client.
func (n *NormalNode) Denied(c crypto.Identity) bool { return n.deny[c] }

// isDelegate reports whether this node is its organization's delegate.
func (n *NormalNode) isDelegate() bool { return n.idxInOrg == 0 }

func newNormalNode(c *Cluster, org, idxInOrg int, seed int64) *NormalNode {
	base := ledger.NewState()
	return &NormalNode{
		c:         c,
		org:       org,
		orgName:   orgName(org),
		idxInOrg:  idxInOrg,
		pool:      newTxPool(),
		arrival:   make(map[uint64]time.Duration),
		invalid:   make(map[types.TxID]bool),
		checked:   make(map[types.TxID]bool),
		base:      base,
		overlay:   ledger.NewOverlay(base),
		spec:      make(map[uint64]*specResult),
		nondet:    rand.New(rand.NewSource(seed)),
		vectors:   make(map[types.TxID]*vectorBuild),
		orgOut:    make(map[int][]OrgResultEntry),
		persist:   make(map[uint64]*persistStatus),
		blockBuf:  make(map[uint64]*pendingBlock),
		blocks:    ledger.NewBlockStore(),
		deny:      make(map[crypto.Identity]bool),
		denyVotes: make(map[crypto.Identity]map[int]bool),
		agreed:    make(map[types.TxID]uint64),
	}
}

func (n *NormalNode) bind(ctx *simnet.Context, fn func()) {
	prev := n.ctx
	n.ctx = ctx
	defer func() { n.ctx = prev }()
	fn()
}

// OnRestart implements simnet.Restarter: every armed timer (gap jump,
// result flush, block-fetch cooldown, persist retry) died with the crash,
// so the guard flags must reset or recovery would never re-arm. Committed
// state — the base ledger and block store — survives like a disk image;
// missed blocks are caught up through the leader's periodic ChainStatus
// advertisements and the persist-retry watchdog.
func (n *NormalNode) OnRestart(ctx *simnet.Context) {
	n.bind(ctx, func() {
		n.gapArmed = false
		n.flushArm = false
		n.blockFetching = false
		n.persistRetryArm = false
		if _, pending := n.blockBuf[n.commitHeight]; pending {
			n.armPersistRetry()
		}
		if len(n.pool.bySeq) > 0 {
			n.armGapTimer()
		}
	})
}

// OnMessage implements simnet.Handler.
func (n *NormalNode) OnMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	n.bind(ctx, func() {
		switch m := msg.(type) {
		case *SeqBatch:
			n.onSeqBatch(m)
		case *BlockMsg:
			n.onBlock(m)
		case *OrgResultMsg:
			n.onOrgResults(m)
		case *PersistMsg:
			n.onPersist(from, m)
		case *FetchResp:
			n.onFetchResp(m)
		case *DenyUpdate:
			n.onDenyUpdate(m)
		case *ChainStatus:
			n.onChainStatus(from, m)
		}
	})
}

// --- Phase 4-1: verification and speculative execution ---------------------

func (n *NormalNode) onSeqBatch(m *SeqBatch) {
	for _, st := range m.Txns {
		n.ctx.Elapse(n.c.Cfg.Costs.Hash(st.Tx.Size()))
		if n.deny[st.Tx.Client] {
			// Denylisted clients' multicasts are ignored outright, so
			// their crafted transactions stop occupying sequence slots.
			continue
		}
		res := n.pool.add(st.Seq, st.Tx)
		if res == poolDupSeq {
			if seq, ok := n.agreed[st.Tx.ID()]; ok && seq == st.Seq {
				// Consensus agreed on this transaction: it evicts the
				// crafted squatter occupying its slot.
				n.pool.replace(st.Seq, st.Tx)
				res = poolAdded
			}
		}
		switch res {
		case poolAdded:
			n.arrival[st.Seq] = n.ctx.Now()
			// The corresponding org's delegate is the single deterministic
			// authority for a transaction's delivered/executed/persisted
			// stages, so traces stay identical across node counts.
			if tr := n.c.tracer; tr != nil && n.isDelegate() &&
				orgIndex(st.Tx.CorrespondingOrg()) == n.org {
				tr.TxStage(st.Tx.ID(), trace.StageDelivered, int(n.ep.ID()), n.ctx.Now())
			}
			if n.specInit && st.Seq < n.specNext {
				// A gap filled in late (loss or attack): speculation
				// beyond it used the wrong order. Reset (§4.3
				// fallback semantics).
				n.specReset()
			}
		case poolDupSeq:
			// First-received wins (§4.1); the loser is discarded.
			continue
		case poolDupHash:
			continue
		}
	}
	n.trySpeculate()
}

// verifyTx runs the §4.1 signature check (step 3) once per transaction.
func (n *NormalNode) verifyTx(tx *types.Transaction) bool {
	id := tx.ID()
	if n.checked[id] {
		return !n.invalid[id]
	}
	n.checked[id] = true
	n.ctx.Elapse(n.c.Cfg.Costs.SigVerify)
	if !tx.VerifySig(n.c.Scheme) || !n.c.Scheme.Known(tx.Client) {
		n.invalid[id] = true
		return false
	}
	return true
}

// trySpeculate executes pooled transactions in sequence-number order
// (Phase 4-1). Related transactions execute against the speculative
// overlay; unrelated ones just advance the pointer.
func (n *NormalNode) trySpeculate() {
	if !n.specInit {
		// Bootstrap: start from the lowest pooled sequence.
		lowest, ok := n.lowestPooled()
		if !ok {
			return
		}
		n.specNext = lowest
		n.specInit = true
	}
	for {
		tx, ok := n.pool.at(n.specNext)
		if !ok {
			n.armGapTimer()
			return
		}
		seq := n.specNext
		n.specNext++
		if !tx.RelatedTo(n.orgName) {
			continue
		}
		if n.deny[tx.Client] || n.c.Cfg.DisableSpeculation {
			// Denied clients lose speculation but keep liveness:
			// their agreed transactions re-execute at commit (§4.6).
			// With speculation disabled (ablation), every transaction
			// takes the commit-time sequential path.
			continue
		}
		if !n.verifyTx(tx) {
			// Invalid related transactions still need a persist round
			// so that every node can commit them as aborted: the
			// related organizations vote "invalid".
			if n.isDelegate() {
				n.routeInvalid(seq, tx)
			}
			continue
		}
		n.executeSpec(seq, tx)
	}
}

// routeInvalid emits a signed aborted result for an invalid related
// transaction, letting its persist round complete with an abort verdict.
func (n *NormalNode) routeInvalid(seq uint64, tx *types.Transaction) {
	rw := &ledger.RWSet{Aborted: true}
	dig := rw.Digest()
	n.ctx.Elapse(n.c.Cfg.Costs.MACCompute)
	sig, err := n.c.Scheme.Sign(crypto.Identity(n.orgName),
		orgResultBytes(seq, tx.ID(), n.orgName, dig, true, false))
	if err != nil {
		return
	}
	n.routeOrgResult(seq, tx, OrgResult{Org: n.orgName, Digest: dig, Aborted: true, Sig: sig})
}

// structOK cheaply validates a transaction's structure: it must name at
// least one related organization and only organizations that exist. A
// transaction failing this can never complete a persist round, so every
// node marks it invalid locally instead of waiting.
func (n *NormalNode) structOK(tx *types.Transaction) bool {
	if len(tx.Orgs) == 0 {
		return false
	}
	for _, o := range tx.Orgs {
		idx := orgIndex(o)
		if idx < 0 || idx >= len(n.c.Orgs) {
			return false
		}
	}
	return true
}

func (n *NormalNode) lowestPooled() (uint64, bool) {
	var lo uint64
	found := false
	for s := range n.pool.bySeq {
		if !found || s < lo {
			lo = s
			found = true
		}
	}
	return lo, found
}

// armGapTimer jumps speculation across a persistent gap (lost packet, a
// crafted-transaction hole, or a leadership-change renumbering).
func (n *NormalNode) armGapTimer() {
	if n.gapArmed {
		return
	}
	n.gapArmed = true
	at := n.specNext
	n.ctx.After(4*n.c.Cfg.SeqFlushInterval, func(c2 *simnet.Context) {
		n.bind(c2, func() {
			n.gapArmed = false
			if n.specNext != at {
				n.trySpeculate()
				return
			}
			// Jump to the next available sequence.
			next, found := uint64(0), false
			for s := range n.pool.bySeq {
				if s > n.specNext && (!found || s < next) {
					next, found = s, true
				}
			}
			if found {
				n.specNext = next
				n.trySpeculate()
			}
		})
	})
}

// executeSpec speculatively executes one related transaction and feeds the
// result into the persist pipeline.
func (n *NormalNode) executeSpec(seq uint64, tx *types.Transaction) {
	if tr := n.c.tracer; tr != nil && n.isDelegate() &&
		orgIndex(tx.CorrespondingOrg()) == n.org {
		tr.TxStage(tx.ID(), trace.StageExecStart, int(n.ep.ID()), n.ctx.Now())
	}
	n.ctx.Elapse(n.c.Cfg.Costs.ExecTxn)
	rw := n.c.Registry.Execute(n.overlay, tx, n.nondet)
	// The redundant non-determinism check must run against the same
	// pre-state, before the first execution's writes land in the overlay.
	var res OrgResult
	if n.isDelegate() {
		res = n.makeOrgResult(seq, tx, rw)
	}
	n.overlayApply(rw)
	sr := &specResult{txID: tx.ID(), rw: rw}
	if n.isDelegate() {
		sr.orgRes = &res
	}
	n.spec[seq] = sr
	atomic.AddUint64(&n.c.Collector.Speculated, 1)
	if tr := n.c.tracer; tr != nil && n.isDelegate() &&
		orgIndex(tx.CorrespondingOrg()) == n.org {
		tr.TxStage(tx.ID(), trace.StageExecuted, int(n.ep.ID()), n.ctx.Now())
	}
	if at, ok := n.arrival[seq]; ok {
		n.c.Collector.Phase("verexec", n.ctx.Now()-at)
		delete(n.arrival, seq)
	}
	if n.isDelegate() {
		n.routeOrgResult(seq, tx, res)
	}
}

// makeOrgResult extracts this org's owned partition from an execution and
// redundantly re-executes the transaction against the same pre-state to
// detect non-determinism: data races (modelled by node-local randomness)
// make the two runs diverge. Treating every transaction as potentially
// non-deterministic is §4.4's premise. The redundant run's CPU cost is
// folded into ExecTxn (DESIGN.md). Must be called before overlayApply(rw).
func (n *NormalNode) makeOrgResult(seq uint64, tx *types.Transaction, rw *ledger.RWSet) OrgResult {
	owner := n.c.keyOwner
	part := contract.PartitionWrites(rw, owner, tx, n.orgName)
	// The re-execution's RW set is digested below and never escapes, so the
	// transient (buffer-reusing) execution path applies.
	rw2 := n.c.Registry.ExecuteTransient(n.overlay, tx, n.nondet, &n.execScratch)
	part2 := contract.PartitionWrites(rw2, owner, tx, n.orgName)
	d1 := (&ledger.RWSet{Writes: part, Aborted: rw.Aborted}).Digest()
	d2 := (&ledger.RWSet{Writes: part2, Aborted: rw2.Aborted}).Digest()
	inconsistent := d1 != d2
	n.ctx.Elapse(n.c.Cfg.Costs.MACCompute)
	sig, err := n.c.Scheme.Sign(crypto.Identity(n.orgName),
		orgResultBytes(seq, tx.ID(), n.orgName, d1, rw.Aborted, inconsistent))
	if err != nil {
		panic(err)
	}
	return OrgResult{Org: n.orgName, Digest: d1, Writes: part,
		Aborted: rw.Aborted, Inconsistent: inconsistent, Sig: sig, wdOK: true}
}

// routeOrgResult sends a signed partition to the corresponding org's
// delegate (or feeds it locally when this org is o_c).
func (n *NormalNode) routeOrgResult(seq uint64, tx *types.Transaction, res OrgResult) {
	ocOrg := orgIndex(tx.CorrespondingOrg())
	if ocOrg == n.org {
		n.feedVector(seq, tx, res)
	} else {
		n.orgOut[ocOrg] = append(n.orgOut[ocOrg], OrgResultEntry{Seq: seq, TxID: tx.ID(), Result: res})
		n.armFlush()
	}
}

func (n *NormalNode) overlayApply(rw *ledger.RWSet) {
	if rw.Aborted {
		return
	}
	for _, w := range rw.Writes {
		if w.Delete {
			n.overlay.Delete(w.Key)
		} else {
			n.overlay.Put(w.Key, w.Val, ledger.Version{})
		}
	}
}

// specReset falls back to the committed state (Phase 5 fallback, §4.3).
// Discarded speculative results count as re-executions: the same
// transactions run again from the reset point.
func (n *NormalNode) specReset() {
	atomic.AddUint64(&n.c.Collector.Reexecuted, uint64(len(n.spec)))
	n.overlay.Discard()
	n.spec = make(map[uint64]*specResult)
	if lo, ok := n.lowestPooled(); ok {
		n.specNext = lo
	}
}

// --- Phase 4-2: approve and persist -----------------------------------------

// feedVector accumulates org results at the corresponding org's delegate.
// A transaction re-sequenced across leadership terms may collect votes under
// several sequence numbers; signatures bind org results to a specific
// sequence, so the build follows the agreed one: when a vote for the agreed
// sequence arrives and the current build is for a stale sequence, the build
// restarts.
func (n *NormalNode) feedVector(seq uint64, tx *types.Transaction, res OrgResult) {
	vb := n.vectors[tx.ID()]
	if vb != nil && vb.seq != seq {
		if agreedSeq, ok := n.agreed[tx.ID()]; ok && agreedSeq == seq {
			vb = nil // stale build for a superseded sequence
		} else {
			return // keep the existing build; commit re-routes if needed
		}
	}
	if vb == nil {
		vb = &vectorBuild{
			seq:   seq,
			txID:  tx.ID(),
			got:   make(map[string]OrgResult, len(tx.Orgs)),
			start: n.ctx.Now(),
		}
		n.vectors[tx.ID()] = vb
	}
	if vb.needed == nil {
		vb.needed = make(map[string]bool, len(tx.Orgs))
		for _, o := range tx.Orgs {
			vb.needed[o] = true
		}
	}
	if vb.needed[res.Org] {
		vb.got[res.Org] = res
	}
	n.tryFinishVector(tx, vb)
}

// tryFinishVector emits the approved vector once every related org's result
// is present.
func (n *NormalNode) tryFinishVector(tx *types.Transaction, vb *vectorBuild) {
	if vb.sent || vb.needed == nil {
		return
	}
	have := 0
	for o := range vb.needed {
		if _, ok := vb.got[o]; ok {
			have++
		}
	}
	if have < len(vb.needed) {
		return
	}
	vb.sent = true
	vb.start = n.ctx.Now() // persist latency measured from vector send (§4.4)
	orgs := make([]string, 0, len(vb.got))
	for o := range vb.needed {
		orgs = append(orgs, o)
	}
	sort.Strings(orgs)
	entry := ResultEntry{Seq: vb.seq, TxID: vb.txID}
	for _, o := range orgs {
		entry.Vector = append(entry.Vector, vb.got[o])
	}
	entry.warmVectorDigest()
	n.resultOut = append(n.resultOut, entry)
	n.armFlush()
}

// onOrgResults receives other organizations' signed results (delegate only).
func (n *NormalNode) onOrgResults(m *OrgResultMsg) {
	if !n.isDelegate() {
		return
	}
	for _, e := range m.Entries {
		n.ctx.Elapse(n.c.Cfg.Costs.MACVerify)
		tx, ok := n.pool.byID(e.TxID)
		if !ok {
			// Payload not here yet; buffer through the vector with
			// unknown needs once it arrives. Simplest: stash under
			// a provisional build keyed by TxID.
			vb := n.vectors[e.TxID]
			if vb == nil {
				vb = &vectorBuild{seq: e.Seq, txID: e.TxID, needed: nil,
					got: make(map[string]OrgResult), start: n.ctx.Now()}
				n.vectors[e.TxID] = vb
			}
			vb.got[e.Result.Org] = e.Result
			continue
		}
		if !n.c.Scheme.Verify(crypto.Identity(e.Result.Org),
			orgResultBytes(e.Seq, e.TxID, e.Result.Org, e.Result.Digest, e.Result.Aborted, e.Result.Inconsistent), e.Result.Sig) {
			continue
		}
		n.feedVector(e.Seq, tx, e.Result)
	}
}

func (n *NormalNode) armFlush() {
	if n.flushArm {
		return
	}
	n.flushArm = true
	n.ctx.After(n.c.Cfg.ResultFlushInterval, func(c2 *simnet.Context) {
		n.bind(c2, func() {
			n.flushArm = false
			n.flushResults()
		})
	})
}

// flushResults sends batched org results to peer delegates and approved
// vectors to all consensus nodes (the multi-write, §4.4).
func (n *NormalNode) flushResults() {
	if len(n.orgOut) > 0 {
		orgs := make([]int, 0, len(n.orgOut))
		for o := range n.orgOut {
			orgs = append(orgs, o)
		}
		sort.Ints(orgs)
		for _, o := range orgs {
			entries := n.orgOut[o]
			delete(n.orgOut, o)
			// One batch signature per message.
			n.ctx.Elapse(n.c.Cfg.Costs.SigSign)
			n.ctx.Send(n.c.Orgs[o][0].ep.ID(), &OrgResultMsg{Entries: entries})
		}
	}
	if len(n.resultOut) > 0 {
		entries := n.resultOut
		n.resultOut = nil
		n.ctx.Elapse(n.c.Cfg.Costs.SigSign)
		for _, cn := range n.c.ConsNodes {
			n.ctx.Send(cn.ep.ID(), &ResultMsg{Entries: entries})
		}
	}
}

// onPersist counts PERSIST echoes; 2f+1 matching vectors mark the result
// persisted (Algo 2 lines 15-18).
func (n *NormalNode) onPersist(from simnet.NodeID, m *PersistMsg) {
	n.c.Collector.Reg.Inc("nn.persist_msgs", 1)
	cn, ok := n.c.cnIndex[from]
	if !ok || cn != m.Node {
		return
	}
	// PERSIST batches are authenticated with the hybrid MAC mechanism
	// (§4.1 applies it to replica-to-replica traffic as in Aardvark):
	// verification is MAC-rate, so large consensus clusters do not choke
	// normal nodes on persist-echo verification.
	n.ctx.Elapse(n.c.Cfg.Costs.MACVerify)
	if !n.c.Scheme.Verify(cnIdentity(m.Node), persistSigningBytes(m.Node, m.Entries), m.Sig) {
		n.c.Collector.Reg.Inc("nn.persist_badsig", 1)
		return
	}
	progressed := false
	for _, e := range m.Entries {
		if n.pool.isCommitted(e.TxID) {
			continue
		}
		ps := n.persist[e.Seq]
		if ps == nil {
			ps = &persistStatus{}
			n.persist[e.Seq] = ps
		}
		if ps.persisted {
			continue
		}
		if ps.vote(e.contentKey(), m.Node) >= n.c.Cfg.quorum() {
			ps.persisted = true
			ps.consistent = e.Consistent
			ps.resultDig = e.ResultDigest
			ps.writes = e.Writes
			ps.aborted = e.Aborted
			progressed = true
			if n.isDelegate() {
				if vb, ok := n.vectors[e.TxID]; ok && vb.sent {
					n.c.Collector.Phase("persist", n.ctx.Now()-vb.start)
					delete(n.vectors, e.TxID)
					if tr := n.c.tracer; tr != nil {
						tr.TxStage(e.TxID, trace.StagePersisted, int(n.ep.ID()), n.ctx.Now())
					}
				}
			}
		}
	}
	if progressed {
		n.processBlocks()
	}
}

// --- Phase 5: commit --------------------------------------------------------

func (n *NormalNode) onBlock(m *BlockMsg) {
	if _, ok := n.blockBuf[m.Number]; ok || m.Number < n.commitHeight {
		return
	}
	seqs, hashes, err := types.DecodeOrdering(m.Ordering)
	if err != nil || m.Cert == nil {
		return
	}
	// Verify the 2f+1 certificate (Algo 2 line 9). Modern BFT
	// deployments aggregate certificates (threshold signatures / batched
	// verification), so the cost is one signature verification plus a
	// MAC-rate scan of the shares rather than 2f+1 full verifications.
	n.ctx.Elapse(n.c.Cfg.Costs.SigVerify + time.Duration(n.c.Cfg.quorum())*n.c.Cfg.Costs.MACVerify)
	// A zero-digest certificate over an empty ordering is a null block
	// (a new leader's sequence-hole filler): the quorum signed the zero
	// digest directly, so the ordering-digest equation does not apply.
	null := len(seqs) == 0 && m.Cert.Digest == (crypto.Digest{})
	if m.Cert.Number != m.Number || (!null && m.Cert.Digest != m.OrderingDig()) {
		return
	}
	if !m.Cert.Verify(n.c.Scheme, cnIdentity, n.c.Cfg.quorum()) {
		return
	}
	for i, h := range hashes {
		n.agreed[h] = seqs[i]
		// Evict a conflicting squatter immediately if the agreed payload
		// is already pooled under a different slot (cannot happen: pool
		// is hash-unique) or a different transaction occupies the slot
		// while the agreed payload is known via a previous fetch.
		if occ, ok := n.pool.at(seqs[i]); ok && occ.ID() != h {
			atomic.AddUint64(&n.c.Collector.Conflicts, 1)
		}
	}
	n.blockBuf[m.Number] = &pendingBlock{
		number: m.Number, seqs: seqs, hashes: hashes, cert: m.Cert, arrived: n.ctx.Now(),
	}
	n.processBlocks()
}

// processBlocks drives the in-order commit pipeline.
func (n *NormalNode) processBlocks() {
	for {
		pb, ok := n.blockBuf[n.commitHeight]
		if !ok {
			return
		}
		if !n.tryCommitBlock(pb) {
			return
		}
		delete(n.blockBuf, n.commitHeight)
		n.commitHeight++
	}
}

// tryCommitBlock returns true when the block fully committed.
func (n *NormalNode) tryCommitBlock(pb *pendingBlock) bool {
	// Step 1: ensure payloads. Relatedness is only knowable with the
	// payload, so missing ones are fetched from the block's proposer.
	var missing []types.TxID
	for _, h := range pb.hashes {
		if _, ok := n.pool.byID(h); !ok && !n.pool.isCommitted(h) {
			missing = append(missing, h)
		}
	}
	if len(missing) > 0 {
		if !pb.fetching {
			pb.fetching = true
			target := n.c.ConsNodes[n.c.policy.Leader(pb.cert.View)]
			n.ctx.Send(target.ep.ID(), &FetchReq{Hashes: missing})
			// Retry against other consensus nodes if the proposer is
			// unresponsive.
			n.ctx.After(4*n.c.Cfg.SeqFlushInterval+2*n.c.Cfg.Topology.IntraLatency, func(c2 *simnet.Context) {
				n.bind(c2, func() { pb.fetching = false; n.processBlocks() })
			})
		}
		return false
	}

	// Step 2: classify related entries and detect speculation mismatches.
	type relEntry struct {
		seq uint64
		tx  *types.Transaction
	}
	var related []relEntry
	mismatch := false
	for i, h := range pb.hashes {
		if n.pool.isCommitted(h) {
			continue
		}
		tx, _ := n.pool.byID(h)
		if !n.structOK(tx) {
			n.invalid[h] = true
			n.checked[h] = true
			continue
		}
		if !tx.RelatedTo(n.orgName) {
			continue
		}
		seq := pb.seqs[i]
		if !n.verifyTx(tx) {
			// Invalid: vote aborted so the persist round completes.
			if ps := n.persist[seq]; n.isDelegate() && (ps == nil || !ps.persisted) && !pb.executed {
				n.routeInvalid(seq, tx)
			}
			continue
		}
		if sr, ok := n.spec[seq]; ok && sr.txID != h {
			mismatch = true
		}
		related = append(related, relEntry{seq: seq, tx: tx})
	}

	// Step 3: if any related transaction was not cleanly speculated, fall
	// back to the sequential workflow: discard all speculative state and
	// re-execute every related transaction of the block in order against
	// the committed state (§4.3 Phase 5). Executing only the missing ones
	// against the live overlay would be wrong — the overlay may contain
	// writes of later-sequenced transactions.
	if !pb.executed {
		pb.executed = true
		clean := !mismatch
		if clean {
			for _, re := range related {
				if sr, ok := n.spec[re.seq]; !ok || sr.txID != re.tx.ID() {
					clean = false
					break
				}
			}
		}
		if clean {
			atomic.AddUint64(&n.c.Collector.SpecMatched, uint64(len(related)))
		} else {
			n.specReset()
			for _, re := range related {
				n.ctx.Elapse(n.c.Cfg.Costs.ExecTxn)
				rw := n.c.Registry.Execute(n.overlay, re.tx, n.nondet)
				var res OrgResult
				needResult := false
				if ps := n.persist[re.seq]; n.isDelegate() && (ps == nil || !ps.persisted) {
					res = n.makeOrgResult(re.seq, re.tx, rw)
					needResult = true
				}
				n.overlayApply(rw)
				sr := &specResult{txID: re.tx.ID(), rw: rw}
				if needResult {
					sr.orgRes = &res
				}
				n.spec[re.seq] = sr
				atomic.AddUint64(&n.c.Collector.Reexecuted, 1)
				if needResult {
					n.routeOrgResult(re.seq, re.tx, res)
				}
			}
			// Results flushed immediately: commit is waiting on them.
			n.flushResults()
		}
	}

	// Step 4: wait until every valid transaction's result persisted.
	// Every node applies every committed write set (full world-state
	// replication, as in HLF), so commit gates on all entries, not only
	// related ones.
	stalled := false
	for i, h := range pb.hashes {
		if n.pool.isCommitted(h) || n.invalid[h] {
			continue
		}
		ps := n.persist[pb.seqs[i]]
		if ps == nil || !ps.persisted {
			stalled = true
			break
		}
	}
	if stalled {
		n.armPersistRetry()
		return false
	}

	// Step 5: apply and commit.
	n.ctx.Elapse(n.c.Cfg.Costs.BlockOverhead +
		time.Duration(len(pb.hashes))*n.c.Cfg.Costs.CommitTxn)
	notices := make(map[crypto.Identity][]CommitEntry)
	for i, h := range pb.hashes {
		if n.pool.isCommitted(h) {
			continue
		}
		seq := pb.seqs[i]
		tx, _ := n.pool.byID(h)
		aborted := false
		if n.invalid[h] {
			aborted = true
		} else {
			ps := n.persist[seq]
			if ps.consistent && !ps.aborted {
				n.base.Apply(ps.writes, ledger.Version{Block: pb.number, Tx: i})
			} else {
				aborted = true
				if !ps.consistent {
					atomic.AddUint64(&n.c.Collector.NondetAborts, 1)
				}
			}
		}
		n.pool.markCommitted(h)
		delete(n.spec, seq)
		delete(n.arrival, seq)
		delete(n.persist, seq)
		// The corresponding org's delegate notifies the client.
		if n.isDelegate() && tx != nil && orgIndex(tx.CorrespondingOrg()) == n.org {
			notices[tx.Client] = append(notices[tx.Client], CommitEntry{TxID: h, Aborted: aborted})
		}
	}
	blk := &types.Block{Number: pb.number, Prev: n.blocks.LastDigest(), Seqs: pb.seqs, Hashes: pb.hashes, Cert: pb.cert}
	if err := n.blocks.Append(blk); err != nil {
		n.c.safetyViolation("block append: " + err.Error())
	}
	n.c.Collector.Phase("commit", n.ctx.Now()-pb.arrived)

	clients := make([]crypto.Identity, 0, len(notices))
	for cl := range notices {
		clients = append(clients, cl)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	for _, cl := range clients {
		if ep, ok := n.c.clientEps[cl]; ok {
			n.ctx.Send(ep, &CommitNotice{Entries: notices[cl]})
		}
	}

	// Resume speculation past the block (null blocks carry no sequences).
	if len(pb.seqs) > 0 {
		if last := pb.seqs[len(pb.seqs)-1]; n.specNext <= last {
			n.specNext = last + 1
		}
	}
	n.trySpeculate()
	return true
}

// onChainStatus fetches blocks this node missed (BlockMsg loss recovery).
func (n *NormalNode) onChainStatus(from simnet.NodeID, m *ChainStatus) {
	if m.Height <= n.commitHeight || n.blockFetching {
		return
	}
	// Only fetch numbers not already buffered.
	need := false
	for num := n.commitHeight; num < m.Height; num++ {
		if _, ok := n.blockBuf[num]; !ok {
			need = true
			break
		}
	}
	if !need {
		return
	}
	n.blockFetching = true
	n.ctx.Send(from, &BlockFetchReq{From: n.commitHeight, To: m.Height})
	n.ctx.After(2*n.c.Cfg.BlockTimeout, func(c2 *simnet.Context) {
		n.bind(c2, func() { n.blockFetching = false })
	})
}

func (n *NormalNode) onFetchResp(m *FetchResp) {
	n.onSeqBatch(&SeqBatch{Txns: m.Txns})
	n.processBlocks()
}

// armPersistRetry arms a watchdog over the commit pipeline's head block:
// while any block is pending, the node periodically re-requests stored
// PERSIST entries from all consensus nodes, re-routes its own signed
// partitions, and (as corresponding-org delegate) re-sends completed
// vectors — recovering persist rounds stalled by packet loss.
func (n *NormalNode) armPersistRetry() {
	if n.persistRetryArm {
		return
	}
	n.persistRetryArm = true
	n.ctx.After(2*n.c.Cfg.BlockTimeout, func(c2 *simnet.Context) {
		n.bind(c2, func() {
			n.persistRetryArm = false
			pb, ok := n.blockBuf[n.commitHeight]
			if !ok {
				return // pipeline empty; the next stall re-arms
			}
			var stalled []uint64
			for i, h := range pb.hashes {
				if n.pool.isCommitted(h) || n.invalid[h] {
					continue
				}
				if ps := n.persist[pb.seqs[i]]; ps == nil || !ps.persisted {
					// Lazy fallback: a quiet persist round may mean the
					// transaction is invalid and its related orgs already
					// moved on. Any node can verify the client signature
					// itself (normally skipped for unrelated transactions
					// to save CPU, §4.1); an invalid result unblocks the
					// commit without a persist round.
					if tx, ok := n.pool.byID(h); ok && !n.checked[h] {
						if !n.verifyTx(tx) {
							continue
						}
					}
					stalled = append(stalled, pb.seqs[i])
					if tx, ok := n.pool.byID(h); ok && tx.RelatedTo(n.orgName) && n.isDelegate() {
						if n.invalid[h] {
							n.routeInvalid(pb.seqs[i], tx)
						} else if sr, ok := n.spec[pb.seqs[i]]; ok && sr.orgRes != nil {
							n.routeOrgResult(pb.seqs[i], tx, *sr.orgRes)
						}
						if vb, ok := n.vectors[h]; ok && vb.sent {
							vb.sent = false
							n.tryFinishVector(tx, vb)
						}
					}
				}
			}
			if len(stalled) > 0 {
				atomic.AddUint64(&n.c.Collector.RetransmitReqs, 1)
				n.flushResults()
				for _, cn := range n.c.ConsNodes {
					c2.Send(cn.ep.ID(), &PersistFetchReq{Seqs: stalled})
				}
			} else {
				n.processBlocks()
			}
			if _, pending := n.blockBuf[n.commitHeight]; pending {
				n.armPersistRetry()
			}
		})
	})
}

// onDenyUpdate applies consensus nodes' denylist updates once f+1 distinct
// nodes vouch for a client (a single Byzantine consensus node must not be
// able to deny arbitrary clients' speculation).
func (n *NormalNode) onDenyUpdate(m *DenyUpdate) {
	n.ctx.Elapse(n.c.Cfg.Costs.SigVerify)
	if !n.c.Scheme.Verify(cnIdentity(m.Node), denySigningBytes(m.Node, m.Clients), m.Sig) {
		return
	}
	for _, cl := range m.Clients {
		set := n.denyVotes[cl]
		if set == nil {
			set = make(map[int]bool)
			n.denyVotes[cl] = set
		}
		set[m.Node] = true
		if len(set) >= n.c.Cfg.F+1 {
			n.deny[cl] = true
		}
	}
}
