package core

import (
	"sort"

	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/trace"
	"github.com/bidl-framework/bidl/internal/types"
)

// ClientNode models one BIDL client: it submits signed transactions to the
// current leader's sequencer (Phase 1), tracks commit notifications for
// latency measurement, and retransmits uncommitted transactions to all
// consensus nodes after a timeout (§4.5, the liveness path).
type ClientNode struct {
	c  *Cluster
	id crypto.Identity
	ep *simnet.Endpoint

	pending    map[types.TxID]*types.Transaction
	retryArmed bool

	// hook, when non-nil, observes every commit-notice entry addressed to
	// this client after pending bookkeeping — the sharded harness's 2PC
	// coordinator rides on a dedicated client per shard (DESIGN.md §14).
	hook func(ctx *simnet.Context, e CommitEntry)
	// quiet suppresses collector accounting and trace stages: coordinator
	// sub-transactions are pipeline internals, not workload transactions,
	// and must not distort throughput/latency metrics. The pending map and
	// retransmission path stay live so §4.5 liveness covers sub-txns too.
	quiet bool
}

// Endpoint returns the client's simnet endpoint.
func (cl *ClientNode) Endpoint() *simnet.Endpoint { return cl.ep }

// Pending returns how many transactions await commit notification.
func (cl *ClientNode) Pending() int { return len(cl.pending) }

// OnMessage implements simnet.Handler.
func (cl *ClientNode) OnMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case *CommitNotice:
		for _, e := range m.Entries {
			if _, ok := cl.pending[e.TxID]; !ok {
				continue
			}
			delete(cl.pending, e.TxID)
			if !cl.quiet {
				cl.c.Collector.Committed(e.TxID, ctx.Now(), e.Aborted)
				if tr := cl.c.tracer; tr != nil {
					tr.TxStage(e.TxID, trace.StageNotified, int(cl.ep.ID()), ctx.Now())
				}
			}
			if cl.hook != nil {
				cl.hook(ctx, e)
			}
		}
	case *SubmitBatch:
		// Self-delivered by Cluster.SubmitAt: sign-off and send onward.
		cl.submit(ctx, m.Txns)
	}
}

// submit records and forwards a batch to the current leader's sequencer.
func (cl *ClientNode) submit(ctx *simnet.Context, txns []*types.Transaction) {
	for _, tx := range txns {
		cl.pending[tx.ID()] = tx
		if !cl.quiet {
			cl.c.Collector.Submitted(tx.ID(), ctx.Now())
			if tr := cl.c.tracer; tr != nil {
				tr.TxStage(tx.ID(), trace.StageSubmit, int(cl.ep.ID()), ctx.Now())
			}
		}
	}
	leader := cl.c.leaderIdx()
	ctx.Send(cl.c.Sequencers[leader].ep.ID(), &SubmitBatch{Txns: txns})
	cl.armRetry(ctx)
}

// armRetry schedules the §4.5 client retransmission check.
func (cl *ClientNode) armRetry(ctx *simnet.Context) {
	if cl.retryArmed || cl.c.Cfg.ClientTimeout <= 0 {
		return
	}
	cl.retryArmed = true
	ctx.After(cl.c.Cfg.ClientTimeout, func(c2 *simnet.Context) {
		cl.retryArmed = false
		if len(cl.pending) == 0 {
			return
		}
		// Retransmit everything still pending to all consensus nodes.
		var txns []*types.Transaction
		for _, tx := range cl.pending {
			txns = append(txns, tx)
		}
		sortTxns(txns)
		for _, cn := range cl.c.ConsNodes {
			c2.Send(cn.ep.ID(), &RelayBatch{Txns: txns})
		}
		cl.armRetry(c2)
	})
}

// sortTxns orders transactions by (client, nonce) for determinism (map
// iteration order is random).
func sortTxns(txns []*types.Transaction) {
	sort.Slice(txns, func(i, j int) bool {
		if txns[i].Client != txns[j].Client {
			return txns[i].Client < txns[j].Client
		}
		return txns[i].Nonce < txns[j].Nonce
	})
}
