package core

import (
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/workload"
)

// smallConfig builds a quick 4-CN / 8-org cluster for tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumOrgs = 8
	cfg.BlockSize = 50
	cfg.BlockTimeout = 5 * time.Millisecond
	return cfg
}

// buildCluster wires a cluster with a workload generator.
func buildCluster(t testing.TB, cfg Config, wcfg workload.Config) (*Cluster, *workload.Generator) {
	t.Helper()
	c := NewCluster(cfg)
	wcfg.NumOrgs = cfg.NumOrgs
	gen := workload.NewGenerator(wcfg, c.Scheme)
	ids := make([]crypto.Identity, wcfg.NumClients)
	for i := range ids {
		ids[i] = gen.Client(i)
	}
	c.RegisterClients(ids)
	c.Prepopulate(gen.Prepopulate)
	return c, gen
}

func defaultWorkload() workload.Config {
	w := workload.DefaultConfig(8)
	w.NumClients = 20
	w.Accounts = 800
	return w
}

func TestEndToEndCommit(t *testing.T) {
	c, gen := buildCluster(t, smallConfig(), defaultWorkload())
	const n = 200
	txns := gen.Batch(n)
	for i, tx := range txns {
		c.SubmitAt(time.Duration(i)*50*time.Microsecond, tx)
	}
	c.Run(2 * time.Second)
	if got := c.Collector.NumCommitted(); got != n {
		t.Fatalf("committed %d of %d transactions", got, n)
	}
	if ab := c.Collector.NumAborted(); ab != 0 {
		t.Fatalf("%d aborts in a fault-free deterministic run", ab)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestSpeculationSucceedsFaultFree(t *testing.T) {
	c, gen := buildCluster(t, smallConfig(), defaultWorkload())
	for i, tx := range gen.Batch(300) {
		c.SubmitAt(time.Duration(i)*30*time.Microsecond, tx)
	}
	c.Run(2 * time.Second)
	if c.Collector.NumCommitted() != 300 {
		t.Fatalf("committed %d of 300", c.Collector.NumCommitted())
	}
	// Nearly everything should commit via the speculative fast path; the
	// first block after genesis may re-execute due to the bootstrap gap.
	if rate := c.Collector.SpecSuccessRate(); rate < 0.90 {
		t.Fatalf("speculation success rate %.2f, want >= 0.90", rate)
	}
	if c.Collector.Reexecuted > 40 {
		t.Fatalf("%d re-executions in fault-free run", c.Collector.Reexecuted)
	}
}

func TestLatencyIsMilliseconds(t *testing.T) {
	c, gen := buildCluster(t, smallConfig(), defaultWorkload())
	for i, tx := range gen.Batch(200) {
		c.SubmitAt(time.Duration(i)*50*time.Microsecond, tx)
	}
	c.Run(2 * time.Second)
	avg := c.Collector.AvgLatency(0, 2*time.Second)
	if avg <= 0 || avg > 100*time.Millisecond {
		t.Fatalf("average latency %v; expected low tens of ms", avg)
	}
}

func TestContendedWorkloadZeroAborts(t *testing.T) {
	// §6.3: BIDL eliminates contention aborts by executing in sequence
	// order.
	w := defaultWorkload()
	w.ContentionRatio = 0.5
	c, gen := buildCluster(t, smallConfig(), w)
	for i, tx := range gen.Batch(400) {
		c.SubmitAt(time.Duration(i)*30*time.Microsecond, tx)
	}
	c.Run(3 * time.Second)
	if got := c.Collector.NumCommitted(); got != 400 {
		t.Fatalf("committed %d of 400 under contention", got)
	}
	if ab := c.Collector.NumAborted(); ab != 0 {
		t.Fatalf("%d aborts under contention; BIDL should have zero", ab)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestNondeterministicTxnsAbortButStateConsistent(t *testing.T) {
	w := defaultWorkload()
	w.NondetRatio = 0.2
	cfg := smallConfig()
	cfg.NormalPerOrg = 2 // intra-org state comparison is meaningful
	c, gen := buildCluster(t, cfg, w)
	for i, tx := range gen.Batch(300) {
		c.SubmitAt(time.Duration(i)*50*time.Microsecond, tx)
	}
	c.Run(3 * time.Second)
	if got := c.Collector.NumCommitted(); got != 300 {
		t.Fatalf("committed %d of 300", got)
	}
	if c.Collector.NumAborted() == 0 {
		t.Fatal("expected non-deterministic transactions to abort")
	}
	// Aborts should be roughly the nondet share; deterministic transfers
	// must not abort. Some cascading aborts are possible.
	if rate := c.Collector.AbortRate(); rate < 0.10 || rate > 0.40 {
		t.Fatalf("abort rate %.2f, want ≈ nondet ratio 0.2", rate)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestPacketLossRecovery(t *testing.T) {
	cfg := smallConfig()
	cfg.Topology.LossRate = 0.02
	c, gen := buildCluster(t, cfg, defaultWorkload())
	for i, tx := range gen.Batch(200) {
		c.SubmitAt(time.Duration(i)*50*time.Microsecond, tx)
	}
	c.Run(4 * time.Second)
	if got := c.Collector.NumCommitted(); got < 195 {
		t.Fatalf("committed %d of 200 under 2%% loss", got)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, time.Duration, uint64) {
		c, gen := buildCluster(t, smallConfig(), defaultWorkload())
		for i, tx := range gen.Batch(150) {
			c.SubmitAt(time.Duration(i)*60*time.Microsecond, tx)
		}
		c.Run(time.Second)
		return c.Collector.NumCommitted(), c.Collector.AvgLatency(0, time.Second), c.Sim.Events()
	}
	n1, l1, e1 := run()
	n2, l2, e2 := run()
	if n1 != n2 || l1 != l2 || e1 != e2 {
		t.Fatalf("runs diverge: (%d,%v,%d) vs (%d,%v,%d)", n1, l1, e1, n2, l2, e2)
	}
}

func TestMoneyConservedAcrossCluster(t *testing.T) {
	w := defaultWorkload()
	w.ContentionRatio = 0.3
	c, gen := buildCluster(t, smallConfig(), w)
	for i, tx := range gen.Batch(300) {
		c.SubmitAt(time.Duration(i)*40*time.Microsecond, tx)
	}
	c.Run(3 * time.Second)
	// Each account lives with its org's normal node; checking balances
	// summed over owning orgs must equal the initial total.
	total := int64(0)
	for o, org := range c.Orgs {
		nn := org[0]
		for i := 0; i < w.Accounts; i++ {
			if i%c.Cfg.NumOrgs != o {
				continue
			}
			raw, _, ok := nn.base.Get("sb:chk:acct-" + itoa(i))
			if !ok {
				t.Fatalf("account %d missing at org %d", i, o)
			}
			total += parseI64(raw)
		}
	}
	want := int64(w.Accounts) * w.InitialBalance
	if total != want {
		t.Fatalf("total checking %d, want %d (money not conserved)", total, want)
	}
}

func itoa(i int) string {
	return string([]byte(timeFormat(i)))
}

func timeFormat(i int) []byte {
	if i == 0 {
		return []byte{'0'}
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return b
}

func parseI64(b []byte) int64 {
	var v int64
	neg := false
	for i, c := range b {
		if i == 0 && c == '-' {
			neg = true
			continue
		}
		v = v*10 + int64(c-'0')
	}
	if neg {
		return -v
	}
	return v
}

func TestTimelineShowsSteadyThroughput(t *testing.T) {
	c, gen := buildCluster(t, smallConfig(), defaultWorkload())
	// Offered load: 10k txns/s for 1 second.
	for i := 0; i < 10000; i += 10 {
		c.SubmitAt(time.Duration(i)*100*time.Microsecond, gen.Batch(10)...)
	}
	c.Run(1500 * time.Millisecond)
	if got := c.Collector.NumCommitted(); got < 9500 {
		t.Fatalf("committed %d of 10000 at 10k tps", got)
	}
	buckets := c.Collector.Timeline(100*time.Millisecond, time.Second)
	// Steady state: middle buckets near 10k tps.
	for i := 3; i < 9; i++ {
		if buckets[i] < 5000 {
			t.Fatalf("bucket %d throughput %.0f tps; pipeline stalled", i, buckets[i])
		}
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}
