package core

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"github.com/bidl-framework/bidl/internal/consensus"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/trace"
	"github.com/bidl-framework/bidl/internal/types"
)

// Multicast group names.
const (
	groupTxns    = "bidl/txns"    // sequencer multicast: all CNs + NNs
	groupBlocks  = "bidl/blocks"  // block dissemination: all NNs + CNs
	groupPersist = "bidl/persist" // PERSIST echoes: all NNs
)

// storedResult is a consensus node's localStore() record: at most one
// result vector per sequence number (§4.4, Lemma 5.2).
type storedResult struct {
	entry      ResultEntry
	vecDigest  crypto.Digest
	consistent bool
	resultDig  crypto.Digest
}

// deliveredBlock is an agreed-but-not-yet-processed consensus decision.
type deliveredBlock struct {
	seqs   []uint64
	hashes []types.TxID
	cert   *types.Certificate
	at     time.Duration
}

// ConsNode is one BIDL consensus node: it hosts the blackbox BFT replica
// (Phase 3), forms block proposals from sequenced transactions, assembles
// and disseminates agreed blocks, echoes PERSIST messages (Phase 4-2), and
// shepherds the workflow (§4.5–§4.6).
type ConsNode struct {
	c   *Cluster
	idx int
	org int
	ep  *simnet.Endpoint
	ctx *simnet.Context

	replica consensus.Replica

	pool *txPool
	// auth records the sequence assignments received from this node's own
	// co-located sequencer: the leader proposes exactly these (Def 4.1
	// makes the proposal authoritative), never pool entries that a racing
	// broadcaster planted at future slots.
	auth map[uint64]types.TxID
	// watermark: sequence numbers <= watermark have been proposed (or
	// abandoned to an older leadership term).
	watermark   uint64
	maxSeen     uint64
	timerArmed  bool
	statusArmed bool
	// Last sequencer-activation parameters, re-asserted by the status
	// ticker: the handoff message itself can be lost to a drop fault.
	seqActView  uint64
	seqActStart uint64

	// delivered consensus decisions by block number; chainHeight is the
	// next block number to process.
	delivered     map[uint64]*deliveredBlock
	chainHeight   uint64
	blockFetching bool
	blocks        *ledger.BlockStore
	// agreed maps sequence number → agreed transaction hash; agreedView
	// records the view each sequence was agreed in (shepherd accounting).
	// proposedHash records leader proposals pre-agreement: result vectors
	// matching a proposal persist immediately (Algo 1 line 17), which is
	// why the persist round is masked by the consensus phase (§4.4).
	agreed       map[uint64]types.TxID
	agreedView   map[uint64]uint64
	proposedHash map[uint64]types.TxID
	// agreedHash is the set of hashes in agreed blocks.
	agreedHash map[types.TxID]bool
	// proposeTime records when this node proposed each ordering digest
	// (leader-side consensus latency, Table 3 P1).
	proposeTime map[crypto.Digest]time.Duration

	// persist protocol state.
	resultsBuf map[uint64][]ResultEntry
	persisted  map[uint64]*storedResult
	persistOut []PersistEntry
	persistArm bool

	// shepherding state (§4.5/§4.6).
	suspects    map[crypto.Identity]map[int]bool
	maliceVotes map[crypto.Identity]bool
	denylist    map[crypto.Identity]bool
	viewConf    int // conflicts observed this view
	viewTotal   int // transactions agreed this view
	viewMis     int // result mismatches this view
	vcRequested bool

	// watchlist holds client-retransmitted transactions pending the §4.5
	// liveness check.
	watch map[types.TxID]bool
}

// Endpoint returns the node's simnet endpoint.
func (n *ConsNode) Endpoint() *simnet.Endpoint { return n.ep }

// Replica exposes the hosted consensus replica (tests and attacks).
func (n *ConsNode) Replica() consensus.Replica { return n.replica }

// DebugSuspects summarizes the suspect list (diagnostics).
func (n *ConsNode) DebugSuspects() string {
	out := ""
	for c, set := range n.suspects {
		out += fmt.Sprintf("%s:%d ", c, len(set))
	}
	return out
}

// DebugMalice returns local malice verdicts (diagnostics).
func (n *ConsNode) DebugMalice() []crypto.Identity {
	var out []crypto.Identity
	for c := range n.maliceVotes {
		out = append(out, c)
	}
	return out
}

// DebugHasPersist reports whether this node stored a persist record for seq.
func (n *ConsNode) DebugHasPersist(seq uint64) bool {
	_, ok := n.persisted[seq]
	return ok
}

// ChainHeight returns the number of processed agreed blocks.
func (n *ConsNode) ChainHeight() uint64 { return n.chainHeight }

// Denylist returns the node's current denylist (test inspection).
func (n *ConsNode) Denylist() map[crypto.Identity]bool { return n.denylist }

func newConsNode(c *Cluster, idx, org int) *ConsNode {
	return &ConsNode{
		c:            c,
		idx:          idx,
		org:          org,
		pool:         newTxPool(),
		auth:         make(map[uint64]types.TxID),
		delivered:    make(map[uint64]*deliveredBlock),
		blocks:       ledger.NewBlockStore(),
		agreed:       make(map[uint64]types.TxID),
		agreedView:   make(map[uint64]uint64),
		proposedHash: make(map[uint64]types.TxID),
		agreedHash:   make(map[types.TxID]bool),
		proposeTime:  make(map[crypto.Digest]time.Duration),
		resultsBuf:   make(map[uint64][]ResultEntry),
		persisted:    make(map[uint64]*storedResult),
		suspects:     make(map[crypto.Identity]map[int]bool),
		maliceVotes:  make(map[crypto.Identity]bool),
		denylist:     make(map[crypto.Identity]bool),
		watch:        make(map[types.TxID]bool),
	}
}

// OnStart implements simnet.Starter: the view-0 leader activates its
// sequencer, and every consensus node arms the chain-status ticker that
// lets normal nodes recover lost block disseminations.
func (n *ConsNode) OnStart(ctx *simnet.Context) {
	n.bind(ctx, func() {
		n.replica.Start()
		if n.replica.IsLeader() {
			n.activateSequencer(0)
		}
		n.statusTick()
	})
}

// statusTick periodically advertises the processed chain height (leader
// only) so normal nodes that lost a BlockMsg can fetch it back. The armed
// guard keeps exactly one ticker alive even when a crash/restart cycle
// re-arms it before the crashed ticker's timer would have fired.
func (n *ConsNode) statusTick() {
	if n.statusArmed {
		return
	}
	n.statusArmed = true
	interval := 2 * n.c.Cfg.BlockTimeout
	if interval <= 0 {
		interval = 20 * time.Millisecond
	}
	n.host().After(interval, func() {
		n.statusArmed = false
		if n.replica.IsLeader() && n.chainHeight > 0 {
			n.ctx.Multicast(n.c.groupBlocks, &ChainStatus{Height: n.chainHeight})
		}
		// Re-assert the co-located sequencer's desired state: the
		// activation handoff is just a message, and losing it (e.g. to a
		// storm targeting the freshly elected leader) would otherwise
		// leave the term without a working sequencer until the next view
		// change. The sequencer treats repeats idempotently.
		n.ctx.Send(n.c.Sequencers[n.idx].ep.ID(), &seqActivate{
			Active: n.replica.IsLeader(), View: n.seqActView, StartSeq: n.seqActStart,
		})
		n.statusTick()
	})
}

// OnRestart implements simnet.Restarter: every timer died with the crash,
// so the guard flags must reset (or proposals and persist flushes would
// never re-arm) and the free-running chain-status ticker restarts. The BFT
// replica itself stays passive until peers' messages drive it — a restarted
// replica whose progress timer was lost cannot initiate view changes, which
// is within the f-faulty budget the protocol already tolerates.
func (n *ConsNode) OnRestart(ctx *simnet.Context) {
	n.bind(ctx, func() {
		n.timerArmed = false
		n.persistArm = false
		n.statusArmed = false
		n.blockFetching = false
		n.statusTick()
		if len(n.persistOut) > 0 {
			n.flushPersist()
		}
		if n.replica.IsLeader() {
			n.maybePropose()
		}
	})
}

// bind makes ctx current for the duration of fn.
func (n *ConsNode) bind(ctx *simnet.Context, fn func()) {
	prev := n.ctx
	n.ctx = ctx
	defer func() { n.ctx = prev }()
	fn()
}

// OnMessage implements simnet.Handler.
func (n *ConsNode) OnMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	n.bind(ctx, func() {
		// Concrete BIDL messages first: consensus.Msg is satisfied by any
		// sized message, so it must be the fallback case.
		switch m := msg.(type) {
		case *SeqBatch:
			n.onSeqBatchFrom(from, m)
		case *ResultMsg:
			n.onResults(m)
		case *FetchReq:
			n.onFetch(from, m)
		case *FetchResp:
			n.onFetchResp(m)
		case *RelayBatch:
			n.onClientRelay(m)
		case *BlockFetchReq:
			n.onBlockFetch(from, m)
		case *PersistFetchReq:
			n.onPersistFetch(from, m)
		case *ChainStatus:
			n.onPeerChainStatus(from, m)
		case *BlockMsg:
			n.onBlockMsg(m)
		case consensus.Msg:
			if idx, ok := n.c.cnIndex[from]; ok {
				n.replica.Step(idx, m)
			}
		}
	})
}

// --- Phase 2 ingestion ----------------------------------------------------

// onSeqBatchFrom ingests sequenced transactions. Batches from this node's
// own co-located sequencer are authoritative: the leader proposes what its
// sequencer actually assigned (Def 4.1 makes the proposal the reference),
// so a racing broadcaster cannot poison the proposal itself — only other
// nodes' speculation.
func (n *ConsNode) onSeqBatchFrom(from simnet.NodeID, m *SeqBatch) {
	authoritative := from == n.c.Sequencers[n.idx].ep.ID()
	for _, st := range m.Txns {
		// Replay check: one SHA-256 over the ~1KB payload.
		n.ctx.Elapse(n.c.Cfg.Costs.Hash(st.Tx.Size()))
		if n.denylist[st.Tx.Client] {
			continue
		}
		if st.Seq > n.maxSeen {
			n.maxSeen = st.Seq
		}
		if authoritative {
			n.pool.replace(st.Seq, st.Tx)
			n.auth[st.Seq] = st.Tx.ID()
			continue
		}
		res := n.pool.add(st.Seq, st.Tx)
		if res == poolDupSeq && n.agreedHash[st.Tx.ID()] {
			// Agreed transactions evict crafted squatters.
			n.pool.replace(st.Seq, st.Tx)
			res = poolAdded
		}
		switch res {
		case poolAdded:
		case poolDupSeq:
			// Someone multicast a different transaction under an
			// occupied sequence number: a conflict precursor. The
			// denylist acts on proposal-time conflicts (Def 4.1);
			// here the first-received transaction simply wins.
			atomic.AddUint64(&n.c.Collector.Conflicts, 1)
		case poolDupHash:
			continue
		}
	}
	if n.replica.IsLeader() {
		n.maybePropose()
	}
}

// pooledAbove returns the sorted sequencer-assigned sequence numbers above
// the watermark. Holes (lost sequencer batches) are tolerated: blocks carry
// explicit sequence lists, and late arrivals below the watermark are
// recovered via client retransmission and re-sequencing.
func (n *ConsNode) pooledAbove() []uint64 {
	var seqs []uint64
	for s := range n.auth {
		if s > n.watermark {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// maybePropose forms block proposals from pooled sequence numbers above the
// watermark (Phase 3 start, Algo 1 line 8). Full blocks propose
// immediately; partial blocks wait for BlockTimeout.
func (n *ConsNode) maybePropose() {
	avail := n.pooledAbove()
	for len(avail) >= n.c.Cfg.BlockSize {
		batch := avail[:n.c.Cfg.BlockSize]
		avail = avail[n.c.Cfg.BlockSize:]
		n.proposeSeqs(batch)
	}
	if len(avail) > 0 && !n.timerArmed {
		n.timerArmed = true
		mark := n.watermark
		n.host().After(n.c.Cfg.BlockTimeout, func() {
			n.timerArmed = false
			if !n.replica.IsLeader() {
				return
			}
			if n.watermark == mark {
				if rest := n.pooledAbove(); len(rest) > 0 {
					if len(rest) > n.c.Cfg.BlockSize {
						rest = rest[:n.c.Cfg.BlockSize]
					}
					n.proposeSeqs(rest)
				}
			}
			n.maybePropose()
		})
	}
}

func (n *ConsNode) proposeSeqs(seqs []uint64) {
	hashes := make([]types.TxID, len(seqs))
	for i, s := range seqs {
		hashes[i] = n.auth[s]
		delete(n.auth, s)
	}
	n.watermark = seqs[len(seqs)-1]
	n.propose(seqs, hashes)
}

func (n *ConsNode) propose(seqs []uint64, hashes []types.TxID) {
	ordering := types.EncodeOrdering(seqs, hashes)
	data := ordering
	if n.c.Cfg.ConsensusOnPayload {
		// Opt-disabled mode: the proposal carries full payloads, so the
		// PROPOSE message is ~1 KB per transaction instead of 40 B.
		total := 0
		for _, s := range seqs {
			if tx, ok := n.pool.at(s); ok {
				total += tx.Size()
			}
		}
		data = append(append([]byte{}, ordering...), make([]byte, total)...)
	}
	// Hash the proposal content.
	n.ctx.Elapse(n.c.Cfg.Costs.Hash(len(data)) + n.c.Cfg.Costs.BlockOverhead)
	v := consensus.Value{Digest: types.OrderingDigest(ordering), Data: data}
	n.proposeTime[v.Digest] = n.ctx.Now()
	n.replica.Propose(v)
}

// --- consensus.Host --------------------------------------------------------

func (n *ConsNode) host() *ConsNode { return n }

// Send implements consensus.Host.
func (n *ConsNode) Send(to int, m consensus.Msg) {
	if to == n.idx {
		n.replica.Step(n.idx, m)
		return
	}
	n.ctx.Send(n.c.ConsNodes[to].ep.ID(), m)
}

// BroadcastCN implements consensus.Host.
func (n *ConsNode) BroadcastCN(m consensus.Msg) {
	for i, peer := range n.c.ConsNodes {
		if i == n.idx {
			continue
		}
		n.ctx.Send(peer.ep.ID(), m)
	}
}

// After implements consensus.Host.
func (n *ConsNode) After(d time.Duration, fn func()) {
	n.ctx.After(d, func(c2 *simnet.Context) {
		n.bind(c2, fn)
	})
}

// Elapse implements consensus.Host.
func (n *ConsNode) Elapse(d time.Duration) { n.ctx.Elapse(d) }

// Sign implements consensus.Host.
func (n *ConsNode) Sign(data []byte) crypto.Signature {
	sig, err := n.c.Scheme.Sign(cnIdentity(n.idx), data)
	if err != nil {
		panic(err)
	}
	return sig
}

// VerifyNode implements consensus.Host.
func (n *ConsNode) VerifyNode(node int, data []byte, sig crypto.Signature) bool {
	return n.c.Scheme.Verify(cnIdentity(node), data, sig)
}

// RandInt implements consensus.Host.
func (n *ConsNode) RandInt(m int) int { return n.c.Sim.Rand().Intn(m) }

// ConsensusPhase implements consensus.PhaseRecorder: protocol milestones
// (pre-prepare, prepared, committed, QC formations, ...) land on the tracer's
// consensus track.
func (n *ConsNode) ConsensusPhase(phase string, view, seq uint64) {
	if tr := n.c.tracer; tr != nil {
		tr.Phase(phase, int(n.ep.ID()), view, seq, n.ctx.Now())
	}
}

// Proposed implements consensus.Host: record the leader's proposal so
// matching result vectors can persist without waiting for agreement.
func (n *ConsNode) Proposed(seq uint64, v consensus.Value) {
	seqs, hashes, err := decodeOrderingPrefix(v.Data)
	if err != nil {
		return
	}
	for i, s := range seqs {
		if _, ok := n.proposedHash[s]; !ok {
			n.proposedHash[s] = hashes[i]
		}
	}
	// Evaluate result vectors that were waiting for a proposal.
	for _, s := range seqs {
		if buf, ok := n.resultsBuf[s]; ok {
			delete(n.resultsBuf, s)
			for i := range buf {
				n.evaluateResult(buf[i])
			}
		}
	}
}

// Deliver implements consensus.Host: a block ordering was agreed.
func (n *ConsNode) Deliver(seq uint64, v consensus.Value, cert *types.Certificate) {
	seqs, hashes, err := decodeOrderingPrefix(v.Data)
	if err != nil {
		// Null requests (a new leader's hole filler) and any other
		// undecodable agreed value become empty blocks: every correct
		// node agreed on the same bytes, and in-order delivery must
		// advance past the sequence either way.
		seqs, hashes = nil, nil
	}
	if at, ok := n.proposeTime[v.Digest]; ok {
		n.c.Collector.Phase("consensus", n.ctx.Now()-at)
		delete(n.proposeTime, v.Digest)
	}
	n.delivered[seq] = &deliveredBlock{seqs: seqs, hashes: hashes, cert: cert, at: n.ctx.Now()}
	for {
		blk, ok := n.delivered[n.chainHeight]
		if !ok {
			return
		}
		n.processBlock(n.chainHeight, blk)
		delete(n.delivered, n.chainHeight)
		n.chainHeight++
	}
}

// decodeOrderingPrefix decodes an ordering that may be followed by payload
// bytes (ConsensusOnPayload mode).
func decodeOrderingPrefix(data []byte) ([]uint64, []types.TxID, error) {
	seqs, hashes, err := types.DecodeOrdering(data)
	if err == nil {
		return seqs, hashes, nil
	}
	if len(data) < 4 {
		return nil, nil, err
	}
	count := int(uint32(data[0])<<24 | uint32(data[1])<<16 | uint32(data[2])<<8 | uint32(data[3]))
	end := 4 + count*40
	if end > len(data) {
		return nil, nil, err
	}
	return types.DecodeOrdering(data[:end])
}

// processBlock handles one agreed block in chain order.
func (n *ConsNode) processBlock(number uint64, blk *deliveredBlock) {
	cfg := n.c.Cfg
	leaderOfBlock := n.c.policy.Leader(blk.cert.View)

	invalid := 0
	sampled := 0
	currentView := blk.cert.View == n.replica.View()
	for i, s := range blk.seqs {
		h := blk.hashes[i]
		n.agreed[s] = h
		n.agreedView[s] = blk.cert.View
		n.agreedHash[h] = true
		delete(n.watch, h)
		if currentView {
			n.viewTotal++
		}

		// Def 4.1 conflict detection: local Phase-2 transaction at this
		// sequence number differs from the agreed one.
		if local, ok := n.pool.at(s); ok && local.ID() != h {
			atomic.AddUint64(&n.c.Collector.Conflicts, 1)
			if currentView {
				n.viewConf++
			}
			// A displaced transaction that was agreed under another
			// sequence number is a re-sequencing artifact, not a
			// crafted conflict: suspecting its client would be a
			// false positive (§5.2).
			if !n.agreedHash[local.ID()] {
				n.suspect(local.Client, leaderOfBlock)
			}
			n.pool.drop(s)
		}
		// Sample-verify payloads to catch a garbage-proposing leader
		// (Table 4 S2).
		if cfg.SampleVerify > 0 && sampled < cfg.SampleVerify {
			if tx, ok := n.pool.byID(h); ok {
				sampled++
				n.ctx.Elapse(cfg.Costs.SigVerify)
				if !tx.VerifySig(n.c.Scheme) {
					invalid++
				}
			}
		}
	}

	// Local hash-chained ledger copy.
	b := &types.Block{Number: number, Prev: n.blocks.LastDigest(), Seqs: blk.seqs, Hashes: blk.hashes, Cert: blk.cert}
	if err := n.blocks.Append(b); err == nil {
		n.ctx.Elapse(cfg.Costs.BlockOverhead)
	}

	// Leader disseminates the agreed hash-only block to all normal nodes
	// (end of Phase 3: "assembles transactions into a block and delivers
	// the block to normal nodes").
	if leaderOfBlock == n.idx {
		// A single deterministic authority (the disseminating leader)
		// records agreement for each ordered transaction.
		if tr := n.c.tracer; tr != nil {
			for _, h := range blk.hashes {
				tr.TxStage(h, trace.StageAgreed, int(n.ep.ID()), n.ctx.Now())
			}
		}
		bm := &BlockMsg{Number: number, Ordering: types.EncodeOrdering(blk.seqs, blk.hashes), Cert: blk.cert}
		bm.warmCaches()
		if cfg.DisableMulticast {
			n.ctx.MulticastUnicast(n.c.groupBlocks, bm)
		} else {
			n.ctx.Multicast(n.c.groupBlocks, bm)
		}
	}

	// Evaluate any result vectors that arrived before agreement.
	for _, s := range blk.seqs {
		if buf, ok := n.resultsBuf[s]; ok {
			delete(n.resultsBuf, s)
			for i := range buf {
				n.evaluateResult(buf[i])
			}
		}
	}

	// Shepherding (§4.5): invalid payloads from the leader, or a
	// non-trivial conflict/mismatch rate, trigger a view change.
	if invalid > 0 {
		atomic.AddUint64(&n.c.Collector.RejectedTxns, uint64(invalid))
		n.requestViewChangeOnce()
	}
	if !cfg.DisableDenylist {
		if n.replica.IsLeader() && n.viewConf > 0 {
			// A correct leader proactively rotates on observing
			// conflicts so the adversary cannot confine conflicts to
			// chosen views (§4.6 mechanism 1).
			n.requestViewChangeOnce()
		}
		if n.viewTotal > cfg.BlockSize {
			rate := float64(n.viewConf+n.viewMis) / float64(n.viewTotal)
			if rate > cfg.ReexecThreshold {
				n.requestViewChangeOnce()
			}
		}
	}
}

func (n *ConsNode) requestViewChangeOnce() {
	if n.vcRequested {
		return
	}
	n.vcRequested = true
	n.replica.RequestViewChange()
}

// --- persist protocol (Phase 4-2, Algo 1 lines 16-18) ----------------------

func (n *ConsNode) onResults(m *ResultMsg) {
	for _, e := range m.Entries {
		if h, ok := n.agreed[e.Seq]; ok {
			if h == e.TxID {
				n.evaluateResult(e)
			} else if n.agreedView[e.Seq] == n.replica.View() {
				// Speculation on a conflicting transaction in the
				// current view: feeds the shepherd's re-execution
				// monitor. Stale votes from superseded sequencing
				// terms are not evidence against this view's leader.
				n.viewMis++
			}
		} else {
			n.resultsBuf[e.Seq] = append(n.resultsBuf[e.Seq], e)
		}
	}
}

// evaluateResult implements approved(R) ∧ match(H,R) ∧ localStore(R): the
// vector must match the hash the leader proposed (or that agreement fixed)
// for its sequence number.
func (n *ConsNode) evaluateResult(e ResultEntry) {
	h, ok := n.agreed[e.Seq]
	if !ok {
		h, ok = n.proposedHash[e.Seq]
	}
	if !ok || h != e.TxID {
		return
	}
	if _, stored := n.persisted[e.Seq]; stored {
		// localStore: only one result vector per sequence (§4.4).
		return
	}
	// Verify each org's batch-signed partition (MAC-rate, §4.4) and that
	// the carried writes hash to the signed partition digest.
	for _, r := range e.Vector {
		n.ctx.Elapse(n.c.Cfg.Costs.MACVerify + n.c.Cfg.Costs.Hash(writesSize(r.Writes)))
		// wdOK partitions were digested from these very writes at the
		// construction site; the defensive re-hash only runs for
		// partitions built elsewhere. Virtual cost is charged above
		// either way.
		if !r.wdOK {
			prw := ledger.RWSet{Writes: r.Writes, Aborted: r.Aborted}
			if prw.Digest() != r.Digest {
				return
			}
		}
		if !n.c.Scheme.Verify(crypto.Identity(r.Org),
			orgResultBytes(e.Seq, e.TxID, r.Org, r.Digest, r.Aborted, r.Inconsistent), r.Sig) {
			return
		}
	}
	// approved(R): all related organizations present (checkable when the
	// payload is pooled).
	if tx, ok := n.pool.byID(e.TxID); ok {
		if !vectorApproved(tx, e.Vector) {
			return
		}
	}
	union := e.Union()
	consistent := e.Consistent()
	aborted := e.Aborted()
	resultDig := (&ledger.RWSet{Writes: union, Aborted: aborted}).Digest()
	sr := &storedResult{entry: e, vecDigest: e.VectorDigest(), consistent: consistent, resultDig: resultDig}
	n.persisted[e.Seq] = sr
	pe := PersistEntry{
		Seq: e.Seq, TxID: e.TxID, VecDigest: sr.vecDigest,
		Consistent: consistent, ResultDigest: resultDig,
		Writes: union, Aborted: aborted,
	}
	pe.warmContentKey()
	n.persistOut = append(n.persistOut, pe)
	if !n.persistArm {
		n.persistArm = true
		n.host().After(n.c.Cfg.ResultFlushInterval, func() {
			n.persistArm = false
			n.flushPersist()
		})
	}
}

// vectorApproved checks the vector covers exactly the related organizations.
func vectorApproved(tx *types.Transaction, vec []OrgResult) bool {
	if len(vec) != len(tx.Orgs) {
		return false
	}
	have := make(map[string]bool, len(vec))
	for _, r := range vec {
		have[r.Org] = true
	}
	for _, o := range tx.Orgs {
		if !have[o] {
			return false
		}
	}
	return true
}

func (n *ConsNode) flushPersist() {
	n.c.Collector.Reg.Inc("cn.persist_flushes", 1)
	n.c.Collector.Reg.Inc("cn.persist_flush_entries", uint64(len(n.persistOut)))
	if len(n.persistOut) == 0 {
		return
	}
	entries := n.persistOut
	n.persistOut = nil
	n.ctx.Elapse(n.c.Cfg.Costs.MACCompute)
	msg := &PersistMsg{Node: n.idx, Entries: entries}
	msg.Sig = n.Sign(persistSigningBytes(n.idx, entries))
	if n.c.Cfg.DisableMulticast {
		n.ctx.MulticastUnicast(n.c.groupPersist, msg)
	} else {
		n.ctx.Multicast(n.c.groupPersist, msg)
	}
}

// --- retransmission and client liveness ------------------------------------

func (n *ConsNode) onFetch(from simnet.NodeID, m *FetchReq) {
	var out []types.SequencedTx
	for _, h := range m.Hashes {
		if seq, ok := n.pool.seqOf(h); ok {
			tx, _ := n.pool.at(seq)
			out = append(out, types.SequencedTx{Seq: seq, Tx: tx})
		}
	}
	atomic.AddUint64(&n.c.Collector.RetransmitReqs, 1)
	if len(out) > 0 {
		n.ctx.Send(from, &FetchResp{Txns: out})
	}
}

// onBlockMsg lets a consensus node that missed a decision (e.g. across a
// view change) catch up from the leader's dissemination: the 2f+1
// certificate proves agreement, so the block can be processed directly.
func (n *ConsNode) onBlockMsg(m *BlockMsg) {
	if m.Number < n.chainHeight || m.Cert == nil {
		return
	}
	if _, ok := n.delivered[m.Number]; ok {
		return
	}
	seqs, hashes, err := types.DecodeOrdering(m.Ordering)
	if err != nil {
		return
	}
	n.ctx.Elapse(n.c.Cfg.Costs.SigVerify + time.Duration(n.c.Cfg.quorum())*n.c.Cfg.Costs.MACVerify)
	// Zero-digest certificate over an empty ordering = null block (a new
	// leader's sequence-hole filler); the quorum signed the zero digest
	// directly, so the ordering-digest equation does not apply.
	null := len(seqs) == 0 && m.Cert.Digest == (crypto.Digest{})
	if m.Cert.Number != m.Number || (!null && m.Cert.Digest != m.OrderingDig()) {
		return
	}
	if !m.Cert.Verify(n.c.Scheme, cnIdentity, n.c.Cfg.quorum()) {
		return
	}
	n.delivered[m.Number] = &deliveredBlock{seqs: seqs, hashes: hashes, cert: m.Cert, at: n.ctx.Now()}
	for {
		blk, ok := n.delivered[n.chainHeight]
		if !ok {
			return
		}
		n.processBlock(n.chainHeight, blk)
		delete(n.delivered, n.chainHeight)
		n.chainHeight++
	}
}

// onPeerChainStatus fetches agreed blocks this consensus node missed: a
// replica that lost the commit round for one sequence (drop storm,
// partition) would otherwise buffer every later delivery forever, because
// peers never retransmit decided instances.
func (n *ConsNode) onPeerChainStatus(from simnet.NodeID, m *ChainStatus) {
	if m.Height <= n.chainHeight || n.blockFetching {
		return
	}
	need := false
	for num := n.chainHeight; num < m.Height; num++ {
		if _, ok := n.delivered[num]; !ok {
			need = true
			break
		}
	}
	if !need {
		return
	}
	n.blockFetching = true
	n.ctx.Send(from, &BlockFetchReq{From: n.chainHeight, To: m.Height})
	cool := 2 * n.c.Cfg.BlockTimeout
	if cool <= 0 {
		cool = 20 * time.Millisecond
	}
	n.ctx.After(cool, func(c2 *simnet.Context) {
		n.bind(c2, func() { n.blockFetching = false })
	})
}

// onBlockFetch re-sends stored blocks a normal node missed.
func (n *ConsNode) onBlockFetch(from simnet.NodeID, m *BlockFetchReq) {
	const maxBlocks = 32
	to := m.To
	if to > n.blocks.Height() {
		to = n.blocks.Height()
	}
	if to > m.From+maxBlocks {
		to = m.From + maxBlocks
	}
	for num := m.From; num < to; num++ {
		b := n.blocks.Get(num)
		if b == nil {
			continue
		}
		n.ctx.Send(from, &BlockMsg{
			Number:   num,
			Ordering: types.EncodeOrdering(b.Seqs, b.Hashes),
			Cert:     b.Cert,
		})
	}
}

// onPersistFetch re-sends this node's stored PERSIST entries for the
// requested sequence numbers (persist-round loss recovery).
func (n *ConsNode) onPersistFetch(from simnet.NodeID, m *PersistFetchReq) {
	var entries []PersistEntry
	for _, seq := range m.Seqs {
		sr, ok := n.persisted[seq]
		if !ok {
			continue
		}
		pe := PersistEntry{
			Seq: seq, TxID: sr.entry.TxID, VecDigest: sr.vecDigest,
			Consistent: sr.consistent, ResultDigest: sr.resultDig,
			Writes: sr.entry.Union(), Aborted: sr.entry.Aborted(),
		}
		pe.warmContentKey()
		entries = append(entries, pe)
	}
	if len(entries) == 0 {
		return
	}
	n.ctx.Elapse(n.c.Cfg.Costs.SigSign)
	msg := &PersistMsg{Node: n.idx, Entries: entries}
	msg.Sig = n.Sign(persistSigningBytes(n.idx, entries))
	n.ctx.Send(from, msg)
}

func (n *ConsNode) onFetchResp(m *FetchResp) {
	n.onSeqBatchFrom(-1, &SeqBatch{Txns: m.Txns})
}

// onClientRelay handles client retransmissions (§4.5 second trigger): relay
// to the leader's sequencer and view-change if the transaction still fails
// to commit.
func (n *ConsNode) onClientRelay(m *RelayBatch) {
	var fresh []*types.Transaction
	for _, tx := range m.Txns {
		id := tx.ID()
		if n.agreedHash[id] || n.pool.isCommitted(id) || n.denylist[tx.Client] {
			continue
		}
		fresh = append(fresh, tx)
		n.watch[id] = true
	}
	if len(fresh) == 0 {
		return
	}
	leader := n.c.leaderIdx()
	n.ctx.Send(n.c.Sequencers[leader].ep.ID(), &RelayBatch{Txns: fresh})
	ids := make([]types.TxID, 0, len(fresh))
	for _, tx := range fresh {
		ids = append(ids, tx.ID())
	}
	view := n.replica.View()
	n.host().After(n.c.Cfg.ClientTimeout, func() {
		if n.replica.View() != view {
			// The watchdog indicts the leader it was armed against; a
			// successor gets a fresh timeout (the client's retransmission
			// loop re-arms against it). Without this check, watchdogs
			// armed under a stalled leader burn every subsequent view the
			// moment it is installed, sustaining a view-change cascade.
			return
		}
		stuck := false
		for _, id := range ids {
			if n.watch[id] {
				stuck = true
				break
			}
		}
		if stuck {
			n.requestViewChangeOnce()
		}
	})
}

// --- view changes and the denylist (§4.5–§4.6) ------------------------------

// suspect records that client c caused a conflict in a view led by leader.
func (n *ConsNode) suspect(c crypto.Identity, leader int) {
	if n.c.Cfg.DisableDenylist {
		return
	}
	set := n.suspects[c]
	if set == nil {
		set = make(map[int]bool)
		n.suspects[c] = set
	}
	set[leader] = true
	// Suspected across f+1 views with different leaders ⇒ locally judged
	// malicious (§4.6 step 2).
	if len(set) >= n.c.Cfg.F+1 {
		n.maliceVotes[c] = true
	}
}

// ViewChangeMeta implements consensus.Host: piggyback local malice verdicts.
func (n *ConsNode) ViewChangeMeta() []byte {
	if n.c.Cfg.DisableDenylist || len(n.maliceVotes) == 0 {
		return nil
	}
	clients := make([]string, 0, len(n.maliceVotes))
	for c := range n.maliceVotes {
		clients = append(clients, string(c))
	}
	sort.Strings(clients)
	var buf []byte
	for _, c := range clients {
		buf = append(buf, c...)
		buf = append(buf, 0)
	}
	return buf
}

func decodeMeta(meta []byte) []crypto.Identity {
	var out []crypto.Identity
	start := 0
	for i, b := range meta {
		if b == 0 {
			if i > start {
				out = append(out, crypto.Identity(meta[start:i]))
			}
			start = i + 1
		}
	}
	return out
}

// ViewChanged implements consensus.Host.
func (n *ConsNode) ViewChanged(view uint64, leader int, metas [][]byte) {
	n.vcRequested = false
	n.viewConf, n.viewMis, n.viewTotal = 0, 0, 0
	if n.idx == 0 {
		atomic.AddUint64(&n.c.Collector.ViewChanges, 1)
	}

	// Merge denylist votes: a client judged malicious by f+1 consensus
	// nodes joins the denylist (§4.6 step 3).
	if !n.c.Cfg.DisableDenylist && len(metas) > 0 {
		counts := make(map[crypto.Identity]int)
		for _, meta := range metas {
			for _, c := range decodeMeta(meta) {
				counts[c]++
			}
		}
		var newly []crypto.Identity
		for c, k := range counts {
			if k >= n.c.Cfg.F+1 && !n.denylist[c] {
				n.denylist[c] = true
				newly = append(newly, c)
			}
		}
		if len(newly) > 0 {
			sort.Slice(newly, func(i, j int) bool { return newly[i] < newly[j] })
			if n.idx == 0 {
				atomic.AddUint64(&n.c.Collector.DeniedClients, uint64(len(newly)))
			}
			upd := &DenyUpdate{Node: n.idx, Clients: newly}
			upd.Sig = n.Sign(denySigningBytes(n.idx, newly))
			n.ctx.Multicast(n.c.groupPersist, upd)
			if n.c.Cfg.DenyRejoin > 0 {
				n.host().After(n.c.Cfg.DenyRejoin, func() {
					for _, c := range newly {
						delete(n.denylist, c)
						delete(n.maliceVotes, c)
						delete(n.suspects, c)
					}
				})
			}
		}
	}

	if leader == n.idx {
		n.activateSequencer(view)
	} else {
		n.ctx.Send(n.c.Sequencers[n.idx].ep.ID(), &seqActivate{Active: false})
	}
}

// activateSequencer hands the sequencing role to this node's co-located
// sequencer and re-sequences pending transactions from the pool.
func (n *ConsNode) activateSequencer(view uint64) {
	// A generous gap past everything observed keeps the new term's range
	// disjoint from in-flight batches of the previous term (overlapping
	// ranges would create benign conflicts that look like attacks and
	// feed denylist false positives, §5.2).
	start := n.maxSeen + uint64(10*n.c.Cfg.BlockSize) + 1
	n.watermark = start - 1
	n.maxSeen = start - 1
	n.seqActView, n.seqActStart = view, start
	n.ctx.Send(n.c.Sequencers[n.idx].ep.ID(), &seqActivate{Active: true, View: view, StartSeq: start})
	// Transactions stranded by the previous leadership term are NOT
	// re-sequenced from the pool: the pool may hold crafted transactions,
	// and re-sequencing them would amplify a broadcaster. Clients
	// retransmit uncommitted transactions themselves (§4.5), and consensus
	// nodes relay only those (onClientRelay).
}
