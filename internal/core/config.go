// Package core implements BIDL's shepherded parallel workflow (§3–§4): the
// software sequencer (Phase 2), consensus nodes driving a blackbox BFT
// protocol on transaction hashes (Phase 3), normal nodes speculatively
// executing sequenced transactions (Phase 4-1), the multi-write persist
// protocol for non-deterministic results (Phase 4-2), commit (Phase 5), and
// the shepherding machinery: re-execution monitoring, proactive view
// changes, unpredictable epoch-based leader rotation, and the denylist
// protocol (§4.5–§4.6).
package core

import (
	"fmt"
	"time"

	"github.com/bidl-framework/bidl/internal/contract"
	"github.com/bidl-framework/bidl/internal/cost"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/metrics"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/trace"
)

// Protocol names accepted by Config.Protocol.
const (
	ProtoPBFT     = "bft-smart" // PBFT three-phase, the paper's default
	ProtoHotStuff = "hotstuff"
	ProtoZyzzyva  = "zyzzyva"
	ProtoSBFT     = "sbft"
)

// Config parameterizes a BIDL cluster.
type Config struct {
	// NumOrgs is the number of organizations. Normal nodes are grouped
	// into organizations; each consensus node also belongs to an
	// organization (round-robin).
	NumOrgs int
	// NormalPerOrg is the number of normal nodes per organization.
	NormalPerOrg int
	// NumConsensus is the number of consensus nodes (3f+1).
	NumConsensus int
	// F is the number of tolerated Byzantine consensus nodes.
	F int

	// Protocol selects the BFT protocol (ProtoPBFT by default).
	Protocol string

	// BlockSize is the number of transactions per block (paper: 500).
	BlockSize int
	// BlockTimeout proposes a partial block when it elapses.
	BlockTimeout time.Duration
	// ViewTimeout is the consensus progress timeout.
	ViewTimeout time.Duration
	// ClientTimeout is how long clients wait before retransmitting to all
	// consensus nodes (§4.5 liveness path).
	ClientTimeout time.Duration

	// SeqFlushInterval batches sequenced-transaction multicasts.
	SeqFlushInterval time.Duration
	// SeqBatchMax flushes the sequencer batch early at this size.
	SeqBatchMax int
	// ResultFlushInterval batches delegate result messages.
	ResultFlushInterval time.Duration

	// ReexecThreshold is the per-view re-execution (mismatch) rate that
	// triggers a shepherd view change (paper default 1%, §4.5).
	ReexecThreshold float64

	// DisableDenylist turns off the §4.6 protocol ("BIDL w/o denylist",
	// Table 4).
	DisableDenylist bool
	// DenyRejoin is how long a denied client stays denied (§4.6: much
	// longer than the detection window). Zero means forever.
	DenyRejoin time.Duration

	// DisableMulticast sends sequenced transactions as N unicasts
	// ("BIDL-opt-disabled", Fig 9).
	DisableMulticast bool
	// ConsensusOnPayload runs consensus on full transaction payloads
	// instead of hashes (the other half of "BIDL-opt-disabled").
	ConsensusOnPayload bool

	// DisableSpeculation turns off Phase 4-1 entirely: transactions
	// execute sequentially at commit time — the sequential workflow BIDL's
	// parallel design is measured against (ablation).
	DisableSpeculation bool

	// SampleVerify is how many transactions per assembled block a
	// consensus node signature-samples to catch a garbage-proposing
	// leader (Table 4 S2). Zero disables sampling.
	SampleVerify int

	// KeyOwner maps world-state keys to owning organizations for result
	// partitioning; nil selects the SmallBank layout.
	KeyOwner contract.KeyOwnerFunc
	// Costs is the virtual CPU cost model.
	Costs cost.Model
	// Topology describes the network; NumDCs spreads nodes round-robin
	// over that many datacenters.
	Topology simnet.Topology
	NumDCs   int
	// Seed drives all simulation randomness.
	Seed int64

	// SimWorkers requests conservative parallel discrete-event execution
	// (PDES) with this many worker goroutines. Values below 2 keep the
	// serial engine. The cluster partitions the event queue by node group —
	// consensus nodes, sequencers, and clients share the hub partition;
	// organizations spread over the rest — and a parallel run is
	// byte-identical to a serial run of the same partitioned cluster.
	SimWorkers int

	// Tracer, when non-nil, records per-transaction lifecycle spans and
	// node/link telemetry for the whole cluster (see internal/trace). Nil
	// disables tracing at zero cost.
	Tracer *trace.Tracer

	// Sharded-deployment injection (scenario.ShardedHarness, DESIGN.md §14).
	// When Sim is non-nil the cluster joins an existing simulation instead
	// of creating its own: Net, Scheme, and Collector must be set too, and
	// partition/worker setup is skipped — the owner already configured the
	// shared engine. Label namespaces this cluster's endpoint names and
	// multicast groups so co-hosted clusters cannot hear each other, and
	// OrgPartitionOffset shifts its organizations within the shared
	// partition space so shards spread over all PDES partitions instead of
	// piling onto the same ones. All five are zero for a standalone cluster.
	Sim                *simnet.Sim
	Net                *simnet.Network
	Scheme             crypto.Scheme
	Collector          *metrics.Collector
	Label              string
	OrgPartitionOffset int
}

// DefaultConfig mirrors the paper's evaluation setting A: four consensus
// nodes (f=1) and 50 organizations with one normal node each, 500-txn
// blocks, in one datacenter.
func DefaultConfig() Config {
	return Config{
		NumOrgs:             50,
		NormalPerOrg:        1,
		NumConsensus:        4,
		F:                   1,
		Protocol:            ProtoPBFT,
		BlockSize:           500,
		BlockTimeout:        10 * time.Millisecond,
		ViewTimeout:         150 * time.Millisecond,
		ClientTimeout:       500 * time.Millisecond,
		SeqFlushInterval:    time.Millisecond,
		SeqBatchMax:         100,
		ResultFlushInterval: time.Millisecond,
		ReexecThreshold:     0.01,
		DenyRejoin:          0, // never rejoin within an experiment
		SampleVerify:        8,
		Costs:               cost.Default(),
		Topology:            simnet.DefaultTopology(),
		NumDCs:              1,
		Seed:                1,
	}
}

func (c Config) quorum() int { return 2*c.F + 1 }

// Validate reports the first configuration error, after applying the same
// derivations NewCluster performs (NumConsensus = 3F+1 when zero, F =
// (NumConsensus-1)/3 when zero and NumConsensus >= 4). A Config that
// validates builds a runnable cluster; one that does not would previously
// have failed deep inside the simulation (divide-by-zero, empty quorums),
// so callers — in particular scenario.Validate — should check before
// constructing a cluster.
func (c Config) Validate() error {
	if c.NumConsensus == 0 {
		c.NumConsensus = 3*c.F + 1
	}
	if c.F == 0 && c.NumConsensus >= 4 {
		c.F = (c.NumConsensus - 1) / 3
	}
	switch {
	case c.NumOrgs < 1:
		return fmt.Errorf("core: NumOrgs must be >= 1 (got %d)", c.NumOrgs)
	case c.NormalPerOrg < 1:
		return fmt.Errorf("core: NormalPerOrg must be >= 1 (got %d)", c.NormalPerOrg)
	case c.NumConsensus < 1:
		return fmt.Errorf("core: NumConsensus must be >= 1 (got %d)", c.NumConsensus)
	case c.F < 0:
		return fmt.Errorf("core: F must be >= 0 (got %d)", c.F)
	case c.F > 0 && c.NumConsensus < 3*c.F+1:
		return fmt.Errorf("core: NumConsensus %d cannot tolerate F=%d faults (need >= %d)",
			c.NumConsensus, c.F, 3*c.F+1)
	case c.BlockSize < 1:
		return fmt.Errorf("core: BlockSize must be >= 1 (got %d)", c.BlockSize)
	case c.NumDCs < 0:
		return fmt.Errorf("core: NumDCs must be >= 0 (got %d)", c.NumDCs)
	case c.ReexecThreshold < 0 || c.ReexecThreshold > 1:
		return fmt.Errorf("core: ReexecThreshold must be in [0,1] (got %g)", c.ReexecThreshold)
	case c.SampleVerify < 0:
		return fmt.Errorf("core: SampleVerify must be >= 0 (got %d)", c.SampleVerify)
	case c.SeqBatchMax < 0:
		return fmt.Errorf("core: SeqBatchMax must be >= 0 (got %d)", c.SeqBatchMax)
	case c.SimWorkers < 0:
		return fmt.Errorf("core: SimWorkers must be >= 0 (got %d)", c.SimWorkers)
	}
	switch c.Protocol {
	case "", ProtoPBFT, ProtoHotStuff, ProtoZyzzyva, ProtoSBFT:
	default:
		return fmt.Errorf("core: unknown protocol %q", c.Protocol)
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"BlockTimeout", c.BlockTimeout},
		{"ViewTimeout", c.ViewTimeout},
		{"ClientTimeout", c.ClientTimeout},
		{"SeqFlushInterval", c.SeqFlushInterval},
		{"ResultFlushInterval", c.ResultFlushInterval},
		{"DenyRejoin", c.DenyRejoin},
	} {
		if d.v < 0 {
			return fmt.Errorf("core: %s must be >= 0 (got %s)", d.name, d.v)
		}
	}
	if err := c.Topology.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}
