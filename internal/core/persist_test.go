package core

import (
	"testing"

	"github.com/bidl-framework/bidl/internal/consensus"
	"github.com/bidl-framework/bidl/internal/crypto"
	"github.com/bidl-framework/bidl/internal/ledger"
	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/types"
)

// mkVector builds a properly signed single-org result vector for tx at seq
// with the given write value — the §4.4 scenario where a malicious
// organization produces alternative approved vectors for its own
// transaction.
func mkVector(t *testing.T, c *Cluster, seq uint64, tx *types.Transaction, val string) ResultEntry {
	t.Helper()
	org := tx.CorrespondingOrg()
	writes := []ledger.Write{{Key: "k", Val: []byte(val)}}
	dig := (&ledger.RWSet{Writes: writes}).Digest()
	sig, err := c.Scheme.Sign(crypto.Identity(org), orgResultBytes(seq, tx.ID(), org, dig, false, false))
	if err != nil {
		t.Fatal(err)
	}
	return ResultEntry{
		Seq: seq, TxID: tx.ID(),
		Vector: []OrgResult{{Org: org, Digest: dig, Writes: writes, Sig: sig}},
	}
}

// withCtx drives a consensus node method with an injected activation.
func cnWithCtx(c *Cluster, cn *ConsNode, fn func()) {
	cn.bind(simnet.NewInjectedContext(c.Net, cn.ep), fn)
}

func nnWithCtx(c *Cluster, nn *NormalNode, fn func()) {
	nn.bind(simnet.NewInjectedContext(c.Net, nn.ep), fn)
}

// TestLemma52LocalStoreUniqueness: a consensus node persists at most one
// result vector per sequence number (§4.4, the heart of Lemma 5.2).
func TestLemma52LocalStoreUniqueness(t *testing.T) {
	cfg := smallConfig()
	c, gen := buildCluster(t, cfg, defaultWorkload())
	tx := gen.Next()
	tx.Orgs = tx.Orgs[:1] // single-org: one org CAN approve two vectors
	if err := tx.Sign(c.Scheme); err != nil {
		t.Fatal(err)
	}
	const seq = uint64(9001)
	cn := c.ConsNodes[0]
	cnWithCtx(c, cn, func() {
		// The leader proposed (seq → tx).
		cn.Proposed(0, valueFor(seq, tx))
		a := mkVector(t, c, seq, tx, "A")
		b := mkVector(t, c, seq, tx, "B")
		cn.evaluateResult(a)
		cn.evaluateResult(b) // must be ignored: one vector per seq
		sr, ok := cn.persisted[seq]
		if !ok {
			t.Fatal("first vector not stored")
		}
		if sr.vecDigest != a.VectorDigest() {
			t.Fatal("second vector displaced the first")
		}
		if len(cn.persistOut) != 1 {
			t.Fatalf("persistOut has %d entries, want 1", len(cn.persistOut))
		}
	})
}

func valueFor(seq uint64, tx *types.Transaction) consensus.Value {
	ordering := types.EncodeOrdering([]uint64{seq}, []types.TxID{tx.ID()})
	return consensus.Value{Digest: types.OrderingDigest(ordering), Data: ordering}
}

// TestLemma52SplitVotesNeverPersist: PERSIST votes split across two vectors
// never reach the 2f+1 quorum, so neither result commits — a malicious
// organization can only hurt its own transactions' liveness (§4.4).
func TestLemma52SplitVotesNeverPersist(t *testing.T) {
	cfg := smallConfig()
	c, gen := buildCluster(t, cfg, defaultWorkload())
	tx := gen.Next()
	tx.Orgs = tx.Orgs[:1]
	if err := tx.Sign(c.Scheme); err != nil {
		t.Fatal(err)
	}
	const seq = uint64(9001)
	a := mkVector(t, c, seq, tx, "A")
	b := mkVector(t, c, seq, tx, "B")
	nn := c.Orgs[0][0]

	sendPersist := func(cnIdx int, e ResultEntry) {
		entry := PersistEntry{
			Seq: e.Seq, TxID: e.TxID, VecDigest: e.VectorDigest(),
			Consistent: true, ResultDigest: (&ledger.RWSet{Writes: e.Union()}).Digest(),
			Writes: e.Union(),
		}
		msg := &PersistMsg{Node: cnIdx, Entries: []PersistEntry{entry}}
		sig, err := c.Scheme.Sign(cnIdentity(cnIdx), persistSigningBytes(cnIdx, msg.Entries))
		if err != nil {
			t.Fatal(err)
		}
		msg.Sig = sig
		nnWithCtx(c, nn, func() {
			nn.onPersist(c.ConsNodes[cnIdx].ep.ID(), msg)
		})
	}

	// 2 votes for A, 2 for B: quorum is 3, so neither persists.
	sendPersist(0, a)
	sendPersist(1, a)
	sendPersist(2, b)
	sendPersist(3, b)
	if ps := nn.persist[seq]; ps != nil && ps.persisted {
		t.Fatal("split votes reached persistence")
	}

	// A third distinct vote for A persists it — with A's content.
	sendPersist(2, a)
	ps := nn.persist[seq]
	if ps == nil || !ps.persisted {
		t.Fatal("2f+1 matching votes did not persist")
	}
	if string(ps.writes[0].Val) != "A" {
		t.Fatalf("persisted value %q, want A", ps.writes[0].Val)
	}
}

// TestPersistVoteDeduplication: the same consensus node voting twice counts
// once.
func TestPersistVoteDeduplication(t *testing.T) {
	cfg := smallConfig()
	c, gen := buildCluster(t, cfg, defaultWorkload())
	tx := gen.Next()
	tx.Orgs = tx.Orgs[:1]
	if err := tx.Sign(c.Scheme); err != nil {
		t.Fatal(err)
	}
	const seq = uint64(9001)
	a := mkVector(t, c, seq, tx, "A")
	nn := c.Orgs[0][0]
	entry := PersistEntry{
		Seq: a.Seq, TxID: a.TxID, VecDigest: a.VectorDigest(),
		Consistent: true, ResultDigest: (&ledger.RWSet{Writes: a.Union()}).Digest(),
		Writes: a.Union(),
	}
	msg := &PersistMsg{Node: 0, Entries: []PersistEntry{entry}}
	sig, _ := c.Scheme.Sign(cnIdentity(0), persistSigningBytes(0, msg.Entries))
	msg.Sig = sig
	for i := 0; i < 5; i++ {
		nnWithCtx(c, nn, func() { nn.onPersist(c.ConsNodes[0].ep.ID(), msg) })
	}
	if ps := nn.persist[seq]; ps != nil && ps.persisted {
		t.Fatal("one node's repeated votes reached quorum")
	}
}

// TestPersistRejectsForgedCN: a PERSIST batch with a bad signature is
// ignored entirely.
func TestPersistRejectsForgedCN(t *testing.T) {
	cfg := smallConfig()
	c, gen := buildCluster(t, cfg, defaultWorkload())
	tx := gen.Next()
	if err := tx.Sign(c.Scheme); err != nil {
		t.Fatal(err)
	}
	nn := c.Orgs[0][0]
	entry := PersistEntry{Seq: 9001, TxID: tx.ID(), Consistent: true}
	msg := &PersistMsg{Node: 0, Entries: []PersistEntry{entry}, Sig: crypto.Signature("junk")}
	nnWithCtx(c, nn, func() { nn.onPersist(c.ConsNodes[0].ep.ID(), msg) })
	if nn.persist[9001] != nil {
		t.Fatal("forged persist batch processed")
	}
}
