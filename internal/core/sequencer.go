package core

import (
	"math/rand"
	"time"

	"github.com/bidl-framework/bidl/internal/simnet"
	"github.com/bidl-framework/bidl/internal/trace"
	"github.com/bidl-framework/bidl/internal/types"
)

// seqActivate is the local control message a consensus node sends its
// co-located sequencer when it gains or loses leadership.
type seqActivate struct {
	Active   bool
	View     uint64
	StartSeq uint64
}

// Size implements simnet.Message.
func (seqActivate) Size() int { return 24 }

// SequencerNode models the paper's software sequencer (§6: DPDK-based,
// ~20 µs added delay, line-rate multicast). Each consensus node has a
// co-located sequencer ("the BFT leader acts as the sequencer by running a
// sequencing thread", §3.2 Phase 2); only the current leader's is active.
//
// The sequencer assigns consecutive sequence numbers and multicasts
// transactions to all consensus and normal nodes. Sequence numbers are
// deliberately unsigned (§4.1).
type SequencerNode struct {
	c   *Cluster
	idx int // owning consensus node index
	ep  *simnet.Endpoint

	active  bool
	view    uint64
	nextSeq uint64
	seen    map[types.TxID]bool // dedup within this leadership term

	pending    []types.SequencedTx
	flushArmed bool

	// Garbage, when set, makes this sequencer emit invalid transactions
	// (random payloads with unverifiable signatures) instead of the real
	// client transactions — the Table 4 S2 malicious leader.
	Garbage bool
	grng    *rand.Rand
}

// Endpoint returns the sequencer's simnet endpoint.
func (s *SequencerNode) Endpoint() *simnet.Endpoint { return s.ep }

// OnRestart implements simnet.Restarter: the crash lost the in-memory
// pending batch and any armed flush timer, so the guard flag must reset or
// the sequencer would never flush again. The next ingest re-arms it.
func (s *SequencerNode) OnRestart(ctx *simnet.Context) {
	s.pending = nil
	s.flushArmed = false
}

// OnMessage implements simnet.Handler.
func (s *SequencerNode) OnMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case *seqActivate:
		// Idempotent: the owning consensus node re-asserts the desired
		// state periodically (the activation handoff itself can be lost
		// to a drop fault), so a repeat of the current term must not
		// reset the dedup set or the sequence counter.
		if m.Active {
			if !s.active || s.view != m.View {
				s.view = m.View
				s.nextSeq = m.StartSeq
				s.seen = make(map[types.TxID]bool)
			}
			s.active = true
		} else {
			s.active = false
		}
	case *SubmitBatch:
		s.ingest(ctx, m.Txns)
	case *RelayBatch:
		s.ingest(ctx, m.Txns)
	}
}

// ingest sequences transactions (or forwards them to the active leader's
// sequencer when this one is passive).
func (s *SequencerNode) ingest(ctx *simnet.Context, txns []*types.Transaction) {
	if !s.active {
		// Forward to the current leader's sequencer.
		leader := s.c.leaderIdx()
		if leader == s.idx {
			// We are about to become active; drop and let client
			// retransmission handle it.
			return
		}
		ctx.Send(s.c.Sequencers[leader].ep.ID(), &SubmitBatch{Txns: txns})
		return
	}
	for _, tx := range txns {
		// TLS-link authentication of the submitting client (§4.1:
		// hybrid MAC for client transactions).
		ctx.Elapse(s.c.Cfg.Costs.MACVerify)
		if s.seen[tx.ID()] {
			continue
		}
		s.seen[tx.ID()] = true
		out := tx
		if s.Garbage {
			// tx.Size() is memoized on the (immutable, shared) inbound
			// transaction, so sizing the forged replacement no longer
			// re-marshals the original per malicious packet.
			out = s.garbageTxn(tx.Size())
		}
		s.pending = append(s.pending, types.SequencedTx{Seq: s.nextSeq, Tx: out})
		s.nextSeq++
		if tr := s.c.tracer; tr != nil {
			tr.TxStage(out.ID(), trace.StageSequenced, int(s.ep.ID()), ctx.Now())
		}
		if len(s.pending) >= s.c.Cfg.SeqBatchMax {
			s.flush(ctx)
		}
	}
	if len(s.pending) > 0 && !s.flushArmed {
		s.flushArmed = true
		ctx.After(s.c.Cfg.SeqFlushInterval, func(c2 *simnet.Context) {
			s.flushArmed = false
			s.flush(c2)
		})
	}
}

// flush multicasts the pending batch to every consensus and normal node.
func (s *SequencerNode) flush(ctx *simnet.Context) {
	if len(s.pending) == 0 || !s.active {
		s.pending = nil
		return
	}
	batch := &SeqBatch{View: s.view, Txns: s.pending}
	s.pending = nil
	// The sequencer's added per-transaction delay (§6: ~20 µs for 1 KB
	// transactions) — this is what caps BIDL's throughput near the
	// paper's 40-50k txns/s.
	ctx.Elapse(time.Duration(len(batch.Txns)) * s.c.Cfg.Costs.SequencerPerTxn)
	if s.c.Cfg.DisableMulticast {
		ctx.MulticastUnicast(s.c.groupTxns, batch)
	} else {
		ctx.Multicast(s.c.groupTxns, batch)
	}
}

// garbageTxn fabricates an invalid transaction of roughly the given size.
func (s *SequencerNode) garbageTxn(size int) *types.Transaction {
	if s.grng == nil {
		s.grng = rand.New(rand.NewSource(int64(s.idx)*7919 + 13))
	}
	junk := make([]byte, 32)
	s.grng.Read(junk)
	pad := size - 200
	if pad < 0 {
		pad = 0
	}
	t := &types.Transaction{
		Client:   "forged-client",
		Nonce:    s.grng.Uint64(),
		Contract: "smallbank",
		Fn:       "send_payment",
		Args:     [][]byte{junk},
		Orgs:     []string{"org0", "org1"},
		Padding:  uint32(pad),
		Sig:      junk,
	}
	// Pre-fill the lazy caches before the transaction leaves this node's
	// partition (see Transaction.Warm).
	t.Warm()
	return t
}
