package trace

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// This file is the read side of the JSONL export and, together with
// WriteJSONL, freezes the schema: every field jsonlEvent emits is parsed
// back here, and the offline anatomy path (cmd/bidl-report) is pinned
// byte-identical to the in-process path over this round trip.

// JSONLData is the event content recovered from a -trace-jsonl file: the two
// streams the anatomy layer consumes, in recording order.
type JSONLData struct {
	TxEvents    []TxEvent
	PhaseEvents []PhaseEvent
	// NodeLines and LinkLines count telemetry lines seen (parsed for
	// validation, not retained).
	NodeLines, LinkLines int
}

// durFromUs recovers the exact virtual-time duration from an exported ts_us
// value. WriteJSONL emits float64(ns)/1000; for ns < 2^52 the division is
// exact in float64, so rounding the product back is lossless.
func durFromUs(tsUs float64) time.Duration {
	return time.Duration(math.Round(tsUs * float64(time.Microsecond)))
}

// ReadJSONL parses a JSONL trace export back into its event streams,
// validating the frozen schema as it goes: every line must be a known type
// ("tx", "phase", "node", "link"), tx lines must carry a 64-hex-digit id and
// a known stage label, and phase lines a non-empty phase name. Returns an
// error naming the offending line number on any violation.
func ReadJSONL(r io.Reader) (*JSONLData, error) {
	out := &JSONLData{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e jsonlEvent
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("jsonl line %d: %v", line, err)
		}
		switch e.Type {
		case "tx":
			id, err := hex.DecodeString(e.Tx)
			if err != nil || len(id) != 32 {
				return nil, fmt.Errorf("jsonl line %d: bad tx id %q", line, e.Tx)
			}
			stage, ok := StageFromName(e.Stage)
			if !ok {
				return nil, fmt.Errorf("jsonl line %d: unknown stage %q", line, e.Stage)
			}
			var tx TxID
			copy(tx[:], id)
			out.TxEvents = append(out.TxEvents, TxEvent{
				Tx: tx, Stage: stage, Node: e.Node, At: durFromUs(e.TsUs)})
		case "phase":
			if e.Phase == "" {
				return nil, fmt.Errorf("jsonl line %d: phase event without name", line)
			}
			out.PhaseEvents = append(out.PhaseEvents, PhaseEvent{
				Name: e.Phase, Node: e.Node, View: e.View, Seq: e.Seq, At: durFromUs(e.TsUs)})
		case "node":
			out.NodeLines++
		case "link":
			out.LinkLines++
		default:
			return nil, fmt.Errorf("jsonl line %d: unknown event type %q", line, e.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("jsonl line %d: %v", line, err)
	}
	return out, nil
}

// ValidateJSONL checks a JSONL export beyond schema well-formedness: per
// transaction, stage timestamps must be monotonically non-decreasing in
// recording order, and no timestamp may be negative. Returns counts for
// reporting.
func ValidateJSONL(r io.Reader) (*JSONLData, error) {
	data, err := ReadJSONL(r)
	if err != nil {
		return nil, err
	}
	last := make(map[TxID]time.Duration)
	for i, e := range data.TxEvents {
		if e.At < 0 {
			return nil, fmt.Errorf("tx event %d: negative timestamp %v", i, e.At)
		}
		if prev, ok := last[e.Tx]; ok && e.At < prev {
			return nil, fmt.Errorf("tx %s: stage %q at %v precedes earlier mark at %v",
				hex.EncodeToString(e.Tx[:4]), e.Stage, e.At, prev)
		}
		last[e.Tx] = e.At
	}
	for i, e := range data.PhaseEvents {
		if e.At < 0 {
			return nil, fmt.Errorf("phase event %d: negative timestamp %v", i, e.At)
		}
	}
	return data, nil
}
