package trace

import (
	"testing"
	"time"
)

func TestCommitSeriesWidthLargerThanHorizon(t *testing.T) {
	tr := New(Options{})
	tr.TxStage(txid(1), StageNotified, 0, 3*time.Millisecond)
	tr.TxStage(txid(2), StageNotified, 0, 7*time.Millisecond)
	// Width far beyond the horizon: everything lands in one bucket.
	got := tr.CommitSeries(time.Hour)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("series = %v, want [2]", got)
	}
}

func TestCommitSeriesZeroCommits(t *testing.T) {
	tr := New(Options{})
	// Lifecycle activity without any commit notification.
	tr.TxStage(txid(1), StageSubmit, 0, time.Millisecond)
	tr.TxStage(txid(1), StageSequenced, 1, 2*time.Millisecond)
	if got := tr.CommitSeries(10 * time.Millisecond); len(got) != 0 {
		t.Fatalf("series = %v, want empty", got)
	}
}

func TestCommitSeriesBoundaryCommit(t *testing.T) {
	tr := New(Options{})
	// A commit exactly on a bucket boundary belongs to the bucket it opens:
	// 20ms / 10ms = bucket 2, not bucket 1.
	tr.TxStage(txid(1), StageNotified, 0, 10*time.Millisecond)
	tr.TxStage(txid(2), StageNotified, 0, 20*time.Millisecond)
	got := tr.CommitSeries(10 * time.Millisecond)
	want := []int{0, 1, 1}
	if len(got) != len(want) {
		t.Fatalf("series = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series = %v, want %v", got, want)
		}
	}
}

func TestCommitSeriesNilAndBadWidth(t *testing.T) {
	var nilTr *Tracer
	if got := nilTr.CommitSeries(time.Millisecond); got != nil {
		t.Fatalf("nil tracer series = %v", got)
	}
	tr := New(Options{})
	tr.TxStage(txid(1), StageNotified, 0, time.Millisecond)
	if got := tr.CommitSeries(0); got != nil {
		t.Fatalf("zero-width series = %v", got)
	}
	if got := tr.CommitSeries(-time.Second); got != nil {
		t.Fatalf("negative-width series = %v", got)
	}
}
