package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func txid(b byte) TxID {
	var id TxID
	id[0] = b
	return id
}

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// Every recording and query method must be nil-receiver safe.
	tr.RegisterNode(0, "n", 0)
	tr.TxStage(txid(1), StageSubmit, 0, time.Millisecond)
	tr.Phase("prepared", 0, 1, 2, time.Millisecond)
	tr.Busy(0, 0, time.Millisecond)
	tr.Queue(0, 0, 3)
	tr.Sent(0, 0, 100)
	tr.Received(0, 0, 100)
	tr.Dropped(0, 0)
	tr.Wire(0, 1, 0, 100)
	if tr.Horizon() != 0 || tr.NumNodes() != 0 || tr.TxEvents() != nil {
		t.Fatal("nil tracer recorded something")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("nil tracer export is not valid JSON: %v", err)
	}
	buf.Reset()
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("nil WriteJSONL: %v", err)
	}
	buf.Reset()
	tr.WriteSummary(&buf, SummaryOptions{})
	if !strings.Contains(buf.String(), "disabled") {
		t.Fatalf("nil summary = %q, want disabled notice", buf.String())
	}
}

func TestStageNames(t *testing.T) {
	want := []string{"submit", "sequenced", "delivered", "exec-start", "executed", "persisted", "agreed", "notified"}
	for i, w := range want {
		if got := Stage(i).String(); got != w {
			t.Errorf("Stage(%d) = %q, want %q", i, got, w)
		}
		if s, ok := StageFromName(w); !ok || s != Stage(i) {
			t.Errorf("StageFromName(%q) = %v,%v, want %d,true", w, s, ok, i)
		}
	}
	if got := Stage(200).String(); got != "stage200" {
		t.Errorf("out-of-range stage = %q", got)
	}
	if _, ok := StageFromName("no-such-stage"); ok {
		t.Error("StageFromName accepted an unknown label")
	}
}

func TestRingWraparound(t *testing.T) {
	r := ring[int]{limit: 4}
	for i := 0; i < 10; i++ {
		r.add(i)
	}
	got := r.items()
	want := []int{6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("items len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("items = %v, want %v", got, want)
		}
	}
	if r.dropped != 6 {
		t.Fatalf("dropped = %d, want 6", r.dropped)
	}
}

func TestTracerRingOverflowCounts(t *testing.T) {
	tr := New(Options{SpanCapacity: 8})
	for i := 0; i < 20; i++ {
		tr.TxStage(txid(byte(i)), StageSubmit, 0, time.Duration(i)*time.Millisecond)
	}
	if got := len(tr.TxEvents()); got != 8 {
		t.Fatalf("buffered events = %d, want 8", got)
	}
	if tr.DroppedTxEvents() != 12 {
		t.Fatalf("dropped = %d, want 12", tr.DroppedTxEvents())
	}
	// Recent history survives: the last event must be present.
	evs := tr.TxEvents()
	if evs[len(evs)-1].At != 19*time.Millisecond {
		t.Fatalf("last buffered event at %v, want 19ms", evs[len(evs)-1].At)
	}
}

func TestBusySplitsAcrossBuckets(t *testing.T) {
	tr := New(Options{BucketWidth: 10 * time.Millisecond})
	// 25ms of work starting at 5ms spans buckets 0, 1, and 2: 5 + 10 + 10.
	tr.Busy(3, 5*time.Millisecond, 25*time.Millisecond)
	b := tr.NodeBuckets(3)
	if len(b) != 3 {
		t.Fatalf("bucket count = %d, want 3", len(b))
	}
	want := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond}
	var total time.Duration
	for i, w := range want {
		if b[i].Busy != w {
			t.Errorf("bucket[%d].Busy = %v, want %v", i, b[i].Busy, w)
		}
		total += b[i].Busy
	}
	if total != 25*time.Millisecond {
		t.Errorf("total busy = %v, want 25ms", total)
	}
	// No bucket may exceed its width (busy fraction > 100%).
	for i, bk := range b {
		if bk.Busy > 10*time.Millisecond {
			t.Errorf("bucket[%d] overfull: %v", i, bk.Busy)
		}
	}
}

func TestQueueRecordsMaxPerBucket(t *testing.T) {
	tr := New(Options{BucketWidth: 10 * time.Millisecond})
	tr.Queue(0, time.Millisecond, 3)
	tr.Queue(0, 2*time.Millisecond, 7)
	tr.Queue(0, 3*time.Millisecond, 5)
	tr.Queue(0, 12*time.Millisecond, 2)
	b := tr.NodeBuckets(0)
	if b[0].MaxQueue != 7 {
		t.Errorf("bucket0 MaxQueue = %d, want 7", b[0].MaxQueue)
	}
	if b[1].MaxQueue != 2 {
		t.Errorf("bucket1 MaxQueue = %d, want 2", b[1].MaxQueue)
	}
}

func TestTrafficAndLinkBuckets(t *testing.T) {
	tr := New(Options{BucketWidth: 10 * time.Millisecond})
	tr.RegisterNode(1, "cn0", 0)
	tr.Sent(1, time.Millisecond, 500)
	tr.Received(1, time.Millisecond, 300)
	tr.Received(1, 11*time.Millisecond, 200)
	tr.Dropped(1, time.Millisecond)
	tr.Wire(0, 1, time.Millisecond, 500)
	tr.Wire(0, 1, 2*time.Millisecond, 100)

	b := tr.NodeBuckets(1)
	if b[0].BytesOut != 500 || b[0].BytesIn != 300 || b[0].Delivered != 1 || b[0].Dropped != 1 {
		t.Errorf("bucket0 = %+v", b[0])
	}
	if b[1].BytesIn != 200 || b[1].Delivered != 1 {
		t.Errorf("bucket1 = %+v", b[1])
	}
	if tr.NodeName(1) != "cn0" {
		t.Errorf("NodeName = %q", tr.NodeName(1))
	}
	ls := tr.links[0*4096+1]
	if ls == nil || ls.buckets[0].Bytes != 600 || ls.buckets[0].Msgs != 2 {
		t.Errorf("link bucket = %+v", ls)
	}
}

// record populates a small but complete trace: two transactions through the
// full pipeline on two nodes, plus phases and telemetry.
func record(tr *Tracer) {
	tr.RegisterNode(0, "client0", 0)
	tr.RegisterNode(1, "cn0", 0)
	for i := byte(1); i <= 2; i++ {
		base := time.Duration(i) * time.Millisecond
		tr.TxStage(txid(i), StageSubmit, 0, base)
		tr.TxStage(txid(i), StageSequenced, 1, base+time.Millisecond)
		tr.TxStage(txid(i), StageAgreed, 1, base+3*time.Millisecond)
		tr.TxStage(txid(i), StageNotified, 0, base+5*time.Millisecond)
	}
	tr.Phase("pre-prepare", 1, 0, 7, 2*time.Millisecond)
	tr.Phase("prepared", 1, 0, 7, 3*time.Millisecond)
	tr.Phase("committed", 1, 0, 7, 4*time.Millisecond)
	tr.Busy(1, time.Millisecond, 2*time.Millisecond)
	tr.Queue(1, time.Millisecond, 4)
	tr.Sent(0, time.Millisecond, 512)
	tr.Received(1, 2*time.Millisecond, 512)
	tr.Wire(0, 0, time.Millisecond, 512)
}

func TestChromeTraceExport(t *testing.T) {
	tr := New(Options{})
	record(tr)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	var spans, counters int
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
		case "C":
			counters++
		}
	}
	// Two tx full spans + stage sub-spans + phase spans.
	if spans < 2 {
		t.Errorf("spans = %d, want >= 2", spans)
	}
	if counters == 0 {
		t.Error("no counter events")
	}
}

func TestExportsAreDeterministic(t *testing.T) {
	mk := func() *Tracer {
		tr := New(Options{})
		record(tr)
		return tr
	}
	var a, b, aj, bj bytes.Buffer
	if err := mk().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Chrome exports of identical recordings differ")
	}
	if err := mk().WriteJSONL(&aj); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteJSONL(&bj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj.Bytes(), bj.Bytes()) {
		t.Error("JSONL exports of identical recordings differ")
	}
}

func TestWriteSummary(t *testing.T) {
	tr := New(Options{})
	record(tr)
	var buf bytes.Buffer
	tr.WriteSummary(&buf, SummaryOptions{})
	out := buf.String()
	for _, want := range []string{"telemetry over", "cn0", "slowest traced transactions"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
