package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestJSONLRoundTrip pins the frozen schema: every tx/phase event written by
// WriteJSONL must be recovered exactly — including nanosecond-exact
// timestamps through the float64 microsecond encoding — and the telemetry
// line counts must match what the tracer buffered.
func TestJSONLRoundTrip(t *testing.T) {
	tr := New(Options{})
	record(tr)
	// An awkward timestamp that is not a whole microsecond.
	tr.TxStage(txid(9), StageSubmit, 3, 1234567891*time.Nanosecond)
	tr.TxStage(txid(9), StageNotified, 3, 1234567999*time.Nanosecond)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	data, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wantTx := tr.TxEvents()
	if len(data.TxEvents) != len(wantTx) {
		t.Fatalf("tx events = %d, want %d", len(data.TxEvents), len(wantTx))
	}
	for i, e := range data.TxEvents {
		if e != wantTx[i] {
			t.Errorf("tx event %d = %+v, want %+v", i, e, wantTx[i])
		}
	}
	wantPh := tr.PhaseEvents()
	if len(data.PhaseEvents) != len(wantPh) {
		t.Fatalf("phase events = %d, want %d", len(data.PhaseEvents), len(wantPh))
	}
	for i, e := range data.PhaseEvents {
		if e != wantPh[i] {
			t.Errorf("phase event %d = %+v, want %+v", i, e, wantPh[i])
		}
	}
	if data.NodeLines == 0 {
		t.Error("no node telemetry lines parsed")
	}
	if data.LinkLines == 0 {
		t.Error("no link telemetry lines parsed")
	}
}

func TestValidateJSONLAcceptsExport(t *testing.T) {
	tr := New(Options{})
	record(tr)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateJSONL(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("valid export rejected: %v", err)
	}
}

func TestValidateJSONLRejectsBadInput(t *testing.T) {
	cases := []struct {
		name, line, wantErr string
	}{
		{"unknown type", `{"type":"mystery","ts_us":1}`, "unknown event type"},
		{"unknown field", `{"type":"tx","tx":"` + strings.Repeat("0", 64) + `","stage":"submit","ts_us":1,"bogus":2}`, "bogus"},
		{"short tx id", `{"type":"tx","tx":"abcd","stage":"submit","ts_us":1}`, "bad tx id"},
		{"unknown stage", `{"type":"tx","tx":"` + strings.Repeat("0", 64) + `","stage":"warp","ts_us":1}`, "unknown stage"},
		{"nameless phase", `{"type":"phase","ts_us":1}`, "without name"},
		{"not json", `garbage`, "line 1"},
	}
	for _, c := range cases {
		if _, err := ValidateJSONL(strings.NewReader(c.line + "\n")); err == nil ||
			!strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
	// Non-monotonic per-tx timestamps are a validation (not schema) failure.
	id := strings.Repeat("0", 64)
	nonMono := `{"type":"tx","tx":"` + id + `","stage":"submit","ts_us":100}` + "\n" +
		`{"type":"tx","tx":"` + id + `","stage":"sequenced","ts_us":50}` + "\n"
	if _, err := ValidateJSONL(strings.NewReader(nonMono)); err == nil ||
		!strings.Contains(err.Error(), "precedes") {
		t.Errorf("non-monotonic: err = %v, want precedes", err)
	}
	if data, err := ReadJSONL(strings.NewReader(nonMono)); err != nil || len(data.TxEvents) != 2 {
		t.Errorf("ReadJSONL should accept non-monotonic schema-valid input, got %v", err)
	}
}
