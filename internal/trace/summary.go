package trace

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// SummaryOptions tune WriteSummary.
type SummaryOptions struct {
	// TopNodes bounds the busiest-node table (default 10).
	TopNodes int
	// TopTxs bounds the slowest-transaction table (default 5).
	TopTxs int
}

// WriteSummary renders the telemetry as a human-readable report: per-node
// busy%/queue/traffic for the busiest nodes, per-link utilization, and the
// top-K slowest traced transactions with their stage breakdown.
func (t *Tracer) WriteSummary(w io.Writer, o SummaryOptions) {
	if t == nil {
		fmt.Fprintln(w, "telemetry: tracing disabled")
		return
	}
	if o.TopNodes <= 0 {
		o.TopNodes = 10
	}
	if o.TopTxs <= 0 {
		o.TopTxs = 5
	}
	horizon := t.horizon
	if horizon <= 0 {
		fmt.Fprintln(w, "telemetry: no events recorded")
		return
	}

	type nodeRow struct {
		id                 int
		name               string
		busy               time.Duration
		maxQueue           int
		in, out            uint64
		delivered, dropped uint64
	}
	var rows []nodeRow
	for id, ns := range t.nodes {
		if ns == nil || len(ns.buckets) == 0 {
			continue
		}
		r := nodeRow{id: id, name: ns.name}
		for _, b := range ns.buckets {
			r.busy += b.Busy
			if b.MaxQueue > r.maxQueue {
				r.maxQueue = b.MaxQueue
			}
			r.in += b.BytesIn
			r.out += b.BytesOut
			r.delivered += b.Delivered
			r.dropped += b.Dropped
		}
		rows = append(rows, r)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].busy != rows[j].busy {
			return rows[i].busy > rows[j].busy
		}
		return rows[i].id < rows[j].id
	})
	fmt.Fprintf(w, "telemetry over %v (%d nodes, bucket %v):\n",
		horizon.Round(time.Millisecond), len(rows), t.width)
	fmt.Fprintf(w, "  %-18s %7s %7s %10s %10s %8s %7s\n",
		"node", "busy%", "maxQ", "in", "out", "msgs", "drops")
	shown := rows
	if len(shown) > o.TopNodes {
		shown = shown[:o.TopNodes]
	}
	for _, r := range shown {
		fmt.Fprintf(w, "  %-18s %6.1f%% %7d %10s %10s %8d %7d\n",
			r.name, 100*float64(r.busy)/float64(horizon), r.maxQueue,
			kb(r.in), kb(r.out), r.delivered, r.dropped)
	}
	if len(rows) > len(shown) {
		fmt.Fprintf(w, "  ... %d more nodes\n", len(rows)-len(shown))
	}

	if len(t.links) > 0 {
		fmt.Fprintln(w, "links (bytes on wire):")
		for _, key := range t.sortedLinkKeys() {
			ls := t.links[key]
			var total uint64
			var peak uint64
			for _, b := range ls.buckets {
				total += b.Bytes
				if b.Bytes > peak {
					peak = b.Bytes
				}
			}
			avgMBps := float64(total) / horizon.Seconds() / (1 << 20)
			peakMBps := float64(peak) / t.width.Seconds() / (1 << 20)
			fmt.Fprintf(w, "  dc%d->dc%d  total %s  avg %.1f MB/s  peak %.1f MB/s\n",
				ls.fromDC, ls.toDC, kb(total), avgMBps, peakMBps)
		}
	}

	spans := t.assembleSpans()
	sort.SliceStable(spans, func(i, j int) bool {
		di, dj := spans[i].end()-spans[i].start(), spans[j].end()-spans[j].start()
		if di != dj {
			return di > dj
		}
		return bytes.Compare(spans[i].tx[:], spans[j].tx[:]) < 0
	})
	if len(spans) > 0 {
		fmt.Fprintf(w, "slowest traced transactions (of %d):\n", len(spans))
		n := o.TopTxs
		if n > len(spans) {
			n = len(spans)
		}
		for _, s := range spans[:n] {
			var parts []string
			for i := 1; i < len(s.events); i++ {
				parts = append(parts, fmt.Sprintf("%s %v", s.events[i].Stage,
					(s.events[i].At-s.events[i-1].At).Round(10*time.Microsecond)))
			}
			fmt.Fprintf(w, "  %s  total %v  [%s]\n", hex.EncodeToString(s.tx[:4]),
				(s.end() - s.start()).Round(10*time.Microsecond), strings.Join(parts, ", "))
		}
	}
	if d := t.txs.dropped + t.phases.dropped; d > 0 {
		fmt.Fprintf(w, "  warning: %d events dropped by ring overflow\n", d)
	}
}

func kb(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
