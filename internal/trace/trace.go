// Package trace is the virtual-time tracing and telemetry layer of the BIDL
// reproduction: per-transaction lifecycle spans (client submit → sequencer
// assign → multicast deliver → speculative execute → consensus → persist →
// commit notify), consensus protocol phase marks, and fixed-width time-series
// telemetry for every simulated node (CPU-busy fraction, queue depth, bytes
// in/out, drops) and inter-datacenter link (bytes on wire).
//
// A nil *Tracer is a valid, disabled tracer: every recording method is
// nil-receiver safe, and the simnet hot paths additionally guard with a nil
// check so that disabled tracing adds zero allocations (pinned by
// TestUntracedDeliveryAllocs in internal/simnet).
//
// Because the simulation runs in virtual time, traces are perfectly
// reproducible: two runs with the same seed produce byte-identical exports
// (guarded by TestTraceDeterminism).
package trace

import (
	"fmt"
	"time"
)

// TxID mirrors types.TxID ([32]byte) without importing it: the trace package
// sits below every other internal package so simnet can depend on it.
type TxID = [32]byte

// Stage identifies a step of the transaction pipeline (§3 phases).
type Stage uint8

// Pipeline stages in their nominal order. The recorded order can differ
// (persist overlaps consensus, §4.4); exporters sort by virtual time.
const (
	StageSubmit    Stage = iota // client hands the tx to the framework
	StageSequenced              // sequencer assigns a sequence number
	StageDelivered              // multicast reaches the corresponding org
	StageExecStart              // execution work begins (dequeue → CPU)
	StageExecuted               // speculative execution finishes (Phase 4-1)
	StagePersisted              // persist quorum forms (Phase 4-2)
	StageAgreed                 // consensus orders the tx hash (Phase 3)
	StageNotified               // client receives the commit notice (Phase 5)
	StageXPrepared              // 2PC: all touched shards' prepares resolved (DESIGN.md §14)
	StageXResolved              // 2PC: commit/abort decision applied on all touched shards
	NumStages
)

var stageNames = [NumStages]string{
	"submit", "sequenced", "delivered", "exec-start", "executed", "persisted", "agreed", "notified",
	"x-prepared", "x-resolved",
}

// String returns the stage's export label.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage%d", int(s))
}

// StageFromName maps an export label back to its Stage — the inverse of
// String, used by the JSONL reader. The second return is false for unknown
// labels.
func StageFromName(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// TxEvent is one lifecycle mark: transaction tx reached stage on node at
// virtual time At.
type TxEvent struct {
	Tx    TxID
	At    time.Duration
	Node  int32
	Stage Stage
}

// PhaseEvent is a consensus protocol phase mark (pre-prepare, prepared,
// committed, QC formation, …) on one replica for one sequence number.
type PhaseEvent struct {
	Name string
	At   time.Duration
	Node int32
	View uint64
	Seq  uint64
}

// NodeBucket aggregates one node's telemetry over one bucket of virtual time.
type NodeBucket struct {
	Busy      time.Duration // CPU time charged within the bucket
	MaxQueue  int           // peak inbox depth observed
	BytesIn   uint64
	BytesOut  uint64
	Delivered uint64 // messages delivered to the handler
	Dropped   uint64 // messages lost (loss, filters, crashed node)
}

// LinkBucket aggregates one directed DC-pair link over one bucket.
type LinkBucket struct {
	Bytes uint64
	Msgs  uint64
}

// Options parameterize a Tracer.
type Options struct {
	// BucketWidth is the telemetry sampling resolution (default 10ms).
	BucketWidth time.Duration
	// SpanCapacity bounds the tx-event ring buffer (default 1<<18 events);
	// once full the oldest events are overwritten and DroppedTxEvents
	// counts. Phase events get a quarter of this capacity.
	SpanCapacity int
}

// ring is a bounded event sink: appending beyond the limit overwrites the
// oldest entry, so a runaway simulation cannot exhaust memory while recent
// history stays complete. The buffer grows lazily up to the limit.
type ring[T any] struct {
	limit   int
	buf     []T
	next    int
	full    bool
	dropped uint64
}

func (r *ring[T]) add(v T) {
	if !r.full {
		r.buf = append(r.buf, v)
		if len(r.buf) >= r.limit {
			r.full = true
		}
		return
	}
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	r.dropped++
}

// items returns the buffered events in insertion order.
func (r *ring[T]) items() []T {
	if !r.full || r.next == 0 {
		return r.buf
	}
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// nodeSeries is one node's identity plus its telemetry bucket row.
type nodeSeries struct {
	name    string
	dc      int
	known   bool
	buckets []NodeBucket
}

// linkSeries is one directed DC pair's bucket row.
type linkSeries struct {
	fromDC, toDC int
	buckets      []LinkBucket
}

// Tracer records lifecycle spans, phase marks, and telemetry buckets for one
// simulation. It is not safe for concurrent use (like the Sim it observes);
// distinct simulations use distinct Tracers.
type Tracer struct {
	width   time.Duration
	txs     ring[TxEvent]
	phases  ring[PhaseEvent]
	nodes   []*nodeSeries
	links   map[int]*linkSeries // keyed fromDC*4096+toDC, like simnet pipes
	horizon time.Duration       // latest virtual time observed
}

// New returns an enabled tracer.
func New(o Options) *Tracer {
	if o.BucketWidth <= 0 {
		o.BucketWidth = 10 * time.Millisecond
	}
	if o.SpanCapacity <= 0 {
		o.SpanCapacity = 1 << 18
	}
	phaseCap := o.SpanCapacity / 4
	if phaseCap < 1 {
		phaseCap = 1
	}
	return &Tracer{
		width:  o.BucketWidth,
		txs:    ring[TxEvent]{limit: o.SpanCapacity},
		phases: ring[PhaseEvent]{limit: phaseCap},
		links:  make(map[int]*linkSeries),
	}
}

// Enabled reports whether the tracer records anything (nil = disabled).
func (t *Tracer) Enabled() bool { return t != nil }

// BucketWidth returns the telemetry sampling resolution.
func (t *Tracer) BucketWidth() time.Duration {
	if t == nil {
		return 0
	}
	return t.width
}

// Horizon returns the latest virtual time any event was recorded at.
func (t *Tracer) Horizon() time.Duration {
	if t == nil {
		return 0
	}
	return t.horizon
}

// DroppedTxEvents reports lifecycle events lost to ring overflow.
func (t *Tracer) DroppedTxEvents() uint64 {
	if t == nil {
		return 0
	}
	return t.txs.dropped
}

// DroppedPhaseEvents reports phase events lost to ring overflow.
func (t *Tracer) DroppedPhaseEvents() uint64 {
	if t == nil {
		return 0
	}
	return t.phases.dropped
}

// TxEvents returns the buffered lifecycle events in recording order.
func (t *Tracer) TxEvents() []TxEvent {
	if t == nil {
		return nil
	}
	return t.txs.items()
}

// PhaseEvents returns the buffered phase events in recording order.
func (t *Tracer) PhaseEvents() []PhaseEvent {
	if t == nil {
		return nil
	}
	return t.phases.items()
}

func (t *Tracer) observe(at time.Duration) {
	if at > t.horizon {
		t.horizon = at
	}
}

// node returns (creating if needed) node id's series.
func (t *Tracer) node(id int) *nodeSeries {
	if id < 0 {
		id = 0
	}
	for id >= len(t.nodes) {
		t.nodes = append(t.nodes, nil)
	}
	ns := t.nodes[id]
	if ns == nil {
		ns = &nodeSeries{name: fmt.Sprintf("node%d", id)}
		t.nodes[id] = ns
	}
	return ns
}

// bucket returns (growing if needed) the series bucket covering at.
func (ns *nodeSeries) bucket(width, at time.Duration) *NodeBucket {
	idx := int(at / width)
	if idx < 0 {
		idx = 0
	}
	for idx >= len(ns.buckets) {
		ns.buckets = append(ns.buckets, NodeBucket{})
	}
	return &ns.buckets[idx]
}

// RegisterNode names a node (simnet calls this for every endpoint).
func (t *Tracer) RegisterNode(id int, name string, dc int) {
	if t == nil {
		return
	}
	ns := t.node(id)
	ns.name = name
	ns.dc = dc
	ns.known = true
}

// TxStage records that tx reached stage on node at virtual time at.
func (t *Tracer) TxStage(tx TxID, stage Stage, node int, at time.Duration) {
	if t == nil {
		return
	}
	t.observe(at)
	t.txs.add(TxEvent{Tx: tx, Stage: stage, Node: int32(node), At: at})
}

// Phase records a consensus protocol phase mark.
func (t *Tracer) Phase(name string, node int, view, seq uint64, at time.Duration) {
	if t == nil {
		return
	}
	t.observe(at)
	t.phases.add(PhaseEvent{Name: name, Node: int32(node), View: view, Seq: seq, At: at})
}

// Busy charges d of CPU time starting at start to node's telemetry, split
// exactly across bucket boundaries so busy fractions never exceed 100%.
func (t *Tracer) Busy(node int, start, d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.observe(start + d)
	ns := t.node(node)
	for d > 0 {
		idx := start / t.width
		end := (idx + 1) * t.width
		chunk := end - start
		if chunk > d {
			chunk = d
		}
		ns.bucket(t.width, start).Busy += chunk
		start += chunk
		d -= chunk
	}
}

// Queue records an inbox depth observation on node at time at.
func (t *Tracer) Queue(node int, at time.Duration, depth int) {
	if t == nil {
		return
	}
	t.observe(at)
	b := t.node(node).bucket(t.width, at)
	if depth > b.MaxQueue {
		b.MaxQueue = depth
	}
}

// Sent records bytes leaving node's NIC at time at.
func (t *Tracer) Sent(node int, at time.Duration, bytes int) {
	if t == nil {
		return
	}
	t.observe(at)
	t.node(node).bucket(t.width, at).BytesOut += uint64(bytes)
}

// Received records a message delivered to node at time at.
func (t *Tracer) Received(node int, at time.Duration, bytes int) {
	if t == nil {
		return
	}
	t.observe(at)
	b := t.node(node).bucket(t.width, at)
	b.BytesIn += uint64(bytes)
	b.Delivered++
}

// Dropped records a message lost on its way to node at time at.
func (t *Tracer) Dropped(node int, at time.Duration) {
	if t == nil {
		return
	}
	t.observe(at)
	t.node(node).bucket(t.width, at).Dropped++
}

// Wire records bytes crossing the directed fromDC→toDC link at time at
// (fromDC == toDC accounts intra-DC fabric traffic).
func (t *Tracer) Wire(fromDC, toDC int, at time.Duration, bytes int) {
	if t == nil {
		return
	}
	t.observe(at)
	key := fromDC*4096 + toDC
	ls := t.links[key]
	if ls == nil {
		ls = &linkSeries{fromDC: fromDC, toDC: toDC}
		t.links[key] = ls
	}
	idx := int(at / t.width)
	if idx < 0 {
		idx = 0
	}
	for idx >= len(ls.buckets) {
		ls.buckets = append(ls.buckets, LinkBucket{})
	}
	ls.buckets[idx].Bytes += uint64(bytes)
	ls.buckets[idx].Msgs++
}

// NodeName returns the registered name of node id ("node<id>" if unknown).
func (t *Tracer) NodeName(id int) string {
	if t == nil || id < 0 || id >= len(t.nodes) || t.nodes[id] == nil {
		return fmt.Sprintf("node%d", id)
	}
	return t.nodes[id].name
}

// NodeBuckets returns a copy-free view of node id's telemetry buckets (nil
// if the node recorded nothing). Callers must not mutate it.
func (t *Tracer) NodeBuckets(id int) []NodeBucket {
	if t == nil || id < 0 || id >= len(t.nodes) || t.nodes[id] == nil {
		return nil
	}
	return t.nodes[id].buckets
}

// NumNodes returns the highest node id observed plus one.
func (t *Tracer) NumNodes() int {
	if t == nil {
		return 0
	}
	return len(t.nodes)
}
