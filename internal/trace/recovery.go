package trace

import "time"

// CommitSeries buckets client commit notifications (StageNotified, recorded
// exactly once per transaction when the commit notice reaches the client)
// into fixed-width bins of virtual time. The resulting series is the
// liveness evidence for fault-injection invariants: a fault shows up as a
// dip, recovery as the first post-fault bucket back above a floor (see
// chaos.RecoveryAfter). A nil tracer or non-positive width returns nil.
func (t *Tracer) CommitSeries(width time.Duration) []int {
	if t == nil || width <= 0 {
		return nil
	}
	var out []int
	for _, ev := range t.TxEvents() {
		if ev.Stage != StageNotified {
			continue
		}
		i := int(ev.At / width)
		for len(out) <= i {
			out = append(out, 0)
		}
		out[i]++
	}
	return out
}
