package trace

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Pseudo-process IDs for tracks that do not belong to a single node. Real
// node IDs are small (hundreds), so these cannot collide.
const (
	txLanePID = 1_000_000 // transaction lifecycle swimlanes
	linkPID   = 1_000_001 // inter-DC link counters
)

// chromeEvent is one Chrome trace-event (the JSON array format understood by
// chrome://tracing and Perfetto). Field order is fixed by this struct and
// map args marshal with sorted keys, so exports are byte-deterministic.
type chromeEvent struct {
	Name string             `json:"name"`
	Cat  string             `json:"cat,omitempty"`
	Ph   string             `json:"ph"`
	TS   float64            `json:"ts"` // microseconds of virtual time
	Dur  float64            `json:"dur,omitempty"`
	PID  int                `json:"pid"`
	TID  int                `json:"tid"`
	Args map[string]float64 `json:"args,omitempty"`
}

// metaEvent is a metadata event (process naming / sorting).
type metaEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// txSpan is one transaction's assembled lifecycle: its stage marks sorted by
// time.
type txSpan struct {
	tx     TxID
	events []TxEvent // sorted by (At, Stage)
}

func (s *txSpan) start() time.Duration { return s.events[0].At }
func (s *txSpan) end() time.Duration   { return s.events[len(s.events)-1].At }

// hasStage reports whether the span includes a given stage mark.
func (s *txSpan) hasStage(st Stage) bool {
	for _, e := range s.events {
		if e.Stage == st {
			return true
		}
	}
	return false
}

// assembleSpans groups the lifecycle ring into per-transaction spans with at
// least two stage marks, ordered by (start time, TxID) for determinism.
func (t *Tracer) assembleSpans() []*txSpan {
	byTx := make(map[TxID]*txSpan)
	var order []*txSpan
	for _, e := range t.txs.items() {
		s := byTx[e.Tx]
		if s == nil {
			s = &txSpan{tx: e.Tx}
			byTx[e.Tx] = s
			order = append(order, s)
		}
		s.events = append(s.events, e)
	}
	var spans []*txSpan
	for _, s := range order {
		if len(s.events) < 2 {
			continue
		}
		sort.SliceStable(s.events, func(i, j int) bool {
			if s.events[i].At != s.events[j].At {
				return s.events[i].At < s.events[j].At
			}
			return s.events[i].Stage < s.events[j].Stage
		})
		spans = append(spans, s)
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].start() != spans[j].start() {
			return spans[i].start() < spans[j].start()
		}
		return bytes.Compare(spans[i].tx[:], spans[j].tx[:]) < 0
	})
	return spans
}

// assignLanes packs overlapping spans into swimlanes (Chrome tids) greedily:
// each span takes the first lane free at its start time. Deterministic given
// the sorted span order.
func assignLanes(spans []*txSpan) []int {
	lanes := []time.Duration{}
	out := make([]int, len(spans))
	for i, s := range spans {
		placed := false
		for l := range lanes {
			if lanes[l] <= s.start() {
				lanes[l] = s.end()
				out[i] = l
				placed = true
				break
			}
		}
		if !placed {
			lanes = append(lanes, s.end())
			out[i] = len(lanes)
		}
	}
	return out
}

// sortedLinkKeys returns the link map keys ascending.
func (t *Tracer) sortedLinkKeys() []int {
	keys := make([]int, 0, len(t.links))
	for k := range t.links {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// WriteChromeTrace emits the trace in Chrome trace-event JSON format,
// loadable in chrome://tracing and ui.perfetto.dev. Tracks:
//
//   - one process per simulated node with "busy" (CPU %), "queue" (peak
//     inbox depth), "net" (KB in/out) and "drops" counter series;
//   - a "tx lifecycle" pseudo-process with one complete span per traced
//     transaction, tiled by per-stage sub-spans, packed into swimlanes;
//   - consensus phase spans on each replica's thread 1;
//   - a "links" pseudo-process with per-DC-pair bytes-on-wire counters.
//
// Output is byte-deterministic for a given tracer state.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return err
	}
	bw := &errWriter{w: w}
	bw.puts(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	emit := func(v any) {
		b, err := json.Marshal(v)
		if err != nil {
			bw.err = err
			return
		}
		if !first {
			bw.puts(",")
		}
		first = false
		bw.puts("\n")
		bw.put(b)
	}

	// Process metadata: nodes first (sorted by id), then pseudo-processes.
	for id, ns := range t.nodes {
		if ns == nil {
			continue
		}
		emit(metaEvent{Name: "process_name", Ph: "M", PID: id,
			Args: map[string]string{"name": fmt.Sprintf("%s (dc%d)", ns.name, ns.dc)}})
	}
	emit(metaEvent{Name: "process_name", Ph: "M", PID: txLanePID,
		Args: map[string]string{"name": "tx lifecycle"}})
	emit(metaEvent{Name: "process_name", Ph: "M", PID: linkPID,
		Args: map[string]string{"name": "links"}})

	// Transaction lifecycle spans.
	spans := t.assembleSpans()
	lanes := assignLanes(spans)
	for i, s := range spans {
		name := hex.EncodeToString(s.tx[:4])
		args := map[string]float64{}
		for j := 1; j < len(s.events); j++ {
			seg := s.events[j]
			args[seg.Stage.String()+"_us"] = us(seg.At - s.events[j-1].At)
		}
		emit(chromeEvent{Name: name, Cat: "tx", Ph: "X", TS: us(s.start()),
			Dur: us(s.end() - s.start()), PID: txLanePID, TID: lanes[i], Args: args})
		// Stage sub-spans tile the full span, named by the stage reached.
		for j := 1; j < len(s.events); j++ {
			seg := s.events[j]
			emit(chromeEvent{Name: seg.Stage.String(), Cat: "stage", Ph: "X",
				TS: us(s.events[j-1].At), Dur: us(seg.At - s.events[j-1].At),
				PID: txLanePID, TID: lanes[i],
				Args: map[string]float64{"node": float64(seg.Node)}})
		}
	}

	// Consensus phase spans: group by (node, view, seq), pair consecutive
	// marks into spans; the final mark becomes an instant event.
	type phaseKey struct {
		node int32
		view uint64
		seq  uint64
	}
	groups := make(map[phaseKey][]PhaseEvent)
	var keys []phaseKey
	for _, e := range t.phases.items() {
		k := phaseKey{e.Node, e.View, e.Seq}
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		if keys[i].view != keys[j].view {
			return keys[i].view < keys[j].view
		}
		return keys[i].seq < keys[j].seq
	})
	for _, k := range keys {
		es := groups[k]
		sort.SliceStable(es, func(i, j int) bool { return es[i].At < es[j].At })
		for i, e := range es {
			args := map[string]float64{"view": float64(e.View), "seq": float64(e.Seq)}
			if i+1 < len(es) {
				emit(chromeEvent{Name: e.Name, Cat: "consensus", Ph: "X", TS: us(e.At),
					Dur: us(es[i+1].At - e.At), PID: int(e.Node), TID: 1, Args: args})
			} else {
				emit(chromeEvent{Name: e.Name, Cat: "consensus", Ph: "i", TS: us(e.At),
					PID: int(e.Node), TID: 1, Args: args})
			}
		}
	}

	// Per-node counter tracks.
	for id, ns := range t.nodes {
		if ns == nil {
			continue
		}
		for i, b := range ns.buckets {
			ts := us(time.Duration(i) * t.width)
			emit(chromeEvent{Name: "busy", Ph: "C", TS: ts, PID: id, TID: 0,
				Args: map[string]float64{"pct": 100 * float64(b.Busy) / float64(t.width)}})
			emit(chromeEvent{Name: "queue", Ph: "C", TS: ts, PID: id, TID: 0,
				Args: map[string]float64{"depth": float64(b.MaxQueue)}})
			emit(chromeEvent{Name: "net", Ph: "C", TS: ts, PID: id, TID: 0,
				Args: map[string]float64{"in_kb": float64(b.BytesIn) / 1024, "out_kb": float64(b.BytesOut) / 1024}})
			if b.Dropped > 0 {
				emit(chromeEvent{Name: "drops", Ph: "C", TS: ts, PID: id, TID: 0,
					Args: map[string]float64{"count": float64(b.Dropped)}})
			}
		}
	}

	// Link counters.
	for _, key := range t.sortedLinkKeys() {
		ls := t.links[key]
		name := fmt.Sprintf("dc%d-dc%d KB", ls.fromDC, ls.toDC)
		for i, b := range ls.buckets {
			emit(chromeEvent{Name: name, Ph: "C", TS: us(time.Duration(i) * t.width),
				PID: linkPID, TID: 0, Args: map[string]float64{"kb": float64(b.Bytes) / 1024}})
		}
	}

	bw.puts("\n]}\n")
	return bw.err
}

// jsonlEvent is one line of the structured event log.
type jsonlEvent struct {
	Type   string  `json:"type"`
	Tx     string  `json:"tx,omitempty"`
	Stage  string  `json:"stage,omitempty"`
	Phase  string  `json:"phase,omitempty"`
	Node   int32   `json:"node,omitempty"`
	View   uint64  `json:"view,omitempty"`
	Seq    uint64  `json:"seq,omitempty"`
	FromDC int     `json:"from_dc,omitempty"`
	ToDC   int     `json:"to_dc,omitempty"`
	Bucket int     `json:"bucket,omitempty"`
	TsUs   float64 `json:"ts_us"`
	BusyUs float64 `json:"busy_us,omitempty"`
	Queue  int     `json:"queue,omitempty"`
	In     uint64  `json:"bytes_in,omitempty"`
	Out    uint64  `json:"bytes_out,omitempty"`
	Drops  uint64  `json:"drops,omitempty"`
	Bytes  uint64  `json:"bytes,omitempty"`
	Msgs   uint64  `json:"msgs,omitempty"`
}

// WriteJSONL emits the raw event streams as one JSON object per line:
// lifecycle events and phase marks in recording order, then node telemetry
// buckets (node-major), then link buckets (key-major). Byte-deterministic.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, e := range t.txs.items() {
		if err := enc.Encode(jsonlEvent{Type: "tx", Tx: hex.EncodeToString(e.Tx[:]),
			Stage: e.Stage.String(), Node: e.Node, TsUs: us(e.At)}); err != nil {
			return err
		}
	}
	for _, e := range t.phases.items() {
		if err := enc.Encode(jsonlEvent{Type: "phase", Phase: e.Name, Node: e.Node,
			View: e.View, Seq: e.Seq, TsUs: us(e.At)}); err != nil {
			return err
		}
	}
	for id, ns := range t.nodes {
		if ns == nil {
			continue
		}
		for i, b := range ns.buckets {
			if b == (NodeBucket{}) {
				continue
			}
			if err := enc.Encode(jsonlEvent{Type: "node", Node: int32(id), Bucket: i,
				TsUs: us(time.Duration(i) * t.width), BusyUs: us(b.Busy),
				Queue: b.MaxQueue, In: b.BytesIn, Out: b.BytesOut, Drops: b.Dropped,
				Msgs: b.Delivered}); err != nil {
				return err
			}
		}
	}
	for _, key := range t.sortedLinkKeys() {
		ls := t.links[key]
		for i, b := range ls.buckets {
			if b == (LinkBucket{}) {
				continue
			}
			if err := enc.Encode(jsonlEvent{Type: "link", FromDC: ls.fromDC, ToDC: ls.toDC,
				Bucket: i, TsUs: us(time.Duration(i) * t.width), Bytes: b.Bytes,
				Msgs: b.Msgs}); err != nil {
				return err
			}
		}
	}
	return nil
}

// errWriter folds write errors into one sticky error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) put(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *errWriter) puts(s string) { e.put([]byte(s)) }
