package anatomy

import (
	"fmt"
	"io"
	"time"
)

// ms renders a virtual duration as fractional milliseconds. All duration
// values are exact nanosecond counts, so the formatting is deterministic.
func ms(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond)) }

// endLabel renders a window end, treating the chaos open-end sentinel.
func endLabel(d time.Duration) string {
	if d >= openEnd {
		return "∞"
	}
	return ms(d)
}

// Render writes the human-readable anatomy tables. Output is
// byte-deterministic for a given Report.
func (r *Report) Render(w io.Writer) error {
	ew := &errWriter{w: w}
	p := func(format string, args ...any) { fmt.Fprintf(ew, format, args...) }

	p("== latency anatomy ==\n")
	p("transactions: %d complete, %d incomplete (dropped)\n", r.Complete, r.Incomplete)
	if r.Complete == 0 {
		p("no complete transactions traced\n")
		return ew.err
	}
	p("end-to-end submit→notified (ms): p50 %s  p95 %s  p99 %s  mean %s\n",
		ms(r.E2E.P50), ms(r.E2E.P95), ms(r.E2E.P99), ms(r.E2E.Mean))

	p("\ncritical-path stage waits, observed order (ms):\n")
	p("  %-12s %7s %10s %10s %10s %10s %7s\n", "stage", "count", "p50", "p95", "p99", "mean", "share")
	for _, st := range r.Stages {
		p("  %-12s %7d %10s %10s %10s %10s %6.1f%%\n", st.Stage.String(), st.Count,
			ms(st.P50), ms(st.P95), ms(st.P99), ms(st.Mean), 100*st.Share)
	}

	p("\nspeculative-execution overlap:\n")
	if r.Overlap.ExecTxs == 0 {
		p("  no measured execution intervals (framework records no exec-start/executed marks)\n")
	} else {
		p("  execution hidden under consensus: %.1f%% (exec total %s ms, hidden %s ms, %d txs)\n",
			100*r.Overlap.Ratio, ms(r.Overlap.ExecTotal), ms(r.Overlap.Hidden), r.Overlap.ExecTxs)
		p("  executed before consensus agreement: %.1f%% of txs\n", 100*r.Overlap.BeforeAgreedFrac)
	}

	if len(r.Phases) > 0 {
		p("\nconsensus phase transitions (ms):\n")
		p("  %-28s %7s %10s %10s %10s\n", "transition", "count", "p50", "p95", "p99")
		for _, ph := range r.Phases {
			p("  %-28s %7d %10s %10s %10s\n", ph.Label, ph.Count, ms(ph.P50), ms(ph.P95), ms(ph.P99))
		}
	}

	if len(r.Windows) > 0 {
		p("\nfault windows, e2e latency (ms):\n")
		p("  %-36s %7s %10s %10s\n", "window", "txs", "p50", "p99")
		for _, ws := range r.Windows {
			label := ws.Label
			if label != "outside windows" {
				label = fmt.Sprintf("%s [%s, %s)", ws.Label, ms(ws.Start), endLabel(ws.End))
			}
			p("  %-36s %7d %10s %10s\n", label, ws.Count, ms(ws.P50), ms(ws.P99))
		}
	}
	return ew.err
}

// CSV writes the anatomy as section,label,metric,value rows — one flat table
// covering every number Render prints, deterministic row order.
func (r *Report) CSV(w io.Writer) error {
	ew := &errWriter{w: w}
	p := func(format string, args ...any) { fmt.Fprintf(ew, format, args...) }
	row := func(section, label, metric, value string) {
		p("%s,%s,%s,%s\n", section, label, metric, value)
	}
	d := func(section, label string, di Dist) {
		row(section, label, "count", fmt.Sprintf("%d", di.Count))
		row(section, label, "p50_ms", ms(di.P50))
		row(section, label, "p95_ms", ms(di.P95))
		row(section, label, "p99_ms", ms(di.P99))
		row(section, label, "mean_ms", ms(di.Mean))
	}

	p("section,label,metric,value\n")
	row("meta", "transactions", "complete", fmt.Sprintf("%d", r.Complete))
	row("meta", "transactions", "incomplete", fmt.Sprintf("%d", r.Incomplete))
	d("e2e", "submit→notified", r.E2E)
	for _, st := range r.Stages {
		d("stage", st.Stage.String(), st.Dist)
		row("stage", st.Stage.String(), "share", fmt.Sprintf("%.4f", st.Share))
	}
	row("overlap", "exec-under-consensus", "exec_txs", fmt.Sprintf("%d", r.Overlap.ExecTxs))
	row("overlap", "exec-under-consensus", "exec_total_ms", ms(r.Overlap.ExecTotal))
	row("overlap", "exec-under-consensus", "hidden_ms", ms(r.Overlap.Hidden))
	row("overlap", "exec-under-consensus", "ratio", fmt.Sprintf("%.4f", r.Overlap.Ratio))
	row("overlap", "exec-under-consensus", "before_agreed_frac", fmt.Sprintf("%.4f", r.Overlap.BeforeAgreedFrac))
	for _, ph := range r.Phases {
		d("phase", ph.Label, ph.Dist)
	}
	for _, ws := range r.Windows {
		d("window", ws.Label, ws.Dist)
	}
	return ew.err
}

// errWriter folds write errors into one sticky error (mirrors trace.errWriter).
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(b []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(b)
	e.err = err
	return n, err
}
