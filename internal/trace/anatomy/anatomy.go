// Package anatomy decomposes traced transaction latency into its constituent
// waits — the paper's latency-breakdown analysis (§6.2) as a first-class
// simulator output. It consumes the Tracer's lifecycle and phase event
// streams and produces, deterministically:
//
//   - a critical-path decomposition of submit→notified latency per
//     transaction: the observed stage order is derived from per-stage median
//     timestamps, and each stage's wait is its timestamp minus the running
//     frontier, so per-transaction waits sum exactly to end-to-end latency;
//   - per-stage wait distributions (p50/p95/p99 nearest-rank, consistent
//     with internal/metrics) and each stage's share of total latency;
//   - per-protocol consensus phase-transition timing tables from
//     PhaseRecorder events;
//   - an overlap report quantifying how much execution time is hidden under
//     consensus — the speculative-execution claim as one "overlap ratio";
//   - optional fault-window annotation comparing transactions that overlap
//     an injected fault against those that do not.
//
// The same Report is produced by the in-process -anatomy path and by
// cmd/bidl-report reading a -trace-jsonl file offline; golden tests pin the
// two byte-identical, which also freezes the JSONL schema.
package anatomy

import (
	"math"
	"sort"
	"time"

	"github.com/bidl-framework/bidl/internal/trace"
)

// openEnd marks a fault window with no scheduled end (chaos sentinel).
const openEnd = time.Duration(1) << 62

// Window is one fault-injection window to annotate in the breakdown.
type Window struct {
	Label      string
	Start, End time.Duration // End >= openEnd renders as open-ended
}

// Options parameterize Compute.
type Options struct {
	Windows []Window
}

// Dist summarizes one sample population with nearest-rank percentiles
// (idx = ceil(p*n)-1, matching metrics.PercentileLatency) and the mean.
type Dist struct {
	Count         int
	P50, P95, P99 time.Duration
	Mean          time.Duration
}

// StageStat is the wait distribution attributed to one pipeline stage plus
// its share of summed end-to-end latency.
type StageStat struct {
	Stage trace.Stage
	Dist
	Total time.Duration // summed wait across transactions
	Share float64       // Total / sum of end-to-end latencies
}

// PhaseStat is one consensus phase transition ("pre-prepare→prepared", …).
type PhaseStat struct {
	Label string
	Dist
}

// OverlapStat quantifies speculative execution hidden under consensus.
type OverlapStat struct {
	ExecTxs          int           // transactions with measured execution
	ExecTotal        time.Duration // summed exec-start→executed time
	Hidden           time.Duration // summed intersection with [sequenced, agreed]
	Ratio            float64       // Hidden / ExecTotal
	BeforeAgreedFrac float64       // fraction of ExecTxs with executed <= agreed
}

// WindowStat compares transactions overlapping one fault window.
type WindowStat struct {
	Label      string
	Start, End time.Duration
	Dist
}

// TxBreakdown is one complete transaction's decomposition. Waits is aligned
// with Report.Order[1:]: Waits[i] is the wait attributed to Order[i+1]
// (zero when the transaction never reached that stage). The waits sum to
// Notified-Submit by construction — the invariant the tests pin.
type TxBreakdown struct {
	Tx       trace.TxID
	Submit   time.Duration
	Notified time.Duration
	Waits    []time.Duration
}

// Report is the full latency anatomy of one traced run.
type Report struct {
	Complete   int // transactions with both submit and notified marks
	Incomplete int // traced transactions dropped from analysis
	Order      []trace.Stage
	E2E        Dist
	TotalE2E   time.Duration
	Stages     []StageStat // in Order[1:] order
	Phases     []PhaseStat // sorted by label
	Overlap    OverlapStat
	Windows    []WindowStat // fault windows, then the outside-all row
	Breakdowns []TxBreakdown
}

// StageWait returns the stat for one stage (zero Dist if the stage never
// appeared in the trace).
func (r *Report) StageWait(s trace.Stage) StageStat {
	for _, st := range r.Stages {
		if st.Stage == s {
			return st
		}
	}
	return StageStat{Stage: s}
}

// PhaseDist returns the stat for one phase-transition label (zero Dist if
// the transition never occurred).
func (r *Report) PhaseDist(label string) PhaseStat {
	for _, p := range r.Phases {
		if p.Label == label {
			return p
		}
	}
	return PhaseStat{Label: label}
}

// percentile is the nearest-rank percentile over an ascending-sorted slice,
// idx = ceil(p*n)-1, matching metrics.PercentileLatency.
func percentile(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// dist summarizes samples (consumed: sorted in place).
func dist(samples []time.Duration) Dist {
	if len(samples) == 0 {
		return Dist{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	return Dist{
		Count: len(samples),
		P50:   percentile(samples, 0.50),
		P95:   percentile(samples, 0.95),
		P99:   percentile(samples, 0.99),
		Mean:  sum / time.Duration(len(samples)),
	}
}

// txRecord is one transaction's per-stage timestamps (first mark wins).
type txRecord struct {
	tx   trace.TxID
	at   [trace.NumStages]time.Duration
	seen [trace.NumStages]bool
}

func (t *txRecord) complete() bool {
	return t.seen[trace.StageSubmit] && t.seen[trace.StageNotified]
}

// Compute builds the latency anatomy from raw event streams. Output is fully
// determined by the inputs: identical streams produce identical Reports.
func Compute(txEvents []trace.TxEvent, phaseEvents []trace.PhaseEvent, opts Options) *Report {
	// Group lifecycle marks per transaction, preserving first-seen order.
	byTx := make(map[trace.TxID]*txRecord)
	var order []*txRecord
	for _, e := range txEvents {
		if e.Stage >= trace.NumStages {
			continue
		}
		rec := byTx[e.Tx]
		if rec == nil {
			rec = &txRecord{tx: e.Tx}
			byTx[e.Tx] = rec
			order = append(order, rec)
		}
		if !rec.seen[e.Stage] {
			rec.seen[e.Stage] = true
			rec.at[e.Stage] = e.At
		}
	}

	r := &Report{}
	var complete []*txRecord
	for _, rec := range order {
		if rec.complete() {
			complete = append(complete, rec)
		} else {
			r.Incomplete++
		}
	}
	r.Complete = len(complete)

	// Observed stage order: sort stages present in the trace by their median
	// timestamp (nearest-rank p50 across complete transactions), ties broken
	// by enum order; submit is forced first and notified last so the frontier
	// walk always starts at submit and ends at the terminal client event.
	var stageTimes [trace.NumStages][]time.Duration
	for _, rec := range complete {
		for s := trace.Stage(0); s < trace.NumStages; s++ {
			if rec.seen[s] {
				stageTimes[s] = append(stageTimes[s], rec.at[s])
			}
		}
	}
	type orderKey struct {
		stage  trace.Stage
		median time.Duration
	}
	var present []orderKey
	for s := trace.Stage(0); s < trace.NumStages; s++ {
		if len(stageTimes[s]) == 0 {
			continue
		}
		sorted := append([]time.Duration(nil), stageTimes[s]...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		med := percentile(sorted, 0.50)
		switch s {
		case trace.StageSubmit:
			med = -1 << 62
		case trace.StageNotified:
			med = openEnd
		}
		present = append(present, orderKey{stage: s, median: med})
	}
	sort.SliceStable(present, func(i, j int) bool {
		if present[i].median != present[j].median {
			return present[i].median < present[j].median
		}
		return present[i].stage < present[j].stage
	})
	for _, k := range present {
		r.Order = append(r.Order, k.stage)
	}

	// Frontier decomposition per transaction: walking the observed order,
	// each present stage is charged max(0, t_stage - frontier) and advances
	// the frontier to max(frontier, t_stage). Because notified is the last
	// stage in the order and the latest mark of every complete transaction,
	// the waits sum exactly to notified-submit.
	nWaits := 0
	if len(r.Order) > 0 {
		nWaits = len(r.Order) - 1
	}
	waitSamples := make([][]time.Duration, nWaits)
	waitTotals := make([]time.Duration, nWaits)
	var e2e []time.Duration
	for _, rec := range complete {
		bd := TxBreakdown{
			Tx:       rec.tx,
			Submit:   rec.at[trace.StageSubmit],
			Notified: rec.at[trace.StageNotified],
			Waits:    make([]time.Duration, nWaits),
		}
		frontier := bd.Submit
		for i := 1; i < len(r.Order); i++ {
			s := r.Order[i]
			if !rec.seen[s] {
				continue
			}
			t := rec.at[s]
			if t > frontier {
				bd.Waits[i-1] = t - frontier
				frontier = t
			}
			// A present stage contributes a sample even at zero wait, so
			// percentiles reflect how often the frontier is already past it.
			waitSamples[i-1] = append(waitSamples[i-1], bd.Waits[i-1])
			waitTotals[i-1] += bd.Waits[i-1]
		}
		e2e = append(e2e, bd.Notified-bd.Submit)
		r.TotalE2E += bd.Notified - bd.Submit
		r.Breakdowns = append(r.Breakdowns, bd)
	}
	r.E2E = dist(e2e)
	for i := 1; i < len(r.Order); i++ {
		st := StageStat{Stage: r.Order[i], Total: waitTotals[i-1]}
		st.Dist = dist(waitSamples[i-1])
		if r.TotalE2E > 0 {
			st.Share = float64(st.Total) / float64(r.TotalE2E)
		}
		r.Stages = append(r.Stages, st)
	}

	// Consensus phase transitions: group marks by (node, view, seq), pair
	// consecutive marks into "a→b" transitions, aggregate by label.
	r.Phases = phaseTransitions(phaseEvents)

	// Speculative-execution overlap: how much of [exec-start, executed] lies
	// inside the consensus interval [sequenced, agreed].
	r.Overlap = overlap(complete)

	// Fault-window annotation: transactions whose lifetime intersects a
	// window, vs those outside all windows.
	r.Windows = windowStats(complete, opts.Windows)

	return r
}

func phaseTransitions(phaseEvents []trace.PhaseEvent) []PhaseStat {
	type key struct {
		node int32
		view uint64
		seq  uint64
	}
	groups := make(map[key][]trace.PhaseEvent)
	var keys []key
	for _, e := range phaseEvents {
		k := key{e.Node, e.View, e.Seq}
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], e)
	}
	samples := make(map[string][]time.Duration)
	var labels []string
	for _, k := range keys {
		es := groups[k]
		sort.SliceStable(es, func(i, j int) bool { return es[i].At < es[j].At })
		for i := 1; i < len(es); i++ {
			label := es[i-1].Name + "→" + es[i].Name
			if _, ok := samples[label]; !ok {
				labels = append(labels, label)
			}
			samples[label] = append(samples[label], es[i].At-es[i-1].At)
		}
	}
	sort.Strings(labels)
	out := make([]PhaseStat, 0, len(labels))
	for _, l := range labels {
		out = append(out, PhaseStat{Label: l, Dist: dist(samples[l])})
	}
	return out
}

func overlap(complete []*txRecord) OverlapStat {
	var o OverlapStat
	var before int
	for _, rec := range complete {
		if !rec.seen[trace.StageExecStart] || !rec.seen[trace.StageExecuted] {
			continue
		}
		es, ee := rec.at[trace.StageExecStart], rec.at[trace.StageExecuted]
		if ee < es {
			continue
		}
		o.ExecTxs++
		o.ExecTotal += ee - es
		if rec.seen[trace.StageSequenced] && rec.seen[trace.StageAgreed] {
			cs, ce := rec.at[trace.StageSequenced], rec.at[trace.StageAgreed]
			lo, hi := maxDur(es, cs), minDur(ee, ce)
			if hi > lo {
				o.Hidden += hi - lo
			}
			if ee <= ce {
				before++
			}
		}
	}
	if o.ExecTotal > 0 {
		o.Ratio = float64(o.Hidden) / float64(o.ExecTotal)
	}
	if o.ExecTxs > 0 {
		o.BeforeAgreedFrac = float64(before) / float64(o.ExecTxs)
	}
	return o
}

func windowStats(complete []*txRecord, windows []Window) []WindowStat {
	if len(windows) == 0 {
		return nil
	}
	out := make([]WindowStat, 0, len(windows)+1)
	inAny := make([]bool, len(complete))
	for _, w := range windows {
		var samples []time.Duration
		for i, rec := range complete {
			sub, not := rec.at[trace.StageSubmit], rec.at[trace.StageNotified]
			if not >= w.Start && sub < w.End {
				samples = append(samples, not-sub)
				inAny[i] = true
			}
		}
		out = append(out, WindowStat{Label: w.Label, Start: w.Start, End: w.End, Dist: dist(samples)})
	}
	var outside []time.Duration
	for i, rec := range complete {
		if !inAny[i] {
			outside = append(outside, rec.at[trace.StageNotified]-rec.at[trace.StageSubmit])
		}
	}
	out = append(out, WindowStat{Label: "outside windows", Dist: dist(outside)})
	return out
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
