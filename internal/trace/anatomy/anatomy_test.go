package anatomy

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/bidl-framework/bidl/internal/trace"
)

func txid(b byte) trace.TxID {
	var id trace.TxID
	id[0] = b
	return id
}

// mkEvents builds a small BIDL-shaped stream: submit → sequenced → delivered
// → exec-start → executed → agreed → persisted → notified, with execution
// fully inside the consensus interval.
func mkEvents() ([]trace.TxEvent, []trace.PhaseEvent) {
	var txs []trace.TxEvent
	at := func(tx byte, s trace.Stage, ms int) trace.TxEvent {
		return trace.TxEvent{Tx: txid(tx), Stage: s, Node: 1,
			At: time.Duration(ms) * time.Millisecond}
	}
	for i := byte(1); i <= 4; i++ {
		base := int(i)
		txs = append(txs,
			at(i, trace.StageSubmit, base),
			at(i, trace.StageSequenced, base+1),
			at(i, trace.StageDelivered, base+2),
			at(i, trace.StageExecStart, base+3),
			at(i, trace.StageExecuted, base+5),
			at(i, trace.StageAgreed, base+7),
			at(i, trace.StagePersisted, base+8),
			at(i, trace.StageNotified, base+10),
		)
	}
	phases := []trace.PhaseEvent{
		{Name: "pre-prepare", Node: 2, View: 0, Seq: 1, At: 2 * time.Millisecond},
		{Name: "prepared", Node: 2, View: 0, Seq: 1, At: 4 * time.Millisecond},
		{Name: "committed", Node: 2, View: 0, Seq: 1, At: 6 * time.Millisecond},
		{Name: "pre-prepare", Node: 2, View: 0, Seq: 2, At: 5 * time.Millisecond},
		{Name: "prepared", Node: 2, View: 0, Seq: 2, At: 9 * time.Millisecond},
	}
	return txs, phases
}

func TestComputeBasics(t *testing.T) {
	txs, phases := mkEvents()
	r := Compute(txs, phases, Options{})
	if r.Complete != 4 || r.Incomplete != 0 {
		t.Fatalf("complete=%d incomplete=%d, want 4/0", r.Complete, r.Incomplete)
	}
	wantOrder := []trace.Stage{trace.StageSubmit, trace.StageSequenced, trace.StageDelivered,
		trace.StageExecStart, trace.StageExecuted, trace.StageAgreed, trace.StagePersisted,
		trace.StageNotified}
	if len(r.Order) != len(wantOrder) {
		t.Fatalf("order = %v", r.Order)
	}
	for i, s := range wantOrder {
		if r.Order[i] != s {
			t.Fatalf("order[%d] = %v, want %v", i, r.Order[i], s)
		}
	}
	if r.E2E.P50 != 10*time.Millisecond || r.E2E.Count != 4 {
		t.Errorf("e2e = %+v, want p50 10ms over 4", r.E2E)
	}
	// Execution [base+3, base+5] sits entirely inside consensus [base+1, base+7].
	if r.Overlap.Ratio != 1.0 {
		t.Errorf("overlap ratio = %v, want 1.0", r.Overlap.Ratio)
	}
	if r.Overlap.BeforeAgreedFrac != 1.0 {
		t.Errorf("before-agreed = %v, want 1.0", r.Overlap.BeforeAgreedFrac)
	}
	// Phase transitions aggregate across sequence numbers, sorted by label.
	if len(r.Phases) != 2 {
		t.Fatalf("phases = %+v", r.Phases)
	}
	if r.Phases[0].Label != "pre-prepare→prepared" || r.Phases[0].Count != 2 {
		t.Errorf("phase[0] = %+v", r.Phases[0])
	}
	if r.Phases[1].Label != "prepared→committed" || r.Phases[1].Count != 1 {
		t.Errorf("phase[1] = %+v", r.Phases[1])
	}
}

// TestWaitsSumToEndToEnd is the core invariant: the frontier decomposition
// charges every nanosecond of submit→notified latency to exactly one stage.
func TestWaitsSumToEndToEnd(t *testing.T) {
	txs, phases := mkEvents()
	// Add an out-of-order mark (persist after agreed but recorded with an
	// earlier timestamp than the frontier) to exercise the max(0, ...) path.
	txs = append(txs,
		trace.TxEvent{Tx: txid(9), Stage: trace.StageSubmit, At: 100 * time.Millisecond},
		trace.TxEvent{Tx: txid(9), Stage: trace.StageAgreed, At: 120 * time.Millisecond},
		trace.TxEvent{Tx: txid(9), Stage: trace.StagePersisted, At: 110 * time.Millisecond},
		trace.TxEvent{Tx: txid(9), Stage: trace.StageNotified, At: 130 * time.Millisecond},
	)
	r := Compute(txs, phases, Options{})
	if len(r.Breakdowns) != r.Complete {
		t.Fatalf("breakdowns = %d, complete = %d", len(r.Breakdowns), r.Complete)
	}
	for _, bd := range r.Breakdowns {
		var sum time.Duration
		for _, w := range bd.Waits {
			if w < 0 {
				t.Fatalf("tx %x: negative wait %v", bd.Tx[:2], w)
			}
			sum += w
		}
		if want := bd.Notified - bd.Submit; sum != want {
			t.Errorf("tx %x: waits sum %v != e2e %v", bd.Tx[:2], sum, want)
		}
	}
}

func TestIncompleteTxsAreDropped(t *testing.T) {
	txs, _ := mkEvents()
	txs = append(txs, trace.TxEvent{Tx: txid(50), Stage: trace.StageSubmit, At: time.Millisecond})
	r := Compute(txs, nil, Options{})
	if r.Complete != 4 || r.Incomplete != 1 {
		t.Fatalf("complete=%d incomplete=%d, want 4/1", r.Complete, r.Incomplete)
	}
}

func TestWindowAnnotation(t *testing.T) {
	txs, _ := mkEvents() // tx i: submit at i ms, notified at i+10 ms
	r := Compute(txs, nil, Options{Windows: []Window{
		{Label: "crash cn0", Start: 3 * time.Millisecond, End: 4 * time.Millisecond},
		{Label: "storm", Start: 200 * time.Millisecond, End: openEnd},
	}})
	if len(r.Windows) != 3 {
		t.Fatalf("windows = %+v", r.Windows)
	}
	// [3ms,4ms) intersects the lifetime of txs 1..3 (tx4 submits at 4ms).
	if r.Windows[0].Count != 3 {
		t.Errorf("window[0] count = %d, want 3", r.Windows[0].Count)
	}
	if r.Windows[1].Count != 0 {
		t.Errorf("window[1] count = %d, want 0", r.Windows[1].Count)
	}
	if r.Windows[2].Label != "outside windows" || r.Windows[2].Count != 1 {
		t.Errorf("window[2] = %+v, want outside count 1", r.Windows[2])
	}
}

func TestRenderAndCSVDeterministic(t *testing.T) {
	txs, phases := mkEvents()
	opts := Options{Windows: []Window{{Label: "crash cn0", Start: 3 * time.Millisecond, End: openEnd}}}
	var a, b, ca, cb bytes.Buffer
	if err := Compute(txs, phases, opts).Render(&a); err != nil {
		t.Fatal(err)
	}
	if err := Compute(txs, phases, opts).Render(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Render not deterministic")
	}
	if err := Compute(txs, phases, opts).CSV(&ca); err != nil {
		t.Fatal(err)
	}
	if err := Compute(txs, phases, opts).CSV(&cb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Error("CSV not deterministic")
	}
	out := a.String()
	for _, want := range []string{"latency anatomy", "critical-path stage waits",
		"speculative-execution overlap", "consensus phase transitions",
		"fault windows", "∞"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(ca.String(), "section,label,metric,value") {
		t.Errorf("csv missing header:\n%s", ca.String())
	}
}

func TestEmptyReport(t *testing.T) {
	r := Compute(nil, nil, Options{})
	if r.Complete != 0 || r.Incomplete != 0 {
		t.Fatalf("empty compute = %+v", r)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no complete transactions") {
		t.Errorf("empty render = %q", buf.String())
	}
}
