package bidl

import (
	"testing"
	"time"
)

func TestSystemEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumOrgs = 8
	cfg.BlockSize = 50
	cfg.BlockTimeout = 5 * time.Millisecond
	w := DefaultWorkload(cfg.NumOrgs)
	w.NumClients = 10
	w.Accounts = 500
	sys := NewSystem(cfg, w)
	n := sys.SubmitRate(5000, 200*time.Millisecond)
	sys.Run(time.Second)
	sum := sys.Summary(0, time.Second)
	if sum.Committed != n {
		t.Fatalf("committed %d of %d", sum.Committed, n)
	}
	if sum.AbortRate != 0 {
		t.Fatalf("abort rate %.2f on deterministic workload", sum.AbortRate)
	}
	if sum.AvgLatency <= 0 || sum.AvgLatency > 100*time.Millisecond {
		t.Fatalf("latency %v", sum.AvgLatency)
	}
	if err := sys.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineSystemEndToEnd(t *testing.T) {
	for _, v := range []BaselineVariant{HLF, FastFabric, StreamChain} {
		cfg := DefaultBaselineConfig(v)
		cfg.NumOrgs = 8
		cfg.BlockSize = 50
		cfg.BlockTimeout = 5 * time.Millisecond
		if v == StreamChain {
			cfg.BlockSize = 1
			cfg.BlockTimeout = 500 * time.Microsecond
		}
		w := DefaultWorkload(cfg.NumOrgs)
		w.NumClients = 10
		w.Accounts = 500
		sys := NewBaselineSystem(cfg, w)
		n := sys.SubmitRate(1000, 200*time.Millisecond)
		sys.Run(2 * time.Second)
		if got := sys.Summary(0, 2*time.Second).Committed; got != n {
			t.Fatalf("variant %v committed %d of %d", v, got, n)
		}
		if err := sys.CheckSafety(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunExperimentUnknownID(t *testing.T) {
	if _, err := RunExperiment("nope", BenchOptions{Scale: 0.1, Seed: 1}); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

func TestExperimentsRegistryComplete(t *testing.T) {
	want := map[string]bool{
		"fig3": true, "fig5": true, "fig6": true, "fig7": true, "fig8": true,
		"fig9": true, "fig10": true, "table2": true, "table3": true,
		"table4": true, "ablation": true,
	}
	for _, e := range Experiments() {
		delete(want, e.ID)
		if e.Scenarios == nil || e.Table == nil || e.Description == "" || e.Paper == "" {
			t.Fatalf("experiment %s incompletely registered", e.ID)
		}
	}
	if len(want) != 0 {
		t.Fatalf("missing experiments: %v", want)
	}
}

func TestDeterministicSystems(t *testing.T) {
	run := func() Summary {
		cfg := DefaultConfig()
		cfg.NumOrgs = 8
		cfg.BlockSize = 50
		w := DefaultWorkload(cfg.NumOrgs)
		w.NumClients = 10
		w.Accounts = 500
		sys := NewSystem(cfg, w)
		sys.SubmitRate(3000, 200*time.Millisecond)
		sys.Run(time.Second)
		return sys.Summary(0, time.Second)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical runs diverge: %+v vs %+v", a, b)
	}
}
