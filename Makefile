# Tier-1 gate for the BIDL reproduction. `make ci` is what must stay green:
# formatting, vet, build, and the full test suite under the race detector —
# the parallel sweep runner is the repo's first real concurrency, so -race
# is part of the gate, not an extra.

GO ?= go

.PHONY: all build test race vet fmt-check ci bench-json trace-smoke \
	profile bench-hotpath hotpath-smoke scenario-smoke pdes-smoke bench-pdes \
	chaos-smoke anatomy-smoke bench-check workload-smoke bench-workload \
	shard-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check vet build race trace-smoke hotpath-smoke scenario-smoke pdes-smoke chaos-smoke \
	anatomy-smoke workload-smoke shard-smoke bench-check

# One-transaction smoke run of the end-to-end pipeline benchmark so the
# hot-path suite can never bitrot (it also asserts the txn commits).
hotpath-smoke:
	$(GO) test ./internal/bench/ -run XXX -bench BenchmarkPipelineHotPath -benchtime 1x

# Full hot-path benchmark suite: end-to-end pipeline cost plus the simnet
# delivery/event-loop microbenchmarks it builds on.
bench-hotpath:
	$(GO) test ./internal/bench/ -run XXX -bench BenchmarkPipelineHotPath -benchtime 2s
	$(GO) test ./internal/simnet/ -run XXX -bench 'BenchmarkEndpointDelivery|BenchmarkSimEventLoop|BenchmarkSimBroadcast'

# Capture CPU + allocation profiles of the fig5 sweep (the profile-guided
# optimization loop). Inspect with:
#   go tool pprof /tmp/bidl-bench.bin /tmp/bidl-cpu.pprof
#   go tool pprof -sample_index=alloc_objects /tmp/bidl-bench.bin /tmp/bidl-mem.pprof
profile:
	$(GO) build -o /tmp/bidl-bench.bin ./cmd/bidl-bench
	/tmp/bidl-bench.bin -run fig5 -scale 0.15 -q \
		-cpuprofile /tmp/bidl-cpu.pprof -memprofile /tmp/bidl-mem.pprof > /dev/null
	@echo "profiles: /tmp/bidl-cpu.pprof /tmp/bidl-mem.pprof (binary /tmp/bidl-bench.bin)"

# Declarative-scenario smoke: every checked-in example spec must run
# end-to-end through `bidl-sim -scenario` and pass its safety check, and
# `bidl-bench -dump-scenarios` must emit the full registry as JSON.
scenario-smoke:
	@for f in examples/scenario-*.json; do \
		echo "scenario-smoke: $$f"; \
		$(GO) run ./cmd/bidl-sim -scenario $$f | grep -q "safety check: all correct nodes consistent" \
			|| { echo "scenario-smoke: $$f failed"; exit 1; }; \
	done
	@$(GO) run ./cmd/bidl-bench -dump-scenarios -scale 0.1 | grep -q '"id": "fig5"' \
		|| { echo "scenario-smoke: -dump-scenarios failed"; exit 1; }

# Chaos gate: the fault-injection catalog under the race detector. Each
# entry's invariants (consistency audit, committed floors, trace-backed
# recovery deadlines) must pass AND the rendered report must match its
# golden byte-for-byte — pinning every chaos run's deterministic outcome.
# Regenerate goldens deliberately with:
#   go test ./internal/chaos -run TestChaosCatalog -golden-update
chaos-smoke:
	$(GO) test -race -count=1 ./internal/chaos \
		-run 'TestChaosCatalog|TestChaosSameSeedReproducible'

# PDES smoke: one small multi-DC deployment through bidl-sim twice — the
# 4-worker conservative PDES engine under the race detector, then the serial
# reference — and the full reports must be byte-identical. The exhaustive
# per-experiment determinism gate is TestPDESDeterminismAllExperiments
# (internal/bench), which `make race` runs for the whole registry.
pdes-smoke:
	$(GO) run -race ./cmd/bidl-sim -dcs 2 -rate 4000 -duration 400ms -sim-workers 4 > /tmp/bidl-pdes-par.txt
	$(GO) run ./cmd/bidl-sim -dcs 2 -rate 4000 -duration 400ms > /tmp/bidl-pdes-ser.txt
	@cmp /tmp/bidl-pdes-par.txt /tmp/bidl-pdes-ser.txt \
		&& echo "pdes-smoke: parallel output byte-identical to serial"

# Regenerate the BENCH_pdes.json trail: the fig5 sweep with the serial
# engine, then with 4 PDES workers inside every run. Tables must stay
# byte-identical; only wall-clock and events/sec move.
bench-pdes:
	$(GO) run ./cmd/bidl-bench -run fig5 -scale 0.15 -q -bench-json /tmp/bidl-pdes-serial.json
	$(GO) run ./cmd/bidl-bench -run fig5 -scale 0.15 -q -sim-workers 4 -bench-json /tmp/bidl-pdes-parallel.json
	@echo "results: /tmp/bidl-pdes-serial.json /tmp/bidl-pdes-parallel.json"

# End-to-end trace smoke: a short traced run must produce a valid,
# Perfetto-loadable Chrome trace (parses, has spans and counter tracks) AND
# a schema-valid raw JSONL export (frozen schema, per-tx monotonic stamps).
trace-smoke:
	$(GO) run ./cmd/bidl-sim -rate 4000 -duration 300ms -trace /tmp/bidl-trace-smoke.json \
		-trace-jsonl /tmp/bidl-trace-smoke.jsonl > /dev/null
	$(GO) run ./cmd/bidl-trace-check /tmp/bidl-trace-smoke.json
	$(GO) run ./cmd/bidl-trace-check -jsonl /tmp/bidl-trace-smoke.jsonl

# Latency-anatomy smoke: one traced run emits the in-process anatomy report
# plus the raw JSONL export; bidl-report recomputes the report offline from
# the JSONL and both renderings (text + CSV) must be byte-identical — the
# frozen-schema guarantee of DESIGN.md §12, checked end to end.
anatomy-smoke:
	$(GO) run ./cmd/bidl-sim -rate 4000 -duration 300ms \
		-anatomy /tmp/bidl-anatomy.txt -anatomy-csv /tmp/bidl-anatomy.csv \
		-trace-jsonl /tmp/bidl-anatomy.jsonl > /dev/null
	$(GO) run ./cmd/bidl-report -trace-jsonl /tmp/bidl-anatomy.jsonl \
		-out /tmp/bidl-anatomy-offline.txt -csv /tmp/bidl-anatomy-offline.csv
	@cmp /tmp/bidl-anatomy.txt /tmp/bidl-anatomy-offline.txt
	@cmp /tmp/bidl-anatomy.csv /tmp/bidl-anatomy-offline.csv
	@echo "anatomy-smoke: offline report byte-identical to in-process"

# Million-user memory smoke: the 10⁶-account Zipf scenario must run to a
# clean safety check under a hard 256 MiB GOMEMLIMIT, and the post-run live
# heap must stay under 192 MiB (-heap-check). Only O(1)-per-node
# prepopulation passes: materializing 2×10⁶ entries in every node state
# would need gigabytes.
workload-smoke:
	GOMEMLIMIT=256MiB $(GO) run ./cmd/bidl-sim \
		-scenario examples/scenario-zipf-million.json -heap-check 201326592

# Full workload microbenchmark suite: per-node prepopulation (O(1) via the
# shared copy-on-write base) and per-transaction generation under Zipf skew
# + settlement flows.
bench-workload:
	$(GO) test ./internal/bench/ -run XXX \
		-bench 'BenchmarkPrepopulate|BenchmarkGeneratorNext' -benchtime 2s

# Sharding gate (DESIGN.md §14): `shards: 1` must compile through the
# single-channel target and reproduce the unsharded engine field-for-field
# (TestShardsOneMatchesUnsharded), and a 4-shard spec — cross-shard 2PC
# traffic included — must be serial-vs-PDES identical under the race
# detector (TestShardedSpecSerialVsPDES). The same identity is then checked
# end to end through the bidl-sim CLI: full report output must be
# byte-identical with and without -sim-workers 4.
shard-smoke:
	$(GO) test -race -count=1 ./internal/scenario \
		-run 'TestShardsOneMatchesUnsharded|TestShardedSpecSerialVsPDES'
	$(GO) run -race ./cmd/bidl-sim -orgs 8 -rate 4000 -duration 400ms \
		-shards 4 -cross-shard 0.1 -sim-workers 4 > /tmp/bidl-shard-par.txt
	$(GO) run ./cmd/bidl-sim -orgs 8 -rate 4000 -duration 400ms \
		-shards 4 -cross-shard 0.1 > /tmp/bidl-shard-ser.txt
	@cmp /tmp/bidl-shard-par.txt /tmp/bidl-shard-ser.txt \
		&& echo "shard-smoke: 4-shard PDES output byte-identical to serial"

# Perf-regression gate: re-measure the fig5 trail entry, the pipeline
# hot-path benchmark, the workload microbenchmarks (including the
# memory-per-account flatness curve), and the multi-channel sharding sweep,
# compare against the committed BENCH_serial.json / BENCH_hotpath.json /
# BENCH_workload.json / BENCH_sharding.json baselines with explicit
# tolerances (virtual-event counts exactly; machine-independent
# bytes/allocs/flatness tightly; wall-clock — aggregate and per sequenced
# channel — loosely; see cmd/bidl-perfgate).
# After a deliberate perf/behavior change: go run ./cmd/bidl-perfgate -update
bench-check:
	$(GO) run ./cmd/bidl-perfgate

# Regenerate the BENCH_*.json perf trail (quick scale). Serial first, then
# the same sweep on 4 workers; tables are byte-identical, only wall-clock
# and events/sec move.
bench-json:
	$(GO) run ./cmd/bidl-bench -run all -scale 0.15 -q -bench-json BENCH_serial.json > /dev/null
	$(GO) run ./cmd/bidl-bench -run all -scale 0.15 -q -j 4 -bench-json BENCH_parallel.json > /dev/null
