// Command bidl-perfgate is the automated perf-regression gate behind
// `make bench-check`: it re-measures the committed perf trail and fails with
// a per-metric delta table when the current tree regresses beyond explicit
// tolerances.
//
// Three baselines are gated:
//
//   - BENCH_serial.json (-report): one experiment (-experiment, default
//     fig5) is re-run at the trail's recorded scale/seed/workers. Virtual
//     event counts must match the trail exactly — same scale and seed make
//     the simulation deterministic, so any drift means the tree changed
//     behavior, not just speed. Events/wall-second gates loosely (the trail
//     machine is not the CI machine).
//   - BENCH_hotpath.json (-hotpath): the pipeline hot-path microbenchmark is
//     re-run via testing.Benchmark. allocs/op and vevents/op are
//     machine-independent and gate tightly; ns/op gates loosely.
//   - BENCH_workload.json (-workload): the workload microbenchmarks
//     (per-node prepopulation at 10⁶ accounts, per-transaction generation
//     under skew + settlement) re-run via testing.Benchmark, plus the
//     memory-per-account curve across 10⁴..10⁷ accounts whose flatness
//     ratio (max/min bytes/op) pins prepopulation at O(1) in the account
//     count. bytes/op, allocs/op, and flatness gate tightly; ns/op loosely.
//   - BENCH_sharding.json (-sharding): the multi-channel sharding sweep
//     (shard count × cross-shard 2PC ratio) is re-run at the trail's
//     recorded scale/seed/workers. Virtual events gate exactly; event
//     throughput gates loosely, both in aggregate and normalized per
//     sequenced channel — the per-shard figure horizontal scale-out work
//     should move.
//
// After a deliberate perf or behavior change, refresh the baselines with
// -update (re-measures and rewrites the files in place).
//
// Examples:
//
//	bidl-perfgate                            # gate both baselines
//	bidl-perfgate -hotpath ""                # experiment trail only
//	bidl-perfgate -tol-wall 0.3              # tighten on a pinned CI host
//	bidl-perfgate -update                    # refresh baselines
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"github.com/bidl-framework/bidl"
	"github.com/bidl-framework/bidl/internal/bench"
)

func main() {
	var (
		reportPath = flag.String("report", "BENCH_serial.json", "experiment perf trail to gate (\"\" = skip)")
		experiment = flag.String("experiment", "fig5", "trail experiment to re-measure")
		hotPath    = flag.String("hotpath", "BENCH_hotpath.json", "hot-path microbenchmark baseline to gate (\"\" = skip)")
		workPath   = flag.String("workload", "BENCH_workload.json", "workload microbenchmark baseline to gate (\"\" = skip)")
		shardPath  = flag.String("sharding", "BENCH_sharding.json", "sharding experiment trail to gate (\"\" = skip)")
		update     = flag.Bool("update", false, "re-measure and rewrite the baselines instead of gating")
		tolWall    = flag.Float64("tol-wall", 0, "max events/wall-sec drop (0 = default)")
		tolNs      = flag.Float64("tol-ns", 0, "max hot-path ns/op growth (0 = default)")
		tolAllocs  = flag.Float64("tol-allocs", 0, "max hot-path allocs/op growth (0 = default)")
		tolVEv     = flag.Float64("tol-vevents", 0, "max hot-path vevents/op growth (0 = default)")
	)
	flag.Parse()

	tol := bidl.DefaultGateTolerances()
	if *tolWall > 0 {
		tol.Wall = *tolWall
	}
	if *tolNs > 0 {
		tol.NsPerOp = *tolNs
	}
	if *tolAllocs > 0 {
		tol.AllocsPerOp = *tolAllocs
	}
	if *tolVEv > 0 {
		tol.VEventsPerOp = *tolVEv
	}

	pass := true
	if *reportPath != "" {
		if !gateReport(*reportPath, *experiment, tol, *update) {
			pass = false
		}
	}
	if *hotPath != "" {
		if !gateHotpath(*hotPath, tol, *update) {
			pass = false
		}
	}
	if *workPath != "" {
		if !gateWorkload(*workPath, tol, *update) {
			pass = false
		}
	}
	if *shardPath != "" {
		if !gateSharding(*shardPath, tol, *update) {
			pass = false
		}
	}
	if !pass {
		os.Exit(1)
	}
}

// gateReport re-measures one trail experiment at the trail's recorded
// parameters and gates (or, with update, rewrites) its entry.
func gateReport(path, id string, tol bidl.GateTolerances, update bool) bool {
	trail, err := bidl.LoadBenchReport(path)
	if err != nil {
		fail(err)
	}
	baseline, ok := trail.FindRunStats(id)
	if !ok {
		fail(fmt.Errorf("%s: no experiment %q in trail", path, id))
	}
	fmt.Fprintf(os.Stderr, "bidl-perfgate: re-measuring %s (scale %g, seed %d, workers %d)...\n",
		id, trail.Scale, trail.Seed, trail.Workers)
	opts := bidl.BenchOptions{Scale: trail.Scale, Seed: trail.Seed, Workers: trail.Workers}
	_, current, err := bidl.MeasureExperiment(id, opts)
	if err != nil {
		fail(err)
	}

	if update {
		for i := range trail.Experiments {
			if trail.Experiments[i].ID == id {
				trail.Experiments[i] = current
			}
		}
		trail.TotalWallSeconds, trail.TotalVirtualEvents = 0, 0
		for _, s := range trail.Experiments {
			trail.TotalWallSeconds += s.WallSeconds
			trail.TotalVirtualEvents += s.VirtualEvents
		}
		writeFile(path, func(f *os.File) error { return trail.WriteJSON(f) })
		fmt.Printf("updated %s entry in %s\n", id, path)
		return true
	}

	g := bidl.CompareBenchStats(baseline, current, tol)
	g.Render(os.Stdout)
	return g.OK()
}

// gateSharding re-measures the multi-channel sharding sweep at the trail's
// recorded parameters and gates (or rewrites) BENCH_sharding.json. Beyond
// the standard trail metrics it gates event throughput per sequenced
// channel, so the baseline reads as one shard-pipeline's sustained rate.
// With -update, a missing trail file is created from scratch at the default
// recording point (scale 0.1, seed 1, serial).
func gateSharding(path string, tol bidl.GateTolerances, update bool) bool {
	const id = "sharding"
	trail, err := bidl.LoadBenchReport(path)
	if err != nil {
		if !(update && os.IsNotExist(err)) {
			fail(err)
		}
		trail = bidl.NewBenchReport(bidl.BenchOptions{Scale: 0.1, Seed: 1, Workers: 1})
	}
	fmt.Fprintf(os.Stderr, "bidl-perfgate: re-measuring %s (scale %g, seed %d, workers %d)...\n",
		id, trail.Scale, trail.Seed, trail.Workers)
	opts := bidl.BenchOptions{Scale: trail.Scale, Seed: trail.Seed, Workers: trail.Workers}
	_, current, err := bidl.MeasureExperiment(id, opts)
	if err != nil {
		fail(err)
	}

	if update {
		found := false
		for i := range trail.Experiments {
			if trail.Experiments[i].ID == id {
				trail.Experiments[i] = current
				found = true
			}
		}
		if !found {
			trail.Experiments = append(trail.Experiments, current)
		}
		trail.TotalWallSeconds, trail.TotalVirtualEvents = 0, 0
		for _, s := range trail.Experiments {
			trail.TotalWallSeconds += s.WallSeconds
			trail.TotalVirtualEvents += s.VirtualEvents
		}
		writeFile(path, func(f *os.File) error { return trail.WriteJSON(f) })
		fmt.Printf("updated %s entry in %s\n", id, path)
		return true
	}

	baseline, ok := trail.FindRunStats(id)
	if !ok {
		fail(fmt.Errorf("%s: no experiment %q in trail", path, id))
	}
	g := bidl.CompareShardingStats(baseline, current, bidl.ShardingChannels(), tol)
	g.Render(os.Stdout)
	return g.OK()
}

// gateHotpath re-runs the pipeline hot-path benchmark and gates (or
// rewrites) the BenchmarkPipelineHotPath entry of the hotpath baseline.
func gateHotpath(path string, tol bidl.GateTolerances, update bool) bool {
	const entry = "BenchmarkPipelineHotPath"
	raw, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	// The file carries narrative fields beyond the gated slice, so decode
	// generically and only reach into the entry being gated.
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	micro, _ := doc["microbenchmarks"].(map[string]any)
	bent, _ := micro[entry].(map[string]any)
	if bent == nil {
		fail(fmt.Errorf("%s: no microbenchmarks.%s entry", path, entry))
	}
	baseline := bidl.HotpathStats{
		NsPerOp:      num(bent["ns_per_op"]),
		VEventsPerOp: num(bent["vevents_per_op"]),
		AllocsPerOp:  num(bent["allocs_per_op"]),
	}

	fmt.Fprintf(os.Stderr, "bidl-perfgate: running %s...\n", entry)
	r := testing.Benchmark(bench.PipelineHotPath)
	current := bidl.HotpathStats{
		NsPerOp:      float64(r.NsPerOp()),
		VEventsPerOp: r.Extra["vevents/op"],
		AllocsPerOp:  float64(r.AllocsPerOp()),
	}

	if update {
		bent["ns_per_op"] = current.NsPerOp
		bent["vevents_per_op"] = current.VEventsPerOp
		bent["allocs_per_op"] = current.AllocsPerOp
		bent["bytes_per_op"] = float64(r.AllocedBytesPerOp())
		writeFile(path, func(f *os.File) error {
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			return enc.Encode(doc)
		})
		fmt.Printf("updated microbenchmarks.%s in %s\n", entry, path)
		return true
	}

	g := bidl.CompareHotpath(baseline, current, tol)
	g.Render(os.Stdout)
	return g.OK()
}

// gateWorkload re-runs the workload microbenchmarks plus the
// memory-per-account curve and gates (or rewrites) the BENCH_workload.json
// baseline.
func gateWorkload(path string, tol bidl.GateTolerances, update bool) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	// Like the hotpath baseline, the file carries narrative fields beyond
	// the gated slice: decode generically and only reach into gated entries.
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	micro, _ := doc["microbenchmarks"].(map[string]any)
	prep, _ := micro["BenchmarkPrepopulate"].(map[string]any)
	next, _ := micro["BenchmarkGeneratorNext"].(map[string]any)
	if prep == nil || next == nil {
		fail(fmt.Errorf("%s: missing microbenchmarks.BenchmarkPrepopulate / BenchmarkGeneratorNext", path))
	}
	baseline := bidl.WorkloadStats{
		PrepopNsPerOp:     num(prep["ns_per_op"]),
		PrepopBytesPerOp:  num(prep["bytes_per_op"]),
		PrepopAllocsPerOp: num(prep["allocs_per_op"]),
		PrepopFlatness:    num(doc["prepop_flatness"]),
		NextNsPerOp:       num(next["ns_per_op"]),
		NextBytesPerOp:    num(next["bytes_per_op"]),
		NextAllocsPerOp:   num(next["allocs_per_op"]),
	}

	fmt.Fprintln(os.Stderr, "bidl-perfgate: running BenchmarkPrepopulate...")
	rp := testing.Benchmark(bench.PrepopulateBench)
	fmt.Fprintln(os.Stderr, "bidl-perfgate: running BenchmarkGeneratorNext...")
	rn := testing.Benchmark(bench.GeneratorNextBench)
	fmt.Fprintln(os.Stderr, "bidl-perfgate: measuring memory-per-account curve (10^4..10^7 accounts)...")
	curve := bench.PrepopulateCurve()
	current := bidl.WorkloadStats{
		PrepopNsPerOp:     float64(rp.NsPerOp()),
		PrepopBytesPerOp:  float64(rp.AllocedBytesPerOp()),
		PrepopAllocsPerOp: float64(rp.AllocsPerOp()),
		PrepopFlatness:    bench.Flatness(curve),
		NextNsPerOp:       float64(rn.NsPerOp()),
		NextBytesPerOp:    float64(rn.AllocedBytesPerOp()),
		NextAllocsPerOp:   float64(rn.AllocsPerOp()),
	}

	if update {
		prep["ns_per_op"] = current.PrepopNsPerOp
		prep["bytes_per_op"] = current.PrepopBytesPerOp
		prep["allocs_per_op"] = current.PrepopAllocsPerOp
		next["ns_per_op"] = current.NextNsPerOp
		next["bytes_per_op"] = current.NextBytesPerOp
		next["allocs_per_op"] = current.NextAllocsPerOp
		doc["prepop_flatness"] = current.PrepopFlatness
		pts := make([]any, len(curve))
		for i, p := range curve {
			pts[i] = map[string]any{
				"accounts":      p.Accounts,
				"bytes_per_op":  p.BytesPerOp,
				"allocs_per_op": p.AllocsPerOp,
			}
		}
		doc["memory_per_account_curve"] = pts
		writeFile(path, func(f *os.File) error {
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			return enc.Encode(doc)
		})
		fmt.Printf("updated workload microbenchmarks in %s\n", path)
		return true
	}

	g := bidl.CompareWorkload(baseline, current, tol)
	g.Render(os.Stdout)
	return g.OK()
}

func num(v any) float64 {
	f, _ := v.(float64)
	return f
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bidl-perfgate:", err)
	os.Exit(1)
}
